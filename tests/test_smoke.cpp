// End-to-end smoke test: a small DARIS run completes and produces sane
// metrics. Detailed behaviour is covered by the per-module suites.
#include <gtest/gtest.h>

#include "experiments/runner.h"

namespace daris {
namespace {

TEST(Smoke, SmallDarisRunCompletes) {
  exp::RunConfig cfg;
  cfg.taskset = workload::scaled_taskset(dnn::ModelKind::kResNet18, 0.2, 0.34);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 4;
  cfg.sched.oversubscription = 4.0;
  cfg.duration_s = 1.0;
  cfg.warmup_s = 0.2;

  const exp::RunResult r = exp::run_daris(cfg);
  EXPECT_GT(r.total_jps, 0.0);
  EXPECT_GT(r.hp.completed + r.lp.completed, 0u);
  EXPECT_GE(r.gpu_utilization, 0.0);
  EXPECT_LE(r.gpu_utilization, 1.0);
}

}  // namespace
}  // namespace daris
