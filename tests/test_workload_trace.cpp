// Trace replay and generation: CSV parsing with line-numbered rejection,
// bit-identical replay, generator statistical sanity, and the equivalence
// between a periodic trace and PeriodicDriver (same ReleaseFn stream).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "workload/driver.h"
#include "workload/taskset.h"
#include "workload/trace.h"

namespace daris::workload {
namespace {

using common::Priority;

// --- CSV parsing ----------------------------------------------------------

Trace parse_ok(const std::string& csv) {
  std::istringstream in(csv);
  Trace trace;
  std::string error;
  EXPECT_TRUE(parse_trace_csv(in, &trace, &error)) << error;
  return trace;
}

std::string parse_error(const std::string& csv) {
  std::istringstream in(csv);
  Trace trace;
  std::string error;
  EXPECT_FALSE(parse_trace_csv(in, &trace, &error));
  return error;
}

TEST(TraceCsv, ParsesRowsHeaderCommentsAndBlanks) {
  const Trace t = parse_ok(
      "arrival_us,model,slo\n"
      "# warm-up burst\n"
      "\n"
      "100,resnet18,hp\n"
      "250,UNet,lp\n"
      "250,inceptionv3,lp\n");
  ASSERT_EQ(t.rows.size(), 3u);
  EXPECT_EQ(t.rows[0].arrival_us, 100u);
  EXPECT_EQ(t.rows[0].model, dnn::ModelKind::kResNet18);
  EXPECT_EQ(t.rows[0].slo, Priority::kHigh);
  EXPECT_EQ(t.rows[1].arrival_us, 250u);
  EXPECT_EQ(t.rows[1].model, dnn::ModelKind::kUNet);
  EXPECT_EQ(t.rows[1].slo, Priority::kLow);
  EXPECT_EQ(t.rows[2].model, dnn::ModelKind::kInceptionV3);
  EXPECT_EQ(t.duration(), common::from_us(250.0));
}

TEST(TraceCsv, RejectsMalformedRowsWithLineNumbers) {
  // Each case: (csv, expected line number of the failure). The header (line
  // 1) and a comment (line 2) pad the line counter so the number proves the
  // parser reports the *file* line, not the row index.
  const std::pair<const char*, const char*> cases[] = {
      {"arrival_us,model,slo\n#c\n100,resnet18\n", "line 3"},
      {"arrival_us,model,slo\n#c\nabc,resnet18,hp\n", "line 3"},
      {"arrival_us,model,slo\n#c\n100,vgg16,hp\n", "line 3"},
      {"arrival_us,model,slo\n#c\n100,resnet18,medium\n", "line 3"},
      {"arrival_us,model,slo\n#c\n100,resnet18,hp,extra\n", "line 3"},
      {"arrival_us,model,slo\n100,resnet18,hp\n99,resnet18,hp\n", "line 3"},
      {"100,resnet18,hp\n-5,resnet18,hp\n", "line 2"},
  };
  for (const auto& [csv, want] : cases) {
    const std::string error = parse_error(csv);
    EXPECT_NE(error.find(want), std::string::npos)
        << "csv:\n" << csv << "error: " << error;
  }
}

TEST(TraceCsv, RoundTripsThroughWriter) {
  TraceGenConfig cfg;
  cfg.duration_s = 0.5;
  cfg.mean_rate_jps = 400.0;
  const Trace t = generate_trace(trace_mix(mixed_taskset()), cfg);
  ASSERT_GT(t.rows.size(), 0u);

  std::ostringstream out;
  write_trace_csv(out, t);
  const Trace back = parse_ok(out.str());
  ASSERT_EQ(back.rows.size(), t.rows.size());
  for (std::size_t i = 0; i < t.rows.size(); ++i) {
    EXPECT_EQ(back.rows[i].arrival_us, t.rows[i].arrival_us);
    EXPECT_EQ(back.rows[i].model, t.rows[i].model);
    EXPECT_EQ(back.rows[i].slo, t.rows[i].slo);
  }
}

// --- replay ---------------------------------------------------------------

using ReleaseLog = std::vector<std::pair<common::Time, int>>;

ReleaseLog replay(const TaskSetSpec& taskset, const Trace& trace,
                  common::Time horizon, std::uint64_t* arrivals = nullptr,
                  std::uint64_t* unmatched = nullptr) {
  sim::Simulator sim;
  ReleaseLog log;
  TraceDriver driver(
      sim, taskset, trace,
      [&](int task_id) { log.emplace_back(sim.now(), task_id); }, horizon);
  driver.start();
  sim.run();
  if (arrivals != nullptr) *arrivals = driver.arrivals();
  if (unmatched != nullptr) *unmatched = driver.unmatched();
  return log;
}

TEST(TraceDriver, ReplayIsBitIdentical) {
  TraceGenConfig cfg;
  cfg.duration_s = 2.0;
  cfg.mean_rate_jps = 800.0;
  cfg.diurnal_amplitude = 0.4;
  cfg.diurnal_period_s = 1.0;
  const TaskSetSpec taskset = mixed_taskset();
  const Trace trace = generate_trace(trace_mix(taskset), cfg);
  ASSERT_GT(trace.rows.size(), 1000u);

  const common::Time horizon = common::from_sec(2.0);
  const ReleaseLog a = replay(taskset, trace, horizon);
  const ReleaseLog b = replay(taskset, trace, horizon);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(a == b) << "same trace, same task set => same release stream";
}

TEST(TraceDriver, RoundRobinSpreadsAClassAcrossItsTasks) {
  // Two HP ResNet18 tasks: rows of that class must alternate between them
  // in ascending task-id order.
  TaskSetSpec taskset;
  for (int i = 0; i < 2; ++i) {
    rt::TaskSpec spec;
    spec.model = dnn::ModelKind::kResNet18;
    spec.period = common::from_ms(10.0);
    spec.relative_deadline = spec.period;
    spec.priority = Priority::kHigh;
    taskset.tasks.push_back(spec);
  }
  Trace trace;
  for (int i = 0; i < 6; ++i) {
    TraceRow row;
    row.arrival_us = static_cast<std::uint64_t>(100 * (i + 1));
    trace.rows.push_back(row);
  }
  const ReleaseLog log = replay(taskset, trace, common::from_sec(1.0));
  ASSERT_EQ(log.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(i)].second, i % 2);
  }
}

TEST(TraceDriver, CountsUnmatchedRowsAndSkipsThem) {
  TaskSetSpec taskset;
  rt::TaskSpec spec;
  spec.model = dnn::ModelKind::kResNet18;
  spec.period = common::from_ms(10.0);
  spec.relative_deadline = spec.period;
  spec.priority = Priority::kHigh;
  taskset.tasks.push_back(spec);

  Trace trace;
  TraceRow hp;
  hp.arrival_us = 100;
  TraceRow lp;  // no registered task serves (resnet18, lp)
  lp.arrival_us = 200;
  lp.slo = Priority::kLow;
  TraceRow hp2;
  hp2.arrival_us = 300;
  trace.rows = {hp, lp, hp2};

  std::uint64_t arrivals = 0;
  std::uint64_t unmatched = 0;
  const ReleaseLog log =
      replay(taskset, trace, common::from_sec(1.0), &arrivals, &unmatched);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(arrivals, 2u);
  EXPECT_EQ(unmatched, 1u);
  EXPECT_EQ(log[0].first, common::from_us(100.0));
  EXPECT_EQ(log[1].first, common::from_us(300.0));
}

// --- the periodic-trace = PeriodicDriver equivalence ----------------------

TEST(TraceDriver, PeriodicTraceMatchesPeriodicDriverExactly) {
  // One task per (model, SLO) class, whole-microsecond periods and phases,
  // no simultaneous releases: the round-robin row mapping is then the
  // identity, and the trace form of the periodic schedule must produce the
  // byte-identical ReleaseFn stream.
  TaskSetSpec taskset;
  const struct {
    dnn::ModelKind model;
    Priority slo;
    std::uint64_t period_us;
    std::uint64_t phase_us;
  } defs[] = {
      {dnn::ModelKind::kResNet18, Priority::kHigh, 9973, 11},
      {dnn::ModelKind::kUNet, Priority::kLow, 14009, 503},
      {dnn::ModelKind::kInceptionV3, Priority::kLow, 23003, 1009},
  };
  for (const auto& d : defs) {
    rt::TaskSpec spec;
    spec.model = d.model;
    spec.priority = d.slo;
    spec.period = common::from_us(static_cast<double>(d.period_us));
    spec.relative_deadline = spec.period;
    spec.phase = common::from_us(static_cast<double>(d.phase_us));
    taskset.tasks.push_back(spec);
  }

  const double horizon_s = 1.0;
  const auto horizon = common::from_sec(horizon_s);

  // The same schedule as rows, time-sorted; prime periods with distinct
  // offsets never coincide inside the horizon (asserted below).
  std::vector<std::pair<std::uint64_t, int>> schedule;
  for (int t = 0; t < 3; ++t) {
    const auto& d = defs[t];
    for (std::uint64_t us = d.phase_us;
         common::from_us(static_cast<double>(us)) <= horizon;
         us += d.period_us) {
      schedule.emplace_back(us, t);
    }
  }
  std::sort(schedule.begin(), schedule.end());
  std::set<std::uint64_t> times;
  for (const auto& [us, t] : schedule) {
    ASSERT_TRUE(times.insert(us).second) << "collision at " << us << "us";
  }
  Trace trace;
  for (const auto& [us, t] : schedule) {
    TraceRow row;
    row.arrival_us = us;
    row.model = defs[t].model;
    row.slo = defs[t].slo;
    trace.rows.push_back(row);
  }

  ReleaseLog from_periodic;
  {
    sim::Simulator sim;
    PeriodicDriver driver(
        sim, taskset,
        [&](int task_id) { from_periodic.emplace_back(sim.now(), task_id); },
        horizon);
    driver.start();
    sim.run();
  }
  const ReleaseLog from_trace = replay(taskset, trace, horizon);

  ASSERT_GT(from_periodic.size(), 100u);
  ASSERT_EQ(from_trace.size(), from_periodic.size());
  EXPECT_TRUE(from_trace == from_periodic)
      << "a periodic trace must replay as the PeriodicDriver schedule";
}

// --- generator ------------------------------------------------------------

TEST(TraceGen, IsDeterministicPerSeedAndSensitiveToIt) {
  TraceGenConfig cfg;
  cfg.duration_s = 1.0;
  cfg.mean_rate_jps = 500.0;
  const auto mix = trace_mix(mixed_taskset());
  const Trace a = generate_trace(mix, cfg);
  const Trace b = generate_trace(mix, cfg);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].arrival_us, b.rows[i].arrival_us);
    EXPECT_EQ(a.rows[i].model, b.rows[i].model);
    EXPECT_EQ(a.rows[i].slo, b.rows[i].slo);
  }
  cfg.seed = 43;
  const Trace c = generate_trace(mix, cfg);
  EXPECT_NE(a.rows.size(), c.rows.size());
}

TEST(TraceGen, MeanRateWithinTolerance) {
  TraceGenConfig cfg;
  cfg.duration_s = 20.0;
  cfg.mean_rate_jps = 1000.0;
  const Trace t = generate_trace(trace_mix(mixed_taskset()), cfg);
  // 20k expected arrivals, Poisson sd ~ 141: +-5% is > 7 sigma.
  const double realised =
      static_cast<double>(t.rows.size()) / cfg.duration_s;
  EXPECT_NEAR(realised, cfg.mean_rate_jps, 0.05 * cfg.mean_rate_jps);
  EXPECT_TRUE(std::is_sorted(
      t.rows.begin(), t.rows.end(),
      [](const TraceRow& a, const TraceRow& b) {
        return a.arrival_us < b.arrival_us;
      }));
}

TEST(TraceGen, DiurnalModulationShapesTheRate) {
  TraceGenConfig cfg;
  cfg.duration_s = 10.0;
  cfg.mean_rate_jps = 1000.0;
  cfg.diurnal_amplitude = 0.8;
  cfg.diurnal_period_s = 10.0;
  // sin > 0 over the first half-period, < 0 over the second.
  EXPECT_GT(trace_rate_at(cfg, 2.5), 1700.0);
  EXPECT_LT(trace_rate_at(cfg, 7.5), 300.0);

  const Trace t = generate_trace(trace_mix(mixed_taskset()), cfg);
  std::uint64_t first_half = 0;
  std::uint64_t second_half = 0;
  for (const auto& row : t.rows) {
    (row.arrival_us < 5'000'000 ? first_half : second_half)++;
  }
  // Expected split 9:1; 3:1 is a generous floor.
  EXPECT_GT(first_half, 3 * second_half);
}

TEST(TraceGen, FlashCrowdMultipliesTheWindowRate) {
  TraceGenConfig cfg;
  cfg.duration_s = 6.0;
  cfg.mean_rate_jps = 500.0;
  FlashCrowd flash;
  flash.start_s = 2.0;
  flash.duration_s = 1.0;
  flash.factor = 4.0;
  cfg.flashes.push_back(flash);
  EXPECT_DOUBLE_EQ(trace_rate_at(cfg, 1.0), 500.0);
  EXPECT_DOUBLE_EQ(trace_rate_at(cfg, 2.5), 2000.0);
  EXPECT_DOUBLE_EQ(trace_rate_at(cfg, 3.5), 500.0);

  const Trace t = generate_trace(trace_mix(mixed_taskset()), cfg);
  std::uint64_t in_flash = 0;
  std::uint64_t before = 0;
  for (const auto& row : t.rows) {
    if (row.arrival_us >= 2'000'000 && row.arrival_us < 3'000'000) {
      ++in_flash;
    } else if (row.arrival_us < 2'000'000) {
      ++before;
    }
  }
  // 4x the rate in the window vs 2x the pre-window duration: expect about
  // 2x the count, and well above it at minimum.
  EXPECT_GT(in_flash, before);
}

TEST(TraceGen, MixWeightsShapeClassShares) {
  std::vector<TraceMixEntry> mix(2);
  mix[0].model = dnn::ModelKind::kResNet18;
  mix[0].slo = Priority::kHigh;
  mix[0].weight = 3.0;
  mix[1].model = dnn::ModelKind::kUNet;
  mix[1].slo = Priority::kLow;
  mix[1].weight = 1.0;
  TraceGenConfig cfg;
  cfg.duration_s = 10.0;
  cfg.mean_rate_jps = 1000.0;
  const Trace t = generate_trace(mix, cfg);
  std::uint64_t hp = 0;
  for (const auto& row : t.rows) {
    if (row.slo == Priority::kHigh) {
      EXPECT_EQ(row.model, dnn::ModelKind::kResNet18);
      ++hp;
    } else {
      EXPECT_EQ(row.model, dnn::ModelKind::kUNet);
    }
  }
  const double share =
      static_cast<double>(hp) / static_cast<double>(t.rows.size());
  EXPECT_NEAR(share, 0.75, 0.03);
}

TEST(TraceMix, WeightsClassesByAggregateRate) {
  // Two HP ResNet18 tasks at 10ms + one LP UNet task at 20ms: class weights
  // must come out 200:50 in class order.
  TaskSetSpec taskset;
  for (int i = 0; i < 3; ++i) {
    rt::TaskSpec spec;
    spec.model = i < 2 ? dnn::ModelKind::kResNet18 : dnn::ModelKind::kUNet;
    spec.priority = i < 2 ? Priority::kHigh : Priority::kLow;
    spec.period = common::from_ms(i < 2 ? 10.0 : 20.0);
    spec.relative_deadline = spec.period;
    taskset.tasks.push_back(spec);
  }
  const auto mix = trace_mix(taskset);
  ASSERT_EQ(mix.size(), 2u);
  EXPECT_EQ(mix[0].model, dnn::ModelKind::kResNet18);
  EXPECT_EQ(mix[0].slo, Priority::kHigh);
  EXPECT_DOUBLE_EQ(mix[0].weight, 200.0);
  EXPECT_EQ(mix[1].model, dnn::ModelKind::kUNet);
  EXPECT_EQ(mix[1].slo, Priority::kLow);
  EXPECT_DOUBLE_EQ(mix[1].weight, 50.0);
}

TEST(TraceFixture, BundledDiurnalTraceLoadsAndMatchesTheMixedSet) {
  Trace trace;
  std::string error;
  ASSERT_TRUE(load_trace_csv(std::string(DARIS_TEST_DATA_DIR) +
                                 "/diurnal_50k.csv",
                             &trace, &error))
      << error;
  EXPECT_GT(trace.rows.size(), 45000u);
  EXPECT_LT(trace.rows.size(), 55000u);

  // Every row must map to a task of the mixed set (no unmatched classes).
  std::uint64_t unmatched = 0;
  replay(mixed_taskset(), trace, common::from_sec(30.0), nullptr, &unmatched);
  EXPECT_EQ(unmatched, 0u);
}

}  // namespace
}  // namespace daris::workload
