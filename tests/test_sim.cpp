#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace daris::sim {
namespace {

using common::from_us;

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  common::Time fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventHandle h = sim.schedule_at(10, [&] { ran = true; });
  sim.cancel(h);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelIsIdempotentAndSafeWhenStale) {
  Simulator sim;
  int runs = 0;
  const EventHandle h = sim.schedule_at(10, [&] { ++runs; });
  sim.run();
  EXPECT_EQ(runs, 1);
  sim.cancel(h);   // already executed: must be a no-op
  sim.cancel(h);   // double cancel: no-op
  sim.cancel({});  // invalid handle: no-op
  sim.schedule_at(sim.now() + 1, [&] { ++runs; });
  sim.run();
  EXPECT_EQ(runs, 2);
}

TEST(Simulator, CancelOfAlreadyFiredHandleLeavesAccountingIntact) {
  Simulator sim;
  const EventHandle h = sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending(), 0u);
  sim.cancel(h);  // fired long ago: must not corrupt pending()/empty()
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending(), 0u);
  bool ran = false;
  sim.schedule_at(sim.now() + 1, [&] { ran = true; });
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, DoubleCancelCountsOnce) {
  Simulator sim;
  const EventHandle a = sim.schedule_at(10, [] {});
  sim.schedule_at(20, [] {});
  sim.cancel(a);
  sim.cancel(a);  // second cancel of the same pending event: no-op
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.empty());
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, CancelDuringCallbackSuppressesSameTimeSibling) {
  Simulator sim;
  bool sibling_ran = false;
  EventHandle sibling;
  // Both events are at t=10; the first to fire cancels the second before the
  // queue pops it.
  sim.schedule_at(10, [&] { sim.cancel(sibling); });
  sibling = sim.schedule_at(10, [&] { sibling_ran = true; });
  sim.run();
  EXPECT_FALSE(sibling_ran);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ScheduleDuringCallbackAtCurrentTimeRunsThisPass) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] {
    order.push_back(1);
    sim.schedule_at(sim.now(), [&] { order.push_back(2); });
  });
  sim.schedule_at(10, [&] { order.push_back(3); });
  sim.run();
  // The nested event is at the same time but a later seq, so it runs after
  // the already-queued tie.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulator, CancelThenRescheduleKeepsCountsConsistent) {
  Simulator sim;
  int runs = 0;
  EventHandle h = sim.schedule_at(10, [&] { ++runs; });
  sim.cancel(h);
  h = sim.schedule_at(10, [&] { ++runs; });
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(runs, 1);
  sim.cancel(h);  // handle from the reschedule, already fired: no-op
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<common::Time> fired;
  for (common::Time t : {10, 20, 30, 40}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  const std::size_t n = sim.run_until(25);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(sim.now(), 25);
  EXPECT_EQ(fired, (std::vector<common::Time>{10, 20}));
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilExecutesEventsExactlyAtDeadline) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(25, [&] { ran = true; });
  sim.run_until(25);
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) sim.schedule_after(from_us(1), chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 4 * from_us(1));
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  const EventHandle a = sim.schedule_at(10, [] {});
  sim.schedule_at(20, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.empty());
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int runs = 0;
  sim.schedule_at(5, [&] { ++runs; });
  sim.schedule_at(6, [&] { ++runs; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(runs, 2);
  EXPECT_FALSE(sim.step());
}

// The past-time contract (identical in Debug and Release): schedule_at with
// `when` < now() clamps to now() and fires on the current tick, ordered
// after events already queued for that tick.
TEST(Simulator, ScheduleInThePastClampsToNow) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run();
  ASSERT_EQ(sim.now(), 100);
  common::Time fired_at = -1;
  sim.schedule_at(40, [&] { fired_at = sim.now(); });  // 60 ticks in the past
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired_at, 100);
  EXPECT_EQ(sim.now(), 100);  // the clock never moves backwards
}

TEST(Simulator, ScheduleInThePastDuringCallbackOrdersAfterCurrentTick) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(50, [&] {
    order.push_back(1);
    sim.schedule_at(10, [&] { order.push_back(3); });  // clamps to t=50
  });
  sim.schedule_at(50, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule_at(30, [] {});
  sim.run();
  common::Time fired_at = -1;
  sim.schedule_after(-100, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, 30);
}

TEST(Simulator, RescheduleMovesEventLater) {
  Simulator sim;
  std::vector<int> order;
  const EventHandle h = sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_TRUE(sim.reschedule(h, 30));
  EXPECT_EQ(sim.pending(), 2u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, RescheduleMovesEventEarlier) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(20, [&] { order.push_back(1); });
  const EventHandle h = sim.schedule_at(30, [&] { order.push_back(2); });
  EXPECT_TRUE(sim.reschedule(h, 10));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Simulator, RescheduleOfStaleHandleIsRejected) {
  Simulator sim;
  int runs = 0;
  const EventHandle fired = sim.schedule_at(10, [&] { ++runs; });
  sim.run();
  EXPECT_FALSE(sim.reschedule(fired, 100));  // already fired
  const EventHandle cancelled = sim.schedule_at(20, [&] { ++runs; });
  sim.cancel(cancelled);
  EXPECT_FALSE(sim.reschedule(cancelled, 100));  // already cancelled
  EXPECT_FALSE(sim.reschedule({}, 100));         // invalid handle
  EXPECT_TRUE(sim.empty());
  sim.run();
  EXPECT_EQ(runs, 1);
}

// Rescheduling draws a fresh tie-break slot, exactly as cancel+schedule
// would: an event moved onto a time with existing entries runs after them.
TEST(Simulator, RescheduleOrdersAfterExistingTiesAtNewTime) {
  Simulator sim;
  std::vector<int> order;
  const EventHandle h = sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(50, [&] { order.push_back(2); });
  sim.reschedule(h, 50);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Simulator, RescheduleToPastClampsToNow) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  common::Time fired_at = -1;
  const EventHandle h = sim.schedule_at(200, [&] { fired_at = sim.now(); });
  sim.run_until(150);
  EXPECT_TRUE(sim.reschedule(h, 50));  // in the past: fires at now()=150
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, CancelAfterRescheduleStillCancels) {
  Simulator sim;
  bool ran = false;
  const EventHandle h = sim.schedule_at(10, [&] { ran = true; });
  sim.reschedule(h, 20);
  sim.cancel(h);  // the handle stays valid across reschedule
  EXPECT_TRUE(sim.empty());
  sim.run();
  EXPECT_FALSE(ran);
}

// The periodic-timer pattern: an event re-arms itself from inside its own
// callback, reusing its node and callback with no new allocation.
TEST(Simulator, RescheduleFromOwnCallbackReArmsEvent) {
  Simulator sim;
  std::vector<common::Time> fired;
  EventHandle h;
  h = sim.schedule_at(10, [&] {
    fired.push_back(sim.now());
    if (fired.size() < 3) {
      EXPECT_TRUE(sim.reschedule(h, sim.now() + 10));
    }
  });
  sim.run();
  EXPECT_EQ(fired, (std::vector<common::Time>{10, 20, 30}));
  EXPECT_FALSE(sim.reschedule(h, 100));  // lapsed after the last firing
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, CancelInsideOwnCallbackUndoesReArm) {
  Simulator sim;
  int runs = 0;
  EventHandle h;
  h = sim.schedule_at(10, [&] {
    ++runs;
    sim.reschedule(h, sim.now() + 10);
    sim.cancel(h);  // changes its mind: the re-arm must not survive
  });
  sim.run();
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending(), 0u);
}

// A callback may pump the simulator itself (nested step()/run_until()) and
// still re-arm afterwards: the nested firing must not clobber the outer
// event's firing state.
TEST(Simulator, RescheduleFromOwnCallbackSurvivesNestedStep) {
  Simulator sim;
  std::vector<common::Time> fired;
  int helper_runs = 0;
  EventHandle h;
  h = sim.schedule_at(10, [&] {
    fired.push_back(sim.now());
    sim.schedule_at(sim.now(), [&] { ++helper_runs; });
    EXPECT_TRUE(sim.step());  // drain the same-tick helper event in place
    if (fired.size() < 3) {
      EXPECT_TRUE(sim.reschedule(h, sim.now() + 10));
    }
  });
  sim.run();
  EXPECT_EQ(fired, (std::vector<common::Time>{10, 20, 30}));
  EXPECT_EQ(helper_runs, 3);
  EXPECT_TRUE(sim.empty());
}

// Hardest reentrancy shape: the callback re-arms its event at the *current*
// tick and pumps a nested step(), which fires the same node reentrantly.
// The node must be recycled exactly once (when the outermost frame unwinds),
// or the free list corrupts and later events share a slot.
TEST(Simulator, ReentrantSameEventFiringRecyclesNodeOnce) {
  Simulator sim;
  int runs = 0;
  EventHandle h;
  h = sim.schedule_at(10, [&] {
    ++runs;
    if (runs == 1) {
      EXPECT_TRUE(sim.reschedule(h, sim.now()));
      EXPECT_TRUE(sim.step());  // fires this very event again, reentrantly
    }
  });
  sim.run();
  EXPECT_EQ(runs, 2);
  EXPECT_TRUE(sim.empty());
  // The pool must hand out distinct live slots afterwards.
  int a = 0, b = 0;
  sim.schedule_at(20, [&] { ++a; });
  sim.schedule_at(21, [&] { ++b; });
  EXPECT_EQ(sim.pending(), 2u);
  sim.run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(Simulator, HandlesStayDistinctAcrossNodeReuse) {
  Simulator sim;
  const EventHandle a = sim.schedule_at(10, [] {});
  sim.cancel(a);
  // The pool recycles a's node for b; a's handle must not alias it.
  int b_runs = 0;
  sim.schedule_at(20, [&] { ++b_runs; });
  sim.cancel(a);                          // stale: must not cancel b
  EXPECT_FALSE(sim.reschedule(a, 99));    // stale: must not move b
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(b_runs, 1);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  common::Time last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    const common::Time t = (i * 7919) % 100000;
    sim.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace daris::sim
