#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace daris::sim {
namespace {

using common::from_us;

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  common::Time fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventHandle h = sim.schedule_at(10, [&] { ran = true; });
  sim.cancel(h);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelIsIdempotentAndSafeWhenStale) {
  Simulator sim;
  int runs = 0;
  const EventHandle h = sim.schedule_at(10, [&] { ++runs; });
  sim.run();
  EXPECT_EQ(runs, 1);
  sim.cancel(h);   // already executed: must be a no-op
  sim.cancel(h);   // double cancel: no-op
  sim.cancel({});  // invalid handle: no-op
  sim.schedule_at(sim.now() + 1, [&] { ++runs; });
  sim.run();
  EXPECT_EQ(runs, 2);
}

TEST(Simulator, CancelOfAlreadyFiredHandleLeavesAccountingIntact) {
  Simulator sim;
  const EventHandle h = sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending(), 0u);
  sim.cancel(h);  // fired long ago: must not corrupt pending()/empty()
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending(), 0u);
  bool ran = false;
  sim.schedule_at(sim.now() + 1, [&] { ran = true; });
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, DoubleCancelCountsOnce) {
  Simulator sim;
  const EventHandle a = sim.schedule_at(10, [] {});
  sim.schedule_at(20, [] {});
  sim.cancel(a);
  sim.cancel(a);  // second cancel of the same pending event: no-op
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.empty());
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, CancelDuringCallbackSuppressesSameTimeSibling) {
  Simulator sim;
  bool sibling_ran = false;
  EventHandle sibling;
  // Both events are at t=10; the first to fire cancels the second before the
  // queue pops it.
  sim.schedule_at(10, [&] { sim.cancel(sibling); });
  sibling = sim.schedule_at(10, [&] { sibling_ran = true; });
  sim.run();
  EXPECT_FALSE(sibling_ran);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ScheduleDuringCallbackAtCurrentTimeRunsThisPass) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] {
    order.push_back(1);
    sim.schedule_at(sim.now(), [&] { order.push_back(2); });
  });
  sim.schedule_at(10, [&] { order.push_back(3); });
  sim.run();
  // The nested event is at the same time but a later seq, so it runs after
  // the already-queued tie.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulator, CancelThenRescheduleKeepsCountsConsistent) {
  Simulator sim;
  int runs = 0;
  EventHandle h = sim.schedule_at(10, [&] { ++runs; });
  sim.cancel(h);
  h = sim.schedule_at(10, [&] { ++runs; });
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(runs, 1);
  sim.cancel(h);  // handle from the reschedule, already fired: no-op
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<common::Time> fired;
  for (common::Time t : {10, 20, 30, 40}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  const std::size_t n = sim.run_until(25);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(sim.now(), 25);
  EXPECT_EQ(fired, (std::vector<common::Time>{10, 20}));
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilExecutesEventsExactlyAtDeadline) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(25, [&] { ran = true; });
  sim.run_until(25);
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) sim.schedule_after(from_us(1), chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 4 * from_us(1));
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  const EventHandle a = sim.schedule_at(10, [] {});
  sim.schedule_at(20, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.empty());
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int runs = 0;
  sim.schedule_at(5, [&] { ++runs; });
  sim.schedule_at(6, [&] { ++runs; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(runs, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  common::Time last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    const common::Time t = (i * 7919) % 100000;
    sim.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace daris::sim
