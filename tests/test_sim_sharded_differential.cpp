// Differential pinning of the sharded engine (sim/sharded.h).
//
// Two layers, mirroring test_sim_differential / test_gpusim_differential:
//
//  1. A synthetic randomized fleet — per-shard actors churning local timer
//     events, a control actor injecting cross-shard placements, two-hop
//     transfers, and steals — replayed at 1, 2, and N worker threads. The
//     per-shard (when, seq) execution logs and their FNV-1a digest must be
//     bit-identical at every thread count: the conservative window barrier
//     makes thread scheduling invisible.
//
//  2. run_cluster with routing, faults, autoscaling, and rebalancing all
//     armed: the sharded engine at 1/2/4 threads must reproduce every
//     counter of the single-simulator run exactly, and run_scenario's
//     committed fingerprint string must come out byte-identical sharded.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "experiments/cluster_runner.h"
#include "experiments/scenarios.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "workload/taskset.h"

namespace daris::sim {
namespace {

std::uint64_t fnv1a(const void* data, std::size_t len,
                    std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// One executed event, as the logs record it: shard-local (when, seq) plus
/// the actor state it observed — any ordering difference changes the state
/// chain and with it the digest.
struct LogEntry {
  common::Time when = 0;
  std::uint64_t seq = 0;  // per-shard execution index
  std::uint64_t state = 0;
};

/// Synthetic sharded fleet: every shard runs a self-re-arming local actor;
/// the control shard periodically reads all states, mutates two shards
/// ("steal"), schedules onto a shard ("placement"), and bounces a delayed
/// control event into a shard ("transfer"). All randomness is seeded and
/// drawn on the control shard or per-shard, so the run is a pure function of
/// (shards, seed) — never of the thread count.
struct SyntheticFleet {
  SyntheticFleet(int num_shards, int threads, std::uint64_t seed)
      : sharded(num_shards, threads), states(num_shards, 0),
        logs(num_shards), control_rng(seed) {
    for (int s = 0; s < num_shards; ++s) {
      arm_local(s, common::Rng(seed ^ (0x9E3779B97F4A7C15ull * (s + 1))),
                /*when=*/common::from_us(10.0 * (s + 1)));
    }
    arm_control(common::from_us(50.0));
  }

  void arm_local(int s, common::Rng rng, common::Time when) {
    sharded.shard(s).schedule_at(when, [this, s, rng]() mutable {
      Simulator& sim = sharded.shard(s);
      auto& st = states[static_cast<std::size_t>(s)];
      st = st * 6364136223846793005ull + 1442695040888963407ull;
      logs[static_cast<std::size_t>(s)].push_back(
          {sim.now(), logs[static_cast<std::size_t>(s)].size(), st});
      const double delay_us = rng.uniform(5.0, 120.0);
      arm_local(s, rng, sim.now() + common::from_us(delay_us));
    });
  }

  void arm_control(common::Time when) {
    sharded.control().schedule_at(when, [this] {
      Simulator& ctl = sharded.control();
      // Read every shard's state (a cross-shard observation).
      std::uint64_t sum = 0;
      for (const std::uint64_t st : states) sum += st;
      control_log.push_back({ctl.now(), control_log.size(), sum});
      const int n = static_cast<int>(states.size());
      // Placement: schedule a local mutation onto a seeded-chosen shard.
      const int target = static_cast<int>(control_rng.uniform_int(0, n - 1));
      const double place_us = control_rng.uniform(1.0, 40.0);
      sharded.shard(target).schedule_at(
          ctl.now() + common::from_us(place_us), [this, target] {
            auto& st = states[static_cast<std::size_t>(target)];
            st ^= 0xD1B54A32D192ED03ull;
            logs[static_cast<std::size_t>(target)].push_back(
                {sharded.shard(target).now(),
                 logs[static_cast<std::size_t>(target)].size(), st});
          });
      // Steal: move "work" between two shards right now (control phase may
      // touch any shard's state directly).
      const int victim = static_cast<int>(control_rng.uniform_int(0, n - 1));
      const int thief = (victim + 1) % n;
      const std::uint64_t moved = states[victim] >> 3;
      states[victim] -= moved;
      states[thief] += moved;
      // Transfer: a delayed control event that lands on a shard two hops
      // later (models router weight-transfer delivery).
      const int dest = static_cast<int>(control_rng.uniform_int(0, n - 1));
      const double xfer_us = control_rng.uniform(10.0, 80.0);
      ctl.schedule_after(common::from_us(xfer_us), [this, dest] {
        sharded.shard(dest).schedule_after(
            common::from_us(5.0), [this, dest] {
              auto& st = states[static_cast<std::size_t>(dest)];
              st += 0x2545F4914F6CDD1Dull;
              logs[static_cast<std::size_t>(dest)].push_back(
                  {sharded.shard(dest).now(),
                   logs[static_cast<std::size_t>(dest)].size(), st});
            });
      });
      arm_control(ctl.now() + common::from_us(control_rng.uniform(20., 90.)));
    });
  }

  std::uint64_t digest() const {
    std::uint64_t h = fnv1a(control_log.data(),
                            control_log.size() * sizeof(LogEntry));
    for (const auto& log : logs) {
      h = fnv1a(log.data(), log.size() * sizeof(LogEntry), h);
    }
    return h;
  }

  ShardedSimulator sharded;
  std::vector<std::uint64_t> states;
  std::vector<std::vector<LogEntry>> logs;
  std::vector<LogEntry> control_log;
  common::Rng control_rng;
};

struct SyntheticRun {
  std::vector<std::vector<LogEntry>> logs;
  std::vector<LogEntry> control_log;
  std::uint64_t digest = 0;
  std::size_t executed = 0;
};

SyntheticRun run_synthetic(int shards, int threads, std::uint64_t seed,
                           double horizon_ms) {
  SyntheticFleet fleet(shards, threads, seed);
  SyntheticRun out;
  out.executed = fleet.sharded.run_until(common::from_ms(horizon_ms));
  out.logs = std::move(fleet.logs);
  out.control_log = std::move(fleet.control_log);
  out.digest = fleet.digest();
  return out;
}

void expect_identical(const SyntheticRun& a, const SyntheticRun& b,
                      const char* label) {
  EXPECT_EQ(a.digest, b.digest) << label;
  EXPECT_EQ(a.executed, b.executed) << label;
  ASSERT_EQ(a.logs.size(), b.logs.size()) << label;
  ASSERT_EQ(a.control_log.size(), b.control_log.size()) << label;
  for (std::size_t s = 0; s < a.logs.size(); ++s) {
    ASSERT_EQ(a.logs[s].size(), b.logs[s].size()) << label << " shard " << s;
    for (std::size_t i = 0; i < a.logs[s].size(); ++i) {
      ASSERT_EQ(a.logs[s][i].when, b.logs[s][i].when)
          << label << " shard " << s << " entry " << i;
      ASSERT_EQ(a.logs[s][i].seq, b.logs[s][i].seq)
          << label << " shard " << s << " entry " << i;
      ASSERT_EQ(a.logs[s][i].state, b.logs[s][i].state)
          << label << " shard " << s << " entry " << i;
    }
  }
}

TEST(ShardedDifferential, RandomMixesBitIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {1ull, 42ull, 0xC0FFEEull}) {
    for (const int shards : {2, 3, 8}) {
      const SyntheticRun one = run_synthetic(shards, 1, seed, 20.0);
      const SyntheticRun two = run_synthetic(shards, 2, seed, 20.0);
      const SyntheticRun many = run_synthetic(shards, 0, seed, 20.0);
      ASSERT_GT(one.executed, 100u);
      expect_identical(one, two, "1 vs 2 threads");
      expect_identical(one, many, "1 vs auto threads");
    }
  }
}

TEST(ShardedDifferential, RepeatRunsBitIdenticalAtSameThreadCount) {
  const SyntheticRun a = run_synthetic(4, 4, 7, 20.0);
  const SyntheticRun b = run_synthetic(4, 4, 7, 20.0);
  expect_identical(a, b, "repeat at 4 threads");
}

TEST(ShardedDifferential, ZeroShardFacadeMatchesPlainSimulator) {
  // With no device shards the facade must be the single-threaded engine
  // bit-for-bit: same event order, same clock behaviour.
  std::vector<std::pair<common::Time, int>> plain_log, facade_log;
  auto drive = [](Simulator& sim,
                  std::vector<std::pair<common::Time, int>>* log) {
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(common::from_us(10.0 * (i % 7)), [log, i, psim = &sim] {
        log->emplace_back(psim->now(), i);
      });
    }
  };
  Simulator plain;
  drive(plain, &plain_log);
  const std::size_t plain_exec = plain.run_until(common::from_ms(1.0));

  ShardedSimulator facade(0, 4);
  drive(facade.control(), &facade_log);
  const std::size_t facade_exec = facade.run_until(common::from_ms(1.0));

  EXPECT_EQ(plain_exec, facade_exec);
  EXPECT_EQ(plain.now(), facade.now());
  ASSERT_EQ(plain_log.size(), facade_log.size());
  for (std::size_t i = 0; i < plain_log.size(); ++i) {
    EXPECT_EQ(plain_log[i], facade_log[i]) << "entry " << i;
  }
}

TEST(ShardedDifferential, ClocksAllReachTheDeadline) {
  ShardedSimulator s(3, 2);
  s.shard(1).schedule_at(common::from_us(5.0), [] {});
  s.control().schedule_at(common::from_us(12.0), [] {});
  s.run_until(common::from_ms(2.0));
  EXPECT_EQ(s.now(), common::from_ms(2.0));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(s.shard(i).now(), common::from_ms(2.0)) << "shard " << i;
  }
  EXPECT_TRUE(s.empty());
}

TEST(ShardedDifferential, AddShardJoinsMidRunAtFleetTime) {
  ShardedSimulator s(2, 2);
  int fired_on_new = 0;
  s.control().schedule_at(common::from_us(100.0), [&] {
    const int g = s.add_shard();
    EXPECT_EQ(g, 2);
    EXPECT_EQ(s.shard(g).now(), common::from_us(100.0));
    s.shard(g).schedule_after(common::from_us(10.0),
                              [&fired_on_new] { ++fired_on_new; });
  });
  s.run_until(common::from_ms(1.0));
  EXPECT_EQ(fired_on_new, 1);
  EXPECT_EQ(s.device_shards(), 3);
}

// --- cluster-level differential -----------------------------------------

/// Every counter of a ClusterResult that the scenario fingerprint covers,
/// flattened for equality comparison.
std::vector<std::uint64_t> counters_of(const exp::ClusterResult& r) {
  std::vector<std::uint64_t> v = {
      r.hp.released,  r.hp.accepted,  r.hp.rejected, r.hp.completed,
      r.hp.missed,    r.lp.released,  r.lp.accepted, r.lp.rejected,
      r.lp.completed, r.lp.missed,    r.drops,       r.infeasible_rejects,
      r.transfers,    r.arrivals,     r.jobs_lost,   r.steals,
      r.rehomes,      r.transfer_cancels,            r.coalesced_transfers,
      r.cross_gpu_migrations,         r.intra_gpu_migrations,
      r.first_attempts,               r.retries,
      r.retry_admits, r.retry_abandoned_budget,
      r.retry_abandoned_expired,      r.retry_abandoned_attempts,
      r.hedges,       r.hedge_wins,   r.hedge_cancels,
      r.hedge_waste,  r.hedge_rescued_misses,
      r.breaker_opens,
      r.breaker_closes,               r.conservation_ok ? 1u : 0u,
  };
  for (const auto& g : r.per_gpu) {
    v.push_back(g.completed);
    v.push_back(g.routing.routed);
    v.push_back(g.routing.migrated_in);
    v.push_back(g.routing.migrated_out);
  }
  v.push_back(static_cast<std::uint64_t>(r.stage_trace.size()));
  return v;
}

exp::ClusterConfig differential_cluster_config() {
  exp::ClusterConfig cfg;
  cfg.taskset = workload::replicated_taskset(workload::mixed_taskset(), 4);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 4;
  cfg.sched.oversubscription = 4.0;
  cfg.num_gpus = 4;
  cfg.routing = cluster::RoutingPolicy::kHybrid;
  cfg.arrivals = exp::ArrivalMode::kPoisson;
  cfg.rate_scale = 1.1;
  cfg.duration_s = 1.2;
  cfg.warmup_s = 0.3;
  cfg.stage_trace = true;
  cfg.rebalance.enabled = true;
  // Faults cross every control->shard edge: fail, straggler, scale-up.
  exp::FaultSpec fail;
  fail.kind = exp::FaultSpec::Kind::kFail;
  fail.gpu = 1;
  fail.at_s = 0.7;
  exp::FaultSpec slow;
  slow.kind = exp::FaultSpec::Kind::kSlow;
  slow.gpu = 2;
  slow.at_s = 0.5;
  slow.factor = 0.6;
  exp::FaultSpec add;
  add.kind = exp::FaultSpec::Kind::kAdd;
  add.at_s = 0.9;
  cfg.faults = {fail, slow, add};
  return cfg;
}

TEST(ShardedDifferential, ClusterRunMatchesUnshardedAtEveryThreadCount) {
  exp::ClusterConfig cfg = differential_cluster_config();
  const exp::ClusterResult baseline = exp::run_cluster(cfg);
  const std::vector<std::uint64_t> want = counters_of(baseline);
  ASSERT_GT(baseline.hp.completed + baseline.lp.completed, 100u);
  ASSERT_GT(baseline.stage_trace.size(), 0u);

  for (const int threads : {1, 2, 4}) {
    exp::ClusterConfig sharded_cfg = differential_cluster_config();
    sharded_cfg.sharded = true;
    sharded_cfg.sim_threads = threads;
    const exp::ClusterResult r = exp::run_cluster(sharded_cfg);
    EXPECT_EQ(counters_of(r), want) << threads << " threads";
    EXPECT_EQ(r.total_jps, baseline.total_jps) << threads << " threads";
    ASSERT_EQ(r.per_gpu.size(), baseline.per_gpu.size());
    for (std::size_t g = 0; g < r.per_gpu.size(); ++g) {
      EXPECT_EQ(r.per_gpu[g].utilization, baseline.per_gpu[g].utilization)
          << threads << " threads, gpu " << g;
    }
  }
}

// --- chaos-schedule fuzz -------------------------------------------------

/// A randomized-but-seeded adversarial config: fuzzed fault schedule (kind,
/// target, time, severity all drawn from `seed`), rebalancing coin-flipped,
/// and the resilience layer armed with fuzzed retry/hedge/breaker knobs.
/// Everything the fleet ships, colliding on one run.
exp::ClusterConfig chaos_cluster_config(std::uint64_t seed) {
  common::Rng rng(seed);
  exp::ClusterConfig cfg;
  cfg.taskset = workload::replicated_taskset(workload::mixed_taskset(), 3);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 4;
  cfg.sched.oversubscription = 4.0;
  cfg.num_gpus = 3;
  cfg.routing = cluster::RoutingPolicy::kHybrid;
  cfg.arrivals = exp::ArrivalMode::kBursty;
  cfg.rate_scale = rng.uniform(1.0, 1.5);  // overload => sheds => retries
  cfg.duration_s = 1.2;
  cfg.warmup_s = 0.3;
  cfg.seed = seed ^ 0xF1EE71ull;

  const int num_faults = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < num_faults; ++i) {
    exp::FaultSpec f;
    const int kind = static_cast<int>(rng.uniform_int(0, 3));
    f.kind = static_cast<exp::FaultSpec::Kind>(kind);
    f.gpu = static_cast<int>(rng.uniform_int(0, 2));
    f.at_s = rng.uniform(0.4, 1.0);
    f.factor = rng.uniform(0.3, 0.8);
    cfg.faults.push_back(f);
  }

  cfg.rebalance.enabled = rng.uniform(0.0, 1.0) < 0.5;

  cfg.resilience.enabled = true;
  cfg.resilience.seed = seed ^ 0x5EEDull;
  cfg.resilience.hp.backoff = cluster::RetryPolicy::Backoff::kExponential;
  cfg.resilience.lp.backoff = rng.uniform(0.0, 1.0) < 0.5
                                  ? cluster::RetryPolicy::Backoff::kFixed
                                  : cluster::RetryPolicy::Backoff::kExponential;
  cfg.resilience.hp.max_attempts = static_cast<int>(rng.uniform_int(2, 5));
  cfg.resilience.lp.max_attempts = static_cast<int>(rng.uniform_int(2, 5));
  cfg.resilience.hp.base_delay_us = rng.uniform(100.0, 800.0);
  cfg.resilience.lp.base_delay_us = rng.uniform(100.0, 800.0);
  cfg.resilience.budget_enabled = rng.uniform(0.0, 1.0) < 0.7;
  cfg.resilience.retry_budget_ratio = rng.uniform(0.05, 0.5);
  cfg.resilience.hedge = rng.uniform(0.0, 1.0) < 0.5;
  cfg.resilience.breaker = rng.uniform(0.0, 1.0) < 0.5;
  cfg.resilience.breaker_open_threshold = rng.uniform(0.2, 0.6);
  return cfg;
}

TEST(ShardedDifferential, ChaosScheduleConservesAndMatchesAcrossThreads) {
  // Fault schedule x rebalancing x retries/hedging/breakers, fuzzed per
  // seed: however the chaos lands, (a) every job must be conserved, and
  // (b) the sharded engine must reproduce the single-simulator run exactly
  // at every thread count.
  for (const std::uint64_t seed : {3ull, 11ull, 0xABCDull}) {
    const exp::ClusterResult baseline =
        exp::run_cluster(chaos_cluster_config(seed));
    EXPECT_TRUE(baseline.conservation_ok)
        << "seed " << seed << ": " << baseline.conservation_detail;
    const std::vector<std::uint64_t> want = counters_of(baseline);
    ASSERT_GT(baseline.hp.completed + baseline.lp.completed, 50u)
        << "seed " << seed;

    for (const int threads : {1, 2, 4}) {
      exp::ClusterConfig cfg = chaos_cluster_config(seed);
      cfg.sharded = true;
      cfg.sim_threads = threads;
      const exp::ClusterResult r = exp::run_cluster(cfg);
      EXPECT_TRUE(r.conservation_ok)
          << "seed " << seed << ", " << threads << " threads: "
          << r.conservation_detail;
      EXPECT_EQ(counters_of(r), want)
          << "seed " << seed << ", " << threads << " threads";
    }
  }
}

TEST(ShardedDifferential, ScenarioFingerprintAndTelemetryDigestMatch) {
  // One full scenario through the public API: the committed fingerprint
  // string and the telemetry digest must be byte-identical between the
  // single-simulator run and sharded runs at 1, 2, and auto threads.
  // (scripts/check_scenarios.py --sharded gates the whole matrix in CI.)
  const std::string data_dir = DARIS_TEST_DATA_DIR;
  const exp::ScenarioTelemetry telemetry;
  const exp::ScenarioResult baseline =
      exp::run_scenario("overload-storm", data_dir, &telemetry);
  ASSERT_FALSE(baseline.fingerprint.empty());

  for (const int threads : {1, 2, 0}) {
    exp::ScenarioSharding sharding;
    sharding.threads = threads;
    const exp::ScenarioResult r =
        exp::run_scenario("overload-storm", data_dir, &telemetry, &sharding);
    EXPECT_EQ(r.fingerprint, baseline.fingerprint) << threads << " threads";
    EXPECT_EQ(r.telemetry_digest, baseline.telemetry_digest)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace daris::sim
