// Fault injection and autoscaling: fail-stop sheds exactly the dead GPU's
// in-flight jobs, the router never places on failed or draining devices,
// drain completes in-flight work, stragglers slow deterministically via the
// resolved-spec path, mid-run scale-up serves load, and a full fault
// schedule is bit-identical across repeat runs.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "cluster/fleet.h"
#include "cluster/router.h"
#include "experiments/cluster_runner.h"

namespace daris::cluster {
namespace {

using common::Priority;

/// Same deterministic fixture as test_cluster.cpp: jitter-free fleet,
/// single-context single-stream GPUs, one shared ResNet18 model,
/// zero-delay transfers (tests of in-flight cancellation pass a rate),
/// directly chosen AFET.
struct Harness {
  explicit Harness(int num_gpus, int num_contexts = 1,
                   double transfer_us_per_mb = 0.0) {
    FleetConfig cfg;
    cfg.num_gpus = num_gpus;
    cfg.gpu.jitter_cv = 0.0;
    cfg.transfer_us_per_mb = transfer_us_per_mb;
    cfg.sched.policy = rt::Policy::kMps;
    cfg.sched.num_contexts = num_contexts;
    model = std::make_unique<dnn::CompiledModel>(
        dnn::compiled_model(dnn::ModelKind::kResNet18, 1, cfg.gpu));
    collector.set_gpu_count(num_gpus);
    fleet = std::make_unique<Fleet>(sim, cfg, &collector);
  }

  int add_task(Priority priority, double total_afet_us, int home_gpu) {
    rt::TaskSpec spec;
    spec.model = dnn::ModelKind::kResNet18;
    spec.period = common::from_ms(10.0);
    spec.relative_deadline = spec.period;
    spec.priority = priority;
    const int id = fleet->add_task(spec, model.get(), home_gpu);
    fleet->set_afet(
        id, std::vector<double>(
                model->stage_count(),
                total_afet_us / static_cast<double>(model->stage_count())));
    return id;
  }

  sim::Simulator sim;
  metrics::Collector collector;
  std::unique_ptr<dnn::CompiledModel> model;
  std::unique_ptr<Fleet> fleet;
};

// --- fail-stop ------------------------------------------------------------

TEST(FleetFaults, FailStopShedsOnlyTheDeadGpusJobs) {
  Harness h(2);
  const int on0 = h.add_task(Priority::kLow, 2000.0, 0);
  const int on1 = h.add_task(Priority::kLow, 2000.0, 1);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(on0);
  router.release(on1);
  ASSERT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 1u);
  ASSERT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 1u);

  EXPECT_EQ(h.fleet->fail_gpu_now(0), 1u);
  EXPECT_EQ(h.fleet->health(0), GpuHealth::kFailed);
  EXPECT_FALSE(h.fleet->placeable(0));
  EXPECT_EQ(h.fleet->placeable_count(), 1);

  // Only GPU 0's job died; GPU 1's keeps running and completes on time.
  EXPECT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 0u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 1u);
  EXPECT_EQ(h.fleet->jobs_lost(), 1u);
  // The shed job is reported as a missed finish.
  EXPECT_EQ(h.collector.summary(Priority::kLow).missed, 1u);
  h.sim.run();
  EXPECT_EQ(h.fleet->scheduler(1).jobs_completed(), 1u);
  EXPECT_EQ(h.collector.summary(Priority::kLow).missed, 1u);

  // Tasks homed on the dead device moved to the survivor.
  EXPECT_EQ(h.fleet->home_gpu(on0), 1);
  EXPECT_EQ(h.fleet->home_gpu(on1), 1);

  // Idempotent: a second fail of the same device sheds nothing more.
  EXPECT_EQ(h.fleet->fail_gpu_now(0), 0u);
  EXPECT_EQ(h.fleet->jobs_lost(), 1u);
}

TEST(FleetFaults, RouterNeverPlacesOnFailedGpu) {
  Harness h(2);
  const int lp = h.add_task(Priority::kLow, 500.0, 0);
  const int hp = h.add_task(Priority::kHigh, 500.0, 0);
  h.fleet->run_offline_phase();
  h.fleet->fail_gpu_now(0);
  // Round-robin would offer GPU 0 first; the dead device must be skipped
  // for LP, and the HP job follows its rehomed reservation.
  Router router(*h.fleet, RoutingPolicy::kRoundRobin, 1, &h.collector);
  router.release(lp);
  router.release(hp);
  EXPECT_EQ(h.collector.routing(0).routed, 0u);
  EXPECT_EQ(h.collector.routing(1).routed, 2u);
  EXPECT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 0u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 2u);
  EXPECT_EQ(router.drops(), 0u);
}

TEST(FleetFaults, RouterNeverPlacesOnDrainingGpu) {
  Harness h(2);
  const int lp = h.add_task(Priority::kLow, 500.0, 0);
  h.fleet->run_offline_phase();
  h.fleet->drain_gpu_now(0);
  EXPECT_EQ(h.fleet->health(0), GpuHealth::kDraining);
  Router router(*h.fleet, RoutingPolicy::kLeastUtilization, 1, &h.collector);
  router.release(lp);
  EXPECT_EQ(h.collector.routing(0).routed, 0u);
  EXPECT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 0u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 1u);
}

// --- drain ----------------------------------------------------------------

TEST(FleetFaults, DrainCompletesInFlightWork) {
  Harness h(2);
  const int lp = h.add_task(Priority::kLow, 4000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(lp);
  ASSERT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 1u);

  h.fleet->drain_gpu_now(0);
  // Graceful: nothing is shed, the job finishes on the draining device.
  EXPECT_EQ(h.fleet->jobs_lost(), 0u);
  EXPECT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 1u);
  h.sim.run();
  EXPECT_EQ(h.fleet->scheduler(0).jobs_completed(), 1u);
  EXPECT_EQ(h.collector.summary(Priority::kLow).missed, 0u);
  // The task was rehomed, so the next release lands on the survivor.
  EXPECT_EQ(h.fleet->home_gpu(lp), 1);
  router.release(lp);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 1u);
  // Draining a failed device must not resurrect it to draining.
  h.fleet->fail_gpu_now(1);
  h.fleet->drain_gpu_now(1);
  EXPECT_EQ(h.fleet->health(1), GpuHealth::kFailed);
}

// --- in-flight transfers across faults -------------------------------------

TEST(FleetFaults, FailCancelsInFlightTransferAndRetargetsTheJob) {
  Harness h(3, /*num_contexts=*/1, /*transfer_us_per_mb=*/100.0);
  const int a = h.add_task(Priority::kLow, 9000.0, 0);
  const int b = h.add_task(Priority::kLow, 9000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(a);
  router.release(b);  // rejected on 0, cold-migrating to the idle GPU 1
  ASSERT_EQ(router.pending_transfers(), 1u);
  ASSERT_EQ(router.pending_transfers_to(1), 1);

  // The target dies mid-copy. The transfer must be cancelled at the fault
  // instant — not delivered to the dead device later — and the job riding
  // it retargeted to the surviving peer (a fresh copy: the bytes already
  // shipped toward GPU 1 are sunk).
  h.fleet->fail_gpu_now(1);
  EXPECT_EQ(router.transfer_cancels(), 1u);
  EXPECT_EQ(router.pending_transfers_to(1), 0);
  EXPECT_EQ(router.pending_transfers(), 1u);  // the retargeted copy to GPU 2
  EXPECT_EQ(router.transfers(), 2u);
  EXPECT_EQ(router.drops(), 0u);

  h.sim.run();
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 0u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_completed(), 0u);
  EXPECT_EQ(h.fleet->scheduler(2).jobs_completed(), 1u);
  EXPECT_EQ(router.cross_gpu_migrations(), 1u);
  EXPECT_EQ(h.collector.summary(Priority::kLow).completed, 2u);
}

TEST(FleetFaults, DrainCancelsInFlightTransferToo) {
  Harness h(3, /*num_contexts=*/1, /*transfer_us_per_mb=*/100.0);
  const int a = h.add_task(Priority::kLow, 9000.0, 0);
  const int b = h.add_task(Priority::kLow, 9000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(a);
  router.release(b);
  ASSERT_EQ(router.pending_transfers_to(1), 1);

  // Draining is graceful for work already *on* the device, but a transfer
  // still in flight has nothing there yet — it must be redirected like a
  // fail-stop, or the delivery would place new work on a draining GPU.
  h.fleet->drain_gpu_now(1);
  EXPECT_EQ(router.transfer_cancels(), 1u);
  EXPECT_EQ(router.pending_transfers_to(1), 0);

  h.sim.run();
  EXPECT_EQ(h.fleet->scheduler(1).jobs_completed(), 0u);
  EXPECT_EQ(h.fleet->scheduler(2).jobs_completed(), 1u);
  EXPECT_EQ(h.collector.summary(Priority::kLow).completed, 2u);
  EXPECT_EQ(h.collector.summary(Priority::kLow).rejected, 0u);
}

TEST(FleetFaults, CancelledTransferWithNoSurvivorDropsTheJob) {
  Harness h(2, /*num_contexts=*/1, /*transfer_us_per_mb=*/100.0);
  const int a = h.add_task(Priority::kLow, 9000.0, 0);
  const int b = h.add_task(Priority::kLow, 9000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(a);
  router.release(b);
  ASSERT_EQ(router.pending_transfers(), 1u);

  // GPU 1 fails; the only other device is the one that already rejected the
  // job, so the retarget bounces off it and the job is dropped — cleanly,
  // with the pending gauges unwound.
  h.fleet->fail_gpu_now(1);
  EXPECT_EQ(router.transfer_cancels(), 1u);
  EXPECT_EQ(router.pending_transfers(), 0u);
  EXPECT_EQ(router.drops(), 1u);

  // The pending-job gauge was unwound with the cancellation: once GPU 0
  // frees up, the task's next release is admitted at home rather than shed
  // by the backlog guard counting a phantom in-flight duplicate.
  h.sim.run();
  router.release(b);
  EXPECT_EQ(router.drops(), 1u);
  EXPECT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 1u);
  h.sim.run();
  EXPECT_EQ(h.collector.summary(Priority::kLow).completed, 2u);
}

// --- straggler ------------------------------------------------------------

TEST(FleetFaults, StragglerSlowsJobsThroughTheResolvedSpec) {
  Harness h(1);
  const int lp = h.add_task(Priority::kLow, 5000.0, 0);
  h.fleet->run_offline_phase();
  h.collector.enable_job_trace(true);
  Router router(*h.fleet, RoutingPolicy::kLeastUtilization, 1, &h.collector);

  router.release(lp);
  h.sim.run();
  ASSERT_EQ(h.collector.job_trace().size(), 1u);
  const auto baseline = h.collector.job_trace()[0].finish -
                        h.collector.job_trace()[0].release;

  h.fleet->slow_gpu_now(0, 0.5);
  EXPECT_DOUBLE_EQ(h.fleet->compute_scale(0), 0.5);
  // The simulated device now runs the re-resolved node spec.
  EXPECT_EQ(h.fleet->gpu(0).spec().sm_count,
            h.fleet->node(0).resolved().sm_count);

  router.release(lp);
  h.sim.run();
  ASSERT_EQ(h.collector.job_trace().size(), 2u);
  const auto slowed = h.collector.job_trace()[1].finish -
                      h.collector.job_trace()[1].release;
  // Kernel time doubles; launch/sync overheads are host-side constants and
  // stay, so the end-to-end ratio lands between 1 and 2.
  const double ratio = static_cast<double>(slowed) /
                       static_cast<double>(baseline);
  EXPECT_GT(ratio, 1.15);
  EXPECT_LT(ratio, 2.05);

  // Restoring the scale restores the original timing exactly.
  h.fleet->slow_gpu_now(0, 2.0);
  router.release(lp);
  h.sim.run();
  ASSERT_EQ(h.collector.job_trace().size(), 3u);
  EXPECT_EQ(h.collector.job_trace()[2].finish -
                h.collector.job_trace()[2].release,
            baseline);
}

TEST(FleetFaults, RunnerReseedsAfetForTheSlowedDevice) {
  // Through the experiment runner, a mid-run slowdown re-profiles AFET
  // against the resolved spec, so admission keeps rejecting what the
  // slowed device can no longer serve instead of overcommitting it: HP
  // work stays on time even with half the fleet's compute gone.
  exp::ClusterConfig cfg;
  cfg.taskset = workload::mixed_taskset();
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 6;
  cfg.sched.oversubscription = 6.0;
  cfg.num_gpus = 2;
  cfg.routing = RoutingPolicy::kLeastUtilization;
  cfg.duration_s = 1.5;
  cfg.warmup_s = 0.25;
  exp::FaultSpec f;
  f.kind = exp::FaultSpec::Kind::kSlow;
  f.gpu = 0;
  f.at_s = 0.5;
  f.factor = 0.5;
  cfg.faults.push_back(f);

  const exp::ClusterResult r = exp::run_cluster(cfg);
  EXPECT_GT(r.hp.completed, 0u);
  EXPECT_EQ(r.hp.missed, 0u);
  EXPECT_EQ(r.jobs_lost, 0u);
  ASSERT_EQ(r.per_gpu.size(), 2u);
  // The slowed device ranks busier per unit of work, so it ends up serving
  // less than the healthy one.
  EXPECT_LT(r.per_gpu[0].completed, r.per_gpu[1].completed);
}

// --- autoscaling ----------------------------------------------------------

TEST(FleetFaults, AddedGpuJoinsTheFleetAndTakesPlacements) {
  Harness h(2);
  const int a = h.add_task(Priority::kLow, 3000.0, 0);
  const int b = h.add_task(Priority::kLow, 3000.0, 1);
  const int c = h.add_task(Priority::kLow, 3000.0, 0);
  h.fleet->run_offline_phase();

  const int g = h.fleet->add_gpu_now(GpuNodeSpec{});
  EXPECT_EQ(g, 2);
  EXPECT_EQ(h.fleet->size(), 3);
  EXPECT_EQ(h.fleet->placeable_count(), 3);
  // Every registered task exists on the new scheduler under its fleet id.
  EXPECT_EQ(h.fleet->scheduler(g).task_count(), 3);
  h.fleet->set_afet(a, g, std::vector<double>(h.model->stage_count(), 1000.0));
  h.fleet->set_afet(b, g, std::vector<double>(h.model->stage_count(), 1000.0));
  h.fleet->set_afet(c, g, std::vector<double>(h.model->stage_count(), 1000.0));
  h.fleet->run_offline_phase(g);

  // The collector's routing counters grew in place.
  EXPECT_EQ(h.collector.gpu_count(), 3);

  Router router(*h.fleet, RoutingPolicy::kLeastUtilization, 1, &h.collector);
  router.release(a);  // GPU 0, 1, and 2 idle: ties break to 0
  router.release(b);
  router.release(c);  // both incumbents loaded: the new device must win
  EXPECT_EQ(h.collector.routing(2).routed, 1u);
  EXPECT_EQ(h.fleet->scheduler(2).jobs_in_flight(), 1u);
}

// --- determinism ----------------------------------------------------------

bool identical(const exp::ClusterResult& a, const exp::ClusterResult& b) {
  if (a.per_gpu.size() != b.per_gpu.size()) return false;
  for (std::size_t g = 0; g < a.per_gpu.size(); ++g) {
    if (a.per_gpu[g].completed != b.per_gpu[g].completed) return false;
  }
  return a.total_jps == b.total_jps && a.hp.completed == b.hp.completed &&
         a.lp.completed == b.lp.completed && a.hp.missed == b.hp.missed &&
         a.lp.missed == b.lp.missed &&
         a.cross_gpu_migrations == b.cross_gpu_migrations &&
         a.drops == b.drops && a.transfers == b.transfers &&
         a.transferred_mb == b.transferred_mb &&
         a.infeasible_rejects == b.infeasible_rejects &&
         a.intra_gpu_migrations == b.intra_gpu_migrations &&
         a.arrivals == b.arrivals && a.jobs_lost == b.jobs_lost &&
         a.unmatched_rows == b.unmatched_rows;
}

TEST(FleetFaults, FaultScheduleRunsBitIdentically) {
  // A full fault timeline — straggler, fail-stop, scale-up, drain — under
  // open-loop arrivals, run twice: every counter must match exactly.
  exp::ClusterConfig cfg;
  cfg.taskset = workload::mixed_taskset();
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 6;
  cfg.sched.oversubscription = 6.0;
  cfg.num_gpus = 2;
  cfg.routing = RoutingPolicy::kHybrid;
  cfg.arrivals = exp::ArrivalMode::kPoisson;
  cfg.duration_s = 1.5;
  cfg.warmup_s = 0.25;

  exp::FaultSpec slow;
  slow.kind = exp::FaultSpec::Kind::kSlow;
  slow.gpu = 0;
  slow.at_s = 0.4;
  slow.factor = 0.5;
  exp::FaultSpec add;
  add.kind = exp::FaultSpec::Kind::kAdd;
  add.at_s = 0.6;
  exp::FaultSpec fail;
  fail.kind = exp::FaultSpec::Kind::kFail;
  fail.gpu = 1;
  fail.at_s = 0.8;
  exp::FaultSpec drain;
  drain.kind = exp::FaultSpec::Kind::kDrain;
  drain.gpu = 0;
  drain.at_s = 1.0;
  cfg.faults = {slow, add, fail, drain};

  const exp::ClusterResult a = exp::run_cluster(cfg);
  const exp::ClusterResult b = exp::run_cluster(cfg);
  EXPECT_TRUE(identical(a, b));
  EXPECT_GT(a.jobs_lost, 0u);        // the fail-stop shed something
  EXPECT_GT(a.hp.completed, 0u);     // the fleet kept serving throughout
  ASSERT_EQ(a.per_gpu.size(), 3u);   // the added device is reported
  EXPECT_GT(a.per_gpu[2].completed, 0u);
}

}  // namespace
}  // namespace daris::cluster
