// Task-set construction (Table II) and the periodic driver.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "daris/scheduler.h"
#include "dnn/zoo.h"
#include "gpusim/gpu.h"
#include "sim/simulator.h"
#include "workload/driver.h"
#include "workload/taskset.h"

namespace daris::workload {
namespace {

using common::Priority;

TEST(TaskSet, Table2ResNet18Counts) {
  const TaskSetSpec set = table2_taskset(dnn::ModelKind::kResNet18);
  EXPECT_EQ(set.count(Priority::kHigh), 17);
  EXPECT_EQ(set.count(Priority::kLow), 34);
  // 51 tasks x 30 JPS = 1530 JPS ~ 150% of the 1025-JPS upper baseline.
  EXPECT_NEAR(set.demand_jps(), 1530.0, 2.0);
}

TEST(TaskSet, Table2UNetCounts) {
  const TaskSetSpec set = table2_taskset(dnn::ModelKind::kUNet);
  EXPECT_EQ(set.count(Priority::kHigh), 5);
  EXPECT_EQ(set.count(Priority::kLow), 10);
  EXPECT_NEAR(set.demand_jps(), 15 * 24.0, 1.0);
}

TEST(TaskSet, Table2InceptionCounts) {
  const TaskSetSpec set = table2_taskset(dnn::ModelKind::kInceptionV3);
  EXPECT_EQ(set.count(Priority::kHigh), 9);
  EXPECT_EQ(set.count(Priority::kLow), 18);
  EXPECT_NEAR(set.demand_jps(), 27 * 24.0, 1.0);
}

TEST(TaskSet, DeadlinesEqualPeriods) {
  const TaskSetSpec set = table2_taskset(dnn::ModelKind::kResNet18);
  for (const auto& t : set.tasks) {
    EXPECT_EQ(t.period, t.relative_deadline);
    EXPECT_EQ(t.period, common::period_for_jps(30.0));
  }
}

TEST(TaskSet, PhasesAreWithinPeriodAndVaried) {
  const TaskSetSpec set = table2_taskset(dnn::ModelKind::kResNet18);
  std::set<common::Duration> phases;
  for (const auto& t : set.tasks) {
    EXPECT_GE(t.phase, 0);
    EXPECT_LT(t.phase, t.period);
    phases.insert(t.phase);
  }
  EXPECT_GT(phases.size(), set.tasks.size() / 2);  // not all identical
}

TEST(TaskSet, DeterministicFromSeed) {
  const TaskSetSpec a = table2_taskset(dnn::ModelKind::kUNet, 3);
  const TaskSetSpec b = table2_taskset(dnn::ModelKind::kUNet, 3);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].phase, b.tasks[i].phase);
  }
}

TEST(TaskSet, ScaledLoadFactor) {
  const TaskSetSpec full = scaled_taskset(dnn::ModelKind::kResNet18, 1.0, 1.0 / 3.0);
  const TaskSetSpec half = scaled_taskset(dnn::ModelKind::kResNet18, 0.5, 1.0 / 3.0);
  EXPECT_NEAR(half.demand_jps(), full.demand_jps() / 2.0, 40.0);
}

TEST(TaskSet, ScaledHpFraction) {
  const TaskSetSpec set = scaled_taskset(dnn::ModelKind::kResNet18, 1.0, 0.5);
  const int total = static_cast<int>(set.tasks.size());
  EXPECT_NEAR(set.count(Priority::kHigh), total / 2, 1);
}

TEST(TaskSet, ScaledExtremesDegradeGracefully) {
  const TaskSetSpec all_hp = scaled_taskset(dnn::ModelKind::kUNet, 1.0, 1.0);
  EXPECT_EQ(all_hp.count(Priority::kLow), 0);
  const TaskSetSpec all_lp = scaled_taskset(dnn::ModelKind::kUNet, 1.0, 0.0);
  EXPECT_EQ(all_lp.count(Priority::kHigh), 0);
  const TaskSetSpec tiny = scaled_taskset(dnn::ModelKind::kUNet, 0.01, 0.5);
  EXPECT_GE(tiny.tasks.size(), 1u);
}

TEST(TaskSet, MixedContainsAllThreeModels) {
  const TaskSetSpec set = mixed_taskset();
  std::set<dnn::ModelKind> kinds;
  for (const auto& t : set.tasks) kinds.insert(t.model);
  EXPECT_EQ(kinds.size(), 3u);
  EXPECT_TRUE(kinds.count(dnn::ModelKind::kResNet18));
  EXPECT_TRUE(kinds.count(dnn::ModelKind::kUNet));
  EXPECT_TRUE(kinds.count(dnn::ModelKind::kInceptionV3));
  // 2:1 LP-to-HP overall.
  EXPECT_NEAR(static_cast<double>(set.count(Priority::kLow)) /
                  set.count(Priority::kHigh),
              2.0, 0.35);
}

TEST(TaskSet, ReplicatedScalesDemandAndRedrawsPhases) {
  const TaskSetSpec base = table2_taskset(dnn::ModelKind::kUNet);
  const TaskSetSpec x3 = replicated_taskset(base, 3);
  EXPECT_EQ(x3.tasks.size(), 3 * base.tasks.size());
  EXPECT_NEAR(x3.demand_jps(), 3.0 * base.demand_jps(), 1.0);
  EXPECT_EQ(x3.count(Priority::kHigh), 3 * base.count(Priority::kHigh));
  // Phases are re-drawn per copy, not repeated.
  std::set<common::Duration> phases;
  for (const auto& t : x3.tasks) phases.insert(t.phase);
  EXPECT_GT(phases.size(), x3.tasks.size() / 2);
}

/// One-task spec for driving the open-loop generator without a scheduler.
TaskSetSpec single_task_spec(double jps) {
  TaskSetSpec set;
  rt::TaskSpec t;
  t.model = dnn::ModelKind::kResNet18;
  t.period = common::period_for_jps(jps);
  t.relative_deadline = t.period;
  t.priority = Priority::kLow;
  set.tasks.push_back(t);
  return set;
}

TEST(OpenLoopDriver, PoissonArrivalCountMatchesRate) {
  sim::Simulator sim;
  const TaskSetSpec set = single_task_spec(100.0);
  OpenLoopConfig cfg;
  cfg.process = ArrivalProcess::kPoisson;
  std::uint64_t released = 0;
  OpenLoopDriver driver(sim, set, [&](int) { ++released; },
                        common::from_sec(10.0), cfg);
  driver.start();
  sim.run();
  // 100 JPS over 10 s => ~1000 arrivals; +-4 sigma of a Poisson(1000).
  EXPECT_NEAR(static_cast<double>(driver.arrivals()), 1000.0, 130.0);
  EXPECT_EQ(driver.arrivals(), released);
}

TEST(OpenLoopDriver, RateScaleDrivesOverload) {
  sim::Simulator sim;
  const TaskSetSpec set = single_task_spec(100.0);
  OpenLoopConfig cfg;
  cfg.rate_scale = 2.0;
  OpenLoopDriver driver(sim, set, [](int) {}, common::from_sec(10.0), cfg);
  driver.start();
  sim.run();
  EXPECT_NEAR(static_cast<double>(driver.arrivals()), 2000.0, 200.0);
}

TEST(OpenLoopDriver, BurstyPreservesLongRunMeanRate) {
  sim::Simulator sim;
  const TaskSetSpec set = single_task_spec(100.0);
  OpenLoopConfig cfg;
  cfg.process = ArrivalProcess::kBursty;
  cfg.burst_factor = 4.0;
  OpenLoopDriver driver(sim, set, [](int) {}, common::from_sec(20.0), cfg);
  driver.start();
  sim.run();
  // Mean rate is constructed to stay at the nominal 100 JPS; the dwell
  // randomness is slow, so allow a wider band than the Poisson test.
  EXPECT_NEAR(static_cast<double>(driver.arrivals()), 2000.0, 500.0);
}

TEST(OpenLoopDriver, DeterministicFromSeed) {
  auto arrival_times = [](std::uint64_t seed) {
    sim::Simulator sim;
    const TaskSetSpec set = single_task_spec(200.0);
    OpenLoopConfig cfg;
    cfg.process = ArrivalProcess::kBursty;
    cfg.seed = seed;
    std::vector<common::Time> times;
    OpenLoopDriver driver(sim, set, [&](int) { times.push_back(sim.now()); },
                          common::from_sec(2.0), cfg);
    driver.start();
    sim.run();
    return times;
  };
  const auto a = arrival_times(11);
  const auto b = arrival_times(11);
  const auto c = arrival_times(12);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(OpenLoopDriver, DrivesSchedulerReleases) {
  sim::Simulator sim;
  gpusim::GpuSpec spec;
  spec.jitter_cv = 0.0;
  gpusim::Gpu gpu(sim, spec);
  const auto model = dnn::compiled_model(dnn::ModelKind::kResNet18, 1, spec);
  rt::SchedulerConfig cfg;
  cfg.policy = rt::Policy::kMps;
  cfg.num_contexts = 1;
  metrics::Collector collector;
  rt::Scheduler sched(sim, gpu, cfg, &collector);
  rt::TaskSpec t;
  t.model = dnn::ModelKind::kResNet18;
  t.period = common::from_ms(10.0);
  t.relative_deadline = t.period;
  t.priority = Priority::kHigh;
  const int id = sched.add_task(t, &model);
  sched.set_afet(id, std::vector<double>(model.stage_count(), 400.0));
  sched.run_offline_phase();

  TaskSetSpec set;
  set.tasks.push_back(t);
  OpenLoopDriver driver(sim, set,
                        [&sched](int task) { sched.release_job(task); },
                        common::from_sec(1.0));
  driver.start();
  sim.run();
  EXPECT_GT(collector.summary(Priority::kHigh).released, 50u);
}

TEST(Driver, ReleasesAtPhaseThenEveryPeriod) {
  sim::Simulator sim;
  gpusim::GpuSpec spec;
  spec.jitter_cv = 0.0;
  gpusim::Gpu gpu(sim, spec);
  const auto model = dnn::compiled_model(dnn::ModelKind::kResNet18, 1, spec);
  rt::SchedulerConfig cfg;
  cfg.policy = rt::Policy::kMps;
  cfg.num_contexts = 1;
  metrics::Collector collector;
  rt::Scheduler sched(sim, gpu, cfg, &collector);
  rt::TaskSpec t;
  t.model = dnn::ModelKind::kResNet18;
  t.period = common::from_ms(10.0);
  t.relative_deadline = t.period;
  t.priority = Priority::kHigh;
  t.phase = common::from_ms(3.0);
  const int id = sched.add_task(t, &model);
  sched.set_afet(id, std::vector<double>(model.stage_count(), 400.0));
  sched.run_offline_phase();

  PeriodicDriver driver(sim, sched, common::from_ms(35.0));
  driver.start();
  sim.run();
  // Releases at 3, 13, 23, 33 ms.
  EXPECT_EQ(collector.summary(Priority::kHigh).released, 4u);
}

TEST(Driver, HonorsHorizon) {
  sim::Simulator sim;
  gpusim::GpuSpec spec;
  spec.jitter_cv = 0.0;
  gpusim::Gpu gpu(sim, spec);
  const auto model = dnn::compiled_model(dnn::ModelKind::kResNet18, 1, spec);
  rt::SchedulerConfig cfg;
  metrics::Collector collector;
  rt::Scheduler sched(sim, gpu, cfg, &collector);
  rt::TaskSpec t;
  t.model = dnn::ModelKind::kResNet18;
  t.period = common::from_ms(10.0);
  t.relative_deadline = t.period;
  t.priority = Priority::kHigh;
  t.phase = common::from_ms(50.0);  // phase beyond horizon
  const int id = sched.add_task(t, &model);
  sched.set_afet(id, std::vector<double>(model.stage_count(), 400.0));
  sched.run_offline_phase();
  PeriodicDriver driver(sim, sched, common::from_ms(35.0));
  driver.start();
  sim.run();
  EXPECT_EQ(collector.summary(Priority::kHigh).released, 0u);
}

}  // namespace
}  // namespace daris::workload
