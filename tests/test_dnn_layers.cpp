// Layer cost arithmetic and the layer -> kernel lowering.
#include <gtest/gtest.h>

#include "dnn/layer.h"
#include "dnn/model.h"

namespace daris::dnn {
namespace {

TEST(Layers, Conv2dFlops) {
  // 3x3 conv, 56x56, 64->64: 2 * 56^2 * 64 * 64 * 9.
  const LayerDesc l = conv2d("c", 56, 64, 64, 3);
  EXPECT_DOUBLE_EQ(l.flops, 2.0 * 56 * 56 * 64.0 * 64.0 * 9.0);
  EXPECT_DOUBLE_EQ(l.out_elems, 56.0 * 56 * 64);
  EXPECT_DOUBLE_EQ(l.weight_bytes, 9.0 * 64 * 64 * 4);
}

TEST(Layers, Conv2dStrideHalvesOutput) {
  const LayerDesc l = conv2d("c", 56, 64, 128, 3, 2);
  EXPECT_DOUBLE_EQ(l.out_elems, 28.0 * 28 * 128);
  EXPECT_DOUBLE_EQ(l.flops, 2.0 * 28 * 28 * 128.0 * 64.0 * 9.0);
}

TEST(Layers, RectConvMatchesSquareDecomposition) {
  // A 1x7 followed by 7x1 at the same width has the same FLOPs as two
  // 7-element convs, which is less than one 7x7 (the Inception trick).
  const LayerDesc a = conv2d_rect("a", 17, 128, 128, 1, 7);
  const LayerDesc b = conv2d_rect("b", 17, 128, 128, 7, 1);
  const LayerDesc full = conv2d("f", 17, 128, 128, 7);
  EXPECT_LT(a.flops + b.flops, full.flops);
  EXPECT_DOUBLE_EQ(a.flops, b.flops);
}

TEST(Layers, PoolIsCheapAndMemoryHeavy) {
  const LayerDesc p = pool2d("p", 112, 64, 3, 2);
  const LayerDesc c = conv2d("c", 112, 64, 64, 3, 2);
  EXPECT_LT(p.flops, c.flops / 10.0);
  EXPECT_GT(p.act_bytes, 0.0);
  EXPECT_DOUBLE_EQ(p.out_elems, 56.0 * 56 * 64);
}

TEST(Layers, FcShape) {
  const LayerDesc f = fc("fc", 512, 1000);
  EXPECT_DOUBLE_EQ(f.flops, 2.0 * 512 * 1000);
  EXPECT_DOUBLE_EQ(f.out_elems, 1000.0);
  EXPECT_DOUBLE_EQ(f.weight_bytes, 512.0 * 1000 * 4);
}

TEST(Layers, UpconvDoublesResolution) {
  const LayerDesc u = upconv2x("u", 14, 1024, 512);
  EXPECT_DOUBLE_EQ(u.out_elems, 28.0 * 28 * 512);
}

TEST(Layers, GlobalPoolReducesToChannels) {
  const LayerDesc g = global_pool("g", 7, 512);
  EXPECT_DOUBLE_EQ(g.out_elems, 512.0);
}

TEST(Layers, ConcatAndResidualAreMemoryOnly) {
  const LayerDesc cat = concat("cat", 56, 512);
  const LayerDesc add = residual_add("add", 56, 256);
  // bytes per flop far above any conv.
  EXPECT_GT(cat.act_bytes / cat.flops, 1.0);
  EXPECT_GT(add.act_bytes / add.flops, 1.0);
}

TEST(Lowering, WorkProportionalToFlops) {
  NetworkDef net;
  net.name = "t";
  StageDef s{"s", {conv2d("a", 56, 64, 64, 3), conv2d("b", 56, 64, 64, 3)}};
  net.stages.push_back(s);
  LoweringParams p;
  const CompiledModel m = lower(net, 1, p);
  ASSERT_EQ(m.kernel_count(), 2u);
  EXPECT_DOUBLE_EQ(m.stages[0].kernels[0].work, m.stages[0].kernels[1].work);
  EXPECT_NEAR(m.stages[0].kernels[0].work,
              net.stages[0].layers[0].flops / p.flops_per_smus, 1e-9);
}

TEST(Lowering, BatchScalesWorkAndParallelism) {
  NetworkDef net;
  net.name = "t";
  net.stages.push_back(StageDef{"s", {conv2d("a", 28, 128, 128, 3)}});
  LoweringParams p;
  p.batch_work_overhead = 0.0;
  const CompiledModel m1 = lower(net, 1, p);
  const CompiledModel m8 = lower(net, 8, p);
  EXPECT_NEAR(m8.stages[0].kernels[0].work,
              8.0 * m1.stages[0].kernels[0].work, 1e-9);
  EXPECT_NEAR(m8.stages[0].kernels[0].parallelism,
              std::min(8.0 * m1.stages[0].kernels[0].parallelism,
                       p.max_parallelism_sms),
              1e-9);
}

TEST(Lowering, BatchOverheadInflatesPerSampleWork) {
  NetworkDef net;
  net.name = "t";
  net.stages.push_back(StageDef{"s", {conv2d("a", 28, 128, 128, 3)}});
  LoweringParams p;
  p.batch_work_overhead = 0.2;
  const CompiledModel m1 = lower(net, 1, p);
  const CompiledModel m4 = lower(net, 4, p);
  const double per_sample1 = m1.total_work();
  const double per_sample4 = m4.total_work() / 4.0;
  EXPECT_NEAR(per_sample4 / per_sample1, 1.0 + 0.2 * 3.0 / 4.0, 1e-9);
}

TEST(Lowering, BatchingAmortizesWeightTraffic) {
  NetworkDef net;
  net.name = "t";
  net.stages.push_back(StageDef{"s", {conv2d("a", 7, 512, 512, 3)}});
  LoweringParams p;
  p.batch_work_overhead = 0.0;
  const CompiledModel m1 = lower(net, 1, p);
  const CompiledModel m32 = lower(net, 32, p);
  // Weight-dominated layer: per-sample memory intensity drops with batch.
  EXPECT_LT(m32.stages[0].kernels[0].mem_intensity,
            m1.stages[0].kernels[0].mem_intensity);
}

TEST(Lowering, ParallelismClampedToBounds) {
  NetworkDef net;
  net.name = "t";
  net.stages.push_back(StageDef{"s", {fc("tiny", 8, 4)}});
  net.stages.push_back(StageDef{"s2", {conv2d("huge", 224, 64, 64, 3)}});
  LoweringParams p;
  p.max_parallelism_sms = 100.0;
  const CompiledModel m = lower(net, 64, p);
  EXPECT_GE(m.stages[0].kernels[0].parallelism, 1.0);
  EXPECT_LE(m.stages[1].kernels[0].parallelism, 100.0);
}

TEST(Lowering, StageStructurePreserved) {
  NetworkDef net;
  net.name = "t";
  net.stages.push_back(StageDef{"first", {conv2d("a", 56, 8, 8, 3)}});
  net.stages.push_back(
      StageDef{"second", {conv2d("b", 28, 8, 8, 3), fc("c", 64, 10)}});
  const CompiledModel m = lower(net, 1, LoweringParams{});
  ASSERT_EQ(m.stage_count(), 2u);
  EXPECT_EQ(m.stages[0].name, "first");
  EXPECT_EQ(m.stages[0].kernels.size(), 1u);
  EXPECT_EQ(m.stages[1].kernels.size(), 2u);
  // Tags are unique and sequential across the model.
  EXPECT_EQ(m.stages[0].kernels[0].tag, 0u);
  EXPECT_EQ(m.stages[1].kernels[0].tag, 1u);
  EXPECT_EQ(m.stages[1].kernels[1].tag, 2u);
}

TEST(NetworkDef, Accounting) {
  NetworkDef net;
  net.name = "t";
  net.stages.push_back(StageDef{"s", {conv2d("a", 56, 8, 8, 3)}});
  net.stages.push_back(StageDef{"s2", {fc("b", 10, 10), fc("c", 10, 10)}});
  EXPECT_EQ(net.layer_count(), 3u);
  EXPECT_DOUBLE_EQ(net.total_flops(), net.stages[0].layers[0].flops +
                                          2.0 * net.stages[1].layers[0].flops);
}

}  // namespace
}  // namespace daris::dnn
