// The utilisation-based admission test (Eq. 11-12) in isolation.
#include <gtest/gtest.h>

#include <memory>

#include "daris/scheduler.h"
#include "dnn/zoo.h"
#include "gpusim/gpu.h"
#include "metrics/collector.h"
#include "sim/simulator.h"

namespace daris::rt {
namespace {

using common::from_ms;

struct AdmissionHarness {
  sim::Simulator sim;
  gpusim::GpuSpec spec;
  std::unique_ptr<gpusim::Gpu> gpu;
  metrics::Collector collector;
  std::unique_ptr<Scheduler> sched;
  std::unique_ptr<dnn::CompiledModel> model;

  explicit AdmissionHarness(SchedulerConfig cfg) {
    spec.jitter_cv = 0.0;
    gpu = std::make_unique<gpusim::Gpu>(sim, spec);
    model = std::make_unique<dnn::CompiledModel>(
        dnn::compiled_model(dnn::ModelKind::kResNet18, 1, spec));
    sched = std::make_unique<Scheduler>(sim, *gpu, cfg, &collector);
  }

  int add(Priority p, double period_ms, double total_afet_us, int ctx) {
    TaskSpec t;
    t.model = dnn::ModelKind::kResNet18;
    t.period = from_ms(period_ms);
    t.relative_deadline = t.period;
    t.priority = p;
    const int id = sched->add_task(t, model.get());
    sched->set_afet(
        id, std::vector<double>(model->stage_count(),
                                total_afet_us / model->stage_count()));
    sched->set_task_context(id, ctx);
    return id;
  }
};

SchedulerConfig cfg_mps(int nc, int ns = 1) {
  SchedulerConfig c;
  c.policy = ns > 1 ? Policy::kMpsStr : Policy::kMps;
  c.num_contexts = nc;
  c.streams_per_context = ns;
  c.oversubscription = nc;
  return c;
}

TEST(Admission, Equation11RemainingUtilization) {
  AdmissionHarness h(cfg_mps(1));
  h.add(Priority::kHigh, 10.0, 3000.0, 0);  // u = 0.3
  h.add(Priority::kHigh, 10.0, 2000.0, 0);  // u = 0.2
  EXPECT_NEAR(h.sched->remaining_utilization(0), 1.0 - 0.5, 1e-9);
}

TEST(Admission, MultiStreamCapacityIsNs) {
  AdmissionHarness h(cfg_mps(1, 3));
  h.add(Priority::kHigh, 10.0, 5000.0, 0);  // u = 0.5
  // U^r = Ns - U^h = 3 - 0.5.
  EXPECT_NEAR(h.sched->remaining_utilization(0), 2.5, 1e-9);
}

TEST(Admission, LpAdmittedWithinRemainingUtilization) {
  AdmissionHarness h(cfg_mps(1));
  h.add(Priority::kHigh, 10.0, 4000.0, 0);           // reserves 0.4
  const int lp = h.add(Priority::kLow, 10.0, 3000.0, 0);  // u = 0.3 < 0.6
  h.sched->release_job(lp);
  EXPECT_EQ(h.collector.summary(Priority::kLow).rejected, 0u);
  EXPECT_NEAR(h.sched->active_lp_utilization(0), 0.3, 1e-9);
  h.sim.run();
}

TEST(Admission, LpRejectedBeyondRemainingUtilization) {
  AdmissionHarness h(cfg_mps(1));
  h.add(Priority::kHigh, 10.0, 8000.0, 0);                  // reserves 0.8
  const int lp = h.add(Priority::kLow, 10.0, 3000.0, 0);    // 0.3 > 0.2
  h.sched->release_job(lp);
  EXPECT_EQ(h.collector.summary(Priority::kLow).rejected, 1u);
  h.sim.run();
}

TEST(Admission, StrictInequalityAtExactBoundary) {
  AdmissionHarness h(cfg_mps(1));
  h.add(Priority::kHigh, 10.0, 5000.0, 0);                // 0.5 reserved
  const int lp = h.add(Priority::kLow, 10.0, 5000.0, 0);  // 0.5 !< 0.5
  h.sched->release_job(lp);
  EXPECT_EQ(h.collector.summary(Priority::kLow).rejected, 1u);
  h.sim.run();
}

TEST(Admission, ActiveLpUtilizationCountsOnlyUnfinishedJobs) {
  AdmissionHarness h(cfg_mps(1));
  const int lp = h.add(Priority::kLow, 50.0, 2000.0, 0);
  h.sched->release_job(lp);
  EXPECT_GT(h.sched->active_lp_utilization(0), 0.0);
  h.sim.run();  // job finishes
  EXPECT_DOUBLE_EQ(h.sched->active_lp_utilization(0), 0.0);
  // A later release is admitted again.
  h.sched->release_job(lp);
  h.sim.run();
  EXPECT_EQ(h.collector.summary(Priority::kLow).completed, 2u);
}

TEST(Admission, MigrationPrefersLeastBackloggedContext) {
  AdmissionHarness h(cfg_mps(3));
  h.add(Priority::kHigh, 10.0, 9900.0, 0);  // home context full
  // Context 1 busy with an admitted LP job; context 2 idle.
  const int filler = h.add(Priority::kLow, 100.0, 3000.0, 1);
  h.sched->release_job(filler);
  const int lp = h.add(Priority::kLow, 100.0, 3000.0, 0);
  h.sched->release_job(lp);
  EXPECT_EQ(h.sched->task(lp).context(), 2);  // earliest predicted finish
  EXPECT_EQ(h.sched->migrations(), 1u);
  h.sim.run();
}

TEST(Admission, MigrationSkipsFullContexts) {
  AdmissionHarness h(cfg_mps(2));
  h.add(Priority::kHigh, 10.0, 9900.0, 0);
  h.add(Priority::kHigh, 10.0, 9900.0, 1);
  const int lp = h.add(Priority::kLow, 10.0, 1000.0, 0);
  h.sched->release_job(lp);
  EXPECT_EQ(h.collector.summary(Priority::kLow).rejected, 1u);
  EXPECT_EQ(h.sched->migrations(), 0u);
  h.sim.run();
}

TEST(Admission, DisabledLpAdmissionAcceptsEverything) {
  SchedulerConfig cfg = cfg_mps(1);
  cfg.lp_admission = false;
  AdmissionHarness h(cfg);
  h.add(Priority::kHigh, 10.0, 9000.0, 0);
  const int lp = h.add(Priority::kLow, 10.0, 5000.0, 0);
  h.sched->release_job(lp);
  EXPECT_EQ(h.collector.summary(Priority::kLow).rejected, 0u);
  h.sim.run();
}

TEST(Admission, UtilizationUpdatesWithMret) {
  // After a job runs, utilisation reflects measured MRET, not AFET.
  AdmissionHarness h(cfg_mps(1));
  const int lp = h.add(Priority::kLow, 50.0, 50000.0, 0);  // huge AFET
  const double before = h.sched->task(lp).utilization();
  h.sched->release_job(lp);  // admitted: 1.0 !< ... wait, u = 1.0 -> rejected
  // The AFET says u = 1.0 which fails Eq. 12; confirm rejection first.
  EXPECT_EQ(h.collector.summary(Priority::kLow).rejected, 1u);
  // Manually record fast observations and verify utilisation adapts.
  for (std::size_t j = 0; j < h.model->stage_count(); ++j) {
    h.sched->task(lp).mret().record(j, 400.0);
  }
  EXPECT_LT(h.sched->task(lp).utilization(), before);
  h.sched->release_job(lp);
  EXPECT_EQ(h.collector.summary(Priority::kLow).rejected, 1u);  // now admitted
  h.sim.run();
  EXPECT_EQ(h.collector.summary(Priority::kLow).completed, 1u);
}

}  // namespace
}  // namespace daris::rt
