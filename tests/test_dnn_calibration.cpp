// Calibration must make the simulated GPU reproduce Table I.
#include <gtest/gtest.h>

#include "baselines/batching_server.h"
#include "dnn/calibration.h"
#include "dnn/zoo.h"

namespace daris::dnn {
namespace {

class CalibrationFit : public ::testing::TestWithParam<ModelKind> {};

TEST_P(CalibrationFit, AnalyticSingleStreamLatencyMatchesMinJps) {
  const gpusim::GpuSpec spec;
  const ModelKind kind = GetParam();
  const CompiledModel m = compiled_model(kind, 1, spec);
  const double t1 = analytic_sequential_latency_us(m, spec);
  const double target = 1.0e6 / table1_reference(kind).min_jps;
  EXPECT_NEAR(t1, target, 0.02 * target) << model_name(kind);
}

TEST_P(CalibrationFit, SimulatedSingleStreamMatchesAnalytic) {
  gpusim::GpuSpec spec;
  spec.jitter_cv = 0.0;  // deterministic for the comparison
  const ModelKind kind = GetParam();
  const auto r = baselines::measure_batched_jps(kind, 1, spec, 1.0);
  const CompiledModel m = compiled_model(kind, 1, spec);
  const double t1 = analytic_sequential_latency_us(m, spec);
  EXPECT_NEAR(r.batch_latency_ms * 1e3, t1, 0.02 * t1) << model_name(kind);
}

TEST_P(CalibrationFit, BatchedThroughputMatchesMaxJps) {
  const gpusim::GpuSpec spec;
  const ModelKind kind = GetParam();
  const auto best = baselines::best_batched_jps(kind, spec, 2.0);
  const double target = table1_reference(kind).max_jps;
  EXPECT_NEAR(best.jps, target, 0.05 * target) << model_name(kind);
}

TEST_P(CalibrationFit, BatchingGainReproduced) {
  const gpusim::GpuSpec spec;
  const ModelKind kind = GetParam();
  const auto single = baselines::measure_batched_jps(kind, 1, spec, 2.0);
  const auto best = baselines::best_batched_jps(kind, spec, 2.0);
  const double gain = best.jps / single.jps;
  const double target = table1_reference(kind).batching_gain;
  EXPECT_NEAR(gain, target, 0.08 * target) << model_name(kind);
}

INSTANTIATE_TEST_SUITE_P(Models, CalibrationFit,
                         ::testing::Values(ModelKind::kResNet18,
                                           ModelKind::kResNet50,
                                           ModelKind::kUNet,
                                           ModelKind::kInceptionV3),
                         [](const auto& param_info) {
                           return std::string(model_name(param_info.param));
                         });

TEST(Calibration, AnalyticKernelRateRespectsWidth) {
  gpusim::GpuSpec spec;
  spec.quota_penalty_a = 0.0;
  spec.quant_smoothing = 1.0;
  gpusim::KernelDesc narrow;
  narrow.parallelism = 10.0;
  narrow.mem_intensity = 0.0;
  EXPECT_DOUBLE_EQ(analytic_kernel_rate(narrow, spec), 10.0);
  gpusim::KernelDesc wide;
  wide.parallelism = 1000.0;
  wide.mem_intensity = 0.0;
  EXPECT_NEAR(analytic_kernel_rate(wide, spec), 68.0, 1e-9);
}

TEST(Calibration, AnalyticKernelRateBandwidthCap) {
  gpusim::GpuSpec spec;
  spec.quota_penalty_a = 0.0;
  spec.quant_smoothing = 1.0;
  spec.mem_bandwidth = 34.0;
  gpusim::KernelDesc k;
  k.parallelism = 68.0;
  k.mem_intensity = 1.0;  // demand 68 > 34
  EXPECT_NEAR(analytic_kernel_rate(k, spec), 34.0, 1e-9);
}

TEST(Calibration, LatencyMonotoneInBatch) {
  const gpusim::GpuSpec spec;
  double prev = 0.0;
  for (int b : {1, 2, 4, 8}) {
    const CompiledModel m = compiled_model(ModelKind::kResNet18, b, spec);
    const double t = analytic_sequential_latency_us(m, spec);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Calibration, UNetSingleStreamAlreadyNearSaturation) {
  // The structural reason for UNet's 1.08x gain: its batch-1 kernels are
  // already wide enough to cover most of the device.
  const gpusim::GpuSpec spec;
  const CompiledModel m = compiled_model(ModelKind::kUNet, 1, spec);
  double work = 0.0, weighted_width = 0.0;
  for (const auto& s : m.stages) {
    for (const auto& k : s.kernels) {
      work += k.work;
      weighted_width += k.work * std::min(k.parallelism, 68.0);
    }
  }
  EXPECT_GT(weighted_width / work, 0.85 * 68.0);
}

TEST(Calibration, InceptionKernelsAreNarrow) {
  const gpusim::GpuSpec spec;
  const CompiledModel m = compiled_model(ModelKind::kInceptionV3, 1, spec);
  double work = 0.0, weighted_width = 0.0;
  for (const auto& s : m.stages) {
    for (const auto& k : s.kernels) {
      work += k.work;
      weighted_width += k.work * std::min(k.parallelism, 68.0);
    }
  }
  EXPECT_LT(weighted_width / work, 0.60 * 68.0);
}

}  // namespace
}  // namespace daris::dnn
