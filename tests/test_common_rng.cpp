#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>

#include "common/rng.h"

namespace daris::common {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 6.5);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 6.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(12);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(14);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(15);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(16);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(21), b(21);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fa.next_u64(), fb.next_u64());
  }
  // The fork advanced the parent identically.
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace daris::common
