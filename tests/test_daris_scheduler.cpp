// Online-phase behaviour of the DARIS scheduler: staging, priorities,
// migration, stream holding, and the ablation switches.
#include <gtest/gtest.h>

#include <memory>

#include "daris/scheduler.h"
#include "dnn/calibration.h"
#include "dnn/zoo.h"
#include "gpusim/gpu.h"
#include "metrics/collector.h"
#include "sim/simulator.h"
#include "workload/driver.h"
#include "workload/taskset.h"

namespace daris::rt {
namespace {

using common::from_ms;
using common::from_sec;

struct Harness {
  sim::Simulator sim;
  gpusim::GpuSpec spec;
  std::unique_ptr<gpusim::Gpu> gpu;
  metrics::Collector collector;
  std::unique_ptr<Scheduler> sched;
  std::unique_ptr<dnn::CompiledModel> model;

  explicit Harness(SchedulerConfig cfg, bool jitter = false) {
    if (!jitter) spec.jitter_cv = 0.0;
    gpu = std::make_unique<gpusim::Gpu>(sim, spec);
    model = std::make_unique<dnn::CompiledModel>(
        dnn::compiled_model(dnn::ModelKind::kResNet18, 1, spec));
    sched = std::make_unique<Scheduler>(sim, *gpu, cfg, &collector);
  }

  int add_task(Priority p, double period_ms, double afet_stage_us = 500.0) {
    TaskSpec t;
    t.model = dnn::ModelKind::kResNet18;
    t.period = from_ms(period_ms);
    t.relative_deadline = t.period;
    t.priority = p;
    const int id = sched->add_task(t, model.get());
    sched->set_afet(id, std::vector<double>(model->stage_count(),
                                            afet_stage_us));
    return id;
  }
};

SchedulerConfig mps_config(int contexts, double os) {
  SchedulerConfig c;
  c.policy = Policy::kMps;
  c.num_contexts = contexts;
  c.oversubscription = os;
  return c;
}

TEST(Scheduler, SingleJobRunsToCompletion) {
  Harness h(mps_config(2, 2.0));
  const int id = h.add_task(Priority::kHigh, 50.0);
  h.sched->run_offline_phase();
  h.sched->release_job(id);
  h.sim.run();
  EXPECT_EQ(h.sched->jobs_completed(), 1u);
  EXPECT_EQ(h.collector.summary(Priority::kHigh).completed, 1u);
  EXPECT_EQ(h.collector.summary(Priority::kHigh).missed, 0u);
  EXPECT_EQ(h.sched->jobs_in_flight(), 0u);
}

TEST(Scheduler, PeriodicTaskCompletesEveryPeriod) {
  Harness h(mps_config(2, 2.0));
  const int id = h.add_task(Priority::kHigh, 20.0);
  h.sched->run_offline_phase();
  workload::PeriodicDriver driver(h.sim, *h.sched, from_ms(99.0));
  (void)id;
  driver.start();
  h.sim.run();
  EXPECT_EQ(h.sched->jobs_completed(), 5u);  // releases at 0,20,...,80
}

TEST(Scheduler, ResponseTimeMatchesAnalyticWhenAlone) {
  Harness h(mps_config(1, 1.0));
  const int id = h.add_task(Priority::kHigh, 100.0);
  h.sched->run_offline_phase();
  h.sched->release_job(id);
  h.sim.run();
  const double resp_ms =
      h.collector.summary(Priority::kHigh).response_ms.max();
  // Response = exec + (n_stages - 1) host syncs at stage boundaries.
  const double expected_ms =
      dnn::analytic_sequential_latency_us(*h.model, h.spec) / 1e3 +
      (h.model->stage_count() - 1) * h.spec.sync_overhead_us / 1e3;
  EXPECT_NEAR(resp_ms, expected_ms, 0.10);
}

TEST(Scheduler, HpStagePreemptsQueuedLpAtBoundary) {
  // One context, one stream. A long LP job is running; an HP job released
  // mid-flight must be served at the next stage boundary, ahead of the LP
  // job's remaining stages.
  Harness h(mps_config(1, 1.0));
  const int lp = h.add_task(Priority::kLow, 100.0);
  const int hp = h.add_task(Priority::kHigh, 100.0);
  h.sched->run_offline_phase();
  h.sched->release_job(lp);
  h.sim.schedule_at(from_ms(0.2), [&] { h.sched->release_job(hp); });
  h.sim.run();
  const double hp_resp = h.collector.summary(Priority::kHigh).response_ms.max();
  const double lp_resp = h.collector.summary(Priority::kLow).response_ms.max();
  EXPECT_LT(hp_resp, lp_resp);
}

TEST(Scheduler, NoStagingRunsJobsAsUnits) {
  SchedulerConfig cfg = mps_config(1, 1.0);
  cfg.staging = false;
  Harness h(cfg);
  const int lp = h.add_task(Priority::kLow, 100.0);
  const int hp = h.add_task(Priority::kHigh, 100.0);
  h.sched->run_offline_phase();
  h.sched->release_job(lp);
  h.sim.schedule_at(from_ms(0.2), [&] { h.sched->release_job(hp); });
  h.sim.run();
  // Without staging the HP job waits for the LP job's full execution:
  // response ~ LP remaining + HP exec, i.e. roughly double the staged case.
  const double hp_resp = h.collector.summary(Priority::kHigh).response_ms.max();
  EXPECT_GT(hp_resp, 2.5);  // full LP job (~1.6ms) + own exec (~1.6ms)
  EXPECT_EQ(h.sched->jobs_completed(), 2u);
}

TEST(Scheduler, MigrationMovesLpToFreeContext) {
  // Two contexts; context of the LP task is saturated by an HP task with
  // huge utilisation, so the LP job must migrate.
  Harness h(mps_config(2, 2.0));
  const int hp = h.add_task(Priority::kHigh, 10.0, 2400.0);  // u ~ 0.96
  const int lp = h.add_task(Priority::kLow, 10.0, 500.0);
  h.sched->run_offline_phase();
  // Force both onto context 0 to create the conflict.
  h.sched->set_task_context(hp, 0);
  h.sched->set_task_context(lp, 0);
  h.sched->release_job(lp);
  h.sim.run();
  EXPECT_EQ(h.sched->migrations(), 1u);
  EXPECT_EQ(h.sched->task(lp).context(), 1);
  EXPECT_EQ(h.collector.summary(Priority::kLow).completed, 1u);
}

TEST(Scheduler, LpRejectedWhenNoContextPasses) {
  Harness h(mps_config(2, 2.0));
  // Both contexts saturated by HP reservations.
  const int hp0 = h.add_task(Priority::kHigh, 10.0, 2500.0);
  const int hp1 = h.add_task(Priority::kHigh, 10.0, 2500.0);
  const int lp = h.add_task(Priority::kLow, 10.0, 500.0);
  (void)hp0;
  (void)hp1;
  h.sched->run_offline_phase();
  h.sched->release_job(lp);
  h.sim.run();
  EXPECT_EQ(h.collector.summary(Priority::kLow).rejected, 1u);
  EXPECT_EQ(h.collector.summary(Priority::kLow).completed, 0u);
}

TEST(Scheduler, HpBypassesAdmissionByDefault) {
  Harness h(mps_config(1, 1.0));
  // Two HP tasks sum to utilisation > 1; both still admitted.
  const int a = h.add_task(Priority::kHigh, 10.0, 2000.0);
  const int b = h.add_task(Priority::kHigh, 10.0, 2000.0);
  h.sched->run_offline_phase();
  h.sched->release_job(a);
  h.sched->release_job(b);
  h.sim.run();
  EXPECT_EQ(h.collector.summary(Priority::kHigh).completed, 2u);
  EXPECT_EQ(h.collector.summary(Priority::kHigh).rejected, 0u);
}

TEST(Scheduler, HpaShedsExcessHpJobs) {
  SchedulerConfig cfg = mps_config(1, 1.0);
  cfg.hp_admission = true;
  Harness h(cfg);
  std::vector<int> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(h.add_task(Priority::kHigh, 10.0, 1200.0));  // u ~ 0.48
  }
  h.sched->run_offline_phase();
  for (int id : ids) h.sched->release_job(id);
  h.sim.run();
  const auto& hp = h.collector.summary(Priority::kHigh);
  EXPECT_GT(hp.rejected, 0u);  // at least one shed
  EXPECT_GT(hp.completed, 0u);
  EXPECT_EQ(hp.missed, 0u);  // the admitted ones meet their deadlines
}

TEST(Scheduler, BacklogGuardShedsBurst) {
  SchedulerConfig cfg = mps_config(1, 1.0);
  cfg.max_backlog_per_task = 2;
  Harness h(cfg);
  const int id = h.add_task(Priority::kHigh, 100.0);
  h.sched->run_offline_phase();
  for (int i = 0; i < 5; ++i) h.sched->release_job(id);
  h.sim.run();
  const auto& hp = h.collector.summary(Priority::kHigh);
  EXPECT_EQ(hp.completed, 2u);
  EXPECT_EQ(hp.rejected, 3u);
}

TEST(Scheduler, DeadlineMissDetected) {
  Harness h(mps_config(1, 1.0));
  // Period/deadline of 1 ms against ~1.6 ms execution: must miss.
  const int id = h.add_task(Priority::kHigh, 1.0);
  h.sched->run_offline_phase();
  h.sched->release_job(id);
  h.sim.run();
  EXPECT_EQ(h.collector.summary(Priority::kHigh).missed, 1u);
}

TEST(Scheduler, StageEventsRecordedForMret) {
  Harness h(mps_config(1, 1.0));
  h.collector.enable_stage_trace(true);
  const int id = h.add_task(Priority::kHigh, 50.0);
  h.sched->run_offline_phase();
  h.sched->release_job(id);
  h.sim.run();
  ASSERT_EQ(h.collector.stage_trace().size(), h.model->stage_count());
  for (const auto& ev : h.collector.stage_trace()) {
    EXPECT_GT(ev.execution_us, 0.0);
    EXPECT_GT(ev.mret_us, 0.0);  // AFET seed was in force
  }
  // MRET updated from the measured execution times.
  const auto& mret = h.sched->task(id).mret();
  EXPECT_EQ(mret.observations(0), 1u);
}

TEST(Scheduler, MultiStreamContextRunsJobsConcurrently) {
  SchedulerConfig cfg;
  cfg.policy = Policy::kStr;
  cfg.streams_per_context = 2;
  Harness h(cfg);
  const int a = h.add_task(Priority::kLow, 100.0);
  const int b = h.add_task(Priority::kLow, 100.0);
  h.sched->run_offline_phase();
  h.sched->release_job(a);
  h.sched->release_job(b);
  h.sim.run();
  // Two concurrent jobs sharing the device finish well before 2x the
  // serialised latency.
  const double max_resp = h.collector.summary(Priority::kLow).response_ms.max();
  const double serial_ms =
      2.0 * dnn::analytic_sequential_latency_us(*h.model, h.spec) / 1e3;
  EXPECT_LT(max_resp, serial_ms * 0.95);
}

TEST(Scheduler, UtilizationAccountingReturnsToZero) {
  Harness h(mps_config(2, 2.0));
  const int lp = h.add_task(Priority::kLow, 50.0);
  h.sched->run_offline_phase();
  h.sched->release_job(lp);
  EXPECT_GT(h.sched->active_lp_utilization(h.sched->task(lp).context()), 0.0);
  h.sim.run();
  for (int c = 0; c < 2; ++c) {
    EXPECT_DOUBLE_EQ(h.sched->active_lp_utilization(c), 0.0);
  }
}

TEST(Scheduler, RemainingUtilizationReflectsHpReservation) {
  Harness h(mps_config(1, 1.0));
  h.add_task(Priority::kHigh, 10.0, 1000.0);  // u = 0.4
  h.sched->run_offline_phase();
  EXPECT_NEAR(h.sched->remaining_utilization(0), 1.0 - 0.4, 1e-9);
}

}  // namespace
}  // namespace daris::rt
