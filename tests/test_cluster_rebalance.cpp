// Self-healing rebalancing: the donation/claim protocol underneath work
// stealing (StageQueue::remove_job, Scheduler::donatable_lp_jobs /
// revoke_job), the demand-aware packer, transfer coalescing in the router,
// and the cluster-level contracts — steal/rehome/coalesce schedules are
// bit-identical across repeat runs, and a disabled rebalancer is inert.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/fleet.h"
#include "cluster/rebalancer.h"
#include "cluster/router.h"
#include "daris/stage_queue.h"
#include "experiments/cluster_runner.h"

namespace daris::cluster {
namespace {

using common::Priority;

/// Same deterministic fixture as test_cluster.cpp: jitter-free fleet,
/// single-context single-stream GPUs, one shared ResNet18 model; tests of
/// delayed transfers pass a nonzero rate.
struct Harness {
  explicit Harness(int num_gpus, double transfer_us_per_mb = 0.0) {
    FleetConfig cfg;
    cfg.num_gpus = num_gpus;
    cfg.gpu.jitter_cv = 0.0;
    cfg.transfer_us_per_mb = transfer_us_per_mb;
    cfg.sched.policy = rt::Policy::kMps;
    cfg.sched.num_contexts = 1;
    model = std::make_unique<dnn::CompiledModel>(
        dnn::compiled_model(dnn::ModelKind::kResNet18, 1, cfg.gpu));
    collector.set_gpu_count(num_gpus);
    fleet = std::make_unique<Fleet>(sim, cfg, &collector);
  }

  int add_task(Priority priority, double total_afet_us, int home_gpu) {
    rt::TaskSpec spec;
    spec.model = dnn::ModelKind::kResNet18;
    spec.period = common::from_ms(10.0);
    spec.relative_deadline = spec.period;
    spec.priority = priority;
    const int id = fleet->add_task(spec, model.get(), home_gpu);
    fleet->set_afet(
        id, std::vector<double>(
                model->stage_count(),
                total_afet_us / static_cast<double>(model->stage_count())));
    return id;
  }

  sim::Simulator sim;
  metrics::Collector collector;
  std::unique_ptr<dnn::CompiledModel> model;
  std::unique_ptr<Fleet> fleet;
};

// --- StageQueue::remove_job -----------------------------------------------

TEST(StageQueue, RemoveJobDropsOnlyThatJobsStages) {
  rt::StageQueue q;
  rt::Job a;
  rt::Job b;
  q.push({&a, 0, 0, 100, 0});
  q.push({&b, 0, 0, 50, 0});
  q.push({&a, 1, 1, 10, 0});
  q.push({&b, 1, 0, 100, 0});
  EXPECT_EQ(q.remove_job(&a), 2u);
  EXPECT_EQ(q.size(), 2u);
  // Survivors pop in their original order: level before deadline.
  rt::ReadyStage s = q.pop();
  EXPECT_EQ(s.job, &b);
  EXPECT_EQ(s.stage, 0u);
  s = q.pop();
  EXPECT_EQ(s.job, &b);
  EXPECT_EQ(s.stage, 1u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.remove_job(&a), 0u);  // nothing left to remove
}

TEST(StageQueue, RemoveJobPreservesFifoTieBreak) {
  // Four entries at one (level, deadline): removal must not disturb the
  // insertion-order tie-break of the survivors.
  rt::StageQueue q;
  rt::Job a;
  rt::Job b;
  q.push({&a, 0, 0, 100, 0});
  q.push({&b, 0, 0, 100, 0});
  q.push({&a, 1, 0, 100, 0});
  q.push({&b, 1, 0, 100, 0});
  EXPECT_EQ(q.remove_job(&a), 2u);
  EXPECT_EQ(q.pop().stage, 0u);
  EXPECT_EQ(q.pop().stage, 1u);
}

// --- donation / claim protocol --------------------------------------------

TEST(Donation, ReleaseThenRevokeMovesAQueuedJob) {
  Harness h(2);
  const int a = h.add_task(Priority::kLow, 2000.0, 0);
  const int b = h.add_task(Priority::kLow, 2000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);

  router.release(a);
  // Let a's first stage reach the stream, then queue b behind it.
  h.sim.run_until(common::from_us(100.0));
  router.release(b);
  ASSERT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 2u);

  const auto jobs = h.fleet->scheduler(0).donatable_lp_jobs();
  ASSERT_EQ(jobs.size(), 1u);  // a started; only b is donatable
  EXPECT_EQ(jobs[0].task_id, b);
  EXPECT_TRUE(h.fleet->scheduler(0).job_stealable(jobs[0].job_id));

  // The claim: thief admits the job backdated to its original release,
  // victim unwinds its copy.
  ASSERT_TRUE(h.fleet->scheduler(1).release_job(b, /*report=*/false,
                                                jobs[0].release));
  EXPECT_TRUE(h.fleet->scheduler(0).revoke_job(jobs[0].job_id));
  EXPECT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 1u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 1u);
  EXPECT_FALSE(h.fleet->scheduler(0).job_stealable(jobs[0].job_id));
  EXPECT_FALSE(h.fleet->scheduler(0).revoke_job(jobs[0].job_id));
  EXPECT_TRUE(h.fleet->scheduler(0).donatable_lp_jobs().empty());

  // Revocation unwound the admission accounting: the victim's context can
  // admit 0.7 more utilisation again (0.2 + 0.2 + 0.7 would not fit).
  const int c = h.add_task(Priority::kLow, 7000.0, 0);
  EXPECT_TRUE(h.fleet->scheduler(0).release_job(c, /*report=*/false));

  h.sim.run();
  EXPECT_EQ(h.fleet->scheduler(1).jobs_completed(), 1u);
  EXPECT_GE(h.fleet->scheduler(0).jobs_completed(), 2u);
}

TEST(Donation, StartedJobsAreNeitherListedNorRevocable) {
  Harness h(2);
  const int a = h.add_task(Priority::kLow, 2000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(a);
  h.sim.run_until(common::from_us(100.0));  // first stage is on the stream
  EXPECT_TRUE(h.fleet->scheduler(0).donatable_lp_jobs().empty());
  EXPECT_FALSE(h.fleet->scheduler(0).revoke_job(1));  // unknown / started
}

// --- pack_homes ------------------------------------------------------------

TEST(PackHomes, HeavyKindClaimsHostsLeastFillFirst) {
  // Two kinds, 4 tasks, 2 equal devices. Kind 0 carries 6/8 of the load and
  // claims both hosts (one task each); kind 1 then packs onto the single
  // least-filled host.
  const std::vector<double> load = {3.0, 3.0, 1.0, 1.0};
  const std::vector<int> kind = {0, 0, 1, 1};
  const std::vector<double> scale = {1.0, 1.0};
  const std::vector<int> homes = pack_homes(load, kind, scale);
  ASSERT_EQ(homes.size(), 4u);
  EXPECT_EQ(homes[0], 0);
  EXPECT_EQ(homes[1], 1);
  EXPECT_EQ(homes[2], homes[3]);  // light kind stays on one host
  // Deterministic: the same inputs repack identically.
  EXPECT_EQ(pack_homes(load, kind, scale), homes);
}

TEST(PackHomes, UnavailableDevicesReceiveNothing) {
  const std::vector<double> load = {3.0, 3.0, 1.0, 1.0};
  const std::vector<int> kind = {0, 0, 1, 1};
  const std::vector<double> scale = {0.0, 1.0, 1.0};  // GPU 0 failed/draining
  const std::vector<int> homes = pack_homes(load, kind, scale);
  for (const int h : homes) EXPECT_NE(h, 0);
  // The surviving pair splits the heavy kind exactly as the 2-device case.
  EXPECT_EQ(homes[0], 1);
  EXPECT_EQ(homes[1], 2);
}

TEST(PackHomes, DegenerateFleetsFallBackSafely) {
  const std::vector<double> load = {1.0, 2.0};
  const std::vector<int> kind = {0, 1};
  // One device: everything homes there.
  EXPECT_EQ(pack_homes(load, kind, {0.0, 1.0}),
            (std::vector<int>{1, 1}));
  // No device: the all-zero default (callers gate on placeability anyway).
  EXPECT_EQ(pack_homes(load, kind, {0.0, 0.0}),
            (std::vector<int>{0, 0}));
  // No load: everything on the first available device, no NaN fills.
  EXPECT_EQ(pack_homes({0.0, 0.0}, kind, {1.0, 1.0}),
            (std::vector<int>{0, 0}));
}

// --- transfer coalescing ---------------------------------------------------

TEST(Coalesce, ConcurrentColdMigrationsShareOneCopy) {
  Harness h(2, /*transfer_us_per_mb=*/100.0);
  const int a = h.add_task(Priority::kLow, 9000.0, 0);
  const int b = h.add_task(Priority::kLow, 3000.0, 0);
  const int c = h.add_task(Priority::kLow, 3000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet,
                RouterConfig{RoutingPolicy::kModelAffinity, 0.75,
                             /*coalesce=*/true, 1},
                &h.collector);

  router.release(a);  // fills GPU 0 (0.9)
  router.release(b);  // rejected on 0, cold-migrates: leads the copy to 1
  router.release(c);  // rejected on 0, attaches to b's in-flight copy
  EXPECT_EQ(router.transfers(), 1u);
  EXPECT_DOUBLE_EQ(router.transferred_mb(), h.model->weight_mb);
  EXPECT_EQ(router.coalesced_transfers(), 1u);
  EXPECT_DOUBLE_EQ(router.coalesced_mb_saved(), h.model->weight_mb);
  EXPECT_EQ(router.pending_transfers(), 2u);
  EXPECT_EQ(router.pending_transfers_to(1), 2);

  // One copy lands; the leader delivers first and warms the model, then the
  // attached job is admitted against the now-hot weights.
  h.sim.run();
  EXPECT_EQ(router.pending_transfers(), 0u);
  EXPECT_EQ(router.cross_gpu_migrations(), 2u);
  EXPECT_EQ(router.drops(), 0u);
  EXPECT_TRUE(h.fleet->model_hot(1, b));
  EXPECT_EQ(h.fleet->scheduler(1).jobs_completed(), 2u);
}

TEST(Coalesce, OffByDefaultShipsEveryCopy) {
  Harness h(2, /*transfer_us_per_mb=*/100.0);
  const int a = h.add_task(Priority::kLow, 9000.0, 0);
  const int b = h.add_task(Priority::kLow, 3000.0, 0);
  const int c = h.add_task(Priority::kLow, 3000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(a);
  router.release(b);
  router.release(c);
  // The legacy accounting: both migrations charge the full copy.
  EXPECT_EQ(router.transfers(), 2u);
  EXPECT_DOUBLE_EQ(router.transferred_mb(), 2.0 * h.model->weight_mb);
  EXPECT_EQ(router.coalesced_transfers(), 0u);
}

// --- cluster-level contracts -----------------------------------------------

bool identical(const exp::ClusterResult& a, const exp::ClusterResult& b) {
  if (a.per_gpu.size() != b.per_gpu.size()) return false;
  for (std::size_t g = 0; g < a.per_gpu.size(); ++g) {
    if (a.per_gpu[g].completed != b.per_gpu[g].completed) return false;
  }
  return a.total_jps == b.total_jps && a.hp.completed == b.hp.completed &&
         a.lp.completed == b.lp.completed && a.hp.missed == b.hp.missed &&
         a.lp.missed == b.lp.missed &&
         a.cross_gpu_migrations == b.cross_gpu_migrations &&
         a.drops == b.drops && a.transfers == b.transfers &&
         a.transferred_mb == b.transferred_mb &&
         a.arrivals == b.arrivals && a.jobs_lost == b.jobs_lost &&
         a.steals == b.steals && a.steal_scans == b.steal_scans &&
         a.rehomes == b.rehomes && a.rehome_rounds == b.rehome_rounds &&
         a.coalesced_transfers == b.coalesced_transfers &&
         a.coalesced_mb_saved == b.coalesced_mb_saved &&
         a.transfer_cancels == b.transfer_cancels;
}

exp::ClusterConfig fleet_config(int num_gpus) {
  exp::ClusterConfig cfg;
  cfg.taskset =
      workload::replicated_taskset(workload::mixed_taskset(), num_gpus);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 6;
  cfg.sched.oversubscription = 6.0;
  cfg.num_gpus = num_gpus;
  cfg.routing = RoutingPolicy::kHybrid;
  cfg.duration_s = 3.0;
  cfg.warmup_s = 0.5;
  return cfg;
}

exp::ClusterConfig stealing_config() {
  // A 4x flash crowd on a 3-GPU fleet packed for the steady state: the
  // backlog guard trips at the overloaded homes and steal scans move queued
  // LP jobs to warm peers.
  exp::ClusterConfig cfg = fleet_config(3);
  cfg.arrivals = exp::ArrivalMode::kTrace;
  workload::TraceGenConfig gen;
  gen.duration_s = 3.0;
  gen.mean_rate_jps = 2000.0;
  gen.diurnal_amplitude = 0.0;
  workload::FlashCrowd spike;
  spike.start_s = 1.0;
  spike.duration_s = 1.5;
  spike.factor = 4.0;
  gen.flashes.push_back(spike);
  gen.seed = 7;
  cfg.trace = workload::generate_trace(workload::trace_mix(cfg.taskset), gen);
  cfg.rebalance.enabled = true;
  cfg.rebalance.rehome = false;
  cfg.rebalance.max_steals_per_scan = 8;
  return cfg;
}

exp::ClusterConfig rehoming_config() {
  // GPU 0 of 3 drains with no replacement at modest open-loop load: the
  // fault-instant rehoming piles its homes on one survivor, and the
  // periodic demand-aware rounds redistribute them.
  exp::ClusterConfig cfg = fleet_config(3);
  cfg.arrivals = exp::ArrivalMode::kPoisson;
  cfg.rate_scale = 0.7;
  exp::FaultSpec drain;
  drain.kind = exp::FaultSpec::Kind::kDrain;
  drain.gpu = 0;
  drain.at_s = 0.75;
  cfg.faults.push_back(drain);
  cfg.rebalance.enabled = true;
  cfg.rebalance.steal = false;
  return cfg;
}

TEST(Rebalance, StealScheduleIsBitIdenticalAcrossRuns) {
  const exp::ClusterConfig cfg = stealing_config();
  const exp::ClusterResult a = exp::run_cluster(cfg);
  const exp::ClusterResult b = exp::run_cluster(cfg);
  EXPECT_TRUE(identical(a, b));
  EXPECT_TRUE(a.rebalancing);
  EXPECT_GT(a.steals, 0u);
  EXPECT_GT(a.steal_scans, 0u);
  EXPECT_EQ(a.rehomes, 0u);  // rehoming was off
}

TEST(Rebalance, RehomeScheduleIsBitIdenticalAcrossRuns) {
  const exp::ClusterConfig cfg = rehoming_config();
  const exp::ClusterResult a = exp::run_cluster(cfg);
  const exp::ClusterResult b = exp::run_cluster(cfg);
  EXPECT_TRUE(identical(a, b));
  EXPECT_TRUE(a.rebalancing);
  EXPECT_GT(a.rehomes, 0u);
  EXPECT_GT(a.rehome_rounds, 0u);
  EXPECT_EQ(a.steals, 0u);   // stealing was off
  EXPECT_EQ(a.jobs_lost, 0u);  // drain is graceful
}

TEST(Rebalance, DisabledRebalancerIsInert) {
  exp::ClusterConfig cfg = stealing_config();
  cfg.rebalance = RebalanceConfig{};
  const exp::ClusterResult a = exp::run_cluster(cfg);
  const exp::ClusterResult b = exp::run_cluster(cfg);
  EXPECT_TRUE(identical(a, b));
  EXPECT_FALSE(a.rebalancing);
  EXPECT_EQ(a.steals, 0u);
  EXPECT_EQ(a.steal_scans, 0u);
  EXPECT_EQ(a.rehomes, 0u);
  EXPECT_EQ(a.coalesced_transfers, 0u);
  EXPECT_DOUBLE_EQ(a.coalesced_mb_saved, 0.0);
}

}  // namespace
}  // namespace daris::cluster
