// Resource-sharing behaviour: water-filling, oversubscription rescale,
// wave quantisation, intra-context penalty, small-quota penalty, and the
// memory-bandwidth cap — the mechanisms behind the paper's concurrency
// observations.
#include <gtest/gtest.h>

#include "common/time.h"
#include "gpusim/gpu.h"
#include "sim/simulator.h"

namespace daris::gpusim {
namespace {

using common::from_us;
using common::to_us;

GpuSpec ideal_spec() {
  GpuSpec s;
  s.jitter_cv = 0.0;
  s.quant_smoothing = 1.0;
  s.alpha_intra = 0.0;
  s.kappa_oversub = 0.0;
  s.quota_penalty_a = 0.0;
  s.launch_overhead_us = 0.0;
  s.mem_bandwidth = 1e9;
  return s;
}

/// Runs one kernel per stream and returns per-stream finish times (us).
template <typename MakeGpu>
std::vector<double> co_run(MakeGpu&& make,
                           const std::vector<KernelDesc>& kernels,
                           const std::vector<int>& ctx_of_kernel,
                           const std::vector<double>& quotas) {
  sim::Simulator sim;
  Gpu gpu = make(sim);
  std::vector<ContextId> ctxs;
  for (double q : quotas) ctxs.push_back(gpu.create_context(q));
  std::vector<double> finish(kernels.size(), 0.0);
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const auto s = gpu.create_stream(
        ctxs[static_cast<std::size_t>(ctx_of_kernel[i])]);
    gpu.launch_kernel(s, kernels[i]);
    gpu.enqueue_callback(s, [&finish, &sim, i] { finish[i] = to_us(sim.now()); });
  }
  sim.run();
  return finish;
}

TEST(GpuSharing, TwoKernelsShareContextQuotaEvenly) {
  KernelDesc k;
  k.work = 100.0;
  k.parallelism = 100.0;
  auto f = co_run([](sim::Simulator& s) { return Gpu(s, ideal_spec()); },
                  {k, k}, {0, 0}, {20.0});
  // Each gets 10 SMs -> 10 us.
  EXPECT_NEAR(f[0], 10.0, 0.05);
  EXPECT_NEAR(f[1], 10.0, 0.05);
}

TEST(GpuSharing, WaterFillGivesNarrowKernelItsFullDemand) {
  KernelDesc narrow;
  narrow.work = 20.0;
  narrow.parallelism = 4.0;  // wants only 4 SMs
  KernelDesc wide;
  wide.work = 160.0;
  wide.parallelism = 100.0;
  auto f = co_run([](sim::Simulator& s) { return Gpu(s, ideal_spec()); },
                  {narrow, wide}, {0, 0}, {20.0});
  // Narrow: 4 SMs -> 5 us. Wide: 16 SMs for the first 5 us (80 SM-us done),
  // then the full 20-SM quota for the remaining 80 SM-us -> 9 us total.
  EXPECT_NEAR(f[0], 5.0, 0.05);
  EXPECT_NEAR(f[1], 9.0, 0.10);
}

TEST(GpuSharing, OversubscribedQuotasRescaleToPhysicalSms) {
  // Two contexts, each with quota 68 (OS = 2 on a 68-SM device).
  KernelDesc k;
  k.work = 340.0;
  k.parallelism = 100.0;
  auto f = co_run([](sim::Simulator& s) { return Gpu(s, ideal_spec()); },
                  {k, k}, {0, 1}, {68.0, 68.0});
  // Each would take 68, rescaled to 34 -> 10 us.
  EXPECT_NEAR(f[0], 10.0, 0.05);
  EXPECT_NEAR(f[1], 10.0, 0.05);
}

TEST(GpuSharing, IsolatedQuotaStrandsIdleSms) {
  // OS = 1: one busy context cannot expand into the other's idle quota.
  KernelDesc k;
  k.work = 340.0;
  k.parallelism = 100.0;
  auto f = co_run([](sim::Simulator& s) { return Gpu(s, ideal_spec()); },
                  {k}, {0}, {34.0, 34.0});
  EXPECT_NEAR(f[0], 10.0, 0.05);  // 34 SMs only, though 68 exist
}

TEST(GpuSharing, WaveQuantizationRoundsUpWaves) {
  GpuSpec spec = ideal_spec();
  spec.quant_smoothing = 0.0;  // hard ceil
  KernelDesc k;
  k.work = 100.0;
  k.parallelism = 100.0;
  // Share = 40 SMs => ceil(100/40) = 3 waves; rate = 100/3 = 33.3.
  auto f = co_run([&](sim::Simulator& s) { return Gpu(s, spec); }, {k}, {0},
                  {40.0});
  EXPECT_NEAR(f[0], 3.0, 0.05);
}

TEST(GpuSharing, SingleWaveHasNoQuantizationLoss) {
  GpuSpec spec = ideal_spec();
  spec.quant_smoothing = 0.0;
  KernelDesc k;
  k.work = 100.0;
  k.parallelism = 40.0;  // fits into the quota in one wave
  auto f = co_run([&](sim::Simulator& s) { return Gpu(s, spec); }, {k}, {0},
                  {68.0});
  EXPECT_NEAR(f[0], 2.5, 0.05);  // 100/40
}

TEST(GpuSharing, IntraContextPenaltySlowsCoResidentStreams) {
  GpuSpec spec = ideal_spec();
  spec.alpha_intra = 0.5;  // two streams -> eff = 1/1.5
  KernelDesc k;
  k.work = 100.0;
  k.parallelism = 100.0;
  auto f = co_run([&](sim::Simulator& s) { return Gpu(s, spec); }, {k, k},
                  {0, 0}, {20.0});
  // 10 SMs each * 2/3 efficiency -> 15 us.
  EXPECT_NEAR(f[0], 15.0, 0.10);
}

TEST(GpuSharing, CrossContextAvoidsIntraPenalty) {
  GpuSpec spec = ideal_spec();
  spec.alpha_intra = 0.5;
  KernelDesc k;
  k.work = 100.0;
  k.parallelism = 100.0;
  auto f = co_run([&](sim::Simulator& s) { return Gpu(s, spec); }, {k, k},
                  {0, 1}, {10.0, 10.0});
  // Separate contexts: no intra penalty -> 10 us (this asymmetry is why the
  // paper finds MPS outperforms multi-stream STR).
  EXPECT_NEAR(f[0], 10.0, 0.05);
}

TEST(GpuSharing, SmallQuotaPenaltySlowsIsolatedSlices) {
  GpuSpec spec = ideal_spec();
  spec.quota_penalty_a = 0.6;
  spec.quota_penalty_q0 = 10.0;
  KernelDesc k;
  k.work = 100.0;
  k.parallelism = 100.0;
  // Quota 10: eff = 1 - 0.6 * exp(-1) ~= 0.779 -> 10 SMs * 0.779.
  auto f = co_run([&](sim::Simulator& s) { return Gpu(s, spec); }, {k}, {0},
                  {10.0});
  EXPECT_NEAR(f[0], 100.0 / (10.0 * 0.7793), 0.2);
}

TEST(GpuSharing, FullDeviceQuotaNearlyUnpenalized) {
  GpuSpec spec = ideal_spec();
  spec.quota_penalty_a = 0.6;
  spec.quota_penalty_q0 = 10.0;
  KernelDesc k;
  k.work = 680.0;
  k.parallelism = 680.0;
  auto f = co_run([&](sim::Simulator& s) { return Gpu(s, spec); }, {k}, {0},
                  {68.0});
  EXPECT_NEAR(f[0], 10.0, 0.05);  // penalty ~0.1% at Q=68
}

TEST(GpuSharing, BandwidthCapThrottlesMemoryBoundKernel) {
  GpuSpec spec = ideal_spec();
  spec.mem_bandwidth = 34.0;
  KernelDesc k;
  k.work = 340.0;
  k.parallelism = 100.0;
  k.mem_intensity = 1.0;  // demands 68 units at full width, cap is 34
  auto f = co_run([&](sim::Simulator& s) { return Gpu(s, spec); }, {k}, {0},
                  {68.0});
  EXPECT_NEAR(f[0], 10.0, 0.05);  // rate limited to 34 SMs-equivalent
}

TEST(GpuSharing, ComputeBoundKernelIgnoresBandwidthCap) {
  GpuSpec spec = ideal_spec();
  spec.mem_bandwidth = 34.0;
  KernelDesc k;
  k.work = 340.0;
  k.parallelism = 100.0;
  k.mem_intensity = 0.1;  // demand 6.8 << 34
  auto f = co_run([&](sim::Simulator& s) { return Gpu(s, spec); }, {k}, {0},
                  {68.0});
  EXPECT_NEAR(f[0], 5.0, 0.05);
}

TEST(GpuSharing, OversubContentionPenaltyApplies) {
  GpuSpec spec = ideal_spec();
  spec.kappa_oversub = 0.5;
  KernelDesc k;
  k.work = 340.0;
  k.parallelism = 100.0;
  // Two contexts with quota 68: demand 136/68 -> excess 1 -> eff = 1/1.5.
  auto f = co_run([&](sim::Simulator& s) { return Gpu(s, spec); }, {k, k},
                  {0, 1}, {68.0, 68.0});
  EXPECT_NEAR(f[0], 15.0, 0.10);
}

TEST(GpuSharing, WorkConservedAcrossHeterogeneousMix) {
  // Total completion of a work bag equals work / SMs regardless of split,
  // in the ideal (fluid, penalty-free) configuration.
  KernelDesc big;
  big.work = 680.0;
  big.parallelism = 1000.0;
  KernelDesc small;
  small.work = 170.0;
  small.parallelism = 1000.0;
  auto f = co_run([](sim::Simulator& s) { return Gpu(s, ideal_spec()); },
                  {big, small, small}, {0, 0, 0}, {68.0});
  const double last = std::max({f[0], f[1], f[2]});
  EXPECT_NEAR(last, (680.0 + 170.0 + 170.0) / 68.0, 0.1);
}

/// Parameterised sweep: under pure fluid sharing with no penalties, n equal
/// wide kernels across n contexts finish together at n * t_single.
class GpuSharingFairness : public ::testing::TestWithParam<int> {};

TEST_P(GpuSharingFairness, EqualSharesForEqualDemands) {
  const int n = GetParam();
  KernelDesc k;
  k.work = 680.0;
  k.parallelism = 200.0;
  std::vector<KernelDesc> kernels(static_cast<std::size_t>(n), k);
  std::vector<int> ctxs(kernels.size());
  std::vector<double> quotas(kernels.size(), 68.0);
  for (int i = 0; i < n; ++i) ctxs[static_cast<std::size_t>(i)] = i;
  auto f = co_run([](sim::Simulator& s) { return Gpu(s, ideal_spec()); },
                  kernels, ctxs, quotas);
  for (double fi : f) EXPECT_NEAR(fi, 10.0 * n, 0.1 * n);
}

INSTANTIATE_TEST_SUITE_P(Counts, GpuSharingFairness,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 10));

}  // namespace
}  // namespace daris::gpusim
