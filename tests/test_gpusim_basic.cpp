// GPU model basics: single-kernel timing, stream FIFO semantics, callbacks,
// launch overhead, utilization accounting.
#include <gtest/gtest.h>

#include <vector>

#include "gpusim/gpu.h"
#include "sim/simulator.h"

namespace daris::gpusim {
namespace {

using common::from_us;
using common::to_us;

GpuSpec ideal_spec() {
  GpuSpec s;
  s.jitter_cv = 0.0;          // deterministic timing for exact assertions
  s.quant_smoothing = 1.0;    // pure fluid
  s.alpha_intra = 0.0;
  s.kappa_oversub = 0.0;
  s.quota_penalty_a = 0.0;
  s.launch_overhead_us = 0.0;
  s.mem_bandwidth = 1e9;
  return s;
}

TEST(GpuBasic, SingleWideKernelRunsAtFullDevice) {
  sim::Simulator sim;
  GpuSpec spec = ideal_spec();
  Gpu gpu(sim, spec);
  const auto ctx = gpu.create_context(68.0);
  const auto s = gpu.create_stream(ctx);

  KernelDesc k;
  k.work = 680.0;        // SM-us
  k.parallelism = 680.0;  // far wider than the device
  gpu.launch_kernel(s, k);
  bool done = false;
  common::Time finish = 0;
  gpu.enqueue_callback(s, [&] {
    done = true;
    finish = sim.now();
  });
  sim.run();
  EXPECT_TRUE(done);
  // 680 SM-us over 68 SMs = 10 us.
  EXPECT_NEAR(to_us(finish), 10.0, 0.01);
}

TEST(GpuBasic, NarrowKernelLimitedByParallelism) {
  sim::Simulator sim;
  Gpu gpu(sim, ideal_spec());
  const auto s = gpu.create_stream(gpu.create_context(68.0));
  KernelDesc k;
  k.work = 100.0;
  k.parallelism = 10.0;  // can only ever use 10 SMs
  gpu.launch_kernel(s, k);
  common::Time finish = 0;
  gpu.enqueue_callback(s, [&] { finish = sim.now(); });
  sim.run();
  EXPECT_NEAR(to_us(finish), 10.0, 0.01);
}

TEST(GpuBasic, LaunchOverheadSerializesWithinStream) {
  sim::Simulator sim;
  GpuSpec spec = ideal_spec();
  spec.launch_overhead_us = 5.0;
  Gpu gpu(sim, spec);
  const auto s = gpu.create_stream(gpu.create_context(68.0));
  for (int i = 0; i < 3; ++i) {
    KernelDesc k;
    k.work = 68.0;  // 1 us at full width
    k.parallelism = 68.0;
    gpu.launch_kernel(s, k);
  }
  common::Time finish = 0;
  gpu.enqueue_callback(s, [&] { finish = sim.now(); });
  sim.run();
  // 3 x (5 us launch + 1 us exec).
  EXPECT_NEAR(to_us(finish), 18.0, 0.05);
}

TEST(GpuBasic, StreamFifoOrder) {
  sim::Simulator sim;
  Gpu gpu(sim, ideal_spec());
  const auto s = gpu.create_stream(gpu.create_context(68.0));
  std::vector<int> order;
  KernelDesc k;
  k.work = 68.0;
  k.parallelism = 68.0;
  gpu.launch_kernel(s, k);
  gpu.enqueue_callback(s, [&] { order.push_back(1); });
  gpu.launch_kernel(s, k);
  gpu.enqueue_callback(s, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(GpuBasic, CallbackOnEmptyStreamRunsImmediately) {
  sim::Simulator sim;
  Gpu gpu(sim, ideal_spec());
  const auto s = gpu.create_stream(gpu.create_context(68.0));
  bool ran = false;
  gpu.enqueue_callback(s, [&] { ran = true; });
  EXPECT_TRUE(ran);  // nothing queued: runs inline
  EXPECT_TRUE(gpu.stream_idle(s));
}

TEST(GpuBasic, StreamIdleAndDepthTracking) {
  sim::Simulator sim;
  GpuSpec spec = ideal_spec();
  spec.launch_overhead_us = 1.0;
  Gpu gpu(sim, spec);
  const auto s = gpu.create_stream(gpu.create_context(68.0));
  EXPECT_TRUE(gpu.stream_idle(s));
  KernelDesc k;
  k.work = 68.0;
  k.parallelism = 68.0;
  gpu.launch_kernel(s, k);
  gpu.launch_kernel(s, k);
  EXPECT_FALSE(gpu.stream_idle(s));
  EXPECT_EQ(gpu.stream_depth(s), 2u);
  sim.run();
  EXPECT_TRUE(gpu.stream_idle(s));
  EXPECT_EQ(gpu.stream_depth(s), 0u);
  EXPECT_EQ(gpu.kernels_completed(), 2u);
}

TEST(GpuBasic, IndependentStreamsProgressConcurrently) {
  sim::Simulator sim;
  Gpu gpu(sim, ideal_spec());
  const auto c1 = gpu.create_context(34.0);
  const auto c2 = gpu.create_context(34.0);
  const auto s1 = gpu.create_stream(c1);
  const auto s2 = gpu.create_stream(c2);
  KernelDesc k;
  k.work = 340.0;
  k.parallelism = 100.0;
  common::Time f1 = 0, f2 = 0;
  gpu.launch_kernel(s1, k);
  gpu.enqueue_callback(s1, [&] { f1 = sim.now(); });
  gpu.launch_kernel(s2, k);
  gpu.enqueue_callback(s2, [&] { f2 = sim.now(); });
  sim.run();
  // Each runs in its own 34-SM quota: 340/34 = 10 us, concurrently.
  EXPECT_NEAR(to_us(f1), 10.0, 0.01);
  EXPECT_NEAR(to_us(f2), 10.0, 0.01);
}

TEST(GpuBasic, UtilizationIntegralMatchesBusyTime) {
  sim::Simulator sim;
  Gpu gpu(sim, ideal_spec());
  const auto s = gpu.create_stream(gpu.create_context(68.0));
  KernelDesc k;
  k.work = 680.0;  // 10 us at full device
  k.parallelism = 680.0;
  gpu.launch_kernel(s, k);
  sim.run();
  // Busy for 10 of 20 us at full width -> utilization 0.5.
  EXPECT_NEAR(gpu.utilization(from_us(20.0)), 0.5, 0.01);
}

TEST(GpuBasic, JitterPreservesDeterminismPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator sim;
    GpuSpec spec;  // default: with jitter
    Gpu gpu(sim, spec, seed);
    const auto s = gpu.create_stream(gpu.create_context(68.0));
    KernelDesc k;
    k.work = 680.0;
    k.parallelism = 68.0;
    gpu.launch_kernel(s, k);
    common::Time finish = 0;
    gpu.enqueue_callback(s, [&] { finish = sim.now(); });
    sim.run();
    return finish;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(GpuBasic, QuotaChangeTakesEffect) {
  sim::Simulator sim;
  Gpu gpu(sim, ideal_spec());
  const auto ctx = gpu.create_context(10.0);
  const auto s = gpu.create_stream(ctx);
  KernelDesc k;
  k.work = 200.0;
  k.parallelism = 100.0;
  gpu.launch_kernel(s, k);
  common::Time finish = 0;
  gpu.enqueue_callback(s, [&] { finish = sim.now(); });
  // After 10 us (100 SM-us done at 10 SMs), double the quota.
  sim.schedule_at(from_us(10.0), [&] { gpu.set_context_quota(ctx, 20.0); });
  sim.run();
  // Remaining 100 SM-us at 20 SMs = 5 us -> finish at 15 us.
  EXPECT_NEAR(to_us(finish), 15.0, 0.05);
  EXPECT_EQ(gpu.context_quota(ctx), 20.0);
}

TEST(GpuBasic, EqualQuotaSetIsANoOp) {
  // Setting a context's current quota again must not settle progress or
  // re-solve rates: with the full (jittered) model, a run peppered with
  // same-value quota sets produces the exact timeline of a run without
  // them, and the redundant calls burn no simulator state (no events, no
  // tie-break sequence numbers — either would perturb the timeline).
  auto run_once = [](bool redundant_sets) {
    sim::Simulator sim;
    Gpu gpu(sim, GpuSpec{}, /*seed=*/7);
    const auto ctx = gpu.create_context(24.0);
    const auto s = gpu.create_stream(ctx);
    std::vector<common::Time> finishes;
    for (int i = 0; i < 8; ++i) {
      KernelDesc k;
      k.work = 100.0 + 17.0 * i;
      k.parallelism = 40.0;
      gpu.launch_kernel(s, k);
      gpu.enqueue_callback(s, [&finishes, &sim] { finishes.push_back(sim.now()); });
    }
    if (redundant_sets) {
      for (int i = 1; i <= 5; ++i) {
        sim.schedule_at(from_us(20.0 * i),
                        [&gpu, ctx] { gpu.set_context_quota(ctx, 24.0); });
      }
    }
    sim.run();
    return finishes;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

}  // namespace
}  // namespace daris::gpusim
