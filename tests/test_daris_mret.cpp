// MRET estimation (Eq. 1-2, Eq. 10 AFET seeding) and virtual deadlines
// (Eq. 8).
#include <gtest/gtest.h>

#include "common/time.h"
#include <cmath>

#include "daris/mret.h"

namespace daris::rt {
namespace {

using common::from_ms;

TEST(Mret, AfetSeedsBeforeObservations) {
  MretEstimator m(3, 5);
  m.set_afet({100.0, 200.0, 300.0});
  EXPECT_DOUBLE_EQ(m.stage_mret_us(0), 100.0);
  EXPECT_DOUBLE_EQ(m.stage_mret_us(2), 300.0);
  EXPECT_DOUBLE_EQ(m.total_mret_us(), 600.0);
}

TEST(Mret, ObservationReplacesAfet) {
  MretEstimator m(2, 5);
  m.set_afet({100.0, 100.0});
  m.record(0, 40.0);
  // Stage 0 now uses the measured window (even though 40 < AFET 100):
  // MRET adapts downward, which is the whole point vs. static WCET.
  EXPECT_DOUBLE_EQ(m.stage_mret_us(0), 40.0);
  EXPECT_DOUBLE_EQ(m.stage_mret_us(1), 100.0);  // untouched stage keeps AFET
}

TEST(Mret, WindowMaxOverRecentObservations) {
  MretEstimator m(1, 3);
  for (double v : {10.0, 50.0, 20.0}) m.record(0, v);
  EXPECT_DOUBLE_EQ(m.stage_mret_us(0), 50.0);
  m.record(0, 15.0);  // 10 expires; window {50,20,15}
  EXPECT_DOUBLE_EQ(m.stage_mret_us(0), 50.0);
  m.record(0, 5.0);  // {20,15,5}
  m.record(0, 5.0);  // {15,5,5}... 50 and 20 have rolled out
  EXPECT_DOUBLE_EQ(m.stage_mret_us(0), 15.0);
}

TEST(Mret, TotalIsSumOfStageMrets) {
  MretEstimator m(3, 5);
  m.record(0, 10.0);
  m.record(1, 20.0);
  m.record(2, 30.0);
  EXPECT_DOUBLE_EQ(m.total_mret_us(), 60.0);
}

TEST(Mret, VirtualDeadlinesProportionalToStageShares) {
  MretEstimator m(3, 5);
  m.record(0, 10.0);
  m.record(1, 30.0);
  m.record(2, 60.0);
  const auto vd = m.virtual_deadlines(from_ms(10.0));
  ASSERT_EQ(vd.size(), 3u);
  EXPECT_NEAR(common::to_ms(vd[0]), 1.0, 0.01);
  EXPECT_NEAR(common::to_ms(vd[1]), 3.0, 0.01);
  EXPECT_NEAR(common::to_ms(vd[2]), 6.0, 0.01);
}

TEST(Mret, VirtualDeadlinesSumApproxTotal) {
  MretEstimator m(4, 5);
  for (std::size_t j = 0; j < 4; ++j) m.record(j, 7.0 + 3.0 * j);
  const common::Duration d = from_ms(33.3);
  const auto vd = m.virtual_deadlines(d);
  common::Duration sum = 0;
  for (auto v : vd) sum += v;
  EXPECT_NEAR(static_cast<double>(sum), static_cast<double>(d),
              static_cast<double>(vd.size()));  // rounding only
}

TEST(Mret, DegenerateZeroEstimatesSplitEvenly) {
  MretEstimator m(4, 5);  // no AFET, no observations
  const auto vd = m.virtual_deadlines(from_ms(8.0));
  for (auto v : vd) EXPECT_NEAR(common::to_ms(v), 2.0, 0.01);
}

TEST(Mret, ObservationCountTracking) {
  MretEstimator m(2, 5);
  EXPECT_EQ(m.observations(0), 0u);
  m.record(0, 1.0);
  m.record(0, 2.0);
  EXPECT_EQ(m.observations(0), 2u);
  EXPECT_EQ(m.observations(1), 0u);
  EXPECT_EQ(m.num_stages(), 2u);
}

/// Property: MRET is always >= the most recent observation and >= every
/// observation still inside the window.
class MretWindowProperty : public ::testing::TestWithParam<int> {};

TEST_P(MretWindowProperty, DominatesWindowContents) {
  const int ws = GetParam();
  MretEstimator m(1, static_cast<std::size_t>(ws));
  std::vector<double> history;
  for (int i = 0; i < 100; ++i) {
    const double v = 50.0 + 40.0 * std::sin(i * 0.7) + i % 7;
    m.record(0, v);
    history.push_back(v);
    const std::size_t start =
        history.size() > static_cast<std::size_t>(ws)
            ? history.size() - static_cast<std::size_t>(ws)
            : 0;
    for (std::size_t j = start; j < history.size(); ++j) {
      ASSERT_GE(m.stage_mret_us(0), history[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, MretWindowProperty,
                         ::testing::Values(1, 2, 5, 10));

}  // namespace
}  // namespace daris::rt
