// Context-level launch serialisation: launches from different streams of
// one context contend for the driver context lock, while separate contexts
// launch in parallel (the paper's "multiple contexts enhance throughput").
#include <gtest/gtest.h>

#include "gpusim/gpu.h"
#include "sim/simulator.h"

namespace daris::gpusim {
namespace {

using common::to_us;

GpuSpec launch_only_spec() {
  GpuSpec s;
  s.jitter_cv = 0.0;
  s.quant_smoothing = 1.0;
  s.alpha_intra = 0.0;
  s.kappa_oversub = 0.0;
  s.quota_penalty_a = 0.0;
  s.launch_overhead_us = 10.0;
  s.mem_bandwidth = 1e9;
  return s;
}

KernelDesc instant_kernel() {
  KernelDesc k;
  k.work = 1e-6;  // negligible execution: isolate launch behaviour
  k.parallelism = 68.0;
  return k;
}

TEST(GpuLaunch, SameContextStreamsSerializeLaunches) {
  sim::Simulator sim;
  Gpu gpu(sim, launch_only_spec());
  const auto ctx = gpu.create_context(68.0);
  const auto s1 = gpu.create_stream(ctx);
  const auto s2 = gpu.create_stream(ctx);
  common::Time f1 = 0, f2 = 0;
  gpu.launch_kernel(s1, instant_kernel());
  gpu.enqueue_callback(s1, [&] { f1 = sim.now(); });
  gpu.launch_kernel(s2, instant_kernel());
  gpu.enqueue_callback(s2, [&] { f2 = sim.now(); });
  sim.run();
  // Second stream's launch waits for the context lock: ~20 us total.
  EXPECT_NEAR(to_us(f1), 10.0, 0.1);
  EXPECT_NEAR(to_us(f2), 20.0, 0.1);
}

TEST(GpuLaunch, DifferentContextsLaunchInParallel) {
  sim::Simulator sim;
  Gpu gpu(sim, launch_only_spec());
  const auto s1 = gpu.create_stream(gpu.create_context(34.0));
  const auto s2 = gpu.create_stream(gpu.create_context(34.0));
  common::Time f1 = 0, f2 = 0;
  gpu.launch_kernel(s1, instant_kernel());
  gpu.enqueue_callback(s1, [&] { f1 = sim.now(); });
  gpu.launch_kernel(s2, instant_kernel());
  gpu.enqueue_callback(s2, [&] { f2 = sim.now(); });
  sim.run();
  EXPECT_NEAR(to_us(f1), 10.0, 0.1);
  EXPECT_NEAR(to_us(f2), 10.0, 0.1);
}

TEST(GpuLaunch, LockReleasedInFifoOrder) {
  sim::Simulator sim;
  Gpu gpu(sim, launch_only_spec());
  const auto ctx = gpu.create_context(68.0);
  std::vector<common::Time> finish;
  std::vector<StreamId> streams;
  for (int i = 0; i < 4; ++i) streams.push_back(gpu.create_stream(ctx));
  finish.resize(4);
  for (std::size_t i = 0; i < 4; ++i) {
    gpu.launch_kernel(streams[i], instant_kernel());
    gpu.enqueue_callback(streams[i], [&finish, &sim, i] {
      finish[i] = sim.now();
    });
  }
  sim.run();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(to_us(finish[i]), 10.0 * (static_cast<double>(i) + 1.0), 0.1);
  }
}

TEST(GpuLaunch, ManyStreamsThroughputCappedByLock) {
  // 8 streams x 10 kernels each with 10 us launches: the context lock caps
  // completion at ~80 launches x 10 us regardless of compute capacity.
  sim::Simulator sim;
  Gpu gpu(sim, launch_only_spec());
  const auto ctx = gpu.create_context(68.0);
  for (int i = 0; i < 8; ++i) {
    const auto s = gpu.create_stream(ctx);
    for (int k = 0; k < 10; ++k) gpu.launch_kernel(s, instant_kernel());
  }
  sim.run();
  EXPECT_EQ(gpu.kernels_completed(), 80u);
  EXPECT_NEAR(to_us(sim.now()), 800.0, 2.0);
}

TEST(GpuLaunch, ExecutionOverlapsOtherStreamsLaunch) {
  // While stream A executes, stream B can hold the context lock: launch
  // time hides under compute across streams (but not within one stream).
  sim::Simulator sim;
  GpuSpec spec = launch_only_spec();
  Gpu gpu(sim, spec);
  const auto ctx = gpu.create_context(68.0);
  const auto a = gpu.create_stream(ctx);
  const auto b = gpu.create_stream(ctx);
  KernelDesc big;
  big.work = 680.0;  // 10+ us of execution at half width
  big.parallelism = 34.0;
  common::Time fa = 0, fb = 0;
  gpu.launch_kernel(a, big);
  gpu.enqueue_callback(a, [&] { fa = sim.now(); });
  gpu.launch_kernel(b, big);
  gpu.enqueue_callback(b, [&] { fb = sim.now(); });
  sim.run();
  // a: launch 10 + exec 20. b: waits lock until 20, exec finishes ~40.
  EXPECT_NEAR(to_us(fa), 30.0, 1.0);
  EXPECT_LT(to_us(fb), 45.0);
}

}  // namespace
}  // namespace daris::gpusim
