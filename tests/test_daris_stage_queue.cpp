// The eight fixed stage-priority levels and EDF ordering (Sec. IV-B2).
#include <gtest/gtest.h>

#include "daris/stage_queue.h"

namespace daris::rt {
namespace {

SchedulerConfig full_config() {
  SchedulerConfig c;
  c.fixed_levels = true;
  c.prioritize_last_stage = true;
  c.boost_after_miss = true;
  return c;
}

TEST(StageLevel, EightDistinctLevels) {
  const SchedulerConfig c = full_config();
  // HP: last+miss < last < miss < normal, then the same for LP.
  EXPECT_EQ(stage_level(c, Priority::kHigh, true, true), 0);
  EXPECT_EQ(stage_level(c, Priority::kHigh, true, false), 1);
  EXPECT_EQ(stage_level(c, Priority::kHigh, false, true), 2);
  EXPECT_EQ(stage_level(c, Priority::kHigh, false, false), 3);
  EXPECT_EQ(stage_level(c, Priority::kLow, true, true), 4);
  EXPECT_EQ(stage_level(c, Priority::kLow, true, false), 5);
  EXPECT_EQ(stage_level(c, Priority::kLow, false, true), 6);
  EXPECT_EQ(stage_level(c, Priority::kLow, false, false), 7);
}

TEST(StageLevel, HpAlwaysBeatsLp) {
  const SchedulerConfig c = full_config();
  // Even the weakest HP stage outranks the strongest LP stage.
  EXPECT_LT(stage_level(c, Priority::kHigh, false, false),
            stage_level(c, Priority::kLow, true, true));
}

TEST(StageLevel, NoLastAblationDropsLastBoost) {
  SchedulerConfig c = full_config();
  c.prioritize_last_stage = false;
  EXPECT_EQ(stage_level(c, Priority::kHigh, true, false),
            stage_level(c, Priority::kHigh, false, false));
}

TEST(StageLevel, NoPriorAblationDropsMissBoost) {
  SchedulerConfig c = full_config();
  c.boost_after_miss = false;
  EXPECT_EQ(stage_level(c, Priority::kHigh, false, true),
            stage_level(c, Priority::kHigh, false, false));
}

TEST(StageLevel, NoFixedAblationCollapsesEverything) {
  SchedulerConfig c = full_config();
  c.fixed_levels = false;
  EXPECT_EQ(stage_level(c, Priority::kHigh, true, true), 0);
  EXPECT_EQ(stage_level(c, Priority::kLow, false, false), 0);
}

TEST(StageQueue, PopsByLevelThenDeadline) {
  StageQueue q;
  ReadyStage a;
  a.level = 3;
  a.deadline = 100;
  ReadyStage b;
  b.level = 1;
  b.deadline = 500;
  ReadyStage c;
  c.level = 1;
  c.deadline = 200;
  q.push(a);
  q.push(b);
  q.push(c);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().deadline, 200);  // level 1, earlier deadline
  EXPECT_EQ(q.pop().deadline, 500);  // level 1
  EXPECT_EQ(q.pop().deadline, 100);  // level 3
  EXPECT_TRUE(q.empty());
}

TEST(StageQueue, FifoTieBreakIsDeterministic) {
  StageQueue q;
  for (int i = 0; i < 5; ++i) {
    ReadyStage s;
    s.level = 2;
    s.deadline = 100;
    s.stage = static_cast<std::size_t>(i);
    q.push(s);
  }
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(q.pop().stage, i);
  }
}

TEST(StageQueue, PeekDoesNotRemove) {
  StageQueue q;
  ReadyStage a;
  a.level = 0;
  a.deadline = 7;
  q.push(a);
  EXPECT_EQ(q.peek().deadline, 7);
  EXPECT_EQ(q.size(), 1u);
}

/// EDF property under random loads: pops are sorted by (level, deadline).
TEST(StageQueue, PropertySortedness) {
  StageQueue q;
  std::uint64_t x = 88172645463325252ull;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (int i = 0; i < 500; ++i) {
    ReadyStage s;
    s.level = static_cast<int>(next() % 8);
    s.deadline = static_cast<Time>(next() % 10000);
    q.push(s);
  }
  int prev_level = -1;
  Time prev_deadline = -1;
  while (!q.empty()) {
    const ReadyStage s = q.pop();
    if (s.level == prev_level) {
      EXPECT_GE(s.deadline, prev_deadline);
    } else {
      EXPECT_GT(s.level, prev_level);
    }
    prev_level = s.level;
    prev_deadline = s.deadline;
  }
}

}  // namespace
}  // namespace daris::rt
