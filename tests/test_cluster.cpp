// Cluster layer: routing policy selection, cross-GPU migration on admission
// failure, fleet-wide backlog shedding, and fleet determinism.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/fleet.h"
#include "cluster/router.h"
#include "experiments/cluster_runner.h"

namespace daris::cluster {
namespace {

using common::Priority;

/// Small deterministic fixture: a jitter-free fleet with single-context
/// single-stream GPUs, one ResNet18 model shared by every task. Transfers
/// are zero-delay by default (the legacy premise); tests of the transfer
/// cost model pass a rate, and heterogeneous tests pass explicit nodes.
struct Harness {
  explicit Harness(int num_gpus, int num_contexts = 1,
                   double transfer_us_per_mb = 0.0,
                   std::vector<GpuNodeSpec> nodes = {}) {
    FleetConfig cfg;
    cfg.num_gpus = num_gpus;
    cfg.gpu.jitter_cv = 0.0;
    cfg.nodes = std::move(nodes);
    for (auto& node : cfg.nodes) node.base.jitter_cv = 0.0;
    cfg.transfer_us_per_mb = transfer_us_per_mb;
    cfg.sched.policy = rt::Policy::kMps;
    cfg.sched.num_contexts = num_contexts;
    model = std::make_unique<dnn::CompiledModel>(
        dnn::compiled_model(dnn::ModelKind::kResNet18, 1, cfg.gpu));
    collector.set_gpu_count(cfg.nodes.empty()
                                ? num_gpus
                                : static_cast<int>(cfg.nodes.size()));
    fleet = std::make_unique<Fleet>(sim, cfg, &collector);
  }

  /// Adds a task whose AFET (and so utilisation ~ total_afet/period) is
  /// chosen directly; period 10ms.
  int add_task(Priority priority, double total_afet_us, int home_gpu) {
    rt::TaskSpec spec;
    spec.model = dnn::ModelKind::kResNet18;
    spec.period = common::from_ms(10.0);
    spec.relative_deadline = spec.period;
    spec.priority = priority;
    const int id = fleet->add_task(spec, model.get(), home_gpu);
    fleet->set_afet(
        id, std::vector<double>(
                model->stage_count(),
                total_afet_us / static_cast<double>(model->stage_count())));
    return id;
  }

  sim::Simulator sim;
  metrics::Collector collector;
  std::unique_ptr<dnn::CompiledModel> model;
  std::unique_ptr<Fleet> fleet;
};

TEST(Router, RoundRobinCyclesGpusForLpJobs) {
  Harness h(2);
  // Four light LP tasks, one release each: round-robin must alternate GPUs.
  for (int i = 0; i < 4; ++i) h.add_task(Priority::kLow, 500.0, i % 2);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kRoundRobin, 1, &h.collector);
  for (int i = 0; i < 4; ++i) router.release(i);
  EXPECT_EQ(h.collector.routing(0).routed, 2u);
  EXPECT_EQ(h.collector.routing(1).routed, 2u);
  EXPECT_EQ(h.collector.routing(0).home_admits, 2u);
  EXPECT_EQ(h.collector.routing(1).home_admits, 2u);
  EXPECT_EQ(router.drops(), 0u);
}

TEST(Router, ModelAffinityRoutesToHomeGpu) {
  Harness h(2);
  const int a = h.add_task(Priority::kLow, 500.0, /*home_gpu=*/1);
  const int b = h.add_task(Priority::kLow, 500.0, /*home_gpu=*/0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(a);
  router.release(b);
  EXPECT_EQ(h.collector.routing(1).routed, 1u);
  EXPECT_EQ(h.collector.routing(0).routed, 1u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 1u);
  EXPECT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 1u);
}

TEST(Router, HpJobsAlwaysStartAtTheirHomeGpu) {
  Harness h(2);
  const int hp = h.add_task(Priority::kHigh, 500.0, /*home_gpu=*/1);
  h.fleet->run_offline_phase();
  // Round-robin would start at GPU 0; HP placement must ignore the policy.
  Router router(*h.fleet, RoutingPolicy::kRoundRobin, 1, &h.collector);
  router.release(hp);
  EXPECT_EQ(h.collector.routing(1).routed, 1u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 1u);
  EXPECT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 0u);
}

TEST(Router, LeastUtilizationPrefersIdleGpu) {
  Harness h(2);
  const int a = h.add_task(Priority::kLow, 3000.0, 0);
  const int b = h.add_task(Priority::kLow, 3000.0, 1);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kLeastUtilization, 1, &h.collector);
  router.release(a);  // ties break to GPU 0
  EXPECT_GT(h.fleet->load(0), 0.0);
  router.release(b);  // GPU 0 now carries load, so GPU 1 must win
  EXPECT_EQ(h.collector.routing(0).routed, 1u);
  EXPECT_EQ(h.collector.routing(1).routed, 1u);
}

TEST(Router, CrossGpuMigrationOnAdmissionFailure) {
  Harness h(2);
  // Two heavy LP tasks (utilisation ~0.9 each) homed on GPU 0: the second
  // release fails Eq. 12 on every context of GPU 0 and must be offered to
  // the idle peer instead of being dropped.
  const int a = h.add_task(Priority::kLow, 9000.0, 0);
  const int b = h.add_task(Priority::kLow, 9000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(a);
  router.release(b);
  EXPECT_EQ(router.cross_gpu_migrations(), 1u);
  EXPECT_EQ(router.drops(), 0u);
  EXPECT_EQ(h.collector.routing(0).migrated_out, 1u);
  EXPECT_EQ(h.collector.routing(1).migrated_in, 1u);
  EXPECT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 1u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 1u);
  // GPU 1 was cold for this model: the (zero-delay) migration shipped the
  // weights and pinned them, so the next migration there is transfer-free.
  EXPECT_EQ(router.transfers(), 1u);
  EXPECT_DOUBLE_EQ(router.transferred_mb(), h.model->weight_mb);
  EXPECT_TRUE(h.fleet->model_hot(1, b));
}

TEST(Router, DropsWhenNoPeerCanAdmit) {
  Harness h(1);  // no peer to migrate to
  const int a = h.add_task(Priority::kLow, 9000.0, 0);
  const int b = h.add_task(Priority::kLow, 9000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(a);
  router.release(b);
  EXPECT_EQ(router.cross_gpu_migrations(), 0u);
  EXPECT_EQ(router.drops(), 1u);
  EXPECT_EQ(h.collector.routing(0).dropped, 1u);
  EXPECT_EQ(h.collector.summary(Priority::kLow).rejected, 1u);
}

TEST(Router, FleetWideBacklogGuardShedsLpEverywhere) {
  Harness h(2);
  // One light LP task released twice back-to-back: the second release must
  // be shed because a job is already active *somewhere* in the fleet, even
  // though the peer GPU is idle (the paper's single-GPU shedding rule).
  const int a = h.add_task(Priority::kLow, 500.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kLeastUtilization, 1, &h.collector);
  router.release(a);
  router.release(a);
  EXPECT_EQ(router.drops(), 1u);
  EXPECT_EQ(router.cross_gpu_migrations(), 0u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 0u);
}

TEST(Router, HybridStaysHomeUnderLightLoad) {
  Harness h(2);
  const int a = h.add_task(Priority::kLow, 500.0, /*home_gpu=*/1);
  h.fleet->run_offline_phase();
  RouterConfig cfg;
  cfg.policy = RoutingPolicy::kHybrid;
  Router router(*h.fleet, cfg, &h.collector);
  router.release(a);
  // Home relative load is 0 < threshold: affinity wins, no spill.
  EXPECT_EQ(h.collector.routing(1).routed, 1u);
  EXPECT_EQ(h.collector.routing(1).home_admits, 1u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 1u);
}

TEST(Router, HybridSpillsWhenHomeLoadCrossesThreshold) {
  Harness h(2);
  // Loading task: utilisation 0.8 >= the 0.75 default spill threshold.
  const int heavy = h.add_task(Priority::kLow, 8000.0, /*home_gpu=*/0);
  const int light = h.add_task(Priority::kLow, 500.0, /*home_gpu=*/0);
  h.fleet->run_offline_phase();
  RouterConfig cfg;
  cfg.policy = RoutingPolicy::kHybrid;
  Router router(*h.fleet, cfg, &h.collector);
  router.release(heavy);
  EXPECT_EQ(h.collector.routing(0).routed, 1u);
  // Home now at relative load 0.8; the idle peer scores better: spill.
  router.release(light);
  EXPECT_EQ(h.collector.routing(1).routed, 1u);
  EXPECT_EQ(h.collector.routing(1).home_admits, 1u);
  EXPECT_EQ(router.cross_gpu_migrations(), 0u);  // first-offer, not a retry
}

TEST(Router, HybridDoesNotSpillToBusierPeer) {
  Harness h(2);
  const int peer_load = h.add_task(Priority::kLow, 9000.0, /*home_gpu=*/1);
  const int heavy = h.add_task(Priority::kLow, 8000.0, /*home_gpu=*/0);
  const int light = h.add_task(Priority::kLow, 500.0, /*home_gpu=*/0);
  h.fleet->run_offline_phase();
  RouterConfig cfg;
  cfg.policy = RoutingPolicy::kHybrid;
  Router router(*h.fleet, cfg, &h.collector);
  router.release(peer_load);  // GPU 1 at 0.9
  router.release(heavy);      // GPU 0 at 0.8
  router.release(light);
  // Home is past the threshold but the only peer scores worse (0.9 > 0.8):
  // spilling would not help, so the job stays home.
  EXPECT_EQ(h.collector.routing(0).routed, 2u);
  EXPECT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 2u);
}

TEST(Router, MigrationToColdPeerPaysTransferDelay) {
  Harness h(2, /*num_contexts=*/1, /*transfer_us_per_mb=*/100.0);
  const int a = h.add_task(Priority::kLow, 9000.0, 0);
  const int b = h.add_task(Priority::kLow, 9000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(a);
  router.release(b);
  // The peer is cold for ResNet18: the weights must be shipped first, so
  // the migration is in flight, not landed.
  EXPECT_EQ(router.pending_transfers(), 1u);
  EXPECT_EQ(router.transfers(), 1u);
  EXPECT_EQ(router.cross_gpu_migrations(), 0u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 0u);
  // After weight_mb * 100 us the copy lands, the job is admitted on the
  // peer, and the model is pinned hot there.
  const common::Duration delay =
      common::from_us(h.model->weight_mb * 100.0);
  h.sim.run_until(delay + common::from_us(50.0));
  EXPECT_EQ(router.pending_transfers(), 0u);
  EXPECT_EQ(router.cross_gpu_migrations(), 1u);
  EXPECT_EQ(router.drops(), 0u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 1u);
  EXPECT_EQ(h.collector.routing(1).migrated_in, 1u);
  EXPECT_EQ(h.collector.routing(1).transfers_in, 1u);
  EXPECT_DOUBLE_EQ(h.collector.routing(1).transferred_mb,
                   h.model->weight_mb);
  EXPECT_TRUE(h.fleet->model_hot(1, b));
}

TEST(Router, TransferDelayConsumesDeadlineSlack) {
  // 200 us/MB on a ~45 MB model: the copy alone eats ~9 ms of the 10 ms
  // deadline. The migrated job keeps its original release time, so it must
  // finish late — migration is not a free escape hatch.
  Harness h(2, /*num_contexts=*/1, /*transfer_us_per_mb=*/200.0);
  const int a = h.add_task(Priority::kLow, 9000.0, 0);
  const int b = h.add_task(Priority::kLow, 5000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(a);
  router.release(b);  // rejected on 0 (0.9 + 0.5 > 1), cold-migrates to 1
  EXPECT_EQ(router.pending_transfers(), 1u);
  h.sim.run_until(common::from_ms(60.0));
  EXPECT_EQ(router.cross_gpu_migrations(), 1u);
  EXPECT_EQ(h.collector.summary(Priority::kLow).completed, 2u);
  // The transferred job's deadline did not move with the delivery: it
  // missed, and its response time includes the copy.
  EXPECT_GE(h.collector.summary(Priority::kLow).missed, 1u);
}

TEST(Router, InFlightTransferCountsTowardBacklogGuard) {
  Harness h(2, /*num_contexts=*/1, /*transfer_us_per_mb=*/100.0);
  const int a = h.add_task(Priority::kLow, 9000.0, 0);
  const int b = h.add_task(Priority::kLow, 9000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(a);
  router.release(b);  // cold-migrating; registered in no scheduler yet
  EXPECT_EQ(router.pending_transfers(), 1u);
  // A second release of the same LP task must be shed by the fleet backlog
  // guard even though no scheduler holds the first job yet — not start a
  // second transfer.
  router.release(b);
  EXPECT_EQ(router.drops(), 1u);
  EXPECT_EQ(router.transfers(), 1u);
  EXPECT_EQ(router.pending_transfers(), 1u);
}

TEST(Router, MigrationToHotPeerIsImmediate) {
  Harness h(2, /*num_contexts=*/1, /*transfer_us_per_mb=*/100.0);
  // An (unreleased) task homed on GPU 1 pins the shared model hot there.
  h.add_task(Priority::kLow, 100.0, /*home_gpu=*/1);
  const int a = h.add_task(Priority::kLow, 9000.0, 0);
  const int b = h.add_task(Priority::kLow, 9000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(a);
  router.release(b);
  // Weights already hot on the peer: no transfer, the migration lands now.
  EXPECT_EQ(router.transfers(), 0u);
  EXPECT_EQ(router.pending_transfers(), 0u);
  EXPECT_EQ(router.cross_gpu_migrations(), 1u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 1u);
}

TEST(Fleet, ModelPinningRespectsMemoryCapacity) {
  std::vector<GpuNodeSpec> nodes(2);
  nodes[0].memory_mb = 10.0;  // smaller than ResNet18's ~45 MB of weights
  nodes[1].memory_mb = 4096.0;
  Harness h(2, 1, 0.0, nodes);
  const int a = h.add_task(Priority::kLow, 500.0, /*home_gpu=*/0);
  EXPECT_FALSE(h.fleet->model_hot(0, a));
  EXPECT_DOUBLE_EQ(h.fleet->memory_used_mb(0), 0.0);
  // Pinning on the roomy device succeeds and charges the footprint once.
  EXPECT_TRUE(h.fleet->warm_model(1, a));
  EXPECT_TRUE(h.fleet->model_hot(1, a));
  EXPECT_DOUBLE_EQ(h.fleet->memory_used_mb(1), h.model->weight_mb);
  const int b = h.add_task(Priority::kLow, 500.0, /*home_gpu=*/1);
  EXPECT_TRUE(h.fleet->model_hot(1, b));  // same model, already pinned
  EXPECT_DOUBLE_EQ(h.fleet->memory_used_mb(1), h.model->weight_mb);
}

TEST(Router, MemoryInfeasibleJobIsShedByAdmissionController) {
  // No device can ever hold the model's weights: the admission controller
  // sheds the job outright instead of bouncing it through a migration.
  std::vector<GpuNodeSpec> nodes(2);
  nodes[0].memory_mb = 1.0;
  nodes[1].memory_mb = 1.0;
  Harness h(2, 1, 100.0, nodes);
  const int a = h.add_task(Priority::kLow, 500.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kLeastUtilization, 1, &h.collector);
  router.release(a);
  EXPECT_EQ(router.drops(), 1u);
  EXPECT_EQ(router.infeasible_rejects(), 1u);
  EXPECT_EQ(router.cross_gpu_migrations(), 0u);
  EXPECT_EQ(router.transfers(), 0u);
  EXPECT_EQ(h.collector.routing(0).infeasible, 1u);
  EXPECT_EQ(h.collector.summary(Priority::kLow).rejected, 1u);
  EXPECT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 0u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 0u);
}

TEST(Router, UtilizationInfeasibleLpJobShedWithoutRetries) {
  Harness h(2);
  // One job's utilisation (1.5) exceeds every idle context: Eq. 12 can
  // never pass, so the controller sheds instead of retrying on the peer.
  const int a = h.add_task(Priority::kLow, 15000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kLeastUtilization, 1, &h.collector);
  router.release(a);
  EXPECT_EQ(router.drops(), 1u);
  EXPECT_EQ(router.infeasible_rejects(), 1u);
  EXPECT_EQ(router.cross_gpu_migrations(), 0u);
}

TEST(Router, HpJobsBypassUtilizationFeasibility) {
  Harness h(2);
  // HP jobs take no admission test by default (hp_admission = false), so
  // an overweight HP job is released to its home, not shed as infeasible —
  // overload shows up as lateness, per the paper's Fig. 11 semantics.
  const int a = h.add_task(Priority::kHigh, 15000.0, /*home_gpu=*/1);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kLeastUtilization, 1, &h.collector);
  router.release(a);
  EXPECT_EQ(router.infeasible_rejects(), 0u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 1u);
}

TEST(Fleet, HeterogeneousNodesScaleGpuSpecs) {
  std::vector<GpuNodeSpec> nodes(2);
  nodes[1].compute_scale = 2.0;
  Harness h(2, 1, 0.0, nodes);
  EXPECT_EQ(h.fleet->gpu(0).spec().sm_count, 68);
  EXPECT_EQ(h.fleet->gpu(1).spec().sm_count, 136);
  EXPECT_DOUBLE_EQ(h.fleet->compute_scale(1), 2.0);
}

TEST(Router, PlacementScoreNormalisesLoadByComputeScale) {
  std::vector<GpuNodeSpec> nodes(2);
  nodes[1].compute_scale = 2.0;
  Harness h(2, 1, 0.0, nodes);
  const int a = h.add_task(Priority::kLow, 4000.0, 0);
  const int b = h.add_task(Priority::kLow, 4000.0, 1);
  const int c = h.add_task(Priority::kLow, 500.0, 0);
  h.fleet->run_offline_phase();
  // Equal admitted utilisation on both devices (AFET-seeded identically)...
  ASSERT_TRUE(h.fleet->scheduler(0).release_job(a, /*report=*/false));
  ASSERT_TRUE(h.fleet->scheduler(1).release_job(b, /*report=*/false));
  EXPECT_DOUBLE_EQ(h.fleet->load(0), h.fleet->load(1));
  // ...but the 2x device has twice the absolute headroom, so least-util
  // places the next job there instead of tying toward GPU 0.
  Router router(*h.fleet, RoutingPolicy::kLeastUtilization, 1, &h.collector);
  router.release(c);
  EXPECT_EQ(h.collector.routing(1).routed, 1u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 2u);
}

TEST(Fleet, ResidencyOnlyOnHomeGpu) {
  Harness h(2);
  const int a = h.add_task(Priority::kHigh, 3000.0, 1);
  EXPECT_FALSE(h.fleet->scheduler(0).task(a).resident());
  EXPECT_TRUE(h.fleet->scheduler(1).task(a).resident());
  // The HP reservation (Eq. 4) is charged only where the task is resident.
  h.fleet->run_offline_phase();
  double hp0 = 0.0, hp1 = 0.0;
  for (int c = 0; c < h.fleet->scheduler(0).num_contexts(); ++c) {
    hp0 += h.fleet->scheduler(0).hp_utilization(c);
    hp1 += h.fleet->scheduler(1).hp_utilization(c);
  }
  EXPECT_DOUBLE_EQ(hp0, 0.0);
  EXPECT_GT(hp1, 0.0);
}

TEST(Cluster, RunClusterIsDeterministic) {
  exp::ClusterConfig cfg;
  cfg.taskset = workload::replicated_taskset(
      workload::table2_taskset(dnn::ModelKind::kUNet), 2);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 4;
  cfg.sched.oversubscription = 4.0;
  cfg.num_gpus = 2;
  cfg.duration_s = 1.5;
  cfg.warmup_s = 0.5;
  const exp::ClusterResult a = exp::run_cluster(cfg);
  const exp::ClusterResult b = exp::run_cluster(cfg);
  EXPECT_EQ(a.total_jps, b.total_jps);
  EXPECT_EQ(a.hp.completed, b.hp.completed);
  EXPECT_EQ(a.lp.completed, b.lp.completed);
  EXPECT_EQ(a.hp.missed, b.hp.missed);
  EXPECT_EQ(a.lp.missed, b.lp.missed);
  EXPECT_EQ(a.cross_gpu_migrations, b.cross_gpu_migrations);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.intra_gpu_migrations, b.intra_gpu_migrations);
  ASSERT_EQ(a.per_gpu.size(), b.per_gpu.size());
  for (std::size_t g = 0; g < a.per_gpu.size(); ++g) {
    EXPECT_EQ(a.per_gpu[g].completed, b.per_gpu[g].completed);
    EXPECT_EQ(a.per_gpu[g].utilization, b.per_gpu[g].utilization);
  }
}

TEST(Cluster, TwoGpusScaleThroughputOnReplicatedDemand) {
  exp::ClusterConfig cfg;
  cfg.taskset = workload::table2_taskset(dnn::ModelKind::kUNet);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 4;
  cfg.sched.oversubscription = 4.0;
  cfg.num_gpus = 1;
  cfg.duration_s = 1.5;
  cfg.warmup_s = 0.5;
  const exp::ClusterResult one = exp::run_cluster(cfg);

  cfg.taskset = workload::replicated_taskset(cfg.taskset, 2);
  cfg.num_gpus = 2;
  const exp::ClusterResult two = exp::run_cluster(cfg);
  EXPECT_GT(two.total_jps, 1.6 * one.total_jps);
  EXPECT_EQ(two.hp.missed, 0u);
}

TEST(Cluster, OpenLoopArrivalsAreRecorded) {
  exp::ClusterConfig cfg;
  cfg.taskset = workload::table2_taskset(dnn::ModelKind::kUNet);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 4;
  cfg.sched.oversubscription = 4.0;
  cfg.num_gpus = 2;
  cfg.arrivals = exp::ArrivalMode::kPoisson;
  cfg.duration_s = 1.0;
  cfg.warmup_s = 0.2;
  const exp::ClusterResult r = exp::run_cluster(cfg);
  EXPECT_GT(r.arrivals, 0u);
  // ~360 JPS aggregate demand over 1s, Poisson: a loose sanity band.
  EXPECT_NEAR(static_cast<double>(r.arrivals), 360.0, 120.0);
}

TEST(Cluster, RoutingPolicyNames) {
  EXPECT_STREQ(routing_policy_name(RoutingPolicy::kRoundRobin),
               "round-robin");
  EXPECT_STREQ(routing_policy_name(RoutingPolicy::kLeastUtilization),
               "least-util");
  EXPECT_STREQ(routing_policy_name(RoutingPolicy::kPowerOfTwo),
               "power-of-two");
  EXPECT_STREQ(routing_policy_name(RoutingPolicy::kModelAffinity),
               "model-affinity");
  EXPECT_STREQ(routing_policy_name(RoutingPolicy::kHybrid), "hybrid");
}

TEST(Cluster, HeterogeneousRunClusterIsDeterministic) {
  exp::ClusterConfig cfg;
  cfg.taskset = workload::replicated_taskset(
      workload::table2_taskset(dnn::ModelKind::kUNet), 2);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 4;
  cfg.sched.oversubscription = 4.0;
  cfg.routing = RoutingPolicy::kHybrid;
  cfg.nodes.resize(2);
  cfg.nodes[0].compute_scale = 1.0;
  cfg.nodes[1].compute_scale = 0.5;
  cfg.duration_s = 1.5;
  cfg.warmup_s = 0.5;
  const exp::ClusterResult a = exp::run_cluster(cfg);
  const exp::ClusterResult b = exp::run_cluster(cfg);
  EXPECT_EQ(a.total_jps, b.total_jps);
  EXPECT_EQ(a.hp.completed, b.hp.completed);
  EXPECT_EQ(a.lp.completed, b.lp.completed);
  EXPECT_EQ(a.cross_gpu_migrations, b.cross_gpu_migrations);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.transferred_mb, b.transferred_mb);
  EXPECT_EQ(a.infeasible_rejects, b.infeasible_rejects);
  EXPECT_EQ(a.drops, b.drops);
  ASSERT_EQ(a.per_gpu.size(), 2u);
  EXPECT_GT(a.per_gpu[0].completed, 0u);
  for (std::size_t g = 0; g < a.per_gpu.size(); ++g) {
    EXPECT_EQ(a.per_gpu[g].completed, b.per_gpu[g].completed);
    EXPECT_EQ(a.per_gpu[g].utilization, b.per_gpu[g].utilization);
  }
}

TEST(Cluster, HybridServesSkewedDemandWithoutHpMisses) {
  // Small-scale version of the bench's skewed study: 2 GPUs, 75% of demand
  // on one model kind. Pure affinity piles the heavy kind onto one device;
  // hybrid balances homes by demand share and spills, keeping HP clean.
  exp::ClusterConfig cfg;
  cfg.taskset = workload::skewed_taskset(2);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 6;
  cfg.sched.oversubscription = 6.0;
  cfg.num_gpus = 2;
  cfg.routing = RoutingPolicy::kHybrid;
  cfg.duration_s = 1.5;
  cfg.warmup_s = 0.5;
  const exp::ClusterResult hybrid = exp::run_cluster(cfg);
  EXPECT_EQ(hybrid.hp.missed, 0u);
  EXPECT_GT(hybrid.total_jps, 0.0);

  cfg.routing = RoutingPolicy::kModelAffinity;
  const exp::ClusterResult affinity = exp::run_cluster(cfg);
  // The collapse, structurally: affinity offers ~90% of arrivals to the
  // device homing the heavy kind and leans on reactive migration retries to
  // bail it out; hybrid balances first offers across the fleet and barely
  // needs the retry path. At this small scale throughput degrades only
  // mildly (more drops, more LP misses) — the 8-GPU bench row shows the
  // full collapse — so the routed/migration shape is the regression signal.
  // (Hybrid still routes ~3x more *jobs* to the ResNet18 host — its homes
  // balance SM-us of work, and ResNet18 jobs are ~4x cheaper than UNet
  // jobs — so the imbalance contrast is measured in offers, not equality.)
  const auto& ar = affinity.per_gpu;
  const auto& hr = hybrid.per_gpu;
  EXPECT_GT(ar[0].routing.routed, 5 * ar[1].routing.routed);
  EXPECT_LT(hr[0].routing.routed, 4 * hr[1].routing.routed);
  EXPECT_GT(affinity.cross_gpu_migrations, 2 * hybrid.cross_gpu_migrations);
  EXPECT_GE(hybrid.total_jps, affinity.total_jps);
  EXPECT_LE(hybrid.drops, affinity.drops);
}

}  // namespace
}  // namespace daris::cluster
