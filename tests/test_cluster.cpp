// Cluster layer: routing policy selection, cross-GPU migration on admission
// failure, fleet-wide backlog shedding, and fleet determinism.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/fleet.h"
#include "cluster/router.h"
#include "experiments/cluster_runner.h"

namespace daris::cluster {
namespace {

using common::Priority;

/// Small deterministic fixture: a jitter-free fleet with single-context
/// single-stream GPUs, one ResNet18 model shared by every task.
struct Harness {
  explicit Harness(int num_gpus, int num_contexts = 1) {
    FleetConfig cfg;
    cfg.num_gpus = num_gpus;
    cfg.gpu.jitter_cv = 0.0;
    cfg.sched.policy = rt::Policy::kMps;
    cfg.sched.num_contexts = num_contexts;
    model = std::make_unique<dnn::CompiledModel>(
        dnn::compiled_model(dnn::ModelKind::kResNet18, 1, cfg.gpu));
    collector.set_gpu_count(num_gpus);
    fleet = std::make_unique<Fleet>(sim, cfg, &collector);
  }

  /// Adds a task whose AFET (and so utilisation ~ total_afet/period) is
  /// chosen directly; period 10ms.
  int add_task(Priority priority, double total_afet_us, int home_gpu) {
    rt::TaskSpec spec;
    spec.model = dnn::ModelKind::kResNet18;
    spec.period = common::from_ms(10.0);
    spec.relative_deadline = spec.period;
    spec.priority = priority;
    const int id = fleet->add_task(spec, model.get(), home_gpu);
    fleet->set_afet(
        id, std::vector<double>(
                model->stage_count(),
                total_afet_us / static_cast<double>(model->stage_count())));
    return id;
  }

  sim::Simulator sim;
  metrics::Collector collector;
  std::unique_ptr<dnn::CompiledModel> model;
  std::unique_ptr<Fleet> fleet;
};

TEST(Router, RoundRobinCyclesGpusForLpJobs) {
  Harness h(2);
  // Four light LP tasks, one release each: round-robin must alternate GPUs.
  for (int i = 0; i < 4; ++i) h.add_task(Priority::kLow, 500.0, i % 2);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kRoundRobin, 1, &h.collector);
  for (int i = 0; i < 4; ++i) router.release(i);
  EXPECT_EQ(h.collector.routing(0).routed, 2u);
  EXPECT_EQ(h.collector.routing(1).routed, 2u);
  EXPECT_EQ(h.collector.routing(0).home_admits, 2u);
  EXPECT_EQ(h.collector.routing(1).home_admits, 2u);
  EXPECT_EQ(router.drops(), 0u);
}

TEST(Router, ModelAffinityRoutesToHomeGpu) {
  Harness h(2);
  const int a = h.add_task(Priority::kLow, 500.0, /*home_gpu=*/1);
  const int b = h.add_task(Priority::kLow, 500.0, /*home_gpu=*/0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(a);
  router.release(b);
  EXPECT_EQ(h.collector.routing(1).routed, 1u);
  EXPECT_EQ(h.collector.routing(0).routed, 1u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 1u);
  EXPECT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 1u);
}

TEST(Router, HpJobsAlwaysStartAtTheirHomeGpu) {
  Harness h(2);
  const int hp = h.add_task(Priority::kHigh, 500.0, /*home_gpu=*/1);
  h.fleet->run_offline_phase();
  // Round-robin would start at GPU 0; HP placement must ignore the policy.
  Router router(*h.fleet, RoutingPolicy::kRoundRobin, 1, &h.collector);
  router.release(hp);
  EXPECT_EQ(h.collector.routing(1).routed, 1u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 1u);
  EXPECT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 0u);
}

TEST(Router, LeastUtilizationPrefersIdleGpu) {
  Harness h(2);
  const int a = h.add_task(Priority::kLow, 3000.0, 0);
  const int b = h.add_task(Priority::kLow, 3000.0, 1);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kLeastUtilization, 1, &h.collector);
  router.release(a);  // ties break to GPU 0
  EXPECT_GT(h.fleet->load(0), 0.0);
  router.release(b);  // GPU 0 now carries load, so GPU 1 must win
  EXPECT_EQ(h.collector.routing(0).routed, 1u);
  EXPECT_EQ(h.collector.routing(1).routed, 1u);
}

TEST(Router, CrossGpuMigrationOnAdmissionFailure) {
  Harness h(2);
  // Two heavy LP tasks (utilisation ~0.9 each) homed on GPU 0: the second
  // release fails Eq. 12 on every context of GPU 0 and must be offered to
  // the idle peer instead of being dropped.
  const int a = h.add_task(Priority::kLow, 9000.0, 0);
  const int b = h.add_task(Priority::kLow, 9000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(a);
  router.release(b);
  EXPECT_EQ(router.cross_gpu_migrations(), 1u);
  EXPECT_EQ(router.drops(), 0u);
  EXPECT_EQ(h.collector.routing(0).migrated_out, 1u);
  EXPECT_EQ(h.collector.routing(1).migrated_in, 1u);
  EXPECT_EQ(h.fleet->scheduler(0).jobs_in_flight(), 1u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 1u);
}

TEST(Router, DropsWhenNoPeerCanAdmit) {
  Harness h(1);  // no peer to migrate to
  const int a = h.add_task(Priority::kLow, 9000.0, 0);
  const int b = h.add_task(Priority::kLow, 9000.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kModelAffinity, 1, &h.collector);
  router.release(a);
  router.release(b);
  EXPECT_EQ(router.cross_gpu_migrations(), 0u);
  EXPECT_EQ(router.drops(), 1u);
  EXPECT_EQ(h.collector.routing(0).dropped, 1u);
  EXPECT_EQ(h.collector.summary(Priority::kLow).rejected, 1u);
}

TEST(Router, FleetWideBacklogGuardShedsLpEverywhere) {
  Harness h(2);
  // One light LP task released twice back-to-back: the second release must
  // be shed because a job is already active *somewhere* in the fleet, even
  // though the peer GPU is idle (the paper's single-GPU shedding rule).
  const int a = h.add_task(Priority::kLow, 500.0, 0);
  h.fleet->run_offline_phase();
  Router router(*h.fleet, RoutingPolicy::kLeastUtilization, 1, &h.collector);
  router.release(a);
  router.release(a);
  EXPECT_EQ(router.drops(), 1u);
  EXPECT_EQ(router.cross_gpu_migrations(), 0u);
  EXPECT_EQ(h.fleet->scheduler(1).jobs_in_flight(), 0u);
}

TEST(Fleet, ResidencyOnlyOnHomeGpu) {
  Harness h(2);
  const int a = h.add_task(Priority::kHigh, 3000.0, 1);
  EXPECT_FALSE(h.fleet->scheduler(0).task(a).resident);
  EXPECT_TRUE(h.fleet->scheduler(1).task(a).resident);
  // The HP reservation (Eq. 4) is charged only where the task is resident.
  h.fleet->run_offline_phase();
  double hp0 = 0.0, hp1 = 0.0;
  for (int c = 0; c < h.fleet->scheduler(0).num_contexts(); ++c) {
    hp0 += h.fleet->scheduler(0).hp_utilization(c);
    hp1 += h.fleet->scheduler(1).hp_utilization(c);
  }
  EXPECT_DOUBLE_EQ(hp0, 0.0);
  EXPECT_GT(hp1, 0.0);
}

TEST(Cluster, RunClusterIsDeterministic) {
  exp::ClusterConfig cfg;
  cfg.taskset = workload::replicated_taskset(
      workload::table2_taskset(dnn::ModelKind::kUNet), 2);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 4;
  cfg.sched.oversubscription = 4.0;
  cfg.num_gpus = 2;
  cfg.duration_s = 1.5;
  cfg.warmup_s = 0.5;
  const exp::ClusterResult a = exp::run_cluster(cfg);
  const exp::ClusterResult b = exp::run_cluster(cfg);
  EXPECT_EQ(a.total_jps, b.total_jps);
  EXPECT_EQ(a.hp.completed, b.hp.completed);
  EXPECT_EQ(a.lp.completed, b.lp.completed);
  EXPECT_EQ(a.hp.missed, b.hp.missed);
  EXPECT_EQ(a.lp.missed, b.lp.missed);
  EXPECT_EQ(a.cross_gpu_migrations, b.cross_gpu_migrations);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.intra_gpu_migrations, b.intra_gpu_migrations);
  ASSERT_EQ(a.per_gpu.size(), b.per_gpu.size());
  for (std::size_t g = 0; g < a.per_gpu.size(); ++g) {
    EXPECT_EQ(a.per_gpu[g].completed, b.per_gpu[g].completed);
    EXPECT_EQ(a.per_gpu[g].utilization, b.per_gpu[g].utilization);
  }
}

TEST(Cluster, TwoGpusScaleThroughputOnReplicatedDemand) {
  exp::ClusterConfig cfg;
  cfg.taskset = workload::table2_taskset(dnn::ModelKind::kUNet);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 4;
  cfg.sched.oversubscription = 4.0;
  cfg.num_gpus = 1;
  cfg.duration_s = 1.5;
  cfg.warmup_s = 0.5;
  const exp::ClusterResult one = exp::run_cluster(cfg);

  cfg.taskset = workload::replicated_taskset(cfg.taskset, 2);
  cfg.num_gpus = 2;
  const exp::ClusterResult two = exp::run_cluster(cfg);
  EXPECT_GT(two.total_jps, 1.6 * one.total_jps);
  EXPECT_EQ(two.hp.missed, 0u);
}

TEST(Cluster, OpenLoopArrivalsAreRecorded) {
  exp::ClusterConfig cfg;
  cfg.taskset = workload::table2_taskset(dnn::ModelKind::kUNet);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 4;
  cfg.sched.oversubscription = 4.0;
  cfg.num_gpus = 2;
  cfg.arrivals = exp::ArrivalMode::kPoisson;
  cfg.duration_s = 1.0;
  cfg.warmup_s = 0.2;
  const exp::ClusterResult r = exp::run_cluster(cfg);
  EXPECT_GT(r.arrivals, 0u);
  // ~360 JPS aggregate demand over 1s, Poisson: a loose sanity band.
  EXPECT_NEAR(static_cast<double>(r.arrivals), 360.0, 120.0);
}

TEST(Cluster, RoutingPolicyNames) {
  EXPECT_STREQ(routing_policy_name(RoutingPolicy::kRoundRobin),
               "round-robin");
  EXPECT_STREQ(routing_policy_name(RoutingPolicy::kLeastUtilization),
               "least-util");
  EXPECT_STREQ(routing_policy_name(RoutingPolicy::kPowerOfTwo),
               "power-of-two");
  EXPECT_STREQ(routing_policy_name(RoutingPolicy::kModelAffinity),
               "model-affinity");
}

}  // namespace
}  // namespace daris::cluster
