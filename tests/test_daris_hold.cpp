// HP stream holding across stage-sync gaps, its contested handover, and
// the LP predecessor-shedding rule.
#include <gtest/gtest.h>

#include <memory>

#include "daris/scheduler.h"
#include "dnn/calibration.h"
#include "dnn/zoo.h"
#include "gpusim/gpu.h"
#include "metrics/collector.h"
#include "sim/simulator.h"

namespace daris::rt {
namespace {

using common::from_ms;

struct Harness {
  sim::Simulator sim;
  gpusim::GpuSpec spec;
  std::unique_ptr<gpusim::Gpu> gpu;
  metrics::Collector collector;
  std::unique_ptr<Scheduler> sched;
  std::unique_ptr<dnn::CompiledModel> model;

  explicit Harness(SchedulerConfig cfg) {
    spec.jitter_cv = 0.0;
    gpu = std::make_unique<gpusim::Gpu>(sim, spec);
    model = std::make_unique<dnn::CompiledModel>(
        dnn::compiled_model(dnn::ModelKind::kResNet18, 1, spec));
    sched = std::make_unique<Scheduler>(sim, *gpu, cfg, &collector);
  }

  int add_task(Priority p, double period_ms) {
    TaskSpec t;
    t.model = dnn::ModelKind::kResNet18;
    t.period = from_ms(period_ms);
    t.relative_deadline = t.period;
    t.priority = p;
    const int id = sched->add_task(t, model.get());
    sched->set_afet(id, std::vector<double>(model->stage_count(), 500.0));
    return id;
  }
};

SchedulerConfig one_stream() {
  SchedulerConfig c;
  c.policy = Policy::kMps;
  c.num_contexts = 1;
  c.oversubscription = 1.0;
  return c;
}

TEST(StreamHold, HpNotInterposedByLpAtSyncGap) {
  // HP job running; LP job ready in the queue. With holding, the HP job's
  // stages run back to back and the LP job only starts afterwards.
  Harness h(one_stream());
  const int hp = h.add_task(Priority::kHigh, 100.0);
  const int lp = h.add_task(Priority::kLow, 100.0);
  h.sched->run_offline_phase();
  h.sched->release_job(hp);
  h.sim.schedule_after(common::from_us(100.0),
                       [&] { h.sched->release_job(lp); });
  h.sim.run();
  const double hp_resp = h.collector.summary(Priority::kHigh).response_ms.max();
  // HP response ~ its own exec + syncs, with no LP stage in between.
  const double alone_ms =
      dnn::analytic_sequential_latency_us(*h.model, h.spec) / 1e3 +
      3.0 * h.spec.sync_overhead_us / 1e3;
  EXPECT_NEAR(hp_resp, alone_ms, 0.15);
}

TEST(StreamHold, DisabledHoldLetsLpInterpose) {
  SchedulerConfig cfg = one_stream();
  cfg.hp_stream_hold = false;
  Harness h(cfg);
  const int hp = h.add_task(Priority::kHigh, 100.0);
  const int lp = h.add_task(Priority::kLow, 100.0);
  h.sched->run_offline_phase();
  h.sched->release_job(hp);
  h.sim.schedule_after(common::from_us(100.0),
                       [&] { h.sched->release_job(lp); });
  h.sim.run();
  const double hp_resp = h.collector.summary(Priority::kHigh).response_ms.max();
  const double alone_ms =
      dnn::analytic_sequential_latency_us(*h.model, h.spec) / 1e3 +
      3.0 * h.spec.sync_overhead_us / 1e3;
  // At least one LP stage interposes at a sync gap: visibly slower.
  EXPECT_GT(hp_resp, alone_ms + 0.2);
}

TEST(StreamHold, LastStageBoostPreemptsHeldStream) {
  // Job A (HP) holds the stream mid-job. Job B (HP) has only its *last*
  // stage pending with an earlier deadline-class level: the contested hold
  // must hand the stream to B's boosted last stage.
  Harness h(one_stream());
  const int a = h.add_task(Priority::kHigh, 100.0);
  const int b = h.add_task(Priority::kHigh, 50.0);
  h.sched->run_offline_phase();
  h.sched->release_job(a);
  h.sched->release_job(b);
  h.sim.run();
  // Both complete; with the boost, B (later release, earlier deadline and
  // eventually a boosted last stage) does not wait for all of A.
  const auto& hp = h.collector.summary(Priority::kHigh);
  EXPECT_EQ(hp.completed, 2u);
  // The interleaving property itself: the later finisher's response stays
  // within the two serialised executions plus both jobs' sync overheads.
  const double serial_ms =
      2.0 * (dnn::analytic_sequential_latency_us(*h.model, h.spec) / 1e3) +
      6.0 * h.spec.sync_overhead_us / 1e3;
  EXPECT_LT(hp.response_ms.max(), serial_ms + 0.3);
}

TEST(Backlog, LpShedsWhenPredecessorActive) {
  Harness h(one_stream());
  const int lp = h.add_task(Priority::kLow, 100.0);
  h.sched->run_offline_phase();
  h.sched->release_job(lp);
  h.sched->release_job(lp);  // predecessor still running -> shed
  h.sim.run();
  const auto& s = h.collector.summary(Priority::kLow);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.rejected, 1u);
}

TEST(Backlog, HpToleratesConfiguredBacklog) {
  SchedulerConfig cfg = one_stream();
  cfg.max_backlog_per_task = 2;
  Harness h(cfg);
  const int hp = h.add_task(Priority::kHigh, 100.0);
  h.sched->run_offline_phase();
  h.sched->release_job(hp);
  h.sched->release_job(hp);  // queues (backlog 2)
  h.sched->release_job(hp);  // shed
  h.sim.run();
  const auto& s = h.collector.summary(Priority::kHigh);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.rejected, 1u);
}

}  // namespace
}  // namespace daris::rt
