// Eq. 9 partitioning: NSM = ceil_even(OS * NSM,max / Nc).
#include <gtest/gtest.h>

#include "gpusim/partition.h"

namespace daris::gpusim {
namespace {

TEST(Partition, CeilEven) {
  EXPECT_EQ(ceil_even(1.0), 2);
  EXPECT_EQ(ceil_even(2.0), 2);
  EXPECT_EQ(ceil_even(2.1), 4);
  EXPECT_EQ(ceil_even(11.33), 12);
  EXPECT_EQ(ceil_even(12.0), 12);
  EXPECT_EQ(ceil_even(0.5), 2);
  EXPECT_EQ(ceil_even(68.0), 68);
}

TEST(Partition, PaperConfigurations) {
  const GpuSpec spec;  // 68 SMs
  // OS = 1, Nc = 6: ceil_even(68/6) = ceil_even(11.33) = 12.
  EXPECT_EQ(sm_quota_per_context(spec, 6, 1.0), 12);
  // OS = 2, Nc = 6: ceil_even(136/6) = ceil_even(22.67) = 24.
  EXPECT_EQ(sm_quota_per_context(spec, 6, 2.0), 24);
  // OS = Nc: full sharing.
  EXPECT_EQ(sm_quota_per_context(spec, 6, 6.0), 68);
  // OS = 1.5, Nc = 6: ceil_even(17) = 18.
  EXPECT_EQ(sm_quota_per_context(spec, 6, 1.5), 18);
  // Nc = 8, OS = 1: ceil_even(8.5) = 10.
  EXPECT_EQ(sm_quota_per_context(spec, 8, 1.0), 10);
}

TEST(Partition, SingleContextOwnsDevice) {
  const GpuSpec spec;
  EXPECT_EQ(sm_quota_per_context(spec, 1, 1.0), 68);
}

TEST(Partition, OversubscriptionClampedToValidRange) {
  const GpuSpec spec;
  // OS below 1 behaves as 1; OS above Nc behaves as Nc.
  EXPECT_EQ(sm_quota_per_context(spec, 4, 0.1),
            sm_quota_per_context(spec, 4, 1.0));
  EXPECT_EQ(sm_quota_per_context(spec, 4, 100.0),
            sm_quota_per_context(spec, 4, 4.0));
}

TEST(Partition, QuotaNeverExceedsDevice) {
  const GpuSpec spec;
  for (int nc = 1; nc <= 12; ++nc) {
    for (double os : {1.0, 1.5, 2.0, static_cast<double>(nc)}) {
      EXPECT_LE(sm_quota_per_context(spec, nc, os), spec.sm_count)
          << "Nc=" << nc << " OS=" << os;
    }
  }
}

TEST(Partition, QuotasVectorUniform) {
  const GpuSpec spec;
  const auto quotas = partition_quotas(spec, 6, 2.0);
  ASSERT_EQ(quotas.size(), 6u);
  for (int q : quotas) EXPECT_EQ(q, 24);
}

/// Property sweep: quotas are even, positive, monotone in OS.
class PartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(PartitionProperty, EvenPositiveMonotone) {
  const GpuSpec spec;
  const int nc = GetParam();
  int prev = 0;
  for (double os = 1.0; os <= nc + 0.01; os += 0.25) {
    const int q = sm_quota_per_context(spec, nc, os);
    EXPECT_GT(q, 0);
    EXPECT_TRUE(q % 2 == 0 || q == spec.sm_count);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

INSTANTIATE_TEST_SUITE_P(Contexts, PartitionProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10));

}  // namespace
}  // namespace daris::gpusim
