#include <gtest/gtest.h>

#include "common/time.h"
#include "metrics/collector.h"

namespace daris::metrics {
namespace {

using common::from_ms;
using common::from_sec;
using common::Priority;

JobEvent finished_job(Priority p, double release_ms, double finish_ms,
                      double deadline_ms) {
  JobEvent ev;
  ev.priority = p;
  ev.release = from_ms(release_ms);
  ev.finish = from_ms(finish_ms);
  ev.relative_deadline = from_ms(deadline_ms);
  ev.missed = ev.finish > ev.release + ev.relative_deadline;
  return ev;
}

TEST(Collector, CountsPerPriorityClass) {
  Collector c;
  c.on_release(finished_job(Priority::kHigh, 0, 0, 10));
  c.on_release(finished_job(Priority::kLow, 0, 0, 10));
  c.on_release(finished_job(Priority::kLow, 0, 0, 10));
  EXPECT_EQ(c.summary(Priority::kHigh).released, 1u);
  EXPECT_EQ(c.summary(Priority::kLow).released, 2u);
}

TEST(Collector, DmrMissedOverCompleted) {
  Collector c;
  c.on_finish(finished_job(Priority::kLow, 0, 5, 10));    // hit
  c.on_finish(finished_job(Priority::kLow, 0, 15, 10));   // miss
  c.on_finish(finished_job(Priority::kLow, 0, 8, 10));    // hit
  c.on_finish(finished_job(Priority::kLow, 0, 20, 10));   // miss
  EXPECT_DOUBLE_EQ(c.summary(Priority::kLow).dmr(), 0.5);
  EXPECT_DOUBLE_EQ(c.summary(Priority::kHigh).dmr(), 0.0);
}

TEST(Collector, WarmupJobsExcludedFromWindow) {
  Collector c;
  c.set_measure_start(from_ms(100.0));
  c.on_finish(finished_job(Priority::kHigh, 0, 50, 10));   // warm-up miss
  c.on_finish(finished_job(Priority::kHigh, 100, 105, 10));  // counted hit
  const auto& s = c.summary(Priority::kHigh);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.missed, 0u);
  EXPECT_EQ(s.response_ms.count(), 1u);
}

TEST(Collector, ResponseTimesInMilliseconds) {
  Collector c;
  c.on_finish(finished_job(Priority::kHigh, 10, 14, 100));
  c.on_finish(finished_job(Priority::kHigh, 20, 32, 100));
  const auto& r = c.summary(Priority::kHigh).response_ms;
  EXPECT_DOUBLE_EQ(r.min(), 4.0);
  EXPECT_DOUBLE_EQ(r.max(), 12.0);
}

TEST(Collector, RejectionRate) {
  Collector c;
  for (int i = 0; i < 4; ++i) c.on_release(finished_job(Priority::kLow, 0, 0, 1));
  c.on_reject(finished_job(Priority::kLow, 0, 0, 1));
  EXPECT_DOUBLE_EQ(c.summary(Priority::kLow).rejection_rate(), 0.25);
}

TEST(Collector, ThroughputOverMeasureWindow) {
  Collector c;
  c.set_measure_start(from_sec(1.0));
  for (int i = 0; i < 30; ++i) {
    c.on_finish(finished_job(Priority::kLow, 1000 + i, 1100 + i, 1000));
  }
  // 30 jobs over [1s, 4s] = 10 JPS.
  EXPECT_NEAR(c.throughput_jps(from_sec(4.0)), 10.0, 1e-9);
  EXPECT_EQ(c.total_completed(), 30u);
}

TEST(Collector, ThroughputZeroOnEmptyWindow) {
  Collector c;
  c.set_measure_start(from_sec(2.0));
  EXPECT_EQ(c.throughput_jps(from_sec(1.0)), 0.0);
}

TEST(Collector, StageTraceGating) {
  Collector c;
  StageEvent ev;
  ev.execution_us = 5.0;
  c.on_stage(ev);
  EXPECT_TRUE(c.stage_trace().empty());  // disabled by default
  c.enable_stage_trace(true);
  c.on_stage(ev);
  ASSERT_EQ(c.stage_trace().size(), 1u);
  EXPECT_EQ(c.stage_trace()[0].execution_us, 5.0);
}

TEST(ClassSummary, EmptyIsZero) {
  ClassSummary s;
  EXPECT_EQ(s.dmr(), 0.0);
  EXPECT_EQ(s.rejection_rate(), 0.0);
}

}  // namespace
}  // namespace daris::metrics
