// Property-based tests of GPU-model invariants under randomized loads.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "gpusim/gpu.h"
#include "gpusim/partition.h"
#include "sim/simulator.h"

namespace daris::gpusim {
namespace {

using common::to_us;

GpuSpec ideal_spec() {
  GpuSpec s;
  s.jitter_cv = 0.0;
  s.quant_smoothing = 1.0;
  s.alpha_intra = 0.0;
  s.kappa_oversub = 0.0;
  s.quota_penalty_a = 0.0;
  s.launch_overhead_us = 0.0;
  s.mem_bandwidth = 1e9;
  return s;
}

struct RandomLoad {
  int contexts;
  int streams_per_ctx;
  int kernels_per_stream;
  std::uint64_t seed;
};

class GpuRandomLoad : public ::testing::TestWithParam<RandomLoad> {};

/// Work conservation: in the penalty-free fluid model with wide kernels,
/// the makespan never beats total-work / SMs and never exceeds it by more
/// than the per-stream serial bound.
TEST_P(GpuRandomLoad, WorkConservationBounds) {
  const RandomLoad load = GetParam();
  common::Rng rng(load.seed);
  sim::Simulator sim;
  Gpu gpu(sim, ideal_spec());
  double total_work = 0.0;
  double max_stream_work = 0.0;
  for (int c = 0; c < load.contexts; ++c) {
    const auto ctx = gpu.create_context(68.0);
    for (int s = 0; s < load.streams_per_ctx; ++s) {
      const auto stream = gpu.create_stream(ctx);
      double stream_work = 0.0;
      for (int k = 0; k < load.kernels_per_stream; ++k) {
        KernelDesc kd;
        kd.work = rng.uniform(10.0, 500.0);
        kd.parallelism = 1000.0;  // wide: no width effects
        gpu.launch_kernel(stream, kd);
        total_work += kd.work;
        stream_work += kd.work;
      }
      max_stream_work = std::max(max_stream_work, stream_work);
    }
  }
  sim.run();
  const double makespan = to_us(sim.now());
  const double lower = total_work / 68.0;
  EXPECT_GE(makespan, lower * 0.999);
  // Upper bound: everything serialised through the slowest stream at the
  // fair share it would get under full contention, plus the rest at full
  // device rate.
  EXPECT_LE(makespan, lower + max_stream_work / 68.0 + 1.0);
  EXPECT_EQ(gpu.kernels_completed(),
            static_cast<std::uint64_t>(load.contexts * load.streams_per_ctx *
                                       load.kernels_per_stream));
}

/// Utilization never exceeds 1 and matches busy integral for closed loads.
TEST_P(GpuRandomLoad, UtilizationBounded) {
  const RandomLoad load = GetParam();
  common::Rng rng(load.seed ^ 0xABCDEF);
  sim::Simulator sim;
  GpuSpec spec;  // full default model, penalties and jitter included
  spec.jitter_cv = 0.05;
  Gpu gpu(sim, spec, load.seed);
  for (int c = 0; c < load.contexts; ++c) {
    const auto ctx = gpu.create_context(
        partition_quotas(spec, load.contexts, load.contexts)[0]);
    for (int s = 0; s < load.streams_per_ctx; ++s) {
      const auto stream = gpu.create_stream(ctx);
      for (int k = 0; k < load.kernels_per_stream; ++k) {
        KernelDesc kd;
        kd.work = rng.uniform(5.0, 200.0);
        kd.parallelism = rng.uniform(1.0, 200.0);
        kd.mem_intensity = rng.uniform(0.0, 1.5);
        gpu.launch_kernel(stream, kd);
      }
    }
  }
  sim.run();
  const double util = gpu.utilization(sim.now());
  EXPECT_GT(util, 0.0);
  EXPECT_LE(util, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Loads, GpuRandomLoad,
    ::testing::Values(RandomLoad{1, 1, 50, 1}, RandomLoad{1, 6, 20, 2},
                      RandomLoad{4, 1, 30, 3}, RandomLoad{6, 1, 20, 4},
                      RandomLoad{3, 3, 15, 5}, RandomLoad{10, 1, 10, 6},
                      RandomLoad{2, 5, 12, 7}));

/// Determinism: the full default model is bit-reproducible from the seed
/// under heavy random load.
TEST(GpuDeterminism, IdenticalRunsIdenticalTimelines) {
  auto run = [](std::uint64_t seed) {
    common::Rng rng(99);
    sim::Simulator sim;
    Gpu gpu(sim, GpuSpec{}, seed);
    const auto c1 = gpu.create_context(24.0);
    const auto c2 = gpu.create_context(24.0);
    std::vector<common::Time> finishes;
    for (int s = 0; s < 4; ++s) {
      const auto stream = gpu.create_stream(s % 2 ? c1 : c2);
      for (int k = 0; k < 25; ++k) {
        KernelDesc kd;
        kd.work = rng.uniform(5.0, 300.0);
        kd.parallelism = rng.uniform(1.0, 150.0);
        kd.mem_intensity = rng.uniform(0.0, 1.2);
        gpu.launch_kernel(stream, kd);
      }
      gpu.enqueue_callback(stream,
                           [&finishes, &sim] { finishes.push_back(sim.now()); });
    }
    sim.run();
    return finishes;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

/// Conservation under quota changes: shrinking a quota mid-run slows but
/// never deadlocks; all kernels still complete.
TEST(GpuDynamics, QuotaShrinkDoesNotDeadlock) {
  sim::Simulator sim;
  Gpu gpu(sim, ideal_spec());
  const auto ctx = gpu.create_context(68.0);
  const auto s = gpu.create_stream(ctx);
  for (int i = 0; i < 10; ++i) {
    KernelDesc k;
    k.work = 100.0;
    k.parallelism = 100.0;
    gpu.launch_kernel(s, k);
  }
  sim.schedule_at(common::from_us(5.0), [&] { gpu.set_context_quota(ctx, 4.0); });
  sim.schedule_at(common::from_us(50.0),
                  [&] { gpu.set_context_quota(ctx, 68.0); });
  sim.run();
  EXPECT_EQ(gpu.kernels_completed(), 10u);
}

}  // namespace
}  // namespace daris::gpusim
