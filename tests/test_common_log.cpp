// Leveled logger: threshold round-trip and the macro's short-circuit — a
// discarded DARIS_LOG_* statement must not evaluate its stream operands
// (the fleet logs on hot fault/rehome paths; filtering has to be free).
#include <gtest/gtest.h>

#include "common/log.h"

namespace daris::common {
namespace {

/// Restores the global threshold on scope exit so tests stay independent
/// (and the suite leaves the default in place for later suites).
class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

int touch(int& calls) {
  ++calls;
  return calls;
}

TEST(CommonLog, SetLogLevelRoundTrips) {
  LogLevelGuard guard;
  for (const LogLevel level :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(CommonLog, DefaultThresholdDiscardsTrace) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);  // the documented default
  int calls = 0;
  DARIS_LOG_TRACE << "discarded " << touch(calls);
  DARIS_LOG_DEBUG << "discarded " << touch(calls);
  DARIS_LOG_INFO << "discarded " << touch(calls);
  EXPECT_EQ(calls, 0) << "operands of a filtered log line must not run";
}

TEST(CommonLog, TraceThresholdEvaluatesEveryLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kTrace);
  int calls = 0;
  DARIS_LOG_TRACE << "emitted " << touch(calls);
  DARIS_LOG_DEBUG << "emitted " << touch(calls);
  EXPECT_EQ(calls, 2);
}

TEST(CommonLog, OffDiscardsEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  int calls = 0;
  DARIS_LOG_ERROR << "discarded " << touch(calls);
  EXPECT_EQ(calls, 0);
}

TEST(CommonLog, MacroBindsAsOneStatement) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  int calls = 0;
  // The macro must compose with an if/else without dangling: the else here
  // belongs to the outer if, not the macro's internal one.
  if (calls == 0)
    DARIS_LOG_TRACE << touch(calls);
  else
    touch(calls);
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace daris::common
