#include <gtest/gtest.h>

#include "metrics/trace_export.h"

namespace daris::metrics {
namespace {

using common::from_ms;

TEST(TraceExport, EmptyIsValidJsonArray) {
  EXPECT_EQ(to_chrome_trace_json({}), "[\n]\n");
}

TEST(TraceExport, SpanFieldsSerialised) {
  TraceSpan s;
  s.name = "task1.stage0";
  s.group = 2;
  s.lane = 1;
  s.begin = from_ms(1.0);
  s.duration = from_ms(0.5);
  s.priority = common::Priority::kLow;
  s.missed = true;
  const std::string json = to_chrome_trace_json({s});
  EXPECT_NE(json.find("\"name\": \"task1.stage0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 500"), std::string::npos);
  EXPECT_NE(json.find("\"priority\": \"LP\""), std::string::npos);
  EXPECT_NE(json.find("\"missed\": true"), std::string::npos);
}

TEST(TraceExport, EscapesQuotesInNames) {
  TraceSpan s;
  s.name = "we\"ird\\name";
  const std::string json = to_chrome_trace_json({s});
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(TraceRecorder, BuildsJobSpans) {
  JobEvent j;
  j.task_id = 3;
  j.priority = common::Priority::kHigh;
  j.release = from_ms(10.0);
  j.finish = from_ms(14.0);
  j.context = 1;
  j.missed = false;
  TraceRecorder rec;
  rec.add_job_events({j});
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.spans()[0].name, "job task3");
  EXPECT_EQ(rec.spans()[0].group, 1);
  EXPECT_EQ(rec.spans()[0].duration, from_ms(4.0));
}

TEST(TraceRecorder, BuildsStageSpansBackdatedByExecution) {
  StageEvent s;
  s.task_id = 2;
  s.stage = 1;
  s.when = from_ms(5.0);
  s.execution_us = 1000.0;
  TraceRecorder rec;
  rec.add_stage_events({s});
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.spans()[0].name, "task2.stage1");
  EXPECT_EQ(rec.spans()[0].begin, from_ms(4.0));
  EXPECT_EQ(rec.spans()[0].duration, from_ms(1.0));
}

TEST(TraceRecorder, MultipleSpansCommaSeparated) {
  TraceRecorder rec;
  rec.add(TraceSpan{});
  rec.add(TraceSpan{});
  const std::string json = to_chrome_trace_json(rec.spans());
  // Two objects, one comma between them.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"ph\"", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

TEST(CollectorJobTrace, GatedByFlag) {
  Collector c;
  JobEvent ev;
  ev.priority = common::Priority::kHigh;
  c.on_finish(ev);
  EXPECT_TRUE(c.job_trace().empty());
  c.enable_job_trace(true);
  c.on_finish(ev);
  EXPECT_EQ(c.job_trace().size(), 1u);
}

}  // namespace
}  // namespace daris::metrics
