#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "metrics/eventlog.h"
#include "metrics/timeseries.h"
#include "metrics/trace_export.h"
#include "metrics/trace_report.h"

namespace daris::metrics {
namespace {

using common::from_ms;

TEST(TraceExport, EmptyIsValidJsonArray) {
  EXPECT_EQ(to_chrome_trace_json({}), "[\n]\n");
}

TEST(TraceExport, SpanFieldsSerialised) {
  TraceSpan s;
  s.name = "task1.stage0";
  s.group = 2;
  s.lane = 1;
  s.begin = from_ms(1.0);
  s.duration = from_ms(0.5);
  s.priority = common::Priority::kLow;
  s.missed = true;
  const std::string json = to_chrome_trace_json({s});
  EXPECT_NE(json.find("\"name\": \"task1.stage0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 500"), std::string::npos);
  EXPECT_NE(json.find("\"priority\": \"LP\""), std::string::npos);
  EXPECT_NE(json.find("\"missed\": true"), std::string::npos);
}

TEST(TraceExport, EscapesQuotesInNames) {
  TraceSpan s;
  s.name = "we\"ird\\name";
  const std::string json = to_chrome_trace_json({s});
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(TraceExport, EscapesControlCharacters) {
  TraceSpan s;
  s.name = std::string("line\nbreak\ttab\x01raw", 18);
  const std::string json = to_chrome_trace_json({s});
  EXPECT_NE(json.find("line\\u000abreak\\u0009tab\\u0001raw"),
            std::string::npos);
  EXPECT_EQ(json.find("line\nbreak"), std::string::npos)
      << "no raw control characters may survive inside the name string";
}

TEST(TraceExport, NullSectionsMatchSpanOnlyOverload) {
  TraceSpan s;
  s.name = "task0.stage0";
  s.begin = from_ms(1.0);
  s.duration = from_ms(2.0);
  const std::vector<TraceSpan> spans = {s};
  EXPECT_EQ(to_chrome_trace_json(spans),
            to_chrome_trace_json(spans, nullptr, nullptr));
}

TEST(TraceExport, UnifiedGoldenOutput) {
  TraceSpan s;
  s.name = "a";
  TimeSeries series;
  series.add_track("gpu/util", 0, [] { return 1.5; });
  series.sample_now(common::from_us(5.0));
  EventLog log;
  log.append(common::from_us(7.0), EventKind::kFault, EventCause::kFailStop,
             /*gpu=*/1, /*peer=*/-1, /*task=*/-1, /*value=*/2.0);
  const std::string json = to_chrome_trace_json({s}, &series, &log);
  EXPECT_EQ(json,
            "[\n"
            "  {\"name\": \"a\", \"ph\": \"X\", \"pid\": 0, \"tid\": 0,"
            " \"ts\": 0, \"dur\": 0,"
            " \"args\": {\"priority\": \"HP\", \"missed\": false}},\n"
            "  {\"name\": \"gpu/util\", \"ph\": \"C\", \"pid\": 0,"
            " \"ts\": 5, \"args\": {\"value\": 1.5}},\n"
            "  {\"name\": \"fault:fail-stop\", \"ph\": \"i\", \"s\": \"p\","
            " \"pid\": 1, \"tid\": -1, \"ts\": 7,"
            " \"args\": {\"peer\": -1, \"value\": 2}}\n"
            "]\n");
}

TEST(TraceExport, RoutingInstantsMarkOwnLaneOnly) {
  // Device-lifecycle instants (fault/drain/rehome) draw process-wide marker
  // lines (scope "p"); routing records stay on their own thread row ("t").
  EventLog log;
  log.append(0, EventKind::kAdmit, EventCause::kHomeAdmit, 0, -1, 3);
  log.append(0, EventKind::kDrain, EventCause::kScaleDown, 1);
  const std::string json = to_chrome_trace_json({}, nullptr, &log);
  EXPECT_NE(json.find("\"name\": \"admit:home-admit\", \"ph\": \"i\","
                      " \"s\": \"t\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"drain:scale-down\", \"ph\": \"i\","
                      " \"s\": \"p\""),
            std::string::npos);
}

TEST(TraceExport, OrderingIsStable) {
  // Spans first, then counter samples grouped by track in registration
  // order, then instants in append order — and the whole export is a pure
  // function of its inputs (two calls are byte-identical).
  TraceSpan s;
  s.name = "span";
  TimeSeries series;
  series.add_track("first", 0, [] { return 1.0; });
  series.add_track("second", 1, [] { return 2.0; });
  series.sample_now(0);
  series.sample_now(common::from_us(10.0));
  EventLog log;
  log.append(common::from_us(3.0), EventKind::kReject, EventCause::kBacklog,
             0, -1, 7);
  const std::string json = to_chrome_trace_json({s}, &series, &log);
  EXPECT_EQ(json, to_chrome_trace_json({s}, &series, &log));
  const std::size_t span_pos = json.find("\"span\"");
  const std::size_t first_pos = json.find("\"first\"");
  const std::size_t second_pos = json.find("\"second\"");
  const std::size_t instant_pos = json.find("\"reject:backlog\"");
  ASSERT_NE(span_pos, std::string::npos);
  ASSERT_NE(first_pos, std::string::npos);
  ASSERT_NE(second_pos, std::string::npos);
  ASSERT_NE(instant_pos, std::string::npos);
  EXPECT_LT(span_pos, first_pos);
  EXPECT_LT(json.rfind("\"first\""), second_pos)
      << "all of track 0's samples precede track 1's";
  EXPECT_LT(second_pos, instant_pos);
}

// Minimal recursive-descent JSON syntax checker: enough grammar to certify
// the export parses (objects, arrays, strings with escapes, numbers,
// true/false/null). Returns false on any syntax error or trailing garbage.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') return ++pos_, true;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(TraceExport, UnifiedExportParsesAsJson) {
  TraceSpan hostile;
  hostile.name = "we\"ird\\na\nme\x02";
  hostile.group = -1;
  hostile.lane = 3;
  hostile.begin = from_ms(0.25);
  hostile.duration = from_ms(1.75);
  hostile.missed = true;
  TimeSeries series;
  series.add_track("gpu/util", 0, [] { return 0.125; });
  series.add_track("fleet/backlog", -1, [] { return 42.0; });
  for (int i = 0; i < 5; ++i) {
    series.sample_now(common::from_us(100.0 * i));
  }
  EventLog log;
  log.append(common::from_us(50.0), EventKind::kMigrate, EventCause::kSpill,
             0, 1, 9);
  log.append(common::from_us(60.0), EventKind::kTransfer,
             EventCause::kColdModel, 1, -1, 9, 44.5);
  log.append(common::from_us(70.0), EventKind::kFault, EventCause::kStraggler,
             2, -1, -1, 0.5);
  const std::string json = to_chrome_trace_json({hostile}, &series, &log);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // And the sanity check that the checker rejects broken input.
  EXPECT_FALSE(JsonChecker("[{\"a\": }]").valid());
  EXPECT_FALSE(JsonChecker("[1, 2").valid());
  EXPECT_FALSE(JsonChecker(std::string("[\"a\nb\"]")).valid());
}

TEST(TraceRecorder, BuildsJobSpans) {
  JobEvent j;
  j.task_id = 3;
  j.priority = common::Priority::kHigh;
  j.release = from_ms(10.0);
  j.finish = from_ms(14.0);
  j.context = 1;
  j.missed = false;
  TraceRecorder rec;
  rec.add_job_events({j});
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.spans()[0].name, "job task3");
  EXPECT_EQ(rec.spans()[0].group, 1);
  EXPECT_EQ(rec.spans()[0].duration, from_ms(4.0));
}

TEST(TraceRecorder, BuildsStageSpansBackdatedByExecution) {
  StageEvent s;
  s.task_id = 2;
  s.stage = 1;
  s.when = from_ms(5.0);
  s.execution_us = 1000.0;
  TraceRecorder rec;
  rec.add_stage_events({s});
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.spans()[0].name, "task2.stage1");
  EXPECT_EQ(rec.spans()[0].begin, from_ms(4.0));
  EXPECT_EQ(rec.spans()[0].duration, from_ms(1.0));
}

TEST(TraceRecorder, MultipleSpansCommaSeparated) {
  TraceRecorder rec;
  rec.add(TraceSpan{});
  rec.add(TraceSpan{});
  const std::string json = to_chrome_trace_json(rec.spans());
  // Two objects, one comma between them.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"ph\"", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

StageEvent stage_ev(int task, std::size_t stage, double exec_us,
                    double mret_us, int context, int gpu) {
  StageEvent s;
  s.task_id = task;
  s.stage = stage;
  s.execution_us = exec_us;
  s.mret_us = mret_us;
  s.context = context;
  s.gpu = gpu;
  return s;
}

TEST(TraceReport, EmptyStream) {
  const TraceReport r = trace_report({});
  EXPECT_EQ(r.stages, 0u);
  EXPECT_EQ(r.tasks, 0u);
  EXPECT_EQ(r.gpu_migrations, 0u);
  EXPECT_EQ(r.worst_stall_task, -1);
  EXPECT_FALSE(r.to_string().empty());
}

TEST(TraceReport, CountsMigrationsFromConsecutiveStages) {
  // Task 0 moves context (same GPU) then moves GPU; task 1 never moves.
  const std::vector<StageEvent> stream = {
      stage_ev(0, 0, 100, 100, /*context=*/0, /*gpu=*/0),
      stage_ev(1, 0, 100, 100, 2, 0),
      stage_ev(0, 1, 100, 100, 1, 0),  // context switch
      stage_ev(0, 2, 100, 100, 1, 1),  // GPU migration
      stage_ev(1, 1, 100, 100, 2, 0),
  };
  const TraceReport r = trace_report(stream);
  EXPECT_EQ(r.stages, 5u);
  EXPECT_EQ(r.tasks, 2u);
  EXPECT_EQ(r.context_switches, 1u);
  EXPECT_EQ(r.gpu_migrations, 1u);
}

TEST(TraceReport, StarvationAndWorstStall) {
  const std::vector<StageEvent> stream = {
      stage_ev(0, 0, 150, 100, 0, 0),   // stalled 50us but not starved
      stage_ev(3, 1, 900, 300, 0, 0),   // starved (3x) and worst stall
      stage_ev(3, 2, 400, 250, 0, 0),   // below the 2x default factor
  };
  const TraceReport r = trace_report(stream);
  EXPECT_EQ(r.starved_stages, 1u);
  EXPECT_DOUBLE_EQ(r.worst_stall_us, 600.0);
  EXPECT_EQ(r.worst_stall_task, 3);
  EXPECT_EQ(r.worst_stall_stage, 1u);
  ASSERT_EQ(r.worst_stall_per_task_us.size(), 4u);
  EXPECT_DOUBLE_EQ(r.worst_stall_per_task_us[0], 50.0);
  EXPECT_DOUBLE_EQ(r.worst_stall_per_task_us[3], 600.0);
  EXPECT_NE(r.to_string().find("worst stall"), std::string::npos);
}

TEST(TraceReport, StarvationFactorConfigurable) {
  const std::vector<StageEvent> stream = {
      stage_ev(0, 0, 150, 100, 0, 0),
  };
  EXPECT_EQ(trace_report(stream, 1.4).starved_stages, 1u);
  EXPECT_EQ(trace_report(stream, 2.0).starved_stages, 0u);
}

TEST(CollectorRouting, PerGpuAndFleetCounters) {
  Collector c;
  c.set_gpu_count(2);
  c.on_route(0);
  c.on_route(0);
  c.on_route(1);
  c.on_home_admit(0);
  c.on_cross_migration(/*from=*/0, /*to=*/1);
  c.on_drop(1);
  c.on_infeasible(0);
  c.on_transfer(/*to_gpu=*/1, /*mb=*/44.5);
  c.on_transfer(/*to_gpu=*/1, /*mb=*/0.5);
  EXPECT_EQ(c.routing(0).routed, 2u);
  EXPECT_EQ(c.routing(0).home_admits, 1u);
  EXPECT_EQ(c.routing(0).migrated_out, 1u);
  EXPECT_EQ(c.routing(0).infeasible, 1u);
  EXPECT_EQ(c.routing(1).migrated_in, 1u);
  EXPECT_EQ(c.routing(1).dropped, 1u);
  EXPECT_EQ(c.routing(1).transfers_in, 2u);
  EXPECT_DOUBLE_EQ(c.routing(1).transferred_mb, 45.0);
  const RoutingCounters fleet = c.fleet_routing();
  EXPECT_EQ(fleet.routed, 3u);
  EXPECT_EQ(fleet.migrated_in, 1u);
  EXPECT_EQ(fleet.migrated_out, 1u);
  EXPECT_EQ(fleet.dropped, 1u);
  EXPECT_EQ(fleet.infeasible, 1u);
  EXPECT_EQ(fleet.transfers_in, 2u);
  EXPECT_DOUBLE_EQ(fleet.transferred_mb, 45.0);
}

TEST(CollectorJobTrace, GatedByFlag) {
  Collector c;
  JobEvent ev;
  ev.priority = common::Priority::kHigh;
  c.on_finish(ev);
  EXPECT_TRUE(c.job_trace().empty());
  c.enable_job_trace(true);
  c.on_finish(ev);
  EXPECT_EQ(c.job_trace().size(), 1u);
}

}  // namespace
}  // namespace daris::metrics
