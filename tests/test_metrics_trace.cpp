#include <gtest/gtest.h>

#include "metrics/trace_export.h"
#include "metrics/trace_report.h"

namespace daris::metrics {
namespace {

using common::from_ms;

TEST(TraceExport, EmptyIsValidJsonArray) {
  EXPECT_EQ(to_chrome_trace_json({}), "[\n]\n");
}

TEST(TraceExport, SpanFieldsSerialised) {
  TraceSpan s;
  s.name = "task1.stage0";
  s.group = 2;
  s.lane = 1;
  s.begin = from_ms(1.0);
  s.duration = from_ms(0.5);
  s.priority = common::Priority::kLow;
  s.missed = true;
  const std::string json = to_chrome_trace_json({s});
  EXPECT_NE(json.find("\"name\": \"task1.stage0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 500"), std::string::npos);
  EXPECT_NE(json.find("\"priority\": \"LP\""), std::string::npos);
  EXPECT_NE(json.find("\"missed\": true"), std::string::npos);
}

TEST(TraceExport, EscapesQuotesInNames) {
  TraceSpan s;
  s.name = "we\"ird\\name";
  const std::string json = to_chrome_trace_json({s});
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(TraceRecorder, BuildsJobSpans) {
  JobEvent j;
  j.task_id = 3;
  j.priority = common::Priority::kHigh;
  j.release = from_ms(10.0);
  j.finish = from_ms(14.0);
  j.context = 1;
  j.missed = false;
  TraceRecorder rec;
  rec.add_job_events({j});
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.spans()[0].name, "job task3");
  EXPECT_EQ(rec.spans()[0].group, 1);
  EXPECT_EQ(rec.spans()[0].duration, from_ms(4.0));
}

TEST(TraceRecorder, BuildsStageSpansBackdatedByExecution) {
  StageEvent s;
  s.task_id = 2;
  s.stage = 1;
  s.when = from_ms(5.0);
  s.execution_us = 1000.0;
  TraceRecorder rec;
  rec.add_stage_events({s});
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.spans()[0].name, "task2.stage1");
  EXPECT_EQ(rec.spans()[0].begin, from_ms(4.0));
  EXPECT_EQ(rec.spans()[0].duration, from_ms(1.0));
}

TEST(TraceRecorder, MultipleSpansCommaSeparated) {
  TraceRecorder rec;
  rec.add(TraceSpan{});
  rec.add(TraceSpan{});
  const std::string json = to_chrome_trace_json(rec.spans());
  // Two objects, one comma between them.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"ph\"", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

StageEvent stage_ev(int task, std::size_t stage, double exec_us,
                    double mret_us, int context, int gpu) {
  StageEvent s;
  s.task_id = task;
  s.stage = stage;
  s.execution_us = exec_us;
  s.mret_us = mret_us;
  s.context = context;
  s.gpu = gpu;
  return s;
}

TEST(TraceReport, EmptyStream) {
  const TraceReport r = trace_report({});
  EXPECT_EQ(r.stages, 0u);
  EXPECT_EQ(r.tasks, 0u);
  EXPECT_EQ(r.gpu_migrations, 0u);
  EXPECT_EQ(r.worst_stall_task, -1);
  EXPECT_FALSE(r.to_string().empty());
}

TEST(TraceReport, CountsMigrationsFromConsecutiveStages) {
  // Task 0 moves context (same GPU) then moves GPU; task 1 never moves.
  const std::vector<StageEvent> stream = {
      stage_ev(0, 0, 100, 100, /*context=*/0, /*gpu=*/0),
      stage_ev(1, 0, 100, 100, 2, 0),
      stage_ev(0, 1, 100, 100, 1, 0),  // context switch
      stage_ev(0, 2, 100, 100, 1, 1),  // GPU migration
      stage_ev(1, 1, 100, 100, 2, 0),
  };
  const TraceReport r = trace_report(stream);
  EXPECT_EQ(r.stages, 5u);
  EXPECT_EQ(r.tasks, 2u);
  EXPECT_EQ(r.context_switches, 1u);
  EXPECT_EQ(r.gpu_migrations, 1u);
}

TEST(TraceReport, StarvationAndWorstStall) {
  const std::vector<StageEvent> stream = {
      stage_ev(0, 0, 150, 100, 0, 0),   // stalled 50us but not starved
      stage_ev(3, 1, 900, 300, 0, 0),   // starved (3x) and worst stall
      stage_ev(3, 2, 400, 250, 0, 0),   // below the 2x default factor
  };
  const TraceReport r = trace_report(stream);
  EXPECT_EQ(r.starved_stages, 1u);
  EXPECT_DOUBLE_EQ(r.worst_stall_us, 600.0);
  EXPECT_EQ(r.worst_stall_task, 3);
  EXPECT_EQ(r.worst_stall_stage, 1u);
  ASSERT_EQ(r.worst_stall_per_task_us.size(), 4u);
  EXPECT_DOUBLE_EQ(r.worst_stall_per_task_us[0], 50.0);
  EXPECT_DOUBLE_EQ(r.worst_stall_per_task_us[3], 600.0);
  EXPECT_NE(r.to_string().find("worst stall"), std::string::npos);
}

TEST(TraceReport, StarvationFactorConfigurable) {
  const std::vector<StageEvent> stream = {
      stage_ev(0, 0, 150, 100, 0, 0),
  };
  EXPECT_EQ(trace_report(stream, 1.4).starved_stages, 1u);
  EXPECT_EQ(trace_report(stream, 2.0).starved_stages, 0u);
}

TEST(CollectorRouting, PerGpuAndFleetCounters) {
  Collector c;
  c.set_gpu_count(2);
  c.on_route(0);
  c.on_route(0);
  c.on_route(1);
  c.on_home_admit(0);
  c.on_cross_migration(/*from=*/0, /*to=*/1);
  c.on_drop(1);
  c.on_infeasible(0);
  c.on_transfer(/*to_gpu=*/1, /*mb=*/44.5);
  c.on_transfer(/*to_gpu=*/1, /*mb=*/0.5);
  EXPECT_EQ(c.routing(0).routed, 2u);
  EXPECT_EQ(c.routing(0).home_admits, 1u);
  EXPECT_EQ(c.routing(0).migrated_out, 1u);
  EXPECT_EQ(c.routing(0).infeasible, 1u);
  EXPECT_EQ(c.routing(1).migrated_in, 1u);
  EXPECT_EQ(c.routing(1).dropped, 1u);
  EXPECT_EQ(c.routing(1).transfers_in, 2u);
  EXPECT_DOUBLE_EQ(c.routing(1).transferred_mb, 45.0);
  const RoutingCounters fleet = c.fleet_routing();
  EXPECT_EQ(fleet.routed, 3u);
  EXPECT_EQ(fleet.migrated_in, 1u);
  EXPECT_EQ(fleet.migrated_out, 1u);
  EXPECT_EQ(fleet.dropped, 1u);
  EXPECT_EQ(fleet.infeasible, 1u);
  EXPECT_EQ(fleet.transfers_in, 2u);
  EXPECT_DOUBLE_EQ(fleet.transferred_mb, 45.0);
}

TEST(CollectorJobTrace, GatedByFlag) {
  Collector c;
  JobEvent ev;
  ev.priority = common::Priority::kHigh;
  c.on_finish(ev);
  EXPECT_TRUE(c.job_trace().empty());
  c.enable_job_trace(true);
  c.on_finish(ev);
  EXPECT_EQ(c.job_trace().size(), 1u);
}

}  // namespace
}  // namespace daris::metrics
