#include <gtest/gtest.h>

#include "common/table.h"

namespace daris::common {
namespace {

TEST(Table, HeaderOnly) {
  Table t({"a", "bb"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("| bb "), std::string::npos);
  EXPECT_EQ(t.rows(), 0u);
}

TEST(Table, RowsPaddedToHeaderWidth) {
  Table t({"x", "y", "z"});
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
  const std::string s = t.to_string();
  // Three columns rendered in every row.
  const std::string last_line = s.substr(s.rfind("| 1"));
  int pipes = 0;
  for (char c : last_line) {
    if (c == '|') ++pipes;
  }
  EXPECT_EQ(pipes, 4);  // leading + 3 separators
}

TEST(Table, ColumnAlignment) {
  Table t({"name", "v"});
  t.add_row({"long-name-here", "1"});
  t.add_row({"x", "22"});
  const std::string s = t.to_string();
  // All lines are equally long (aligned columns).
  std::size_t prev = std::string::npos;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t eol = s.find('\n', pos);
    const std::size_t len = eol - pos;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    pos = eol + 1;
  }
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainValuesUnquoted) {
  Table t({"a"});
  t.add_row({"simple"});
  EXPECT_NE(t.to_csv().find("simple\n"), std::string::npos);
  EXPECT_EQ(t.to_csv().find("\"simple\""), std::string::npos);
}

TEST(Formatting, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 0), "3");
  EXPECT_EQ(fmt_double(-1.5, 1), "-1.5");
}

TEST(Formatting, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.1234, 1), "12.3%");
  EXPECT_EQ(fmt_percent(0.0, 2), "0.00%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(Formatting, FmtInt) {
  EXPECT_EQ(fmt_int(0), "0");
  EXPECT_EQ(fmt_int(-42), "-42");
  EXPECT_EQ(fmt_int(123456789LL), "123456789");
}

}  // namespace
}  // namespace daris::common
