// Structural checks of the model zoo against the published architectures.
#include <gtest/gtest.h>

#include "dnn/zoo.h"

namespace daris::dnn {
namespace {

TEST(Zoo, AllModelsHaveFourStages) {
  for (auto kind : {ModelKind::kResNet18, ModelKind::kResNet50,
                    ModelKind::kUNet, ModelKind::kInceptionV3}) {
    EXPECT_EQ(network(kind).stages.size(), 4u) << model_name(kind);
  }
}

TEST(Zoo, ResNet18LayerBudget) {
  const NetworkDef net = resnet18();
  // 17 convs (16 block convs + stem, + 3 downsamples) + pool + 8 adds +
  // avgpool + fc = 31 lowered kernels.
  EXPECT_EQ(net.layer_count(), 31u);
  // ~1.8 GMACs for ResNet18 at 224x224 (flops = 2 * MACs).
  EXPECT_NEAR(net.total_flops() / 2e9, 1.8, 0.4);
}

TEST(Zoo, ResNet50FlopBudget) {
  const NetworkDef net = resnet50();
  // ~4.1 GMACs at 224x224 (flops = 2 * MACs).
  EXPECT_NEAR(net.total_flops() / 2e9, 4.1, 0.8);
  EXPECT_GT(net.layer_count(), 60u);
}

TEST(Zoo, UNetIsTheWidestAndHeaviest) {
  const NetworkDef u = unet();
  const NetworkDef r = resnet18();
  EXPECT_GT(u.total_flops(), 5.0 * r.total_flops());
  // Decoder output stage works at full 224x224 resolution.
  double max_elems = 0.0;
  for (const auto& s : u.stages) {
    for (const auto& l : s.layers) max_elems = std::max(max_elems, l.out_elems);
  }
  EXPECT_GE(max_elems, 224.0 * 224.0 * 64.0);
}

TEST(Zoo, InceptionHasManySmallKernels) {
  const NetworkDef net = inception_v3();
  EXPECT_GT(net.layer_count(), 100u);  // many per-branch convolutions
  // ~5.7 GMACs at 299x299 (flops = 2 * MACs).
  EXPECT_NEAR(net.total_flops() / 2e9, 5.7, 1.2);
  // Mean output size far below ResNet18's (narrow kernels).
  auto mean_out = [](const NetworkDef& n) {
    double sum = 0.0;
    std::size_t cnt = 0;
    for (const auto& s : n.stages) {
      for (const auto& l : s.layers) {
        sum += l.out_elems;
        ++cnt;
      }
    }
    return sum / static_cast<double>(cnt);
  };
  EXPECT_LT(mean_out(net), mean_out(resnet18()));
}

TEST(Zoo, Table1ReferenceValues) {
  EXPECT_EQ(table1_reference(ModelKind::kResNet18).min_jps, 627.0);
  EXPECT_EQ(table1_reference(ModelKind::kResNet18).max_jps, 1025.0);
  EXPECT_EQ(table1_reference(ModelKind::kResNet50).max_jps, 433.0);
  EXPECT_EQ(table1_reference(ModelKind::kUNet).batching_gain, 1.08);
  EXPECT_EQ(table1_reference(ModelKind::kInceptionV3).batching_gain, 3.13);
}

TEST(Zoo, ModelNames) {
  EXPECT_STREQ(model_name(ModelKind::kResNet18), "ResNet18");
  EXPECT_STREQ(model_name(ModelKind::kResNet50), "ResNet50");
  EXPECT_STREQ(model_name(ModelKind::kUNet), "UNet");
  EXPECT_STREQ(model_name(ModelKind::kInceptionV3), "InceptionV3");
}

TEST(Zoo, CompiledModelMatchesNetworkStructure) {
  const gpusim::GpuSpec spec;
  const CompiledModel m = compiled_model(ModelKind::kResNet18, 1, spec);
  const NetworkDef net = resnet18();
  EXPECT_EQ(m.stage_count(), net.stages.size());
  EXPECT_EQ(m.kernel_count(), net.layer_count());
  EXPECT_EQ(m.name, net.name);
  EXPECT_EQ(m.batch, 1);
}

TEST(Zoo, CalibratedParamsAreCached) {
  const gpusim::GpuSpec spec;
  const LoweringParams a = calibrated_params(ModelKind::kUNet, spec);
  const LoweringParams b = calibrated_params(ModelKind::kUNet, spec);
  EXPECT_EQ(a.work_scale, b.work_scale);
  EXPECT_EQ(a.par_scale, b.par_scale);
}

}  // namespace
}  // namespace daris::dnn
