#include <gtest/gtest.h>

#include "daris/config.h"

namespace daris::rt {
namespace {

TEST(Config, PolicyNames) {
  EXPECT_STREQ(policy_name(Policy::kStr), "STR");
  EXPECT_STREQ(policy_name(Policy::kMps), "MPS");
  EXPECT_STREQ(policy_name(Policy::kMpsStr), "MPS+STR");
}

TEST(Config, StrForcesSingleContext) {
  SchedulerConfig c;
  c.policy = Policy::kStr;
  c.num_contexts = 6;
  c.streams_per_context = 4;
  c.canonicalize();
  EXPECT_EQ(c.num_contexts, 1);
  EXPECT_EQ(c.streams_per_context, 4);
  EXPECT_EQ(c.parallelism(), 4);
}

TEST(Config, MpsForcesSingleStream) {
  SchedulerConfig c;
  c.policy = Policy::kMps;
  c.num_contexts = 6;
  c.streams_per_context = 3;
  c.canonicalize();
  EXPECT_EQ(c.num_contexts, 6);
  EXPECT_EQ(c.streams_per_context, 1);
}

TEST(Config, MpsStrKeepsBoth) {
  SchedulerConfig c;
  c.policy = Policy::kMpsStr;
  c.num_contexts = 3;
  c.streams_per_context = 3;
  c.canonicalize();
  EXPECT_EQ(c.parallelism(), 9);
}

TEST(Config, OversubscriptionClampedToContextCount) {
  SchedulerConfig c;
  c.policy = Policy::kMps;
  c.num_contexts = 4;
  c.oversubscription = 10.0;
  c.canonicalize();
  EXPECT_DOUBLE_EQ(c.oversubscription, 4.0);
  c.oversubscription = 0.2;
  c.canonicalize();
  EXPECT_DOUBLE_EQ(c.oversubscription, 1.0);
}

TEST(Config, LabelFormats) {
  SchedulerConfig c;
  c.policy = Policy::kMps;
  c.num_contexts = 6;
  c.oversubscription = 6.0;
  c.canonicalize();
  EXPECT_EQ(c.label(), "6x1 6");
  SchedulerConfig s;
  s.policy = Policy::kStr;
  s.streams_per_context = 4;
  s.canonicalize();
  EXPECT_EQ(s.label(), "1x4");
}

TEST(Config, DefaultsMatchPaper) {
  const SchedulerConfig c;
  EXPECT_EQ(c.mret_window, 5);  // ws = 5 (Sec. VI-G)
  EXPECT_TRUE(c.staging);
  EXPECT_TRUE(c.prioritize_last_stage);
  EXPECT_TRUE(c.boost_after_miss);
  EXPECT_TRUE(c.fixed_levels);
  EXPECT_TRUE(c.lp_admission);
  EXPECT_FALSE(c.hp_admission);
  EXPECT_EQ(c.batch, 1);
}

TEST(Config, SanitizesDegenerateValues) {
  SchedulerConfig c;
  c.num_contexts = 0;
  c.streams_per_context = -3;
  c.mret_window = 0;
  c.batch = 0;
  c.canonicalize();
  EXPECT_GE(c.num_contexts, 1);
  EXPECT_GE(c.streams_per_context, 1);
  EXPECT_GE(c.mret_window, 1);
  EXPECT_GE(c.batch, 1);
}

}  // namespace
}  // namespace daris::rt
