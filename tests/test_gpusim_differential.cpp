// Randomized differential test of the incremental fluid-rate allocator.
//
// A reference solver — the from-scratch water-fill the bucketed allocator
// replaced: global (context, parallelism, arrival) sort, per-context fill,
// full rescans for the oversubscription/pressure/bandwidth folds — is
// applied to snapshots of a Gpu driven through random launch / complete /
// quota-change sequences (completions happen naturally by running the
// simulator forward). The incremental allocator maintains per-context
// buckets, cached water-fills and cached efficiency factors instead, so any
// drift between the two is a caching bug. Rates must match EXACTLY (bit
// equality, not a tolerance): the incremental solver is specified to
// reproduce the reference's floating-point operations in the same order,
// which is what keeps the repo's figure outputs byte-stable.
//
// Mirrors tests/test_sim_differential.cpp, which plays the same game with
// the event engine against a lazy-cancellation priority queue.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "common/time.h"
#include "gpusim/gpu.h"
#include "sim/simulator.h"

namespace daris::gpusim {
namespace {

/// From-scratch reference: the pre-bucketing allocator, computed on a
/// snapshot (kernels in arrival order, one entry per resident kernel).
std::vector<double> reference_rates(
    const GpuSpec& spec, const std::vector<double>& quotas,
    const std::vector<Gpu::ActiveKernelInfo>& kernels) {
  const std::size_t n = kernels.size();
  std::vector<double> rates(n, 0.0);
  if (n == 0) return rates;

  // Per-context resident counts (the intra-context penalty input).
  std::vector<int> active(quotas.size(), 0);
  for (const auto& k : kernels) active[static_cast<std::size_t>(k.ctx)]++;

  // 1. Water-fill each context's quota, ascending parallelism first,
  //    arrival order breaking ties — via one global sort, as the historical
  //    solver did.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (kernels[a].ctx != kernels[b].ctx) return kernels[a].ctx < kernels[b].ctx;
    if (kernels[a].parallelism != kernels[b].parallelism)
      return kernels[a].parallelism < kernels[b].parallelism;
    return a < b;
  });
  std::vector<double> share(n, 0.0);
  std::size_t i = 0;
  double total_alloc = 0.0;
  while (i < order.size()) {
    const ContextId ctx = kernels[order[i]].ctx;
    std::size_t j = i;
    while (j < order.size() && kernels[order[j]].ctx == ctx) ++j;
    double quota = quotas[static_cast<std::size_t>(ctx)];
    std::size_t left = j - i;
    for (std::size_t k = i; k < j; ++k) {
      const double fair = quota / static_cast<double>(left);
      const double alloc = std::min(kernels[order[k]].parallelism, fair);
      share[order[k]] = alloc;
      quota -= alloc;
      --left;
    }
    for (std::size_t k = i; k < j; ++k) total_alloc += share[order[k]];
    i = j;
  }

  // 2. Oversubscription rescale.
  const double sm = static_cast<double>(spec.sm_count);
  if (total_alloc > sm) {
    const double scale = sm / total_alloc;
    for (auto& s : share) s *= scale;
  }

  // Global L2 pressure over the arrival order.
  double pressure = 0.0;
  for (const auto& k : kernels) pressure += std::min(k.parallelism, sm);
  const double excess = std::max(0.0, pressure / sm - 1.0);
  const double eff_os = 1.0 / (1.0 + spec.kappa_oversub * excess);

  // 3/4. Quantised per-kernel rate with the intra-context and small-quota
  // penalties.
  auto quantized = [&](double parallelism, double s) {
    if (s <= 0.0) return 0.0;
    if (parallelism <= s) return parallelism;
    const double fluid_waves = parallelism / s;
    const double hard_waves = std::ceil(fluid_waves - 1e-12);
    const double waves = spec.quant_smoothing * fluid_waves +
                         (1.0 - spec.quant_smoothing) * hard_waves;
    return parallelism / waves;
  };
  std::vector<double> raw(n, 0.0);
  double bw_demand = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const auto& ak = kernels[k];
    const double quota = quotas[static_cast<std::size_t>(ak.ctx)];
    const double eff_intra =
        1.0 / (1.0 + spec.alpha_intra *
                         std::min(static_cast<double>(
                                      active[static_cast<std::size_t>(ak.ctx)] -
                                      1),
                                  spec.intra_saturation));
    const double eff_quota =
        1.0 - spec.quota_penalty_a * std::exp(-quota / spec.quota_penalty_q0);
    raw[k] = quantized(ak.parallelism, share[k]) * eff_intra * eff_os *
             eff_quota;
    bw_demand += raw[k] * ak.mem_intensity;
  }

  // 5. Bandwidth cap.
  const double phi =
      bw_demand > spec.mem_bandwidth ? spec.mem_bandwidth / bw_demand : 1.0;
  for (std::size_t k = 0; k < n; ++k) rates[k] = raw[k] * phi;
  return rates;
}

struct Shape {
  int contexts;
  int streams_per_ctx;
  double quota;
  GpuSpec spec;
};

std::vector<Shape> shapes() {
  GpuSpec defaults;  // full model: all penalties, jitter on

  GpuSpec bandwidth_bound = defaults;
  bandwidth_bound.mem_bandwidth = 34.0;  // phi path engaged constantly

  GpuSpec hard_waves = defaults;
  hard_waves.quant_smoothing = 0.0;  // ceil() quantisation
  hard_waves.kappa_oversub = 0.5;    // strong pressure coupling

  return {
      Shape{1, 6, 68.0, defaults},          // one context, stream-heavy
      Shape{4, 2, 34.0, defaults},          // oversubscribed quotas
      Shape{10, 1, 20.0, bandwidth_bound},  // many contexts, bw-capped
      Shape{3, 3, 68.0, hard_waves},        // hard quantisation + pressure
  };
}

TEST(GpuAllocatorDifferential, RandomOpSequencesMatchReferenceSolver) {
  // >= 10k randomized operations overall, each followed by an exact-match
  // comparison of every resident kernel's rate.
  constexpr int kOpsPerShape = 6000;
  std::uint64_t compared = 0;
  int shape_idx = 0;
  for (const Shape& shape : shapes()) {
    std::mt19937_64 rng(0xA110Cu + static_cast<std::uint64_t>(shape_idx));
    sim::Simulator sim;
    Gpu gpu(sim, shape.spec, /*seed=*/42 + static_cast<std::uint64_t>(shape_idx));
    std::vector<StreamId> streams;
    std::vector<ContextId> ctxs;
    for (int c = 0; c < shape.contexts; ++c) {
      const auto ctx = gpu.create_context(shape.quota);
      ctxs.push_back(ctx);
      for (int s = 0; s < shape.streams_per_ctx; ++s) {
        streams.push_back(gpu.create_stream(ctx));
      }
    }

    auto uniform = [&rng](double lo, double hi) {
      return lo + (hi - lo) * (static_cast<double>(rng() >> 11) * 0x1.0p-53);
    };

    for (int op = 0; op < kOpsPerShape; ++op) {
      const std::uint64_t dice = rng() % 100;
      if (dice < 50) {
        // Launch a random kernel on a random stream.
        KernelDesc k;
        k.work = uniform(5.0, 400.0);
        k.parallelism = uniform(1.0, 200.0);
        k.mem_intensity = uniform(0.0, 1.5);
        gpu.launch_kernel(streams[rng() % streams.size()], k);
      } else if (dice < 80) {
        // Advance time: completions and queued launches happen naturally.
        // Steps stay short relative to kernel durations so most snapshots
        // observe a populated device.
        sim.run_until(sim.now() +
                      static_cast<common::Time>(rng() % 50000));  // <= 50us
      } else if (dice < 90) {
        // Quota change on a random context.
        gpu.set_context_quota(ctxs[rng() % ctxs.size()], uniform(4.0, 68.0));
      } else {
        // Same-quota set: must be a no-op (exercises the equal-quota path).
        const auto ctx = ctxs[rng() % ctxs.size()];
        gpu.set_context_quota(ctx, gpu.context_quota(ctx));
      }

      std::vector<double> quotas;
      quotas.reserve(ctxs.size());
      for (const auto ctx : ctxs) quotas.push_back(gpu.context_quota(ctx));
      const auto snapshot = gpu.debug_active_kernels();
      const auto expected = reference_rates(shape.spec, quotas, snapshot);
      ASSERT_EQ(snapshot.size(), expected.size());
      for (std::size_t k = 0; k < snapshot.size(); ++k) {
        // Exact: the incremental solver must reproduce the reference's
        // floating-point result bit for bit, not approximately.
        ASSERT_EQ(snapshot[k].rate, expected[k])
            << "shape " << shape_idx << " op " << op << " kernel " << k
            << " (ctx " << snapshot[k].ctx << ", par "
            << snapshot[k].parallelism << ")";
      }
      compared += snapshot.size();
    }

    // Drain: everything completes, nothing wedges.
    sim.run();
    EXPECT_EQ(gpu.total_active_kernels(), 0);
    ++shape_idx;
  }
  // The point of the exercise: a meaningful number of exact comparisons.
  EXPECT_GT(compared, 10000u);
}

}  // namespace
}  // namespace daris::gpusim
