// Client resilience layer (cluster/resilience.h): retries with backoff and
// deadline re-derivation, the token-bucket retry budget, hedged LP requests
// with first-finish-wins, the per-GPU circuit breaker with its exit guard,
// and the job-conservation invariant — all at the run_cluster level, where
// every moving part (router, fleet, schedulers, drivers) is live.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/resilience.h"
#include "experiments/cluster_runner.h"
#include "workload/taskset.h"

namespace daris::cluster {
namespace {

/// Small overloaded fleet: bursty arrivals above nominal so the backlog
/// guard sheds LP work — the raw material retries and budgets act on.
exp::ClusterConfig overloaded_config(int num_gpus, double rate_scale) {
  exp::ClusterConfig cfg;
  cfg.taskset =
      workload::replicated_taskset(workload::mixed_taskset(), num_gpus);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 4;
  cfg.sched.oversubscription = 4.0;
  cfg.num_gpus = num_gpus;
  cfg.routing = RoutingPolicy::kHybrid;
  cfg.arrivals = exp::ArrivalMode::kBursty;
  cfg.rate_scale = rate_scale;
  cfg.duration_s = 1.5;
  cfg.warmup_s = 0.3;
  return cfg;
}

std::vector<std::uint64_t> behaviour_of(const exp::ClusterResult& r) {
  return {r.hp.released, r.hp.completed, r.hp.missed,  r.lp.released,
          r.lp.completed, r.lp.missed,   r.drops,      r.infeasible_rejects,
          r.transfers,    r.arrivals,    r.retries,    r.hedges,
          r.breaker_opens};
}

// --- inertness ------------------------------------------------------------

TEST(Resilience, EnabledWithAllKnobsOffMatchesDisabledExactly) {
  // enabled=true with retries off, no hedging, no breaker must reproduce
  // the disabled run's behaviour bit-for-bit: the layer only counts first
  // attempts and forwards. This pins the pass-through path as zero-cost.
  exp::ClusterConfig off = overloaded_config(3, 1.2);
  const exp::ClusterResult base = exp::run_cluster(off);

  exp::ClusterConfig noop = overloaded_config(3, 1.2);
  noop.resilience.enabled = true;
  noop.resilience.hp.backoff = RetryPolicy::Backoff::kNone;
  noop.resilience.lp.backoff = RetryPolicy::Backoff::kNone;
  const exp::ClusterResult r = exp::run_cluster(noop);

  EXPECT_EQ(behaviour_of(r), behaviour_of(base));
  EXPECT_EQ(r.total_jps, base.total_jps);
  EXPECT_GT(r.first_attempts, 0u);
  EXPECT_EQ(base.first_attempts, 0u);  // disabled layer counts nothing
  EXPECT_TRUE(base.conservation_ok) << base.conservation_detail;
  EXPECT_TRUE(r.conservation_ok) << r.conservation_detail;
}

// --- retries --------------------------------------------------------------

TEST(Resilience, RetriesFireAndRunsAreDeterministic) {
  exp::ClusterConfig cfg = overloaded_config(3, 1.4);
  cfg.resilience.enabled = true;
  const exp::ClusterResult a = exp::run_cluster(cfg);
  const exp::ClusterResult b = exp::run_cluster(cfg);

  EXPECT_GT(a.retries, 0u);
  EXPECT_EQ(behaviour_of(a), behaviour_of(b));
  EXPECT_EQ(a.retry_admits, b.retry_admits);
  EXPECT_EQ(a.retry_abandoned_budget, b.retry_abandoned_budget);
  EXPECT_EQ(a.retry_abandoned_expired, b.retry_abandoned_expired);
  EXPECT_EQ(a.retry_abandoned_attempts, b.retry_abandoned_attempts);
  EXPECT_TRUE(a.conservation_ok) << a.conservation_detail;
}

TEST(Resilience, BudgetCapsRetryAmplification) {
  exp::ClusterConfig naive = overloaded_config(3, 1.4);
  naive.resilience.enabled = true;
  naive.resilience.budget_enabled = false;
  const exp::ClusterResult n = exp::run_cluster(naive);

  exp::ClusterConfig budgeted = overloaded_config(3, 1.4);
  budgeted.resilience.enabled = true;
  budgeted.resilience.retry_budget_ratio = 0.1;
  budgeted.resilience.retry_budget_burst = 16.0;
  const exp::ClusterResult b = exp::run_cluster(budgeted);

  ASSERT_GT(n.retries, 0u);
  EXPECT_LT(b.retries, n.retries);
  EXPECT_GT(b.retry_abandoned_budget, 0u);
  // The bucket earns ratio per first attempt plus the burst headroom; the
  // realized retry rate must respect that bound.
  const double cap = 0.1 * static_cast<double>(b.first_attempts) + 16.0;
  EXPECT_LE(static_cast<double>(b.retries), cap);
  EXPECT_TRUE(n.conservation_ok) << n.conservation_detail;
  EXPECT_TRUE(b.conservation_ok) << b.conservation_detail;
}

TEST(Resilience, RetriesRespectTheOriginalDeadline) {
  // With backoff delays far beyond every relative deadline, every scheduled
  // retry must be abandoned as expired — none may be re-released with fresh
  // slack it does not have.
  exp::ClusterConfig cfg = overloaded_config(3, 1.4);
  cfg.resilience.enabled = true;
  cfg.resilience.hp = {RetryPolicy::Backoff::kFixed, 3, 500000.0, 500000.0,
                       0.0};
  cfg.resilience.lp = cfg.resilience.hp;
  const exp::ClusterResult r = exp::run_cluster(cfg);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_GT(r.retry_abandoned_expired, 0u);
  EXPECT_TRUE(r.conservation_ok) << r.conservation_detail;
}

// --- hedging --------------------------------------------------------------

TEST(Resilience, HedgesRescueLpTailOnStraggler) {
  exp::ClusterConfig cfg = overloaded_config(4, 1.0);
  cfg.arrivals = exp::ArrivalMode::kPeriodic;
  cfg.duration_s = 2.5;
  exp::FaultSpec slow;
  slow.kind = exp::FaultSpec::Kind::kSlow;
  slow.gpu = 0;
  slow.at_s = 0.5;
  slow.factor = 0.4;
  cfg.faults.push_back(slow);
  cfg.resilience.enabled = true;
  cfg.resilience.hp.backoff = RetryPolicy::Backoff::kNone;
  cfg.resilience.lp.backoff = RetryPolicy::Backoff::kNone;
  cfg.resilience.hedge = true;
  cfg.resilience.hedge_percentile = 70.0;
  const exp::ClusterResult r = exp::run_cluster(cfg);

  EXPECT_GT(r.hedges, 0u);
  EXPECT_GT(r.hedge_wins, 0u);
  // Every pair settles exactly one way: cancelled loser or duplicate work.
  EXPECT_EQ(r.hedge_cancels + r.hedge_waste, r.hedges);
  EXPECT_TRUE(r.conservation_ok) << r.conservation_detail;

  const exp::ClusterResult again = exp::run_cluster(cfg);
  EXPECT_EQ(r.hedges, again.hedges);
  EXPECT_EQ(r.hedge_wins, again.hedge_wins);
  EXPECT_EQ(r.hedge_cancels, again.hedge_cancels);
}

// --- circuit breaker ------------------------------------------------------

TEST(Resilience, BreakerOpensOnSickDeviceAndRecovers) {
  // GPU 0 of 4 collapses to 0.15x mid-run: its window miss rate blows past
  // the threshold, the breaker opens (masking it from routing), and after
  // the straggler recovers... the device never does here, so the breaker
  // cycles open/half-open instead of closing — opens is the signal.
  exp::ClusterConfig cfg = overloaded_config(4, 1.1);
  cfg.duration_s = 2.0;
  exp::FaultSpec slow;
  slow.kind = exp::FaultSpec::Kind::kSlow;
  slow.gpu = 0;
  slow.at_s = 0.5;
  slow.factor = 0.15;
  cfg.faults.push_back(slow);
  cfg.resilience.enabled = true;
  cfg.resilience.breaker = true;
  cfg.resilience.breaker_open_threshold = 0.4;
  const exp::ClusterResult r = exp::run_cluster(cfg);

  EXPECT_GT(r.breaker_opens, 0u);
  EXPECT_TRUE(r.conservation_ok) << r.conservation_detail;

  const exp::ClusterResult again = exp::run_cluster(cfg);
  EXPECT_EQ(r.breaker_opens, again.breaker_opens);
  EXPECT_EQ(r.breaker_closes, again.breaker_closes);
}

TEST(Resilience, BreakerExitGuardRefusesToMaskTheWholeFleet) {
  // Two devices, both melting under 2x load: every window crosses the open
  // threshold, but opening would leave fewer than two placeable exits, so
  // the guard must refuse — a breaker never amputates a 2-GPU fleet.
  exp::ClusterConfig cfg = overloaded_config(2, 2.0);
  cfg.resilience.enabled = true;
  cfg.resilience.breaker = true;
  cfg.resilience.breaker_open_threshold = 0.2;
  cfg.resilience.breaker_min_volume = 4;
  const exp::ClusterResult r = exp::run_cluster(cfg);
  EXPECT_EQ(r.breaker_opens, 0u);
  EXPECT_TRUE(r.conservation_ok) << r.conservation_detail;
}

}  // namespace
}  // namespace daris::cluster
