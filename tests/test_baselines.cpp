// Baseline servers: batching (upper), single-stream (lower), GSlice-like,
// Clockwork-like.
#include <gtest/gtest.h>

#include "baselines/batching_server.h"
#include "baselines/clockwork_server.h"
#include "baselines/gslice_server.h"
#include "workload/taskset.h"

namespace daris::baselines {
namespace {

TEST(BatchingServer, SingleStreamMatchesTable1Min) {
  const gpusim::GpuSpec spec;
  const auto r = measure_batched_jps(dnn::ModelKind::kResNet18, 1, spec, 1.0);
  EXPECT_NEAR(r.jps, 627.0, 25.0);
  EXPECT_GT(r.batches, 100u);
}

TEST(BatchingServer, ThroughputGrowsWithBatch) {
  const gpusim::GpuSpec spec;
  double prev = 0.0;
  for (int b : {1, 4, 16}) {
    const auto r = measure_batched_jps(dnn::ModelKind::kInceptionV3, b, spec, 1.0);
    EXPECT_GT(r.jps, prev);
    prev = r.jps;
  }
}

TEST(BatchingServer, BestSweepAtLeastAsGoodAsFixed) {
  const gpusim::GpuSpec spec;
  const auto best = best_batched_jps(dnn::ModelKind::kUNet, spec, 1.0);
  const auto b4 = measure_batched_jps(dnn::ModelKind::kUNet, 4, spec, 1.0);
  EXPECT_GE(best.jps, b4.jps * 0.99);
}

TEST(BatchingServer, LatencyConsistentWithThroughput) {
  const gpusim::GpuSpec spec;
  const auto r = measure_batched_jps(dnn::ModelKind::kResNet50, 8, spec, 1.0);
  EXPECT_NEAR(r.jps, 8.0 * 1e3 / r.batch_latency_ms, r.jps * 0.02);
}

TEST(GSlice, BeatsPlainBatchingSlightly) {
  // Sec. VI-B: GSlice gains ~3.5% over pure batching by spatially sharing
  // slices (tail filling + launch hiding).
  const gpusim::GpuSpec spec;
  const auto batching = best_batched_jps(dnn::ModelKind::kResNet50, spec, 1.5);
  const auto gslice = best_gslice_jps(dnn::ModelKind::kResNet50, spec, 1.5);
  EXPECT_GT(gslice.jps, batching.jps * 0.99);
  EXPECT_LT(gslice.jps, batching.jps * 1.15);
}

TEST(GSlice, ReportsConfiguration) {
  const gpusim::GpuSpec spec;
  const auto r = measure_gslice_jps(dnn::ModelKind::kResNet50, 2, 8, spec, 0.5);
  EXPECT_EQ(r.slices, 2);
  EXPECT_EQ(r.batch, 8);
  EXPECT_GT(r.jps, 0.0);
}

TEST(Clockwork, SerializedThroughputNearSingleStream) {
  gpusim::GpuSpec spec;
  spec.jitter_cv = 0.0;
  // A modest task set the serialised executor can keep up with.
  const auto set = workload::scaled_taskset(dnn::ModelKind::kResNet18, 0.25,
                                            0.34);
  const auto r = run_clockwork(set, spec, 2.0);
  EXPECT_GT(r.jps, 0.0);
  EXPECT_LE(r.jps, 660.0);  // never above the single-stream rate
}

TEST(Clockwork, NoMissesThanksToPredictedLatencyDrops) {
  gpusim::GpuSpec spec;
  spec.jitter_cv = 0.0;
  // Overloaded: Clockwork drops late jobs up front instead of missing.
  const auto set = workload::table2_taskset(dnn::ModelKind::kResNet18);
  const auto r = run_clockwork(set, spec, 2.0);
  EXPECT_GT(r.drop_rate, 0.3);  // way oversubscribed for one-at-a-time
  EXPECT_LT(r.hp_dmr, 0.02);
  EXPECT_LT(r.lp_dmr, 0.02);
}

TEST(Clockwork, ThroughputFarBelowDaris) {
  // The predictability-vs-throughput trade-off the paper motivates: the
  // serialised executor leaves throughput on the table.
  gpusim::GpuSpec spec;
  const auto set = workload::table2_taskset(dnn::ModelKind::kResNet18);
  const auto r = run_clockwork(set, spec, 2.0);
  EXPECT_LT(r.jps, 700.0);  // DARIS reaches ~1150 on this set
}

}  // namespace
}  // namespace daris::baselines
