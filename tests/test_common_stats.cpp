#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace daris::common {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic data set: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesBulk) {
  OnlineStats a, b, all;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentiles, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_EQ(p.percentile(50), 0.0);
  EXPECT_EQ(p.mean(), 0.0);
}

TEST(Percentiles, NearestRank) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(static_cast<double>(i));
  EXPECT_EQ(p.percentile(0), 1.0);
  EXPECT_EQ(p.percentile(50), 50.0);
  EXPECT_EQ(p.percentile(95), 95.0);
  EXPECT_EQ(p.percentile(100), 100.0);
  EXPECT_EQ(p.min(), 1.0);
  EXPECT_EQ(p.max(), 100.0);
  EXPECT_DOUBLE_EQ(p.mean(), 50.5);
}

TEST(Percentiles, UnsortedInput) {
  Percentiles p;
  for (double x : {9.0, 1.0, 5.0, 3.0, 7.0}) p.add(x);
  EXPECT_EQ(p.median(), 5.0);
  EXPECT_EQ(p.min(), 1.0);
  EXPECT_EQ(p.max(), 9.0);
}

TEST(Percentiles, AddAfterQueryStillCorrect) {
  Percentiles p;
  p.add(10.0);
  EXPECT_EQ(p.median(), 10.0);
  p.add(20.0);
  p.add(0.0);
  EXPECT_EQ(p.median(), 10.0);
  EXPECT_EQ(p.max(), 20.0);
}

TEST(SlidingWindowMax, EmptyFallback) {
  SlidingWindowMax w(5);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.max_or(42.0), 42.0);
}

TEST(SlidingWindowMax, TracksMaximum) {
  SlidingWindowMax w(3);
  w.push(1.0);
  EXPECT_EQ(w.max_or(0), 1.0);
  w.push(5.0);
  EXPECT_EQ(w.max_or(0), 5.0);
  w.push(2.0);
  EXPECT_EQ(w.max_or(0), 5.0);
}

TEST(SlidingWindowMax, OldMaximumExpires) {
  SlidingWindowMax w(3);
  w.push(9.0);
  w.push(2.0);
  w.push(3.0);
  EXPECT_EQ(w.max_or(0), 9.0);
  w.push(1.0);  // 9 falls out of the window {2,3,1}
  EXPECT_EQ(w.max_or(0), 3.0);
  w.push(1.0);  // {3,1,1}
  EXPECT_EQ(w.max_or(0), 3.0);
  w.push(1.0);  // {1,1,1}
  EXPECT_EQ(w.max_or(0), 1.0);
}

TEST(SlidingWindowMax, CapacityOneIsLastValue) {
  SlidingWindowMax w(1);
  w.push(5.0);
  w.push(2.0);
  EXPECT_EQ(w.max_or(0), 2.0);
  w.push(7.0);
  EXPECT_EQ(w.max_or(0), 7.0);
}

TEST(SlidingWindowMax, ZeroCapacityClampedToOne) {
  SlidingWindowMax w(0);
  EXPECT_EQ(w.capacity(), 1u);
  w.push(3.0);
  EXPECT_EQ(w.max_or(0), 3.0);
}

/// Property check against a brute-force window over random inputs — this is
/// the MRET window (Eq. 1), so correctness matters.
class SlidingWindowMaxProperty : public ::testing::TestWithParam<int> {};

TEST_P(SlidingWindowMaxProperty, MatchesBruteForce) {
  const int capacity = GetParam();
  SlidingWindowMax w(static_cast<std::size_t>(capacity));
  Rng rng(1000 + static_cast<std::uint64_t>(capacity));
  std::vector<double> history;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    history.push_back(x);
    w.push(x);
    const std::size_t start =
        history.size() > static_cast<std::size_t>(capacity)
            ? history.size() - static_cast<std::size_t>(capacity)
            : 0;
    const double expect =
        *std::max_element(history.begin() + static_cast<long>(start),
                          history.end());
    ASSERT_DOUBLE_EQ(w.max_or(-1.0), expect) << "at step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, SlidingWindowMaxProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 64));

}  // namespace
}  // namespace daris::common
