// Allocation accounting for the event engine: steady-state scheduling must
// not touch the heap. Callbacks with <= 48 bytes of captures are stored
// inline in pooled event nodes, and the pool, position index, and heap are
// recycled, so after a warm-up burst that sizes them, an equally-sized burst
// of schedule/run (or reschedule) cycles performs zero allocations.
//
// The global operator new/delete overrides below count every allocation in
// this test binary; gtest itself allocates, so the measured windows contain
// only engine calls.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "metrics/eventlog.h"
#include "metrics/timeseries.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "workload/driver.h"
#include "workload/taskset.h"
#include "workload/trace.h"

namespace {
// Atomic (relaxed): the sharded steady-state test below runs engine code on
// pool worker threads, and every thread's allocations must land in the count.
std::atomic<std::size_t> g_allocations{0};
}  // namespace

// GCC's allocation tracking cannot see that this override pair is an
// internally matched malloc/free (it flags the free below as mismatched
// with the replaced operator new under sanitizer instrumentation).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace daris::sim {
namespace {

constexpr int kBurst = 1024;

// 40 bytes of value captures + one reference: 48 bytes, the inline limit.
void schedule_burst(Simulator& sim, std::uint64_t& sink) {
  for (int i = 0; i < kBurst; ++i) {
    const auto a = static_cast<std::uint64_t>(i);
    const std::uint64_t b = a + 1, c = a + 2, d = a + 3, e = a + 4;
    sim.schedule_after(i + 1, [a, b, c, d, e, &sink] {
      sink += a + b + c + d + e;
    });
  }
  sim.run();
}

TEST(SimulatorAlloc, SteadyStateSchedulingDoesNotAllocate) {
  Simulator sim;
  std::uint64_t sink = 0;
  schedule_burst(sim, sink);  // warm-up: sizes the pool, index, and heap
  const std::size_t before = g_allocations;
  schedule_burst(sim, sink);
  const std::size_t after = g_allocations;
  EXPECT_EQ(after - before, 0u)
      << "steady-state schedule/run cycles must reuse pooled nodes";
  EXPECT_GT(sink, 0u);
}

TEST(SimulatorAlloc, RescheduleDoesNotAllocate) {
  Simulator sim;
  std::uint64_t sink = 0;
  std::vector<EventHandle> handles;
  handles.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    const auto a = static_cast<std::uint64_t>(i);
    handles.push_back(
        sim.schedule_after(i + 1, [a, &sink] { sink += a; }));
  }
  const std::size_t before = g_allocations;
  for (int round = 0; round < 4; ++round) {
    for (const auto& h : handles) {
      sim.reschedule_after(h, (round + 2) * kBurst);
    }
  }
  const std::size_t after = g_allocations;
  EXPECT_EQ(after - before, 0u) << "reschedule must sift in place";
  sim.run();
  EXPECT_GT(sink, 0u);
}

// The Clockwork baseline packs its per-job completion state behind one
// pointer: the callback captures {server*, deadline, priority} (~24 bytes;
// see src/baselines/clockwork_server.cpp, which static_asserts the real
// lambda). This pins that shape to the inline path, so a burst of packed
// completions allocates nothing once the pool is warm.
TEST(SimulatorAlloc, ClockworkShapedCaptureStaysInline) {
  struct ServerState {
    std::uint64_t completed = 0;
    std::int64_t last_deadline = 0;
    int last_priority = 0;
  };
  ServerState state;
  Simulator sim;
  auto burst = [&sim, &state] {
    for (int i = 0; i < kBurst; ++i) {
      const std::int64_t deadline = i + 1;
      const int priority = i & 1;
      auto cb = [srv = &state, deadline, priority] {
        ++srv->completed;
        srv->last_deadline = deadline;
        srv->last_priority = priority;
      };
      static_assert(sizeof(cb) <= Callback::kInlineCapacity,
                    "packed completion context must fit inline");
      sim.schedule_after(i + 1, std::move(cb));
    }
    sim.run();
  };
  burst();  // warm-up sizes the pool
  const std::size_t before = g_allocations;
  burst();
  const std::size_t after = g_allocations;
  EXPECT_EQ(after - before, 0u)
      << "a packed <=48-byte completion context must not allocate";
  EXPECT_EQ(state.completed, 2u * kBurst);
}

// The release drivers' fire paths capture {this, task_id} (<= 16 bytes) and
// re-arm a pooled event in place, so steady-state arrival generation rides
// the inline path: after the first event warms the pool, the rest of an
// open-loop run performs zero heap allocations.
TEST(SimulatorAlloc, OpenLoopDriverSteadyStateDoesNotAllocate) {
  using namespace daris;
  const workload::TaskSetSpec taskset = workload::mixed_taskset();
  Simulator sim;
  std::uint64_t released = 0;
  workload::OpenLoopDriver driver(
      sim, taskset, [&released](int) { ++released; },
      common::from_sec(2.0));
  driver.start();
  sim.run_until(common::from_ms(100.0));  // warm-up sizes pool and heap
  ASSERT_GT(released, 0u);
  const std::size_t before = g_allocations;
  sim.run_until(common::from_sec(2.0));
  sim.run();
  const std::size_t after = g_allocations;
  EXPECT_EQ(after - before, 0u)
      << "steady-state open-loop arrivals must not allocate";
  EXPECT_GT(driver.arrivals(), 1000u);
}

// Trace replay walks a single re-armed event down the preloaded row list:
// after the first release, the whole replay allocates nothing.
TEST(SimulatorAlloc, TraceDriverSteadyStateDoesNotAllocate) {
  using namespace daris;
  const workload::TaskSetSpec taskset = workload::mixed_taskset();
  workload::TraceGenConfig cfg;
  cfg.duration_s = 2.0;
  cfg.mean_rate_jps = 1000.0;
  const workload::Trace trace =
      workload::generate_trace(workload::trace_mix(taskset), cfg);
  ASSERT_GT(trace.rows.size(), 1000u);

  Simulator sim;
  std::uint64_t released = 0;
  workload::TraceDriver driver(
      sim, taskset, trace, [&released](int) { ++released; },
      common::from_sec(2.0));
  driver.start();
  sim.run_until(common::from_ms(100.0));
  ASSERT_GT(released, 0u);
  const std::size_t before = g_allocations;
  sim.run_until(common::from_sec(2.0));
  sim.run();
  const std::size_t after = g_allocations;
  EXPECT_EQ(after - before, 0u)
      << "steady-state trace replay must not allocate";
  EXPECT_EQ(driver.arrivals(), trace.rows.size());
  EXPECT_EQ(driver.unmatched(), 0u);
}

// The telemetry sampler's whole steady state is one re-armed pooled event
// writing into pre-sized rings: after start() reserves them, a full
// horizon of cadence ticks performs zero allocations — the invariant that
// lets telemetry stay on in perf-sensitive runs.
TEST(SimulatorAlloc, TelemetrySamplerTicksDoNotAllocate) {
  using daris::metrics::TimeSeries;
  Simulator sim;
  double gauge = 0.0;
  TimeSeries series;
  series.add_track("gauge_a", -1, [&gauge] { return gauge; });
  series.add_track("gauge_b", 0, [&gauge] { return gauge * 2.0; });
  series.start(sim, daris::common::from_us(100.0),
               daris::common::from_ms(100.0));  // 1001 ticks
  const std::size_t before = g_allocations;
  sim.run();
  const std::size_t after = g_allocations;
  EXPECT_EQ(after - before, 0u)
      << "sampler ticks must only write pre-sized rings and re-arm in place";
  EXPECT_EQ(series.size(), 1001u);
}

// Event-log appends inside the reservation are plain POD pushes.
TEST(SimulatorAlloc, EventLogAppendsWithinReservationDoNotAllocate) {
  using daris::metrics::EventCause;
  using daris::metrics::EventKind;
  daris::metrics::EventLog log;
  log.reserve(kBurst);
  const std::size_t before = g_allocations;
  for (int i = 0; i < kBurst; ++i) {
    log.append(i, EventKind::kAdmit, EventCause::kHomeAdmit, i & 3, -1, i);
  }
  const std::size_t after = g_allocations;
  EXPECT_EQ(after - before, 0u)
      << "appends within the reservation must be allocation-free";
  EXPECT_EQ(log.size(), static_cast<std::size_t>(kBurst));
}

// Sharded engine steady state: self-re-arming device-local actors on every
// shard plus a control timer that cross-schedules onto a rotating shard each
// window — the fleet's event shape in miniature. After a warm-up horizon
// sizes every shard's slab pool and heap (and the control heap), further
// windows perform zero allocations on ANY thread: the dispatch protocol is
// a couple of atomics and a parked-pool wake, never a heap touch.
// g_allocations is atomic precisely so the pool workers' (absence of)
// allocations is visible here.
TEST(SimulatorAlloc, ShardedSteadyStateDoesNotAllocate) {
  constexpr int kShards = 4;
  constexpr common::Time kLocalPeriod = 10'000;    // ns
  constexpr common::Time kControlPeriod = 50'000;  // ns

  struct LocalActor {
    Simulator* sim = nullptr;
    std::uint64_t* sink = nullptr;
    void arm(common::Time when) {
      sim->schedule_at(when, [this] {
        ++*sink;
        arm(sim->now() + kLocalPeriod);
      });
    }
  };
  struct ControlActor {
    ShardedSimulator* sharded = nullptr;
    std::uint64_t* sinks = nullptr;
    int next = 0;
    void arm(common::Time when) {
      sharded->control().schedule_at(when, [this] {
        const int g = next;
        next = (next + 1) % kShards;
        std::uint64_t* sink = sinks + g;
        sharded->device_sim(g).schedule_at(
            sharded->now() + kLocalPeriod / 2, [sink] { ++*sink; });
        arm(sharded->now() + kControlPeriod);
      });
    }
  };

  ShardedSimulator sharded(kShards, 2);  // 2 lanes: one real pool worker
  ASSERT_EQ(sharded.threads(), 2);
  std::uint64_t local_sinks[kShards] = {};
  std::uint64_t cross_sinks[kShards] = {};
  LocalActor locals[kShards];
  for (int g = 0; g < kShards; ++g) {
    locals[g] = {&sharded.shard(g), &local_sinks[g]};
    locals[g].arm(kLocalPeriod);
  }
  ControlActor control{&sharded, cross_sinks};
  control.arm(kControlPeriod);

  sharded.run_until(common::from_ms(1.0));  // warm-up sizes pools and heaps
  const std::size_t before = g_allocations;
  sharded.run_until(common::from_ms(3.0));
  const std::size_t after = g_allocations;
  EXPECT_EQ(after - before, 0u)
      << "sharded steady-state windows must not allocate on any lane";
  for (int g = 0; g < kShards; ++g) {
    EXPECT_GT(local_sinks[g], 200u) << "shard " << g;
    EXPECT_GT(cross_sinks[g], 10u) << "shard " << g;
  }
}

TEST(SimulatorAlloc, OversizedCapturesFallBackToTheHeap) {
  Simulator sim;
  std::uint64_t sink = 0;
  // 56 bytes of captures: one past the inline limit, to prove the counter
  // actually observes the engine (and that big captures still work).
  const std::uint64_t a = 1, b = 2, c = 3, d = 4, e = 5, f = 6;
  const std::size_t before = g_allocations;
  sim.schedule_after(1, [a, b, c, d, e, f, &sink] {
    sink += a + b + c + d + e + f;
  });
  const std::size_t after = g_allocations;
  EXPECT_GT(after - before, 0u);
  sim.run();
  EXPECT_EQ(sink, 21u);
}

}  // namespace
}  // namespace daris::sim
