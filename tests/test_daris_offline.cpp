// Offline AFET profiling and Algorithm 1 context population.
#include <gtest/gtest.h>

#include "daris/offline.h"
#include "dnn/calibration.h"
#include "daris/scheduler.h"
#include "dnn/zoo.h"
#include "gpusim/gpu.h"
#include "sim/simulator.h"

namespace daris::rt {
namespace {

TEST(OfflineAfet, ProfilesEveryModelAndStage) {
  const gpusim::GpuSpec spec;
  SchedulerConfig cfg;
  cfg.policy = Policy::kMps;
  cfg.num_contexts = 4;
  cfg.oversubscription = 4.0;
  const auto r18 = dnn::compiled_model(dnn::ModelKind::kResNet18, 1, spec);
  const auto unet = dnn::compiled_model(dnn::ModelKind::kUNet, 1, spec);
  const AfetResult afet = profile_afet(spec, cfg, {&r18, &unet}, 8);
  const auto& a = afet.for_model(&r18);
  const auto& b = afet.for_model(&unet);
  ASSERT_EQ(a.size(), r18.stage_count());
  ASSERT_EQ(b.size(), unet.stage_count());
  for (double v : a) EXPECT_GT(v, 0.0);
  for (double v : b) EXPECT_GT(v, 0.0);
}

TEST(OfflineAfet, FullLoadIsSlowerThanAlone) {
  // AFET is a *pessimistic* initial estimate: under full colocation, a
  // stage takes longer than the single-tenant analytic latency would say.
  gpusim::GpuSpec spec;
  spec.jitter_cv = 0.0;
  SchedulerConfig cfg;
  cfg.policy = Policy::kMps;
  cfg.num_contexts = 6;
  cfg.oversubscription = 6.0;
  const auto r18 = dnn::compiled_model(dnn::ModelKind::kResNet18, 1, spec);
  const AfetResult afet = profile_afet(spec, cfg, {&r18}, 8);
  double afet_total = 0.0;
  for (double v : afet.for_model(&r18)) afet_total += v;
  const double alone = dnn::analytic_sequential_latency_us(r18, spec);
  EXPECT_GT(afet_total, 1.5 * alone);
}

TEST(OfflineAfet, DeterministicAcrossRuns) {
  const gpusim::GpuSpec spec;
  SchedulerConfig cfg;
  cfg.policy = Policy::kStr;
  cfg.streams_per_context = 3;
  const auto m = dnn::compiled_model(dnn::ModelKind::kResNet18, 1, spec);
  const AfetResult a = profile_afet(spec, cfg, {&m}, 8, 99);
  const AfetResult b = profile_afet(spec, cfg, {&m}, 8, 99);
  EXPECT_EQ(a.for_model(&m), b.for_model(&m));
}

class Algorithm1Test : public ::testing::Test {
 protected:
  void make_scheduler(int contexts) {
    gpu_ = std::make_unique<gpusim::Gpu>(sim_, spec_);
    SchedulerConfig cfg;
    cfg.policy = Policy::kMps;
    cfg.num_contexts = contexts;
    cfg.oversubscription = contexts;
    sched_ = std::make_unique<Scheduler>(sim_, *gpu_, cfg, nullptr);
  }

  int add_task(Priority p, double period_ms,
               const std::vector<double>& afet_us) {
    TaskSpec spec;
    spec.model = dnn::ModelKind::kResNet18;
    spec.period = common::from_ms(period_ms);
    spec.relative_deadline = spec.period;
    spec.priority = p;
    const int id = sched_->add_task(spec, model_.get());
    sched_->set_afet(id, afet_us);
    return id;
  }

  void SetUp() override {
    model_ = std::make_unique<dnn::CompiledModel>(
        dnn::compiled_model(dnn::ModelKind::kResNet18, 1, spec_));
  }

  sim::Simulator sim_;
  gpusim::GpuSpec spec_;
  std::unique_ptr<gpusim::Gpu> gpu_;
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<dnn::CompiledModel> model_;
};

TEST_F(Algorithm1Test, BalancesUtilizationAcrossContexts) {
  make_scheduler(3);
  // Six identical HP tasks across three contexts -> two per context.
  for (int i = 0; i < 6; ++i) {
    add_task(Priority::kHigh, 33.3, {500, 500, 500, 500});
  }
  sched_->run_offline_phase();
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(sched_->hp_utilization(c), 2.0 * 2000.0 / 33300.0, 1e-6);
  }
}

TEST_F(Algorithm1Test, HpAssignedBeforeLp) {
  make_scheduler(2);
  // One heavy HP task and one light LP task: both land on the least-
  // utilised context in order HP first, so they end up separated.
  const int hp = add_task(Priority::kHigh, 33.3, {4000, 4000, 4000, 4000});
  const int lp = add_task(Priority::kLow, 33.3, {100, 100, 100, 100});
  sched_->run_offline_phase();
  EXPECT_NE(sched_->task(hp).context(), sched_->task(lp).context());
}

TEST_F(Algorithm1Test, HeavyTasksSpreadOut) {
  make_scheduler(2);
  add_task(Priority::kHigh, 33.3, {3000, 3000, 3000, 3000});
  add_task(Priority::kHigh, 33.3, {3000, 3000, 3000, 3000});
  add_task(Priority::kLow, 33.3, {1000, 1000, 1000, 1000});
  add_task(Priority::kLow, 33.3, {1000, 1000, 1000, 1000});
  sched_->run_offline_phase();
  // Each context gets one HP and one LP task.
  EXPECT_NEAR(sched_->hp_utilization(0), sched_->hp_utilization(1), 1e-9);
}

TEST_F(Algorithm1Test, UtilizationUsesAfetBeforeMeasurements) {
  make_scheduler(1);
  const int id = add_task(Priority::kHigh, 10.0, {250, 250, 250, 250});
  // u = 1000us / 10000us = 0.1 (Eq. 10 with t = 0).
  EXPECT_NEAR(sched_->task(id).utilization(), 0.1, 1e-9);
}

}  // namespace
}  // namespace daris::rt
