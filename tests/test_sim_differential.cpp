// Randomized differential test of the event engine.
//
// A reference model — std::priority_queue with lazy cancellation via an id
// map, the structure the pooled engine replaced — is driven with the same
// random schedule/cancel/reschedule/run_until sequence as sim::Simulator.
// Firing order, firing times, executed counts, pending counts, and the
// success/failure of every cancel/reschedule must match exactly. The
// reference implements the documented contract directly (clamp-to-now,
// fresh tie-break sequence on reschedule, stale handles rejected), so any
// divergence is an engine bug, not a fixture artifact.
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"

namespace daris::sim {
namespace {

/// Reference engine: lazy-cancelled priority queue keyed by (when, seq).
class ReferenceSim {
 public:
  common::Time now() const { return now_; }

  std::uint64_t schedule_at(common::Time when, int tag) {
    if (when < now_) when = now_;
    const std::uint64_t id = next_id_++;
    const std::uint64_t seq = next_seq_++;
    live_[id] = Entry{when, seq, tag};
    queue_.push(QueueEntry{when, seq, id});
    return id;
  }

  bool cancel(std::uint64_t id) { return live_.erase(id) != 0; }

  bool reschedule(std::uint64_t id, common::Time when) {
    auto it = live_.find(id);
    if (it == live_.end()) return false;
    if (when < now_) when = now_;
    it->second.when = when;
    it->second.seq = next_seq_++;  // fresh tie-break slot, like the engine
    queue_.push(QueueEntry{when, it->second.seq, id});
    return true;
  }

  /// Runs to `deadline`, appending (tag, time) for every firing.
  std::size_t run_until(common::Time deadline,
                        std::vector<std::pair<int, common::Time>>& log) {
    std::size_t executed = 0;
    while (!queue_.empty()) {
      const QueueEntry top = queue_.top();
      auto it = live_.find(top.id);
      const bool stale = it == live_.end() || it->second.seq != top.seq;
      if (stale) {  // cancelled or superseded by a reschedule
        queue_.pop();
        continue;
      }
      if (top.when > deadline) break;
      queue_.pop();
      now_ = top.when;
      log.emplace_back(it->second.tag, now_);
      live_.erase(it);
      ++executed;
    }
    if (now_ < deadline) now_ = deadline;
    return executed;
  }

  std::size_t pending() const { return live_.size(); }

 private:
  struct Entry {
    common::Time when;
    std::uint64_t seq;
    int tag;
  };
  struct QueueEntry {
    common::Time when;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  common::Time now_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  std::unordered_map<std::uint64_t, Entry> live_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue_;
};

TEST(SimulatorDifferential, RandomOpSequencesMatchReferenceModel) {
  constexpr int kRuns = 20;
  constexpr int kOpsPerRun = 4000;
  for (int run = 0; run < kRuns; ++run) {
    std::mt19937_64 rng(0xD1FFu + static_cast<std::uint64_t>(run));
    Simulator sim;
    ReferenceSim ref;
    std::vector<std::pair<int, common::Time>> sim_log;
    std::vector<std::pair<int, common::Time>> ref_log;
    // Every handle ever issued, fired/cancelled ones included, so the random
    // cancels and reschedules also exercise stale-handle rejection.
    std::vector<std::pair<EventHandle, std::uint64_t>> handles;
    int next_tag = 0;

    for (int op = 0; op < kOpsPerRun; ++op) {
      const std::uint64_t dice = rng() % 100;
      // Mix of near-past, present, and future times around the moving clock.
      const common::Time when =
          sim.now() + static_cast<common::Time>(rng() % 2000) - 100;
      if (dice < 45 || handles.empty()) {
        const int tag = next_tag++;
        EventHandle h = sim.schedule_at(
            when, [tag, &sim_log, &sim] { sim_log.emplace_back(tag, sim.now()); });
        handles.emplace_back(h, ref.schedule_at(when, tag));
      } else if (dice < 60) {
        const auto& [h, ref_id] = handles[rng() % handles.size()];
        sim.cancel(h);
        ref.cancel(ref_id);
      } else if (dice < 85) {
        const auto& [h, ref_id] = handles[rng() % handles.size()];
        EXPECT_EQ(sim.reschedule(h, when), ref.reschedule(ref_id, when));
      } else {
        const common::Time deadline =
            sim.now() + static_cast<common::Time>(rng() % 3000);
        const std::size_t sim_n = sim.run_until(deadline);
        const std::size_t ref_n = ref.run_until(deadline, ref_log);
        ASSERT_EQ(sim_n, ref_n) << "run " << run << " op " << op;
        ASSERT_EQ(sim.now(), ref.now());
      }
      ASSERT_EQ(sim.pending(), ref.pending()) << "run " << run << " op " << op;
    }

    // Drain both engines completely.
    const std::size_t sim_rest = sim.run_until(common::kTimeInfinity);
    const std::size_t ref_rest = ref.run_until(common::kTimeInfinity, ref_log);
    EXPECT_EQ(sim_rest, ref_rest);
    EXPECT_EQ(sim.pending(), 0u);
    EXPECT_EQ(ref.pending(), 0u);
    ASSERT_EQ(sim_log, ref_log) << "divergent firing order in run " << run;
  }
}

}  // namespace
}  // namespace daris::sim
