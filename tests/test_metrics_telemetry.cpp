// Telemetry layer (docs/OBSERVABILITY.md): the time-series sampler's
// cadence, ring, and JSON shape; the structured event log's fold back to
// RoutingCounters — pinned against the live collector counters over a real
// overloaded cluster run, the property that makes the log the source of
// truth; and the end-to-end capture run_cluster wires up.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "experiments/cluster_runner.h"
#include "metrics/eventlog.h"
#include "metrics/timeseries.h"
#include "sim/simulator.h"
#include "workload/taskset.h"

namespace daris::metrics {
namespace {

TEST(TimeSeries, SamplesEveryPeriodOverTheHorizon) {
  sim::Simulator sim;
  double gauge = 0.0;
  TimeSeries ts;
  const int track = ts.add_track("g", -1, [&gauge] { return gauge; });
  sim.schedule_at(common::from_us(55.0), [&gauge] { gauge = 1.0; });
  ts.start(sim, common::from_us(10.0), common::from_us(100.0));
  sim.run();
  // Ticks at 0, 10, ..., 100 inclusive.
  ASSERT_EQ(ts.size(), 11u);
  EXPECT_EQ(ts.stamp(0), 0);
  EXPECT_EQ(ts.stamp(10), common::from_us(100.0));
  // The probe reads live state: samples before the t=55 mutation see 0.
  EXPECT_DOUBLE_EQ(ts.value(track, 5), 0.0);
  EXPECT_DOUBLE_EQ(ts.value(track, 6), 1.0);
}

TEST(TimeSeries, RingOverwritesOldestWhenOutrun) {
  sim::Simulator sim;
  TimeSeries ts;
  ts.add_track("g", -1, [] { return 0.0; });
  ts.start(sim, common::from_us(10.0), common::from_us(100.0));
  sim.run();
  const std::size_t held = ts.size();  // 11 of capacity 12
  ts.sample_now(common::from_us(110.0));
  ts.sample_now(common::from_us(120.0));
  EXPECT_EQ(ts.size(), held + 1) << "ring is full; the oldest sample went";
  EXPECT_EQ(ts.stamp(0), common::from_us(10.0));
  EXPECT_EQ(ts.stamp(ts.size() - 1), common::from_us(120.0));
}

TEST(TimeSeries, StopIsIdempotentAndKeepsSamples) {
  sim::Simulator sim;
  TimeSeries ts;
  ts.add_track("g", -1, [] { return 2.0; });
  ts.start(sim, common::from_us(10.0), common::from_us(50.0));
  sim.run();
  const std::size_t held = ts.size();
  ts.stop();
  ts.stop();
  EXPECT_EQ(ts.size(), held);
}

TEST(TimeSeries, AppendJsonShape) {
  TimeSeries ts;
  ts.add_track("gpu/util", 0, [] { return 0.5; });
  ts.sample_now(common::from_us(10.0));
  ts.sample_now(common::from_us(20.0));
  std::string json;
  ts.append_json(&json);
  EXPECT_NE(json.find("\"period_us\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"gpu/util\", \"device\": 0"),
            std::string::npos);
  EXPECT_NE(json.find("[10, 0.5], [20, 0.5]"), std::string::npos);
}

TEST(EventLogFold, MirrorsLiveCounterSemantics) {
  EventLog log;
  log.append(0, EventKind::kAdmit, EventCause::kHomeAdmit, 0, -1, 1);
  log.append(1, EventKind::kReject, EventCause::kInfeasible, 0, -1, 2);
  log.append(2, EventKind::kReject, EventCause::kBacklog, 0, -1, 3);
  log.append(3, EventKind::kReject, EventCause::kPeerReject, 1, -1, 4);
  log.append(4, EventKind::kMigrate, EventCause::kSpill, 0, 1, 5);
  log.append(5, EventKind::kTransfer, EventCause::kColdModel, 1, -1, 5, 44.5);
  // Lifecycle records carry no routing counts.
  log.append(6, EventKind::kFault, EventCause::kFailStop, 1, -1, -1, 3.0);
  log.append(7, EventKind::kRehome, EventCause::kNone, 1, 0, 5);
  log.append(8, EventKind::kDrain, EventCause::kScaleDown, 0);
  const auto fold = log.fold_routing(2);
  ASSERT_EQ(fold.size(), 2u);
  EXPECT_EQ(fold[0].routed, 4u);  // admit + infeasible + backlog + migrate
  EXPECT_EQ(fold[0].home_admits, 1u);
  EXPECT_EQ(fold[0].infeasible, 1u);
  EXPECT_EQ(fold[0].dropped, 1u);  // backlog guard, NOT the infeasible shed
  EXPECT_EQ(fold[0].migrated_out, 1u);
  EXPECT_EQ(fold[0].migrated_in, 0u);
  EXPECT_EQ(fold[1].routed, 1u);
  EXPECT_EQ(fold[1].dropped, 1u);
  EXPECT_EQ(fold[1].migrated_in, 1u);
  EXPECT_EQ(fold[1].transfers_in, 1u);
  EXPECT_DOUBLE_EQ(fold[1].transferred_mb, 44.5);
}

TEST(EventLogFold, OutOfRangeDevicesAreIgnored) {
  EventLog log;
  log.append(0, EventKind::kAdmit, EventCause::kHomeAdmit, 5);
  log.append(1, EventKind::kMigrate, EventCause::kSpill, 0, 9, 2);
  const auto fold = log.fold_routing(1);
  ASSERT_EQ(fold.size(), 1u);
  EXPECT_EQ(fold[0].routed, 1u);
  EXPECT_EQ(fold[0].migrated_out, 1u);  // the in-range half still counts
  EXPECT_TRUE(log.fold_routing(0).empty());
}

/// An overloaded heterogeneous-arrival fleet with telemetry on. Zero-delay
/// transfers so no transfer is in flight when the horizon cuts the run —
/// the precondition for exact fold == live equality.
exp::ClusterResult telemetry_run() {
  exp::ClusterConfig cfg;
  cfg.taskset = workload::replicated_taskset(workload::mixed_taskset(), 3);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 4;
  cfg.sched.oversubscription = 4.0;
  cfg.num_gpus = 3;
  cfg.arrivals = exp::ArrivalMode::kPoisson;
  cfg.rate_scale = 2.5;  // overload: forces rejects, spills, migrations
  cfg.duration_s = 1.0;
  cfg.warmup_s = 0.25;
  cfg.transfer_us_per_mb = 0.0;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_period_s = 0.01;
  return exp::run_cluster(cfg);
}

TEST(TelemetryCluster, FoldedEventLogMatchesLiveRoutingCounters) {
  const exp::ClusterResult r = telemetry_run();
  ASSERT_FALSE(r.events.empty());
  const auto fold = r.events.fold_routing(static_cast<int>(r.per_gpu.size()));
  ASSERT_EQ(fold.size(), r.per_gpu.size());
  std::uint64_t migrations = 0;
  for (std::size_t g = 0; g < fold.size(); ++g) {
    const RoutingCounters& live = r.per_gpu[g].routing;
    EXPECT_EQ(fold[g].routed, live.routed) << "gpu " << g;
    EXPECT_EQ(fold[g].home_admits, live.home_admits) << "gpu " << g;
    EXPECT_EQ(fold[g].migrated_in, live.migrated_in) << "gpu " << g;
    EXPECT_EQ(fold[g].migrated_out, live.migrated_out) << "gpu " << g;
    EXPECT_EQ(fold[g].dropped, live.dropped) << "gpu " << g;
    EXPECT_EQ(fold[g].infeasible, live.infeasible) << "gpu " << g;
    EXPECT_EQ(fold[g].transfers_in, live.transfers_in) << "gpu " << g;
    EXPECT_DOUBLE_EQ(fold[g].transferred_mb, live.transferred_mb)
        << "gpu " << g;
    migrations += fold[g].migrated_in;
  }
  EXPECT_GT(migrations, 0u)
      << "the overload config must actually exercise the migration records";
}

TEST(TelemetryCluster, CaptureCarriesDocumentedTracksAndProfile) {
  const exp::ClusterResult r = telemetry_run();
  ASSERT_GT(r.timeseries.track_count(), 0);
  ASSERT_GT(r.timeseries.size(), 0u);
  std::set<std::string> names;
  for (int t = 0; t < r.timeseries.track_count(); ++t) {
    names.insert(r.timeseries.track_name(t));
  }
  for (const char* expected :
       {"gpu/util", "gpu/queue_hp", "gpu/queue_lp", "gpu/hot_models",
        "gpu/transfers_in", "gpu/health", "fleet/backlog", "fleet/hp_dmr_w",
        "fleet/lp_dmr_w", "fleet/jobs_lost"}) {
    EXPECT_TRUE(names.count(expected) == 1) << "missing track " << expected;
  }
  EXPECT_GT(r.profile.events_executed, 0u);
  EXPECT_GT(r.profile.pool_slots, 0u);
  EXPECT_GT(r.profile.solver_flushes, 0u);
  EXPECT_GE(r.profile.wall_ms_total, r.profile.wall_ms_run);
}

TEST(TelemetryCluster, DisabledByDefaultLeavesCaptureEmpty) {
  exp::ClusterConfig cfg;
  cfg.taskset = workload::replicated_taskset(workload::mixed_taskset(), 2);
  cfg.num_gpus = 2;
  cfg.duration_s = 0.5;
  cfg.warmup_s = 0.1;
  const exp::ClusterResult r = exp::run_cluster(cfg);
  EXPECT_EQ(r.timeseries.track_count(), 0);
  EXPECT_TRUE(r.events.empty());
  EXPECT_GT(r.profile.events_executed, 0u)
      << "the self-profiler is unconditional";
}

}  // namespace
}  // namespace daris::metrics
