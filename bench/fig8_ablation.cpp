// Fig. 8: DARIS module contributions on the ResNet18 task set at the best
// configuration (6x1 OS 6). Five scenarios:
//   DARIS      — everything on
//   No Staging — jobs enqueued eagerly as whole units (no preemption points)
//   No Last    — last stages of tasks not prioritised
//   No Prior   — no boost after a missed virtual deadline
//   No Fixed   — no fixed inter-class levels (one global EDF band)
//
// Paper: HP responses 5-12 ms vs LP 5-27.5 ms (~2.5x faster); No Staging
// drops throughput 33% and yields 5.5%/22.5% HP/LP DMR; No Last raises HP
// worst-case response 38%; No Prior raises average responses; No Fixed
// gives ~2.5% DMR for both classes.
#include <cstdio>

#include "common/table.h"
#include "experiments/runner.h"

using namespace daris;

namespace {
exp::RunResult run_scenario(bool staging, bool last, bool prior, bool fixed) {
  exp::RunConfig cfg;
  cfg.taskset = workload::table2_taskset(dnn::ModelKind::kResNet18);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 6;
  cfg.sched.oversubscription = 6.0;
  cfg.sched.staging = staging;
  cfg.sched.prioritize_last_stage = last;
  cfg.sched.boost_after_miss = prior;
  cfg.sched.fixed_levels = fixed;
  cfg.duration_s = 6.0;
  return exp::run_daris(cfg);
}
}  // namespace

int main() {
  std::printf("== Fig. 8: DARIS module contributions (ResNet18, 6x1 OS6) ==\n\n");

  struct Scenario {
    const char* name;
    bool staging, last, prior, fixed;
  };
  const Scenario scenarios[] = {
      {"DARIS", true, true, true, true},
      {"No Staging", false, true, true, true},
      {"No Last", true, false, true, true},
      {"No Prior", true, true, false, true},
      {"No Fixed", true, true, true, false},
  };

  common::Table table({"scenario", "norm JPS", "HP DMR", "LP DMR",
                       "HP resp p50/p99/max (ms)", "LP resp p50/p99/max (ms)",
                       "LP/HP resp ratio"});
  double daris_jps = 0.0;
  exp::RunResult daris_result;
  for (const auto& s : scenarios) {
    const exp::RunResult r = run_scenario(s.staging, s.last, s.prior, s.fixed);
    if (daris_jps == 0.0) {
      daris_jps = r.total_jps;
      daris_result = r;
    }
    char hp[64], lp[64];
    std::snprintf(hp, sizeof(hp), "%.1f / %.1f / %.1f",
                  r.hp.response_ms.percentile(50),
                  r.hp.response_ms.percentile(99), r.hp.response_ms.max());
    std::snprintf(lp, sizeof(lp), "%.1f / %.1f / %.1f",
                  r.lp.response_ms.percentile(50),
                  r.lp.response_ms.percentile(99), r.lp.response_ms.max());
    table.add_row({s.name, common::fmt_double(r.total_jps / daris_jps, 3),
                   common::fmt_percent(r.hp.dmr(), 2),
                   common::fmt_percent(r.lp.dmr(), 2), hp, lp,
                   common::fmt_double(r.lp.response_ms.percentile(50) /
                                          r.hp.response_ms.percentile(50),
                                      2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("paper expectations:\n");
  std::printf("  DARIS:      HP 5-12 ms, LP 5-27.5 ms (HP ~2.5x faster)\n");
  std::printf("  No Staging: throughput -33%%, HP DMR 5.5%%, LP DMR 22.5%%, "
              "responses rise\n");
  std::printf("  No Last:    HP worst-case response +38%%, throughput ~flat\n");
  std::printf("  No Prior:   average responses rise for all tasks\n");
  std::printf("  No Fixed:   ~2.5%% DMR for both priorities\n");
  return 0;
}
