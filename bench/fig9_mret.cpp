// Fig. 9: actual execution time vs MRET prediction for one ResNet18 task,
// under the best-throughput configuration (6x1 OS 6) and the worst-DMR
// configuration (3x3 OS 1); plus the ws sweep motivating ws = 5.
//
// Paper: with 6x1 OS6 MRET tracks execution time closely; with 3x3 OS1
// execution time often exceeds the MRET prediction. Smaller ws increases
// DMR, larger ws reduces throughput.
#include <cstdio>

#include "common/table.h"
#include "experiments/runner.h"

using namespace daris;

namespace {
exp::RunResult run_cfg(rt::Policy policy, int nc, int ns, double os, int ws,
                       bool trace) {
  exp::RunConfig cfg;
  cfg.taskset = workload::table2_taskset(dnn::ModelKind::kResNet18);
  cfg.sched.policy = policy;
  cfg.sched.num_contexts = nc;
  cfg.sched.streams_per_context = ns;
  cfg.sched.oversubscription = os;
  cfg.sched.mret_window = ws;
  cfg.stage_trace = trace;
  cfg.duration_s = 4.0;
  return exp::run_daris(cfg);
}

void trace_report(const char* name, const exp::RunResult& r) {
  // Execution-vs-prediction statistics over all stage executions of task 0
  // (an HP ResNet18 task), mirroring the figure's single-task trace.
  std::uint64_t n = 0, over = 0;
  double sum_ratio = 0.0, max_over = 0.0;
  std::printf("-- %s: task 0 stage-0 trace (first 20 samples) --\n", name);
  std::printf("   %-8s %-12s %-12s\n", "sample", "exec (us)", "MRET (us)");
  int shown = 0;
  for (const auto& ev : r.stage_trace) {
    if (ev.task_id != 0) continue;
    if (ev.stage == 0 && shown < 20) {
      std::printf("   %-8d %-12.0f %-12.0f%s\n", shown, ev.execution_us,
                  ev.mret_us, ev.execution_us > ev.mret_us ? "  <-- over" : "");
      ++shown;
    }
    ++n;
    sum_ratio += ev.execution_us / std::max(1.0, ev.mret_us);
    if (ev.execution_us > ev.mret_us) {
      ++over;
      max_over = std::max(max_over, ev.execution_us / ev.mret_us - 1.0);
    }
  }
  std::printf("   all stages of task 0: %llu samples, exec>MRET in %.1f%%, "
              "mean exec/MRET %.2f, worst overshoot +%.0f%%\n\n",
              static_cast<unsigned long long>(n),
              n ? 100.0 * static_cast<double>(over) / static_cast<double>(n)
                : 0.0,
              n ? sum_ratio / static_cast<double>(n) : 0.0, 100.0 * max_over);
}
}  // namespace

int main() {
  std::printf("== Fig. 9: execution time and MRET of ResNet18 (ws = 5) ==\n\n");

  const exp::RunResult best = run_cfg(rt::Policy::kMps, 6, 1, 6.0, 5, true);
  trace_report("6x1 OS6 (best throughput)", best);
  const exp::RunResult worst = run_cfg(rt::Policy::kMpsStr, 3, 3, 1.0, 5, true);
  trace_report("3x3 OS1 (worst DMR)", worst);
  std::printf("paper: MRET accurate in 6x1 OS6; execution often exceeds MRET "
              "in 3x3 OS1\n(overshoot share above should be clearly larger "
              "for 3x3 OS1).\n\n");

  std::printf("== window-size sweep (motivating ws = 5) ==\n\n");
  common::Table table({"ws", "JPS", "LP DMR", "LP rejected"});
  for (int ws : {1, 2, 3, 5, 8, 12, 20}) {
    const exp::RunResult r = run_cfg(rt::Policy::kMps, 6, 1, 6.0, ws, false);
    table.add_row({common::fmt_int(ws), common::fmt_double(r.total_jps, 0),
                   common::fmt_percent(r.lp.dmr(), 2),
                   common::fmt_percent(r.lp.rejection_rate(), 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("paper: smaller ws increases DMR; larger ws reduces throughput "
              "(more pessimistic admission).\n");
  return 0;
}
