// Microbenchmarks of DARIS scheduler hot paths (google-benchmark): stage
// queue operations, MRET updates, and end-to-end scheduling cost per job.
#include <benchmark/benchmark.h>

#include "daris/mret.h"
#include "daris/stage_queue.h"
#include "experiments/runner.h"
#include "micro_common.h"

using namespace daris;

namespace {

void BM_StageQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rt::StageQueue q;
    for (int i = 0; i < n; ++i) {
      rt::ReadyStage s;
      s.level = i % 8;
      s.deadline = (i * 977) % 100000;
      q.push(s);
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_MretRecordAndQuery(benchmark::State& state) {
  rt::MretEstimator m(4, 5);
  std::uint64_t i = 0;
  for (auto _ : state) {
    m.record(i % 4, static_cast<double>(500 + (i * 13) % 200));
    benchmark::DoNotOptimize(m.total_mret_us());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_VirtualDeadlines(benchmark::State& state) {
  rt::MretEstimator m(4, 5);
  for (std::size_t j = 0; j < 4; ++j) m.record(j, 400.0 + 100.0 * j);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.virtual_deadlines(common::from_ms(33.3)));
  }
  state.SetItemsProcessed(state.iterations());
}

/// End-to-end cost: simulated jobs scheduled per wall second on the
/// ResNet18 task set at the paper's peak configuration.
void BM_EndToEndScheduling(benchmark::State& state) {
  for (auto _ : state) {
    exp::RunConfig cfg;
    cfg.taskset = workload::table2_taskset(dnn::ModelKind::kResNet18);
    cfg.sched.policy = rt::Policy::kMps;
    cfg.sched.num_contexts = 6;
    cfg.sched.oversubscription = 6.0;
    cfg.duration_s = 1.0;
    cfg.warmup_s = 0.0;
    const exp::RunResult r = exp::run_daris(cfg);
    state.counters["sim_jobs"] = static_cast<double>(r.hp.completed +
                                                     r.lp.completed);
  }
}

}  // namespace

BENCHMARK(BM_StageQueuePushPop)->Arg(64)->Arg(4096);
BENCHMARK(BM_MretRecordAndQuery);
BENCHMARK(BM_VirtualDeadlines);
BENCHMARK(BM_EndToEndScheduling)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return daris::bench::run_benchmarks_with_json_out(
      argc, argv, "BENCH_micro_scheduler.json");
}
