// Fig. 7: scheduling results for the mixed task set (all three DNN types,
// one third of each Table II set). Paper expectation: as with the
// per-model sets, MPS achieves the highest throughput while STR offers the
// most reliable deadline performance.
#include <cstdio>

#include "experiments/grid.h"

using namespace daris;

int main() {
  std::printf("== Fig. 7: scheduling results for the mixed task set ==\n\n");
  const auto taskset = workload::mixed_taskset();
  std::printf("task set: %d HP + %d LP tasks, %.0f JPS aggregate demand\n\n",
              taskset.count(common::Priority::kHigh),
              taskset.count(common::Priority::kLow), taskset.demand_jps());

  const auto results = exp::run_grid(taskset, exp::paper_grid());
  // No single-model upper baseline exists for a mixed set; normalise
  // against the best measured configuration instead.
  const exp::GridResult* best = exp::best_throughput(results);
  std::printf("%s\n",
              exp::render_figure_table(results, 0.0, best->result.total_jps)
                  .c_str());

  double best_jps[3] = {0, 0, 0};
  double worst_dmr[3] = {0, 0, 0};
  for (const auto& r : results) {
    const int p = static_cast<int>(r.point.sched.policy);
    best_jps[p] = std::max(best_jps[p], r.result.total_jps);
    worst_dmr[p] = std::max(worst_dmr[p], r.result.lp.dmr());
  }
  std::printf("policy summary (best JPS / worst LP DMR):\n");
  for (int p : {0, 1, 2}) {
    std::printf("  %-8s %6.0f JPS / %5.2f%%\n",
                exp::policy_name(static_cast<rt::Policy>(p)), best_jps[p],
                100.0 * worst_dmr[p]);
  }
  std::printf(
      "\npaper: MPS achieves the highest throughput; STR the most reliable\n"
      "deadline performance (matches iff MPS row above dominates JPS and the\n"
      "STR row has the smallest worst DMR).\n");
  return 0;
}
