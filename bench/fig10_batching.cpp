// Fig. 10: DARIS combined with batched inputs (batch sizes 4 / 2 / 8 for
// ResNet18 / UNet / InceptionV3).
//
// Paper: fewer parallel tasks suffice to exceed the upper baseline (decent
// throughput even at Np = 1-2); gains over the unbatched main experiment of
// up to 18% for UNet and at least 55% for InceptionV3; DMR improves, UNet's
// dropping under 0.5%.
#include <cstdio>

#include "baselines/batching_server.h"
#include "common/table.h"
#include "experiments/grid.h"

using namespace daris;

namespace {
int paper_batch(dnn::ModelKind kind) {
  switch (kind) {
    case dnn::ModelKind::kResNet18:
      return 4;
    case dnn::ModelKind::kUNet:
      return 2;
    case dnn::ModelKind::kInceptionV3:
      return 8;
    default:
      return 4;
  }
}
}  // namespace

int main() {
  const gpusim::GpuSpec spec = gpusim::GpuSpec::rtx2080ti();
  const dnn::ModelKind kinds[] = {dnn::ModelKind::kResNet18,
                                  dnn::ModelKind::kUNet,
                                  dnn::ModelKind::kInceptionV3};

  for (const auto kind : kinds) {
    const int batch = paper_batch(kind);
    const auto upper = baselines::best_batched_jps(kind, spec, 2.0);
    std::printf("== Fig. 10: %s with DARIS + batching (B = %d) ==\n\n",
                dnn::model_name(kind), batch);

    // Batched jobs: each job carries `batch` samples, so the per-task rate
    // drops by the batch factor while sample demand stays at 150%.
    workload::TaskSetSpec taskset = workload::table2_taskset(kind);
    for (auto& t : taskset.tasks) {
      t.period *= batch;
      t.relative_deadline = t.period;
    }

    common::Table table(
        {"config", "Np", "JPS (samples)", "vs upper", "gain vs unbatched",
         "HP DMR", "LP DMR"});
    const auto grid = exp::paper_grid(batch);
    const auto unbatched = exp::run_grid(workload::table2_taskset(kind),
                                         exp::paper_grid(1), 3.0);
    const auto results = exp::run_grid(taskset, grid, 3.0);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      const double jps = r.result.total_jps * batch;  // jobs -> samples
      const double base = unbatched[i].result.total_jps;
      table.add_row({r.point.label,
                     common::fmt_int(r.point.sched.parallelism()),
                     common::fmt_double(jps, 0),
                     common::fmt_percent(jps / upper.jps - 1.0, 1),
                     common::fmt_percent(jps / base - 1.0, 1),
                     common::fmt_percent(r.result.hp.dmr(), 2),
                     common::fmt_percent(r.result.lp.dmr(), 2)});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("upper baseline: %.0f JPS\n\n", upper.jps);
  }

  std::printf(
      "paper expectations: batching+DARIS exceeds the upper baseline with\n"
      "only 1-2 parallel tasks; gains over the unbatched main experiment up\n"
      "to 18%% (UNet) and at least 55%% (InceptionV3); DMR improves, with\n"
      "UNet's under 0.5%%.\n");
  return 0;
}
