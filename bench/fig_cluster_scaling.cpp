// Cluster scaling study: throughput and HP/LP deadline-miss rate vs. fleet
// size (1..8 GPUs) under each routing policy, on the mixed task set
// replicated per GPU so aggregate demand grows with the fleet (per-task
// rates, and so per-task utilisation, stay at the Table II operating point —
// 150% of one GPU's batching upper baseline).
//
// Expectations this driver checks:
//   - a 4-GPU fleet under least-utilization routing sustains >= 3.5x the
//     1-GPU total JPS with zero HP deadline misses;
//   - under skewed per-model demand (75% of demand on ResNet18, 8 GPUs)
//     model-affinity routing collapses, while hybrid affinity+spillover
//     matches or beats least-util throughput with zero HP misses;
//   - a heterogeneous fleet (2x/1x/1x/0.5x compute) serves demand in
//     proportion to device speed under score-normalised policies;
//   - every run is bit-identical across repeats with the same seed;
//   - open-loop overload (Poisson / bursty arrivals above nominal rate) is
//     absorbed by cross-GPU migration before jobs are dropped;
//   - under time-varying demand (a 4x flash crowd on a fleet packed for the
//     steady state) the self-healing rebalancer claims queued LP work for
//     warm peers and cuts drops versus the static hybrid baseline, with
//     transfer coalescing shipping strictly fewer weight MB than the same
//     rebalanced run with coalescing off.
//
// docs/CLUSTER.md is the routing-policy guide behind these tables.
#include <cstdio>
#include <utility>

#include "common/table.h"
#include "experiments/cluster_runner.h"
#include "metrics/trace_report.h"

using namespace daris;

namespace {

exp::ClusterConfig base_config(int num_gpus, cluster::RoutingPolicy routing) {
  exp::ClusterConfig cfg;
  cfg.taskset =
      workload::replicated_taskset(workload::mixed_taskset(), num_gpus);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 6;
  cfg.sched.oversubscription = 6.0;
  cfg.num_gpus = num_gpus;
  cfg.routing = routing;
  cfg.duration_s = 2.5;
  cfg.warmup_s = 0.5;
  return cfg;
}

double fleet_utilization(const exp::ClusterResult& r) {
  double u = 0.0;
  for (const auto& g : r.per_gpu) u += g.utilization;
  return r.per_gpu.empty() ? 0.0 : u / static_cast<double>(r.per_gpu.size());
}

bool identical(const exp::ClusterResult& a, const exp::ClusterResult& b) {
  return a.total_jps == b.total_jps && a.hp.completed == b.hp.completed &&
         a.lp.completed == b.lp.completed && a.hp.missed == b.hp.missed &&
         a.lp.missed == b.lp.missed &&
         a.cross_gpu_migrations == b.cross_gpu_migrations &&
         a.drops == b.drops && a.transfers == b.transfers &&
         a.transferred_mb == b.transferred_mb &&
         a.infeasible_rejects == b.infeasible_rejects &&
         a.intra_gpu_migrations == b.intra_gpu_migrations &&
         a.steals == b.steals && a.rehomes == b.rehomes &&
         a.coalesced_transfers == b.coalesced_transfers &&
         a.coalesced_mb_saved == b.coalesced_mb_saved &&
         a.transfer_cancels == b.transfer_cancels;
}

void add_policy_row(common::Table& table, const char* label,
                    const exp::ClusterResult& r) {
  table.add_row({label, common::fmt_double(r.total_jps, 0),
                 common::fmt_percent(r.hp.dmr(), 2),
                 common::fmt_percent(r.lp.dmr(), 2),
                 common::fmt_int(static_cast<long long>(
                     r.cross_gpu_migrations)),
                 common::fmt_int(static_cast<long long>(r.transfers)),
                 common::fmt_double(r.transferred_mb, 0),
                 common::fmt_int(static_cast<long long>(r.drops)),
                 common::fmt_percent(fleet_utilization(r), 0)});
}

}  // namespace

int main() {
  std::printf("== Cluster scaling: fleet size x routing policy ==\n\n");
  const cluster::RoutingPolicy policies[] = {
      cluster::RoutingPolicy::kRoundRobin,
      cluster::RoutingPolicy::kLeastUtilization,
      cluster::RoutingPolicy::kPowerOfTwo,
      cluster::RoutingPolicy::kModelAffinity,
      cluster::RoutingPolicy::kHybrid,
  };

  double single_gpu_jps = 0.0;
  double four_gpu_least_util_jps = 0.0;
  std::uint64_t four_gpu_hp_missed = 0;

  common::Table table({"GPUs", "routing", "JPS", "speedup", "HP DMR",
                       "LP DMR", "x-GPU migr", "drops", "util"});
  for (int n : {1, 2, 4, 8}) {
    for (const auto policy : policies) {
      const exp::ClusterResult r = exp::run_cluster(base_config(n, policy));
      if (n == 1 &&
          policy == cluster::RoutingPolicy::kLeastUtilization) {
        single_gpu_jps = r.total_jps;
      }
      if (n == 4 &&
          policy == cluster::RoutingPolicy::kLeastUtilization) {
        four_gpu_least_util_jps = r.total_jps;
        four_gpu_hp_missed = r.hp.missed;
      }
      const double speedup =
          single_gpu_jps > 0.0 ? r.total_jps / single_gpu_jps : 1.0;
      table.add_row({common::fmt_int(n), cluster::routing_policy_name(policy),
                     common::fmt_double(r.total_jps, 0),
                     common::fmt_double(speedup, 2) + "x",
                     common::fmt_percent(r.hp.dmr(), 2),
                     common::fmt_percent(r.lp.dmr(), 2),
                     common::fmt_int(static_cast<long long>(
                         r.cross_gpu_migrations)),
                     common::fmt_int(static_cast<long long>(r.drops)),
                     common::fmt_percent(fleet_utilization(r), 0)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  const double scaling = single_gpu_jps > 0.0
                             ? four_gpu_least_util_jps / single_gpu_jps
                             : 0.0;
  std::printf(
      "4-GPU least-util scaling: %.2fx over 1 GPU (target >= 3.5x): %s\n",
      scaling, scaling >= 3.5 ? "PASS" : "FAIL");
  std::printf("4-GPU least-util HP deadline misses: %llu (target 0): %s\n",
              static_cast<unsigned long long>(four_gpu_hp_missed),
              four_gpu_hp_missed == 0 ? "PASS" : "FAIL");

  // Determinism: the same seed and config must be bit-identical on repeat.
  {
    const auto cfg =
        base_config(4, cluster::RoutingPolicy::kLeastUtilization);
    const exp::ClusterResult a = exp::run_cluster(cfg);
    const exp::ClusterResult b = exp::run_cluster(cfg);
    std::printf("repeat run bit-identical: %s\n\n",
                identical(a, b) ? "PASS" : "FAIL");
  }

  // -------------------------------------------------------------------------
  // Skewed per-model demand: 75% of fleet demand on ResNet18 over 8 GPUs.
  // Pure model-affinity homes the whole heavy kind on one device and
  // collapses; hybrid keeps the affinity benefit but balances homes by
  // demand share and spills at runtime.
  std::printf("== Skewed per-model demand on 8 GPUs (75%% ResNet18) ==\n\n");
  double skew_least_util_jps = 0.0;
  double skew_least_util_lp_dmr = 0.0;
  double skew_hybrid_jps = 0.0;
  double skew_hybrid_lp_dmr = 0.0;
  std::uint64_t skew_hybrid_hp_missed = 0;
  std::uint64_t skew_affinity_hp_missed = 0;
  {
    common::Table skew({"routing", "JPS", "HP DMR", "LP DMR", "x-GPU migr",
                        "transfers", "MB moved", "drops", "util"});
    for (const auto policy : {cluster::RoutingPolicy::kModelAffinity,
                              cluster::RoutingPolicy::kLeastUtilization,
                              cluster::RoutingPolicy::kHybrid}) {
      exp::ClusterConfig cfg = base_config(8, policy);
      cfg.taskset = workload::skewed_taskset(8);
      const exp::ClusterResult r = exp::run_cluster(cfg);
      if (policy == cluster::RoutingPolicy::kLeastUtilization) {
        skew_least_util_jps = r.total_jps;
        skew_least_util_lp_dmr = r.lp.dmr();
      }
      if (policy == cluster::RoutingPolicy::kHybrid) {
        skew_hybrid_jps = r.total_jps;
        skew_hybrid_lp_dmr = r.lp.dmr();
        skew_hybrid_hp_missed = r.hp.missed;
      }
      if (policy == cluster::RoutingPolicy::kModelAffinity) {
        skew_affinity_hp_missed = r.hp.missed;
      }
      add_policy_row(skew, cluster::routing_policy_name(policy), r);
    }
    std::printf("%s\n", skew.to_string().c_str());
    std::printf(
        "hybrid vs least-util JPS: %.0f vs %.0f (match within 1%% or beat): "
        "%s\n",
        skew_hybrid_jps, skew_least_util_jps,
        skew_hybrid_jps >= 0.99 * skew_least_util_jps ? "PASS" : "FAIL");
    std::printf("hybrid vs least-util LP DMR: %.2f%% vs %.2f%% (<=): %s\n",
                100.0 * skew_hybrid_lp_dmr, 100.0 * skew_least_util_lp_dmr,
                skew_hybrid_lp_dmr <= skew_least_util_lp_dmr ? "PASS"
                                                             : "FAIL");
    std::printf("hybrid HP deadline misses: %llu (target 0): %s\n",
                static_cast<unsigned long long>(skew_hybrid_hp_missed),
                skew_hybrid_hp_missed == 0 ? "PASS" : "FAIL");
    std::printf("model-affinity collapse visible (HP misses %llu > 0): %s\n",
                static_cast<unsigned long long>(skew_affinity_hp_missed),
                skew_affinity_hp_missed > 0 ? "PASS" : "FAIL");

    exp::ClusterConfig cfg =
        base_config(8, cluster::RoutingPolicy::kHybrid);
    cfg.taskset = workload::skewed_taskset(8);
    const exp::ClusterResult a = exp::run_cluster(cfg);
    const exp::ClusterResult b = exp::run_cluster(cfg);
    std::printf("skewed repeat run bit-identical: %s\n\n",
                identical(a, b) ? "PASS" : "FAIL");
  }

  // -------------------------------------------------------------------------
  // Heterogeneous fleet: one flagship, two baseline cards, one half-size
  // card (4.5 GPUs' worth of compute). Placement scores normalise load by
  // compute scale, and hybrid's home packing gives each device a fair share
  // of demand proportional to its speed.
  std::printf(
      "== Heterogeneous fleet (2.0x / 1.0x / 1.0x / 0.5x compute) ==\n\n");
  {
    common::Table het({"routing", "JPS", "HP DMR", "LP DMR", "x-GPU migr",
                       "transfers", "MB moved", "drops", "util"});
    exp::ClusterResult hybrid_result;
    for (const auto policy : {cluster::RoutingPolicy::kRoundRobin,
                              cluster::RoutingPolicy::kLeastUtilization,
                              cluster::RoutingPolicy::kHybrid}) {
      exp::ClusterConfig cfg = base_config(4, policy);
      for (const double scale : {2.0, 1.0, 1.0, 0.5}) {
        cluster::GpuNodeSpec node;
        node.compute_scale = scale;
        cfg.nodes.push_back(node);
      }
      exp::ClusterResult r = exp::run_cluster(cfg);
      add_policy_row(het, cluster::routing_policy_name(policy), r);
      if (policy == cluster::RoutingPolicy::kHybrid) {
        hybrid_result = std::move(r);
      }
    }
    std::printf("%s\n", het.to_string().c_str());

    std::printf("hybrid per-GPU completions (2.0x/1.0x/1.0x/0.5x): ");
    for (const auto& g : hybrid_result.per_gpu) {
      std::printf("%llu ", static_cast<unsigned long long>(g.completed));
    }
    std::printf("\n");

    exp::ClusterConfig cfg = base_config(4, cluster::RoutingPolicy::kHybrid);
    for (const double scale : {2.0, 1.0, 1.0, 0.5}) {
      cluster::GpuNodeSpec node;
      node.compute_scale = scale;
      cfg.nodes.push_back(node);
    }
    const exp::ClusterResult a = exp::run_cluster(cfg);
    const exp::ClusterResult b = exp::run_cluster(cfg);
    std::printf("heterogeneous repeat run bit-identical: %s\n\n",
                identical(a, b) ? "PASS" : "FAIL");
  }

  std::printf("== Open-loop overload on 4 GPUs (least-util routing) ==\n\n");
  common::Table overload({"arrivals", "rate", "JPS", "HP DMR", "LP DMR",
                          "x-GPU migr", "drops"});
  for (const auto mode : {exp::ArrivalMode::kPoisson,
                          exp::ArrivalMode::kBursty}) {
    for (double rate_scale : {1.0, 1.5}) {
      exp::ClusterConfig cfg =
          base_config(4, cluster::RoutingPolicy::kLeastUtilization);
      cfg.arrivals = mode;
      cfg.rate_scale = rate_scale;
      const exp::ClusterResult r = exp::run_cluster(cfg);
      overload.add_row({exp::arrival_mode_name(mode),
                        common::fmt_double(rate_scale, 1) + "x",
                        common::fmt_double(r.total_jps, 0),
                        common::fmt_percent(r.hp.dmr(), 2),
                        common::fmt_percent(r.lp.dmr(), 2),
                        common::fmt_int(static_cast<long long>(
                            r.cross_gpu_migrations)),
                        common::fmt_int(static_cast<long long>(r.drops))});
    }
  }
  std::printf("%s\n", overload.to_string().c_str());

  // -------------------------------------------------------------------------
  // Time-varying demand: a 4x flash crowd for 2s over steady 2000 JPS on a
  // 3-GPU hybrid fleet whose homes were packed for the steady state. The
  // static fleet rides the spike out with drops; the self-healing
  // rebalancer (work stealing, coalescing on) claims queued LP stages for
  // warm peers and cuts drops without hurting HP deadlines. A third run
  // with coalescing off isolates the transfer saving: attaching concurrent
  // cold migrations to the in-flight copy must ship strictly fewer MB.
  std::printf(
      "== Time-varying demand (4x flash crowd, 3 GPUs, hybrid) ==\n\n");
  {
    const auto flash_config = [](bool rebalance, bool coalesce) {
      exp::ClusterConfig cfg =
          base_config(3, cluster::RoutingPolicy::kHybrid);
      cfg.arrivals = exp::ArrivalMode::kTrace;
      cfg.duration_s = 6.0;
      workload::TraceGenConfig gen;
      gen.duration_s = 6.0;
      gen.mean_rate_jps = 2000.0;
      gen.diurnal_amplitude = 0.0;
      workload::FlashCrowd spike;
      spike.start_s = 2.0;
      spike.duration_s = 2.0;
      spike.factor = 4.0;
      gen.flashes.push_back(spike);
      gen.seed = 7;
      cfg.trace =
          workload::generate_trace(workload::trace_mix(cfg.taskset), gen);
      cfg.rebalance.enabled = rebalance;
      cfg.rebalance.rehome = false;  // attribute recovery to stealing
      cfg.rebalance.max_steals_per_scan = 8;
      cfg.rebalance.coalesce = coalesce;
      return cfg;
    };
    const exp::ClusterResult off =
        exp::run_cluster(flash_config(false, false));
    const exp::ClusterResult on = exp::run_cluster(flash_config(true, true));
    const exp::ClusterResult no_coal =
        exp::run_cluster(flash_config(true, false));

    common::Table tv({"fleet", "JPS", "HP DMR", "LP DMR", "steals",
                      "coalesced", "MB moved", "drops"});
    const struct {
      const char* label;
      const exp::ClusterResult* r;
    } rows[] = {{"static hybrid", &off},
                {"self-healing", &on},
                {"self-healing, no coalesce", &no_coal}};
    for (const auto& row : rows) {
      tv.add_row({row.label, common::fmt_double(row.r->total_jps, 0),
                  common::fmt_percent(row.r->hp.dmr(), 2),
                  common::fmt_percent(row.r->lp.dmr(), 2),
                  common::fmt_int(static_cast<long long>(row.r->steals)),
                  common::fmt_int(static_cast<long long>(
                      row.r->coalesced_transfers)),
                  common::fmt_double(row.r->transferred_mb, 0),
                  common::fmt_int(static_cast<long long>(row.r->drops))});
    }
    std::printf("%s\n", tv.to_string().c_str());

    std::printf("rebalancer stole queued work (steals %llu >= 1): %s\n",
                static_cast<unsigned long long>(on.steals),
                on.steals >= 1 ? "PASS" : "FAIL");
    std::printf("rebalancing cut drops: %llu vs %llu static: %s\n",
                static_cast<unsigned long long>(on.drops),
                static_cast<unsigned long long>(off.drops),
                on.drops < off.drops ? "PASS" : "FAIL");
    std::printf("HP DMR no worse than static: %.2f%% vs %.2f%%: %s\n",
                100.0 * on.hp.dmr(), 100.0 * off.hp.dmr(),
                on.hp.dmr() <= off.hp.dmr() ? "PASS" : "FAIL");
    std::printf("coalescing engaged (coalesced %llu >= 1): %s\n",
                static_cast<unsigned long long>(on.coalesced_transfers),
                on.coalesced_transfers >= 1 ? "PASS" : "FAIL");
    std::printf(
        "coalescing ships strictly fewer MB: %.0f vs %.0f without: %s\n",
        on.transferred_mb, no_coal.transferred_mb,
        on.transferred_mb < no_coal.transferred_mb ? "PASS" : "FAIL");

    const exp::ClusterResult again =
        exp::run_cluster(flash_config(true, true));
    std::printf("self-healing repeat run bit-identical: %s\n\n",
                identical(on, again) ? "PASS" : "FAIL");
  }

  // Migration/starvation summary folded from the stage trace (trace
  // tooling; gpu_migrations counts tasks whose consecutive stages ran on
  // different devices).
  {
    exp::ClusterConfig cfg =
        base_config(2, cluster::RoutingPolicy::kLeastUtilization);
    cfg.arrivals = exp::ArrivalMode::kBursty;
    cfg.rate_scale = 1.5;
    cfg.duration_s = 1.5;
    cfg.stage_trace = true;
    const exp::ClusterResult r = exp::run_cluster(cfg);
    std::printf("%s",
                metrics::trace_report(r.stage_trace).to_string().c_str());
  }
  return 0;
}
