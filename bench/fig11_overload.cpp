// Fig. 11: overloading with different HP:LP task ratios for ResNet18 and
// UNet — full load (2/3 of Table II demand) and 150% overload, with and
// without the HP admission test (Overload+HPA).
//
// Paper: throughput stable across ratios; ~5% throughput drop at full load
// once LP tasks are present; no misses at full load. In overload, HP DMR
// rises sharply once HP demand exceeds capacity (no HP admission test), and
// Overload+HPA restores zero HP misses at the cost of dropped HP jobs and
// higher LP DMR (UNet avoids the LP penalty). Recommendation: keep HP tasks
// under 50% of full load.
#include <cstdio>

#include "common/table.h"
#include "experiments/runner.h"

using namespace daris;

namespace {
struct Scenario {
  const char* name;
  double load_factor;  // 1.0 = Table II's 150% overload point
  bool hpa;
};

void run_model(dnn::ModelKind kind) {
  std::printf("-- %s --\n", dnn::model_name(kind));
  const Scenario scenarios[] = {
      {"FullLoad", 2.0 / 3.0, false},
      {"Overload", 1.0, false},
      {"Overload+HPA", 1.0, true},
  };
  common::Table table({"scenario", "HP share", "JPS", "HP DMR", "LP DMR",
                       "HP dropped", "LP rejected"});
  for (const auto& sc : scenarios) {
    for (double hp_frac : {0.0, 1.0 / 3.0, 0.5, 2.0 / 3.0, 1.0}) {
      exp::RunConfig cfg;
      cfg.taskset = workload::scaled_taskset(kind, sc.load_factor, hp_frac);
      cfg.sched.policy = rt::Policy::kMps;
      cfg.sched.num_contexts = 6;
      cfg.sched.oversubscription = 6.0;
      cfg.sched.hp_admission = sc.hpa;
      cfg.duration_s = 4.0;
      const exp::RunResult r = exp::run_daris(cfg);
      char share[16];
      std::snprintf(share, sizeof(share), "%.0f%%", 100.0 * hp_frac);
      table.add_row({sc.name, share, common::fmt_double(r.total_jps, 0),
                     common::fmt_percent(r.hp.dmr(), 2),
                     common::fmt_percent(r.lp.dmr(), 2),
                     common::fmt_percent(r.hp.rejection_rate(), 1),
                     common::fmt_percent(r.lp.rejection_rate(), 1)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}
}  // namespace

int main() {
  std::printf("== Fig. 11: overloading with different HP:LP ratios ==\n\n");
  run_model(dnn::ModelKind::kResNet18);
  run_model(dnn::ModelKind::kUNet);
  std::printf(
      "paper expectations: stable throughput across ratios; at full load no\n"
      "misses for either priority; in overload HP DMR rises sharply once HP\n"
      "share exceeds ~2/3 (HP demand > 100%% capacity) without HPA, while\n"
      "Overload+HPA keeps HP misses at zero by dropping excess HP jobs\n"
      "(raising LP DMR, except for UNet).\n");
  return 0;
}
