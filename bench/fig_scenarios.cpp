// Scenario matrix behaviour gate: runs every named production scenario
// (overload storm, fail-stop mid-burst, straggler, drain + autoscale,
// diurnal trace replay, flash crowd), evaluates the committed thresholds on
// the scheduling outcomes, and proves three run-to-run contracts:
//
//  - deterministic: the same scenario run again in the same process yields
//    a bit-identical behaviour digest;
//  - telemetry deterministic: the telemetry capture (sampler series + event
//    log) is itself bit-identical across the repeat, certified by its FNV
//    digest;
//  - telemetry inert: a run with telemetry disabled yields the same
//    behaviour digest as the telemetry-enabled runs — observation does not
//    perturb the simulation.
//
// scripts/check_scenarios.py and scripts/check_telemetry.py consume the
// --json report and the --telemetry artifacts in CI; docs/SCENARIOS.md and
// docs/OBSERVABILITY.md are the catalogues.
//
// Exit status: 0 when every check passes and every contract holds, 1
// otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "experiments/scenarios.h"

using namespace daris;

namespace {

const char* default_data_dir() {
#ifdef DARIS_TEST_DATA_DIR
  return DARIS_TEST_DATA_DIR;
#else
  return "tests/data";
#endif
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else {
      out += c;
    }
  }
  return out;
}

struct ScenarioRow {
  exp::ScenarioResult result;
  bool deterministic = false;        // behaviour digest repeats
  bool telemetry_deterministic = false;  // telemetry digest repeats
  bool telemetry_inert = false;      // telemetry-off digest matches
  bool sharded = false;              // --sharded replay ran
  bool sharded_matches = false;      // sharded fingerprint + digest match
  std::string sharded_fingerprint;
};

void write_json(std::ostream& os, const std::vector<ScenarioRow>& rows) {
  os << "{\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto& r = row.result;
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(r.telemetry_digest));
    os << "    {\n"
       << "      \"name\": \"" << json_escape(r.name) << "\",\n"
       << "      \"description\": \"" << json_escape(r.description)
       << "\",\n"
       << "      \"pass\": " << (r.pass ? "true" : "false") << ",\n"
       << "      \"deterministic\": "
       << (row.deterministic ? "true" : "false") << ",\n"
       << "      \"telemetry_deterministic\": "
       << (row.telemetry_deterministic ? "true" : "false") << ",\n"
       << "      \"telemetry_inert\": "
       << (row.telemetry_inert ? "true" : "false") << ",\n"
       << "      \"telemetry_digest\": \"" << digest << "\",\n"
       << "      \"fingerprint\": \"" << json_escape(r.fingerprint)
       << "\",\n";
    if (row.sharded) {
      os << "      \"sharded_matches\": "
         << (row.sharded_matches ? "true" : "false") << ",\n"
         << "      \"sharded_fingerprint\": \""
         << json_escape(row.sharded_fingerprint) << "\",\n";
    }
    os << "      \"metrics\": {";
    bool first = true;
    for (const auto& [key, value] : r.metrics) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", value);
      os << (first ? "" : ", ") << "\"" << key << "\": " << buf;
      first = false;
    }
    os << "},\n      \"checks\": [\n";
    for (std::size_t j = 0; j < r.checks.size(); ++j) {
      const auto& c = r.checks[j];
      char value[64];
      char limit[64];
      std::snprintf(value, sizeof value, "%.17g", c.value);
      std::snprintf(limit, sizeof limit, "%.17g", c.limit);
      os << "        {\"metric\": \"" << c.metric << "\", \"op\": \""
         << (c.op == '<' ? "<=" : ">=") << "\", \"value\": " << value
         << ", \"limit\": " << limit
         << ", \"pass\": " << (c.pass ? "true" : "false") << "}"
         << (j + 1 < r.checks.size() ? ",\n" : "\n");
    }
    os << "      ]\n    }" << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

bool parse_log_level(const std::string& name, common::LogLevel* out) {
  if (name == "trace") *out = common::LogLevel::kTrace;
  else if (name == "debug") *out = common::LogLevel::kDebug;
  else if (name == "info") *out = common::LogLevel::kInfo;
  else if (name == "warn") *out = common::LogLevel::kWarn;
  else if (name == "error") *out = common::LogLevel::kError;
  else if (name == "off") *out = common::LogLevel::kOff;
  else return false;
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  os << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir = default_data_dir();
  std::string json_path;
  std::string telemetry_dir;
  bool show_profile = false;
  bool sharded = false;
  // 2 lanes forces real cross-thread execution even on one-core CI boxes;
  // --sharded-threads 0 picks min(hardware_concurrency, device count).
  int sharded_threads = 2;
  std::vector<std::string> wanted;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--data-dir") {
      data_dir = value();
    } else if (arg == "--json") {
      json_path = value();
    } else if (arg == "--telemetry") {
      telemetry_dir = value();
    } else if (arg == "--profile") {
      show_profile = true;
    } else if (arg == "--sharded") {
      // Replays every scenario on the sharded engine (sim/sharded.h) and
      // requires the behaviour fingerprint AND telemetry digest to match the
      // single-simulator run bit-for-bit.
      sharded = true;
    } else if (arg == "--sharded-threads") {
      sharded = true;
      sharded_threads = std::atoi(value());
    } else if (arg == "--log") {
      // Fleet fault/rehome paths narrate at info (docs/OBSERVABILITY.md);
      // the default warn threshold keeps the table output clean.
      common::LogLevel level = common::LogLevel::kWarn;
      if (!parse_log_level(value(), &level)) {
        std::fprintf(stderr,
                     "--log wants trace|debug|info|warn|error|off\n");
        return 2;
      }
      common::set_log_level(level);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--data-dir DIR] [--json FILE] [--telemetry DIR] "
          "[--profile] [--sharded] [--sharded-threads N] [--log LEVEL] "
          "[SCENARIO]...\n",
          argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      wanted.push_back(arg);
    }
  }
  if (wanted.empty()) wanted = exp::scenario_names();

  std::printf("== Scenario matrix: behaviour thresholds ==\n\n");

  std::vector<ScenarioRow> rows;
  bool all_pass = true;
  bool artifacts_ok = true;

  const exp::ScenarioTelemetry topts;
  for (const auto& name : wanted) {
    ScenarioRow row;
    row.result = exp::run_scenario(name, data_dir, &topts);
    exp::ScenarioResult& r = row.result;
    // Run-to-run contracts: the behaviour digest AND the telemetry capture
    // must repeat bit-identically, and disabling telemetry must not move
    // the behaviour digest (observation is inert).
    const exp::ScenarioResult again = exp::run_scenario(name, data_dir, &topts);
    const exp::ScenarioResult bare = exp::run_scenario(name, data_dir);
    row.deterministic = r.fingerprint == again.fingerprint;
    if (sharded) {
      const exp::ScenarioSharding shopts{sharded_threads};
      const exp::ScenarioResult shr =
          exp::run_scenario(name, data_dir, &topts, &shopts);
      row.sharded = true;
      row.sharded_fingerprint = shr.fingerprint;
      // Telemetry digest included: the sampler/event-log capture must be
      // insensitive to sharding, not just the end-of-run counters.
      row.sharded_matches = shr.fingerprint == r.fingerprint &&
                            shr.telemetry_digest == r.telemetry_digest;
    }
    // The digest covers the full series/events/fingerprint content; the
    // telemetry JSON itself also embeds host wall-clock (profile), which is
    // legitimately run-dependent, so the digest is the comparison.
    row.telemetry_deterministic = r.telemetry_digest == again.telemetry_digest;
    row.telemetry_inert = r.fingerprint == bare.fingerprint;

    std::printf("-- %s: %s\n", r.name.c_str(), r.description.c_str());
    common::Table table({"check", "value", "limit", "status"});
    for (const auto& c : r.checks) {
      table.add_row({c.metric + (c.op == '<' ? " <=" : " >="),
                     common::fmt_double(c.value, 4),
                     common::fmt_double(c.limit, 4),
                     c.pass ? "PASS" : "FAIL"});
    }
    table.add_row({"deterministic", row.deterministic ? "yes" : "no", "yes",
                   row.deterministic ? "PASS" : "FAIL"});
    table.add_row({"telemetry deterministic",
                   row.telemetry_deterministic ? "yes" : "no", "yes",
                   row.telemetry_deterministic ? "PASS" : "FAIL"});
    table.add_row({"telemetry inert", row.telemetry_inert ? "yes" : "no",
                   "yes", row.telemetry_inert ? "PASS" : "FAIL"});
    if (row.sharded) {
      table.add_row({"sharded matches", row.sharded_matches ? "yes" : "no",
                     "yes", row.sharded_matches ? "PASS" : "FAIL"});
    }
    std::printf("%s", table.to_string().c_str());
    const bool ok = r.pass && row.deterministic &&
                    row.telemetry_deterministic && row.telemetry_inert &&
                    (!row.sharded || row.sharded_matches);
    std::printf("   %s: %s\n\n", r.name.c_str(), ok ? "PASS" : "FAIL");
    if (show_profile) {
      std::printf("%s\n", r.cluster.profile.to_string().c_str());
    }

    if (!telemetry_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(telemetry_dir, ec);
      artifacts_ok =
          write_file(telemetry_dir + "/" + r.name + ".telemetry.json",
                     r.telemetry_json) &&
          artifacts_ok;
      artifacts_ok = write_file(telemetry_dir + "/" + r.name + ".trace.json",
                                r.perfetto_json) &&
                     artifacts_ok;
    }

    all_pass = all_pass && ok;
    rows.push_back(std::move(row));
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    write_json(os, rows);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!telemetry_dir.empty() && artifacts_ok) {
    std::printf("wrote telemetry artifacts to %s\n", telemetry_dir.c_str());
  }

  std::printf("scenario matrix: %s (%zu scenarios)\n",
              all_pass ? "PASS" : "FAIL", rows.size());
  return all_pass && artifacts_ok ? 0 : 1;
}
