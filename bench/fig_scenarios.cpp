// Scenario matrix behaviour gate: runs every named production scenario
// (overload storm, fail-stop mid-burst, straggler, drain + autoscale,
// diurnal trace replay, flash crowd), evaluates the committed thresholds on
// the scheduling outcomes, and re-runs each scenario to prove the behaviour
// digest is bit-identical. scripts/check_scenarios.py consumes the --json
// output in CI; docs/SCENARIOS.md is the catalogue.
//
// Exit status: 0 when every check passes and every scenario is
// deterministic, 1 otherwise.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "experiments/scenarios.h"

using namespace daris;

namespace {

const char* default_data_dir() {
#ifdef DARIS_TEST_DATA_DIR
  return DARIS_TEST_DATA_DIR;
#else
  return "tests/data";
#endif
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else {
      out += c;
    }
  }
  return out;
}

void write_json(std::ostream& os,
                const std::vector<exp::ScenarioResult>& results,
                const std::vector<bool>& deterministic) {
  os << "{\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    os << "    {\n"
       << "      \"name\": \"" << json_escape(r.name) << "\",\n"
       << "      \"description\": \"" << json_escape(r.description)
       << "\",\n"
       << "      \"pass\": " << (r.pass ? "true" : "false") << ",\n"
       << "      \"deterministic\": "
       << (deterministic[i] ? "true" : "false") << ",\n"
       << "      \"fingerprint\": \"" << json_escape(r.fingerprint)
       << "\",\n";
    os << "      \"metrics\": {";
    bool first = true;
    for (const auto& [key, value] : r.metrics) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", value);
      os << (first ? "" : ", ") << "\"" << key << "\": " << buf;
      first = false;
    }
    os << "},\n      \"checks\": [\n";
    for (std::size_t j = 0; j < r.checks.size(); ++j) {
      const auto& c = r.checks[j];
      char value[64];
      char limit[64];
      std::snprintf(value, sizeof value, "%.17g", c.value);
      std::snprintf(limit, sizeof limit, "%.17g", c.limit);
      os << "        {\"metric\": \"" << c.metric << "\", \"op\": \""
         << (c.op == '<' ? "<=" : ">=") << "\", \"value\": " << value
         << ", \"limit\": " << limit
         << ", \"pass\": " << (c.pass ? "true" : "false") << "}"
         << (j + 1 < r.checks.size() ? ",\n" : "\n");
    }
    os << "      ]\n    }" << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir = default_data_dir();
  std::string json_path;
  std::vector<std::string> wanted;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--data-dir") {
      data_dir = value();
    } else if (arg == "--json") {
      json_path = value();
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--data-dir DIR] [--json FILE] [SCENARIO]...\n",
          argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      wanted.push_back(arg);
    }
  }
  if (wanted.empty()) wanted = exp::scenario_names();

  std::printf("== Scenario matrix: behaviour thresholds ==\n\n");

  std::vector<exp::ScenarioResult> results;
  std::vector<bool> deterministic;
  bool all_pass = true;

  for (const auto& name : wanted) {
    exp::ScenarioResult r = exp::run_scenario(name, data_dir);
    // Determinism is part of the contract: the same scenario run again in
    // the same process must produce the same behaviour digest.
    const exp::ScenarioResult again = exp::run_scenario(name, data_dir);
    const bool same = r.fingerprint == again.fingerprint;

    std::printf("-- %s: %s\n", r.name.c_str(), r.description.c_str());
    common::Table table({"check", "value", "limit", "status"});
    for (const auto& c : r.checks) {
      table.add_row({c.metric + (c.op == '<' ? " <=" : " >="),
                     common::fmt_double(c.value, 4),
                     common::fmt_double(c.limit, 4),
                     c.pass ? "PASS" : "FAIL"});
    }
    table.add_row({"deterministic", same ? "yes" : "no", "yes",
                   same ? "PASS" : "FAIL"});
    std::printf("%s", table.to_string().c_str());
    std::printf("   %s: %s\n\n", r.name.c_str(),
                r.pass && same ? "PASS" : "FAIL");

    all_pass = all_pass && r.pass && same;
    results.push_back(std::move(r));
    deterministic.push_back(same);
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    write_json(os, results, deterministic);
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("scenario matrix: %s (%zu scenarios)\n",
              all_pass ? "PASS" : "FAIL", results.size());
  return all_pass ? 0 : 1;
}
