// Microbenchmarks of the GPU simulator itself (google-benchmark): event
// throughput of the fluid executor under different concurrency shapes, raw
// event-engine shapes (churn / cancel-heavy / reschedule-heavy), and a
// fleet-scale open-loop run. Results are also written to
// BENCH_micro_gpusim.json (see main below) to track the perf trajectory.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "dnn/zoo.h"
#include "experiments/cluster_runner.h"
#include "gpusim/gpu.h"
#include "micro_common.h"
#include "gpusim/partition.h"
#include "sim/simulator.h"
#include "workload/taskset.h"

using namespace daris;

namespace {

/// Closed-loop: `streams` streams continuously re-launch a ResNet18-like
/// kernel mix; measures simulated kernels processed per wall second.
void BM_GpuFluidExecutor(benchmark::State& state) {
  const int contexts = static_cast<int>(state.range(0));
  const int streams_per_ctx = static_cast<int>(state.range(1));
  const gpusim::GpuSpec spec = gpusim::GpuSpec::rtx2080ti();
  const auto model = dnn::compiled_model(dnn::ModelKind::kResNet18, 1, spec);

  for (auto _ : state) {
    sim::Simulator sim;
    gpusim::Gpu gpu(sim, spec);
    const auto quotas = gpusim::partition_quotas(spec, contexts, contexts);
    std::vector<gpusim::StreamId> streams;
    for (int c = 0; c < contexts; ++c) {
      const auto ctx = gpu.create_context(quotas[static_cast<std::size_t>(c)]);
      for (int s = 0; s < streams_per_ctx; ++s) {
        streams.push_back(gpu.create_stream(ctx));
      }
    }
    // Two full model instances per stream, enqueued up front.
    for (const auto s : streams) {
      for (int rep = 0; rep < 2; ++rep) {
        for (const auto& stage : model.stages) {
          for (const auto& k : stage.kernels) gpu.launch_kernel(s, k);
        }
      }
    }
    sim.run();
    state.counters["kernels"] = static_cast<double>(gpu.kernels_completed());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<long>(model.kernel_count()) *
                          static_cast<long>(contexts * streams_per_ctx));
}

void BM_EventQueueChurn(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < events; ++i) {
      sim.schedule_at((i * 7919) % 1000000, [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * events);
}

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventHandle> handles;
    handles.reserve(static_cast<std::size_t>(events));
    for (int i = 0; i < events; ++i) {
      handles.push_back(sim.schedule_at((i * 131) % 100000, [] {}));
    }
    // Cancel every other event (the executor's reschedule pattern).
    for (std::size_t i = 0; i < handles.size(); i += 2) sim.cancel(handles[i]);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * events);
}

/// The fluid executor's signature pattern: a standing population of events
/// whose deadlines keep moving. Each round reschedules every pending event to
/// a new time (in place on the new engine; cancel+push on the old one).
void BM_EventQueueReschedule(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  constexpr int kRounds = 8;
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventHandle> handles;
    handles.reserve(static_cast<std::size_t>(events));
    for (int i = 0; i < events; ++i) {
      handles.push_back(sim.schedule_at((i * 131) % 100000 + 1, [] {}));
    }
    for (int round = 1; round <= kRounds; ++round) {
      for (std::size_t i = 0; i < handles.size(); ++i) {
        const common::Time when =
            (static_cast<common::Time>(i) * 131 + round * 7919) % 100000 + 1;
        sim.reschedule(handles[i], when);
      }
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * events * kRounds);
}

/// Bursty co-launch: every period, one kernel per stream is injected at the
/// same simulator tick across many contexts, so the launch-done events (and
/// later the symmetric completions) arrive in same-timestamp bursts — the
/// shape the allocator's dirty-flag solve coalesces at the data level
/// (settle guard, per-context water-fill reuse, cached penalty factors).
/// Args: {contexts, bursts}.
void BM_GpuBurstyColaunch(benchmark::State& state) {
  const int contexts = static_cast<int>(state.range(0));
  const int bursts = static_cast<int>(state.range(1));
  const gpusim::GpuSpec spec = gpusim::GpuSpec::rtx2080ti();
  for (auto _ : state) {
    sim::Simulator sim;
    gpusim::Gpu gpu(sim, spec);
    const auto quotas = gpusim::partition_quotas(spec, contexts, contexts);
    std::vector<gpusim::StreamId> streams;
    for (int c = 0; c < contexts; ++c) {
      streams.push_back(
          gpu.create_stream(gpu.create_context(quotas[static_cast<std::size_t>(c)])));
    }
    gpusim::KernelDesc k;
    k.work = 150.0;
    k.parallelism = 40.0;
    for (int b = 0; b < bursts; ++b) {
      sim.schedule_at(static_cast<common::Time>(b) * common::from_us(500.0),
                      [&gpu, &streams, &k] {
                        for (const auto s : streams) gpu.launch_kernel(s, k);
                      });
    }
    sim.run();
    state.counters["kernels"] = static_cast<double>(gpu.kernels_completed());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(bursts) *
                          static_cast<long>(contexts));
}

/// Fleet-scale event volume: an N-GPU cluster under open-loop Poisson
/// arrivals, the shape that multiplies completion-event churn by the fleet
/// size. Measures simulated jobs completed per wall second.
/// Fleet throughput. One arg: the legacy single-simulator engine
/// ("/8" is the committed baseline shape). Two args: the sharded engine
/// (sim/sharded.h) with range(1) worker threads — "/8/4" is the
/// 2x-vs-baseline acceptance shape, "/64/8" the 100+-GPU scaling shape.
/// Sharded runs complete the exact same simulated jobs as the legacy
/// engine (pinned by test_sim_sharded_differential), so items/s across
/// shapes compares apples to apples.
void BM_ClusterFleetOpenLoop(benchmark::State& state) {
  const int num_gpus = static_cast<int>(state.range(0));
  exp::ClusterConfig cfg;
  cfg.taskset =
      workload::replicated_taskset(workload::mixed_taskset(), num_gpus);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 6;
  cfg.sched.oversubscription = 6.0;
  cfg.num_gpus = num_gpus;
  cfg.routing = cluster::RoutingPolicy::kLeastUtilization;
  cfg.arrivals = exp::ArrivalMode::kPoisson;
  cfg.duration_s = 1.0;
  cfg.warmup_s = 0.25;
  if (state.range_count() > 1) {
    cfg.sharded = true;
    cfg.sim_threads = static_cast<int>(state.range(1));
  }
  std::uint64_t jobs = 0;
  for (auto _ : state) {
    const exp::ClusterResult r = exp::run_cluster(cfg);
    jobs = r.hp.completed + r.lp.completed;
  }
  state.counters["sim_jobs"] = static_cast<double>(jobs);
  state.SetItemsProcessed(state.iterations() * static_cast<long>(jobs));
}

/// Embeds the self-profiler counters from a small deterministic fleet run
/// into the JSON context block, so the perf trajectory carries the
/// simulator's internal shape (event volume, callback inlining, solver
/// cache hits) alongside the wall-clock numbers.
void add_profile_context() {
  exp::ClusterConfig cfg;
  cfg.taskset = workload::replicated_taskset(workload::mixed_taskset(), 4);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 6;
  cfg.sched.oversubscription = 6.0;
  cfg.num_gpus = 4;
  cfg.routing = cluster::RoutingPolicy::kLeastUtilization;
  cfg.arrivals = exp::ArrivalMode::kPoisson;
  cfg.duration_s = 0.5;
  const exp::ClusterResult probe = exp::run_cluster(cfg);
  const metrics::RunProfile& p = probe.profile;
  benchmark::AddCustomContext("profile_events_executed",
                              std::to_string(p.events_executed));
  benchmark::AddCustomContext("profile_heap_high_water",
                              std::to_string(p.heap_high_water));
  benchmark::AddCustomContext("profile_pool_slots",
                              std::to_string(p.pool_slots));
  char rate[32];
  std::snprintf(rate, sizeof rate, "%.4f", p.inline_rate());
  benchmark::AddCustomContext("profile_inline_rate", rate);
  std::snprintf(rate, sizeof rate, "%.4f", p.dirty_hit_rate());
  benchmark::AddCustomContext("profile_dirty_hit_rate", rate);
}

}  // namespace

BENCHMARK(BM_GpuFluidExecutor)
    ->Args({1, 6})
    ->Args({6, 1})
    ->Args({3, 3})
    ->Args({10, 1})
    ->Args({32, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GpuBurstyColaunch)
    ->Args({8, 200})
    ->Args({32, 100})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EventQueueChurn)->Arg(1000)->Arg(100000);
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(1000)->Arg(100000);
BENCHMARK(BM_EventQueueReschedule)->Arg(1000)->Arg(100000);
BENCHMARK(BM_ClusterFleetOpenLoop)
    ->Arg(8)            // committed single-simulator baseline
    ->Args({8, 4})      // sharded, 4 worker threads: the >= 2x gate
    ->Arg(64)           // 100+-GPU fleet class, single-simulator reference
    ->Args({64, 8})     // sharded scaling shape
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  add_profile_context();
  return daris::bench::run_benchmarks_with_json_out(argc, argv,
                                                    "BENCH_micro_gpusim.json");
}
