// Table I / Fig. 1: batching performance of the benchmark DNNs.
//
// Measures single-stream throughput (min JPS), a batch-size sweep, and the
// best batched throughput (max JPS) on the simulated GPU, against the
// paper's measured values. The min/max pair is the calibration anchor; the
// per-batch curve (Fig. 1) is emergent.
#include <cstdio>

#include "baselines/batching_server.h"
#include "common/table.h"
#include "dnn/zoo.h"
#include "experiments/runner.h"

using namespace daris;

int main() {
  const gpusim::GpuSpec spec = gpusim::GpuSpec::rtx2080ti();

  std::printf("== Table I: batching performance of different DNNs ==\n\n");
  common::Table table({"DNN", "min JPS (paper)", "min JPS (sim)",
                       "max JPS (paper)", "max JPS (sim)", "gain (paper)",
                       "gain (sim)"});

  const dnn::ModelKind kinds[] = {
      dnn::ModelKind::kResNet18, dnn::ModelKind::kResNet50,
      dnn::ModelKind::kUNet, dnn::ModelKind::kInceptionV3};

  for (const auto kind : kinds) {
    const auto ref = dnn::table1_reference(kind);
    const auto single = baselines::measure_batched_jps(kind, 1, spec);
    const auto best = baselines::best_batched_jps(kind, spec);
    table.add_row({dnn::model_name(kind), common::fmt_double(ref.min_jps, 0),
                   common::fmt_double(single.jps, 0),
                   common::fmt_double(ref.max_jps, 0),
                   common::fmt_double(best.jps, 0),
                   common::fmt_double(ref.batching_gain, 2) + "x",
                   common::fmt_double(best.jps / single.jps, 2) + "x"});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("== Fig. 1: normalized throughput vs batch size ==\n\n");
  common::Table fig1({"DNN", "B=1", "B=2", "B=4", "B=8", "B=16", "B=32"});
  for (const auto kind : kinds) {
    const auto single = baselines::measure_batched_jps(kind, 1, spec);
    std::vector<std::string> row{dnn::model_name(kind)};
    for (int b : {1, 2, 4, 8, 16, 32}) {
      const auto r = baselines::measure_batched_jps(kind, b, spec);
      row.push_back(common::fmt_double(r.jps / single.jps, 2));
    }
    fig1.add_row(row);
  }
  std::printf("%s\n", fig1.to_string().c_str());
  std::printf("Expected shape: UNet nearly flat (1.08x), InceptionV3 the\n"
              "steepest (3.13x), ResNets in between (~1.6-1.7x).\n");
  return 0;
}
