// Fig. 4: scheduling results for the ResNet18 task set (17 HP + 34 LP tasks
// at 30 JPS each = 150% of the batching upper baseline).
//
// Paper expectations: MPS peaks at Nc = 6 with ~1158 JPS, 13% above the
// 1025-JPS batching baseline; STR DMR ~ 0; MPS DMR < 7% (~2% at the peak);
// MPS+STR the least favourable policy.
#include "fig_common.h"

int main() {
  daris::bench::FigureExpectation expect;
  expect.peak_config = "MPS 6x1 6";
  expect.peak_jps = 1158.0;
  expect.dmr_note =
      "STR DMR ~0, MPS DMR <7% (~2% at peak), MPS+STR worst (up to 25%)";
  return daris::bench::run_scheduling_figure(
      daris::dnn::ModelKind::kResNet18, "Fig. 4", expect);
}
