// Fig. 6: scheduling results for the InceptionV3 task set (9 HP + 18 LP at
// 24 JPS).
//
// Paper expectations: benefits from concurrency up to Nc = 8; reaches only
// ~87% of its 446-JPS batching upper baseline (narrow multi-branch
// architecture); MPS DMR < 7% (~2% at the 8x1 OS 8 peak); the only STR
// deadline misses of the study (<2%) occur in the 1x2 configuration.
#include "fig_common.h"

int main() {
  daris::bench::FigureExpectation expect;
  expect.peak_config = "MPS 8x1 8";
  expect.peak_jps = 0.87 * 446.0;
  expect.dmr_note = "~87% of upper baseline; MPS DMR <7%, ~2% at peak";
  return daris::bench::run_scheduling_figure(
      daris::dnn::ModelKind::kInceptionV3, "Fig. 6", expect);
}
