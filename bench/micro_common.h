// Shared main() body for the google-benchmark micro drivers: run the
// registered benchmarks with results mirrored to a JSON file (the perf
// trajectory the repo tracks in BENCH_*.json). Separate from fig_common.h so
// the figure drivers keep building without google-benchmark installed.
#pragma once

#include <benchmark/benchmark.h>

#include "fig_common.h"

namespace daris::bench {

inline int run_benchmarks_with_json_out(int argc, char** argv,
                                        const char* json_path) {
  std::vector<std::string> storage;
  auto args = benchmark_args_with_json_out(argc, argv, json_path, storage);
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace daris::bench
