// Shared main() body for the per-DNN scheduling figures (Figs. 4-6):
// run the paper's policy grid on one Table II task set and print the
// throughput + LP DMR panels with paper-expected callouts.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/batching_server.h"
#include "experiments/grid.h"

namespace daris::bench {

/// argv wiring for the google-benchmark drivers: unless the caller already
/// passed --benchmark_out, append `--benchmark_out=<json_path>` (JSON format)
/// so every run records machine-readable results — the perf trajectory the
/// repo tracks in BENCH_*.json files. `storage` owns the argument strings and
/// must outlive the returned vector; pass the result to
/// benchmark::Initialize. Kept free of benchmark.h so the figure drivers can
/// include this header without linking google-benchmark.
inline std::vector<char*> benchmark_args_with_json_out(
    int argc, char** argv, const char* json_path,
    std::vector<std::string>& storage) {
  storage.assign(argv, argv + argc);
  bool has_out = false;
  for (const auto& arg : storage) {
    if (arg.rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    storage.push_back(std::string("--benchmark_out=") + json_path);
    storage.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (auto& arg : storage) args.push_back(arg.data());
  return args;
}

struct FigureExpectation {
  const char* peak_config;       // e.g. "MPS 6x1 6"
  double peak_jps;               // paper's peak throughput
  const char* dmr_note;          // textual DMR expectation
};

inline int run_scheduling_figure(dnn::ModelKind kind, const char* figure,
                                 const FigureExpectation& expect) {
  const gpusim::GpuSpec spec = gpusim::GpuSpec::rtx2080ti();
  const auto lower = baselines::measure_batched_jps(kind, 1, spec, 2.0);
  const auto upper = baselines::best_batched_jps(kind, spec, 2.0);

  std::printf("== %s: scheduling results for the %s task set ==\n\n", figure,
              dnn::model_name(kind));
  const auto results =
      exp::run_grid(workload::table2_taskset(kind), exp::paper_grid());
  std::printf("%s\n",
              exp::render_figure_table(results, lower.jps, upper.jps).c_str());

  const exp::GridResult* best = exp::best_throughput(results);
  std::printf("peak measured: %s at %.0f JPS (%s vs upper baseline)\n",
              best->point.label.c_str(), best->result.total_jps,
              exp::relative_error(best->result.total_jps, upper.jps).c_str());
  std::printf("paper:         %s at %.0f JPS; %s\n", expect.peak_config,
              expect.peak_jps, expect.dmr_note);

  // Cross-policy summary (paper Sec. VI-C): MPS best throughput, STR best
  // timeliness, MPS+STR least favourable.
  double best_jps[3] = {0, 0, 0};
  double worst_dmr[3] = {0, 0, 0};
  for (const auto& r : results) {
    const int p = static_cast<int>(r.point.sched.policy);
    best_jps[p] = std::max(best_jps[p], r.result.total_jps);
    worst_dmr[p] = std::max(worst_dmr[p], r.result.lp.dmr());
  }
  std::printf("\npolicy summary (best JPS / worst LP DMR):\n");
  for (int p : {0, 1, 2}) {
    std::printf("  %-8s %6.0f JPS / %5.2f%%\n",
                exp::policy_name(static_cast<rt::Policy>(p)), best_jps[p],
                100.0 * worst_dmr[p]);
  }
  bool hp_missed = false;
  for (const auto& r : results) hp_missed |= r.result.hp.missed > 0;
  std::printf("HP deadline misses anywhere in the grid: %s (paper: none)\n",
              hp_missed ? "YES" : "none");
  return 0;
}

}  // namespace daris::bench
