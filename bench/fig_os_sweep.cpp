// Sec. VI-E ablation: fine-grained oversubscription sweep for every model
// at its best context count — the design-choice study behind "is
// oversubscription good?" (Sec. II-B).
//
// Paper: OS = 1 (isolated SMs) causes a sharp throughput drop;
// higher OS generally improves both throughput and timeliness; wide DNNs
// (UNet) are satisfied by ~200% oversubscription while narrower DNNs
// (InceptionV3) want more.
#include <cstdio>

#include "baselines/batching_server.h"
#include "common/table.h"
#include "experiments/grid.h"
#include "gpusim/partition.h"

using namespace daris;

int main() {
  const gpusim::GpuSpec spec = gpusim::GpuSpec::rtx2080ti();
  struct Row {
    dnn::ModelKind kind;
    int contexts;
  };
  const Row rows[] = {{dnn::ModelKind::kResNet18, 6},
                      {dnn::ModelKind::kUNet, 6},
                      {dnn::ModelKind::kInceptionV3, 8},
                      {dnn::ModelKind::kResNet50, 6}};

  for (const auto& row : rows) {
    const auto upper = baselines::best_batched_jps(row.kind, spec, 2.0);
    std::printf("== OS sweep: %s at Nc = %d (upper baseline %.0f JPS) ==\n\n",
                dnn::model_name(row.kind), row.contexts, upper.jps);
    common::Table table({"OS", "quota (SMs)", "JPS", "vs OS=1", "LP DMR"});
    double os1_jps = 0.0;
    const auto results = exp::run_grid(workload::table2_taskset(row.kind),
                                       exp::os_sweep_grid(row.contexts), 3.0);
    for (const auto& r : results) {
      if (os1_jps == 0.0) os1_jps = r.result.total_jps;
      const int quota = gpusim::sm_quota_per_context(
          spec, row.contexts, r.point.sched.oversubscription);
      table.add_row({common::fmt_double(r.point.sched.oversubscription, 1),
                     common::fmt_int(quota),
                     common::fmt_double(r.result.total_jps, 0),
                     common::fmt_percent(r.result.total_jps / os1_jps - 1.0, 1),
                     common::fmt_percent(r.result.lp.dmr(), 2)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf("paper: sharp drop at OS = 1; benefit saturates around OS = 2 "
              "for wide DNNs (UNet)\nand keeps growing for narrow ones "
              "(InceptionV3).\n");
  return 0;
}
