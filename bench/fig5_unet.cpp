// Fig. 5: scheduling results for the UNet task set (5 HP + 10 LP at 24 JPS).
//
// Paper expectations: peak ~281 JPS at 6x1 OS 2, 8% above the 260-JPS
// batching baseline; UNet shows the lowest DMR of all task sets (<3%,
// 0.25% at its best-throughput configuration) and the least sensitivity to
// concurrency configuration.
#include "fig_common.h"

int main() {
  daris::bench::FigureExpectation expect;
  expect.peak_config = "MPS 6x1 2";
  expect.peak_jps = 281.0;
  expect.dmr_note = "lowest DMR of all DNNs: <3% peak, 0.25% at best config";
  return daris::bench::run_scheduling_figure(daris::dnn::ModelKind::kUNet,
                                             "Fig. 5", expect);
}
