// Minimal, release-built drop-in for the subset of google-benchmark used by
// the micro_* drivers.
//
// Why this exists: the repo's perf trajectory (BENCH_*.json) is gated in CI
// against absolute items/s numbers, and the distro's libbenchmark is a
// debug build (its own JSON says library_build_type: "debug" and it prints
// "***WARNING*** Library was built as DEBUG"), which taints every recorded
// baseline. Rather than depend on a rebuilt third-party library the build
// environment cannot fetch, the harness below is compiled with the same
// flags as the code under test, so `library_build_type` in the JSON context
// truthfully reports the build flavour of everything on the timed path.
//
// Implemented surface (exactly what bench/micro_*.cpp use):
//   - BENCHMARK(fn)->Arg(a)->Args({a,b})->Unit(benchmark::kMillisecond)
//   - State: range-for iteration protocol, range(i), iterations(),
//     SetItemsProcessed(), counters["name"] = value
//   - DoNotOptimize()
//   - Initialize / ReportUnrecognizedArguments / RunSpecifiedBenchmarks /
//     Shutdown
//   - Flags: --benchmark_out=<path>, --benchmark_out_format=json,
//     --benchmark_min_time=<secs>, --benchmark_filter=<substring>
//
// Measurement protocol mirrors google-benchmark: each benchmark instance is
// re-run with a growing iteration count until wall time reaches min_time
// (default 0.5 s); the timer covers only the `for (auto _ : state)` range;
// items_per_second divides by CPU time, matching the upstream definition the
// committed baselines and the CI regression gate consume.
#pragma once

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

inline const char* time_unit_name(TimeUnit u) {
  switch (u) {
    case kNanosecond: return "ns";
    case kMicrosecond: return "us";
    case kMillisecond: return "ms";
    case kSecond: return "s";
  }
  return "ns";
}

inline double time_unit_per_second(TimeUnit u) {
  switch (u) {
    case kNanosecond: return 1e9;
    case kMicrosecond: return 1e6;
    case kMillisecond: return 1e3;
    case kSecond: return 1.0;
  }
  return 1e9;
}

template <class Tp>
inline void DoNotOptimize(Tp& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}
template <class Tp>
inline void DoNotOptimize(Tp&& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

class State;
using Function = void (*)(State&);

namespace internal {

inline double wall_now() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

inline double cpu_now() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

struct Instance;  // one (benchmark, args) pair

struct Family {
  std::string name;
  Function fn = nullptr;
  TimeUnit unit = kNanosecond;
  std::vector<std::vector<std::int64_t>> arg_sets;  // empty -> one no-arg run
};

inline std::vector<std::unique_ptr<Family>>& families() {
  static std::vector<std::unique_ptr<Family>> f;
  return f;
}

struct Flags {
  std::string out_path;
  std::string out_format = "json";
  std::string filter;
  double min_time = 0.5;
};

inline Flags& flags() {
  static Flags f;
  return f;
}

/// Extra key/value pairs for the JSON `context` block (AddCustomContext).
inline std::vector<std::pair<std::string, std::string>>& custom_context() {
  static std::vector<std::pair<std::string, std::string>> ctx;
  return ctx;
}

}  // namespace internal

/// Registration handle returned by BENCHMARK(); supports the chained
/// configuration calls used by the drivers.
class Benchmark {
 public:
  explicit Benchmark(internal::Family* family) : family_(family) {}
  Benchmark* Arg(std::int64_t a) {
    family_->arg_sets.push_back({a});
    return this;
  }
  Benchmark* Args(const std::vector<std::int64_t>& args) {
    family_->arg_sets.push_back(args);
    return this;
  }
  Benchmark* Unit(TimeUnit u) {
    family_->unit = u;
    return this;
  }

 private:
  internal::Family* family_;
};

inline Benchmark* RegisterBenchmark(const char* name, Function fn) {
  auto family = std::make_unique<internal::Family>();
  family->name = name;
  family->fn = fn;
  internal::families().push_back(std::move(family));
  // The Benchmark handle is only used for chained setup calls from static
  // initializers; it owns nothing.
  static std::vector<std::unique_ptr<Benchmark>> handles;
  handles.push_back(std::make_unique<Benchmark>(internal::families().back().get()));
  return handles.back().get();
}

class State {
 public:
  State(const std::vector<std::int64_t>& args, std::size_t iters)
      : args_(args), max_iterations_(iters) {}

  struct StateIterator {
    explicit StateIterator(State* parent, std::size_t count)
        : parent_(parent), remaining_(count) {}
    // Non-trivial destructor so `for (auto _ : state)` does not trip
    // -Wunused-but-set-variable on the discarded loop variable.
    struct Value {
      ~Value() {}  // NOLINT(modernize-use-equals-default)
    };
    Value operator*() const { return Value{}; }
    StateIterator& operator++() {
      --remaining_;
      return *this;
    }
    bool operator!=(const StateIterator&) {
      if (remaining_ != 0) return true;
      parent_->FinishKeepRunning();
      return false;
    }
    State* parent_;
    std::size_t remaining_;
  };

  StateIterator begin() {
    StartKeepRunning();
    return StateIterator(this, max_iterations_);
  }
  StateIterator end() { return StateIterator(this, 0); }

  std::int64_t range(std::size_t i = 0) const { return args_.at(i); }
  std::size_t range_count() const { return args_.size(); }
  std::size_t iterations() const { return max_iterations_; }
  void SetItemsProcessed(std::int64_t items) { items_processed_ = items; }

  std::map<std::string, double> counters;

  // Filled by the runner after the timed region.
  double wall_seconds() const { return wall_elapsed_; }
  double cpu_seconds() const { return cpu_elapsed_; }
  std::int64_t items_processed() const { return items_processed_; }

 private:
  void StartKeepRunning() {
    wall_start_ = internal::wall_now();
    cpu_start_ = internal::cpu_now();
  }
  void FinishKeepRunning() {
    wall_elapsed_ = internal::wall_now() - wall_start_;
    cpu_elapsed_ = internal::cpu_now() - cpu_start_;
  }

  std::vector<std::int64_t> args_;
  std::size_t max_iterations_ = 0;
  std::int64_t items_processed_ = 0;
  double wall_start_ = 0.0, cpu_start_ = 0.0;
  double wall_elapsed_ = 0.0, cpu_elapsed_ = 0.0;
};

namespace internal {

struct Result {
  std::string name;
  std::size_t family_index = 0;
  std::size_t instance_index = 0;
  std::size_t iterations = 0;
  double real_time = 0.0;  // per iteration, in `unit`
  double cpu_time = 0.0;   // per iteration, in `unit`
  TimeUnit unit = kNanosecond;
  bool has_items = false;
  double items_per_second = 0.0;
  std::map<std::string, double> counters;
};

inline std::string instance_name(const Family& family,
                                 const std::vector<std::int64_t>& args) {
  std::string name = family.name;
  for (const auto a : args) name += "/" + std::to_string(a);
  return name;
}

/// One adaptive-iteration measurement of a single (benchmark, args) pair.
inline Result run_instance(const Family& family, std::size_t family_index,
                           std::size_t instance_index,
                           const std::vector<std::int64_t>& args) {
  const double min_time = flags().min_time;
  std::size_t iters = 1;
  State state(args, iters);
  for (;;) {
    state = State(args, iters);
    family.fn(state);
    const double elapsed = state.wall_seconds();
    // Accept once past min_time (google-benchmark's significance rule,
    // minus its 10%-overhead refinements which need a calibrated clock).
    if (elapsed >= min_time || iters >= (1u << 30)) break;
    double multiplier = 2.0;
    if (elapsed > 1e-9) {
      multiplier = std::min(10.0, std::max(1.1, min_time * 1.4 / elapsed));
    } else {
      multiplier = 10.0;
    }
    iters = static_cast<std::size_t>(static_cast<double>(iters) * multiplier) + 1;
  }

  Result r;
  r.name = instance_name(family, args);
  r.family_index = family_index;
  r.instance_index = instance_index;
  r.iterations = state.iterations();
  r.unit = family.unit;
  const double per_iter_wall =
      state.wall_seconds() / static_cast<double>(state.iterations());
  const double per_iter_cpu =
      state.cpu_seconds() / static_cast<double>(state.iterations());
  r.real_time = per_iter_wall * time_unit_per_second(family.unit);
  r.cpu_time = per_iter_cpu * time_unit_per_second(family.unit);
  if (state.items_processed() > 0) {
    r.has_items = true;
    r.items_per_second =
        static_cast<double>(state.items_processed()) /
        std::max(1e-12, state.cpu_seconds());
  }
  r.counters = state.counters;
  return r;
}

inline void print_console(const std::vector<Result>& results) {
  std::size_t width = 38;
  for (const auto& r : results) width = std::max(width, r.name.size() + 2);
  std::printf("%-*s %13s %13s %10s\n", static_cast<int>(width), "Benchmark",
              "Time", "CPU", "Iterations");
  for (std::size_t i = 0; i < width + 40; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& r : results) {
    std::printf("%-*s %10.3g %s %10.3g %s %10zu", static_cast<int>(width),
                r.name.c_str(), r.real_time, time_unit_name(r.unit), r.cpu_time,
                time_unit_name(r.unit), r.iterations);
    if (r.has_items) {
      std::printf(" items_per_second=%.4g/s", r.items_per_second);
    }
    for (const auto& [k, v] : r.counters) std::printf(" %s=%.6g", k.c_str(), v);
    std::printf("\n");
  }
}

inline void write_json(const std::vector<Result>& results, const char* argv0) {
  if (flags().out_path.empty()) return;
  std::FILE* f = std::fopen(flags().out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "minibench: cannot open %s\n",
                 flags().out_path.c_str());
    return;
  }
  char date[64] = "";
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc;
  gmtime_r(&now, &tm_utc);
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S+00:00", &tm_utc);
  char host[256] = "unknown";
  gethostname(host, sizeof(host) - 1);
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  std::fprintf(f,
               "{\n  \"context\": {\n"
               "    \"date\": \"%s\",\n"
               "    \"host_name\": \"%s\",\n"
               "    \"executable\": \"%s\",\n"
               "    \"num_cpus\": %ld,\n"
               "    \"harness\": \"minibench\",\n"
               "    \"library_build_type\": \"%s\"",
               date, host, argv0, sysconf(_SC_NPROCESSORS_ONLN), build_type);
  for (const auto& [key, value] : custom_context()) {
    std::fprintf(f, ",\n    \"%s\": \"%s\"", key.c_str(), value.c_str());
  }
  std::fprintf(f, "\n  },\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"family_index\": %zu,\n"
                 "      \"per_family_instance_index\": %zu,\n"
                 "      \"run_name\": \"%s\",\n"
                 "      \"run_type\": \"iteration\",\n"
                 "      \"repetitions\": 1,\n"
                 "      \"repetition_index\": 0,\n"
                 "      \"threads\": 1,\n"
                 "      \"iterations\": %zu,\n"
                 "      \"real_time\": %.17g,\n"
                 "      \"cpu_time\": %.17g,\n"
                 "      \"time_unit\": \"%s\"",
                 r.name.c_str(), r.family_index, r.instance_index,
                 r.name.c_str(), r.iterations, r.real_time, r.cpu_time,
                 time_unit_name(r.unit));
    if (r.has_items) {
      std::fprintf(f, ",\n      \"items_per_second\": %.17g",
                   r.items_per_second);
    }
    for (const auto& [k, v] : r.counters) {
      std::fprintf(f, ",\n      \"%s\": %.17g", k.c_str(), v);
    }
    std::fprintf(f, "\n    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

inline const char*& stored_argv0() {
  static const char* argv0 = "minibench";
  return argv0;
}

}  // namespace internal

/// Adds a key/value pair to the JSON report's `context` block (same API and
/// placement as google-benchmark). Call before RunSpecifiedBenchmarks().
inline void AddCustomContext(const std::string& key,
                             const std::string& value) {
  internal::custom_context().emplace_back(key, value);
}

inline void Initialize(int* argc, char** argv) {
  if (*argc > 0) internal::stored_argv0() = argv[0];
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    auto match = [arg](const char* prefix, const char** value) {
      const std::size_t n = std::strlen(prefix);
      if (std::strncmp(arg, prefix, n) != 0) return false;
      *value = arg + n;
      return true;
    };
    const char* value = nullptr;
    if (match("--benchmark_out_format=", &value)) {
      internal::flags().out_format = value;
    } else if (match("--benchmark_out=", &value)) {
      internal::flags().out_path = value;
    } else if (match("--benchmark_min_time=", &value)) {
      internal::flags().min_time = std::atof(value);
    } else if (match("--benchmark_filter=", &value)) {
      internal::flags().filter = value;
    } else {
      argv[out++] = argv[i];  // unrecognized: keep for the caller to report
    }
  }
  *argc = out;
}

inline bool ReportUnrecognizedArguments(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "minibench: unrecognized argument: %s\n", argv[i]);
  }
  return argc > 1;
}

inline std::size_t RunSpecifiedBenchmarks() {
  if (internal::flags().out_format != "json" &&
      !internal::flags().out_path.empty()) {
    std::fprintf(stderr, "minibench: only json output is supported\n");
  }
  std::vector<internal::Result> results;
  std::size_t family_index = 0;
  for (const auto& family : internal::families()) {
    const auto arg_sets = family->arg_sets.empty()
                              ? std::vector<std::vector<std::int64_t>>{{}}
                              : family->arg_sets;
    std::size_t instance_index = 0;
    for (const auto& args : arg_sets) {
      const std::string name = internal::instance_name(*family, args);
      if (!internal::flags().filter.empty() &&
          name.find(internal::flags().filter) == std::string::npos) {
        continue;
      }
      results.push_back(internal::run_instance(*family, family_index,
                                               instance_index, args));
      ++instance_index;
    }
    ++family_index;
  }
  internal::print_console(results);
  internal::write_json(results, internal::stored_argv0());
  return results.size();
}

inline void Shutdown() {}

}  // namespace benchmark

#define MINIBENCH_CONCAT2(a, b) a##b
#define MINIBENCH_CONCAT(a, b) MINIBENCH_CONCAT2(a, b)
#define BENCHMARK(fn)                                        \
  static ::benchmark::Benchmark* MINIBENCH_CONCAT(           \
      minibench_registration_, __LINE__) =                   \
      ::benchmark::RegisterBenchmark(#fn, fn)
