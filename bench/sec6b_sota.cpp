// Sec. VI-B: comparison with state-of-the-art on ResNet50.
//
// Paper numbers on the authors' 2080 Ti: batching 433 JPS; DARIS 498 JPS
// (+15% over batching, +11.5% over a GSlice-like server whose gain over
// batching is ~3.5%); DARIS without oversubscription drops to 374 JPS.
// Clockwork-style serialised serving and an RTGPU-like scheduler (global
// EDF, no staging, no admission) are included for context.
#include <cstdio>

#include "baselines/batching_server.h"
#include "baselines/clockwork_server.h"
#include "baselines/gslice_server.h"
#include "common/table.h"
#include "experiments/runner.h"

using namespace daris;

namespace {
exp::RunResult run_daris_r50(double os, bool staging, bool fixed,
                             bool admission) {
  exp::RunConfig cfg;
  cfg.taskset = workload::resnet50_taskset();
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 6;
  cfg.sched.oversubscription = os;
  cfg.sched.staging = staging;
  cfg.sched.fixed_levels = fixed;
  cfg.sched.prioritize_last_stage = fixed;
  cfg.sched.boost_after_miss = fixed;
  cfg.sched.lp_admission = admission;
  cfg.duration_s = 6.0;
  return exp::run_daris(cfg);
}
}  // namespace

int main() {
  const gpusim::GpuSpec spec = gpusim::GpuSpec::rtx2080ti();
  std::printf("== Sec. VI-B: ResNet50 comparison with state of the art ==\n\n");

  const auto batching =
      baselines::best_batched_jps(dnn::ModelKind::kResNet50, spec, 3.0);
  const auto gslice =
      baselines::best_gslice_jps(dnn::ModelKind::kResNet50, spec, 3.0);
  const auto daris = run_daris_r50(6.0, true, true, true);
  const auto daris_no_os = run_daris_r50(1.0, true, true, true);
  const auto clockwork =
      baselines::run_clockwork(workload::resnet50_taskset(), spec, 3.0);
  // RTGPU-like: global EDF without staging, priorities, or admission — run
  // at full load (not 150% overload) since it has no shedding mechanism.
  exp::RunConfig rtgpu_cfg;
  rtgpu_cfg.taskset =
      workload::scaled_taskset(dnn::ModelKind::kResNet50, 2.0 / 3.0, 1.0 / 3.0);
  rtgpu_cfg.sched.policy = rt::Policy::kMps;
  rtgpu_cfg.sched.num_contexts = 6;
  rtgpu_cfg.sched.oversubscription = 6.0;
  rtgpu_cfg.sched.staging = false;
  rtgpu_cfg.sched.fixed_levels = false;
  rtgpu_cfg.sched.prioritize_last_stage = false;
  rtgpu_cfg.sched.boost_after_miss = false;
  rtgpu_cfg.sched.lp_admission = false;
  rtgpu_cfg.duration_s = 6.0;
  const auto rtgpu_like = exp::run_daris(rtgpu_cfg);

  common::Table table({"system", "JPS", "vs batching", "HP DMR", "LP DMR",
                       "paper JPS", "paper vs batching"});
  auto row = [&](const char* name, double jps, double hp_dmr, double lp_dmr,
                 const char* paper_jps, const char* paper_rel) {
    table.add_row({name, common::fmt_double(jps, 0),
                   common::fmt_percent(jps / batching.jps - 1.0, 1),
                   common::fmt_percent(hp_dmr, 2),
                   common::fmt_percent(lp_dmr, 2), paper_jps, paper_rel});
  };
  row("batching (upper)", batching.jps, 0, 0, "433", "--");
  row("GSlice-like", gslice.jps, 0, 0, "~448", "+3.5%");
  row("DARIS (6x1 OS6)", daris.total_jps, daris.hp.dmr(), daris.lp.dmr(),
      "498", "+15%");
  row("DARIS w/o OS (6x1 OS1)", daris_no_os.total_jps, daris_no_os.hp.dmr(),
      daris_no_os.lp.dmr(), "374", "-14%");
  row("Clockwork-like (serialised)", clockwork.jps, clockwork.hp_dmr,
      clockwork.lp_dmr, "--", "low tput, predictable");
  row("RTGPU-like (EDF, no staging/admission)", rtgpu_like.total_jps,
      rtgpu_like.hp.dmr(), rtgpu_like.lp.dmr(), "--", "up to 11% misses");
  std::printf("%s\n", table.to_string().c_str());

  std::printf("DARIS over GSlice-like: %s (paper: +11.5%%)\n",
              exp::relative_error(daris.total_jps, gslice.jps).c_str());
  std::printf("paper LP DMR context: [15] reports <=12%% LP misses; DARIS "
              "stays below 7%% with MPS and ~0 with STR.\n");
  return 0;
}
