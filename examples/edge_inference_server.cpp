// Edge inference server: compare serving strategies for one InceptionV3
// service on a single GPU — plain batching, a GSlice-like spatial-sharing
// server, Clockwork-like serialised serving, and DARIS with batched inputs
// (the paper's Fig. 10 configuration, B = 8).
//
// Demonstrates: the baselines API and DARIS's batch mode side by side.
#include <cstdio>

#include "baselines/batching_server.h"
#include "baselines/clockwork_server.h"
#include "baselines/gslice_server.h"
#include "common/table.h"
#include "experiments/runner.h"

using namespace daris;

int main() {
  const gpusim::GpuSpec spec = gpusim::GpuSpec::rtx2080ti();
  const dnn::ModelKind kind = dnn::ModelKind::kInceptionV3;
  std::printf("edge inference server study: %s on a simulated 2080 Ti\n\n",
              dnn::model_name(kind));

  // 1. Plain batching at several batch sizes.
  common::Table table({"strategy", "samples/sec", "note"});
  for (int b : {1, 8, 32}) {
    const auto r = baselines::measure_batched_jps(kind, b, spec, 2.0);
    char name[32], note[64];
    std::snprintf(name, sizeof(name), "batching B=%d", b);
    std::snprintf(note, sizeof(note), "batch latency %.1f ms",
                  r.batch_latency_ms);
    table.add_row({name, common::fmt_double(r.jps, 0), note});
  }

  // 2. GSlice-like spatial sharing.
  const auto gslice = baselines::best_gslice_jps(kind, spec, 2.0);
  {
    char note[64];
    std::snprintf(note, sizeof(note), "%d slices x B=%d", gslice.slices,
                  gslice.batch);
    table.add_row({"GSlice-like", common::fmt_double(gslice.jps, 0), note});
  }

  // 3. Clockwork-like serialised serving of the Table II task set.
  const auto clockwork =
      baselines::run_clockwork(workload::table2_taskset(kind), spec, 2.0);
  {
    char note[96];
    std::snprintf(note, sizeof(note),
                  "predictable; drops %.0f%% up front, DMR ~0",
                  100.0 * clockwork.drop_rate);
    table.add_row({"Clockwork-like", common::fmt_double(clockwork.jps, 0),
                   note});
  }

  // 4. DARIS with batched inputs (Fig. 10: B = 8 for InceptionV3).
  exp::RunConfig cfg;
  cfg.taskset = workload::table2_taskset(kind);
  for (auto& t : cfg.taskset.tasks) {
    t.period *= 8;  // each job now carries 8 samples
    t.relative_deadline = t.period;
  }
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 8;
  cfg.sched.oversubscription = 8.0;
  cfg.sched.batch = 8;
  cfg.duration_s = 3.0;
  const exp::RunResult daris = exp::run_daris(cfg);
  {
    char note[96];
    std::snprintf(note, sizeof(note),
                  "HP DMR %.2f%%, LP DMR %.2f%%, with deadlines",
                  100.0 * daris.hp.dmr(), 100.0 * daris.lp.dmr());
    table.add_row({"DARIS 8x1 OS8 + B=8",
                   common::fmt_double(daris.total_jps * 8.0, 0), note});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "reading: batching lifts raw samples/sec but offers no deadlines;\n"
      "DARIS with batched inputs exceeds the batching baseline *and* gives\n"
      "per-job deadline guarantees with priorities (paper Sec. VI-H).\n");
  return 0;
}
