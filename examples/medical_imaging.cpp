// Hospital imaging box: UNet segmentation for interventional imaging (HP,
// must be fresh every frame) next to batch studies (LP) on an embedded GPU
// *without MPS support* — the paper's stated case for the STR policy
// ("in scenarios with embedded GPUs lacking MPS support, STR is the sole
// feasible option", Sec. VI-C).
//
// Demonstrates: STR policy (single context, streams only), zero-DMR
// behaviour, and MRET adaptation visible through the public API.
#include <cstdio>

#include "daris/offline.h"
#include "daris/scheduler.h"
#include "dnn/zoo.h"
#include "gpusim/gpu.h"
#include "metrics/collector.h"
#include "sim/simulator.h"
#include "workload/driver.h"

using namespace daris;

int main() {
  sim::Simulator sim;
  // A smaller embedded-class device: half the SMs of the 2080 Ti.
  gpusim::GpuSpec spec = gpusim::GpuSpec::rtx2080ti();
  spec.sm_count = 34;
  spec.mem_bandwidth = 40.0;
  gpusim::Gpu gpu(sim, spec);

  const dnn::CompiledModel unet =
      dnn::compiled_model(dnn::ModelKind::kUNet, 1, spec);

  // STR: one context (no MPS), four streams.
  rt::SchedulerConfig config;
  config.policy = rt::Policy::kStr;
  config.streams_per_context = 4;

  metrics::Collector metrics;
  rt::Scheduler daris(sim, gpu, config, &metrics);

  auto add = [&](common::Priority prio, double hz, double phase_ms) {
    rt::TaskSpec t;
    t.model = dnn::ModelKind::kUNet;
    t.period = common::period_for_jps(hz);
    t.relative_deadline = t.period;
    t.priority = prio;
    t.phase = common::from_ms(phase_ms);
    return daris.add_task(t, &unet);
  };

  // One interventional feed at 15 Hz (HP) + four background studies (LP).
  const int live_feed = add(common::Priority::kHigh, 15.0, 0.0);
  for (int i = 0; i < 4; ++i) {
    add(common::Priority::kLow, 8.0, 5.0 + 7.0 * i);
  }

  const rt::AfetResult afet = rt::profile_afet(spec, config, {&unet});
  for (int i = 0; i < daris.task_count(); ++i) {
    daris.set_afet(i, afet.for_model(&unet));
  }
  daris.run_offline_phase();

  const common::Time horizon = common::from_sec(4.0);
  workload::PeriodicDriver driver(sim, daris, horizon);
  driver.start();
  sim.run_until(horizon);

  const auto& hp = metrics.summary(common::Priority::kHigh);
  const auto& lp = metrics.summary(common::Priority::kLow);
  std::printf("embedded GPU (34 SMs, no MPS) with STR 1x4 after %.0f s:\n",
              common::to_sec(horizon));
  std::printf("  live segmentation: %llu frames, %llu late, response "
              "p50/max %.1f/%.1f ms (deadline %.1f ms)\n",
              (unsigned long long)hp.completed, (unsigned long long)hp.missed,
              hp.response_ms.percentile(50), hp.response_ms.max(),
              common::to_ms(daris.task(live_feed).spec().relative_deadline));
  std::printf("  batch studies:     %llu frames, %.2f%% DMR, %llu deferred\n",
              (unsigned long long)lp.completed, 100.0 * lp.dmr(),
              (unsigned long long)lp.rejected);

  // The MRET estimate the admission test is using right now (adapted from
  // the AFET seed by real measurements).
  const auto& live = daris.task(live_feed);
  std::printf("  MRET of the live feed now: %.1f ms across %zu stages "
              "(utilisation u = %.2f)\n",
              live.mret().total_mret_us() / 1e3, live.num_stages(),
              live.utilization());
  std::printf("  => STR: lowest possible DMR at reduced peak throughput — "
              "the paper's recommendation for MPS-less GPUs.\n");
  return 0;
}
