// Quickstart: schedule a small mixed-priority ResNet18 workload with DARIS
// on the simulated RTX 2080 Ti and print what happened.
//
// Walks the full public API surface:
//   1. build a GPU and a calibrated model,
//   2. configure DARIS (policy, Nc x Ns, OS),
//   3. register periodic tasks and run the offline phase,
//   4. drive releases and collect metrics.
#include <cstdio>

#include "daris/offline.h"
#include "daris/scheduler.h"
#include "dnn/zoo.h"
#include "gpusim/gpu.h"
#include "metrics/collector.h"
#include "sim/simulator.h"
#include "workload/driver.h"

using namespace daris;

int main() {
  // 1. The simulated GPU (calibrated against the paper's RTX 2080 Ti).
  sim::Simulator sim;
  const gpusim::GpuSpec spec = gpusim::GpuSpec::rtx2080ti();
  gpusim::Gpu gpu(sim, spec);

  // A calibrated ResNet18, lowered to kernels with its 4-stage partition.
  const dnn::CompiledModel resnet =
      dnn::compiled_model(dnn::ModelKind::kResNet18, /*batch=*/1, spec);
  std::printf("model: %s, %zu stages, %zu kernels\n", resnet.name.c_str(),
              resnet.stage_count(), resnet.kernel_count());

  // 2. DARIS with the paper's best ResNet18 configuration: MPS, 4 contexts
  //    here (small demo), full oversubscription.
  rt::SchedulerConfig config;
  config.policy = rt::Policy::kMps;
  config.num_contexts = 4;
  config.oversubscription = 4.0;

  metrics::Collector metrics;
  rt::Scheduler daris(sim, gpu, config, &metrics);

  // 3. Two high-priority camera feeds at 30 Hz and six low-priority
  //    analytics tasks at 20 Hz. Deadlines equal periods.
  auto add = [&](common::Priority prio, double hz, common::Duration phase) {
    rt::TaskSpec t;
    t.model = dnn::ModelKind::kResNet18;
    t.period = common::period_for_jps(hz);
    t.relative_deadline = t.period;
    t.priority = prio;
    t.phase = phase;
    return daris.add_task(t, &resnet);
  };
  for (int i = 0; i < 2; ++i) {
    add(common::Priority::kHigh, 30.0, common::from_ms(2.0 * i));
  }
  for (int i = 0; i < 6; ++i) {
    add(common::Priority::kLow, 20.0, common::from_ms(3.0 * i));
  }

  // Offline phase: AFET profiling under full load, then Algorithm 1.
  const rt::AfetResult afet = rt::profile_afet(spec, config, {&resnet});
  for (int i = 0; i < daris.task_count(); ++i) {
    daris.set_afet(i, afet.for_model(&resnet));
  }
  daris.run_offline_phase();

  // 4. Two simulated seconds of periodic releases.
  const common::Time horizon = common::from_sec(2.0);
  workload::PeriodicDriver driver(sim, daris, horizon);
  driver.start();
  sim.run_until(horizon);

  const auto& hp = metrics.summary(common::Priority::kHigh);
  const auto& lp = metrics.summary(common::Priority::kLow);
  std::printf("\nafter %.1f simulated seconds:\n", common::to_sec(horizon));
  std::printf("  throughput:       %.0f jobs/sec (GPU %.0f%% busy)\n",
              metrics.throughput_jps(horizon),
              100.0 * gpu.utilization(horizon));
  std::printf("  HP: %llu done, %llu missed, response p50 %.1f ms\n",
              (unsigned long long)hp.completed, (unsigned long long)hp.missed,
              hp.response_ms.percentile(50));
  std::printf("  LP: %llu done, %llu missed (%.2f%% DMR), %llu rejected, "
              "response p50 %.1f ms\n",
              (unsigned long long)lp.completed, (unsigned long long)lp.missed,
              100.0 * lp.dmr(), (unsigned long long)lp.rejected,
              lp.response_ms.percentile(50));
  std::printf("  LP migrations between contexts: %llu\n",
              (unsigned long long)daris.migrations());
  return 0;
}
