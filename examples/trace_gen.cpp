// Trace generator CLI: emits the CSV traces workload::TraceDriver replays
// (docs/SCENARIOS.md documents the format and the scenario harness that
// consumes them). The bundled tests/data/diurnal_50k.csv fixture was
// produced by this tool; regenerate it with:
//
//   example_trace_gen --duration-s 30 --rate 1260 --diurnal-amp 0.5
//       --diurnal-period-s 20 --flash 22:3:2.5 --seed 42
//       --out tests/data/diurnal_50k.csv   (one line)
//
// The default mix is the mixed Table II task set's demand shares; override
// per class with repeated --mix model:slo:weight flags.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "workload/taskset.h"
#include "workload/trace.h"

using namespace daris;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--out FILE] [--duration-s S] [--rate JPS]\n"
      "          [--diurnal-amp A] [--diurnal-period-s S] [--diurnal-phase R]\n"
      "          [--flash START:DURATION:FACTOR]... [--seed N]\n"
      "          [--mix MODEL:SLO:WEIGHT]...\n"
      "\n"
      "Writes an `arrival_us,model,slo` CSV trace (stdout without --out).\n"
      "MODEL in {resnet18,resnet50,unet,inceptionv3}, SLO in {hp,lp}.\n"
      "Without --mix the mixed Table II demand shares are used.\n",
      argv0);
}

bool parse_triple(const std::string& arg, double* a, double* b, double* c) {
  const std::size_t p1 = arg.find(':');
  const std::size_t p2 = p1 == std::string::npos ? p1 : arg.find(':', p1 + 1);
  if (p2 == std::string::npos) return false;
  try {
    *a = std::stod(arg.substr(0, p1));
    *b = std::stod(arg.substr(p1 + 1, p2 - p1 - 1));
    *c = std::stod(arg.substr(p2 + 1));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool parse_mix(const std::string& arg, workload::TraceMixEntry* out) {
  const std::size_t p1 = arg.find(':');
  const std::size_t p2 = p1 == std::string::npos ? p1 : arg.find(':', p1 + 1);
  if (p2 == std::string::npos) return false;
  const std::string model = arg.substr(0, p1);
  const std::string slo = arg.substr(p1 + 1, p2 - p1 - 1);
  if (model == "resnet18") {
    out->model = dnn::ModelKind::kResNet18;
  } else if (model == "resnet50") {
    out->model = dnn::ModelKind::kResNet50;
  } else if (model == "unet") {
    out->model = dnn::ModelKind::kUNet;
  } else if (model == "inceptionv3") {
    out->model = dnn::ModelKind::kInceptionV3;
  } else {
    return false;
  }
  if (slo == "hp") {
    out->slo = common::Priority::kHigh;
  } else if (slo == "lp") {
    out->slo = common::Priority::kLow;
  } else {
    return false;
  }
  try {
    out->weight = std::stod(arg.substr(p2 + 1));
  } catch (const std::exception&) {
    return false;
  }
  return out->weight > 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  workload::TraceGenConfig config;
  std::vector<workload::TraceMixEntry> mix;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--duration-s") {
      config.duration_s = std::atof(value());
    } else if (arg == "--rate") {
      config.mean_rate_jps = std::atof(value());
    } else if (arg == "--diurnal-amp") {
      config.diurnal_amplitude = std::atof(value());
    } else if (arg == "--diurnal-period-s") {
      config.diurnal_period_s = std::atof(value());
    } else if (arg == "--diurnal-phase") {
      config.diurnal_phase = std::atof(value());
    } else if (arg == "--seed") {
      config.seed = static_cast<std::uint64_t>(std::strtoull(
          value(), nullptr, 10));
    } else if (arg == "--flash") {
      workload::FlashCrowd f;
      if (!parse_triple(value(), &f.start_s, &f.duration_s, &f.factor)) {
        std::fprintf(stderr, "bad --flash (want START:DURATION:FACTOR)\n");
        return 2;
      }
      config.flashes.push_back(f);
    } else if (arg == "--mix") {
      workload::TraceMixEntry e;
      if (!parse_mix(value(), &e)) {
        std::fprintf(stderr, "bad --mix (want MODEL:SLO:WEIGHT)\n");
        return 2;
      }
      mix.push_back(e);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (mix.empty()) mix = workload::trace_mix(workload::mixed_taskset());

  const workload::Trace trace = workload::generate_trace(mix, config);
  if (out_path.empty()) {
    workload::write_trace_csv(std::cout, trace);
  } else {
    std::string error;
    if (!workload::save_trace_csv(out_path, trace, &error)) {
      std::fprintf(stderr, "write failed: %s\n", error.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "%zu rows, %.1f s, seed %llu\n", trace.rows.size(),
               config.duration_s,
               static_cast<unsigned long long>(config.seed));
  return 0;
}
