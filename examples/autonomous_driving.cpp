// Autonomous-driving perception stack (the paper's lead motivation):
// hard-ish HP pipelines (camera object detection, drivable-area
// segmentation) colocated with LP cabin analytics on one GPU, including an
// overload episode handled by the Overload+HPA admission mode.
//
// Demonstrates: mixed DNN task sets, HP admission (Sec. VI-I), and how
// staging keeps HP response times short while LP soaks up leftover GPU.
#include <cstdio>

#include "daris/offline.h"
#include "daris/scheduler.h"
#include "dnn/zoo.h"
#include "gpusim/gpu.h"
#include "metrics/collector.h"
#include "sim/simulator.h"
#include "workload/driver.h"

using namespace daris;

int main() {
  sim::Simulator sim;
  const gpusim::GpuSpec spec = gpusim::GpuSpec::rtx2080ti();
  gpusim::Gpu gpu(sim, spec);

  const dnn::CompiledModel detector =
      dnn::compiled_model(dnn::ModelKind::kResNet18, 1, spec);
  const dnn::CompiledModel segmenter =
      dnn::compiled_model(dnn::ModelKind::kUNet, 1, spec);
  const dnn::CompiledModel analyzer =
      dnn::compiled_model(dnn::ModelKind::kInceptionV3, 1, spec);

  // Safety-critical deployments take the HP admission test too
  // (Overload+HPA): a dropped frame is detectable, a late one is not.
  rt::SchedulerConfig config;
  config.policy = rt::Policy::kMps;
  config.num_contexts = 6;
  config.oversubscription = 6.0;
  config.hp_admission = true;

  metrics::Collector metrics;
  rt::Scheduler daris(sim, gpu, config, &metrics);

  auto add = [&](const dnn::CompiledModel* model, dnn::ModelKind kind,
                 common::Priority prio, double hz, double phase_ms) {
    rt::TaskSpec t;
    t.model = kind;
    t.period = common::period_for_jps(hz);
    t.relative_deadline = t.period;
    t.priority = prio;
    t.phase = common::from_ms(phase_ms);
    return daris.add_task(t, model);
  };

  // HP: 4 surround cameras at 30 Hz detection + 1 front segmentation at 24.
  std::printf("perception stack:\n");
  for (int cam = 0; cam < 4; ++cam) {
    add(&detector, dnn::ModelKind::kResNet18, common::Priority::kHigh, 30.0,
        2.0 * cam);
    std::printf("  [HP] camera%d object detection  ResNet18    @ 30 Hz\n",
                cam);
  }
  add(&segmenter, dnn::ModelKind::kUNet, common::Priority::kHigh, 24.0, 1.0);
  std::printf("  [HP] drivable-area segmentation UNet        @ 24 Hz\n");

  // LP: cabin monitoring and scene classification at 24 Hz each.
  for (int i = 0; i < 6; ++i) {
    add(&analyzer, dnn::ModelKind::kInceptionV3, common::Priority::kLow, 24.0,
        1.5 * i);
  }
  std::printf("  [LP] 6x scene/cabin analytics   InceptionV3 @ 24 Hz\n\n");

  const rt::AfetResult afet =
      rt::profile_afet(spec, config, {&detector, &segmenter, &analyzer});
  for (int i = 0; i < daris.task_count(); ++i) {
    const auto& t = daris.task(i);
    const dnn::CompiledModel* m =
        t.spec().model == dnn::ModelKind::kResNet18  ? &detector
        : t.spec().model == dnn::ModelKind::kUNet    ? &segmenter
                                                     : &analyzer;
    daris.set_afet(i, afet.for_model(m));
  }
  daris.run_offline_phase();

  const common::Time horizon = common::from_sec(3.0);
  workload::PeriodicDriver driver(sim, daris, horizon);
  driver.start();
  sim.run_until(horizon);

  const auto& hp = metrics.summary(common::Priority::kHigh);
  const auto& lp = metrics.summary(common::Priority::kLow);
  std::printf("after %.0f simulated seconds (GPU %.0f%% busy):\n",
              common::to_sec(horizon), 100.0 * gpu.utilization(horizon));
  std::printf("  HP frames: %llu done, %llu dropped by HPA, %llu late "
              "(response p50/p99 = %.1f/%.1f ms)\n",
              (unsigned long long)hp.completed,
              (unsigned long long)hp.rejected, (unsigned long long)hp.missed,
              hp.response_ms.percentile(50), hp.response_ms.percentile(99));
  std::printf("  LP frames: %llu done, %llu rejected, %.2f%% DMR "
              "(response p50 = %.1f ms)\n",
              (unsigned long long)lp.completed,
              (unsigned long long)lp.rejected, 100.0 * lp.dmr(),
              lp.response_ms.percentile(50));
  if (hp.missed == 0) {
    std::printf("  => every admitted safety-critical frame met its "
                "deadline.\n");
  }
  return 0;
}
