// Multi-GPU serving walkthrough: a three-GPU fleet behind the hybrid
// affinity+spillover routing front-end, driven by open-loop Poisson
// arrivals, with cold-model migrations paying real weight transfers
// (docs/CLUSTER.md is the policy guide).
//
// This is the cluster-level counterpart of quickstart.cpp. It shows the two
// ways to run a fleet:
//   1. the one-call harness (exp::run_cluster), which is what benches use;
//   2. the underlying objects (Fleet + Router + OpenLoopDriver) wired by
//      hand, for applications that need custom placement or instrumentation.
#include <cstdio>

#include "common/table.h"
#include "experiments/cluster_runner.h"
#include "metrics/trace_report.h"

using namespace daris;

int main() {
  std::printf("== cluster_serving: 3 GPUs, hybrid affinity+spillover ==\n\n");

  // --- 1. One-call harness -------------------------------------------------
  // Mixed Table II workload, replicated per GPU so each device sees the
  // paper's 150% operating point; Poisson arrivals make the load open-loop
  // (releases do not wait for completions).
  exp::ClusterConfig cfg;
  cfg.taskset = workload::replicated_taskset(workload::mixed_taskset(), 3);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 6;
  cfg.sched.oversubscription = 6.0;
  cfg.num_gpus = 3;
  // Hybrid affinity+spillover (see docs/CLUSTER.md for the policy guide):
  // LP jobs stay on their model-affine home GPU until its load crosses
  // spill_threshold, then spill to the best-scoring peer. Migrations of a
  // rejected job to a device whose weights are cold pay a per-MB transfer.
  cfg.routing = cluster::RoutingPolicy::kHybrid;
  cfg.spill_threshold = 0.75;
  cfg.transfer_us_per_mb = 80.0;  // ~PCIe 3.0 x16; 0 = zero-delay premise
  cfg.arrivals = exp::ArrivalMode::kPoisson;
  cfg.duration_s = 2.0;
  cfg.warmup_s = 0.5;
  cfg.stage_trace = true;

  const exp::ClusterResult r = exp::run_cluster(cfg);

  std::printf("fleet throughput: %.0f JPS (%llu arrivals)\n", r.total_jps,
              static_cast<unsigned long long>(r.arrivals));
  std::printf("HP: %.2f%% DMR | LP: %.2f%% DMR, %.1f%% rejected\n",
              100.0 * r.hp.dmr(), 100.0 * r.lp.dmr(),
              100.0 * r.lp.rejection_rate());
  std::printf("cross-GPU migrations: %llu (%llu weight transfers, %.0f MB), "
              "drops: %llu (%llu infeasible)\n\n",
              static_cast<unsigned long long>(r.cross_gpu_migrations),
              static_cast<unsigned long long>(r.transfers), r.transferred_mb,
              static_cast<unsigned long long>(r.drops),
              static_cast<unsigned long long>(r.infeasible_rejects));

  common::Table per_gpu({"GPU", "util", "completed", "routed", "home admits",
                         "migr in", "migr out", "dropped"});
  for (std::size_t g = 0; g < r.per_gpu.size(); ++g) {
    const auto& s = r.per_gpu[g];
    per_gpu.add_row(
        {common::fmt_int(static_cast<long long>(g)),
         common::fmt_percent(s.utilization, 0),
         common::fmt_int(static_cast<long long>(s.completed)),
         common::fmt_int(static_cast<long long>(s.routing.routed)),
         common::fmt_int(static_cast<long long>(s.routing.home_admits)),
         common::fmt_int(static_cast<long long>(s.routing.migrated_in)),
         common::fmt_int(static_cast<long long>(s.routing.migrated_out)),
         common::fmt_int(static_cast<long long>(s.routing.dropped))});
  }
  std::printf("%s\n", per_gpu.to_string().c_str());
  std::printf("%s\n", metrics::trace_report(r.stage_trace).to_string().c_str());

  // --- 2. The same fleet wired by hand ------------------------------------
  // Everything the harness does is public API: build a Fleet on one
  // simulator, register tasks with a home GPU, route releases through a
  // Router, and drive it with any ReleaseFn-based driver.
  sim::Simulator sim;
  metrics::Collector collector;
  collector.set_gpu_count(2);

  cluster::FleetConfig fleet_cfg;
  fleet_cfg.num_gpus = 2;
  fleet_cfg.sched.policy = rt::Policy::kMps;
  fleet_cfg.sched.num_contexts = 4;
  fleet_cfg.sched.oversubscription = 4.0;
  // Heterogeneous fleets instead set fleet_cfg.nodes: one GpuNodeSpec per
  // device with its own compute_scale (SMs + bandwidth) and memory_mb
  // budget for pinned model weights.
  cluster::Fleet fleet(sim, fleet_cfg, &collector);

  const auto model = dnn::compiled_model(dnn::ModelKind::kResNet18, 1,
                                         fleet_cfg.gpu);
  // LP so the routing policy places it: HP jobs always start at their home
  // GPU (the device carrying their admission reservation).
  rt::TaskSpec spec;
  spec.model = dnn::ModelKind::kResNet18;
  spec.period = common::period_for_jps(60.0);
  spec.relative_deadline = spec.period;
  spec.priority = common::Priority::kLow;
  const int task = fleet.add_task(spec, &model, /*home_gpu=*/0);
  fleet.set_afet(task, std::vector<double>(model.stage_count(), 500.0));
  fleet.run_offline_phase();

  cluster::RouterConfig router_cfg;
  router_cfg.policy = cluster::RoutingPolicy::kRoundRobin;
  router_cfg.seed = 1;
  cluster::Router router(fleet, router_cfg, &collector);
  workload::TaskSetSpec taskset;
  taskset.tasks.push_back(spec);
  workload::PeriodicDriver driver(
      sim, taskset, [&router](int id) { router.release(id); },
      common::from_sec(1.0));
  driver.start();
  sim.run_until(common::from_sec(1.0));

  std::printf("hand-wired fleet: GPU0 served %llu jobs, GPU1 served %llu "
              "(round-robin)\n",
              static_cast<unsigned long long>(fleet.jobs_completed(0)),
              static_cast<unsigned long long>(fleet.jobs_completed(1)));
  return 0;
}
