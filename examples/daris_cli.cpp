// Command-line experiment driver: run any DARIS configuration on any task
// set from the shell, print the summary, optionally dump a Chrome-trace
// timeline. The fifth "example", and the quickest way to explore the
// configuration space without writing code.
//
//   daris_cli --model resnet18 --policy mps --contexts 6 --os 6
//             --duration 4 --trace /tmp/timeline.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "experiments/runner.h"
#include "metrics/trace_export.h"

using namespace daris;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --model resnet18|resnet50|unet|inception|mixed   (default resnet18)\n"
      "  --policy str|mps|mps+str                         (default mps)\n"
      "  --contexts N        number of MPS contexts Nc    (default 6)\n"
      "  --streams N         streams per context Ns       (default 1)\n"
      "  --os X              oversubscription level       (default Nc)\n"
      "  --batch B           samples per job              (default 1)\n"
      "  --load X            load factor, 1.0 = 150%% pt  (default 1.0)\n"
      "  --hp-frac X         HP share of tasks            (default 1/3)\n"
      "  --window W          MRET window ws               (default 5)\n"
      "  --duration S        simulated seconds            (default 4)\n"
      "  --seed N            RNG seed                     (default 42)\n"
      "  --hpa               HP jobs take the admission test\n"
      "  --no-staging / --no-last / --no-prior / --no-fixed  ablations\n"
      "  --trace FILE        write Chrome-trace JSON timeline\n"
      "  --csv               machine-readable one-line output\n",
      argv0);
}

bool arg_is(const char* a, const char* name) { return !std::strcmp(a, name); }

}  // namespace

int main(int argc, char** argv) {
  std::string model = "resnet18";
  std::string policy = "mps";
  std::string trace_file;
  bool csv = false;
  double load = 1.0, hp_frac = 1.0 / 3.0, os = -1.0, duration = 4.0;
  int contexts = 6, streams = 1, batch = 1, window = 5;
  std::uint64_t seed = 42;
  rt::SchedulerConfig sched;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg_is(a, "--model")) model = next();
    else if (arg_is(a, "--policy")) policy = next();
    else if (arg_is(a, "--contexts")) contexts = std::atoi(next());
    else if (arg_is(a, "--streams")) streams = std::atoi(next());
    else if (arg_is(a, "--os")) os = std::atof(next());
    else if (arg_is(a, "--batch")) batch = std::atoi(next());
    else if (arg_is(a, "--load")) load = std::atof(next());
    else if (arg_is(a, "--hp-frac")) hp_frac = std::atof(next());
    else if (arg_is(a, "--window")) window = std::atoi(next());
    else if (arg_is(a, "--duration")) duration = std::atof(next());
    else if (arg_is(a, "--seed")) seed = std::strtoull(next(), nullptr, 10);
    else if (arg_is(a, "--hpa")) sched.hp_admission = true;
    else if (arg_is(a, "--no-staging")) sched.staging = false;
    else if (arg_is(a, "--no-last")) sched.prioritize_last_stage = false;
    else if (arg_is(a, "--no-prior")) sched.boost_after_miss = false;
    else if (arg_is(a, "--no-fixed")) sched.fixed_levels = false;
    else if (arg_is(a, "--trace")) trace_file = next();
    else if (arg_is(a, "--csv")) csv = true;
    else {
      usage(argv[0]);
      return arg_is(a, "--help") || arg_is(a, "-h") ? 0 : 2;
    }
  }

  exp::RunConfig cfg;
  if (model == "mixed") {
    cfg.taskset = workload::mixed_taskset(seed);
  } else {
    dnn::ModelKind kind;
    if (model == "resnet18") kind = dnn::ModelKind::kResNet18;
    else if (model == "resnet50") kind = dnn::ModelKind::kResNet50;
    else if (model == "unet") kind = dnn::ModelKind::kUNet;
    else if (model == "inception") kind = dnn::ModelKind::kInceptionV3;
    else {
      std::fprintf(stderr, "unknown model '%s'\n", model.c_str());
      return 2;
    }
    cfg.taskset = workload::scaled_taskset(kind, load, hp_frac, seed);
  }

  if (policy == "str") sched.policy = rt::Policy::kStr;
  else if (policy == "mps") sched.policy = rt::Policy::kMps;
  else if (policy == "mps+str") sched.policy = rt::Policy::kMpsStr;
  else {
    std::fprintf(stderr, "unknown policy '%s'\n", policy.c_str());
    return 2;
  }
  sched.num_contexts = contexts;
  sched.streams_per_context = streams;
  sched.oversubscription = os < 0 ? contexts : os;
  sched.batch = batch;
  sched.mret_window = window;
  cfg.sched = sched;
  cfg.duration_s = duration;
  cfg.warmup_s = std::min(1.0, duration / 4.0);
  cfg.seed = seed;
  cfg.stage_trace = !trace_file.empty();

  const exp::RunResult r = exp::run_daris(cfg);

  if (csv) {
    std::printf("%s,%s,%s,%.1f,%.2f,%.4f,%.4f,%.3f,%.3f,%.4f,%llu\n",
                model.c_str(), policy.c_str(), cfg.sched.label().c_str(),
                cfg.taskset.demand_jps(), r.total_jps, r.hp.dmr(), r.lp.dmr(),
                r.hp.response_ms.percentile(50),
                r.lp.response_ms.percentile(50), r.gpu_utilization,
                static_cast<unsigned long long>(r.migrations));
  } else {
    std::printf("%s on %s %s: demand %.0f JPS\n", policy.c_str(),
                model.c_str(), cfg.sched.label().c_str(),
                cfg.taskset.demand_jps());
    std::printf("  throughput %.0f JPS, GPU %.0f%% busy, %llu migrations\n",
                r.total_jps, 100.0 * r.gpu_utilization,
                static_cast<unsigned long long>(r.migrations));
    std::printf("  HP: DMR %.2f%%, resp p50/p99 %.1f/%.1f ms, rejected "
                "%.1f%%\n",
                100.0 * r.hp.dmr(), r.hp.response_ms.percentile(50),
                r.hp.response_ms.percentile(99),
                100.0 * r.hp.rejection_rate());
    std::printf("  LP: DMR %.2f%%, resp p50/p99 %.1f/%.1f ms, rejected "
                "%.1f%%\n",
                100.0 * r.lp.dmr(), r.lp.response_ms.percentile(50),
                r.lp.response_ms.percentile(99),
                100.0 * r.lp.rejection_rate());
  }

  if (!trace_file.empty()) {
    metrics::TraceRecorder recorder;
    recorder.add_stage_events(r.stage_trace);
    std::ofstream out(trace_file);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_file.c_str());
      return 1;
    }
    out << metrics::to_chrome_trace_json(recorder.spans());
    std::fprintf(stderr, "wrote %zu spans to %s\n", recorder.size(),
                 trace_file.c_str());
  }
  return 0;
}
