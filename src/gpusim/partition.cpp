#include "gpusim/partition.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace daris::gpusim {

int ceil_even(double x) {
  const int up = static_cast<int>(std::ceil(x - 1e-12));
  return (up % 2 == 0) ? up : up + 1;
}

int sm_quota_per_context(const GpuSpec& spec, int num_contexts,
                         double oversubscription) {
  assert(num_contexts >= 1);
  const double os =
      std::clamp(oversubscription, 1.0, static_cast<double>(num_contexts));
  const double raw = os * static_cast<double>(spec.sm_count) /
                     static_cast<double>(num_contexts);
  // A context can never use more than the whole device.
  return std::min(ceil_even(raw), spec.sm_count);
}

std::vector<int> partition_quotas(const GpuSpec& spec, int num_contexts,
                                  double oversubscription) {
  const int q = std::min(sm_quota_per_context(spec, num_contexts,
                                              oversubscription),
                         spec.sm_count);
  return std::vector<int>(static_cast<std::size_t>(num_contexts), q);
}

}  // namespace daris::gpusim
