#include "gpusim/gpu.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace daris::gpusim {

namespace {
constexpr double kEpsilonWork = 1e-9;   // SM-us below which a kernel is done
constexpr double kRateTolerance = 1e-9;
}  // namespace

Gpu::Gpu(sim::Simulator& sim, GpuSpec spec, std::uint64_t seed)
    : sim_(sim), spec_(spec), rng_(seed) {}

ContextId Gpu::create_context(double sm_quota) {
  assert(sm_quota > 0.0);
  ContextState state;
  state.quota = sm_quota;
  contexts_.push_back(std::move(state));
  return static_cast<ContextId>(contexts_.size()) - 1;
}

void Gpu::set_context_quota(ContextId ctx, double sm_quota) {
  assert(ctx >= 0 && ctx < static_cast<int>(contexts_.size()));
  contexts_[static_cast<std::size_t>(ctx)].quota = sm_quota;
  settle_progress();
  recompute_rates();
}

double Gpu::context_quota(ContextId ctx) const {
  assert(ctx >= 0 && ctx < static_cast<int>(contexts_.size()));
  return contexts_[static_cast<std::size_t>(ctx)].quota;
}

StreamId Gpu::create_stream(ContextId ctx) {
  assert(ctx >= 0 && ctx < static_cast<int>(contexts_.size()));
  StreamState s;
  s.ctx = ctx;
  streams_.push_back(std::move(s));
  return static_cast<StreamId>(streams_.size()) - 1;
}

ContextId Gpu::context_of(StreamId s) const {
  return streams_[static_cast<std::size_t>(s)].ctx;
}

void Gpu::launch_kernel(StreamId s, const KernelDesc& desc) {
  Command cmd{Command::Kind::kKernel, desc, {}};
  streams_[static_cast<std::size_t>(s)].queue.push_back(std::move(cmd));
  advance_stream(s);
}

void Gpu::enqueue_callback(StreamId s, sim::Callback fn) {
  Command cmd{Command::Kind::kCallback, {}, std::move(fn)};
  streams_[static_cast<std::size_t>(s)].queue.push_back(std::move(cmd));
  advance_stream(s);
}

bool Gpu::stream_idle(StreamId s) const {
  const auto& st = streams_[static_cast<std::size_t>(s)];
  return !st.busy && st.queue.empty();
}

std::size_t Gpu::stream_depth(StreamId s) const {
  const auto& st = streams_[static_cast<std::size_t>(s)];
  return st.queue.size() + (st.busy ? 1 : 0);
}

int Gpu::active_kernels(ContextId ctx) const {
  return contexts_[static_cast<std::size_t>(ctx)].active;
}

void Gpu::advance_stream(StreamId s) {
  auto& st = streams_[static_cast<std::size_t>(s)];
  // Run host callbacks immediately: in-order semantics guarantee all prior
  // kernels have completed whenever the stream head is reached while idle.
  while (!st.busy && !st.queue.empty() &&
         st.queue.front().kind == Command::Kind::kCallback) {
    auto fn = std::move(st.queue.front().callback);
    st.queue.pop_front();
    fn();
  }
  if (st.busy || st.queue.empty()) return;

  // Head is a kernel: begin the launch phase (stream busy, no SMs used).
  // Launches serialise within the context; wait for the context lock.
  st.busy = true;
  st.in_flight = st.queue.front().kernel;
  st.queue.pop_front();
  auto& ctx = contexts_[static_cast<std::size_t>(st.ctx)];
  if (ctx.launching) {
    ctx.launch_queue.push_back(s);
    return;
  }
  begin_launch(s);
}

void Gpu::begin_launch(StreamId s) {
  auto& st = streams_[static_cast<std::size_t>(s)];
  contexts_[static_cast<std::size_t>(st.ctx)].launching = true;
  const std::uint64_t gen = ++st.gen;
  sim_.schedule_after(common::from_us(spec_.launch_overhead_us),
                      [this, s, gen] { on_launch_done(s, gen); });
}

void Gpu::on_launch_done(StreamId s, std::uint64_t gen) {
  auto& st = streams_[static_cast<std::size_t>(s)];
  if (st.gen != gen) return;  // stale
  assert(st.busy);
  const KernelDesc desc = st.in_flight;

  // Release the context launch lock and start the next queued launch.
  auto& ctx_state = contexts_[static_cast<std::size_t>(st.ctx)];
  ctx_state.launching = false;
  if (!ctx_state.launch_queue.empty()) {
    const StreamId next = ctx_state.launch_queue.front();
    ctx_state.launch_queue.pop_front();
    begin_launch(next);
  }

  // Per-execution jitter models clock/cache variability, amplified by the
  // number of co-resident kernels and persistent across consecutive kernels
  // of a stream (AR(1)): interference states outlive single kernels, which
  // is what lets whole stages overshoot the MRET window (Fig. 9).
  double jitter = 1.0;
  if (spec_.jitter_cv > 0.0) {
    const double cv =
        spec_.jitter_cv *
        (1.0 + spec_.jitter_load_slope * static_cast<double>(active_.size()));
    const double rho = std::clamp(spec_.jitter_rho, 0.0, 0.999);
    const double innovation =
        rng_.normal(0.0, cv * std::sqrt(1.0 - rho * rho));
    st.jitter_dev = rho * st.jitter_dev + innovation;
    jitter = std::max(0.5, 1.0 + st.jitter_dev);
  }

  settle_progress();
  ActiveKernel ak;
  ak.stream = s;
  ak.ctx = st.ctx;
  ak.parallelism = std::max(1.0, desc.parallelism);
  ak.mem_intensity = std::max(0.0, desc.mem_intensity);
  ak.remaining = std::max(kEpsilonWork, desc.work * jitter);
  ak.last_update = sim_.now();
  ak.gen = gen;
  active_.push_back(std::move(ak));
  contexts_[static_cast<std::size_t>(st.ctx)].active++;
  recompute_rates();
}

void Gpu::on_kernel_complete(StreamId s, std::uint64_t gen) {
  // Find the active kernel for this stream/generation.
  auto it = std::find_if(active_.begin(), active_.end(),
                         [s, gen](const ActiveKernel& k) {
                           return k.stream == s && k.gen == gen;
                         });
  if (it == active_.end()) return;  // cancelled/stale

  settle_progress();
  // Floating-point residue is expected; anything material is a logic error.
  assert(it->remaining < 1.0 && "kernel completed with work left");
  contexts_[static_cast<std::size_t>(it->ctx)].active--;
  active_.erase(it);
  ++kernels_completed_;

  auto& st = streams_[static_cast<std::size_t>(s)];
  st.busy = false;
  recompute_rates();
  advance_stream(s);
}

void Gpu::settle_progress() {
  const Time now = sim_.now();
  double busy = 0.0;
  for (auto& k : active_) {
    const double dt_us = common::to_us(now - k.last_update);
    if (dt_us > 0.0) {
      k.remaining = std::max(0.0, k.remaining - k.rate * dt_us);
      busy += k.rate * static_cast<double>(now - k.last_update);
    }
    k.last_update = now;
  }
  busy_integral_ += busy;
  busy_last_update_ = now;
}

double Gpu::quantized_rate(double parallelism, double share) const {
  if (share <= 0.0) return 0.0;
  if (parallelism <= share) return parallelism;  // single wave
  const double fluid_waves = parallelism / share;
  const double hard_waves = std::ceil(fluid_waves - 1e-12);
  const double waves = spec_.quant_smoothing * fluid_waves +
                       (1.0 - spec_.quant_smoothing) * hard_waves;
  return parallelism / waves;
}

void Gpu::recompute_rates() {
  if (active_.empty()) return;
  const Time now = sim_.now();

  // 1. Water-fill each context's quota among its resident kernels.
  //    Process kernels grouped by context; within a context, ascending
  //    parallelism gets its full demand first (max-min fairness).
  std::vector<std::size_t>& order = wf_order_;
  order.resize(active_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (active_[a].ctx != active_[b].ctx) return active_[a].ctx < active_[b].ctx;
    if (active_[a].parallelism != active_[b].parallelism)
      return active_[a].parallelism < active_[b].parallelism;
    return a < b;
  });

  std::vector<double>& share = wf_share_;
  share.assign(active_.size(), 0.0);
  std::size_t i = 0;
  double total_alloc = 0.0;
  while (i < order.size()) {
    const ContextId ctx = active_[order[i]].ctx;
    std::size_t j = i;
    while (j < order.size() && active_[order[j]].ctx == ctx) ++j;
    double quota = contexts_[static_cast<std::size_t>(ctx)].quota;
    std::size_t left = j - i;
    for (std::size_t k = i; k < j; ++k) {
      const double fair = quota / static_cast<double>(left);
      const double alloc = std::min(active_[order[k]].parallelism, fair);
      share[order[k]] = alloc;
      quota -= alloc;
      --left;
    }
    for (std::size_t k = i; k < j; ++k) total_alloc += share[order[k]];
    i = j;
  }

  // 2. Oversubscription: rescale when allocations exceed physical SMs.
  const double sm = static_cast<double>(spec_.sm_count);
  if (total_alloc > sm) {
    const double scale = sm / total_alloc;
    for (auto& s : share) s *= scale;
  }

  // Global L2-contention penalty grows with resident-block pressure: the
  // blocks all resident kernels *could* run concurrently, regardless of
  // whether they queue behind a quota or behind SM sharing. A single
  // many-stream context thrashes the same caches as many one-stream
  // contexts.
  double pressure = 0.0;
  for (const auto& ak : active_) pressure += std::min(ak.parallelism, sm);
  const double excess = std::max(0.0, pressure / sm - 1.0);
  const double eff_os = 1.0 / (1.0 + spec_.kappa_oversub * excess);

  // 3/4. Per-kernel rate with wave quantisation, the small-slice penalty,
  // and the intra-context multi-stream penalty.
  std::vector<double>& raw = wf_raw_;
  raw.assign(active_.size(), 0.0);
  double bw_demand = 0.0;
  for (std::size_t k = 0; k < active_.size(); ++k) {
    const auto& ak = active_[k];
    const auto& ctx = contexts_[static_cast<std::size_t>(ak.ctx)];
    const double eff_intra =
        1.0 / (1.0 + spec_.alpha_intra *
                         std::min(static_cast<double>(ctx.active - 1),
                                  spec_.intra_saturation));
    const double eff_quota =
        1.0 - spec_.quota_penalty_a *
                  std::exp(-ctx.quota / spec_.quota_penalty_q0);
    raw[k] = quantized_rate(ak.parallelism, share[k]) * eff_intra * eff_os *
             eff_quota;
    bw_demand += raw[k] * ak.mem_intensity;
  }

  // 5. Memory-bandwidth cap (fluid stall).
  const double phi =
      bw_demand > spec_.mem_bandwidth ? spec_.mem_bandwidth / bw_demand : 1.0;

  for (std::size_t k = 0; k < active_.size(); ++k) {
    auto& ak = active_[k];
    const double new_rate = raw[k] * phi;
    const bool changed = std::abs(new_rate - ak.rate) > kRateTolerance ||
                         !ak.completion.valid();
    if (!changed) continue;
    ak.rate = new_rate;
    ak.last_update = now;
    if (ak.rate <= 0.0) {
      sim_.cancel(ak.completion);
      ak.completion = sim::EventHandle{};
      continue;
    }
    // +1 tick: settle past the epsilon. Rate changes move the pending
    // completion in place; only a kernel's first allocation schedules anew.
    const common::Duration finish =
        common::from_us(ak.remaining / ak.rate) + 1;
    if (!sim_.reschedule_after(ak.completion, finish)) {
      const StreamId s = ak.stream;
      const std::uint64_t gen = ak.gen;
      ak.completion = sim_.schedule_after(
          finish, [this, s, gen] { on_kernel_complete(s, gen); });
    }
  }
}

double Gpu::busy_sm_integral() const {
  double busy = busy_integral_;
  const Time now = sim_.now();
  for (const auto& k : active_) {
    busy += k.rate * static_cast<double>(now - k.last_update);
  }
  return busy;
}

double Gpu::utilization(Time horizon) const {
  if (horizon <= 0) return 0.0;
  return busy_sm_integral() /
         (static_cast<double>(horizon) * static_cast<double>(spec_.sm_count));
}

}  // namespace daris::gpusim
