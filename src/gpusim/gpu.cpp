#include "gpusim/gpu.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace daris::gpusim {

namespace {
constexpr double kEpsilonWork = 1e-9;   // SM-us below which a kernel is done
constexpr double kRateTolerance = 1e-9;
}  // namespace

Gpu::Gpu(sim::Simulator& sim, GpuSpec spec, std::uint64_t seed)
    : sim_(sim),
      spec_(spec),
      rng_(seed),
      jitter_rho_(std::clamp(spec_.jitter_rho, 0.0, 0.999)),
      jitter_innovation_scale_(std::sqrt(1.0 - jitter_rho_ * jitter_rho_)) {}

double Gpu::context_eff_quota(double quota) const {
  return 1.0 -
         spec_.quota_penalty_a * std::exp(-quota / spec_.quota_penalty_q0);
}

ContextId Gpu::create_context(double sm_quota) {
  assert(sm_quota > 0.0);
  ContextState state;
  state.quota = sm_quota;
  state.eff_quota = context_eff_quota(sm_quota);
  contexts_.push_back(std::move(state));
  return static_cast<ContextId>(contexts_.size()) - 1;
}

void Gpu::set_spec(const GpuSpec& spec) {
  spec_ = spec;
  jitter_rho_ = std::clamp(spec_.jitter_rho, 0.0, 0.999);
  jitter_innovation_scale_ = std::sqrt(1.0 - jitter_rho_ * jitter_rho_);
  // Quota-shaped efficiency caches depend on the spec's penalty constants;
  // recompute them (water-fill shares depend only on quota + members and
  // stay valid, but the rate recompute below consumes eff_quota).
  for (auto& cs : contexts_) {
    cs.eff_quota = context_eff_quota(cs.quota);
    // eff_intra depends on alpha_intra/intra_saturation; force a re-solve.
    cs.dirty = true;
  }
  if (!order_.empty() || completion_event_.valid()) flush_rates();
}

void Gpu::halt() {
  // Fold the final interval under the old rates so utilisation up to the
  // failure instant is preserved, then drop everything.
  settle_progress();
  for (auto& st : streams_) {
    st.queue.clear();
    st.busy = false;
    ++st.gen;  // pending on_launch_done events go stale
  }
  for (auto& cs : contexts_) {
    cs.launching = false;
    cs.launch_queue.clear();
    cs.members.clear();
    cs.shares.clear();
    cs.eff_intra = 1.0;
    cs.dirty = false;
  }
  for (const int slot : order_) {
    auto& ak = slots_[static_cast<std::size_t>(slot)];
    ak.fire_time = common::kTimeInfinity;
    ak.bucket_pos = -1;
    free_slots_.push_back(slot);
  }
  order_.clear();
  arm_completion_event(-1);
}

void Gpu::set_context_quota(ContextId ctx, double sm_quota) {
  assert(ctx >= 0 && ctx < static_cast<int>(contexts_.size()));
  auto& cs = contexts_[static_cast<std::size_t>(ctx)];
  if (cs.quota == sm_quota) return;  // no-op: nothing to settle or re-solve
  cs.quota = sm_quota;
  cs.eff_quota = context_eff_quota(sm_quota);
  mark_context_dirty(ctx);
  flush_rates();
}

double Gpu::context_quota(ContextId ctx) const {
  assert(ctx >= 0 && ctx < static_cast<int>(contexts_.size()));
  return contexts_[static_cast<std::size_t>(ctx)].quota;
}

StreamId Gpu::create_stream(ContextId ctx) {
  assert(ctx >= 0 && ctx < static_cast<int>(contexts_.size()));
  StreamState s;
  s.ctx = ctx;
  streams_.push_back(std::move(s));
  return static_cast<StreamId>(streams_.size()) - 1;
}

ContextId Gpu::context_of(StreamId s) const {
  return streams_[static_cast<std::size_t>(s)].ctx;
}

void Gpu::launch_kernel(StreamId s, const KernelDesc& desc) {
  Command cmd{Command::Kind::kKernel, desc, {}};
  streams_[static_cast<std::size_t>(s)].queue.push_back(std::move(cmd));
  advance_stream(s);
}

void Gpu::enqueue_callback(StreamId s, sim::Callback fn) {
  Command cmd{Command::Kind::kCallback, {}, std::move(fn)};
  streams_[static_cast<std::size_t>(s)].queue.push_back(std::move(cmd));
  advance_stream(s);
}

bool Gpu::stream_idle(StreamId s) const {
  const auto& st = streams_[static_cast<std::size_t>(s)];
  return !st.busy && st.queue.empty();
}

std::size_t Gpu::stream_depth(StreamId s) const {
  const auto& st = streams_[static_cast<std::size_t>(s)];
  return st.queue.size() + (st.busy ? 1 : 0);
}

int Gpu::active_kernels(ContextId ctx) const {
  return static_cast<int>(
      contexts_[static_cast<std::size_t>(ctx)].members.size());
}

void Gpu::advance_stream(StreamId s) {
  auto& st = streams_[static_cast<std::size_t>(s)];
  // Run host callbacks immediately: in-order semantics guarantee all prior
  // kernels have completed whenever the stream head is reached while idle.
  while (!st.busy && !st.queue.empty() &&
         st.queue.front().kind == Command::Kind::kCallback) {
    auto fn = std::move(st.queue.front().callback);
    st.queue.pop_front();
    fn();
  }
  if (st.busy || st.queue.empty()) return;

  // Head is a kernel: begin the launch phase (stream busy, no SMs used).
  // Launches serialise within the context; wait for the context lock.
  st.busy = true;
  st.in_flight = st.queue.front().kernel;
  st.queue.pop_front();
  auto& ctx = contexts_[static_cast<std::size_t>(st.ctx)];
  if (ctx.launching) {
    ctx.launch_queue.push_back(s);
    return;
  }
  begin_launch(s);
}

void Gpu::begin_launch(StreamId s) {
  auto& st = streams_[static_cast<std::size_t>(s)];
  contexts_[static_cast<std::size_t>(st.ctx)].launching = true;
  const std::uint64_t gen = ++st.gen;
  sim_.schedule_after(common::from_us(spec_.launch_overhead_us),
                      [this, s, gen] { on_launch_done(s, gen); });
}

int Gpu::acquire_slot() {
  if (!free_slots_.empty()) {
    const int slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<int>(slots_.size()) - 1;
}

void Gpu::on_launch_done(StreamId s, std::uint64_t gen) {
  auto& st = streams_[static_cast<std::size_t>(s)];
  if (st.gen != gen) return;  // stale
  assert(st.busy);
  const KernelDesc desc = st.in_flight;

  // Release the context launch lock and start the next queued launch.
  auto& ctx_state = contexts_[static_cast<std::size_t>(st.ctx)];
  ctx_state.launching = false;
  if (!ctx_state.launch_queue.empty()) {
    const StreamId next = ctx_state.launch_queue.front();
    ctx_state.launch_queue.pop_front();
    begin_launch(next);
  }

  // Per-execution jitter models clock/cache variability, amplified by the
  // number of co-resident kernels and persistent across consecutive kernels
  // of a stream (AR(1)): interference states outlive single kernels, which
  // is what lets whole stages overshoot the MRET window (Fig. 9).
  double jitter = 1.0;
  if (spec_.jitter_cv > 0.0) {
    const double cv =
        spec_.jitter_cv *
        (1.0 + spec_.jitter_load_slope * static_cast<double>(order_.size()));
    const double innovation =
        rng_.normal(0.0, cv * jitter_innovation_scale_);
    st.jitter_dev = jitter_rho_ * st.jitter_dev + innovation;
    jitter = std::max(0.5, 1.0 + st.jitter_dev);
  }

  // Residency state updates eagerly; progress needs no settling here —
  // rates are unchanged until the solve below, which settles first (and
  // the new kernel starts with none).
  const int slot = acquire_slot();
  ActiveKernel& ak = slots_[static_cast<std::size_t>(slot)];
  ak.stream = s;
  ak.ctx = st.ctx;
  ak.parallelism = std::max(1.0, desc.parallelism);
  ak.mem_intensity = std::max(0.0, desc.mem_intensity);
  ak.remaining = std::max(kEpsilonWork, desc.work * jitter);
  ak.rate = 0.0;
  ak.last_update = sim_.now();
  ak.fire_time = common::kTimeInfinity;
  ak.vseq = 0;
  order_.push_back(slot);

  // Insert into the context bucket keeping (parallelism, arrival) order —
  // the per-context order the historical global sort produced. Linear from
  // the tail: buckets are small and arrivals often near-sorted.
  auto& members = ctx_state.members;
  std::size_t pos = members.size();
  while (pos > 0 &&
         slots_[static_cast<std::size_t>(members[pos - 1])].parallelism >
             ak.parallelism) {
    --pos;
  }
  members.insert(members.begin() + static_cast<std::ptrdiff_t>(pos), slot);
  ak.bucket_pos = static_cast<int>(pos);
  for (std::size_t i = pos + 1; i < members.size(); ++i) {
    slots_[static_cast<std::size_t>(members[i])].bucket_pos =
        static_cast<int>(i);
  }

  mark_context_dirty(st.ctx);
  flush_rates();
}

void Gpu::on_completion_event() {
  // The single mirrored event fired: the armed head names the due kernel's
  // slot directly — O(1), replacing the historical scan of the resident set
  // for the (stream, generation) match.
  const int slot = armed_slot_;
  armed_slot_ = -1;
  completion_event_ = sim::EventHandle{};  // consumed by firing
  if (slot < 0) return;  // defensive: disarmed concurrently
  complete_kernel(slot);
}

void Gpu::complete_kernel(int slot) {
  ActiveKernel& ak = slots_[static_cast<std::size_t>(slot)];
  // Settle before removal so the finished kernel's busy contribution over
  // its final interval is folded into the integral (skipped when an earlier
  // same-tick event already settled everything; see flush_rates).
  if (busy_last_update_ != sim_.now()) settle_progress();
  // Floating-point residue is expected; anything material is a logic error.
  assert(ak.remaining < 1.0 && "kernel completed with work left");
  const ContextId ctx = ak.ctx;
  const StreamId s = ak.stream;

  auto& members = contexts_[static_cast<std::size_t>(ctx)].members;
  const std::size_t pos = static_cast<std::size_t>(ak.bucket_pos);
  members.erase(members.begin() + static_cast<std::ptrdiff_t>(pos));
  for (std::size_t i = pos; i < members.size(); ++i) {
    slots_[static_cast<std::size_t>(members[i])].bucket_pos =
        static_cast<int>(i);
  }
  order_.erase(std::find(order_.begin(), order_.end(), slot));
  ak.fire_time = common::kTimeInfinity;
  ak.bucket_pos = -1;
  free_slots_.push_back(slot);
  ++kernels_completed_;

  streams_[static_cast<std::size_t>(s)].busy = false;
  mark_context_dirty(ctx);
  flush_rates();  // before advance_stream: the solver position the
                  // historical code re-solved at (tie-break parity)
  advance_stream(s);
}

void Gpu::arm_completion_event(int best) {
  if (best < 0) {
    if (completion_event_.valid()) {
      sim_.cancel(completion_event_);
      completion_event_ = sim::EventHandle{};
    }
    armed_slot_ = -1;
    return;
  }
  const auto& bk = slots_[static_cast<std::size_t>(best)];
  if (armed_slot_ == best && completion_event_.valid() &&
      armed_time_ == bk.fire_time && armed_seq_ == bk.vseq) {
    return;  // head unchanged: the mirrored event is already correct
  }
  // Mirror with the kernel's exact key so ties against unrelated simulator
  // events break as if this completion had sat in the heap all along.
  if (!sim_.reschedule_with_sequence(completion_event_, bk.fire_time,
                                     bk.vseq)) {
    completion_event_ = sim_.schedule_at_with_sequence(
        bk.fire_time, bk.vseq, [this] { on_completion_event(); });
  }
  armed_slot_ = best;
  armed_time_ = bk.fire_time;
  armed_seq_ = bk.vseq;
}

void Gpu::settle_progress() {
  const Time now = sim_.now();
  double busy = 0.0;
  for (const int slot : order_) {
    auto& k = slots_[static_cast<std::size_t>(slot)];
    const double dt_us = common::to_us(now - k.last_update);
    if (dt_us > 0.0) {
      k.remaining = std::max(0.0, k.remaining - k.rate * dt_us);
      busy += k.rate * static_cast<double>(now - k.last_update);
    }
    k.last_update = now;
  }
  busy_integral_ += busy;
  busy_last_update_ = now;
}

double Gpu::quantized_rate(double parallelism, double share) const {
  if (share <= 0.0) return 0.0;
  if (parallelism <= share) return parallelism;  // single wave
  const double fluid_waves = parallelism / share;
  const double hard_waves = std::ceil(fluid_waves - 1e-12);
  const double waves = spec_.quant_smoothing * fluid_waves +
                       (1.0 - spec_.quant_smoothing) * hard_waves;
  return parallelism / waves;
}

void Gpu::mark_context_dirty(ContextId ctx) {
  contexts_[static_cast<std::size_t>(ctx)].dirty = true;
}

void Gpu::flush_rates() {
  ++solver_stats_.flushes;
  const Time now = sim_.now();
  // Progress must be settled under the *old* rates before any rate changes.
  // busy_last_update_ only moves in settle_progress(), and kernels added
  // since start settled (last_update = add time), so equality means every
  // resident kernel is already settled to this tick (the completion handler
  // settles eagerly; launch-only ticks still need the settle).
  if (busy_last_update_ != now) settle_progress();

  // 1. Water-fill each dirty context's quota among its resident kernels;
  //    clean contexts keep their cached shares (bit-identical by
  //    determinism: same bucket + quota reproduce the same fill). Within a
  //    context, ascending parallelism gets its full demand first (max-min
  //    fairness). The global allocation total folds in the same pass; its
  //    summation order — (context asc, fill order), like every global fold
  //    below (pressure and bandwidth use arrival order) — intentionally
  //    replicates the historical from-scratch solver, so the rates come out
  //    bit-identical to it.
  double total_alloc = 0.0;
  for (auto& cs : contexts_) {
    if (cs.dirty) {
      ++solver_stats_.contexts_solved;
      cs.shares.resize(cs.members.size());
      double quota = cs.quota;
      std::size_t left = cs.members.size();
      for (std::size_t i = 0; i < cs.members.size(); ++i) {
        const double fair = quota / static_cast<double>(left);
        const double alloc = std::min(
            slots_[static_cast<std::size_t>(cs.members[i])].parallelism, fair);
        cs.shares[i] = alloc;
        quota -= alloc;
        --left;
      }
      const auto active = static_cast<double>(cs.members.size());
      cs.eff_intra =
          1.0 / (1.0 + spec_.alpha_intra *
                           std::min(active - 1.0, spec_.intra_saturation));
      cs.dirty = false;
    } else {
      ++solver_stats_.contexts_reused;
    }
    for (const double s : cs.shares) total_alloc += s;
  }

  // 2. Oversubscription: rescale when allocations exceed physical SMs.
  const double sm = static_cast<double>(spec_.sm_count);
  const bool rescale = total_alloc > sm;
  const double scale = rescale ? sm / total_alloc : 1.0;

  // Global L2-contention penalty grows with resident-block pressure: the
  // blocks all resident kernels *could* run concurrently, regardless of
  // whether they queue behind a quota or behind SM sharing. A single
  // many-stream context thrashes the same caches as many one-stream
  // contexts.
  double pressure = 0.0;
  for (const int slot : order_) {
    pressure +=
        std::min(slots_[static_cast<std::size_t>(slot)].parallelism, sm);
  }
  const double excess = std::max(0.0, pressure / sm - 1.0);
  const double eff_os = 1.0 / (1.0 + spec_.kappa_oversub * excess);

  // 3/4. Per-kernel rate with wave quantisation, the small-slice penalty,
  // and the intra-context multi-stream penalty (both cached per context).
  std::vector<double>& raw = wf_raw_;
  raw.resize(order_.size());
  double bw_demand = 0.0;
  for (std::size_t k = 0; k < order_.size(); ++k) {
    const auto& ak = slots_[static_cast<std::size_t>(order_[k])];
    const auto& cs = contexts_[static_cast<std::size_t>(ak.ctx)];
    double share = cs.shares[static_cast<std::size_t>(ak.bucket_pos)];
    if (rescale) share *= scale;
    raw[k] = quantized_rate(ak.parallelism, share) * cs.eff_intra * eff_os *
             cs.eff_quota;
    bw_demand += raw[k] * ak.mem_intensity;
  }

  // 5. Memory-bandwidth cap (fluid stall).
  const double phi =
      bw_demand > spec_.mem_bandwidth ? spec_.mem_bandwidth / bw_demand : 1.0;

  // The queue head (earliest (fire_time, vseq); vseq uniqueness makes the
  // order total and the scan order-independent) folds in the same pass.
  int best = -1;
  for (std::size_t k = 0; k < order_.size(); ++k) {
    const int slot = order_[k];
    auto& ak = slots_[static_cast<std::size_t>(slot)];
    const double new_rate = raw[k] * phi;
    const bool changed = std::abs(new_rate - ak.rate) > kRateTolerance ||
                         ak.fire_time == common::kTimeInfinity;
    if (changed) {
      ak.rate = new_rate;
      ak.last_update = now;
      if (ak.rate <= 0.0) {
        ak.fire_time = common::kTimeInfinity;  // starved: nothing pending
      } else {
        // +1 tick: settle past the epsilon. The drawn tie-break number is
        // what a direct (re)schedule would have consumed, so ties against
        // unrelated events are preserved; only the mirrored head event
        // below touches the heap.
        ak.fire_time = now + common::from_us(ak.remaining / ak.rate) + 1;
        ak.vseq = sim_.draw_sequence();
      }
    }
    if (ak.fire_time == common::kTimeInfinity) continue;
    if (best < 0) {
      best = slot;
      continue;
    }
    const auto& bk = slots_[static_cast<std::size_t>(best)];
    if (ak.fire_time < bk.fire_time ||
        (ak.fire_time == bk.fire_time && ak.vseq < bk.vseq)) {
      best = slot;
    }
  }
  arm_completion_event(best);
}

std::vector<Gpu::ActiveKernelInfo> Gpu::debug_active_kernels() const {
  const Time now = sim_.now();
  std::vector<ActiveKernelInfo> infos;
  infos.reserve(order_.size());
  for (const int slot : order_) {
    const auto& ak = slots_[static_cast<std::size_t>(slot)];
    ActiveKernelInfo info;
    info.stream = ak.stream;
    info.ctx = ak.ctx;
    info.parallelism = ak.parallelism;
    info.mem_intensity = ak.mem_intensity;
    // Remaining as of now, computed on the fly: mutating the stored settle
    // state from an observer would split a future settle interval and (FP
    // addition being non-associative) could nudge the byte-stable timeline.
    info.remaining = std::max(
        0.0, ak.remaining - ak.rate * common::to_us(now - ak.last_update));
    info.rate = ak.rate;
    infos.push_back(info);
  }
  return infos;
}

double Gpu::busy_sm_integral() const {
  double busy = busy_integral_;
  const Time now = sim_.now();
  for (const int slot : order_) {
    const auto& k = slots_[static_cast<std::size_t>(slot)];
    busy += k.rate * static_cast<double>(now - k.last_update);
  }
  return busy;
}

double Gpu::utilization(Time horizon) const {
  if (horizon <= 0) return 0.0;
  return busy_sm_integral() /
         (static_cast<double>(horizon) * static_cast<double>(spec_.sm_count));
}

}  // namespace daris::gpusim
