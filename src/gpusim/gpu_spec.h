// Parameters of the simulated GPU.
//
// The model is calibrated against the paper's RTX 2080 Ti (68 SMs, 616 GB/s).
// Work is expressed in SM-microseconds (one SM busy for one microsecond);
// memory traffic in "bandwidth units" where one unit is the traffic a single
// SM generates when running a perfectly balanced kernel. A kernel with
// mem_intensity > 1 is bandwidth-bound when running at full width.
#pragma once

#include <cstdint>

namespace daris::gpusim {

struct GpuSpec {
  /// Number of streaming multiprocessors (NSM,max in the paper).
  int sm_count = 68;

  /// Aggregate memory bandwidth in units per microsecond. With the unit
  /// definition above, `sm_count` would mean compute and bandwidth exactly
  /// balanced; the 2080 Ti has a little bandwidth headroom over that.
  double mem_bandwidth = 80.0;

  /// Host->device kernel dispatch latency (per kernel). Launches serialise
  /// both within a stream and across streams of the *same* context (driver
  /// context lock) — batching amortises this, cross-context colocation
  /// hides it, and it is what caps a single multi-stream context (STR).
  double launch_overhead_us = 14.0;

  /// Host-visible stream-synchronisation latency paid at each stage
  /// boundary: cudaStreamSynchronize wake-up under load plus the scheduler's
  /// decision and re-launch work. Batched jobs amortise this per sample,
  /// which is part of why DARIS+batching (Fig. 10) beats unbatched DARIS.
  double sync_overhead_us = 120.0;

  /// Efficiency loss when several kernels are resident in the *same*
  /// context (driver/context lock contention, shared cache/TLB):
  /// eff = 1 / (1 + a * min(m-1, sat)). The loss is near-binary — a second
  /// resident kernel causes it; more barely add — hence the saturation.
  double alpha_intra = 0.09;
  double intra_saturation = 1.0;

  /// Extra global contention per unit of oversubscribed concurrency
  /// (L2 thrashing when resident blocks far exceed SMs). Creates the
  /// throughput droop past the paper's Nc = 6 knee for ResNet18/UNet.
  double kappa_oversub = 0.03;

  /// Wave quantisation smoothing in [0,1]: 0 = hard ceil(P/s) waves,
  /// 1 = ideal fluid sharing. Real block schedulers sit near the hard end.
  double quant_smoothing = 0.25;

  /// Small-slice inefficiency: a context capped at Q SMs cannot keep the
  /// (shared, fixed-latency) memory system covered from a small slice, so
  /// its kernels run at eff = 1 - a * exp(-Q / q0). This is the measured
  /// "sharp drop" of isolated small MPS percentages that makes OS = 1
  /// underperform (paper Sec. VI-E; cf. GSlice/Laius slice-throughput
  /// curves). With oversubscribed quotas each SM hosts blocks from several
  /// contexts and the penalty vanishes.
  double quota_penalty_a = 0.6;
  double quota_penalty_q0 = 10.0;  // SMs

  /// Coefficient of variation of per-kernel execution jitter (clock/DVFS,
  /// cache state, colocated interference). Drives MRET misprediction under
  /// contention and gives the admission test its pessimism margin.
  double jitter_cv = 0.09;

  /// Contention amplification of jitter: effective cv grows by this factor
  /// per co-resident kernel. Densely shared configurations (e.g. 3x3 OS 1)
  /// are where the paper observes execution times overshooting MRET
  /// (Fig. 9) and the MPS+STR policy's elevated LP miss rates.
  double jitter_load_slope = 0.25;

  /// AR(1) persistence of the per-stream jitter process. Interference
  /// states (thermal/clock level, cache working sets of co-runners) persist
  /// across consecutive kernels, so whole stages run slow together — which
  /// is what lets execution times escape the recent-window MRET maximum.
  double jitter_rho = 0.9;

  /// RTX 2080 Ti-like configuration used throughout the reproduction.
  static GpuSpec rtx2080ti() { return GpuSpec{}; }
};

}  // namespace daris::gpusim
