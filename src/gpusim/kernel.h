// Description of a GPU kernel as seen by the simulator.
#pragma once

#include <cstdint>

namespace daris::gpusim {

/// A kernel is a bag of identical blocks: `work` SM-microseconds of compute
/// that can use at most `parallelism` SMs concurrently, generating
/// `mem_intensity` bandwidth units per active SM.
struct KernelDesc {
  /// Total compute, in SM-microseconds.
  double work = 1.0;

  /// Maximum SMs the kernel can occupy at once (grid width in SM units).
  double parallelism = 1.0;

  /// Bandwidth units consumed per active SM (1.0 = balanced, >1 = memory
  /// bound at full width).
  double mem_intensity = 0.3;

  /// Caller-defined tag (e.g. layer index); not interpreted by the GPU.
  std::uint32_t tag = 0;
};

}  // namespace daris::gpusim
