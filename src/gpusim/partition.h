// Spatial-partitioning helpers shared by DARIS and the baselines.
#pragma once

#include <vector>

#include "gpusim/gpu_spec.h"

namespace daris::gpusim {

/// Rounds up to the nearest even integer (ceil_even in Eq. 9).
int ceil_even(double x);

/// Per-context SM quota from Eq. 9:
///   NSM = ceil_even(OS * NSM,max / Nc), with 1 <= OS <= Nc.
/// OS = 1 isolates contexts; OS = Nc shares every SM with every context.
int sm_quota_per_context(const GpuSpec& spec, int num_contexts,
                         double oversubscription);

/// Quotas for all contexts (uniform, per the paper).
std::vector<int> partition_quotas(const GpuSpec& spec, int num_contexts,
                                  double oversubscription);

}  // namespace daris::gpusim
