// Simulated GPU with MPS-style contexts and CUDA-stream semantics.
//
// Execution model (re-evaluated at every state change, i.e. a fluid
// processor-sharing approximation):
//   1. Within each context, concurrently resident kernels water-fill the
//      context's SM quota, each capped at its own parallelism.
//   2. If the sum of allocations across contexts exceeds the physical SM
//      count (oversubscription), allocations are rescaled proportionally.
//   3. A kernel allocated s SMs with P blocks progresses at rate
//      P / waves(P, s) where waves interpolates between ceil(P/s) (hard wave
//      quantisation) and P/s (ideal fluid) — tail waves waste SMs unless
//      other kernels fill them, which is why colocation can beat batching.
//   4. Multiple streams resident in one context pay an efficiency penalty
//      (driver serialisation / shared cache), and heavy global
//      oversubscription pays an L2-contention penalty.
//   5. Aggregate memory-bandwidth demand above the spec's bandwidth rescales
//      every kernel's progress (fluid stall model).
//
// Allocation engine (see docs/ARCHITECTURE.md "Executor model"): resident
// kernels are bucketed per context in parallelism-sorted small vectors, and
// each context's water-fill is cached and recomputed only when that context
// changed (kernel added/removed or quota adjusted) — the dirty flag each
// kernel event sets; the flush that consumes it re-solves only what the
// epoch actually touched. The per-context efficiency factors that need
// transcendentals (the small-quota exp penalty) or counts (the intra-context
// penalty) are cached the same way. Predicted kernel completions live in a
// Gpu-internal index (per-kernel fire time + a tie-break number drawn from
// the simulator); only the earliest is mirrored as a real simulator event,
// so a rate change re-keys N completions with N scalar writes and at most
// one heap operation instead of N heap reschedules. All global folds (total
// allocation, L2 block pressure, bandwidth demand) intentionally run in the
// exact summation order of the historical from-scratch solver, and the
// completion index reproduces its (time, sequence) keys exactly, so the
// simulated timelines are bit-identical to it (figure outputs are
// byte-stable across the swap). Wholesale deferral of the solve to the end
// of the timestamp was measured to NOT be outcome-equivalent — it permutes
// tie-break sequence draws against launch events in structurally
// synchronised bursts, and one flipped tie cascades through the jitter RNG —
// so same-tick events each run the (cheap, incremental) solve instead, and
// the coalescing lives in the caches plus a settle guard that skips the
// already-settled tick.
//
// Kernel-launch latency is serialised within a stream (the GPU is idle for
// that stream while a launch is in flight), which is what batching amortises
// and spatial colocation hides.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "gpusim/gpu_spec.h"
#include "gpusim/kernel.h"
#include "sim/simulator.h"

namespace daris::gpusim {

using common::Time;

using ContextId = int;
using StreamId = int;

class Gpu {
 public:
  Gpu(sim::Simulator& sim, GpuSpec spec, std::uint64_t seed = 0x5EEDull);
  Gpu(const Gpu&) = delete;
  Gpu& operator=(const Gpu&) = delete;

  const GpuSpec& spec() const { return spec_; }
  sim::Simulator& simulator() { return sim_; }

  /// Replaces the device spec mid-run (straggler / clock-throttle injection:
  /// cluster::Fleet::slow_gpu feeds the node's re-resolved spec through
  /// here). Progress is settled under the old rates first, then every
  /// resident kernel's rate — and its predicted completion — is re-derived
  /// from the new SM count and bandwidth, drawing fresh tie-break numbers
  /// exactly as any other rate change does, so the run stays deterministic.
  /// Context quotas are untouched: a slowdown shrinks the physical SM count
  /// under the existing partition and the oversubscription rescale (step 2
  /// of the solve) charges every context proportionally.
  void set_spec(const GpuSpec& spec);

  /// Fail-stop: drops all queued commands and resident kernels without
  /// running their completion callbacks, after folding the final busy
  /// interval (under the old rates) into the utilisation integral. Pending
  /// launch events go stale via the per-stream generation guard and the
  /// mirrored completion event is cancelled, so a halted device fires no
  /// further events. Dropped kernels do not count as completed. The device
  /// stays structurally valid (contexts/streams remain) but idle.
  void halt();

  /// Creates an MPS context limited to `sm_quota` SMs (Eq. 9 output).
  ContextId create_context(double sm_quota);

  /// Adjusts a context's quota (used by reconfiguration experiments).
  /// Setting the current quota again is a no-op: no settle, no rate flush.
  void set_context_quota(ContextId ctx, double sm_quota);
  double context_quota(ContextId ctx) const;
  int context_count() const { return static_cast<int>(contexts_.size()); }

  /// Creates an in-order stream bound to `ctx`.
  StreamId create_stream(ContextId ctx);
  int stream_count() const { return static_cast<int>(streams_.size()); }
  ContextId context_of(StreamId s) const;

  /// Enqueues a kernel launch on a stream (asynchronous, FIFO order).
  void launch_kernel(StreamId s, const KernelDesc& desc);

  /// Enqueues a host callback; runs once all prior work on the stream is
  /// complete (models cudaLaunchHostFunc / event-driven stage completion).
  /// Callbacks with <= sim::Callback::kInlineCapacity bytes of captures are
  /// stored inline (no allocation), same as simulator events.
  void enqueue_callback(StreamId s, sim::Callback fn);

  /// True when the stream has no queued or running work.
  bool stream_idle(StreamId s) const;

  /// Number of enqueued-but-unfinished commands on the stream.
  std::size_t stream_depth(StreamId s) const;

  /// Number of kernels currently resident in a context.
  int active_kernels(ContextId ctx) const;

  /// Total resident kernels on the device.
  int total_active_kernels() const { return static_cast<int>(order_.size()); }

  /// Integral of busy SMs over time, in SM-nanoseconds.
  double busy_sm_integral() const;

  /// Average SM utilisation in [0,1] over [0, horizon].
  double utilization(Time horizon) const;

  /// Completed kernel count (for tests / microbenchmarks).
  std::uint64_t kernels_completed() const { return kernels_completed_; }

  /// Self-profiler counters for the incremental rate solver: flush count
  /// and, per flush, how many contexts were re-solved (dirty) vs served
  /// from their cached water-fill. Maintained unconditionally; reading
  /// them cannot perturb the run.
  struct SolverStats {
    std::uint64_t flushes = 0;
    std::uint64_t contexts_solved = 0;
    std::uint64_t contexts_reused = 0;
  };
  const SolverStats& solver_stats() const { return solver_stats_; }

  /// Test/tooling snapshot of one resident kernel's allocation state.
  struct ActiveKernelInfo {
    StreamId stream = -1;
    ContextId ctx = 0;
    double parallelism = 0.0;
    double mem_intensity = 0.0;
    double remaining = 0.0;  // SM-us
    double rate = 0.0;       // SM (work per us)
  };

  /// Snapshot of all resident kernels in arrival order, with remaining
  /// work reported as of now. Rates are always current (every mutation
  /// re-solves inline), and the fold is const and non-mutating — like
  /// busy_sm_integral() — so observing a run cannot perturb its
  /// floating-point settle intervals or its byte-stable timeline. The
  /// differential test compares these rates against a from-scratch
  /// reference solver.
  std::vector<ActiveKernelInfo> debug_active_kernels() const;

 private:
  struct Command {
    enum class Kind { kKernel, kCallback } kind;
    KernelDesc kernel;
    sim::Callback callback;
  };

  struct StreamState {
    // Move-only: the queue holds move-only Callbacks, and deque's copy ctor
    // is unconstrained, so without the deleted copy the vector growth path
    // would select an ill-formed copy over the (throwing) move.
    StreamState() = default;
    StreamState(StreamState&&) = default;
    StreamState& operator=(StreamState&&) = default;
    StreamState(const StreamState&) = delete;
    StreamState& operator=(const StreamState&) = delete;

    ContextId ctx = 0;
    std::deque<Command> queue;
    bool busy = false;           // a kernel is launching or resident
    KernelDesc in_flight;        // the kernel being launched/executed
    std::uint64_t gen = 0;       // guards stale launch events
    double jitter_dev = 0.0;     // AR(1) interference state
  };

  struct ContextState {
    double quota = 0.0;
    // Kernel launches serialise within a context (driver context lock):
    // only one launch can be in flight; further streams queue here. This is
    // why multiple MPS contexts out-launch one multi-stream context.
    bool launching = false;
    std::deque<StreamId> launch_queue;

    // --- Incrementally maintained allocation bucket ---
    // Resident kernels sorted by (parallelism, arrival) — the exact order
    // the historical global sort produced per context — plus the cached
    // water-fill shares aligned with it. `dirty` marks the bucket (or the
    // quota) as changed since the last flush; clean contexts reuse their
    // cached shares verbatim.
    std::vector<int> members;    // slots, insertion-sorted by parallelism
    std::vector<double> shares;  // cached water-fill, aligned with members
    double eff_intra = 1.0;      // cached 1/(1 + a*min(m-1, sat))
    double eff_quota = 1.0;      // cached 1 - a*exp(-quota/q0)
    bool dirty = false;
  };

  struct ActiveKernel {
    StreamId stream = -1;
    ContextId ctx = 0;
    double parallelism = 1.0;
    double mem_intensity = 0.0;
    double remaining = 0.0;  // SM-us
    double rate = 0.0;       // SM (work per us)
    Time last_update = 0;
    // Predicted completion in the two-level queue: absolute fire time
    // (kTimeInfinity while unscheduled/starved) and the tie-break number
    // drawn when the rate last changed — exactly the (when, seq) key a
    // per-kernel simulator event would carry. Completion staleness cannot
    // occur: the armed head is the only path that retires a kernel.
    Time fire_time = common::kTimeInfinity;
    std::uint64_t vseq = 0;
    int bucket_pos = -1;  // index into contexts_[ctx].members/shares
  };

  void advance_stream(StreamId s);
  void begin_launch(StreamId s);
  void on_launch_done(StreamId s, std::uint64_t gen);
  /// Retires the resident kernel in `slot`: settles progress, removes it
  /// from its bucket and the arrival order, re-solves rates, and advances
  /// the owning stream.
  void complete_kernel(int slot);
  /// Fires when the earliest predicted completion is due (the single
  /// simulator event the two-level completion queue maintains).
  void on_completion_event();
  /// Mirrors the queue head — `best` is the slot with the earliest
  /// (fire_time, vseq), found by flush_rates' apply pass, or -1 when no
  /// completion is pending — into the simulator, preserving its exact key;
  /// no-op when the armed head is unchanged.
  void arm_completion_event(int best);
  void settle_progress();
  /// Marks a context's cached water-fill (and the global aggregates) stale.
  void mark_context_dirty(ContextId ctx);
  /// Re-solves rates for the current resident set: water-fills dirty
  /// contexts, re-derives the global scale factors, re-keys the predicted
  /// completions whose rate changed, and re-arms the completion event.
  void flush_rates();
  double quantized_rate(double parallelism, double share) const;
  double context_eff_quota(double quota) const;
  int acquire_slot();

  sim::Simulator& sim_;
  GpuSpec spec_;
  common::Rng rng_;
  // Per-launch jitter constants hoisted out of the AR(1) draw (same
  // operations, precomputed once — the draw stays bit-identical).
  double jitter_rho_ = 0.0;
  double jitter_innovation_scale_ = 1.0;
  std::vector<ContextState> contexts_;
  std::vector<StreamState> streams_;
  // Slot-stable storage for resident kernels (free-listed; slots never
  // move), the arrival-order view the global folds iterate, and the
  // per-timestamp dirty state of the epoch-coalesced solver.
  std::vector<ActiveKernel> slots_;
  std::vector<int> free_slots_;
  std::vector<int> order_;  // arrival order (historical active_ vector order)
  // Two-level completion queue head: the one simulator event mirroring the
  // earliest predicted completion, and the (slot, key) it is armed for.
  sim::EventHandle completion_event_;
  int armed_slot_ = -1;
  Time armed_time_ = 0;
  std::uint64_t armed_seq_ = 0;
  // Scratch buffer for flush_rates(), reused across calls so the rate
  // solver does not allocate in steady state (matching the event engine's
  // guarantee).
  std::vector<double> wf_raw_;
  double busy_integral_ = 0.0;  // SM-ns
  Time busy_last_update_ = 0;
  std::uint64_t kernels_completed_ = 0;
  SolverStats solver_stats_;
};

}  // namespace daris::gpusim
