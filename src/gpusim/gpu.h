// Simulated GPU with MPS-style contexts and CUDA-stream semantics.
//
// Execution model (re-evaluated at every state change, i.e. a fluid
// processor-sharing approximation):
//   1. Within each context, concurrently resident kernels water-fill the
//      context's SM quota, each capped at its own parallelism.
//   2. If the sum of allocations across contexts exceeds the physical SM
//      count (oversubscription), allocations are rescaled proportionally.
//   3. A kernel allocated s SMs with P blocks progresses at rate
//      P / waves(P, s) where waves interpolates between ceil(P/s) (hard wave
//      quantisation) and P/s (ideal fluid) — tail waves waste SMs unless
//      other kernels fill them, which is why colocation can beat batching.
//   4. Multiple streams resident in one context pay an efficiency penalty
//      (driver serialisation / shared cache), and heavy global
//      oversubscription pays an L2-contention penalty.
//   5. Aggregate memory-bandwidth demand above the spec's bandwidth rescales
//      every kernel's progress (fluid stall model).
//
// Kernel-launch latency is serialised within a stream (the GPU is idle for
// that stream while a launch is in flight), which is what batching amortises
// and spatial colocation hides.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "gpusim/gpu_spec.h"
#include "gpusim/kernel.h"
#include "sim/simulator.h"

namespace daris::gpusim {

using common::Time;

using ContextId = int;
using StreamId = int;

class Gpu {
 public:
  Gpu(sim::Simulator& sim, GpuSpec spec, std::uint64_t seed = 0x5EEDull);
  Gpu(const Gpu&) = delete;
  Gpu& operator=(const Gpu&) = delete;

  const GpuSpec& spec() const { return spec_; }
  sim::Simulator& simulator() { return sim_; }

  /// Creates an MPS context limited to `sm_quota` SMs (Eq. 9 output).
  ContextId create_context(double sm_quota);

  /// Adjusts a context's quota (used by reconfiguration experiments).
  void set_context_quota(ContextId ctx, double sm_quota);
  double context_quota(ContextId ctx) const;
  int context_count() const { return static_cast<int>(contexts_.size()); }

  /// Creates an in-order stream bound to `ctx`.
  StreamId create_stream(ContextId ctx);
  int stream_count() const { return static_cast<int>(streams_.size()); }
  ContextId context_of(StreamId s) const;

  /// Enqueues a kernel launch on a stream (asynchronous, FIFO order).
  void launch_kernel(StreamId s, const KernelDesc& desc);

  /// Enqueues a host callback; runs once all prior work on the stream is
  /// complete (models cudaLaunchHostFunc / event-driven stage completion).
  /// Callbacks with <= sim::Callback::kInlineCapacity bytes of captures are
  /// stored inline (no allocation), same as simulator events.
  void enqueue_callback(StreamId s, sim::Callback fn);

  /// True when the stream has no queued or running work.
  bool stream_idle(StreamId s) const;

  /// Number of enqueued-but-unfinished commands on the stream.
  std::size_t stream_depth(StreamId s) const;

  /// Number of kernels currently resident in a context.
  int active_kernels(ContextId ctx) const;

  /// Total resident kernels on the device.
  int total_active_kernels() const { return static_cast<int>(active_.size()); }

  /// Integral of busy SMs over time, in SM-nanoseconds.
  double busy_sm_integral() const;

  /// Average SM utilisation in [0,1] over [0, horizon].
  double utilization(Time horizon) const;

  /// Completed kernel count (for tests / microbenchmarks).
  std::uint64_t kernels_completed() const { return kernels_completed_; }

 private:
  struct Command {
    enum class Kind { kKernel, kCallback } kind;
    KernelDesc kernel;
    sim::Callback callback;
  };

  struct StreamState {
    // Move-only: the queue holds move-only Callbacks, and deque's copy ctor
    // is unconstrained, so without the deleted copy the vector growth path
    // would select an ill-formed copy over the (throwing) move.
    StreamState() = default;
    StreamState(StreamState&&) = default;
    StreamState& operator=(StreamState&&) = default;
    StreamState(const StreamState&) = delete;
    StreamState& operator=(const StreamState&) = delete;

    ContextId ctx = 0;
    std::deque<Command> queue;
    bool busy = false;           // a kernel is launching or resident
    KernelDesc in_flight;        // the kernel being launched/executed
    std::uint64_t gen = 0;       // guards stale launch/completion events
    double jitter_dev = 0.0;     // AR(1) interference state
  };

  struct ContextState {
    double quota = 0.0;
    int active = 0;
    // Kernel launches serialise within a context (driver context lock):
    // only one launch can be in flight; further streams queue here. This is
    // why multiple MPS contexts out-launch one multi-stream context.
    bool launching = false;
    std::deque<StreamId> launch_queue;
  };

  struct ActiveKernel {
    StreamId stream = -1;
    ContextId ctx = 0;
    double parallelism = 1.0;
    double mem_intensity = 0.0;
    double remaining = 0.0;  // SM-us
    double rate = 0.0;       // SM (work per us)
    Time last_update = 0;
    sim::EventHandle completion;
    std::uint64_t gen = 0;
  };

  void advance_stream(StreamId s);
  void begin_launch(StreamId s);
  void on_launch_done(StreamId s, std::uint64_t gen);
  void on_kernel_complete(StreamId s, std::uint64_t gen);
  void settle_progress();
  void recompute_rates();
  double quantized_rate(double parallelism, double share) const;

  sim::Simulator& sim_;
  GpuSpec spec_;
  common::Rng rng_;
  std::vector<ContextState> contexts_;
  std::vector<StreamState> streams_;
  std::vector<ActiveKernel> active_;
  // Scratch buffers for recompute_rates(), reused across calls so the rate
  // solver — invoked on every launch, completion, and quota change — does
  // not allocate in steady state (matching the event engine's guarantee).
  std::vector<std::size_t> wf_order_;
  std::vector<double> wf_share_;
  std::vector<double> wf_raw_;
  double busy_integral_ = 0.0;  // SM-ns
  Time busy_last_update_ = 0;
  std::uint64_t kernels_completed_ = 0;
};

}  // namespace daris::gpusim
