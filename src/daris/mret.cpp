#include "daris/mret.h"

#include <cassert>

namespace daris::rt {

MretEstimator::MretEstimator(std::size_t num_stages, std::size_t window)
    : afet_us_(num_stages, 0.0) {
  windows_.reserve(num_stages);
  for (std::size_t i = 0; i < num_stages; ++i) {
    windows_.emplace_back(window);
  }
}

void MretEstimator::set_afet(const std::vector<double>& per_stage_us) {
  assert(per_stage_us.size() == afet_us_.size());
  afet_us_ = per_stage_us;
}

void MretEstimator::record(std::size_t stage, double execution_us) {
  assert(stage < windows_.size());
  windows_[stage].push(execution_us);
}

double MretEstimator::stage_mret_us(std::size_t stage) const {
  assert(stage < windows_.size());
  return windows_[stage].max_or(afet_us_[stage]);
}

double MretEstimator::total_mret_us() const {
  double total = 0.0;
  for (std::size_t i = 0; i < windows_.size(); ++i) total += stage_mret_us(i);
  return total;
}

std::vector<common::Duration> MretEstimator::virtual_deadlines(
    common::Duration d) const {
  const double total = total_mret_us();
  std::vector<common::Duration> out(windows_.size());
  if (total <= 0.0) {
    // Degenerate seed: split evenly.
    for (auto& v : out)
      v = d / static_cast<common::Duration>(windows_.size());
    return out;
  }
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    out[i] = static_cast<common::Duration>(
        static_cast<double>(d) * stage_mret_us(i) / total + 0.5);
  }
  return out;
}

}  // namespace daris::rt
