#include "daris/offline.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "common/stats.h"
#include "gpusim/gpu.h"
#include "gpusim/partition.h"
#include "sim/simulator.h"

namespace daris::rt {

const std::vector<double>& AfetResult::for_model(
    const dnn::CompiledModel* m) const {
  auto it = per_stage_us.find(m);
  assert(it != per_stage_us.end() && "model was not profiled");
  return it->second;
}

AfetResult profile_afet(const gpusim::GpuSpec& spec,
                        const SchedulerConfig& cfg,
                        const std::vector<const dnn::CompiledModel*>& models,
                        int jobs_per_stream, std::uint64_t seed) {
  assert(!models.empty());
  SchedulerConfig config = cfg;
  config.canonicalize();

  sim::Simulator sim;
  gpusim::Gpu gpu(sim, spec, seed);
  common::Rng rng(seed ^ 0x0FF1CEull);

  const auto quotas =
      config.policy == Policy::kStr
          ? std::vector<int>{spec.sm_count}
          : gpusim::partition_quotas(spec, config.num_contexts,
                                     config.oversubscription);
  std::vector<gpusim::StreamId> streams;
  for (int q : quotas) {
    const auto ctx = gpu.create_context(static_cast<double>(q));
    for (int s = 0; s < config.streams_per_context; ++s) {
      streams.push_back(gpu.create_stream(ctx));
    }
  }

  // Per (model, stage) statistics.
  std::map<const dnn::CompiledModel*, std::vector<common::OnlineStats>> stats;
  for (const auto* m : models) {
    stats[m] = std::vector<common::OnlineStats>(m->stage_count());
  }

  // Each stream runs `jobs_per_stream` jobs of a (rotating, pseudo-random)
  // model, stage by stage with the usual sync boundaries.
  struct StreamLoop {
    int remaining_jobs = 0;
  };
  std::vector<StreamLoop> loops(streams.size());

  // Run one stage and chain the next via the sync callback.
  // Implemented as a recursive lambda through std::function.
  std::function<void(std::size_t)> start_job =
      [&](std::size_t stream_index) {
        auto& loop = loops[stream_index];
        if (loop.remaining_jobs <= 0) return;
        --loop.remaining_jobs;
        const auto* model =
            models[rng.uniform_int(0, static_cast<std::int64_t>(
                                          models.size() - 1))];
        auto run_stage = std::make_shared<std::function<void(std::size_t)>>();
        // The stored lambda must not capture its own shared_ptr (cycle =>
        // leak); it holds a weak self-reference and hands strong copies only
        // to the in-flight events, so the closure dies with its last event.
        std::weak_ptr<std::function<void(std::size_t)>> weak_run = run_stage;
        *run_stage = [&, stream_index, model,
                      weak_run](std::size_t stage_index) {
          auto self = weak_run.lock();
          if (!self) return;
          const gpusim::StreamId s = streams[stream_index];
          const common::Time begin = sim.now();
          for (const auto& k : model->stages[stage_index].kernels) {
            gpu.launch_kernel(s, k);
          }
          gpu.enqueue_callback(s, [&, stream_index, model, stage_index, begin,
                                   self] {
            stats[model][stage_index].add(common::to_us(sim.now() - begin));
            if (stage_index + 1 < model->stage_count()) {
              sim.schedule_after(common::from_us(spec.sync_overhead_us),
                                 [self, stage_index] {
                                   (*self)(stage_index + 1);
                                 });
            } else {
              start_job(stream_index);
            }
          });
        };
        (*run_stage)(0);
      };

  for (std::size_t i = 0; i < streams.size(); ++i) {
    loops[i].remaining_jobs = jobs_per_stream;
    start_job(i);
  }
  sim.run();

  AfetResult result;
  for (const auto* m : models) {
    std::vector<double> per_stage(m->stage_count(), 0.0);
    for (std::size_t j = 0; j < m->stage_count(); ++j) {
      const auto& st = stats[m][j];
      // A model may get few samples when streams outnumber its draws; the
      // analytic fallback is its stage work at an even device split.
      if (st.count() > 0) {
        per_stage[j] = st.mean();
      } else {
        const double share = static_cast<double>(spec.sm_count) /
                             static_cast<double>(streams.size());
        per_stage[j] = m->stages[j].total_work() / std::max(1.0, share);
      }
    }
    result.per_stage_us.emplace(m, std::move(per_stage));
  }
  return result;
}

}  // namespace daris::rt
