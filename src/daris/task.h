// Task and job model (Sec. III-A).
//
// A task tau_i(T_i, D_i, mret_i(t), p_i, ctx_i(t)) is a periodic DNN with
// n_i sequential stages. A job is one release of the task; each job walks
// the task's stages in order, with per-stage virtual deadlines (Eq. 8)
// frozen at admission time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/priority.h"
#include "common/time.h"
#include "daris/mret.h"
#include "dnn/model.h"
#include "dnn/zoo.h"

namespace daris::rt {

using common::Duration;
using common::Priority;
using common::Time;

struct TaskSpec {
  dnn::ModelKind model = dnn::ModelKind::kResNet18;
  Duration period = 0;             // T_i
  Duration relative_deadline = 0;  // D_i (= T_i in the paper)
  Priority priority = Priority::kHigh;
  /// Release phase offset in [0, T_i); staggers periodic task sets.
  Duration phase = 0;
};

class Task;

/// One release of a task.
struct Job {
  Task* task = nullptr;
  std::uint64_t job_id = 0;
  Time release = 0;
  Time absolute_deadline = 0;
  /// Absolute virtual deadline per stage, frozen at admission (Eq. 8).
  std::vector<Time> stage_deadlines;
  std::size_t next_stage = 0;
  /// Virtual-deadline miss of the previous stage (drives priority boost).
  bool prev_stage_missed = false;
  /// Set when the job's first stage is handed to a stream. A started job has
  /// GPU-side state and can no longer be donated to a peer scheduler
  /// (Scheduler::donatable_lp_jobs / revoke_job).
  bool started = false;
  /// Utilisation u_i(t) charged by the admission test while active.
  double admitted_utilization = 0.0;
  int context = -1;
};

class Task {
 public:
  Task(int id, TaskSpec spec, const dnn::CompiledModel* model,
       std::size_t mret_window)
      : id_(id),
        spec_(spec),
        model_(model),
        mret_(model->stage_count(), mret_window) {}

  int id() const { return id_; }
  const TaskSpec& spec() const { return spec_; }
  const dnn::CompiledModel& model() const { return *model_; }
  std::size_t num_stages() const { return model_->stage_count(); }

  MretEstimator& mret() { return mret_; }
  const MretEstimator& mret() const { return mret_; }

  /// Utilisation u_i(t) = mret_i(t) / T_i (Eq. 3 / Eq. 10).
  double utilization() const {
    return mret_.total_mret_us() /
           common::to_us(spec_.period > 0 ? spec_.period : 1);
  }

  /// Current context assignment ctx_i(t). Mutations go through
  /// Scheduler::set_task_context so the scheduler's per-context resident-HP
  /// membership (the Eq. 4 aggregate) stays coherent.
  int context() const { return context_; }

  /// Number of this task's jobs currently admitted but unfinished.
  int active_jobs = 0;

  /// Whether this scheduler is the task's home device. In a cluster the task
  /// is registered on every GPU (so migrated jobs can run anywhere) but its
  /// static HP reservation (Eq. 4 term of Eq. 11) is charged only on the home
  /// GPU; single-GPU runs leave this true everywhere. Mutations go through
  /// Scheduler::set_task_resident (membership coherence, as above).
  bool resident() const { return resident_; }

 private:
  friend class Scheduler;  // placement fields feed its cached aggregates

  int id_;
  TaskSpec spec_;
  const dnn::CompiledModel* model_;
  MretEstimator mret_;
  int context_ = -1;
  bool resident_ = true;
};

}  // namespace daris::rt
