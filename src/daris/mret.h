// Maximum Recent Execution Time (MRET) estimation and virtual deadlines.
//
// MRET (Eq. 1-2) is the paper's dynamic WCET stand-in: the maximum execution
// time of each stage over the last `ws` observations, summed across stages
// for the task-level value. Before any observation exists, the offline AFET
// (average full-load execution time) seeds the estimate (Eq. 10).
//
// Virtual deadlines (Eq. 8) split the task's relative deadline across stages
// proportionally to their MRET shares.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.h"
#include "common/time.h"

namespace daris::rt {

class MretEstimator {
 public:
  MretEstimator(std::size_t num_stages, std::size_t window);

  /// Seeds stage estimates with offline AFET values (microseconds).
  void set_afet(const std::vector<double>& per_stage_us);

  /// Records a measured stage execution time et_{i,j} (Eq. 1 window push).
  void record(std::size_t stage, double execution_us);

  /// mret_{i,j}(t) in microseconds; AFET until a sample exists.
  double stage_mret_us(std::size_t stage) const;

  /// mret_i(t) = sum over stages (Eq. 2).
  double total_mret_us() const;

  /// Virtual relative deadline of each stage for a task-relative deadline D
  /// (Eq. 8): D_{i,j} = mret_{i,j} / mret_i * D.
  std::vector<common::Duration> virtual_deadlines(common::Duration d) const;

  std::size_t num_stages() const { return windows_.size(); }
  std::size_t observations(std::size_t stage) const {
    return windows_[stage].size();
  }

 private:
  std::vector<common::SlidingWindowMax> windows_;
  std::vector<double> afet_us_;
};

}  // namespace daris::rt
