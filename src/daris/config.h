// DARIS scheduler configuration: partitioning policy, concurrency shape
// (Nc x Ns, OS), and the module switches used by the Fig. 8 ablations.
#pragma once

#include <string>

namespace daris::rt {

/// Spatial partitioning policies evaluated in the paper (Sec. V).
enum class Policy {
  kStr,     // streams only: one context holding the whole GPU
  kMps,     // MPS only: Nc contexts, one stream each
  kMpsStr,  // combined: Nc contexts with Ns streams each
};

const char* policy_name(Policy p);

struct SchedulerConfig {
  Policy policy = Policy::kMps;

  /// Number of MPS contexts (Nc). Forced to 1 for the STR policy.
  int num_contexts = 6;

  /// Streams per context (Ns). Forced to 1 for the MPS policy.
  int streams_per_context = 1;

  /// Oversubscription level OS in [1, Nc] (Eq. 9). OS=1 isolates SMs,
  /// OS=Nc shares all SMs with every context.
  double oversubscription = 1.0;

  /// MRET window size ws (Eq. 1). The paper selects 5.
  int mret_window = 5;

  /// Batch size per job (1 in the main experiments; Fig. 10 uses 4/2/8).
  int batch = 1;

  // --- module switches (Fig. 8 ablations) ---------------------------------
  /// Staging: dispatch tasks one stage at a time with sync boundaries.
  /// Off = "No Staging": each job runs as a single unit.
  bool staging = true;

  /// Prioritise the last stage of each task. Off = "No Last".
  bool prioritize_last_stage = true;

  /// Boost a stage whose predecessor missed its virtual deadline.
  /// Off = "No Prior".
  bool boost_after_miss = true;

  /// Fixed priority levels between HP/LP and stage classes; EDF only inside
  /// a level. Off = "No Fixed": one global EDF band.
  bool fixed_levels = true;

  /// Keep a stream reserved for an HP job across its stage-sync gaps, so a
  /// ready LP stage cannot capture the stream during the (host-visible)
  /// synchronisation and block the HP job's next stage for a whole LP
  /// stage. This is what keeps HP response times ~2.5x shorter than LP and
  /// HP deadline misses at zero (Sec. VI-A).
  bool hp_stream_hold = true;

  // --- admission (Sec. IV-B1, Sec. VI-I) ----------------------------------
  /// LP jobs take the utilisation-based admission test (always true in the
  /// paper; exposed for experiments).
  bool lp_admission = true;

  /// HP jobs also take the admission test (Overload+HPA).
  bool hp_admission = false;

  /// Upper bound on jobs of one task waiting to start (release queue). The
  /// paper's tasks have D = T, so more than one backlogged job means misses;
  /// beyond this the release is rejected rather than queued.
  int max_backlog_per_task = 2;

  /// Total number of concurrently schedulable jobs Np = Nc * Ns.
  int parallelism() const { return num_contexts * streams_per_context; }

  /// "Nc x Ns OS" label used in the paper's figures.
  std::string label() const;

  /// Applies policy constraints (STR => Nc=1, MPS => Ns=1) and returns self.
  SchedulerConfig& canonicalize();
};

}  // namespace daris::rt
