// Ready-stage priority queue (Sec. IV-B2).
//
// The paper extends the two task priorities to eight fixed stage levels:
// {HP, LP} x {last+missed, last, missed-predecessor, normal}, with EDF on
// the stage's virtual deadline inside each level. The Fig. 8 ablations
// collapse parts of this hierarchy.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/time.h"
#include "daris/config.h"
#include "daris/task.h"

namespace daris::rt {

/// A stage of a specific job that is ready to be dispatched.
struct ReadyStage {
  Job* job = nullptr;
  std::size_t stage = 0;
  int level = 0;          // 0 = highest
  Time deadline = 0;      // EDF key (absolute virtual deadline)
  std::uint64_t seq = 0;  // FIFO tie-break for determinism
};

/// Computes the fixed level of a ready stage under the given config.
int stage_level(const SchedulerConfig& config, Priority priority,
                bool is_last_stage, bool prev_stage_missed);

class StageQueue {
 public:
  void push(ReadyStage stage);
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Highest level, earliest deadline first.
  ReadyStage pop();
  const ReadyStage& peek() const { return heap_.top(); }

  /// Drops every queued stage (fail-stop injection: the jobs they belong to
  /// are being erased, so the dangling Job pointers must not survive). The
  /// FIFO tie-break counter keeps running — sequence numbers stay unique
  /// across the failure.
  void clear() { heap_ = {}; }

  /// Removes every queued stage of `job` (work stealing: the job is being
  /// revoked from this scheduler, so its entries must not survive). Returns
  /// the number of entries removed. Surviving entries keep their original
  /// sequence numbers, and the comparator is a strict total order on
  /// (level, deadline, seq) with unique seq — so pop order depends only on
  /// the entry *set*, never on the heap's internal array layout, and a
  /// removal cannot reorder the remaining stages.
  std::size_t remove_job(const Job* job);

 private:
  struct Worse {
    bool operator()(const ReadyStage& a, const ReadyStage& b) const {
      if (a.level != b.level) return a.level > b.level;
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<ReadyStage, std::vector<ReadyStage>, Worse> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace daris::rt
