// Offline AFET profiling (Sec. IV-A1).
//
// With no measurement history, MRET cannot seed the admission test, so the
// offline phase measures the Average Full-Load Execution Time: each stream
// of the configured partition continuously runs jobs (the target task in one
// stream, random others in the rest) and per-stage execution times are
// averaged. The result is a pessimistic initial estimate that online MRET
// replaces after the first window of observations.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "daris/config.h"
#include "dnn/model.h"
#include "gpusim/gpu_spec.h"

namespace daris::rt {

struct AfetResult {
  /// Mean per-stage execution time (us) under full load, per model.
  std::map<const dnn::CompiledModel*, std::vector<double>> per_stage_us;

  const std::vector<double>& for_model(const dnn::CompiledModel* m) const;
};

/// Runs a dedicated full-load simulation of the given partitioning and
/// returns per-stage AFET for every distinct model.
AfetResult profile_afet(const gpusim::GpuSpec& spec,
                        const SchedulerConfig& config,
                        const std::vector<const dnn::CompiledModel*>& models,
                        int jobs_per_stream = 16,
                        std::uint64_t seed = 0xAFE7ull);

}  // namespace daris::rt
