// The DARIS real-time scheduler (Sec. IV).
//
// Offline phase: AFET-seeded utilisations are balanced across contexts with
// Algorithm 1 (HP tasks first, then LP tasks, each to the least-utilised
// context). HP tasks keep fixed contexts; LP tasks may migrate.
//
// Online phase: each released LP job takes the utilisation-based admission
// test (Eq. 11-12) against its context; failing that, other contexts are
// tried as migration targets (earliest predicted finish first) and the job
// is rejected if none passes. Admitted jobs execute stage by stage: a ready
// stage enters its context's 8-level EDF queue and is dispatched to the
// first idle stream; the synchronisation point at each stage boundary is the
// paper's coarse-grained preemption mechanism ("staging").
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "daris/config.h"
#include "daris/stage_queue.h"
#include "daris/task.h"
#include "gpusim/gpu.h"
#include "metrics/collector.h"
#include "sim/simulator.h"

namespace daris::rt {

class Scheduler {
 public:
  /// Creates contexts/streams on `gpu` according to `config` (Eq. 9 quotas).
  Scheduler(sim::Simulator& sim, gpusim::Gpu& gpu, SchedulerConfig config,
            metrics::Collector* collector);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  const SchedulerConfig& config() const { return config_; }

  /// Registers a task; the compiled model must outlive the scheduler.
  /// Returns the task id.
  int add_task(const TaskSpec& spec, const dnn::CompiledModel* model);

  /// Seeds the task's MRET estimator with offline AFET values (Eq. 10).
  void set_afet(int task_id, const std::vector<double>& per_stage_us);

  /// Algorithm 1: initial context assignment balancing utilisation.
  void run_offline_phase();

  /// Releases one job of the task (called by the release drivers). Returns
  /// true when the job was admitted. With `report` false the release/reject
  /// collector events are suppressed — the cluster router retries rejected
  /// jobs on peer GPUs and owns the fleet-level accounting. `released_at`
  /// (>= 0) backdates the job's release: the cluster router delivers a
  /// migrated job after its weight transfer with the *original* release
  /// time, so the copy consumes deadline slack (and shows up in response
  /// times) instead of resetting the job's clock.
  /// `job_id_out` (non-null) receives the admitted job's id — the handle the
  /// resilience layer needs to poll (`job_in_flight`) and cancel
  /// (`revoke_job`) hedge copies.
  bool release_job(int task_id, bool report = true, Time released_at = -1,
                   std::uint64_t* job_id_out = nullptr);

  Task& task(int id) { return *tasks_[static_cast<std::size_t>(id)]; }
  const Task& task(int id) const {
    return *tasks_[static_cast<std::size_t>(id)];
  }
  int task_count() const { return static_cast<int>(tasks_.size()); }
  int num_contexts() const { return static_cast<int>(contexts_.size()); }

  /// Moves a task to a context, keeping the per-context resident-HP
  /// membership (the cached Eq. 4 aggregate) coherent. All placement
  /// changes — offline assignment, late assignment, LP migration, external
  /// pinning in tests — go through here.
  void set_task_context(int task_id, int ctx);

  /// Marks/unmarks this scheduler as the task's home device (cluster mode),
  /// with the same membership bookkeeping as set_task_context.
  void set_task_resident(int task_id, bool resident);

  /// Total HP utilisation U^{h,t}_k(t) of a context (Eq. 4), counting only
  /// resident tasks (see Task::resident).
  double hp_utilization(int ctx) const;

  /// Active LP utilisation U^{l,a}_k(t) (Sec. III-B3).
  double active_lp_utilization(int ctx) const;

  /// Sum of the admitted (active) HP+LP utilisation across all contexts —
  /// the load signal the cluster router balances on.
  double active_utilization() const;

  /// Remaining utilisation U^r_k(t) = Ns - U^{h,t}_k(t) (Eq. 11).
  double remaining_utilization(int ctx) const;

  /// Jobs currently admitted but unfinished.
  std::size_t jobs_in_flight() const { return jobs_.size(); }

  /// Stages sitting in the ready queues (all contexts) for one priority
  /// class — a telemetry gauge of host-side queueing pressure. Always 0 in
  /// "No Staging" mode, where admitted jobs bypass the ready queues.
  int ready_stages(common::Priority p) const {
    return ready_stages_[static_cast<std::size_t>(p)];
  }

  /// Completed-job counter (all priorities, includes warm-up).
  std::uint64_t jobs_completed() const { return jobs_completed_; }

  /// Completed-but-late counter (finish past the absolute deadline, all
  /// priorities, includes warm-up) — the breaker's miss signal.
  std::uint64_t jobs_missed() const { return jobs_missed_; }

  /// True while `job_id` is admitted here and unfinished (started or not).
  bool job_in_flight(std::uint64_t job_id) const {
    return jobs_.find(job_id) != jobs_.end();
  }

  /// Admitted-but-unfinished jobs of one priority class (O(in-flight) scan;
  /// end-of-run conservation accounting, not a hot path).
  std::uint64_t jobs_in_flight_of(common::Priority p) const;

  /// Per-class lifecycle counters. Every admitted job ends in exactly one of
  /// completed / failed / revoked or is still in flight, so
  ///   admitted == completed + failed + revoked + jobs_in_flight_of(p)
  /// holds at any instant — the per-device half of the fleet's
  /// job-conservation invariant (cluster::Fleet::check_conservation).
  struct ClassCounters {
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;    // dropped by fail_all_jobs
    std::uint64_t revoked = 0;   // moved away (steal) or cancelled (hedge)
  };
  const ClassCounters& class_counters(common::Priority p) const {
    return cls_[static_cast<std::size_t>(p)];
  }

  /// q-th percentile (0..100) of the last <=64 response times (us) of the
  /// class, or 0 when no sample has been recorded yet — the hedging
  /// trigger's latency signal. Device-local: the ring is written on the
  /// finish path (this device's shard) and read from control-shard events,
  /// which the sharded barrier orders.
  double response_percentile_us(common::Priority p, double q) const;

  /// Samples currently in the class's response ring (<= 64) — callers gate
  /// the percentile on a warm-up count.
  int response_samples(common::Priority p) const {
    const std::uint32_t n = resp_count_[static_cast<std::size_t>(p)];
    const auto cap = static_cast<std::uint32_t>(kRespRing);
    return static_cast<int>(n < cap ? n : cap);
  }

  /// Migration counter (LP jobs admitted to a context other than ctx_i).
  std::uint64_t migrations() const { return migrations_; }

  /// Fail-stop injection (cluster::Fleet::fail_gpu): drops every in-flight
  /// job — each is reported to the collector as a *missed* finish at the
  /// failure instant, so lost work lands in the deadline-miss rate instead
  /// of vanishing — clears the ready queues and stream-busy flags, zeroes
  /// the backlog proxy, and marks the scheduler failed (all later releases
  /// are rejected). Jobs are unwound in ascending job-id order so the
  /// collector event sequence is deterministic. Pending sync wake-ups and
  /// stage callbacks for the dropped jobs no-op through the existing
  /// jobs_.find guard. Returns the number of jobs dropped.
  std::size_t fail_all_jobs();

  /// True once fail_all_jobs ran; a failed scheduler admits nothing.
  bool failed() const { return failed_; }

  // --- stage donation / claim (cluster work stealing) ---------------------
  //
  // A queued LP job whose first stage has not yet been handed to a stream is
  // *donatable*: it holds no GPU-side state, so a peer scheduler can claim
  // it by re-releasing the task with the job's original release time and the
  // victim revoking its copy. cluster::Rebalancer drives this; both halves
  // run inside one simulator callback, so the steal schedule inherits the
  // (when, seq) determinism contract.

  /// Snapshot of one donatable job (identity + the deadline the thief must
  /// still be able to meet).
  struct StealableJob {
    std::uint64_t job_id = 0;
    int task_id = -1;
    Time release = 0;
    Time absolute_deadline = 0;
  };

  /// Admitted LP jobs still waiting for their first stage to start, in
  /// ascending job-id order (deterministic scan order for thieves). Empty in
  /// "No Staging" mode, where admission dispatches eagerly.
  std::vector<StealableJob> donatable_lp_jobs() const;

  /// True while `job_id` is admitted here and still donatable.
  bool job_stealable(std::uint64_t job_id) const;

  /// Revokes a donatable job: unwinds the admission accounting (the same
  /// utilisation unwind as a finish, with no finish event — the job is not
  /// done, it moved), removes its ready-queue entry, and erases it. The
  /// caller must have re-released the job elsewhere first; a started or
  /// unknown job is refused. Returns true when the job was revoked.
  bool revoke_job(std::uint64_t job_id);

  /// Jobs dropped by fail_all_jobs (distinct from jobs_completed()).
  std::uint64_t jobs_failed() const { return jobs_failed_; }

  /// Device index stamped into job/stage events (cluster runs; default -1).
  void set_device_id(int id) { device_id_ = id; }
  int device_id() const { return device_id_; }

 private:
  struct ContextRec {
    gpusim::ContextId gpu_ctx = -1;
    std::vector<gpusim::StreamId> streams;
    std::vector<bool> stream_busy;
    StageQueue ready;
    /// Resident HP task ids assigned here, ascending — the membership behind
    /// hp_utilization(). Kept sorted so the on-demand fold visits tasks in
    /// exactly the order the historical all-task scan did (id order), which
    /// keeps the Eq. 4 sum bit-identical while costing O(members) instead of
    /// O(all tasks) per admission test. A running double would drift (MRET
    /// updates move each member's utilisation every stage completion) and
    /// change admission decisions at the boundary.
    std::vector<int> resident_hp;
    double active_lp_util = 0.0;
    double active_hp_util = 0.0;  // used by the Overload+HPA admission test
    /// Active utilisation of non-resident HP jobs (cluster mode: HP work
    /// migrated in from peers). Invisible to the static Eq. 4 reservation,
    /// so the LP admission test must charge it explicitly; always 0 in
    /// single-GPU runs.
    double migrated_hp_util = 0.0;
    double outstanding_work_us = 0.0;  // predicted-finish proxy
  };

  struct JobRuntime {
    Job job;
    Time stage_dispatch_time = 0;
    double stage_mret_at_dispatch = 0.0;
  };

  void admit(Task& task, int ctx, std::unique_ptr<JobRuntime> jr);
  bool passes_admission(const Task& task, int ctx, double util) const;
  /// Membership maintenance around a placement-field change: call remove
  /// before mutating the task's context/resident, add after.
  void hp_member_remove(const Task& t);
  void hp_member_add(const Task& t);
  /// Predicted completion of the context's backlog (migration tie-break).
  double predicted_backlog_us(int ctx) const;

  void enqueue_stage(Job* job, std::size_t stage, bool prev_missed);
  /// "No Staging" path: whole job straight into a stream FIFO at release.
  void dispatch_eager(int ctx, Job* job);
  void try_dispatch(int ctx);
  void dispatch(int ctx, int stream_idx, const ReadyStage& ready);
  void on_stage_complete(int ctx, int stream_idx, std::uint64_t job_id,
                         std::size_t stage, Time dispatch_time,
                         double mret_at_dispatch, bool frees_stream);
  void finish_job(JobRuntime& jr);

  sim::Simulator& sim_;
  gpusim::Gpu& gpu_;
  SchedulerConfig config_;
  metrics::Collector* collector_;

  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<ContextRec> contexts_;
  std::unordered_map<std::uint64_t, std::unique_ptr<JobRuntime>> jobs_;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_failed_ = 0;
  std::uint64_t jobs_missed_ = 0;
  std::uint64_t migrations_ = 0;
  ClassCounters cls_[2];
  // Rolling response-time ring per class (response_percentile_us).
  static constexpr int kRespRing = 64;
  double resp_ring_[2][kRespRing] = {};
  std::uint32_t resp_count_[2] = {0, 0};
  int ready_stages_[2] = {0, 0};  // queued ready stages per priority class
  int device_id_ = -1;
  bool failed_ = false;
};

}  // namespace daris::rt
