#include "daris/stage_queue.h"

namespace daris::rt {

int stage_level(const SchedulerConfig& config, Priority priority,
                bool is_last_stage, bool prev_stage_missed) {
  // "No Fixed": a single EDF band across all stages and priorities.
  if (!config.fixed_levels) return 0;

  const int base = priority == Priority::kHigh ? 0 : 4;
  const bool last = is_last_stage && config.prioritize_last_stage;
  const bool missed = prev_stage_missed && config.boost_after_miss;
  int sub;
  if (last && missed) {
    sub = 0;
  } else if (last) {
    sub = 1;
  } else if (missed) {
    sub = 2;
  } else {
    sub = 3;
  }
  return base + sub;
}

void StageQueue::push(ReadyStage stage) {
  stage.seq = next_seq_++;
  heap_.push(stage);
}

ReadyStage StageQueue::pop() {
  ReadyStage top = heap_.top();
  heap_.pop();
  return top;
}

std::size_t StageQueue::remove_job(const Job* job) {
  std::vector<ReadyStage> keep;
  keep.reserve(heap_.size());
  std::size_t removed = 0;
  while (!heap_.empty()) {
    ReadyStage s = heap_.top();
    heap_.pop();
    if (s.job == job) {
      ++removed;
    } else {
      keep.push_back(s);
    }
  }
  // Direct pushes keep the survivors' original sequence numbers (the public
  // push() stamps fresh ones).
  for (const ReadyStage& s : keep) heap_.push(s);
  return removed;
}

}  // namespace daris::rt
