#include "daris/scheduler.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/log.h"
#include "gpusim/partition.h"

namespace daris::rt {

Scheduler::Scheduler(sim::Simulator& sim, gpusim::Gpu& gpu,
                     SchedulerConfig config, metrics::Collector* collector)
    : sim_(sim), gpu_(gpu), config_(config.canonicalize()),
      collector_(collector) {
  const auto quotas =
      config_.policy == Policy::kStr
          ? std::vector<int>{gpu_.spec().sm_count}
          : gpusim::partition_quotas(gpu_.spec(), config_.num_contexts,
                                     config_.oversubscription);
  contexts_.resize(quotas.size());
  for (std::size_t c = 0; c < quotas.size(); ++c) {
    contexts_[c].gpu_ctx = gpu_.create_context(static_cast<double>(quotas[c]));
    contexts_[c].streams.reserve(
        static_cast<std::size_t>(config_.streams_per_context));
    for (int s = 0; s < config_.streams_per_context; ++s) {
      contexts_[c].streams.push_back(gpu_.create_stream(contexts_[c].gpu_ctx));
      contexts_[c].stream_busy.push_back(false);
    }
  }
}

int Scheduler::add_task(const TaskSpec& spec, const dnn::CompiledModel* model) {
  assert(model != nullptr && model->stage_count() > 0);
  const int id = static_cast<int>(tasks_.size());
  tasks_.push_back(std::make_unique<Task>(
      id, spec, model, static_cast<std::size_t>(config_.mret_window)));
  return id;
}

void Scheduler::set_afet(int task_id, const std::vector<double>& per_stage_us) {
  task(task_id).mret().set_afet(per_stage_us);
}

void Scheduler::run_offline_phase() {
  // Algorithm 1: HP tasks first, then LP tasks, each to the context with the
  // least total utilisation so far. Resident tasks are this device's real
  // load and are placed first; non-resident tasks (cluster mode: peers'
  // residents whose jobs only reach this device through routing or
  // migration) are spread over the resulting balance afterwards, so phantom
  // fleet-wide load cannot bunch the resident HP tasks onto few contexts.
  std::vector<double> ctx_util(contexts_.size(), 0.0);
  auto assign_all = [&](Priority p, bool resident) {
    for (auto& t : tasks_) {
      if (t->spec().priority != p || t->resident() != resident) continue;
      const auto it = std::min_element(ctx_util.begin(), ctx_util.end());
      const int ctx = static_cast<int>(it - ctx_util.begin());
      set_task_context(t->id(), ctx);
      ctx_util[static_cast<std::size_t>(ctx)] += t->utilization();
    }
  };
  assign_all(Priority::kHigh, /*resident=*/true);
  assign_all(Priority::kLow, /*resident=*/true);
  assign_all(Priority::kHigh, /*resident=*/false);
  assign_all(Priority::kLow, /*resident=*/false);
}

void Scheduler::hp_member_remove(const Task& t) {
  if (t.context() < 0 || !t.resident() ||
      t.spec().priority != Priority::kHigh) {
    return;
  }
  auto& members =
      contexts_[static_cast<std::size_t>(t.context())].resident_hp;
  const auto it = std::lower_bound(members.begin(), members.end(), t.id());
  assert(it != members.end() && *it == t.id());
  members.erase(it);
}

void Scheduler::hp_member_add(const Task& t) {
  if (t.context() < 0 || !t.resident() ||
      t.spec().priority != Priority::kHigh) {
    return;
  }
  auto& members =
      contexts_[static_cast<std::size_t>(t.context())].resident_hp;
  members.insert(std::lower_bound(members.begin(), members.end(), t.id()),
                 t.id());
}

void Scheduler::set_task_context(int task_id, int ctx) {
  Task& t = task(task_id);
  if (t.context_ == ctx) return;
  hp_member_remove(t);
  t.context_ = ctx;
  hp_member_add(t);
}

void Scheduler::set_task_resident(int task_id, bool resident) {
  Task& t = task(task_id);
  if (t.resident_ == resident) return;
  hp_member_remove(t);
  t.resident_ = resident;
  hp_member_add(t);
}

double Scheduler::hp_utilization(int ctx) const {
  // Fold over the cached membership in ascending id order — the same visit
  // order (and therefore the same floating-point sum) as the historical
  // scan over every task, at O(members) per call.
  double u = 0.0;
  for (const int id : contexts_[static_cast<std::size_t>(ctx)].resident_hp) {
    u += task(id).utilization();
  }
  return u;
}

double Scheduler::active_utilization() const {
  double u = 0.0;
  for (const auto& rec : contexts_) {
    u += rec.active_hp_util + rec.active_lp_util;
  }
  return u;
}

double Scheduler::active_lp_utilization(int ctx) const {
  return contexts_[static_cast<std::size_t>(ctx)].active_lp_util;
}

double Scheduler::remaining_utilization(int ctx) const {
  return static_cast<double>(config_.streams_per_context) -
         hp_utilization(ctx);
}

bool Scheduler::passes_admission(const Task& task, int ctx,
                                 double util) const {
  // Eq. 12: U^{l,a}_k(t) + u_j(t) < U^r_k(t). For HP jobs under
  // Overload+HPA the job's own class utilisation already sits inside
  // U^{h,t}_k, so charge the active-LP side with zero and test headroom.
  const auto& rec = contexts_[static_cast<std::size_t>(ctx)];
  if (task.spec().priority == Priority::kLow) {
    // Migrated-in HP work consumes capacity the resident-only U^{h,t}_k
    // term cannot see; charge it alongside the active LP utilisation.
    return rec.active_lp_util + rec.migrated_hp_util + util <
           remaining_utilization(ctx);
  }
  // HPA: admit while the *currently active* admitted utilisation leaves
  // room, so excess HP jobs are shed instead of queueing into lateness.
  return rec.active_hp_util + rec.active_lp_util + util <=
         static_cast<double>(config_.streams_per_context) + 1e-9;
}

double Scheduler::predicted_backlog_us(int ctx) const {
  const auto& rec = contexts_[static_cast<std::size_t>(ctx)];
  return rec.outstanding_work_us /
         static_cast<double>(config_.streams_per_context);
}

bool Scheduler::release_job(int task_id, bool report, Time released_at,
                            std::uint64_t* job_id_out) {
  Task& t = task(task_id);
  // Backdated release (cluster migration after a weight transfer): deadlines
  // and response times anchor at the original release, not the delivery.
  const Time release = released_at >= 0 ? released_at : sim_.now();

  metrics::JobEvent ev;
  ev.task_id = task_id;
  ev.priority = t.spec().priority;
  ev.release = release;
  ev.relative_deadline = t.spec().relative_deadline;
  ev.gpu = device_id_;
  if (report && collector_) collector_->on_release(ev);

  // A failed device admits nothing: releases that race the failure (e.g. a
  // migrated job whose weight transfer was in flight when the GPU died) are
  // shed like any other rejection.
  if (failed_) {
    if (report && collector_) collector_->on_reject(ev);
    return false;
  }

  // Late assignment for tasks added after the offline phase.
  if (t.context() < 0) set_task_context(task_id, 0);

  // Backlog guard: with D = T, a queued job behind an unfinished
  // predecessor is all but doomed. LP jobs are shed as soon as their
  // predecessor is still active (the admission test's spirit: reject what
  // cannot meet its deadline); HP jobs are allowed a small backlog so that
  // overload shows up as lateness rather than silent shedding (Fig. 11).
  const int backlog_cap = t.spec().priority == Priority::kLow
                              ? 1
                              : config_.max_backlog_per_task;
  if (t.active_jobs >= backlog_cap) {
    if (report && collector_) collector_->on_reject(ev);
    return false;
  }

  const double util = t.utilization();
  const bool needs_test = t.spec().priority == Priority::kLow
                              ? config_.lp_admission
                              : config_.hp_admission;
  int target_ctx = t.context();

  if (needs_test && !passes_admission(t, target_ctx, util)) {
    if (t.spec().priority == Priority::kLow) {
      // Migration candidates: every other context that passes Eq. 12,
      // earliest predicted finish first.
      int best = -1;
      double best_backlog = std::numeric_limits<double>::infinity();
      for (int c = 0; c < num_contexts(); ++c) {
        if (c == target_ctx) continue;
        if (!passes_admission(t, c, util)) continue;
        const double backlog = predicted_backlog_us(c);
        if (backlog < best_backlog) {
          best_backlog = backlog;
          best = c;
        }
      }
      if (best < 0) {
        if (report && collector_) collector_->on_reject(ev);
        return false;
      }
      ++migrations_;
      set_task_context(task_id, best);  // ctx_i(t) moves with the task
      target_ctx = best;
    } else {
      if (report && collector_) collector_->on_reject(ev);
      return false;
    }
  }

  auto jr = std::make_unique<JobRuntime>();
  jr->job.task = &t;
  jr->job.job_id = next_job_id_++;
  jr->job.release = release;
  jr->job.absolute_deadline = release + t.spec().relative_deadline;
  jr->job.context = target_ctx;
  jr->job.admitted_utilization = util;

  // Freeze virtual deadlines from the current MRET shares (Eq. 8). The last
  // stage absorbs rounding so it lands exactly on the job deadline. A
  // backdated job's early virtual deadlines may already lie in the past —
  // its stages then enter the queues miss-boosted, which is exactly the
  // behind-schedule treatment the transfer delay earned it.
  const auto shares =
      t.mret().virtual_deadlines(t.spec().relative_deadline);
  jr->job.stage_deadlines.resize(shares.size());
  Time acc = release;
  for (std::size_t j = 0; j + 1 < shares.size(); ++j) {
    acc += shares[j];
    jr->job.stage_deadlines[j] = acc;
  }
  jr->job.stage_deadlines.back() = jr->job.absolute_deadline;

  if (job_id_out != nullptr) *job_id_out = jr->job.job_id;
  admit(t, target_ctx, std::move(jr));
  return true;
}

void Scheduler::admit(Task& t, int ctx, std::unique_ptr<JobRuntime> jr) {
  auto& rec = contexts_[static_cast<std::size_t>(ctx)];
  if (t.spec().priority == Priority::kLow) {
    rec.active_lp_util += jr->job.admitted_utilization;
  } else {
    rec.active_hp_util += jr->job.admitted_utilization;
    if (!t.resident()) {
      rec.migrated_hp_util += jr->job.admitted_utilization;
    }
  }
  rec.outstanding_work_us += t.mret().total_mret_us();
  ++t.active_jobs;
  ++cls_[static_cast<std::size_t>(t.spec().priority)].admitted;

  Job* job = &jr->job;
  jobs_.emplace(jr->job.job_id, std::move(jr));
  if (!config_.staging) {
    // "No Staging" (Fig. 8): without synchronisation points the host never
    // learns when the GPU finishes a job, so it cannot hold work in a ready
    // queue — every admitted job is enqueued eagerly into a stream FIFO at
    // release time and priorities cannot reorder it afterwards.
    dispatch_eager(ctx, job);
    return;
  }
  enqueue_stage(job, 0, /*prev_missed=*/false);
  try_dispatch(ctx);
}

void Scheduler::dispatch_eager(int ctx, Job* job) {
  job->started = true;
  auto& rec = contexts_[static_cast<std::size_t>(ctx)];
  // FIFO into the shallowest stream of the context.
  std::size_t best = 0;
  for (std::size_t s = 1; s < rec.streams.size(); ++s) {
    if (gpu_.stream_depth(rec.streams[s]) <
        gpu_.stream_depth(rec.streams[best])) {
      best = s;
    }
  }
  const gpusim::StreamId stream = rec.streams[best];
  Task& t = *job->task;
  const std::uint64_t id = job->job_id;
  // Without syncs the host only observes completion callbacks, so stage
  // execution "measurements" are callback-to-callback deltas; the first one
  // absorbs the whole FIFO queueing delay (degraded MRET quality is part of
  // what staging buys back).
  auto last_done = std::make_shared<Time>(sim_.now());
  for (std::size_t j = 0; j < t.num_stages(); ++j) {
    const double mret_pred = t.mret().stage_mret_us(j);
    for (const auto& k : t.model().stages[j].kernels) {
      gpu_.launch_kernel(stream, k);
    }
    gpu_.enqueue_callback(stream, [this, ctx, id, j, last_done, mret_pred] {
      const Time begin = *last_done;
      *last_done = sim_.now();
      on_stage_complete(ctx, /*stream_idx=*/0, id, j, begin, mret_pred,
                        /*frees_stream=*/false);
    });
  }
}

void Scheduler::enqueue_stage(Job* job, std::size_t stage, bool prev_missed) {
  Task& t = *job->task;
  const std::size_t n = t.num_stages();
  ReadyStage rs;
  rs.job = job;
  rs.stage = stage;
  const bool is_last =
      config_.staging ? (stage == n - 1) : true;  // whole job acts as last
  rs.level = stage_level(config_, t.spec().priority, is_last, prev_missed);
  rs.deadline = config_.staging ? job->stage_deadlines[stage]
                                : job->absolute_deadline;
  contexts_[static_cast<std::size_t>(job->context)].ready.push(rs);
  ++ready_stages_[static_cast<std::size_t>(t.spec().priority)];
}

void Scheduler::try_dispatch(int ctx) {
  auto& rec = contexts_[static_cast<std::size_t>(ctx)];
  while (!rec.ready.empty()) {
    int idle = -1;
    for (std::size_t s = 0; s < rec.stream_busy.size(); ++s) {
      if (!rec.stream_busy[s]) {
        idle = static_cast<int>(s);
        break;
      }
    }
    if (idle < 0) return;
    const ReadyStage next = rec.ready.pop();
    --ready_stages_[static_cast<std::size_t>(next.job->task->spec().priority)];
    dispatch(ctx, idle, next);
  }
}

void Scheduler::dispatch(int ctx, int stream_idx, const ReadyStage& ready) {
  auto& rec = contexts_[static_cast<std::size_t>(ctx)];
  rec.stream_busy[static_cast<std::size_t>(stream_idx)] = true;
  Job* job = ready.job;
  job->started = true;
  Task& t = *job->task;
  const gpusim::StreamId stream =
      rec.streams[static_cast<std::size_t>(stream_idx)];
  const Time dispatch_time = sim_.now();

  // One stage per dispatch; the trailing callback is the synchronisation
  // point that lets a higher-priority stage take the stream.
  const std::size_t j = ready.stage;
  const double mret_pred = t.mret().stage_mret_us(j);
  for (const auto& k : t.model().stages[j].kernels) {
    gpu_.launch_kernel(stream, k);
  }
  const std::uint64_t id = job->job_id;
  gpu_.enqueue_callback(stream, [this, ctx, stream_idx, id, j, dispatch_time,
                                 mret_pred] {
    on_stage_complete(ctx, stream_idx, id, j, dispatch_time, mret_pred,
                      /*frees_stream=*/true);
  });
}

void Scheduler::on_stage_complete(int ctx, int stream_idx,
                                  std::uint64_t job_id, std::size_t stage,
                                  Time dispatch_time, double mret_at_dispatch,
                                  bool frees_stream) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  JobRuntime& jr = *it->second;
  Job& job = jr.job;
  Task& t = *job.task;
  const Time now = sim_.now();
  auto& rec = contexts_[static_cast<std::size_t>(ctx)];

  // Record et_{i,j} into the MRET window (Eq. 1).
  const double et_us = common::to_us(now - dispatch_time);
  t.mret().record(stage, et_us);
  if (collector_) {
    metrics::StageEvent sev;
    sev.task_id = t.id();
    sev.stage = stage;
    sev.when = now;
    sev.execution_us = et_us;
    sev.mret_us = mret_at_dispatch;
    sev.context = ctx;
    sev.gpu = device_id_;
    collector_->on_stage(sev);
  }

  rec.outstanding_work_us = std::max(
      0.0, rec.outstanding_work_us - t.mret().stage_mret_us(stage));

  const bool missed_virtual = now > job.stage_deadlines[stage];
  job.next_stage = stage + 1;
  job.prev_stage_missed = missed_virtual;

  const bool job_done = stage + 1 >= t.num_stages();
  // HP jobs keep their stream across the sync gap so a ready LP stage
  // cannot interpose a whole stage between two HP stages.
  const bool hold_stream = frees_stream && !job_done && config_.staging &&
                           config_.hp_stream_hold &&
                           t.spec().priority == Priority::kHigh;

  if (frees_stream && !hold_stream) {
    rec.stream_busy[static_cast<std::size_t>(stream_idx)] = false;
  }

  if (job_done) {
    finish_job(jr);
    jobs_.erase(it);
  } else if (config_.staging) {
    // The next stage becomes ready after the host sync wake-up.
    Job* jp = &job;
    sim_.schedule_after(
        common::from_us(gpu_.spec().sync_overhead_us),
        [this, job_id, jp, ctx, stream_idx, stage, missed_virtual,
         hold_stream] {
          if (jobs_.find(job_id) == jobs_.end()) return;
          if (hold_stream) {
            // The held stream is *contested*: the HP job's next stage keeps
            // it unless the context queue's head outranks it under the same
            // level/EDF order (so an HP job finishing its boosted last
            // stage, or a miss-boosted stage, can still take over — which
            // is what the No Last / No Prior ablations remove).
            auto& ctx_rec = contexts_[static_cast<std::size_t>(ctx)];
            Task& task = *jp->task;
            const bool is_last = stage + 2 >= task.num_stages();
            const int level = stage_level(config_, task.spec().priority,
                                          is_last, missed_virtual);
            const Time deadline = jp->stage_deadlines[stage + 1];
            const bool preempted =
                !ctx_rec.ready.empty() &&
                (ctx_rec.ready.peek().level < level ||
                 (ctx_rec.ready.peek().level == level &&
                  ctx_rec.ready.peek().deadline < deadline));
            if (!preempted) {
              ReadyStage rs;
              rs.job = jp;
              rs.stage = stage + 1;
              ctx_rec.stream_busy[static_cast<std::size_t>(stream_idx)] =
                  false;
              dispatch(ctx, stream_idx, rs);
              return;
            }
            ctx_rec.stream_busy[static_cast<std::size_t>(stream_idx)] = false;
          }
          enqueue_stage(jp, stage + 1, missed_virtual);
          try_dispatch(jp->context);
        });
  }

  if (frees_stream && !hold_stream) try_dispatch(ctx);
}

void Scheduler::finish_job(JobRuntime& jr) {
  Job& job = jr.job;
  Task& t = *job.task;
  const Time now = sim_.now();
  auto& rec = contexts_[static_cast<std::size_t>(job.context)];

  if (t.spec().priority == Priority::kLow) {
    rec.active_lp_util =
        std::max(0.0, rec.active_lp_util - job.admitted_utilization);
  } else {
    rec.active_hp_util =
        std::max(0.0, rec.active_hp_util - job.admitted_utilization);
    if (!t.resident()) {
      rec.migrated_hp_util =
          std::max(0.0, rec.migrated_hp_util - job.admitted_utilization);
    }
  }
  --t.active_jobs;
  ++jobs_completed_;

  const std::size_t cls = static_cast<std::size_t>(t.spec().priority);
  ++cls_[cls].completed;
  const bool missed = now > job.absolute_deadline;
  if (missed) ++jobs_missed_;
  resp_ring_[cls][resp_count_[cls] % kRespRing] =
      common::to_us(now - job.release);
  ++resp_count_[cls];

  if (collector_) {
    metrics::JobEvent ev;
    ev.task_id = t.id();
    ev.priority = t.spec().priority;
    ev.release = job.release;
    ev.finish = now;
    ev.relative_deadline = t.spec().relative_deadline;
    ev.missed = missed;
    ev.context = job.context;
    ev.gpu = device_id_;
    collector_->on_finish(ev);
  }
}

std::uint64_t Scheduler::jobs_in_flight_of(common::Priority p) const {
  std::uint64_t n = 0;
  for (const auto& [id, jr] : jobs_) {
    if (jr->job.task->spec().priority == p) ++n;
  }
  return n;
}

double Scheduler::response_percentile_us(common::Priority p, double q) const {
  const std::size_t cls = static_cast<std::size_t>(p);
  const std::uint32_t n = std::min<std::uint32_t>(resp_count_[cls], kRespRing);
  if (n == 0) return 0.0;
  double sorted[kRespRing];
  std::copy(resp_ring_[cls], resp_ring_[cls] + n, sorted);
  std::sort(sorted, sorted + n);
  const double clamped = std::min(100.0, std::max(0.0, q));
  const auto idx = static_cast<std::size_t>(clamped / 100.0 *
                                            static_cast<double>(n - 1));
  return sorted[idx];
}

std::vector<Scheduler::StealableJob> Scheduler::donatable_lp_jobs() const {
  std::vector<StealableJob> out;
  if (!config_.staging) return out;  // eager dispatch: everything started
  for (const auto& [id, jr] : jobs_) {
    const Job& job = jr->job;
    if (job.started || job.task->spec().priority != Priority::kLow) continue;
    StealableJob s;
    s.job_id = id;
    s.task_id = job.task->id();
    s.release = job.release;
    s.absolute_deadline = job.absolute_deadline;
    out.push_back(s);
  }
  // unordered_map iteration order is unspecified; thieves scan in ascending
  // job-id order so the steal schedule is deterministic.
  std::sort(out.begin(), out.end(),
            [](const StealableJob& a, const StealableJob& b) {
              return a.job_id < b.job_id;
            });
  return out;
}

bool Scheduler::job_stealable(std::uint64_t job_id) const {
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  const Job& job = it->second->job;
  return !job.started && job.task->spec().priority == Priority::kLow;
}

bool Scheduler::revoke_job(std::uint64_t job_id) {
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  Job& job = it->second->job;
  if (job.started) return false;  // GPU-side state: too late to donate
  Task& t = *job.task;
  auto& rec = contexts_[static_cast<std::size_t>(job.context)];

  // Same utilisation unwind as finish_job — the job leaves the active set —
  // but with no finish event and no completion count: the job is not done,
  // it moved to a peer scheduler.
  if (t.spec().priority == Priority::kLow) {
    rec.active_lp_util =
        std::max(0.0, rec.active_lp_util - job.admitted_utilization);
  } else {
    rec.active_hp_util =
        std::max(0.0, rec.active_hp_util - job.admitted_utilization);
    if (!t.resident()) {
      rec.migrated_hp_util =
          std::max(0.0, rec.migrated_hp_util - job.admitted_utilization);
    }
  }
  rec.outstanding_work_us =
      std::max(0.0, rec.outstanding_work_us - t.mret().total_mret_us());
  --t.active_jobs;

  const std::size_t removed = rec.ready.remove_job(&job);
  ready_stages_[static_cast<std::size_t>(t.spec().priority)] -=
      static_cast<int>(removed);
  ++cls_[static_cast<std::size_t>(t.spec().priority)].revoked;
  jobs_.erase(it);
  return true;
}

std::size_t Scheduler::fail_all_jobs() {
  failed_ = true;
  // unordered_map iteration order is unspecified; unwind in ascending job-id
  // order so the collector's event sequence (and with it every downstream
  // report) is deterministic.
  std::vector<std::uint64_t> ids;
  ids.reserve(jobs_.size());
  for (const auto& [id, jr] : jobs_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  const Time now = sim_.now();
  for (const std::uint64_t id : ids) {
    const auto it = jobs_.find(id);
    Job& job = it->second->job;
    Task& t = *job.task;
    auto& rec = contexts_[static_cast<std::size_t>(job.context)];
    // Same utilisation unwind as finish_job — the job leaves the active set
    // either way — but it counts as failed, not completed, and its finish
    // event is forced missed: a request lost to a dead GPU is a deadline
    // miss from the client's point of view even if its deadline lay ahead.
    if (t.spec().priority == Priority::kLow) {
      rec.active_lp_util =
          std::max(0.0, rec.active_lp_util - job.admitted_utilization);
    } else {
      rec.active_hp_util =
          std::max(0.0, rec.active_hp_util - job.admitted_utilization);
      if (!t.resident()) {
        rec.migrated_hp_util =
            std::max(0.0, rec.migrated_hp_util - job.admitted_utilization);
      }
    }
    --t.active_jobs;
    ++jobs_failed_;
    ++cls_[static_cast<std::size_t>(t.spec().priority)].failed;
    if (collector_) {
      metrics::JobEvent ev;
      ev.task_id = t.id();
      ev.priority = t.spec().priority;
      ev.release = job.release;
      ev.finish = now;
      ev.relative_deadline = t.spec().relative_deadline;
      ev.missed = true;
      ev.context = job.context;
      ev.gpu = device_id_;
      collector_->on_finish(ev);
    }
    jobs_.erase(it);
  }
  for (auto& rec : contexts_) {
    rec.ready.clear();  // queued ReadyStages point at the jobs just erased
    std::fill(rec.stream_busy.begin(), rec.stream_busy.end(), false);
    rec.outstanding_work_us = 0.0;
  }
  ready_stages_[0] = 0;
  ready_stages_[1] = 0;
  return ids.size();
}

}  // namespace daris::rt
