#include "daris/config.h"

#include <algorithm>
#include <cstdio>

namespace daris::rt {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kStr:
      return "STR";
    case Policy::kMps:
      return "MPS";
    case Policy::kMpsStr:
      return "MPS+STR";
  }
  return "?";
}

std::string SchedulerConfig::label() const {
  char buf[64];
  if (policy == Policy::kStr) {
    std::snprintf(buf, sizeof(buf), "1x%d", streams_per_context);
  } else {
    std::snprintf(buf, sizeof(buf), "%dx%d %.2g", num_contexts,
                  streams_per_context, oversubscription);
  }
  return buf;
}

SchedulerConfig& SchedulerConfig::canonicalize() {
  switch (policy) {
    case Policy::kStr:
      num_contexts = 1;
      oversubscription = 1.0;  // a single context owns the device
      break;
    case Policy::kMps:
      streams_per_context = 1;
      break;
    case Policy::kMpsStr:
      break;
  }
  num_contexts = std::max(1, num_contexts);
  streams_per_context = std::max(1, streams_per_context);
  oversubscription = std::clamp(oversubscription, 1.0,
                                static_cast<double>(num_contexts));
  mret_window = std::max(1, mret_window);
  batch = std::max(1, batch);
  return *this;
}

}  // namespace daris::rt
