#include "dnn/zoo.h"

#include <map>
#include <mutex>
#include <tuple>

#include "dnn/calibration.h"

namespace daris::dnn {

const char* model_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kResNet18:
      return "ResNet18";
    case ModelKind::kResNet50:
      return "ResNet50";
    case ModelKind::kUNet:
      return "UNet";
    case ModelKind::kInceptionV3:
      return "InceptionV3";
  }
  return "?";
}

NetworkDef network(ModelKind kind) {
  switch (kind) {
    case ModelKind::kResNet18:
      return resnet18();
    case ModelKind::kResNet50:
      return resnet50();
    case ModelKind::kUNet:
      return unet();
    case ModelKind::kInceptionV3:
      return inception_v3();
  }
  return resnet18();
}

Table1Reference table1_reference(ModelKind kind) {
  // Paper Table I: min (single-stream) and max (best batch) JPS.
  switch (kind) {
    case ModelKind::kResNet18:
      return {627.0, 1025.0, 1.63};
    case ModelKind::kResNet50:
      return {250.0, 433.0, 1.73};
    case ModelKind::kUNet:
      return {241.0, 260.0, 1.08};
    case ModelKind::kInceptionV3:
      return {142.0, 446.0, 3.13};
  }
  return {0.0, 0.0, 0.0};
}

LoweringParams calibrated_params(ModelKind kind,
                                 const gpusim::GpuSpec& spec) {
  using Key = std::tuple<int, int, long long, long long, long long>;
  static std::mutex mu;
  static std::map<Key, LoweringParams> cache;

  const Key key{static_cast<int>(kind), spec.sm_count,
                static_cast<long long>(spec.mem_bandwidth * 1e3),
                static_cast<long long>(spec.launch_overhead_us * 1e3),
                static_cast<long long>(spec.quant_smoothing * 1e3)};
  {
    std::scoped_lock lock(mu);
    if (auto it = cache.find(key); it != cache.end()) return it->second;
  }

  const Table1Reference ref = table1_reference(kind);
  CalibrationTargets targets;
  targets.single_stream_latency_us = 1.0e6 / ref.min_jps;
  targets.batched_jps = ref.max_jps;

  // Third calibration anchor (per model): the batched-kernel per-sample
  // overhead, fit to Sec. VI's DARIS-vs-batching ratios. Models with large
  // per-sample activations (ResNets, UNet) pay heavily for big batches;
  // InceptionV3's small feature maps batch almost for free, which is why it
  // is the one network colocation cannot beat (87% of upper baseline).
  LoweringParams base;
  switch (kind) {
    case ModelKind::kResNet18:
      base.batch_work_overhead = 0.27;
      break;
    case ModelKind::kResNet50:
      base.batch_work_overhead = 0.31;
      break;
    case ModelKind::kUNet:
      base.batch_work_overhead = 0.20;
      break;
    case ModelKind::kInceptionV3:
      base.batch_work_overhead = 0.0;
      break;
  }
  const LoweringParams params = calibrate(network(kind), spec, targets, base);

  std::scoped_lock lock(mu);
  cache.emplace(key, params);
  return params;
}

CompiledModel compiled_model(ModelKind kind, int batch,
                             const gpusim::GpuSpec& spec) {
  return lower(network(kind), batch, calibrated_params(kind, spec));
}

}  // namespace daris::dnn
