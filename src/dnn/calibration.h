// Analytic latency model and Table-I calibration.
//
// The analytic model mirrors the GPU simulator for the degenerate case of a
// single stream running alone (one kernel resident at a time), which is
// exactly the condition under which the paper measured Table I. Calibration
// then fits two scalars per network:
//   * work_scale  — so best-batched throughput matches Table I max JPS
//                   (total work determines saturated throughput);
//   * par_scale   — so single-stream latency matches Table I min JPS
//                   (kernel width determines how much of the GPU one
//                   un-batched stream can use).
// Everything else (who wins under colocation, oversubscription knees, DMR)
// is emergent, not fitted.
#pragma once

#include "dnn/model.h"
#include "dnn/zoo.h"
#include "gpusim/gpu_spec.h"

namespace daris::dnn {

/// Latency of one inference executed alone on the device, sequential kernels
/// with launch overhead, wave quantisation, and the bandwidth cap (no stage
/// syncs: Table I was measured without DARIS staging). Microseconds.
double analytic_sequential_latency_us(const CompiledModel& model,
                                      const gpusim::GpuSpec& spec);

/// Effective rate (SMs of progress per us) of a single kernel running alone,
/// matching Gpu::recompute_rates for the one-kernel case.
double analytic_kernel_rate(const gpusim::KernelDesc& kernel,
                            const gpusim::GpuSpec& spec);

struct CalibrationTargets {
  double single_stream_latency_us;  // 1e6 / Table I min JPS
  double batched_jps;               // Table I max JPS
  int batch = 32;                   // batch size treated as the asymptote
};

/// Fixed-point fit of work_scale / par_scale (see file comment). `base`
/// carries the non-fitted constants (e.g. the per-model batch overhead).
LoweringParams calibrate(const NetworkDef& net, const gpusim::GpuSpec& spec,
                         const CalibrationTargets& targets,
                         const LoweringParams& base = {});

}  // namespace daris::dnn
