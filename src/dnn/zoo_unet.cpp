// UNet layer graph (Ronneberger et al., MICCAI 2015) at the paper's
// 224x224x3 input, with same-padded convolutions (the common modern variant)
// and 2x up-convolutions with skip concatenations. The wide, high-resolution
// feature maps are what make UNet fill the GPU without batching (its 1.08x
// batching gain in Table I).
#include "dnn/zoo.h"

namespace daris::dnn {

namespace {
void double_conv(StageDef& stage, const std::string& prefix, int hw, int in_c,
                 int out_c) {
  stage.layers.push_back(conv2d(prefix + ".conv1", hw, in_c, out_c, 3));
  stage.layers.push_back(conv2d(prefix + ".conv2", hw, out_c, out_c, 3));
}
}  // namespace

NetworkDef unet() {
  NetworkDef net;
  net.name = "UNet";

  StageDef s1{"encoder.hi", {}};
  double_conv(s1, "enc1", 224, 3, 64);
  s1.layers.push_back(pool2d("enc1.pool", 224, 64, 2, 2));
  double_conv(s1, "enc2", 112, 64, 128);
  s1.layers.push_back(pool2d("enc2.pool", 112, 128, 2, 2));
  net.stages.push_back(std::move(s1));

  StageDef s2{"encoder.lo+bottleneck", {}};
  double_conv(s2, "enc3", 56, 128, 256);
  s2.layers.push_back(pool2d("enc3.pool", 56, 256, 2, 2));
  double_conv(s2, "enc4", 28, 256, 512);
  s2.layers.push_back(pool2d("enc4.pool", 28, 512, 2, 2));
  double_conv(s2, "bottleneck", 14, 512, 1024);
  net.stages.push_back(std::move(s2));

  StageDef s3{"decoder.lo", {}};
  s3.layers.push_back(upconv2x("dec4.up", 14, 1024, 512));
  s3.layers.push_back(concat("dec4.cat", 28, 1024));
  double_conv(s3, "dec4", 28, 1024, 512);
  s3.layers.push_back(upconv2x("dec3.up", 28, 512, 256));
  s3.layers.push_back(concat("dec3.cat", 56, 512));
  double_conv(s3, "dec3", 56, 512, 256);
  net.stages.push_back(std::move(s3));

  StageDef s4{"decoder.hi+head", {}};
  s4.layers.push_back(upconv2x("dec2.up", 56, 256, 128));
  s4.layers.push_back(concat("dec2.cat", 112, 256));
  double_conv(s4, "dec2", 112, 256, 128);
  s4.layers.push_back(upconv2x("dec1.up", 112, 128, 64));
  s4.layers.push_back(concat("dec1.cat", 224, 128));
  double_conv(s4, "dec1", 224, 128, 64);
  s4.layers.push_back(conv2d("head.out", 224, 64, 2, 1));
  net.stages.push_back(std::move(s4));

  return net;
}

}  // namespace daris::dnn
