// InceptionV3 layer graph (Szegedy et al., CVPR 2016) at its canonical
// 299x299x3 input. The many small per-branch convolutions are what give
// InceptionV3 both its 3.13x batching gain (Table I) and its inability to
// fill the GPU from a single stream (Sec. VI: only 87% of the batched upper
// baseline without batching).
#include "dnn/zoo.h"

namespace daris::dnn {

namespace {

/// Inception-A block at 35x35: 1x1 / 5x5 / double-3x3 / pool branches.
void inception_a(StageDef& s, const std::string& p, int in_c, int pool_c) {
  s.layers.push_back(conv2d(p + ".b1.1x1", 35, in_c, 64, 1));
  s.layers.push_back(conv2d(p + ".b2.1x1", 35, in_c, 48, 1));
  s.layers.push_back(conv2d(p + ".b2.5x5", 35, 48, 64, 5));
  s.layers.push_back(conv2d(p + ".b3.1x1", 35, in_c, 64, 1));
  s.layers.push_back(conv2d(p + ".b3.3x3a", 35, 64, 96, 3));
  s.layers.push_back(conv2d(p + ".b3.3x3b", 35, 96, 96, 3));
  s.layers.push_back(pool2d(p + ".b4.pool", 35, in_c, 3, 1));
  s.layers.push_back(conv2d(p + ".b4.1x1", 35, in_c, pool_c, 1));
}

/// Reduction-A: 35x35 -> 17x17.
void reduction_a(StageDef& s, const std::string& p, int in_c) {
  s.layers.push_back(conv2d(p + ".b1.3x3s2", 35, in_c, 384, 3, 2));
  s.layers.push_back(conv2d(p + ".b2.1x1", 35, in_c, 64, 1));
  s.layers.push_back(conv2d(p + ".b2.3x3", 35, 64, 96, 3));
  s.layers.push_back(conv2d(p + ".b2.3x3s2", 35, 96, 96, 3, 2));
  s.layers.push_back(pool2d(p + ".b3.pool", 35, in_c, 3, 2));
}

/// Inception-B block at 17x17 with 7x7 factorised branches.
void inception_b(StageDef& s, const std::string& p, int in_c, int mid_c) {
  s.layers.push_back(conv2d(p + ".b1.1x1", 17, in_c, 192, 1));
  s.layers.push_back(conv2d(p + ".b2.1x1", 17, in_c, mid_c, 1));
  s.layers.push_back(conv2d_rect(p + ".b2.1x7", 17, mid_c, mid_c, 1, 7));
  s.layers.push_back(conv2d_rect(p + ".b2.7x1", 17, mid_c, 192, 7, 1));
  s.layers.push_back(conv2d(p + ".b3.1x1", 17, in_c, mid_c, 1));
  s.layers.push_back(conv2d_rect(p + ".b3.7x1a", 17, mid_c, mid_c, 7, 1));
  s.layers.push_back(conv2d_rect(p + ".b3.1x7a", 17, mid_c, mid_c, 1, 7));
  s.layers.push_back(conv2d_rect(p + ".b3.7x1b", 17, mid_c, mid_c, 7, 1));
  s.layers.push_back(conv2d_rect(p + ".b3.1x7b", 17, mid_c, 192, 1, 7));
  s.layers.push_back(pool2d(p + ".b4.pool", 17, in_c, 3, 1));
  s.layers.push_back(conv2d(p + ".b4.1x1", 17, in_c, 192, 1));
}

/// Reduction-B: 17x17 -> 8x8.
void reduction_b(StageDef& s, const std::string& p, int in_c) {
  s.layers.push_back(conv2d(p + ".b1.1x1", 17, in_c, 192, 1));
  s.layers.push_back(conv2d(p + ".b1.3x3s2", 17, 192, 320, 3, 2));
  s.layers.push_back(conv2d(p + ".b2.1x1", 17, in_c, 192, 1));
  s.layers.push_back(conv2d_rect(p + ".b2.1x7", 17, 192, 192, 1, 7));
  s.layers.push_back(conv2d_rect(p + ".b2.7x1", 17, 192, 192, 7, 1));
  s.layers.push_back(conv2d(p + ".b2.3x3s2", 17, 192, 192, 3, 2));
  s.layers.push_back(pool2d(p + ".b3.pool", 17, in_c, 3, 2));
}

/// Inception-C block at 8x8 with 3x3 split branches.
void inception_c(StageDef& s, const std::string& p, int in_c) {
  s.layers.push_back(conv2d(p + ".b1.1x1", 8, in_c, 320, 1));
  s.layers.push_back(conv2d(p + ".b2.1x1", 8, in_c, 384, 1));
  s.layers.push_back(conv2d_rect(p + ".b2.1x3", 8, 384, 384, 1, 3));
  s.layers.push_back(conv2d_rect(p + ".b2.3x1", 8, 384, 384, 3, 1));
  s.layers.push_back(conv2d(p + ".b3.1x1", 8, in_c, 448, 1));
  s.layers.push_back(conv2d(p + ".b3.3x3", 8, 448, 384, 3));
  s.layers.push_back(conv2d_rect(p + ".b3.1x3", 8, 384, 384, 1, 3));
  s.layers.push_back(conv2d_rect(p + ".b3.3x1", 8, 384, 384, 3, 1));
  s.layers.push_back(pool2d(p + ".b4.pool", 8, in_c, 3, 1));
  s.layers.push_back(conv2d(p + ".b4.1x1", 8, in_c, 192, 1));
}

}  // namespace

NetworkDef inception_v3() {
  NetworkDef net;
  net.name = "InceptionV3";

  StageDef s1{"stem", {}};
  s1.layers.push_back(conv2d("stem.conv1", 299, 3, 32, 3, 2));
  s1.layers.push_back(conv2d("stem.conv2", 149, 32, 32, 3));
  s1.layers.push_back(conv2d("stem.conv3", 149, 32, 64, 3));
  s1.layers.push_back(pool2d("stem.pool1", 147, 64, 3, 2));
  s1.layers.push_back(conv2d("stem.conv4", 73, 64, 80, 1));
  s1.layers.push_back(conv2d("stem.conv5", 73, 80, 192, 3));
  s1.layers.push_back(pool2d("stem.pool2", 71, 192, 3, 2));
  net.stages.push_back(std::move(s1));

  StageDef s2{"inceptionA", {}};
  inception_a(s2, "mixed0", 192, 32);
  inception_a(s2, "mixed1", 256, 64);
  inception_a(s2, "mixed2", 288, 64);
  reduction_a(s2, "mixed3", 288);
  net.stages.push_back(std::move(s2));

  StageDef s3{"inceptionB", {}};
  inception_b(s3, "mixed4", 768, 128);
  inception_b(s3, "mixed5", 768, 160);
  inception_b(s3, "mixed6", 768, 160);
  inception_b(s3, "mixed7", 768, 192);
  reduction_b(s3, "mixed8", 768);
  net.stages.push_back(std::move(s3));

  StageDef s4{"inceptionC+head", {}};
  inception_c(s4, "mixed9", 1280);
  inception_c(s4, "mixed10", 2048);
  s4.layers.push_back(global_pool("head.avgpool", 8, 2048));
  s4.layers.push_back(fc("head.fc", 2048, 1000));
  net.stages.push_back(std::move(s4));

  return net;
}

}  // namespace daris::dnn
