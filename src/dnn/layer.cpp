#include "dnn/layer.h"

namespace daris::dnn {

namespace {
constexpr double kBytesPerElem = 4.0;  // fp32

double hw_out(int in_hw, int stride) {
  return static_cast<double>(stride == 1 ? in_hw : in_hw / stride);
}
}  // namespace

LayerDesc conv2d(const std::string& name, int in_hw, int in_c, int out_c,
                 int kernel, int stride) {
  LayerDesc l;
  l.name = name;
  const double out_hw = hw_out(in_hw, stride);
  const double macs = out_hw * out_hw * static_cast<double>(out_c) *
                      static_cast<double>(in_c) *
                      static_cast<double>(kernel * kernel);
  l.flops = 2.0 * macs;
  l.out_elems = out_hw * out_hw * static_cast<double>(out_c);
  const double in_elems =
      static_cast<double>(in_hw) * in_hw * static_cast<double>(in_c);
  l.act_bytes = (in_elems + l.out_elems) * kBytesPerElem;
  l.weight_bytes = static_cast<double>(kernel * kernel) * in_c * out_c *
                   kBytesPerElem;
  return l;
}

LayerDesc conv2d_rect(const std::string& name, int in_hw, int in_c, int out_c,
                      int kh, int kw) {
  LayerDesc l;
  l.name = name;
  const double out_hw = static_cast<double>(in_hw);
  const double macs = out_hw * out_hw * static_cast<double>(out_c) *
                      static_cast<double>(in_c) * static_cast<double>(kh * kw);
  l.flops = 2.0 * macs;
  l.out_elems = out_hw * out_hw * static_cast<double>(out_c);
  const double in_elems =
      static_cast<double>(in_hw) * in_hw * static_cast<double>(in_c);
  l.act_bytes = (in_elems + l.out_elems) * kBytesPerElem;
  l.weight_bytes = static_cast<double>(kh * kw) * in_c * out_c * kBytesPerElem;
  return l;
}

LayerDesc pool2d(const std::string& name, int in_hw, int channels, int kernel,
                 int stride) {
  LayerDesc l;
  l.name = name;
  const double out_hw = hw_out(in_hw, stride);
  l.out_elems = out_hw * out_hw * static_cast<double>(channels);
  // One compare/add per window element.
  l.flops = l.out_elems * static_cast<double>(kernel * kernel);
  const double in_elems =
      static_cast<double>(in_hw) * in_hw * static_cast<double>(channels);
  l.act_bytes = (in_elems + l.out_elems) * kBytesPerElem;
  l.weight_bytes = 0.0;
  return l;
}

LayerDesc global_pool(const std::string& name, int in_hw, int channels) {
  LayerDesc l;
  l.name = name;
  l.out_elems = static_cast<double>(channels);
  const double in_elems =
      static_cast<double>(in_hw) * in_hw * static_cast<double>(channels);
  l.flops = in_elems;
  l.act_bytes = (in_elems + l.out_elems) * kBytesPerElem;
  return l;
}

LayerDesc fc(const std::string& name, int in_features, int out_features) {
  LayerDesc l;
  l.name = name;
  l.flops = 2.0 * static_cast<double>(in_features) * out_features;
  l.out_elems = static_cast<double>(out_features);
  l.act_bytes =
      (static_cast<double>(in_features) + out_features) * kBytesPerElem;
  l.weight_bytes =
      static_cast<double>(in_features) * out_features * kBytesPerElem;
  return l;
}

LayerDesc upconv2x(const std::string& name, int in_hw, int in_c, int out_c) {
  LayerDesc l;
  l.name = name;
  const double out_hw = static_cast<double>(in_hw) * 2.0;
  const double macs = out_hw * out_hw * static_cast<double>(out_c) *
                      static_cast<double>(in_c) * 4.0;  // 2x2 kernel
  l.flops = 2.0 * macs;
  l.out_elems = out_hw * out_hw * static_cast<double>(out_c);
  const double in_elems =
      static_cast<double>(in_hw) * in_hw * static_cast<double>(in_c);
  l.act_bytes = (in_elems + l.out_elems) * kBytesPerElem;
  l.weight_bytes = 4.0 * in_c * out_c * kBytesPerElem;
  return l;
}

LayerDesc concat(const std::string& name, int hw, int total_channels) {
  LayerDesc l;
  l.name = name;
  l.out_elems =
      static_cast<double>(hw) * hw * static_cast<double>(total_channels);
  l.flops = l.out_elems;  // copy cost proxy
  l.act_bytes = 2.0 * l.out_elems * kBytesPerElem;
  return l;
}

LayerDesc residual_add(const std::string& name, int hw, int channels) {
  LayerDesc l;
  l.name = name;
  l.out_elems = static_cast<double>(hw) * hw * static_cast<double>(channels);
  l.flops = l.out_elems;
  l.act_bytes = 3.0 * l.out_elems * kBytesPerElem;
  return l;
}

std::size_t NetworkDef::layer_count() const {
  std::size_t n = 0;
  for (const auto& s : stages) n += s.layers.size();
  return n;
}

double NetworkDef::total_flops() const {
  double f = 0.0;
  for (const auto& s : stages) {
    for (const auto& l : s.layers) f += l.flops;
  }
  return f;
}

}  // namespace daris::dnn
