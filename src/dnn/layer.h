// Layer-level IR for the DNN substrate.
//
// Each layer records the analytic quantities the kernel cost model needs:
// FLOPs (compute), activation & weight traffic (memory), and output tensor
// size (available parallelism). Builders below mirror the real layer shapes
// of the paper's benchmark networks.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace daris::dnn {

struct LayerDesc {
  std::string name;
  double flops = 0.0;         // 2 * MACs
  double act_bytes = 0.0;     // input + output activations (fp32), batch 1
  double weight_bytes = 0.0;  // parameters (not scaled by batch)
  double out_elems = 0.0;     // output tensor elements, batch 1
};

/// 2-D convolution with square kernel and "same" padding unless stride > 1,
/// in which case the output is in_hw / stride (floor). BN + activation are
/// folded into the conv kernel, as inference frameworks fuse them.
LayerDesc conv2d(const std::string& name, int in_hw, int in_c, int out_c,
                 int kernel, int stride = 1);

/// Rectangular convolution (for InceptionV3's 1x7 / 7x1 factorisations).
LayerDesc conv2d_rect(const std::string& name, int in_hw, int in_c, int out_c,
                      int kh, int kw);

/// Max or average pooling.
LayerDesc pool2d(const std::string& name, int in_hw, int channels, int kernel,
                 int stride);

/// Global average pooling down to 1x1.
LayerDesc global_pool(const std::string& name, int in_hw, int channels);

/// Fully connected layer.
LayerDesc fc(const std::string& name, int in_features, int out_features);

/// 2x-upsampling transposed convolution (UNet decoder).
LayerDesc upconv2x(const std::string& name, int in_hw, int in_c, int out_c);

/// Channel concatenation (UNet skip connections) — pure memory traffic.
LayerDesc concat(const std::string& name, int hw, int total_channels);

/// Elementwise residual add (ResNet shortcuts) — pure memory traffic.
LayerDesc residual_add(const std::string& name, int hw, int channels);

/// A stage is a logical segment of the network: DARIS inserts its
/// synchronisation points (coarse-grained preemption) at stage boundaries.
struct StageDef {
  std::string name;
  std::vector<LayerDesc> layers;
};

struct NetworkDef {
  std::string name;
  std::vector<StageDef> stages;

  std::size_t layer_count() const;
  double total_flops() const;
};

}  // namespace daris::dnn
