#include "dnn/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace daris::dnn {

namespace {
double quantized_rate(const gpusim::GpuSpec& spec, double parallelism,
                      double share) {
  if (share <= 0.0) return 0.0;
  if (parallelism <= share) return parallelism;
  const double fluid = parallelism / share;
  const double hard = std::ceil(fluid - 1e-12);
  const double waves =
      spec.quant_smoothing * fluid + (1.0 - spec.quant_smoothing) * hard;
  return parallelism / waves;
}
}  // namespace

double analytic_kernel_rate(const gpusim::KernelDesc& kernel,
                            const gpusim::GpuSpec& spec) {
  const double sm = static_cast<double>(spec.sm_count);
  const double share = std::min(kernel.parallelism, sm);
  double rate = quantized_rate(spec, kernel.parallelism, share);
  // Single-tenant execution owns the whole device (quota = all SMs).
  rate *= 1.0 - spec.quota_penalty_a * std::exp(-sm / spec.quota_penalty_q0);
  const double bw_demand = rate * kernel.mem_intensity;
  if (bw_demand > spec.mem_bandwidth && bw_demand > 0.0) {
    rate *= spec.mem_bandwidth / bw_demand;
  }
  return rate;
}

double analytic_sequential_latency_us(const CompiledModel& model,
                                      const gpusim::GpuSpec& spec) {
  double total = 0.0;
  for (const auto& stage : model.stages) {
    for (const auto& k : stage.kernels) {
      const double rate = analytic_kernel_rate(k, spec);
      total += spec.launch_overhead_us + (rate > 0.0 ? k.work / rate : 0.0);
    }
  }
  return total;
}

LoweringParams calibrate(const NetworkDef& net, const gpusim::GpuSpec& spec,
                         const CalibrationTargets& targets,
                         const LoweringParams& base) {
  LoweringParams p = base;
  p.work_scale = 1.0;
  p.par_scale = 1.0;
  const double launch_per_kernel = spec.launch_overhead_us;
  const double n_kernels = static_cast<double>(net.layer_count());
  const double launch_total = n_kernels * launch_per_kernel;

  const double t1_target = targets.single_stream_latency_us;
  const double tB_target =
      static_cast<double>(targets.batch) * 1.0e6 / targets.batched_jps;

  for (int iter = 0; iter < 60; ++iter) {
    // Fit total work against the batched (saturated) throughput target.
    const CompiledModel mb = lower(net, targets.batch, p);
    const double tb = analytic_sequential_latency_us(mb, spec);
    const double work_ratio =
        std::max(0.05, (tB_target - launch_total) / (tb - launch_total));
    p.work_scale *= std::pow(work_ratio, 0.9);

    // Fit kernel width against the single-stream latency target.
    const CompiledModel m1 = lower(net, 1, p);
    const double t1 = analytic_sequential_latency_us(m1, spec);
    const double par_ratio =
        std::max(0.05, (t1 - launch_total) / (t1_target - launch_total));
    p.par_scale *= std::pow(par_ratio, 0.7);
    p.par_scale = std::clamp(p.par_scale, 1e-3, 1e3);

    if (std::abs(t1 - t1_target) < 0.5 * 1e-3 * t1_target &&
        std::abs(tb - tB_target) < 0.5 * 1e-3 * tB_target) {
      break;
    }
  }

  const CompiledModel m1 = lower(net, 1, p);
  const CompiledModel mb = lower(net, targets.batch, p);
  DARIS_LOG_INFO << net.name << " calibrated: t1="
                 << analytic_sequential_latency_us(m1, spec) << "us (target "
                 << t1_target << "), batched_jps="
                 << targets.batch * 1e6 /
                        analytic_sequential_latency_us(mb, spec)
                 << " (target " << targets.batched_jps << "), work_scale="
                 << p.work_scale << ", par_scale=" << p.par_scale;
  return p;
}

}  // namespace daris::dnn
