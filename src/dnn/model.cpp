#include "dnn/model.h"

#include <algorithm>
#include <cassert>

namespace daris::dnn {

double CompiledStage::total_work() const {
  double w = 0.0;
  for (const auto& k : kernels) w += k.work;
  return w;
}

std::size_t CompiledModel::kernel_count() const {
  std::size_t n = 0;
  for (const auto& s : stages) n += s.kernels.size();
  return n;
}

double CompiledModel::total_work() const {
  double w = 0.0;
  for (const auto& s : stages) w += s.total_work();
  return w;
}

CompiledModel lower(const NetworkDef& net, int batch,
                    const LoweringParams& params) {
  assert(batch >= 1);
  CompiledModel model;
  model.name = net.name;
  model.batch = batch;
  model.stages.reserve(net.stages.size());

  const double b = static_cast<double>(batch);
  const double batch_inflation =
      1.0 + params.batch_work_overhead * (b - 1.0) / b;
  std::uint32_t tag = 0;
  double weight_bytes = 0.0;
  for (const auto& stage : net.stages) {
    for (const auto& layer : stage.layers) weight_bytes += layer.weight_bytes;
  }
  model.weight_mb = weight_bytes / (1024.0 * 1024.0);
  for (const auto& stage : net.stages) {
    CompiledStage cs;
    cs.name = stage.name;
    cs.kernels.reserve(stage.layers.size());
    for (const auto& layer : stage.layers) {
      gpusim::KernelDesc k;
      k.tag = tag++;
      k.work = params.work_scale * b * batch_inflation * layer.flops /
               params.flops_per_smus;
      const double par =
          params.par_scale * b * layer.out_elems / params.elems_per_sm;
      k.parallelism = std::clamp(par, 1.0, params.max_parallelism_sms);
      // Activations scale with batch; weights are fetched once per kernel.
      // work_scale stretches compute without adding traffic, so the per-SM
      // bandwidth demand shrinks by the same factor.
      const double bytes = b * layer.act_bytes + layer.weight_bytes;
      const double flops = std::max(1.0, b * layer.flops);
      k.mem_intensity = (bytes / flops) / params.balance_bytes_per_flop /
                        std::max(1e-9, params.work_scale * batch_inflation);
      cs.kernels.push_back(k);
    }
    model.stages.push_back(std::move(cs));
  }
  return model;
}

}  // namespace daris::dnn
