// Compiled model: the network lowered to GPU kernel sequences per stage.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dnn/layer.h"
#include "gpusim/kernel.h"

namespace daris::dnn {

/// Tunables of the layer -> kernel lowering. `work_scale` and `par_scale`
/// are set by calibration against the paper's measured Table I numbers; the
/// remaining constants encode RTX 2080 Ti-like ratios.
struct LoweringParams {
  /// Deliverable FLOPs per SM-microsecond (before calibration scale).
  double flops_per_smus = 2.0e5;

  /// Output elements one SM's worth of blocks covers (parallelism proxy).
  double elems_per_sm = 8192.0;

  /// Bytes per FLOP at which compute and bandwidth are balanced.
  double balance_bytes_per_flop = 0.046;

  /// Calibration multipliers (fit to Table I min/max JPS).
  double work_scale = 1.0;
  double par_scale = 1.0;

  /// Per-sample work inflation of batched kernels,
  /// f(B) = 1 + c * (B-1)/B: large batches pay extra cache/padding cost per
  /// sample. This is why the paper's colocated single-sample kernels exceed
  /// the best batched throughput (Sec. VI: +13% ResNet18, +8% UNet).
  double batch_work_overhead = 0.17;

  /// Cap on a single kernel's parallelism, in SMs.
  double max_parallelism_sms = 1024.0;
};

struct CompiledStage {
  std::string name;
  std::vector<gpusim::KernelDesc> kernels;

  double total_work() const;
};

struct CompiledModel {
  std::string name;
  int batch = 1;
  /// Parameter footprint in MB (fp32 weights, batch-independent). Sizes the
  /// cluster layer's hot-model pinning and cross-GPU weight transfers.
  double weight_mb = 0.0;
  std::vector<CompiledStage> stages;

  std::size_t stage_count() const { return stages.size(); }
  std::size_t kernel_count() const;
  double total_work() const;
};

/// Lowers `net` at the given batch size. Batching multiplies per-kernel work
/// and available parallelism by the batch while amortising weight traffic
/// and (at execution time) per-kernel launch overhead.
CompiledModel lower(const NetworkDef& net, int batch,
                    const LoweringParams& params);

}  // namespace daris::dnn
