// ResNet-18 and ResNet-50 layer graphs (He et al., CVPR 2016), 224x224x3
// input, partitioned into the four residual super-blocks as in the paper
// ("ResNet is divided into four stages", Sec. III-B1).
#include "dnn/zoo.h"

namespace daris::dnn {

namespace {

/// Basic block: two 3x3 convolutions plus the residual add; `downsample`
/// adds the 1x1 strided projection.
void basic_block(StageDef& stage, const std::string& prefix, int in_hw,
                 int in_c, int out_c, bool downsample) {
  const int stride = downsample ? 2 : 1;
  const int out_hw = downsample ? in_hw / 2 : in_hw;
  stage.layers.push_back(
      conv2d(prefix + ".conv1", in_hw, in_c, out_c, 3, stride));
  stage.layers.push_back(conv2d(prefix + ".conv2", out_hw, out_c, out_c, 3));
  if (downsample) {
    stage.layers.push_back(
        conv2d(prefix + ".down", in_hw, in_c, out_c, 1, stride));
  }
  stage.layers.push_back(residual_add(prefix + ".add", out_hw, out_c));
}

/// Bottleneck block: 1x1 reduce, 3x3, 1x1 expand (4x), plus residual add.
void bottleneck_block(StageDef& stage, const std::string& prefix, int in_hw,
                      int in_c, int mid_c, bool downsample, bool project) {
  const int out_c = mid_c * 4;
  const int stride = downsample ? 2 : 1;
  const int out_hw = downsample ? in_hw / 2 : in_hw;
  stage.layers.push_back(conv2d(prefix + ".conv1", in_hw, in_c, mid_c, 1));
  stage.layers.push_back(
      conv2d(prefix + ".conv2", in_hw, mid_c, mid_c, 3, stride));
  stage.layers.push_back(conv2d(prefix + ".conv3", out_hw, mid_c, out_c, 1));
  if (project) {
    stage.layers.push_back(
        conv2d(prefix + ".down", in_hw, in_c, out_c, 1, stride));
  }
  stage.layers.push_back(residual_add(prefix + ".add", out_hw, out_c));
}

}  // namespace

NetworkDef resnet18() {
  NetworkDef net;
  net.name = "ResNet18";

  StageDef s1{"stem+layer1", {}};
  s1.layers.push_back(conv2d("stem.conv7x7", 224, 3, 64, 7, 2));
  s1.layers.push_back(pool2d("stem.maxpool", 112, 64, 3, 2));
  basic_block(s1, "layer1.0", 56, 64, 64, false);
  basic_block(s1, "layer1.1", 56, 64, 64, false);
  net.stages.push_back(std::move(s1));

  StageDef s2{"layer2", {}};
  basic_block(s2, "layer2.0", 56, 64, 128, true);
  basic_block(s2, "layer2.1", 28, 128, 128, false);
  net.stages.push_back(std::move(s2));

  StageDef s3{"layer3", {}};
  basic_block(s3, "layer3.0", 28, 128, 256, true);
  basic_block(s3, "layer3.1", 14, 256, 256, false);
  net.stages.push_back(std::move(s3));

  StageDef s4{"layer4+head", {}};
  basic_block(s4, "layer4.0", 14, 256, 512, true);
  basic_block(s4, "layer4.1", 7, 512, 512, false);
  s4.layers.push_back(global_pool("head.avgpool", 7, 512));
  s4.layers.push_back(fc("head.fc", 512, 1000));
  net.stages.push_back(std::move(s4));

  return net;
}

NetworkDef resnet50() {
  NetworkDef net;
  net.name = "ResNet50";

  StageDef s1{"stem+layer1", {}};
  s1.layers.push_back(conv2d("stem.conv7x7", 224, 3, 64, 7, 2));
  s1.layers.push_back(pool2d("stem.maxpool", 112, 64, 3, 2));
  bottleneck_block(s1, "layer1.0", 56, 64, 64, false, true);
  bottleneck_block(s1, "layer1.1", 56, 256, 64, false, false);
  bottleneck_block(s1, "layer1.2", 56, 256, 64, false, false);
  net.stages.push_back(std::move(s1));

  StageDef s2{"layer2", {}};
  bottleneck_block(s2, "layer2.0", 56, 256, 128, true, true);
  for (int i = 1; i < 4; ++i) {
    bottleneck_block(s2, "layer2." + std::to_string(i), 28, 512, 128, false,
                     false);
  }
  net.stages.push_back(std::move(s2));

  StageDef s3{"layer3", {}};
  bottleneck_block(s3, "layer3.0", 28, 512, 256, true, true);
  for (int i = 1; i < 6; ++i) {
    bottleneck_block(s3, "layer3." + std::to_string(i), 14, 1024, 256, false,
                     false);
  }
  net.stages.push_back(std::move(s3));

  StageDef s4{"layer4+head", {}};
  bottleneck_block(s4, "layer4.0", 14, 1024, 512, true, true);
  bottleneck_block(s4, "layer4.1", 7, 2048, 512, false, false);
  bottleneck_block(s4, "layer4.2", 7, 2048, 512, false, false);
  s4.layers.push_back(global_pool("head.avgpool", 7, 2048));
  s4.layers.push_back(fc("head.fc", 2048, 1000));
  net.stages.push_back(std::move(s4));

  return net;
}

}  // namespace daris::dnn
