// Benchmark networks used by the paper (ResNet18/50, UNet, InceptionV3) and
// their calibrated lowerings.
#pragma once

#include <string>

#include "dnn/layer.h"
#include "dnn/model.h"
#include "gpusim/gpu_spec.h"

namespace daris::dnn {

enum class ModelKind { kResNet18, kResNet50, kUNet, kInceptionV3 };

/// Human-readable model name ("ResNet18", ...).
const char* model_name(ModelKind kind);

/// Layer graphs with the paper's stage partitioning (4 logical stages each;
/// ResNet's four residual super-blocks, UNet's encoder/decoder halves,
/// InceptionV3's stem/A/B/C sections).
NetworkDef resnet18();
NetworkDef resnet50();
NetworkDef unet();
NetworkDef inception_v3();
NetworkDef network(ModelKind kind);

/// Paper-reported single-stream and best-batching throughput (Table I).
struct Table1Reference {
  double min_jps;
  double max_jps;
  double batching_gain;
};
Table1Reference table1_reference(ModelKind kind);

/// Lowering parameters calibrated so the simulated GPU reproduces Table I's
/// min JPS (single-stream latency) and max JPS (best batched throughput).
/// Results are computed once per (model, spec) and cached.
LoweringParams calibrated_params(ModelKind kind, const gpusim::GpuSpec& spec);

/// Convenience: calibrated network lowered at the given batch size.
CompiledModel compiled_model(ModelKind kind, int batch,
                             const gpusim::GpuSpec& spec);

}  // namespace daris::dnn
