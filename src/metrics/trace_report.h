// Trace tooling (ROADMAP): folds a StageEvent stream into a migration /
// starvation summary so regressions show up in bench output and CI without
// loading the Chrome trace into Perfetto.
//
// A "stall" is the gap between a stage's measured execution time and the
// MRET prediction in force when it was dispatched — sustained large stalls
// mean the context was starved of SMs (oversubscription, bandwidth, or a
// mis-sized partition). Migrations are detected from consecutive stage
// events of the same task landing on a different context or GPU.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/collector.h"

namespace daris::metrics {

struct TraceReport {
  std::uint64_t stages = 0;            // stage events folded
  std::uint64_t tasks = 0;             // distinct tasks seen
  std::uint64_t context_switches = 0;  // same GPU, different context
  std::uint64_t gpu_migrations = 0;    // different GPU (cluster runs)
  std::uint64_t starved_stages = 0;    // execution >= factor x MRET

  double worst_stall_us = 0.0;  // max over all stages of (execution - MRET)
  int worst_stall_task = -1;
  std::size_t worst_stall_stage = 0;

  /// Worst stall per task, indexed by task id (0 for tasks never stalled).
  std::vector<double> worst_stall_per_task_us;

  /// Human-readable multi-line summary (bench / CI output).
  std::string to_string() const;
};

/// Folds a stage-event stream (as recorded by Collector::stage_trace) into a
/// TraceReport. A stage counts as starved when its measured execution time is
/// at least `starvation_factor` times its MRET prediction.
TraceReport trace_report(const std::vector<StageEvent>& stages,
                         double starvation_factor = 2.0);

}  // namespace daris::metrics
