#include "metrics/trace_report.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace daris::metrics {

TraceReport trace_report(const std::vector<StageEvent>& stages,
                         double starvation_factor) {
  TraceReport report;
  report.stages = stages.size();

  struct LastSeen {
    int context = -1;
    int gpu = -1;
  };
  std::unordered_map<int, LastSeen> last;

  for (const auto& ev : stages) {
    auto [it, fresh] = last.try_emplace(ev.task_id);
    if (!fresh) {
      if (ev.gpu != it->second.gpu) {
        ++report.gpu_migrations;
      } else if (ev.context != it->second.context) {
        ++report.context_switches;
      }
    }
    it->second.context = ev.context;
    it->second.gpu = ev.gpu;

    const double stall_us = ev.execution_us - ev.mret_us;
    if (ev.mret_us > 0.0 &&
        ev.execution_us >= starvation_factor * ev.mret_us) {
      ++report.starved_stages;
    }
    if (ev.task_id >= 0) {
      const auto idx = static_cast<std::size_t>(ev.task_id);
      if (report.worst_stall_per_task_us.size() <= idx) {
        report.worst_stall_per_task_us.resize(idx + 1, 0.0);
      }
      report.worst_stall_per_task_us[idx] =
          std::max(report.worst_stall_per_task_us[idx], stall_us);
    }
    if (stall_us > report.worst_stall_us) {
      report.worst_stall_us = stall_us;
      report.worst_stall_task = ev.task_id;
      report.worst_stall_stage = ev.stage;
    }
  }
  report.tasks = last.size();
  return report;
}

std::string TraceReport::to_string() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "trace report: %llu stages over %llu tasks\n",
                static_cast<unsigned long long>(stages),
                static_cast<unsigned long long>(tasks));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  migrations: %llu cross-GPU, %llu context switches\n",
                static_cast<unsigned long long>(gpu_migrations),
                static_cast<unsigned long long>(context_switches));
  out += buf;
  std::snprintf(buf, sizeof(buf), "  starved stages: %llu\n",
                static_cast<unsigned long long>(starved_stages));
  out += buf;
  if (worst_stall_task >= 0) {
    std::snprintf(buf, sizeof(buf),
                  "  worst stall: %.1f us (task %d, stage %zu)\n",
                  worst_stall_us, worst_stall_task, worst_stall_stage);
    out += buf;
  }
  return out;
}

}  // namespace daris::metrics
