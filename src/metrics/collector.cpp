#include "metrics/collector.h"

#include <algorithm>

#include "metrics/eventlog.h"

namespace daris::metrics {

Collector::Collector() = default;
Collector::~Collector() = default;

void Collector::enable_event_log(std::size_t capacity) {
  event_log_ = std::make_unique<EventLog>();
  event_log_->reserve(capacity);
}

void Collector::log_admit(Time when, int gpu, int task) {
  if (event_log_) {
    event_log_->append(when, EventKind::kAdmit, EventCause::kHomeAdmit, gpu,
                       -1, task);
  }
}

void Collector::log_reject(Time when, int gpu, int task, EventCause cause) {
  if (event_log_) {
    event_log_->append(when, EventKind::kReject, cause, gpu, -1, task);
  }
}

void Collector::log_migrate(Time when, int from_gpu, int to_gpu, int task) {
  if (event_log_) {
    event_log_->append(when, EventKind::kMigrate, EventCause::kSpill,
                       from_gpu, to_gpu, task);
  }
}

void Collector::log_transfer(Time when, int to_gpu, int task, double mb) {
  if (event_log_) {
    event_log_->append(when, EventKind::kTransfer, EventCause::kColdModel,
                       to_gpu, -1, task, mb);
  }
}

void Collector::log_fault(Time when, int gpu, EventCause cause,
                          double value) {
  if (event_log_) {
    event_log_->append(when, EventKind::kFault, cause, gpu, -1, -1, value);
  }
}

void Collector::log_rehome(Time when, int from_gpu, int to_gpu, int task) {
  log_rehome(when, from_gpu, to_gpu, task, EventCause::kNone);
}

void Collector::log_rehome(Time when, int from_gpu, int to_gpu, int task,
                           EventCause cause) {
  if (event_log_) {
    event_log_->append(when, EventKind::kRehome, cause, from_gpu, to_gpu,
                       task);
  }
}

void Collector::log_steal(Time when, int victim, int thief, int task) {
  if (event_log_) {
    event_log_->append(when, EventKind::kSteal, EventCause::kBacklogSteal,
                       victim, thief, task);
  }
}

void Collector::log_coalesce(Time when, int to_gpu, int task, double mb) {
  if (event_log_) {
    event_log_->append(when, EventKind::kCoalesce, EventCause::kCoalesced,
                       to_gpu, -1, task, mb);
  }
}

void Collector::log_drain(Time when, int gpu) {
  if (event_log_) {
    event_log_->append(when, EventKind::kDrain, EventCause::kScaleDown, gpu);
  }
}

void Collector::log_retry(Time when, int gpu, int task, EventCause cause,
                          int attempt) {
  if (event_log_) {
    event_log_->append(when, EventKind::kRetry, cause, gpu, -1, task,
                       static_cast<double>(attempt));
  }
}

void Collector::log_hedge(Time when, int gpu, int peer, int task,
                          EventCause cause) {
  if (event_log_) {
    event_log_->append(when, EventKind::kHedge, cause, gpu, peer, task);
  }
}

void Collector::log_breaker(Time when, int gpu, EventCause cause,
                            double rate) {
  if (event_log_) {
    event_log_->append(when, EventKind::kBreaker, cause, gpu, -1, -1, rate);
  }
}

void Collector::on_release(const JobEvent& ev) {
  auto& c = classes_[static_cast<std::size_t>(ev.priority)];
  ++c.released;
}

void Collector::on_reject(const JobEvent& ev) {
  auto& c = classes_[static_cast<std::size_t>(ev.priority)];
  ++c.rejected;
}

void Collector::record_finish(ClassSummary* cls, std::vector<JobEvent>& jobs,
                              const JobEvent& ev) {
  auto& c = cls[static_cast<std::size_t>(ev.priority)];
  ++c.accepted;
  if (trace_jobs_) jobs.push_back(ev);
  if (ev.finish < measure_start_) return;  // warm-up
  ++c.completed;
  if (ev.missed) ++c.missed;
  c.response_ms.add(common::to_ms(ev.finish - ev.release));
}

void Collector::on_finish(const JobEvent& ev) {
  if (!lanes_.empty() && ev.gpu >= 0 &&
      ev.gpu < static_cast<int>(lanes_.size())) {
    auto& lane = lanes_[static_cast<std::size_t>(ev.gpu)];
    record_finish(lane.cls, lane.jobs, ev);
    return;
  }
  record_finish(classes_, job_trace_, ev);
}

void Collector::on_stage(const StageEvent& ev) {
  if (!trace_stages_) return;
  if (!lanes_.empty() && ev.gpu >= 0 &&
      ev.gpu < static_cast<int>(lanes_.size())) {
    lanes_[static_cast<std::size_t>(ev.gpu)].stages.push_back(ev);
    return;
  }
  stage_trace_.push_back(ev);
}

void Collector::enable_lanes(int devices) {
  lanes_.assign(static_cast<std::size_t>(devices < 0 ? 0 : devices), Lane{});
}

void Collector::grow_lanes(int devices) {
  if (lanes_.empty()) return;  // lanes off: stay off (single-simulator run)
  if (devices > static_cast<int>(lanes_.size())) {
    lanes_.resize(static_cast<std::size_t>(devices));
  }
}

void Collector::finalize_lanes() {
  if (lanes_.empty()) return;
  std::size_t extra_stages = 0;
  std::size_t extra_jobs = 0;
  for (const auto& lane : lanes_) {
    extra_stages += lane.stages.size();
    extra_jobs += lane.jobs.size();
  }
  stage_trace_.reserve(stage_trace_.size() + extra_stages);
  job_trace_.reserve(job_trace_.size() + extra_jobs);
  for (auto& lane : lanes_) {
    for (int p = 0; p < 2; ++p) {
      auto& src = lane.cls[p];
      auto& dst = classes_[p];
      dst.released += src.released;
      dst.accepted += src.accepted;
      dst.rejected += src.rejected;
      dst.completed += src.completed;
      dst.missed += src.missed;
      for (const double x : src.response_ms.samples()) dst.response_ms.add(x);
    }
    stage_trace_.insert(stage_trace_.end(), lane.stages.begin(),
                        lane.stages.end());
    job_trace_.insert(job_trace_.end(), lane.jobs.begin(), lane.jobs.end());
  }
  lanes_.clear();
  // Per-lane streams are time-sorted and appended in device order, so a
  // stable sort on time yields the canonical (when, gpu) timeline.
  std::stable_sort(stage_trace_.begin(), stage_trace_.end(),
                   [](const StageEvent& a, const StageEvent& b) {
                     return a.when < b.when;
                   });
  std::stable_sort(job_trace_.begin(), job_trace_.end(),
                   [](const JobEvent& a, const JobEvent& b) {
                     return a.finish < b.finish;
                   });
}

Collector::ClassCounts Collector::class_counts(Priority p) const {
  const auto& base = classes_[static_cast<std::size_t>(p)];
  ClassCounts c{base.released, base.accepted, base.rejected, base.completed,
                base.missed};
  for (const auto& lane : lanes_) {
    const auto& l = lane.cls[static_cast<std::size_t>(p)];
    c.released += l.released;
    c.accepted += l.accepted;
    c.rejected += l.rejected;
    c.completed += l.completed;
    c.missed += l.missed;
  }
  return c;
}

void Collector::set_gpu_count(int n) {
  routing_.assign(static_cast<std::size_t>(n < 0 ? 0 : n), RoutingCounters{});
}

void Collector::grow_gpu_count(int n) {
  if (n > gpu_count()) routing_.resize(static_cast<std::size_t>(n));
}

void Collector::on_route(int gpu) {
  ++routing_[static_cast<std::size_t>(gpu)].routed;
}

void Collector::on_home_admit(int gpu) {
  ++routing_[static_cast<std::size_t>(gpu)].home_admits;
}

void Collector::on_cross_migration(int from_gpu, int to_gpu) {
  ++routing_[static_cast<std::size_t>(from_gpu)].migrated_out;
  ++routing_[static_cast<std::size_t>(to_gpu)].migrated_in;
}

void Collector::on_drop(int gpu) {
  ++routing_[static_cast<std::size_t>(gpu)].dropped;
}

void Collector::on_infeasible(int gpu) {
  ++routing_[static_cast<std::size_t>(gpu)].infeasible;
}

void Collector::on_transfer(int to_gpu, double mb) {
  auto& r = routing_[static_cast<std::size_t>(to_gpu)];
  ++r.transfers_in;
  r.transferred_mb += mb;
}

void Collector::on_steal(int victim, int thief) {
  ++routing_[static_cast<std::size_t>(victim)].steals_out;
  ++routing_[static_cast<std::size_t>(thief)].steals_in;
}

void Collector::on_coalesce(int to_gpu, double mb) {
  auto& r = routing_[static_cast<std::size_t>(to_gpu)];
  ++r.coalesced;
  r.coalesced_mb += mb;
}

RoutingCounters Collector::fleet_routing() const {
  RoutingCounters total;
  for (const auto& r : routing_) total += r;
  return total;
}

std::uint64_t Collector::total_completed() const {
  return classes_[0].completed + classes_[1].completed;
}

double Collector::throughput_jps(Time horizon) const {
  const Time span = horizon - measure_start_;
  if (span <= 0) return 0.0;
  return static_cast<double>(total_completed()) / common::to_sec(span);
}

}  // namespace daris::metrics
