// Time-series sampler: fixed-cadence ring-buffered tracks of fleet and
// per-GPU gauges, driven by ONE pooled re-armed simulator event.
//
// Tracks are registered at setup time as (name, device, probe) triples; the
// probe is a read-only closure over const simulation state (scheduler
// utilisation, queue depths, fleet health...). At every cadence tick the
// sampler records the shared timestamp once and folds every probe into its
// track's pre-sized ring. Two invariants make observation safe:
//
//  - Zero steady-state allocation: rings and the timestamp axis are sized
//    up front from the horizon and cadence (`start` reserves; ticks only
//    write), and the single timer event's {this} capture rides the
//    simulator's inline-callback path — pinned in tests/test_sim_alloc.cpp.
//  - No perturbation: probes are const reads, the tick mutates only the
//    sampler's own storage, and re-arming draws tie-break sequence numbers
//    in program order exactly like any other periodic driver — so the
//    relative order of all *other* events is untouched and enabling the
//    sampler leaves scheduling decisions and scenario fingerprints
//    byte-identical (enforced by bench_fig_scenarios' telemetry-off
//    comparison and scripts/check_telemetry.py).
//
// The ring overwrites its oldest samples once the horizon estimate is
// outrun, so a sampler can also run open-ended at bounded memory.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time.h"
#include "sim/simulator.h"

namespace daris::metrics {

class TimeSeries {
 public:
  /// Reads one gauge; must be const over the simulation state.
  using Probe = std::function<double()>;

  TimeSeries() = default;
  TimeSeries(TimeSeries&&) = default;
  TimeSeries& operator=(TimeSeries&&) = default;
  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  /// Registers a track before start(). `device` groups the track onto a
  /// per-GPU lane in the Perfetto export (-1: fleet-level lane). Returns the
  /// track index.
  int add_track(std::string name, int device, Probe probe);

  int track_count() const { return static_cast<int>(tracks_.size()); }
  const std::string& track_name(int t) const {
    return tracks_[static_cast<std::size_t>(t)].name;
  }
  int track_device(int t) const {
    return tracks_[static_cast<std::size_t>(t)].device;
  }

  /// Arms the sampler on `sim`: one pooled event at t = now, re-armed every
  /// `period` until `horizon` (inclusive). Rings are sized for the full
  /// span; older samples are overwritten if the span is outrun.
  void start(sim::Simulator& sim, common::Duration period,
             common::Time horizon);

  /// Cancels the pending tick (idempotent; rings keep their samples).
  void stop();

  /// Takes one sample immediately (start() ticks call this; tests may too).
  void sample_now(common::Time now);

  common::Duration period() const { return period_; }

  /// Samples currently held (ring occupancy), oldest first.
  std::size_t size() const { return count_; }
  /// Timestamp of sample `i` in chronological order.
  common::Time stamp(std::size_t i) const {
    return stamps_[index(i)];
  }
  /// Track `t`'s value at sample `i` in chronological order.
  double value(int t, std::size_t i) const {
    return tracks_[static_cast<std::size_t>(t)].ring[index(i)];
  }

  /// Appends the series as a JSON object: {"period_us": ...,
  /// "tracks": [{"name", "device", "samples": [[ts_us, value], ...]}]}.
  void append_json(std::string* out) const;

 private:
  struct Track {
    std::string name;
    int device = -1;
    Probe probe;
    std::vector<double> ring;
  };

  std::size_t index(std::size_t i) const {
    return (head_ + i) % capacity_;
  }
  void tick();

  std::vector<Track> tracks_;
  std::vector<common::Time> stamps_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;   // ring start (oldest sample)
  std::size_t count_ = 0;  // samples held, <= capacity_
  common::Duration period_ = 0;
  common::Time horizon_ = 0;
  sim::Simulator* sim_ = nullptr;
  sim::EventHandle event_;
};

}  // namespace daris::metrics
