// Structured fleet event log: one typed, fixed-size record per routing /
// fault / lifecycle decision — admission, rejection, migration, weight
// transfer, fault, rehome, drain — stamped with the device id, the simulated
// time, and a cause code.
//
// The log is the queryable source of truth for the fleet's routing
// outcomes: `fold_routing()` reconstructs the per-GPU `RoutingCounters`
// from the records alone (a unit test pins the fold against the live
// counters), and the Perfetto export renders the records as instant events
// on the per-GPU lanes. Records are PODs appended into a pre-reserved
// vector, so steady-state logging performs no allocation (pinned in
// tests/test_sim_alloc.cpp) and — because nothing ever reads the log during
// the run — enabling it cannot perturb a single scheduling decision.
//
// Export formats: JSON Lines (`write_jsonl`, one object per record) for
// offline tooling, and the unified Perfetto trace via
// metrics::to_chrome_trace_json.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/time.h"
#include "metrics/collector.h"

namespace daris::metrics {

/// Record type. The set mirrors the fleet's observable decisions; kFault
/// covers fail-stop, straggler throttles, and scale-up (cause disambiguates).
enum class EventKind : std::uint8_t {
  kAdmit,     // job admitted (home GPU or single-GPU scheduler)
  kReject,    // job shed (cause: infeasible / backlog / peer rejection)
  kMigrate,   // job admitted on a peer after its routed GPU rejected it
  kTransfer,  // cold-model weight copy shipped to `gpu` (value = MB)
  kFault,     // device lifecycle change (fail / slow / scale-up)
  kRehome,    // task's home reservation moved from `gpu` to `peer`
  kDrain,     // device entered graceful scale-down
  kSteal,     // queued LP job claimed by `peer` off `gpu`'s ready queue
  kCoalesce,  // migration attached to an in-flight weight copy to `gpu`
              // (value = MB the coalesced transfer did NOT re-ship)
  kRetry,     // client resilience layer re-released (or abandoned) a shed
              // job (cause says which; value = attempt number)
  kHedge,     // hedged LP request lifecycle: launched on `peer` against the
              // primary copy on `gpu`, won, or was cancelled
  kBreaker,   // per-GPU circuit breaker transition (value = observed
              // miss+shed rate over the window that drove it)
};

/// Why the event happened; kinds use the subset that applies to them.
enum class EventCause : std::uint8_t {
  kNone,
  kHomeAdmit,   // kAdmit: admitted by the GPU the job was routed to
  kInfeasible,  // kReject: no device could ever host the job
  kBacklog,     // kReject: fleet-wide backlog guard fired
  kPeerReject,  // kReject: routed GPU and the offered peer both rejected
  kSpill,       // kMigrate: admitted by a peer after home rejection
  kColdModel,   // kTransfer: weights were cold on the migration target
  kFailStop,    // kFault: device died; value = in-flight jobs lost
  kStraggler,   // kFault: compute scale multiplied; value = factor
  kScaleUp,     // kFault: device joined the fleet mid-run
  kScaleDown,   // kDrain: graceful scale-down began
  kBacklogSteal,  // kSteal: victim's backlog guard tripped the scan
  kCoalesced,     // kCoalesce: duplicate copy attached to the in-flight one
  kDemandShift,   // kRehome: periodic demand-aware re-homing moved the task
  kRetarget,      // kTransfer/kReject: in-flight transfer's target became
                  // unplaceable; the job was re-migrated or dropped
  kBackoff,         // kRetry: shed job re-released after its backoff delay
  kBudgetExhausted, // kRetry: retry/hedge abandoned, token bucket empty
  kMaxAttempts,     // kRetry: retry abandoned, attempt cap reached
  kExpired,         // kRetry: retry abandoned, no deadline slack left
  kHedgeLaunch,     // kHedge: second copy admitted on `peer`
  kHedgeWin,        // kHedge: the hedge copy finished first
  kHedgeCancel,     // kHedge: losing copy revoked before it started
  kBreakerOpen,     // kBreaker: rolling miss+shed rate tripped the breaker
  kBreakerHalfOpen, // kBreaker: cooldown elapsed, probe traffic allowed
  kBreakerClose,    // kBreaker: probe window healthy, breaker closed
};

const char* event_kind_name(EventKind k);
const char* event_cause_name(EventCause c);

/// One fixed-size record. `gpu` is the primary device, `peer` the secondary
/// (migration/rehome target; -1 otherwise), `task` the logical task id (-1
/// for device-level events), `value` a kind-specific payload (transfer MB,
/// straggler factor, jobs lost).
struct FleetEvent {
  common::Time when = 0;
  EventKind kind = EventKind::kAdmit;
  EventCause cause = EventCause::kNone;
  std::int16_t gpu = -1;
  std::int16_t peer = -1;
  std::int32_t task = -1;
  double value = 0.0;
};

class EventLog {
 public:
  /// Pre-sizes the record storage; appends within the reservation are
  /// allocation-free.
  void reserve(std::size_t records) { events_.reserve(records); }

  void append(common::Time when, EventKind kind, EventCause cause, int gpu,
              int peer = -1, int task = -1, double value = 0.0) {
    FleetEvent ev;
    ev.when = when;
    ev.kind = kind;
    ev.cause = cause;
    ev.gpu = static_cast<std::int16_t>(gpu);
    ev.peer = static_cast<std::int16_t>(peer);
    ev.task = static_cast<std::int32_t>(task);
    ev.value = value;
    events_.push_back(ev);
  }

  const std::vector<FleetEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Reconstructs the per-GPU routing counters from the records alone.
  /// With no transfers still in flight at the end of a run this equals the
  /// live `Collector` counters field for field — the property that makes
  /// the log the source of truth rather than a second bookkeeping system.
  /// `routed` is derived as the sum of per-GPU outcomes (every routed job
  /// ends in exactly one admit/migrate/reject record).
  std::vector<RoutingCounters> fold_routing(int gpu_count) const;

  /// One JSON object per record (JSON Lines), in append order.
  void write_jsonl(std::ostream& os) const;

  /// Appends the records as one JSON array (same per-record fields as
  /// write_jsonl, deterministic %.17g number formatting).
  void append_json_array(std::string* out) const;

 private:
  std::vector<FleetEvent> events_;
};

}  // namespace daris::metrics
