// Run-time metrics: per-priority throughput, deadline-miss rate, response
// times, and optional per-stage execution/MRET traces (Fig. 9).
#pragma once

#include <cstdint>
#include <vector>

#include "common/priority.h"
#include "common/stats.h"
#include "common/time.h"

namespace daris::metrics {

using common::Duration;
using common::Priority;
using common::Time;

struct JobEvent {
  int task_id = 0;
  Priority priority = Priority::kHigh;
  Time release = 0;
  Time finish = 0;
  Duration relative_deadline = 0;
  bool accepted = true;
  bool missed = false;
  int context = -1;
};

struct StageEvent {
  int task_id = 0;
  std::size_t stage = 0;
  Time when = 0;
  double execution_us = 0.0;  // measured et_{i,j}
  double mret_us = 0.0;       // prediction in force when the stage started
};

/// Summary over one priority class.
struct ClassSummary {
  std::uint64_t released = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t missed = 0;

  common::Percentiles response_ms;

  /// Deadline-miss rate: misses over accepted jobs (paper Sec. VI),
  /// evaluated over jobs completing inside the measurement window.
  double dmr() const {
    return completed == 0
               ? 0.0
               : static_cast<double>(missed) / static_cast<double>(completed);
  }
  double rejection_rate() const {
    return released == 0
               ? 0.0
               : static_cast<double>(rejected) / static_cast<double>(released);
  }
};

class Collector {
 public:
  /// When true, stage events are stored (memory-heavy; off by default).
  void enable_stage_trace(bool on) { trace_stages_ = on; }

  /// When true, every finished job event is stored (for timeline export).
  void enable_job_trace(bool on) { trace_jobs_ = on; }

  /// Measurement window: jobs finishing before `start` are warm-up and only
  /// counted toward acceptance statistics.
  void set_measure_start(Time start) { measure_start_ = start; }

  void on_release(const JobEvent& ev);
  void on_reject(const JobEvent& ev);
  void on_finish(const JobEvent& ev);
  void on_stage(const StageEvent& ev);

  const ClassSummary& summary(Priority p) const {
    return classes_[static_cast<std::size_t>(p)];
  }
  const std::vector<StageEvent>& stage_trace() const { return stage_trace_; }
  const std::vector<JobEvent>& job_trace() const { return job_trace_; }

  std::uint64_t total_completed() const;

  /// Aggregate throughput in jobs per second over [measure_start, horizon].
  double throughput_jps(Time horizon) const;

 private:
  ClassSummary classes_[2];
  std::vector<StageEvent> stage_trace_;
  std::vector<JobEvent> job_trace_;
  bool trace_stages_ = false;
  bool trace_jobs_ = false;
  Time measure_start_ = 0;
};

}  // namespace daris::metrics
