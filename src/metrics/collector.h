// Run-time metrics: per-priority throughput, deadline-miss rate, response
// times, and optional per-stage execution/MRET traces (Fig. 9).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/priority.h"
#include "common/stats.h"
#include "common/time.h"

namespace daris::metrics {

// Defined in metrics/eventlog.h; forward-declared here so the collector can
// own the log without an include cycle (eventlog.h needs RoutingCounters).
enum class EventKind : std::uint8_t;
enum class EventCause : std::uint8_t;
class EventLog;

using common::Duration;
using common::Priority;
using common::Time;

struct JobEvent {
  int task_id = 0;
  Priority priority = Priority::kHigh;
  Time release = 0;
  Time finish = 0;
  Duration relative_deadline = 0;
  bool accepted = true;
  bool missed = false;
  int context = -1;
  int gpu = -1;  // device index in a cluster run (-1: single GPU)
};

struct StageEvent {
  int task_id = 0;
  std::size_t stage = 0;
  Time when = 0;
  double execution_us = 0.0;  // measured et_{i,j}
  double mret_us = 0.0;       // prediction in force when the stage started
  int context = -1;           // context the stage executed on
  int gpu = -1;               // device index in a cluster run (-1: single GPU)
};

/// Summary over one priority class.
struct ClassSummary {
  std::uint64_t released = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t missed = 0;

  common::Percentiles response_ms;

  /// Deadline-miss rate: misses over accepted jobs (paper Sec. VI),
  /// evaluated over jobs completing inside the measurement window.
  double dmr() const {
    return completed == 0
               ? 0.0
               : static_cast<double>(missed) / static_cast<double>(completed);
  }
  double rejection_rate() const {
    return released == 0
               ? 0.0
               : static_cast<double>(rejected) / static_cast<double>(released);
  }
};

/// Cluster-level routing outcomes for one GPU (also summed fleet-wide).
/// Filled by `cluster::Router`; zero in single-GPU runs.
struct RoutingCounters {
  std::uint64_t routed = 0;        // arrivals first offered to this GPU
  std::uint64_t home_admits = 0;   // admitted by the GPU they were routed to
  std::uint64_t migrated_in = 0;   // admitted here after a peer rejected them
  std::uint64_t migrated_out = 0;  // rejected here, admitted on a peer
  std::uint64_t dropped = 0;       // rejected here and by the offered peer
  std::uint64_t infeasible = 0;    // shed by the fleet admission controller
                                   // (charged to the task's home GPU)
  std::uint64_t transfers_in = 0;  // cross-GPU weight transfers landing here
  double transferred_mb = 0.0;     // MB shipped into this GPU by migrations
  std::uint64_t steals_in = 0;     // queued LP jobs claimed by this GPU
  std::uint64_t steals_out = 0;    // queued LP jobs claimed off this GPU
  std::uint64_t coalesced = 0;     // migrations here that attached to an
                                   // in-flight weight copy
  double coalesced_mb = 0.0;       // MB those attachments did NOT re-ship

  RoutingCounters& operator+=(const RoutingCounters& o) {
    routed += o.routed;
    home_admits += o.home_admits;
    migrated_in += o.migrated_in;
    migrated_out += o.migrated_out;
    dropped += o.dropped;
    infeasible += o.infeasible;
    transfers_in += o.transfers_in;
    transferred_mb += o.transferred_mb;
    steals_in += o.steals_in;
    steals_out += o.steals_out;
    coalesced += o.coalesced;
    coalesced_mb += o.coalesced_mb;
    return *this;
  }
};

class Collector {
 public:
  Collector();
  ~Collector();
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// When true, stage events are stored (memory-heavy; off by default).
  void enable_stage_trace(bool on) { trace_stages_ = on; }

  /// When true, every finished job event is stored (for timeline export).
  void enable_job_trace(bool on) { trace_jobs_ = on; }

  /// Measurement window: jobs finishing before `start` are warm-up and only
  /// counted toward acceptance statistics.
  void set_measure_start(Time start) { measure_start_ = start; }

  void on_release(const JobEvent& ev);
  void on_reject(const JobEvent& ev);
  void on_finish(const JobEvent& ev);
  void on_stage(const StageEvent& ev);

  // --- sharded-run lanes (sim::ShardedSimulator) -------------------------
  //
  // In a sharded fleet run, on_finish/on_stage fire from device-shard events
  // on pool worker threads; every other hook (release/reject from the
  // router, routing counters, the event log) is control-phase-only and keeps
  // writing the shared state directly. Lanes give each device a private
  // append target so the worker-side hooks never share cache lines, let
  // alone race: a hook with ev.gpu >= 0 writes lane[ev.gpu], and exactly one
  // thread executes a given device's events in any window (control-phase
  // writers run while the pool is parked at the barrier).
  //
  // finalize_lanes() folds the lanes back into the flat summaries/traces
  // once the run ends: counters sum, response samples concatenate in lane
  // order (Percentiles queries are sort-insensitive), and stage/job traces
  // merge into (when, gpu) order — per-lane streams are already
  // time-sorted, so a stable sort restores one canonical timeline whose
  // fold (metrics/trace_report.h tracks per-task consecutive stages, and a
  // task occupies one device at a time) matches the single-threaded trace.

  /// Switches on per-device lanes for `devices` devices. Call before the
  /// run; events with ev.gpu in [0, devices) then land in lanes.
  void enable_lanes(int devices);
  /// Widens the lane array mid-run (live GPU add); control phase only.
  void grow_lanes(int devices);
  bool lanes_enabled() const { return !lanes_.empty(); }
  /// Folds lanes into the flat summaries and traces; idempotent. Until this
  /// runs, summary()/stage_trace()/total_completed() exclude lane contents.
  void finalize_lanes();

  /// Counter-only class summary including un-finalized lane contents. Safe
  /// and cheap to call mid-run from the control phase (telemetry probes);
  /// identical to summary()'s counters when lanes are off or finalized.
  struct ClassCounts {
    std::uint64_t released = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t missed = 0;
  };
  ClassCounts class_counts(Priority p) const;

  /// Sizes the per-GPU routing counters (cluster runs only).
  void set_gpu_count(int n);
  /// Widens the per-GPU routing counters without wiping accumulated state
  /// (mid-run autoscaling: cluster::Fleet::add_gpu_now). Never shrinks.
  void grow_gpu_count(int n);
  void on_route(int gpu);
  void on_home_admit(int gpu);
  void on_cross_migration(int from_gpu, int to_gpu);
  void on_drop(int gpu);
  /// Fleet admission controller shed a job no device could host.
  void on_infeasible(int gpu);
  /// A migration shipped `mb` of model weights onto `to_gpu`.
  void on_transfer(int to_gpu, double mb);
  /// A queued LP job was claimed off `victim` by `thief` (work stealing).
  void on_steal(int victim, int thief);
  /// A migration to `to_gpu` attached to an in-flight weight copy instead of
  /// re-shipping `mb`.
  void on_coalesce(int to_gpu, double mb);

  // --- structured event log (metrics/eventlog.h) -------------------------
  //
  // Typed, timestamped records of the fleet's routing and lifecycle
  // decisions, appended by the router and the fleet next to the counter
  // hooks above. Disabled by default; every log_* call is a no-op until
  // enable_event_log reserves the storage, so the always-on counters stay
  // the only steady-state bookkeeping and telemetry-off runs do no extra
  // work. EventLog::fold_routing reproduces the RoutingCounters from the
  // records alone (tested), making the log the queryable source of truth.

  /// Creates (or resets) the log with room for `capacity` records.
  void enable_event_log(std::size_t capacity);
  EventLog* event_log() { return event_log_.get(); }
  const EventLog* event_log() const { return event_log_.get(); }

  void log_admit(Time when, int gpu, int task);
  void log_reject(Time when, int gpu, int task, EventCause cause);
  void log_migrate(Time when, int from_gpu, int to_gpu, int task);
  void log_transfer(Time when, int to_gpu, int task, double mb);
  void log_fault(Time when, int gpu, EventCause cause, double value);
  void log_rehome(Time when, int from_gpu, int to_gpu, int task);
  /// Rehome with an explicit cause (kDemandShift for the rebalancer's
  /// periodic moves; the overload above logs fault-driven rehomes as kNone).
  void log_rehome(Time when, int from_gpu, int to_gpu, int task,
                  EventCause cause);
  void log_drain(Time when, int gpu);
  void log_steal(Time when, int victim, int thief, int task);
  void log_coalesce(Time when, int to_gpu, int task, double mb);
  /// Resilience-layer records: a retry released or abandoned (value =
  /// attempt number), a hedge launched/won/cancelled (`gpu` = primary,
  /// `peer` = hedge device), a breaker transition (value = the window's
  /// miss+shed rate).
  void log_retry(Time when, int gpu, int task, EventCause cause, int attempt);
  void log_hedge(Time when, int gpu, int peer, int task, EventCause cause);
  void log_breaker(Time when, int gpu, EventCause cause, double rate);

  int gpu_count() const { return static_cast<int>(routing_.size()); }
  const RoutingCounters& routing(int gpu) const {
    return routing_[static_cast<std::size_t>(gpu)];
  }
  /// Sum of the per-GPU routing counters.
  RoutingCounters fleet_routing() const;

  const ClassSummary& summary(Priority p) const {
    return classes_[static_cast<std::size_t>(p)];
  }
  const std::vector<StageEvent>& stage_trace() const { return stage_trace_; }
  const std::vector<JobEvent>& job_trace() const { return job_trace_; }

  std::uint64_t total_completed() const;

  /// Aggregate throughput in jobs per second over [measure_start, horizon].
  double throughput_jps(Time horizon) const;

 private:
  struct Lane {
    ClassSummary cls[2];
    std::vector<StageEvent> stages;
    std::vector<JobEvent> jobs;
  };

  /// Shared tail of on_finish: counts into `cls`, traces into `jobs`.
  void record_finish(ClassSummary* cls, std::vector<JobEvent>& jobs,
                     const JobEvent& ev);

  ClassSummary classes_[2];
  std::vector<RoutingCounters> routing_;
  std::vector<StageEvent> stage_trace_;
  std::vector<JobEvent> job_trace_;
  std::vector<Lane> lanes_;
  bool trace_stages_ = false;
  bool trace_jobs_ = false;
  Time measure_start_ = 0;
  std::unique_ptr<EventLog> event_log_;
};

}  // namespace daris::metrics
