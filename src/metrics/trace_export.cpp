#include "metrics/trace_export.h"

#include <cstdio>
#include <sstream>

namespace daris::metrics {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (u < 0x20) {  // control characters are invalid raw in JSON
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}
}  // namespace

void TraceRecorder::add_job_events(const std::vector<JobEvent>& jobs) {
  for (const auto& j : jobs) {
    TraceSpan span;
    span.name = "job task" + std::to_string(j.task_id);
    span.group = j.context;
    span.lane = j.task_id;
    span.begin = j.release;
    span.duration = j.finish - j.release;
    span.priority = j.priority;
    span.missed = j.missed;
    add(std::move(span));
  }
}

void TraceRecorder::add_stage_events(const std::vector<StageEvent>& stages) {
  for (const auto& s : stages) {
    TraceSpan span;
    span.name = "task" + std::to_string(s.task_id) + ".stage" +
                std::to_string(s.stage);
    span.group = -1;
    span.lane = s.task_id;
    const auto dur =
        static_cast<Duration>(s.execution_us * common::kMicrosecond);
    span.begin = s.when - dur;
    span.duration = dur;
    add(std::move(span));
  }
}

void TraceRecorder::add_stage_events_by_gpu(
    const std::vector<StageEvent>& stages) {
  for (const auto& s : stages) {
    TraceSpan span;
    span.name = "task" + std::to_string(s.task_id) + ".stage" +
                std::to_string(s.stage);
    span.group = s.gpu;
    span.lane = s.context;
    const auto dur =
        static_cast<Duration>(s.execution_us * common::kMicrosecond);
    span.begin = s.when - dur;
    span.duration = dur;
    add(std::move(span));
  }
}

std::string to_chrome_trace_json(const std::vector<TraceSpan>& spans) {
  return to_chrome_trace_json(spans, nullptr, nullptr);
}

std::string to_chrome_trace_json(const std::vector<TraceSpan>& spans,
                                 const TimeSeries* series,
                                 const EventLog* log) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": \"" << escape(s.name) << "\","
        << " \"ph\": \"X\","
        << " \"pid\": " << s.group << ","
        << " \"tid\": " << s.lane << ","
        << " \"ts\": " << common::to_us(s.begin) << ","
        << " \"dur\": " << common::to_us(s.duration) << ","
        << " \"args\": {\"priority\": \""
        << common::priority_name(s.priority) << "\", \"missed\": "
        << (s.missed ? "true" : "false") << "}}";
  }
  if (series != nullptr) {
    // One counter track per sampler track, on the device's pid lane. The
    // counter name doubles as the series key Perfetto plots.
    for (int t = 0; t < series->track_count(); ++t) {
      const std::string name = escape(series->track_name(t));
      for (std::size_t i = 0; i < series->size(); ++i) {
        if (!first) out << ",";
        first = false;
        out << "\n  {\"name\": \"" << name << "\","
            << " \"ph\": \"C\","
            << " \"pid\": " << series->track_device(t) << ","
            << " \"ts\": " << common::to_us(series->stamp(i)) << ","
            << " \"args\": {\"value\": " << series->value(t, i) << "}}";
      }
    }
  }
  if (log != nullptr) {
    for (const FleetEvent& ev : log->events()) {
      if (!first) out << ",";
      first = false;
      // "i" instants: scope "p" draws a device-wide marker line (faults,
      // drains); routing-level records mark just their own lane row.
      const bool device_wide = ev.kind == EventKind::kFault ||
                               ev.kind == EventKind::kDrain ||
                               ev.kind == EventKind::kRehome;
      out << "\n  {\"name\": \"" << event_kind_name(ev.kind) << ":"
          << event_cause_name(ev.cause) << "\","
          << " \"ph\": \"i\","
          << " \"s\": \"" << (device_wide ? 'p' : 't') << "\","
          << " \"pid\": " << ev.gpu << ","
          << " \"tid\": " << ev.task << ","
          << " \"ts\": " << common::to_us(ev.when) << ","
          << " \"args\": {\"peer\": " << ev.peer << ", \"value\": "
          << ev.value << "}}";
    }
  }
  out << "\n]\n";
  return out.str();
}

}  // namespace daris::metrics
