#include "metrics/trace_export.h"

#include <sstream>

namespace daris::metrics {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

void TraceRecorder::add_job_events(const std::vector<JobEvent>& jobs) {
  for (const auto& j : jobs) {
    TraceSpan span;
    span.name = "job task" + std::to_string(j.task_id);
    span.group = j.context;
    span.lane = j.task_id;
    span.begin = j.release;
    span.duration = j.finish - j.release;
    span.priority = j.priority;
    span.missed = j.missed;
    add(std::move(span));
  }
}

void TraceRecorder::add_stage_events(const std::vector<StageEvent>& stages) {
  for (const auto& s : stages) {
    TraceSpan span;
    span.name = "task" + std::to_string(s.task_id) + ".stage" +
                std::to_string(s.stage);
    span.group = -1;
    span.lane = s.task_id;
    const auto dur =
        static_cast<Duration>(s.execution_us * common::kMicrosecond);
    span.begin = s.when - dur;
    span.duration = dur;
    add(std::move(span));
  }
}

std::string to_chrome_trace_json(const std::vector<TraceSpan>& spans) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": \"" << escape(s.name) << "\","
        << " \"ph\": \"X\","
        << " \"pid\": " << s.group << ","
        << " \"tid\": " << s.lane << ","
        << " \"ts\": " << common::to_us(s.begin) << ","
        << " \"dur\": " << common::to_us(s.duration) << ","
        << " \"args\": {\"priority\": \""
        << common::priority_name(s.priority) << "\", \"missed\": "
        << (s.missed ? "true" : "false") << "}}";
  }
  out << "\n]\n";
  return out.str();
}

}  // namespace daris::metrics
