#include "metrics/profile.h"

#include <cstdio>

namespace daris::metrics {

RunProfile& RunProfile::operator+=(const RunProfile& o) {
  events_executed += o.events_executed;
  callbacks_inline += o.callbacks_inline;
  callbacks_heap += o.callbacks_heap;
  if (o.heap_high_water > heap_high_water) {
    heap_high_water = o.heap_high_water;
  }
  if (o.pool_slots > pool_slots) pool_slots = o.pool_slots;
  solver_flushes += o.solver_flushes;
  solver_contexts_solved += o.solver_contexts_solved;
  solver_contexts_reused += o.solver_contexts_reused;
  wall_ms_offline += o.wall_ms_offline;
  wall_ms_run += o.wall_ms_run;
  wall_ms_total += o.wall_ms_total;
  return *this;
}

std::string RunProfile::to_string() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "   events executed      %llu\n"
                "   event-heap high-water %llu (pool slots %llu)\n"
                "   callbacks inline/heap %llu / %llu (%.1f%% inline)\n",
                static_cast<unsigned long long>(events_executed),
                static_cast<unsigned long long>(heap_high_water),
                static_cast<unsigned long long>(pool_slots),
                static_cast<unsigned long long>(callbacks_inline),
                static_cast<unsigned long long>(callbacks_heap),
                100.0 * inline_rate());
  out += buf;
  std::snprintf(buf, sizeof buf,
                "   solver flushes       %llu (ctx solved %llu, reused %llu,"
                " %.1f%% cache hits)\n"
                "   wall clock           offline %.1f ms, run %.1f ms,"
                " total %.1f ms\n",
                static_cast<unsigned long long>(solver_flushes),
                static_cast<unsigned long long>(solver_contexts_solved),
                static_cast<unsigned long long>(solver_contexts_reused),
                100.0 * dirty_hit_rate(), wall_ms_offline, wall_ms_run,
                wall_ms_total);
  out += buf;
  return out;
}

void RunProfile::append_json(std::string* out) const {
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "{\"events_executed\": %llu, \"heap_high_water\": %llu, "
      "\"pool_slots\": %llu, \"callbacks_inline\": %llu, "
      "\"callbacks_heap\": %llu, \"solver_flushes\": %llu, "
      "\"solver_contexts_solved\": %llu, \"solver_contexts_reused\": %llu, "
      "\"dirty_hit_rate\": %.17g, \"wall_ms_offline\": %.3f, "
      "\"wall_ms_run\": %.3f, \"wall_ms_total\": %.3f}",
      static_cast<unsigned long long>(events_executed),
      static_cast<unsigned long long>(heap_high_water),
      static_cast<unsigned long long>(pool_slots),
      static_cast<unsigned long long>(callbacks_inline),
      static_cast<unsigned long long>(callbacks_heap),
      static_cast<unsigned long long>(solver_flushes),
      static_cast<unsigned long long>(solver_contexts_solved),
      static_cast<unsigned long long>(solver_contexts_reused),
      dirty_hit_rate(), wall_ms_offline, wall_ms_run, wall_ms_total);
  *out += buf;
}

}  // namespace daris::metrics
