#include "metrics/eventlog.h"

#include <cstdio>
#include <ostream>

namespace daris::metrics {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kAdmit:
      return "admit";
    case EventKind::kReject:
      return "reject";
    case EventKind::kMigrate:
      return "migrate";
    case EventKind::kTransfer:
      return "transfer";
    case EventKind::kFault:
      return "fault";
    case EventKind::kRehome:
      return "rehome";
    case EventKind::kDrain:
      return "drain";
    case EventKind::kSteal:
      return "steal";
    case EventKind::kCoalesce:
      return "coalesce";
    case EventKind::kRetry:
      return "retry";
    case EventKind::kHedge:
      return "hedge";
    case EventKind::kBreaker:
      return "breaker";
  }
  return "?";
}

const char* event_cause_name(EventCause c) {
  switch (c) {
    case EventCause::kNone:
      return "none";
    case EventCause::kHomeAdmit:
      return "home-admit";
    case EventCause::kInfeasible:
      return "infeasible";
    case EventCause::kBacklog:
      return "backlog";
    case EventCause::kPeerReject:
      return "peer-reject";
    case EventCause::kSpill:
      return "spill";
    case EventCause::kColdModel:
      return "cold-model";
    case EventCause::kFailStop:
      return "fail-stop";
    case EventCause::kStraggler:
      return "straggler";
    case EventCause::kScaleUp:
      return "scale-up";
    case EventCause::kScaleDown:
      return "scale-down";
    case EventCause::kBacklogSteal:
      return "backlog-steal";
    case EventCause::kCoalesced:
      return "coalesced";
    case EventCause::kDemandShift:
      return "demand-shift";
    case EventCause::kRetarget:
      return "retarget";
    case EventCause::kBackoff:
      return "backoff";
    case EventCause::kBudgetExhausted:
      return "budget-exhausted";
    case EventCause::kMaxAttempts:
      return "max-attempts";
    case EventCause::kExpired:
      return "expired";
    case EventCause::kHedgeLaunch:
      return "hedge-launch";
    case EventCause::kHedgeWin:
      return "hedge-win";
    case EventCause::kHedgeCancel:
      return "hedge-cancel";
    case EventCause::kBreakerOpen:
      return "breaker-open";
    case EventCause::kBreakerHalfOpen:
      return "breaker-half-open";
    case EventCause::kBreakerClose:
      return "breaker-close";
  }
  return "?";
}

std::vector<RoutingCounters> EventLog::fold_routing(int gpu_count) const {
  std::vector<RoutingCounters> out(
      static_cast<std::size_t>(gpu_count < 0 ? 0 : gpu_count));
  auto at = [&out](int g) -> RoutingCounters* {
    if (g < 0 || static_cast<std::size_t>(g) >= out.size()) return nullptr;
    return &out[static_cast<std::size_t>(g)];
  };
  for (const FleetEvent& ev : events_) {
    switch (ev.kind) {
      case EventKind::kAdmit:
        if (auto* c = at(ev.gpu)) {
          ++c->routed;
          ++c->home_admits;
        }
        break;
      case EventKind::kReject:
        if (auto* c = at(ev.gpu)) {
          ++c->routed;
          // Mirrors the live counters exactly: infeasible sheds are counted
          // in their own column, guard/peer rejections in `dropped`.
          if (ev.cause == EventCause::kInfeasible) {
            ++c->infeasible;
          } else {
            ++c->dropped;
          }
        }
        break;
      case EventKind::kMigrate:
        // Routed to `gpu`, admitted on `peer`.
        if (auto* c = at(ev.gpu)) {
          ++c->routed;
          ++c->migrated_out;
        }
        if (auto* c = at(ev.peer)) ++c->migrated_in;
        break;
      case EventKind::kTransfer:
        if (auto* c = at(ev.gpu)) {
          ++c->transfers_in;
          c->transferred_mb += ev.value;
        }
        break;
      case EventKind::kSteal:
        // Claimed off `gpu` (the victim) by `peer` (the thief).
        if (auto* c = at(ev.gpu)) ++c->steals_out;
        if (auto* c = at(ev.peer)) ++c->steals_in;
        break;
      case EventKind::kCoalesce:
        // A duplicate copy to `gpu` attached to the in-flight one; value is
        // the MB it did not re-ship.
        if (auto* c = at(ev.gpu)) {
          ++c->coalesced;
          c->coalesced_mb += ev.value;
        }
        break;
      case EventKind::kFault:
      case EventKind::kRehome:
      case EventKind::kDrain:
      case EventKind::kRetry:
      case EventKind::kHedge:
      case EventKind::kBreaker:
        // Lifecycle and resilience records carry no routing counts: a retry
        // or hedge that was actually released shows up as its own
        // admit/reject/migrate record.
        break;
    }
  }
  return out;
}

void EventLog::append_json_array(std::string* out) const {
  *out += "[";
  char buf[192];
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FleetEvent& ev = events_[i];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"ts_us\": %.17g, \"kind\": \"%s\", \"cause\": "
                  "\"%s\", \"gpu\": %d, \"peer\": %d, \"task\": %d, "
                  "\"value\": %.17g}",
                  i == 0 ? "" : ",", common::to_us(ev.when),
                  event_kind_name(ev.kind), event_cause_name(ev.cause),
                  static_cast<int>(ev.gpu), static_cast<int>(ev.peer),
                  static_cast<int>(ev.task), ev.value);
    *out += buf;
  }
  *out += events_.empty() ? "]" : "\n  ]";
}

void EventLog::write_jsonl(std::ostream& os) const {
  for (const FleetEvent& ev : events_) {
    os << "{\"ts_us\": " << common::to_us(ev.when) << ", \"kind\": \""
       << event_kind_name(ev.kind) << "\", \"cause\": \""
       << event_cause_name(ev.cause) << "\", \"gpu\": " << ev.gpu
       << ", \"peer\": " << ev.peer << ", \"task\": " << ev.task
       << ", \"value\": " << ev.value << "}\n";
  }
}

}  // namespace daris::metrics
