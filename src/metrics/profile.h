// Run self-profiler: counters describing how the *simulator* spent a run —
// events dispatched, event-heap high-water mark, callbacks stored inline vs
// spilled to the heap, fluid-solver flushes and the dirty-context hit rate,
// and host wall-clock per phase. Filled by the experiment runners from
// sim::Simulator::stats() and gpusim::Gpu::solver_stats(); printed by the
// figure/scenario benches under --profile and embedded in the minibench
// JSON context. Plain counters only, so this header depends on nothing
// above common/.
#pragma once

#include <cstdint>
#include <string>

namespace daris::metrics {

struct RunProfile {
  // Event engine (sim::Simulator::stats()).
  std::uint64_t events_executed = 0;
  std::uint64_t callbacks_inline = 0;  // stored in the pooled node
  std::uint64_t callbacks_heap = 0;    // captures > 48B: spilled
  std::uint64_t heap_high_water = 0;   // max concurrently-pending events
  std::uint64_t pool_slots = 0;        // event-node slots ever handed out

  // Fluid rate solver (gpusim::Gpu::solver_stats(), summed over devices).
  std::uint64_t solver_flushes = 0;          // flush_rates() invocations
  std::uint64_t solver_contexts_solved = 0;  // dirty: water-fill recomputed
  std::uint64_t solver_contexts_reused = 0;  // clean: cached shares reused

  // Host wall-clock, per phase.
  double wall_ms_offline = 0.0;  // model compile + AFET profiling + Alg. 1
  double wall_ms_run = 0.0;      // the simulated horizon
  double wall_ms_total = 0.0;

  /// Fraction of per-flush context visits served from the cached
  /// water-fill (the PR 5 incremental-solver payoff).
  double dirty_hit_rate() const {
    const std::uint64_t visits =
        solver_contexts_solved + solver_contexts_reused;
    return visits == 0 ? 0.0
                       : static_cast<double>(solver_contexts_reused) /
                             static_cast<double>(visits);
  }
  /// Fraction of scheduled callbacks that stayed inline (no allocation).
  double inline_rate() const {
    const std::uint64_t total = callbacks_inline + callbacks_heap;
    return total == 0 ? 0.0
                      : static_cast<double>(callbacks_inline) /
                            static_cast<double>(total);
  }

  RunProfile& operator+=(const RunProfile& o);

  /// Human-readable multi-line block (the --profile output).
  std::string to_string() const;

  /// Appends the profile as a JSON object. Wall-clock fields are host
  /// timing — excluded by callers that need deterministic digests.
  void append_json(std::string* out) const;
};

}  // namespace daris::metrics
