#include "metrics/timeseries.h"

#include <cstdio>
#include <utility>

namespace daris::metrics {

int TimeSeries::add_track(std::string name, int device, Probe probe) {
  Track t;
  t.name = std::move(name);
  t.device = device;
  t.probe = std::move(probe);
  tracks_.push_back(std::move(t));
  return static_cast<int>(tracks_.size()) - 1;
}

void TimeSeries::start(sim::Simulator& sim, common::Duration period,
                       common::Time horizon) {
  stop();
  sim_ = &sim;
  period_ = period < 1 ? 1 : period;
  horizon_ = horizon;
  // One slot per cadence tick over [now, horizon], inclusive on both ends,
  // plus slack for the fencepost. Sized once here; ticks only write.
  const common::Time span =
      horizon > sim.now() ? horizon - sim.now() : common::Time{0};
  capacity_ = static_cast<std::size_t>(span / period_) + 2;
  head_ = 0;
  count_ = 0;
  stamps_.assign(capacity_, 0);
  for (Track& t : tracks_) t.ring.assign(capacity_, 0.0);
  // The whole steady state is this one event re-arming itself: an 8-byte
  // {this} capture on the simulator's inline path, exactly the periodic-
  // driver pattern.
  event_ = sim.schedule_at(sim.now(), [this] { tick(); });
}

void TimeSeries::stop() {
  if (sim_ != nullptr) sim_->cancel(event_);
  event_ = sim::EventHandle{};
}

void TimeSeries::tick() {
  sample_now(sim_->now());
  const common::Time next = sim_->now() + period_;
  if (next <= horizon_) {
    sim_->reschedule(event_, next);
  } else {
    event_ = sim::EventHandle{};
  }
}

void TimeSeries::sample_now(common::Time now) {
  if (capacity_ == 0) {  // un-started use (tests): size a small ring lazily
    capacity_ = 64;
    stamps_.assign(capacity_, 0);
    for (Track& t : tracks_) t.ring.assign(capacity_, 0.0);
  }
  std::size_t slot = 0;
  if (count_ < capacity_) {
    slot = (head_ + count_) % capacity_;
    ++count_;
  } else {  // ring full: overwrite the oldest sample
    slot = head_;
    head_ = (head_ + 1) % capacity_;
  }
  stamps_[slot] = now;
  for (Track& t : tracks_) t.ring[slot] = t.probe();
}

void TimeSeries::append_json(std::string* out) const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "{\"period_us\": %.17g, \"tracks\": [",
                common::to_us(period_));
  *out += buf;
  for (int t = 0; t < track_count(); ++t) {
    if (t > 0) *out += ", ";
    *out += "\n    {\"name\": \"";
    *out += track_name(t);  // track names are code-chosen identifiers
    std::snprintf(buf, sizeof buf, "\", \"device\": %d, \"samples\": [",
                  track_device(t));
    *out += buf;
    for (std::size_t i = 0; i < size(); ++i) {
      std::snprintf(buf, sizeof buf, "%s[%.17g, %.17g]", i == 0 ? "" : ", ",
                    common::to_us(stamp(i)), value(t, i));
      *out += buf;
    }
    *out += "]}";
  }
  *out += "\n  ]}";
}

}  // namespace daris::metrics
