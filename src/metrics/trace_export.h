// Chrome-trace (about://tracing / Perfetto) export of scheduler activity.
//
// Produces the JSON array format: one complete event ("ph":"X") per job and
// per stage execution, grouped by context (pid) and task (tid), so a run
// can be inspected visually — which queue starved, where migrations landed,
// how staging interleaves HP and LP stages.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "metrics/collector.h"
#include "metrics/eventlog.h"
#include "metrics/timeseries.h"

namespace daris::metrics {

struct TraceSpan {
  std::string name;      // e.g. "task3.stage1" or "job task3"
  int group = 0;         // pid lane (context id, or -1 for job lanes)
  int lane = 0;          // tid lane (task id)
  Time begin = 0;
  Duration duration = 0;
  Priority priority = Priority::kHigh;
  bool missed = false;
};

/// Collects spans during a run; the scheduler-facing side is just a vector.
class TraceRecorder {
 public:
  void add(TraceSpan span) { spans_.push_back(std::move(span)); }
  const std::vector<TraceSpan>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }
  std::size_t size() const { return spans_.size(); }

  /// Builds job spans from finished-job events (release -> finish).
  void add_job_events(const std::vector<JobEvent>& jobs);

  /// Builds stage spans from a stage trace (needs task -> context mapping
  /// only for lane grouping; pass -1 groups everything together).
  void add_stage_events(const std::vector<StageEvent>& stages);

  /// Cluster variant: groups stage spans by the executing *device* (pid =
  /// GPU id, tid = context id), so spans share lanes with the per-GPU
  /// counter tracks and instant events of the unified export below.
  void add_stage_events_by_gpu(const std::vector<StageEvent>& stages);

 private:
  std::vector<TraceSpan> spans_;
};

/// Serialises spans to the Chrome trace-event JSON array format.
/// Timestamps are microseconds as the format requires.
std::string to_chrome_trace_json(const std::vector<TraceSpan>& spans);

/// Unified export: complete events ("ph":"X") from `spans`, counter tracks
/// ("ph":"C") from the sampler, and instant events ("ph":"i") from the
/// event log, on shared per-GPU lanes (pid = device id; -1 = fleet lane).
/// One trace file then shows stages, utilisation curves, and fault markers
/// together in Perfetto. Null `series`/`log` sections are omitted; with
/// both null the output is byte-identical to the single-argument overload.
std::string to_chrome_trace_json(const std::vector<TraceSpan>& spans,
                                 const TimeSeries* series,
                                 const EventLog* log);

}  // namespace daris::metrics
