// Multi-GPU fleet: N simulated GPUs, each running its own DARIS scheduler,
// on one shared discrete-event simulator.
//
// Every task is registered on every GPU (the router can place any job
// anywhere), but the static HP reservation of Eq. 11 (U^{h,t}_k) is charged
// only on the task's *home* GPU (Task::resident); otherwise registering the
// fleet-wide task list on each device would reserve N times the real HP
// demand and starve LP admission everywhere.
//
// Model weights are a per-device resource: each GPU pins ("keeps hot") the
// models of the tasks homed on it, up to its memory capacity. A job may
// still run where its model is cold, but the reactive migration of a
// rejected job to such a device ships the model's footprint first
// (Router charges `weight_mb * transfer_us_per_mb` of delay); a successful
// transfer warms the model on the target when capacity allows, so repeat
// migrations of a hot model are free. See docs/CLUSTER.md.
//
// Fleets may be heterogeneous: each device carries a GpuNodeSpec (compute
// scale + memory capacity). Placement comparisons between devices go
// through `placement_score()` (load normalised by compute scale) so a
// half-size GPU at 40% admitted utilisation ranks busier than a flagship at
// 50%.
//
// Per-GPU seeds, schedulers, and MRET estimators are independent: each
// device accumulates its own execution-time history, exactly as real MPS
// daemons would.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "daris/scheduler.h"
#include "gpusim/gpu.h"
#include "metrics/collector.h"
#include "sim/simulator.h"

namespace daris::cluster {

/// One device of a (possibly heterogeneous) fleet.
struct GpuNodeSpec {
  /// Architectural template; compute_scale is applied on top of it.
  gpusim::GpuSpec base = gpusim::GpuSpec::rtx2080ti();

  /// Relative throughput versus the base spec: scales the SM count and the
  /// memory bandwidth together (0.5 = half-size inference card, 2.0 =
  /// flagship). Latency constants (launch/sync overhead) are host-side and
  /// stay as the base spec sets them.
  double compute_scale = 1.0;

  /// Device memory available for pinned (hot) model weights, in MB.
  /// 11 GB mirrors the paper's RTX 2080 Ti.
  double memory_mb = 11264.0;

  /// The base spec with compute_scale applied.
  gpusim::GpuSpec resolved() const;
};

struct FleetConfig {
  /// Homogeneous fleet: `num_gpus` copies of `gpu`. Ignored when `nodes` is
  /// non-empty.
  int num_gpus = 2;
  gpusim::GpuSpec gpu = gpusim::GpuSpec::rtx2080ti();

  /// Heterogeneous fleet: one entry per device (overrides num_gpus/gpu).
  std::vector<GpuNodeSpec> nodes;

  rt::SchedulerConfig sched;

  /// Cross-GPU weight-transfer cost, microseconds per MB of model
  /// footprint, charged when a rejected job migrates to a device where its
  /// model is cold. 80 us/MB ~= PCIe 3.0 x16 effective bandwidth. 0 restores
  /// the zero-delay migration premise.
  double transfer_us_per_mb = 80.0;

  std::uint64_t seed = 42;
};

class Fleet {
 public:
  /// Creates one GPU + scheduler pair per configured device on `sim`. All
  /// job and stage events flow into `collector` (may be null), stamped with
  /// the device index.
  Fleet(sim::Simulator& sim, const FleetConfig& config,
        metrics::Collector* collector);

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  sim::Simulator& simulator() { return sim_; }
  int size() const { return static_cast<int>(gpus_.size()); }

  gpusim::Gpu& gpu(int g) { return *gpus_[static_cast<std::size_t>(g)]; }
  rt::Scheduler& scheduler(int g) {
    return *schedulers_[static_cast<std::size_t>(g)];
  }
  const rt::Scheduler& scheduler(int g) const {
    return *schedulers_[static_cast<std::size_t>(g)];
  }

  /// The device's configured node spec (resolved view of a homogeneous
  /// fleet's template when `FleetConfig::nodes` was empty).
  const GpuNodeSpec& node(int g) const {
    return nodes_[static_cast<std::size_t>(g)];
  }
  double compute_scale(int g) const { return node(g).compute_scale; }

  /// Registers the task on every GPU (same id on each scheduler) with
  /// `home_gpu` carrying its static HP reservation, and pins the task's
  /// model hot on the home GPU when its memory capacity allows. Returns the
  /// task id.
  int add_task(const rt::TaskSpec& spec, const dnn::CompiledModel* model,
               int home_gpu);

  /// Seeds the task's MRET estimator on every GPU (Eq. 10).
  void set_afet(int task_id, const std::vector<double>& per_stage_us);

  /// Seeds one device's MRET estimator (heterogeneous fleets profile AFET
  /// per node spec).
  void set_afet(int task_id, int g, const std::vector<double>& per_stage_us);

  /// Algorithm 1 initial context assignment, on every GPU.
  void run_offline_phase();

  int task_count() const { return static_cast<int>(home_.size()); }
  int home_gpu(int task_id) const {
    return home_[static_cast<std::size_t>(task_id)];
  }

  /// Admitted (active) utilisation of GPU g — the router's load signal.
  double load(int g) const { return scheduler(g).active_utilization(); }

  /// load(g) normalised to [0, ~1] by the device's total stream capacity
  /// (Nc x Ns). The hybrid policy's spill threshold compares against this.
  double relative_load(int g) const;

  /// Device-comparable busyness: load(g) divided by the node's compute
  /// scale, so heterogeneous devices rank by absolute headroom. Identical
  /// to load(g) in homogeneous fleets.
  double placement_score(int g) const {
    return load(g) / node(g).compute_scale;
  }

  // --- model memory (hot-weight pinning) ---------------------------------

  /// Weight footprint shipped when a job of the task migrates to a cold
  /// device, in MB.
  double transfer_mb(int task_id) const;
  double transfer_us_per_mb() const { return transfer_us_per_mb_; }

  /// True when the task's model weights are pinned on GPU g (no transfer
  /// needed to run there).
  bool model_hot(int g, int task_id) const;

  /// Pins the task's model on GPU g if free capacity allows (called after a
  /// successful weight transfer). Returns true when the model is hot on g
  /// afterwards.
  bool warm_model(int g, int task_id);

  double memory_used_mb(int g) const {
    return memory_used_mb_[static_cast<std::size_t>(g)];
  }

  // --- fleet-level admission (feasibility) -------------------------------

  /// True when some device could host a job of the task at all: the model
  /// is hot there or could still be pinned, and — for jobs subject to the
  /// admission test — one job's utilisation fits an idle context (Eq. 12
  /// could ever pass). The router rejects infeasible jobs outright instead
  /// of bouncing them through migration retries.
  bool feasible(int task_id) const;

  /// Fleet-wide admitted-but-unfinished jobs of one logical task. The
  /// schedulers' per-device backlog guard only sees local Task instances;
  /// the router applies the same guard against this sum so an overloaded
  /// task cannot hold one job per device (jobs the paper's single-GPU
  /// admission would shed must be shed here too, not queued into lateness).
  int active_jobs(int task_id) const;

  /// Jobs completed by GPU g (all priorities, includes warm-up).
  std::uint64_t jobs_completed(int g) const {
    return scheduler(g).jobs_completed();
  }

  /// Sum of intra-GPU (context-level) migrations across the fleet.
  std::uint64_t intra_gpu_migrations() const;

 private:
  sim::Simulator& sim_;
  std::vector<GpuNodeSpec> nodes_;
  std::vector<std::unique_ptr<gpusim::Gpu>> gpus_;
  std::vector<std::unique_ptr<rt::Scheduler>> schedulers_;
  std::vector<int> home_;
  std::vector<const dnn::CompiledModel*> model_of_task_;
  /// Per GPU: distinct models pinned hot, and the MB they occupy.
  std::vector<std::vector<const dnn::CompiledModel*>> hot_models_;
  std::vector<double> memory_used_mb_;
  double transfer_us_per_mb_ = 0.0;
};

}  // namespace daris::cluster
