// Multi-GPU fleet: N simulated GPUs, each running its own DARIS scheduler,
// on one shared discrete-event simulator.
//
// Every task is registered on every GPU (weights are shared, as MPS shares
// them across contexts — the paper's zero-delay migration premise extended
// across devices), so the router can place any job anywhere. The static HP
// reservation of Eq. 11 (U^{h,t}_k) is charged only on the task's *home*
// GPU (Task::resident); otherwise registering the fleet-wide task list on
// each device would reserve N times the real HP demand and starve LP
// admission everywhere.
//
// Per-GPU seeds, schedulers, and MRET estimators are independent: each
// device accumulates its own execution-time history, exactly as real MPS
// daemons would.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "daris/scheduler.h"
#include "gpusim/gpu.h"
#include "metrics/collector.h"
#include "sim/simulator.h"

namespace daris::cluster {

struct FleetConfig {
  int num_gpus = 2;
  gpusim::GpuSpec gpu = gpusim::GpuSpec::rtx2080ti();
  rt::SchedulerConfig sched;
  std::uint64_t seed = 42;
};

class Fleet {
 public:
  /// Creates `config.num_gpus` GPU + scheduler pairs on `sim`. All job and
  /// stage events flow into `collector` (may be null), stamped with the
  /// device index.
  Fleet(sim::Simulator& sim, const FleetConfig& config,
        metrics::Collector* collector);

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  sim::Simulator& simulator() { return sim_; }
  int size() const { return static_cast<int>(gpus_.size()); }

  gpusim::Gpu& gpu(int g) { return *gpus_[static_cast<std::size_t>(g)]; }
  rt::Scheduler& scheduler(int g) {
    return *schedulers_[static_cast<std::size_t>(g)];
  }
  const rt::Scheduler& scheduler(int g) const {
    return *schedulers_[static_cast<std::size_t>(g)];
  }

  /// Registers the task on every GPU (same id on each scheduler) with
  /// `home_gpu` carrying its static HP reservation. Returns the task id.
  int add_task(const rt::TaskSpec& spec, const dnn::CompiledModel* model,
               int home_gpu);

  /// Seeds the task's MRET estimator on every GPU (Eq. 10).
  void set_afet(int task_id, const std::vector<double>& per_stage_us);

  /// Algorithm 1 initial context assignment, on every GPU.
  void run_offline_phase();

  int task_count() const { return static_cast<int>(home_.size()); }
  int home_gpu(int task_id) const {
    return home_[static_cast<std::size_t>(task_id)];
  }

  /// Admitted (active) utilisation of GPU g — the router's load signal.
  double load(int g) const { return scheduler(g).active_utilization(); }

  /// Fleet-wide admitted-but-unfinished jobs of one logical task. The
  /// schedulers' per-device backlog guard only sees local Task instances;
  /// the router applies the same guard against this sum so an overloaded
  /// task cannot hold one job per device (jobs the paper's single-GPU
  /// admission would shed must be shed here too, not queued into lateness).
  int active_jobs(int task_id) const;

  /// Jobs completed by GPU g (all priorities, includes warm-up).
  std::uint64_t jobs_completed(int g) const {
    return scheduler(g).jobs_completed();
  }

  /// Sum of intra-GPU (context-level) migrations across the fleet.
  std::uint64_t intra_gpu_migrations() const;

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<gpusim::Gpu>> gpus_;
  std::vector<std::unique_ptr<rt::Scheduler>> schedulers_;
  std::vector<int> home_;
};

}  // namespace daris::cluster
