// Multi-GPU fleet: N simulated GPUs, each running its own DARIS scheduler,
// on one shared discrete-event simulator.
//
// Every task is registered on every GPU (the router can place any job
// anywhere), but the static HP reservation of Eq. 11 (U^{h,t}_k) is charged
// only on the task's *home* GPU (Task::resident); otherwise registering the
// fleet-wide task list on each device would reserve N times the real HP
// demand and starve LP admission everywhere.
//
// Model weights are a per-device resource: each GPU pins ("keeps hot") the
// models of the tasks homed on it, up to its memory capacity. A job may
// still run where its model is cold, but the reactive migration of a
// rejected job to such a device ships the model's footprint first
// (Router charges `weight_mb * transfer_us_per_mb` of delay); a successful
// transfer warms the model on the target when capacity allows, so repeat
// migrations of a hot model are free. See docs/CLUSTER.md.
//
// Fleets may be heterogeneous: each device carries a GpuNodeSpec (compute
// scale + memory capacity). Placement comparisons between devices go
// through `placement_score()` (load normalised by compute scale) so a
// half-size GPU at 40% admitted utilisation ranks busier than a flagship at
// 50%.
//
// Per-GPU seeds, schedulers, and MRET estimators are independent: each
// device accumulates its own execution-time history, exactly as real MPS
// daemons would.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "daris/scheduler.h"
#include "gpusim/gpu.h"
#include "metrics/collector.h"
#include "metrics/eventlog.h"
#include "sim/simulator.h"

namespace daris::sim {
class ShardedSimulator;
}

namespace daris::cluster {

/// One device of a (possibly heterogeneous) fleet.
struct GpuNodeSpec {
  /// Architectural template; compute_scale is applied on top of it.
  gpusim::GpuSpec base = gpusim::GpuSpec::rtx2080ti();

  /// Relative throughput versus the base spec: scales the SM count and the
  /// memory bandwidth together (0.5 = half-size inference card, 2.0 =
  /// flagship). Latency constants (launch/sync overhead) are host-side and
  /// stay as the base spec sets them.
  double compute_scale = 1.0;

  /// Device memory available for pinned (hot) model weights, in MB.
  /// 11 GB mirrors the paper's RTX 2080 Ti.
  double memory_mb = 11264.0;

  /// The base spec with compute_scale applied.
  gpusim::GpuSpec resolved() const;
};

/// Lifecycle state of one device (fault injection / autoscaling; see
/// docs/SCENARIOS.md). Healthy devices take placements; draining devices
/// finish their in-flight work but receive nothing new; failed devices are
/// dead — their in-flight jobs were shed as misses at the failure instant.
enum class GpuHealth { kHealthy, kDraining, kFailed };

struct FleetConfig {
  /// Homogeneous fleet: `num_gpus` copies of `gpu`. Ignored when `nodes` is
  /// non-empty.
  int num_gpus = 2;
  gpusim::GpuSpec gpu = gpusim::GpuSpec::rtx2080ti();

  /// Heterogeneous fleet: one entry per device (overrides num_gpus/gpu).
  std::vector<GpuNodeSpec> nodes;

  rt::SchedulerConfig sched;

  /// Cross-GPU weight-transfer cost, microseconds per MB of model
  /// footprint, charged when a rejected job migrates to a device where its
  /// model is cold. 80 us/MB ~= PCIe 3.0 x16 effective bandwidth. 0 restores
  /// the zero-delay migration premise.
  double transfer_us_per_mb = 80.0;

  std::uint64_t seed = 42;
};

class Fleet {
 public:
  /// Creates one GPU + scheduler pair per configured device on `sim`. All
  /// job and stage events flow into `collector` (may be null), stamped with
  /// the device index.
  Fleet(sim::Simulator& sim, const FleetConfig& config,
        metrics::Collector* collector);

  /// Sharded construction: device g's GPU + scheduler live on
  /// `sharded.device_sim(g)` and their local events run in the parallel
  /// phase; everything fleet-scoped (fault timers, rehoming, the router and
  /// rebalancer via simulator()) stays on the control shard. With zero
  /// device shards this is exactly the single-simulator constructor. The
  /// fleet must be sized to the shard count: device_shards() must equal the
  /// configured device count (or be 0).
  Fleet(sim::ShardedSimulator& sharded, const FleetConfig& config,
        metrics::Collector* collector);

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// The control-shard simulator (the only simulator in unsharded fleets):
  /// cross-device event timelines — routing, transfers, faults — live here.
  sim::Simulator& simulator() { return sim_; }

  /// The simulator device g's GPU and scheduler schedule on. Identical to
  /// simulator() in unsharded fleets.
  sim::Simulator& device_sim(int g);
  int size() const { return static_cast<int>(gpus_.size()); }

  gpusim::Gpu& gpu(int g) { return *gpus_[static_cast<std::size_t>(g)]; }
  rt::Scheduler& scheduler(int g) {
    return *schedulers_[static_cast<std::size_t>(g)];
  }
  const rt::Scheduler& scheduler(int g) const {
    return *schedulers_[static_cast<std::size_t>(g)];
  }

  /// The device's configured node spec (resolved view of a homogeneous
  /// fleet's template when `FleetConfig::nodes` was empty).
  const GpuNodeSpec& node(int g) const {
    return nodes_[static_cast<std::size_t>(g)];
  }
  double compute_scale(int g) const { return node(g).compute_scale; }

  /// Registers the task on every GPU (same id on each scheduler) with
  /// `home_gpu` carrying its static HP reservation, and pins the task's
  /// model hot on the home GPU when its memory capacity allows. Returns the
  /// task id.
  int add_task(const rt::TaskSpec& spec, const dnn::CompiledModel* model,
               int home_gpu);

  /// Seeds the task's MRET estimator on every GPU (Eq. 10).
  void set_afet(int task_id, const std::vector<double>& per_stage_us);

  /// Seeds one device's MRET estimator (heterogeneous fleets profile AFET
  /// per node spec).
  void set_afet(int task_id, int g, const std::vector<double>& per_stage_us);

  /// Algorithm 1 initial context assignment, on every GPU.
  void run_offline_phase();

  int task_count() const { return static_cast<int>(home_.size()); }
  int home_gpu(int task_id) const {
    return home_[static_cast<std::size_t>(task_id)];
  }
  const dnn::CompiledModel* model_of(int task_id) const {
    return model_of_task_[static_cast<std::size_t>(task_id)];
  }

  /// Moves one task's home (and its Eq. 11 HP reservation) to `to`, warming
  /// its model there when capacity allows. The rebalancer's demand-aware
  /// re-homing and the fault paths both land here; `cause` distinguishes
  /// them in the event log (kNone: fault-driven, kDemandShift: periodic
  /// rebalancing). No-op when the task is already homed on `to`.
  void rehome_task(int task_id, int to,
                   metrics::EventCause cause = metrics::EventCause::kNone);

  /// Admitted (active) utilisation of GPU g — the router's load signal.
  double load(int g) const { return scheduler(g).active_utilization(); }

  /// load(g) normalised to [0, ~1] by the device's total stream capacity
  /// (Nc x Ns). The hybrid policy's spill threshold compares against this.
  double relative_load(int g) const;

  /// Device-comparable busyness: load(g) divided by the node's compute
  /// scale, so heterogeneous devices rank by absolute headroom. Identical
  /// to load(g) in homogeneous fleets.
  double placement_score(int g) const {
    return load(g) / node(g).compute_scale;
  }

  // --- model memory (hot-weight pinning) ---------------------------------

  /// Weight footprint shipped when a job of the task migrates to a cold
  /// device, in MB.
  double transfer_mb(int task_id) const;
  double transfer_us_per_mb() const { return transfer_us_per_mb_; }

  /// True when the task's model weights are pinned on GPU g (no transfer
  /// needed to run there).
  bool model_hot(int g, int task_id) const;

  /// Pins the task's model on GPU g if free capacity allows (called after a
  /// successful weight transfer). Returns true when the model is hot on g
  /// afterwards.
  bool warm_model(int g, int task_id);

  double memory_used_mb(int g) const {
    return memory_used_mb_[static_cast<std::size_t>(g)];
  }

  /// Distinct models pinned hot on GPU g (telemetry gauge).
  int hot_model_count(int g) const {
    return static_cast<int>(hot_models_[static_cast<std::size_t>(g)].size());
  }

  // --- fleet-level admission (feasibility) -------------------------------

  /// True when some device could host a job of the task at all: the model
  /// is hot there or could still be pinned, and — for jobs subject to the
  /// admission test — one job's utilisation fits an idle context (Eq. 12
  /// could ever pass). The router rejects infeasible jobs outright instead
  /// of bouncing them through migration retries.
  bool feasible(int task_id) const;

  /// Fleet-wide admitted-but-unfinished jobs of one logical task. The
  /// schedulers' per-device backlog guard only sees local Task instances;
  /// the router applies the same guard against this sum so an overloaded
  /// task cannot hold one job per device (jobs the paper's single-GPU
  /// admission would shed must be shed here too, not queued into lateness).
  int active_jobs(int task_id) const;

  /// Jobs completed by GPU g (all priorities, includes warm-up).
  std::uint64_t jobs_completed(int g) const {
    return scheduler(g).jobs_completed();
  }

  /// Sum of intra-GPU (context-level) migrations across the fleet.
  std::uint64_t intra_gpu_migrations() const;

  // --- fault injection / autoscaling -------------------------------------
  //
  // The *_now forms act immediately; fail_gpu/slow_gpu/drain_gpu schedule
  // the action as an ordinary simulator event at `when` (clamped to now if
  // past), so fault timelines obey the same (when, seq) determinism
  // contract as every other event. The fleet must outlive the simulator
  // run, as with the release drivers.

  GpuHealth health(int g) const { return health_[static_cast<std::size_t>(g)]; }

  /// True when the router may place new work on g: healthy, not draining,
  /// and not masked by an open circuit breaker (cluster::ResiliencePolicy).
  bool placeable(int g) const {
    return health(g) == GpuHealth::kHealthy &&
           breaker_open_[static_cast<std::size_t>(g)] == 0;
  }
  int placeable_count() const;

  /// Circuit-breaker mask (cluster::ResiliencePolicy). An open breaker makes
  /// the device unplaceable exactly like a draining one — routing skips it,
  /// feasibility ignores it — but is temporary: nothing is rehomed, in-flight
  /// transfers keep their target, and clearing the flag restores placements.
  void set_breaker_open(int g, bool open) {
    breaker_open_[static_cast<std::size_t>(g)] = open ? 1 : 0;
  }
  bool breaker_open(int g) const {
    return breaker_open_[static_cast<std::size_t>(g)] != 0;
  }

  // --- job-conservation invariant ----------------------------------------

  /// Router-side accounting the fleet cannot see, indexed by priority class
  /// ([0] = kHigh, [1] = kLow): route attempts (first releases + retries +
  /// hedges), synchronous + asynchronous sheds, transfers still in flight,
  /// and the rebalancer's successful steals (each steal re-admits the job on
  /// the thief, inflating the schedulers' admit sum by one without a new
  /// route attempt).
  struct ConservationInput {
    std::uint64_t released[2] = {0, 0};
    std::uint64_t shed[2] = {0, 0};
    std::uint64_t pending[2] = {0, 0};
    std::uint64_t steals = 0;  // LP only: the rebalancer steals queued LP jobs
  };

  struct ConservationReport {
    bool ok = true;
    /// Per-class accounting, filled either way; `detail` names the first
    /// violated identity when !ok.
    std::uint64_t released[2] = {0, 0};
    std::uint64_t accounted[2] = {0, 0};
    std::string detail;
  };

  /// Checks that no job was double-counted or leaked: per class,
  ///   released == shed + pending + sum_g(completed + failed + in_flight)
  ///               + (sum_g revoked - steals)
  /// (a steal's revoke is cancelled by its re-admit; every other revoke is a
  /// cancelled hedge copy whose surviving twin is counted once), after first
  /// verifying each scheduler's internal identity
  ///   admitted == completed + failed + revoked + in_flight.
  /// Runs at end of run over live counters — O(fleet + in-flight jobs).
  ConservationReport check_conservation(const ConservationInput& in) const;

  /// Fail-stop: sheds every in-flight job on g (reported as missed
  /// finishes — see rt::Scheduler::fail_all_jobs), halts the simulated
  /// device, and rehomes the tasks homed on g (their Eq. 11 HP reservation
  /// moves to the least-loaded placeable device, and their models are
  /// warmed there when capacity allows). Returns the number of jobs lost.
  std::size_t fail_gpu_now(int g);
  void fail_gpu(int g, common::Time when);

  /// Straggler: multiplies g's compute scale by `factor` (< 1 slows, > 1
  /// restores/boosts) and feeds the re-resolved spec into the simulated
  /// device, which re-derives every resident kernel's rate deterministically
  /// (gpusim::Gpu::set_spec). MRET adapts online; callers that want the
  /// admission side to see the change immediately should re-seed AFET from
  /// a profile of node(g).resolved() (cluster_runner does).
  void slow_gpu_now(int g, double factor);
  void slow_gpu(int g, double factor, common::Time when);

  /// Graceful scale-down: g stops receiving placements but finishes its
  /// in-flight work; tasks homed on g are rehomed as in fail_gpu_now.
  void drain_gpu_now(int g);
  void drain_gpu(int g, common::Time when);

  /// Scale-up: appends a healthy device mid-run. Its jitter seed is the
  /// next draw of the fleet's seed sequence (so a run with an add at time T
  /// is a pure function of (config, seed, T)), every registered task is
  /// added to its scheduler non-resident, and the collector's routing
  /// counters grow in place. The caller owns AFET seeding and the offline
  /// phase on the new device (see run_offline_phase(g)); until then its
  /// tasks fall back to late context assignment. Returns the new index.
  int add_gpu_now(const GpuNodeSpec& node);

  /// Algorithm 1 on one device (after add_gpu_now + AFET seeding).
  void run_offline_phase(int g) { scheduler(g).run_offline_phase(); }

  /// Jobs shed by fail_gpu_now across the fleet (missed finishes).
  std::uint64_t jobs_lost() const { return jobs_lost_; }

  /// Registers a callback invoked the instant a device stops being
  /// placeable (fail_gpu_now / drain_gpu_now), before the fleet rehomes the
  /// device's tasks. The router uses it to cancel or retarget weight
  /// transfers still in flight toward the dead device (delivering bytes to
  /// a halted GPU would strand the jobs riding them). One observer; a new
  /// registration replaces the old, nullptr clears it.
  void set_on_unplaceable(std::function<void(int)> fn) {
    on_unplaceable_ = std::move(fn);
  }

 private:
  /// Moves every task homed on `g` to the least-loaded placeable device
  /// (placement_score, ties to the lowest index). No-op for tasks homed
  /// elsewhere; if no placeable device remains, homes stay and feasible()
  /// sheds the releases.
  void rehome_tasks_from(int g);
  /// Shared tail of both constructors (runs after sim_/sharded_ are set).
  void init(const FleetConfig& config);
  sim::Simulator& sim_;
  sim::ShardedSimulator* sharded_ = nullptr;  // null: single-simulator fleet
  std::vector<GpuNodeSpec> nodes_;
  std::vector<std::unique_ptr<gpusim::Gpu>> gpus_;
  std::vector<std::unique_ptr<rt::Scheduler>> schedulers_;
  std::vector<GpuHealth> health_;
  std::vector<std::uint8_t> breaker_open_;
  std::vector<int> home_;
  // Construction state kept for add_gpu_now: the canonicalized scheduler
  // config every device shares, the collector new schedulers report to, and
  // the seed sequence the constructor drew per-GPU seeds from (a member so
  // a device added mid-run continues the same deterministic sequence).
  rt::SchedulerConfig sched_cfg_;
  metrics::Collector* collector_ = nullptr;
  common::Rng seed_rng_{0};
  std::function<void(int)> on_unplaceable_;
  std::uint64_t jobs_lost_ = 0;
  std::vector<const dnn::CompiledModel*> model_of_task_;
  /// Per GPU: distinct models pinned hot, and the MB they occupy.
  std::vector<std::vector<const dnn::CompiledModel*>> hot_models_;
  std::vector<double> memory_used_mb_;
  double transfer_us_per_mb_ = 0.0;
};

}  // namespace daris::cluster
