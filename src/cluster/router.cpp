#include "cluster/router.h"

#include <limits>

namespace daris::cluster {

const char* routing_policy_name(RoutingPolicy p) {
  switch (p) {
    case RoutingPolicy::kRoundRobin:
      return "round-robin";
    case RoutingPolicy::kLeastUtilization:
      return "least-util";
    case RoutingPolicy::kPowerOfTwo:
      return "power-of-two";
    case RoutingPolicy::kModelAffinity:
      return "model-affinity";
  }
  return "?";
}

Router::Router(Fleet& fleet, RoutingPolicy policy, std::uint64_t seed,
               metrics::Collector* collector)
    : fleet_(fleet), policy_(policy), rng_(seed), collector_(collector) {}

int Router::pick(int task_id) {
  const int n = fleet_.size();
  switch (policy_) {
    case RoutingPolicy::kRoundRobin: {
      const int g = rr_next_;
      rr_next_ = (rr_next_ + 1) % n;
      return g;
    }
    case RoutingPolicy::kLeastUtilization:
      return least_loaded_peer(/*exclude=*/-1);
    case RoutingPolicy::kPowerOfTwo: {
      const int a = static_cast<int>(rng_.uniform_int(0, n - 1));
      const int b = static_cast<int>(rng_.uniform_int(0, n - 1));
      return fleet_.load(b) < fleet_.load(a) ? b : a;
    }
    case RoutingPolicy::kModelAffinity:
      return fleet_.home_gpu(task_id);
  }
  return 0;
}

int Router::least_loaded_peer(int exclude) const {
  int best = -1;
  double best_load = std::numeric_limits<double>::infinity();
  for (int g = 0; g < fleet_.size(); ++g) {
    if (g == exclude) continue;
    const double load = fleet_.load(g);
    if (load < best_load) {
      best_load = load;
      best = g;
    }
  }
  return best;
}

void Router::release(int task_id) {
  const auto& spec = fleet_.scheduler(0).task(task_id).spec();
  // HP jobs go to their home GPU — the device carrying their static Eq. 11
  // reservation — mirroring the paper's fixed HP context assignment one
  // level up (a dynamically routed HP job would land where no capacity is
  // reserved for it and push admitted LP work into lateness). The routing
  // policy places the migratable LP jobs.
  const int home = spec.priority == common::Priority::kHigh
                       ? fleet_.home_gpu(task_id)
                       : pick(task_id);

  metrics::JobEvent ev;
  ev.task_id = task_id;
  ev.priority = spec.priority;
  ev.release = fleet_.simulator().now();
  ev.relative_deadline = spec.relative_deadline;
  ev.gpu = home;
  if (collector_) {
    collector_->on_release(ev);
    collector_->on_route(home);
  }

  // Fleet-wide backlog guard, mirroring the per-device rule in
  // Scheduler::release_job (LP: shed while a predecessor is active anywhere;
  // HP: small bounded backlog).
  const int backlog_cap =
      spec.priority == common::Priority::kLow
          ? 1
          : fleet_.scheduler(home).config().max_backlog_per_task;
  if (fleet_.active_jobs(task_id) >= backlog_cap) {
    ++drops_;
    if (collector_) {
      collector_->on_reject(ev);
      collector_->on_drop(home);
    }
    return;
  }

  if (fleet_.scheduler(home).release_job(task_id, /*report=*/false)) {
    if (collector_) collector_->on_home_admit(home);
    return;
  }

  // Cross-GPU migration: the job failed admission on every context of its
  // routed GPU; offer it once to the least-loaded peer before dropping.
  const int peer = least_loaded_peer(home);
  if (peer >= 0 &&
      fleet_.scheduler(peer).release_job(task_id, /*report=*/false)) {
    ++migrations_;
    if (collector_) collector_->on_cross_migration(home, peer);
    return;
  }

  ++drops_;
  if (collector_) {
    collector_->on_reject(ev);
    collector_->on_drop(home);
  }
}

}  // namespace daris::cluster
