#include "cluster/router.h"

#include <limits>

#include "metrics/eventlog.h"

namespace daris::cluster {

const char* routing_policy_name(RoutingPolicy p) {
  switch (p) {
    case RoutingPolicy::kRoundRobin:
      return "round-robin";
    case RoutingPolicy::kLeastUtilization:
      return "least-util";
    case RoutingPolicy::kPowerOfTwo:
      return "power-of-two";
    case RoutingPolicy::kModelAffinity:
      return "model-affinity";
    case RoutingPolicy::kHybrid:
      return "hybrid";
  }
  return "?";
}

Router::Router(Fleet& fleet, const RouterConfig& config,
               metrics::Collector* collector)
    : fleet_(fleet),
      config_(config),
      rng_(config.seed),
      collector_(collector) {
  // Transfers headed to a device that fails or drains must be cancelled the
  // instant it stops being placeable — before the fleet rehomes its tasks —
  // so no delivery ever lands on a halted GPU. With no transfers in flight
  // the hook is a no-op, so runs without faults (or without delayed
  // transfers) are untouched.
  fleet_.set_on_unplaceable([this](int g) { cancel_transfers_to(g); });
}

Router::Router(Fleet& fleet, RoutingPolicy policy, std::uint64_t seed,
               metrics::Collector* collector)
    : Router(fleet, RouterConfig{policy, 0.75, false, seed}, collector) {}

Router::~Router() { fleet_.set_on_unplaceable(nullptr); }

int Router::pick(int task_id) {
  const int n = fleet_.size();
  switch (config_.policy) {
    case RoutingPolicy::kRoundRobin: {
      // Skip failed/draining devices; with everything placeable this is the
      // historical one-step advance. A fully unplaceable fleet returns the
      // raw cursor and release() sheds the job as infeasible.
      int g = rr_next_;
      rr_next_ = (rr_next_ + 1) % n;
      for (int tries = 1; tries < n && !fleet_.placeable(g); ++tries) {
        g = rr_next_;
        rr_next_ = (rr_next_ + 1) % n;
      }
      return g;
    }
    case RoutingPolicy::kLeastUtilization:
      return best_peer(/*exclude=*/-1);
    case RoutingPolicy::kPowerOfTwo: {
      // Both draws always happen, so the RNG stream — and with it every
      // healthy-fleet run — is untouched by the availability filter.
      const int a = static_cast<int>(rng_.uniform_int(0, n - 1));
      const int b = static_cast<int>(rng_.uniform_int(0, n - 1));
      const double sa = fleet_.placeable(a)
                            ? fleet_.placement_score(a)
                            : std::numeric_limits<double>::infinity();
      const double sb = fleet_.placeable(b)
                            ? fleet_.placement_score(b)
                            : std::numeric_limits<double>::infinity();
      if (sa == std::numeric_limits<double>::infinity() &&
          sb == std::numeric_limits<double>::infinity()) {
        return best_peer(/*exclude=*/-1);  // both samples dead: fall back
      }
      return sb < sa ? b : a;
    }
    case RoutingPolicy::kModelAffinity:
      return fleet_.home_gpu(task_id);
    case RoutingPolicy::kHybrid: {
      // Affinity + spillover: stay on the model-affine home GPU (weights
      // hot, per-device MRET history warm) while it has headroom; once its
      // relative load crosses the threshold, spill to the best-scoring
      // peer — but only when that peer actually scores better, so a
      // uniformly saturated fleet does not ping-pong jobs for nothing.
      const int home = fleet_.home_gpu(task_id);
      if (fleet_.relative_load(home) < config_.spill_threshold) return home;
      const int peer = best_peer(home);
      if (peer < 0 ||
          fleet_.placement_score(peer) >= fleet_.placement_score(home)) {
        return home;
      }
      return peer;
    }
  }
  return 0;
}

int Router::best_peer(int exclude) const {
  int best = -1;
  double best_score = std::numeric_limits<double>::infinity();
  for (int g = 0; g < fleet_.size(); ++g) {
    if (g == exclude || !fleet_.placeable(g)) continue;
    const double score = fleet_.placement_score(g);
    if (score < best_score) {
      best_score = score;
      best = g;
    }
  }
  return best;
}

void Router::release(int task_id) {
  (void)route_job(task_id, fleet_.simulator().now());
}

RouteResult Router::route_job(int task_id, common::Time released) {
  const auto& spec = fleet_.scheduler(0).task(task_id).spec();
  const auto cls = static_cast<std::size_t>(spec.priority);
  ++released_cls_[cls];
  if (release_observer_) release_observer_(task_id);
  // HP jobs go to their home GPU — the device carrying their static Eq. 11
  // reservation — mirroring the paper's fixed HP context assignment one
  // level up (a dynamically routed HP job would land where no capacity is
  // reserved for it and push admitted LP work into lateness). The routing
  // policy places the migratable LP jobs.
  int home = spec.priority == common::Priority::kHigh
                 ? fleet_.home_gpu(task_id)
                 : pick(task_id);
  // Availability guard: a failed/draining pick (or a -1 from a policy that
  // found nothing placeable) is redirected to the best placeable device;
  // when none exists the raw pick stands and the feasibility shed below
  // rejects the job. Task homes themselves are kept placeable by the
  // fleet's rehoming, so this only fires in degraded states.
  if (home < 0 || !fleet_.placeable(home)) {
    const int alt = best_peer(home);
    if (alt >= 0) home = alt;
  }
  if (home < 0) home = 0;  // whole fleet unplaceable: nominal accounting slot

  metrics::JobEvent ev;
  ev.task_id = task_id;
  ev.priority = spec.priority;
  ev.release = released;
  ev.relative_deadline = spec.relative_deadline;
  ev.gpu = home;
  if (collector_) {
    collector_->on_release(ev);
    collector_->on_route(home);
  }

  // Fleet admission controller: a job no device can feasibly host (model
  // fits no GPU's memory, or one job's utilisation exceeds every idle
  // context) is shed here, not bounced through placement and migration.
  if (!fleet_.feasible(task_id)) {
    ++drops_;
    ++infeasible_;
    ++shed_cls_[cls];
    note_shed_at(home);
    if (collector_) {
      collector_->on_reject(ev);
      collector_->on_infeasible(home);
      collector_->log_reject(released, home, task_id,
                             metrics::EventCause::kInfeasible);
    }
    RouteResult r;
    r.cause = metrics::EventCause::kInfeasible;
    return r;
  }

  // Fleet-wide backlog guard, mirroring the per-device rule in
  // Scheduler::release_job (LP: shed while a predecessor is active anywhere;
  // HP: small bounded backlog). Jobs whose weight transfer is still in
  // flight sit in no scheduler yet, so they are counted here explicitly.
  const int backlog_cap =
      spec.priority == common::Priority::kLow
          ? 1
          : fleet_.scheduler(home).config().max_backlog_per_task;
  if (fleet_.active_jobs(task_id) + pending_jobs(task_id) >= backlog_cap) {
    ++drops_;
    ++shed_cls_[cls];
    note_shed_at(home);
    if (collector_) {
      collector_->on_reject(ev);
      collector_->on_drop(home);
      collector_->log_reject(released, home, task_id,
                             metrics::EventCause::kBacklog);
    }
    if (pressure_observer_) pressure_observer_(home);
    RouteResult r;
    r.cause = metrics::EventCause::kBacklog;
    return r;
  }

  std::uint64_t job_id = 0;
  if (fleet_.scheduler(home).release_job(task_id, /*report=*/false, released,
                                         &job_id)) {
    if (collector_) {
      collector_->on_home_admit(home);
      collector_->log_admit(released, home, task_id);
    }
    RouteResult r;
    r.status = RouteResult::Status::kAdmitted;
    r.gpu = home;
    r.job_id = job_id;
    return r;
  }

  // Cross-GPU migration: the job failed admission on every context of its
  // routed GPU; offer it once to the best-scoring peer before dropping.
  const int peer = best_peer(home);
  if (peer < 0) return drop(task_id, home, released);
  return migrate(task_id, home, peer, released);
}

RouteResult Router::route_hedge(int task_id, int exclude_gpu,
                                common::Time released) {
  // Eligible peers: placeable, not the primary's device, and the model
  // already hot — a hedge races a straggling primary, so a weight transfer
  // (or queueing behind one) would defeat its purpose.
  int best = -1;
  double best_score = std::numeric_limits<double>::infinity();
  for (int g = 0; g < fleet_.size(); ++g) {
    if (g == exclude_gpu || !fleet_.placeable(g)) continue;
    if (!fleet_.model_hot(g, task_id)) continue;
    const double score = fleet_.placement_score(g);
    if (score < best_score) {
      best_score = score;
      best = g;
    }
  }
  RouteResult r;
  if (best < 0) return r;  // no eligible peer: hedge not launched, no counts

  const auto& spec = fleet_.scheduler(0).task(task_id).spec();
  const auto cls = static_cast<std::size_t>(spec.priority);
  ++released_cls_[cls];

  metrics::JobEvent ev;
  ev.task_id = task_id;
  ev.priority = spec.priority;
  ev.release = released;
  ev.relative_deadline = spec.relative_deadline;
  ev.gpu = best;
  if (collector_) {
    collector_->on_release(ev);
    collector_->on_route(best);
  }

  // The fleet-wide backlog guard is skipped by design (the primary copy
  // holds the task's backlog slot); the peer scheduler's own admission test
  // still applies, so an overloaded peer bounds the duplicate work.
  std::uint64_t job_id = 0;
  if (fleet_.scheduler(best).release_job(task_id, /*report=*/false, released,
                                         &job_id)) {
    if (collector_) {
      collector_->on_home_admit(best);
      collector_->log_admit(released, best, task_id);
    }
    r.status = RouteResult::Status::kAdmitted;
    r.gpu = best;
    r.job_id = job_id;
    return r;
  }
  ++drops_;
  ++shed_cls_[cls];
  note_shed_at(best);
  if (collector_) {
    collector_->on_reject(ev);
    collector_->on_drop(best);
    collector_->log_reject(released, best, task_id,
                           metrics::EventCause::kPeerReject);
  }
  r.cause = metrics::EventCause::kPeerReject;
  return r;
}

RouteResult Router::migrate(int task_id, int from, int peer,
                            common::Time released) {
  RouteResult pending;
  pending.status = RouteResult::Status::kPending;
  if (!fleet_.model_hot(peer, task_id)) {
    // Cold target: ship the weights with the job, delivering once the copy
    // lands. If a copy of this model is already in flight toward the peer
    // and coalescing is on, the job attaches to it instead of shipping a
    // duplicate; otherwise the transfer is charged up front (the bytes move
    // even if the peer later rejects the job).
    const double mb = fleet_.transfer_mb(task_id);
    const common::Duration delay =
        common::from_us(mb * fleet_.transfer_us_per_mb());
    if (config_.coalesce && delay > 0) {
      const auto lead = inflight_copy_.find(
          CoalesceKey{peer, fleet_.model_of(task_id)});
      if (lead != inflight_copy_.end()) {
        const common::Time arrive = inflight_.at(lead->second).arrive;
        ++coalesced_;
        coalesced_mb_saved_ += mb;
        if (collector_) {
          collector_->on_coalesce(peer, mb);
          collector_->log_coalesce(fleet_.simulator().now(), peer, task_id,
                                   mb);
        }
        // The attacher's delivery event is scheduled after the leader's, so
        // at equal arrival times it runs second — the leader's delivery has
        // already warmed the model when this job is offered.
        queue_delivery(task_id, from, peer, released, arrive, mb,
                       /*leader=*/false);
        return pending;
      }
    }
    ++transfers_;
    transferred_mb_ += mb;
    if (collector_) {
      collector_->on_transfer(peer, mb);
      collector_->log_transfer(fleet_.simulator().now(), peer, task_id, mb);
    }
    if (delay > 0) {
      queue_delivery(task_id, from, peer, released,
                     fleet_.simulator().now() + delay, mb,
                     /*leader=*/config_.coalesce);
      return pending;
    }
  }
  return deliver(task_id, from, peer, released);
}

std::uint64_t Router::queue_delivery(int task_id, int from, int peer,
                                     common::Time released,
                                     common::Time arrive, double mb,
                                     bool leader) {
  const std::uint64_t id = next_transfer_id_++;
  PendingRec rec;
  rec.task = task_id;
  rec.from = from;
  rec.peer = peer;
  rec.released = released;
  rec.arrive = arrive;
  rec.mb = mb;
  rec.leader = leader;
  ++pending_transfers_;
  if (static_cast<std::size_t>(peer) >= pending_to_.size()) {
    pending_to_.resize(static_cast<std::size_t>(peer) + 1, 0);
  }
  ++pending_to_[static_cast<std::size_t>(peer)];
  add_pending_job(task_id, 1);
  rec.handle =
      fleet_.simulator().schedule_at(arrive, [this, id] {
        complete_transfer(id);
      });
  inflight_.emplace(id, rec);
  if (leader) {
    inflight_copy_[CoalesceKey{peer, fleet_.model_of(task_id)}] = id;
  }
  return id;
}

void Router::complete_transfer(std::uint64_t id) {
  const auto it = inflight_.find(id);
  if (it == inflight_.end()) return;  // cancelled
  const PendingRec rec = it->second;
  inflight_.erase(it);
  finish_pending(rec);
  deliver(rec.task, rec.from, rec.peer, rec.released);
}

void Router::finish_pending(const PendingRec& rec) {
  --pending_transfers_;
  --pending_to_[static_cast<std::size_t>(rec.peer)];
  add_pending_job(rec.task, -1);
  if (rec.leader) {
    inflight_copy_.erase(CoalesceKey{rec.peer, fleet_.model_of(rec.task)});
  }
}

void Router::cancel_transfers_to(int g) {
  if (inflight_.empty()) return;
  // Snapshot the ids first: retargeting re-enters migrate(), which inserts
  // new records. Ascending id order is the arrival order of the original
  // migrations, so cancellation — like everything else here — is a pure
  // function of the event history.
  std::vector<std::uint64_t> ids;
  for (const auto& [id, rec] : inflight_) {
    if (rec.peer == g) ids.push_back(id);
  }
  for (const std::uint64_t id : ids) {
    const auto it = inflight_.find(id);
    if (it == inflight_.end()) continue;
    const PendingRec rec = it->second;
    fleet_.simulator().cancel(rec.handle);
    inflight_.erase(it);
    finish_pending(rec);
    ++transfer_cancels_;
    // The bytes already shipped toward g are sunk; the job is not. Retarget
    // it to the best surviving device (a cancelled leader's followers
    // retarget right after it and coalesce onto its new copy) or drop it
    // when the fleet has nowhere left.
    const int alt = best_peer(g);
    if (alt >= 0) {
      migrate(rec.task, rec.from, alt, rec.released);
    } else {
      drop(rec.task, rec.from, rec.released,
           metrics::EventCause::kRetarget);
    }
  }
}

RouteResult Router::deliver(int task_id, int from, int peer,
                            common::Time released) {
  // Cancellation retires transfers to unplaceable devices at the fault
  // instant, so a delivery can only race a fault landing at the exact same
  // timestamp; the bytes are already spent either way, the job is not.
  if (!fleet_.placeable(peer)) {
    return drop(task_id, from, released);
  }
  // Weights are on the device now (transfer done, or hot already); pin them
  // while capacity allows so repeat migrations of this model are free. The
  // job keeps its original release time: the transfer consumed deadline
  // slack (and shows in its response time), it did not reset the clock.
  fleet_.warm_model(peer, task_id);
  std::uint64_t job_id = 0;
  if (fleet_.scheduler(peer).release_job(task_id, /*report=*/false, released,
                                         &job_id)) {
    ++migrations_;
    if (collector_) {
      collector_->on_cross_migration(from, peer);
      collector_->log_migrate(fleet_.simulator().now(), from, peer, task_id);
    }
    RouteResult r;
    r.status = RouteResult::Status::kAdmitted;
    r.gpu = peer;
    r.job_id = job_id;
    return r;
  }
  return drop(task_id, from, released);
}

RouteResult Router::drop(int task_id, int gpu, common::Time released,
                         metrics::EventCause cause) {
  ++drops_;
  const auto& spec = fleet_.scheduler(0).task(task_id).spec();
  ++shed_cls_[static_cast<std::size_t>(spec.priority)];
  note_shed_at(gpu);
  RouteResult r;
  r.cause = cause;
  if (collector_ == nullptr) return r;
  metrics::JobEvent ev;
  ev.task_id = task_id;
  ev.priority = spec.priority;
  ev.release = released;
  ev.relative_deadline = spec.relative_deadline;
  ev.gpu = gpu;
  collector_->on_reject(ev);
  collector_->on_drop(gpu);
  collector_->log_reject(released, gpu, task_id, cause);
  return r;
}

int Router::pending_jobs(int task_id) const {
  const auto i = static_cast<std::size_t>(task_id);
  return i < pending_jobs_.size() ? pending_jobs_[i] : 0;
}

void Router::add_pending_job(int task_id, int delta) {
  const auto i = static_cast<std::size_t>(task_id);
  if (i >= pending_jobs_.size()) pending_jobs_.resize(i + 1, 0);
  pending_jobs_[i] += delta;
  const auto cls = static_cast<std::size_t>(
      fleet_.scheduler(0).task(task_id).spec().priority);
  if (delta > 0) {
    ++pending_cls_[cls];
  } else if (delta < 0) {
    --pending_cls_[cls];
  }
}

void Router::note_shed_at(int gpu) {
  const auto i = static_cast<std::size_t>(gpu);
  if (i >= shed_at_.size()) shed_at_.resize(i + 1, 0);
  ++shed_at_[i];
}

}  // namespace daris::cluster
