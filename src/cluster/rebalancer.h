// Self-healing fleet rebalancing: work stealing, demand-aware re-homing.
//
// The static home assignment (experiments/cluster_runner.cpp) and the
// router's per-job policies are open-loop: they act on the demand profile
// the run *started* with. When demand shifts — a flash crowd on one model
// kind, a drain piling three GPUs' tasks onto one survivor — the fleet
// keeps routing against a stale map until drops and deadline misses pile
// up. The Rebalancer closes the loop with two feedback mechanisms, both
// running as ordinary simulator events so a rebalanced run stays a pure
// function of (config, seed, fault schedule):
//
//  - Work stealing (reactive, per-event). When the router's fleet-wide
//    backlog guard sheds a job at a GPU, the rebalancer schedules one steal
//    scan there. The scan walks the victim's queued, not-yet-started LP
//    jobs (Scheduler::donatable_lp_jobs, ascending job id) and offers each
//    to the best-scoring peer that already holds the model hot and can
//    still meet the job's *original* deadline (now + the thief's MRET for
//    the task). A claim is release-then-revoke: the thief admits the job
//    backdated to its original release (Eq. 12 on the thief's contexts —
//    a failed admission has no side effects and the job stays put), then
//    the victim unwinds it. No weights move: thieves are warm by
//    construction, which is what makes stealing cheap enough to run per
//    backlog trip.
//
//  - Demand-aware re-homing (proactive, periodic). A fixed-cadence event
//    samples cumulative per-task release counts into a private
//    metrics::TimeSeries ring and converts the sliding window into
//    per-task load (release rate x SM-us per job — the same unit the
//    static packer balances). When some device carries more than
//    `hysteresis` times its fair share, the round replays the static
//    hybrid packer (pack_homes below) against the *windowed* demand and
//    moves at most `max_moves_per_round` homes toward the packed
//    assignment, heaviest tasks first, skipping tasks moved within
//    `min_dwell_rounds`. Hysteresis + dwell + the move cap keep the
//    controller from thrashing on noise; each executed move is
//    Fleet::rehome_task with EventCause::kDemandShift.
//
// Transfer coalescing, the third leg of the self-healing story, lives in
// the Router (RouterConfig::coalesce): run_cluster turns it on together
// with the rebalancer.
//
// Everything here is opt-in: a default RebalanceConfig{} (enabled=false)
// installs no observers and schedules no events, leaving runs byte-
// identical to a build without this file.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/fleet.h"
#include "cluster/router.h"
#include "common/time.h"
#include "metrics/collector.h"
#include "metrics/timeseries.h"
#include "sim/simulator.h"

namespace daris::cluster {

struct RebalanceConfig {
  /// Master switch. Off: the rebalancer is inert (no observers, no events).
  bool enabled = false;

  /// Backlog-triggered work stealing of queued LP jobs.
  bool steal = true;
  /// Cap on jobs claimed per steal scan (one scan per backlog trip).
  int max_steals_per_scan = 4;

  /// Periodic demand-aware re-homing.
  bool rehome = true;
  /// Re-homing cadence in simulated seconds (also the demand sample period).
  double rehome_period_s = 0.25;
  /// Sliding demand window the re-homer averages over, in seconds.
  double window_s = 1.0;
  /// Max homes moved per round; keeps each round a small correction.
  int max_moves_per_round = 2;
  /// Act only when some device carries more than this multiple of its fair
  /// demand share (1.0 = perfectly fair). Suppresses noise-driven moves.
  double hysteresis = 1.25;
  /// A task that moved must sit out this many rounds before moving again.
  int min_dwell_rounds = 4;

  /// Transfer coalescing (RouterConfig::coalesce) rides the same switch in
  /// run_cluster; kept here so one knob arms the whole self-healing layer.
  bool coalesce = true;
};

/// The demand-aware packer: the hybrid home-assignment algorithm (each model
/// kind gets the fewest hosts its load share needs, tasks least-fill
/// balanced across them, fair shares proportional to device scale),
/// factored out of the static assignment so the rebalancer replays the
/// exact same logic against windowed demand. `task_kind` is the task's
/// dnn::ModelKind cast to int (grouping + deterministic tie-break);
/// `device_scale` is the per-device compute scale with <= 0 marking devices
/// that must receive nothing (failed/draining). Returns one home per task.
std::vector<int> pack_homes(const std::vector<double>& task_load,
                            const std::vector<int>& task_kind,
                            const std::vector<double>& device_scale);

class Rebalancer {
 public:
  Rebalancer(sim::Simulator& sim, Fleet& fleet, Router& router,
             const RebalanceConfig& config, metrics::Collector* collector);

  Rebalancer(const Rebalancer&) = delete;
  Rebalancer& operator=(const Rebalancer&) = delete;

  /// Arms the rebalancer: installs the router observers and (when rehoming
  /// is on) schedules the periodic demand ticks up to `horizon`. A disabled
  /// config makes this a no-op. Call after every task is added and the
  /// fault schedule is posted, before the run starts.
  void start(common::Time horizon);

  /// Queued LP jobs claimed off a backlogged GPU by a peer.
  std::uint64_t steals() const { return steals_; }
  /// Steal scans executed (one per backlog trip, deduped while pending).
  std::uint64_t steal_scans() const { return steal_scans_; }
  /// Homes moved by demand-aware rounds.
  std::uint64_t rehomes() const { return rehomes_; }
  /// Rounds that executed at least one move.
  std::uint64_t rehome_rounds() const { return rehome_rounds_; }

 private:
  void note_release(int task_id);
  void on_pressure(int gpu);
  void steal_scan(int victim);
  void rehome_tick();
  void rehome_round(common::Time now);

  sim::Simulator& sim_;
  Fleet& fleet_;
  Router& router_;
  RebalanceConfig config_;
  metrics::Collector* collector_;
  common::Duration period_ = 0;
  common::Time horizon_ = 0;
  int round_ = 0;
  std::uint64_t steals_ = 0;
  std::uint64_t steal_scans_ = 0;
  std::uint64_t rehomes_ = 0;
  std::uint64_t rehome_rounds_ = 0;
  /// Cumulative releases per task (the demand probes read these).
  std::vector<std::uint64_t> release_count_;
  /// Round a task last moved in (dwell enforcement).
  std::vector<int> last_move_round_;
  /// Per-GPU flag: a steal scan is already scheduled there.
  std::vector<char> scan_pending_;
  /// Sliding demand window: one track per task over release_count_.
  metrics::TimeSeries demand_;
};

}  // namespace daris::cluster
