#include "cluster/rebalancer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/log.h"
#include "daris/scheduler.h"
#include "metrics/eventlog.h"

namespace daris::cluster {

std::vector<int> pack_homes(const std::vector<double>& task_load,
                            const std::vector<int>& task_kind,
                            const std::vector<double>& device_scale) {
  const std::size_t tasks = task_load.size();
  std::vector<int> homes(tasks, 0);
  std::vector<int> avail;
  for (std::size_t g = 0; g < device_scale.size(); ++g) {
    if (device_scale[g] > 0.0) avail.push_back(static_cast<int>(g));
  }
  const int n = static_cast<int>(avail.size());
  if (n == 0) return homes;
  for (auto& h : homes) h = avail.front();
  if (n == 1) return homes;

  double total_load = 0.0;
  std::map<int, double> kind_load;
  for (std::size_t i = 0; i < tasks; ++i) {
    total_load += task_load[i];
    kind_load[task_kind[i]] += task_load[i];
  }
  if (total_load <= 0.0) return homes;

  double total_scale = 0.0;
  for (const int g : avail) total_scale += device_scale[static_cast<std::size_t>(g)];
  std::vector<double> fair(device_scale.size(), 1e-9);
  for (const int g : avail) {
    fair[static_cast<std::size_t>(g)] = std::max(
        1e-9, total_load * device_scale[static_cast<std::size_t>(g)] /
                  total_scale);
  }
  std::vector<double> assigned(device_scale.size(), 0.0);
  auto fill = [&](int g) {
    return assigned[static_cast<std::size_t>(g)] /
           fair[static_cast<std::size_t>(g)];
  };
  // Heaviest kinds claim their hosts first (deterministic tie-break on the
  // kind value the map already orders by).
  std::vector<int> kinds;
  kinds.reserve(kind_load.size());
  for (const auto& [kind, load] : kind_load) kinds.push_back(kind);
  std::stable_sort(kinds.begin(), kinds.end(), [&](int a, int b) {
    return kind_load.at(a) > kind_load.at(b);
  });
  for (const int kind : kinds) {
    const int host_count = std::clamp(
        static_cast<int>(std::ceil(kind_load.at(kind) * n / total_load)), 1,
        n);
    // The kind's hosts: the `host_count` least-filled available devices.
    std::vector<int> order = avail;
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return fill(a) < fill(b); });
    order.resize(static_cast<std::size_t>(host_count));
    for (std::size_t i = 0; i < tasks; ++i) {
      if (task_kind[i] != kind) continue;
      int best = order.front();
      for (const int g : order) {
        if (fill(g) < fill(best)) best = g;
      }
      homes[i] = best;
      assigned[static_cast<std::size_t>(best)] += task_load[i];
    }
  }
  return homes;
}

Rebalancer::Rebalancer(sim::Simulator& sim, Fleet& fleet, Router& router,
                       const RebalanceConfig& config,
                       metrics::Collector* collector)
    : sim_(sim),
      fleet_(fleet),
      router_(router),
      config_(config),
      collector_(collector) {}

void Rebalancer::start(common::Time horizon) {
  if (!config_.enabled) return;
  horizon_ = horizon;
  const int tasks = fleet_.task_count();
  if (config_.steal) {
    scan_pending_.assign(static_cast<std::size_t>(fleet_.size()), 0);
    router_.set_pressure_observer([this](int g) { on_pressure(g); });
  }
  if (config_.rehome) {
    release_count_.assign(static_cast<std::size_t>(tasks), 0);
    last_move_round_.assign(static_cast<std::size_t>(tasks),
                            -config_.min_dwell_rounds);
    router_.set_release_observer([this](int t) { note_release(t); });
    for (int t = 0; t < tasks; ++t) {
      demand_.add_track("task/releases", t, [this, t] {
        return static_cast<double>(
            release_count_[static_cast<std::size_t>(t)]);
      });
    }
    period_ = common::from_sec(config_.rehome_period_s);
    if (period_ <= 0) return;
    demand_.sample_now(sim_.now());  // window baseline at arm time
    if (sim_.now() + period_ <= horizon_) {
      sim_.schedule_after(period_, [this] { rehome_tick(); });
    }
  }
}

void Rebalancer::note_release(int task_id) {
  const auto i = static_cast<std::size_t>(task_id);
  if (i < release_count_.size()) ++release_count_[i];
}

void Rebalancer::on_pressure(int gpu) {
  // One scan per GPU may be pending at a time: under saturation the guard
  // trips on every shed release, and a scan per trip would only re-walk an
  // unchanged queue.
  const auto i = static_cast<std::size_t>(gpu);
  if (i >= scan_pending_.size()) scan_pending_.resize(i + 1, 0);
  if (scan_pending_[i]) return;
  scan_pending_[i] = 1;
  // The scan runs as its own event right after the triggering release, not
  // inside it: the router is mid-release() when the observer fires, and
  // simulator-event granularity is what keeps the steal schedule replayable.
  sim_.schedule_after(0, [this, gpu] {
    scan_pending_[static_cast<std::size_t>(gpu)] = 0;
    steal_scan(gpu);
  });
}

void Rebalancer::steal_scan(int victim) {
  ++steal_scans_;
  const auto jobs = fleet_.scheduler(victim).donatable_lp_jobs();
  if (jobs.empty()) return;
  const common::Time now = sim_.now();
  int taken = 0;
  for (const auto& j : jobs) {
    if (taken >= config_.max_steals_per_scan) break;
    // Thief: best-scoring placeable peer that holds the model hot (steals
    // never ship weights) and can still make the job's original deadline
    // from a standing start.
    int thief = -1;
    double best_score = std::numeric_limits<double>::infinity();
    for (int g = 0; g < fleet_.size(); ++g) {
      if (g == victim || !fleet_.placeable(g)) continue;
      if (!fleet_.model_hot(g, j.task_id)) continue;
      const double mret_us =
          fleet_.scheduler(g).task(j.task_id).mret().total_mret_us();
      if (now + common::from_us(mret_us) > j.absolute_deadline) continue;
      const double score = fleet_.placement_score(g);
      if (score < best_score) {
        best_score = score;
        thief = g;
      }
    }
    if (thief < 0) continue;
    // Release-then-revoke: a failed admission on the thief has no side
    // effects (report=false), so the job simply stays on the victim. Both
    // halves run inside this one event, so the claim is atomic.
    if (!fleet_.scheduler(victim).job_stealable(j.job_id)) continue;
    if (!fleet_.scheduler(thief).release_job(j.task_id, /*report=*/false,
                                             j.release)) {
      continue;
    }
    fleet_.scheduler(victim).revoke_job(j.job_id);
    ++steals_;
    ++taken;
    DARIS_LOG_INFO << "rebalance: t=" << common::to_us(now) << "us steal task "
                   << j.task_id << " job " << j.job_id << " gpu " << victim
                   << " -> " << thief;
    if (collector_) {
      collector_->on_steal(victim, thief);
      collector_->log_steal(now, victim, thief, j.task_id);
    }
  }
}

void Rebalancer::rehome_tick() {
  const common::Time now = sim_.now();
  demand_.sample_now(now);
  ++round_;
  rehome_round(now);
  if (now + period_ <= horizon_) {
    sim_.schedule_after(period_, [this] { rehome_tick(); });
  }
}

void Rebalancer::rehome_round(common::Time now) {
  const int n = fleet_.size();
  const int tasks = fleet_.task_count();
  const std::size_t samples = demand_.size();
  if (tasks == 0 || samples < 2) return;

  // Windowed demand: the oldest retained sample inside [now - window, now]
  // anchors the rate. Early rounds fall back to the full history so the
  // controller can act before a whole window has elapsed.
  std::size_t lo = 0;
  const common::Time window_start = now - common::from_sec(config_.window_s);
  while (lo + 1 < samples && demand_.stamp(lo) < window_start) ++lo;
  const double span_s = common::to_sec(now - demand_.stamp(lo));
  if (span_s <= 0.0) return;

  std::vector<double> load(static_cast<std::size_t>(tasks), 0.0);
  std::vector<int> kind(static_cast<std::size_t>(tasks), 0);
  double total = 0.0;
  for (int t = 0; t < tasks; ++t) {
    const double released =
        demand_.value(t, samples - 1) - demand_.value(t, lo);
    const double rate = released / span_s;  // jobs per second in the window
    load[static_cast<std::size_t>(t)] =
        rate * fleet_.model_of(t)->total_work();  // SM-us of work per second
    kind[static_cast<std::size_t>(t)] =
        static_cast<int>(fleet_.scheduler(0).task(t).spec().model);
    total += load[static_cast<std::size_t>(t)];
  }
  if (total <= 0.0) return;

  std::vector<double> scale(static_cast<std::size_t>(n), 0.0);
  double total_scale = 0.0;
  int avail = 0;
  for (int g = 0; g < n; ++g) {
    if (!fleet_.placeable(g)) continue;
    scale[static_cast<std::size_t>(g)] = fleet_.compute_scale(g);
    total_scale += scale[static_cast<std::size_t>(g)];
    ++avail;
  }
  if (avail < 2 || total_scale <= 0.0) return;

  // Hysteresis gate: fill = windowed load homed on a device over its fair
  // share (1.0 = perfectly fair). Only act when some device is carrying
  // more than `hysteresis` times its share — small imbalances are noise the
  // router's spillover already absorbs.
  std::vector<double> homed(static_cast<std::size_t>(n), 0.0);
  for (int t = 0; t < tasks; ++t) {
    const int h = fleet_.home_gpu(t);
    if (h >= 0 && h < n) {
      homed[static_cast<std::size_t>(h)] += load[static_cast<std::size_t>(t)];
    }
  }
  double max_fill = 0.0;
  for (int g = 0; g < n; ++g) {
    if (scale[static_cast<std::size_t>(g)] <= 0.0) continue;
    const double fair =
        std::max(1e-9, total * scale[static_cast<std::size_t>(g)] /
                           total_scale);
    max_fill = std::max(max_fill, homed[static_cast<std::size_t>(g)] / fair);
  }
  if (max_fill <= config_.hysteresis) return;

  const std::vector<int> target = pack_homes(load, kind, scale);

  // Candidate moves toward the packed assignment, heaviest first (stable
  // sort over ascending task id breaks ties deterministically), capped per
  // round, skipping tasks still in their dwell window.
  std::vector<int> cand;
  for (int t = 0; t < tasks; ++t) {
    if (target[static_cast<std::size_t>(t)] == fleet_.home_gpu(t)) continue;
    if (round_ - last_move_round_[static_cast<std::size_t>(t)] <
        config_.min_dwell_rounds) {
      continue;
    }
    cand.push_back(t);
  }
  std::stable_sort(cand.begin(), cand.end(), [&](int a, int b) {
    return load[static_cast<std::size_t>(a)] >
           load[static_cast<std::size_t>(b)];
  });
  int moved = 0;
  for (const int t : cand) {
    if (moved >= config_.max_moves_per_round) break;
    fleet_.rehome_task(t, target[static_cast<std::size_t>(t)],
                       metrics::EventCause::kDemandShift);
    last_move_round_[static_cast<std::size_t>(t)] = round_;
    ++rehomes_;
    ++moved;
  }
  if (moved > 0) ++rehome_rounds_;
}

}  // namespace daris::cluster
