// Placement front-end for a GPU fleet.
//
// Each released job is offered to one GPU: HP jobs to their home GPU (the
// device carrying their static Eq. 11 reservation — the paper's fixed HP
// context assignment, lifted one level), LP jobs to the GPU chosen by the
// routing policy. Before any placement the fleet admission controller sheds
// jobs no device can feasibly host (model fits no GPU's memory, or — for
// admission-tested classes — one job's utilisation exceeds every idle
// context), so hopeless jobs never bounce through migration retries.
//
// If the routed GPU's DARIS scheduler rejects the job (Eq. 12 failed on
// every context, or a backlog guard fired), the router offers it once to
// the best-scoring *peer* — cross-GPU migration. A migration to a device
// where the job's model is cold first ships the weights: the delivery is
// delayed by `weight_mb * transfer_us_per_mb` (FleetConfig), the transfer
// is recorded in RoutingCounters, and a successful transfer warms the model
// on the target so repeat migrations are free. The job is dropped only when
// the peer rejects it too (for delayed deliveries, at arrival time).
//
// In-flight transfers are first-class state: every delayed delivery sits in
// an id-ordered registry with its cancellable event handle. Two behaviours
// build on it:
//
//  - Transfer coalescing (RouterConfig::coalesce): a cold migration of a
//    model already being copied to the same peer *attaches* to the
//    in-flight copy — no duplicate bytes are charged, and the attached job
//    is delivered when the leading copy lands (leader first, so the model
//    is warm by then).
//  - Fault cancellation: when a device fails or drains, transfers still
//    headed to it are cancelled at the fault instant (the bytes are sunk;
//    the jobs are not) and each job is retargeted to the best placeable
//    peer or dropped — never delivered to a halted device. The router
//    registers this through Fleet::set_on_unplaceable.
//
// The router owns the fleet-level release/reject accounting (the schedulers
// run in silent mode so a retried job is not double-counted) and feeds
// per-GPU RoutingCounters in metrics. In-flight transfer deliveries are
// simulator events that reference the router: keep it alive while the
// simulator runs, as with the release drivers.
//
// docs/CLUSTER.md is the policy guide (when each policy wins, the
// skewed-demand failure mode, threshold semantics, rebalancing hooks).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "cluster/fleet.h"
#include "common/rng.h"
#include "common/time.h"
#include "metrics/collector.h"

namespace daris::cluster {

/// Placement policies for LP jobs (HP jobs always start at their home GPU).
enum class RoutingPolicy {
  kRoundRobin,        // cycle through GPUs regardless of load
  kLeastUtilization,  // GPU with the lowest placement score
  kPowerOfTwo,        // sample two GPUs, pick the better-scoring one
  kModelAffinity,     // the task's home GPU (same model => same weights hot)
  kHybrid,            // home GPU until its load crosses the spill threshold,
                      // then the best-scoring peer (affinity + spillover)
};

const char* routing_policy_name(RoutingPolicy p);

/// Synchronous disposition of one route attempt (release, retry, or hedge).
/// The resilience layer keys its retry/hedge decisions off this: kShed with
/// a retriable cause may be re-released after backoff; kPending means the
/// job rides an in-flight weight transfer and will admit or drop later (the
/// router does not call back — post-transfer drops are not retried, but they
/// stay in the conservation accounting as sheds).
struct RouteResult {
  enum class Status { kAdmitted, kShed, kPending };
  Status status = Status::kShed;
  /// Admitting device and job id (kAdmitted only).
  int gpu = -1;
  std::uint64_t job_id = 0;
  /// Shed reason (kShed only): kInfeasible / kBacklog / kPeerReject.
  metrics::EventCause cause = metrics::EventCause::kNone;
};

struct RouterConfig {
  RoutingPolicy policy = RoutingPolicy::kLeastUtilization;

  /// Hybrid only: spill away from the home GPU when its relative load
  /// (admitted utilisation over its Nc x Ns stream capacity,
  /// Fleet::relative_load) reaches this fraction.
  double spill_threshold = 0.75;

  /// Attach concurrent cold migrations of one model to the in-flight copy
  /// instead of shipping duplicate bytes. Off by default so existing runs
  /// stay byte-identical; cluster rebalancing turns it on.
  bool coalesce = false;

  std::uint64_t seed = 42;
};

class Router {
 public:
  Router(Fleet& fleet, const RouterConfig& config,
         metrics::Collector* collector);
  /// Convenience: default spill threshold.
  Router(Fleet& fleet, RoutingPolicy policy, std::uint64_t seed,
         metrics::Collector* collector);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  RoutingPolicy policy() const { return config_.policy; }

  /// Routes one released job of `task_id` (the drivers' ReleaseFn target).
  void release(int task_id);

  /// Routing body behind release(): places one job released at `released`
  /// (<= now; a retry passes the original release so the copy consumes real
  /// deadline slack) and reports the synchronous disposition. Every call
  /// counts one route attempt in the per-class conservation counters.
  RouteResult route_job(int task_id, common::Time released);

  /// Hedged second copy (cluster::ResiliencePolicy): directed placement on
  /// the best-scoring placeable peer other than `exclude_gpu` where the
  /// task's model is already hot — a hedge exists to beat a straggling
  /// primary, so shipping weights (or queueing behind a transfer) defeats
  /// it. Skips the fleet-wide backlog guard (the primary copy holds the
  /// backlog slot by design) but takes the peer scheduler's own admission
  /// test. Returns kShed with cause kNone — and touches no accounting —
  /// when no eligible peer exists.
  RouteResult route_hedge(int task_id, int exclude_gpu,
                          common::Time released);

  /// Jobs admitted by a peer after their routed GPU rejected them.
  std::uint64_t cross_gpu_migrations() const { return migrations_; }

  /// Jobs rejected by both the routed GPU and the offered peer, plus
  /// infeasible ones.
  std::uint64_t drops() const { return drops_; }

  /// Jobs shed by the fleet admission controller (subset of drops()).
  std::uint64_t infeasible_rejects() const { return infeasible_; }

  /// Cross-GPU weight transfers performed (cold-model migrations).
  std::uint64_t transfers() const { return transfers_; }
  double transferred_mb() const { return transferred_mb_; }

  /// Migrations that attached to an in-flight copy of their model instead
  /// of shipping it again, and the MB those attachments did not re-ship.
  std::uint64_t coalesced_transfers() const { return coalesced_; }
  double coalesced_mb_saved() const { return coalesced_mb_saved_; }

  /// In-flight transfers cancelled because their target failed or drained
  /// (each job was retargeted to a placeable peer or dropped).
  std::uint64_t transfer_cancels() const { return transfer_cancels_; }

  /// Migrations whose weight transfer is still in flight.
  std::uint64_t pending_transfers() const { return pending_transfers_; }

  // --- conservation accounting (Fleet::check_conservation) ----------------
  //
  // Always-on per-class tallies of every route attempt's fate: released ==
  // shed + pending + admitted holds router-internally at any instant, and
  // feeding them into the fleet check closes the loop against the
  // schedulers' own counters.

  /// Route attempts (releases + retries + hedges) of the class.
  std::uint64_t released_of(common::Priority p) const {
    return released_cls_[static_cast<std::size_t>(p)];
  }
  /// Synchronous + asynchronous sheds (infeasible, backlog, peer-reject,
  /// post-transfer drops) of the class.
  std::uint64_t shed_of(common::Priority p) const {
    return shed_cls_[static_cast<std::size_t>(p)];
  }
  /// Jobs of the class still riding an in-flight weight transfer.
  std::uint64_t pending_of(common::Priority p) const {
    return pending_cls_[static_cast<std::size_t>(p)];
  }

  /// Jobs shed after being routed to GPU g (any cause) — the circuit
  /// breaker's shed signal for the device.
  std::uint64_t shed_at(int g) const {
    const auto i = static_cast<std::size_t>(g);
    return i < shed_at_.size() ? shed_at_[i] : 0;
  }

  /// In-flight weight transfers headed for GPU g (telemetry gauge).
  int pending_transfers_to(int g) const {
    const auto i = static_cast<std::size_t>(g);
    return i < pending_to_.size() ? pending_to_[i] : 0;
  }

  /// Best-scoring placeable GPU other than `exclude` (-1 when none). Public
  /// so the rebalancer shares the router's notion of "best peer".
  int best_peer(int exclude) const;

  // --- rebalancing observers (cluster::Rebalancer) ------------------------
  //
  // Both default to unset and cost one branch per release when unset, so a
  // router without a rebalancer behaves byte-identically to one predating
  // these hooks.

  /// Called once per released job with its task id — the rebalancer's
  /// demand-window feed.
  void set_release_observer(std::function<void(int)> fn) {
    release_observer_ = std::move(fn);
  }

  /// Called with the routed GPU when the fleet-wide backlog guard sheds a
  /// job there — the work-stealing trigger.
  void set_pressure_observer(std::function<void(int)> fn) {
    pressure_observer_ = std::move(fn);
  }

 private:
  /// One delayed weight transfer (the job rides the copy). `leader` marks
  /// the record that owns the (peer, model) in-flight entry coalescing
  /// attaches to.
  struct PendingRec {
    int task = -1;
    int from = -1;
    int peer = -1;
    common::Time released = 0;
    common::Time arrive = 0;
    double mb = 0.0;
    bool leader = false;
    sim::EventHandle handle;
  };
  using CoalesceKey = std::pair<int, const dnn::CompiledModel*>;

  int pick(int task_id);
  /// Offers a rejected job to `peer`, shipping weights first when the model
  /// is cold there; `from` is the GPU that rejected it, `released` the
  /// job's original release time (deadlines anchor there, so a transfer
  /// consumes the job's slack). Returns the synchronous disposition
  /// (kPending when the job rides a queued transfer).
  RouteResult migrate(int task_id, int from, int peer, common::Time released);
  /// Transfer-completion half of migrate(): admit-or-drop on the target.
  RouteResult deliver(int task_id, int from, int peer, common::Time released);
  RouteResult drop(int task_id, int gpu, common::Time released,
                   metrics::EventCause cause = metrics::EventCause::kPeerReject);
  /// Registers a delayed delivery arriving at `arrive` and bumps the
  /// pending gauges. Returns the transfer id.
  std::uint64_t queue_delivery(int task_id, int from, int peer,
                               common::Time released, common::Time arrive,
                               double mb, bool leader);
  /// Delivery event body: pops the record and admits-or-drops the job.
  void complete_transfer(std::uint64_t id);
  /// Unwinds one pending record's gauges (and its coalesce entry when it is
  /// the leader). The record must already be out of `inflight_`.
  void finish_pending(const PendingRec& rec);
  /// Fleet on-unplaceable hook: cancels every transfer headed to g and
  /// retargets (or drops) the jobs riding them, in ascending transfer id
  /// order.
  void cancel_transfers_to(int g);
  /// Jobs of the task whose weight transfer is still in flight (registered
  /// in no scheduler yet, so the backlog guards must count them here).
  int pending_jobs(int task_id) const;
  void add_pending_job(int task_id, int delta);
  /// Charges one shed to the routed GPU's breaker signal (shed_at()).
  void note_shed_at(int gpu);

  Fleet& fleet_;
  RouterConfig config_;
  common::Rng rng_;
  metrics::Collector* collector_;
  int rr_next_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t infeasible_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t pending_transfers_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t transfer_cancels_ = 0;
  double transferred_mb_ = 0.0;
  double coalesced_mb_saved_ = 0.0;
  std::uint64_t released_cls_[2] = {0, 0};
  std::uint64_t shed_cls_[2] = {0, 0};
  std::uint64_t pending_cls_[2] = {0, 0};
  std::vector<std::uint64_t> shed_at_;  // sheds charged to the routed GPU
  std::vector<int> pending_jobs_;  // per task id
  std::vector<int> pending_to_;    // in-flight transfers per target GPU
  /// In-flight transfers by ascending id — the only iteration order any
  /// decision uses, so fault-time cancellation is deterministic.
  std::map<std::uint64_t, PendingRec> inflight_;
  /// (target GPU, model) -> leader transfer id. Pointer keys are safe here:
  /// the map is only ever probed/inserted/erased by exact key, never
  /// iterated for a decision, so address-dependent ordering cannot leak
  /// into behaviour.
  std::map<CoalesceKey, std::uint64_t> inflight_copy_;
  std::uint64_t next_transfer_id_ = 1;
  std::function<void(int)> release_observer_;
  std::function<void(int)> pressure_observer_;
};

}  // namespace daris::cluster
