// Load-balancing front-end for a GPU fleet.
//
// Each released job is offered to one GPU: HP jobs to their home GPU (the
// device carrying their static Eq. 11 reservation — the paper's fixed HP
// context assignment, lifted one level), LP jobs to the GPU chosen by the
// routing policy. If that GPU's DARIS scheduler rejects the job (Eq. 12
// failed on every context, or a backlog guard fired), the router offers it
// once to the least-loaded *peer* — cross-GPU migration — and only drops it
// when the peer rejects it too. The router owns the fleet-level
// release/reject accounting (the schedulers run in silent mode so a retried
// job is not double-counted) and feeds per-GPU RoutingCounters in metrics.
#pragma once

#include <cstdint>

#include "cluster/fleet.h"
#include "common/rng.h"
#include "metrics/collector.h"

namespace daris::cluster {

/// Placement policies for LP jobs (HP jobs always start at their home GPU).
enum class RoutingPolicy {
  kRoundRobin,        // cycle through GPUs regardless of load
  kLeastUtilization,  // GPU with the lowest admitted utilisation
  kPowerOfTwo,        // sample two GPUs, pick the less loaded one
  kModelAffinity,     // the task's home GPU (same model => same weights hot)
};

const char* routing_policy_name(RoutingPolicy p);

class Router {
 public:
  Router(Fleet& fleet, RoutingPolicy policy, std::uint64_t seed,
         metrics::Collector* collector);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  RoutingPolicy policy() const { return policy_; }

  /// Routes one released job of `task_id` (the drivers' ReleaseFn target).
  void release(int task_id);

  /// Jobs admitted by a peer after their routed GPU rejected them.
  std::uint64_t cross_gpu_migrations() const { return migrations_; }

  /// Jobs rejected by both the routed GPU and the offered peer.
  std::uint64_t drops() const { return drops_; }

 private:
  int pick(int task_id);
  /// Least-loaded GPU other than `exclude` (-1 when the fleet has one GPU).
  int least_loaded_peer(int exclude) const;

  Fleet& fleet_;
  RoutingPolicy policy_;
  common::Rng rng_;
  metrics::Collector* collector_;
  int rr_next_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace daris::cluster
