// Placement front-end for a GPU fleet.
//
// Each released job is offered to one GPU: HP jobs to their home GPU (the
// device carrying their static Eq. 11 reservation — the paper's fixed HP
// context assignment, lifted one level), LP jobs to the GPU chosen by the
// routing policy. Before any placement the fleet admission controller sheds
// jobs no device can feasibly host (model fits no GPU's memory, or — for
// admission-tested classes — one job's utilisation exceeds every idle
// context), so hopeless jobs never bounce through migration retries.
//
// If the routed GPU's DARIS scheduler rejects the job (Eq. 12 failed on
// every context, or a backlog guard fired), the router offers it once to
// the best-scoring *peer* — cross-GPU migration. A migration to a device
// where the job's model is cold first ships the weights: the delivery is
// delayed by `weight_mb * transfer_us_per_mb` (FleetConfig), the transfer
// is recorded in RoutingCounters, and a successful transfer warms the model
// on the target so repeat migrations are free. The job is dropped only when
// the peer rejects it too (for delayed deliveries, at arrival time).
//
// The router owns the fleet-level release/reject accounting (the schedulers
// run in silent mode so a retried job is not double-counted) and feeds
// per-GPU RoutingCounters in metrics. In-flight transfer deliveries are
// simulator events that reference the router: keep it alive while the
// simulator runs, as with the release drivers.
//
// docs/CLUSTER.md is the policy guide (when each policy wins, the
// skewed-demand failure mode, threshold semantics).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/fleet.h"
#include "common/rng.h"
#include "common/time.h"
#include "metrics/collector.h"

namespace daris::cluster {

/// Placement policies for LP jobs (HP jobs always start at their home GPU).
enum class RoutingPolicy {
  kRoundRobin,        // cycle through GPUs regardless of load
  kLeastUtilization,  // GPU with the lowest placement score
  kPowerOfTwo,        // sample two GPUs, pick the better-scoring one
  kModelAffinity,     // the task's home GPU (same model => same weights hot)
  kHybrid,            // home GPU until its load crosses the spill threshold,
                      // then the best-scoring peer (affinity + spillover)
};

const char* routing_policy_name(RoutingPolicy p);

struct RouterConfig {
  RoutingPolicy policy = RoutingPolicy::kLeastUtilization;

  /// Hybrid only: spill away from the home GPU when its relative load
  /// (admitted utilisation over its Nc x Ns stream capacity,
  /// Fleet::relative_load) reaches this fraction.
  double spill_threshold = 0.75;

  std::uint64_t seed = 42;
};

class Router {
 public:
  Router(Fleet& fleet, const RouterConfig& config,
         metrics::Collector* collector);
  /// Convenience: default spill threshold.
  Router(Fleet& fleet, RoutingPolicy policy, std::uint64_t seed,
         metrics::Collector* collector);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  RoutingPolicy policy() const { return config_.policy; }

  /// Routes one released job of `task_id` (the drivers' ReleaseFn target).
  void release(int task_id);

  /// Jobs admitted by a peer after their routed GPU rejected them.
  std::uint64_t cross_gpu_migrations() const { return migrations_; }

  /// Jobs rejected by both the routed GPU and the offered peer, plus
  /// infeasible ones.
  std::uint64_t drops() const { return drops_; }

  /// Jobs shed by the fleet admission controller (subset of drops()).
  std::uint64_t infeasible_rejects() const { return infeasible_; }

  /// Cross-GPU weight transfers performed (cold-model migrations).
  std::uint64_t transfers() const { return transfers_; }
  double transferred_mb() const { return transferred_mb_; }

  /// Migrations whose weight transfer is still in flight.
  std::uint64_t pending_transfers() const { return pending_transfers_; }

  /// In-flight weight transfers headed for GPU g (telemetry gauge).
  int pending_transfers_to(int g) const {
    const auto i = static_cast<std::size_t>(g);
    return i < pending_to_.size() ? pending_to_[i] : 0;
  }

 private:
  int pick(int task_id);
  /// Best-scoring GPU other than `exclude` (-1 when the fleet has one GPU).
  int best_peer(int exclude) const;
  /// Offers a rejected job to `peer`, shipping weights first when the model
  /// is cold there; `from` is the GPU that rejected it, `released` the
  /// job's original release time (deadlines anchor there, so a transfer
  /// consumes the job's slack).
  void migrate(int task_id, int from, int peer, common::Time released);
  /// Transfer-completion half of migrate(): admit-or-drop on the target.
  void deliver(int task_id, int from, int peer, common::Time released);
  void drop(int task_id, int gpu, common::Time released);
  /// Jobs of the task whose weight transfer is still in flight (registered
  /// in no scheduler yet, so the backlog guards must count them here).
  int pending_jobs(int task_id) const;
  void add_pending_job(int task_id, int delta);

  Fleet& fleet_;
  RouterConfig config_;
  common::Rng rng_;
  metrics::Collector* collector_;
  int rr_next_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t infeasible_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t pending_transfers_ = 0;
  double transferred_mb_ = 0.0;
  std::vector<int> pending_jobs_;  // per task id
  std::vector<int> pending_to_;    // in-flight transfers per target GPU
};

}  // namespace daris::cluster
