#include "cluster/resilience.h"

#include <algorithm>

#include "common/log.h"
#include "metrics/eventlog.h"

namespace daris::cluster {

using metrics::EventCause;

ResiliencePolicy::ResiliencePolicy(sim::Simulator& sim, Fleet& fleet,
                                   Router& router,
                                   const ResilienceConfig& config,
                                   metrics::Collector* collector)
    : sim_(sim),
      fleet_(fleet),
      router_(router),
      config_(config),
      collector_(collector),
      rng_(config.seed),
      hedge_poll_(common::from_sec(std::max(1e-6, config.hedge_poll_s))),
      breaker_period_(
          common::from_sec(std::max(1e-3, config.breaker_window_s))),
      breaker_cooldown_(
          common::from_sec(std::max(0.0, config.breaker_cooldown_s))) {}

void ResiliencePolicy::start(common::Time horizon) {
  if (!config_.enabled) return;
  horizon_ = horizon;
  if (config_.breaker) {
    breakers_.assign(static_cast<std::size_t>(fleet_.size()), BreakerRec{});
    sim_.schedule_after(breaker_period_, [this] { breaker_tick(); });
  }
}

void ResiliencePolicy::release(int task_id) {
  if (!config_.enabled) {
    router_.release(task_id);
    return;
  }
  ++first_attempts_;
  // First attempts fund the bucket; retries and hedges drain it. The cap
  // bounds how large a burst of sheds can be retried back-to-back.
  if (config_.budget_enabled) {
    tokens_ = std::min(config_.retry_budget_burst,
                       tokens_ + config_.retry_budget_ratio);
  }
  const common::Time released = sim_.now();
  const RouteResult r = router_.route_job(task_id, released);
  after_attempt(task_id, released, /*attempt=*/1, r);
}

const RetryPolicy& ResiliencePolicy::policy_for(int task_id) const {
  return fleet_.scheduler(0).task(task_id).spec().priority ==
                 common::Priority::kHigh
             ? config_.hp
             : config_.lp;
}

bool ResiliencePolicy::spend_token() {
  if (!config_.budget_enabled) return true;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void ResiliencePolicy::after_attempt(int task_id, common::Time released,
                                     int attempt, const RouteResult& r) {
  if (r.status == RouteResult::Status::kAdmitted) {
    if (attempt > 1) ++retry_admits_;
    arm_hedge(task_id, released, r);
    return;
  }
  // A job riding an in-flight weight transfer admits or drops later; the
  // router does not call back, so post-transfer drops are not retried (they
  // stay counted as sheds in the conservation accounting).
  if (r.status == RouteResult::Status::kPending) return;
  // Only guard and peer-rejection sheds are retriable: an infeasible job can
  // never be hosted, and retrying it would only drain the budget.
  if (r.cause != EventCause::kBacklog && r.cause != EventCause::kPeerReject) {
    return;
  }
  const RetryPolicy& pol = policy_for(task_id);
  if (pol.backoff == RetryPolicy::Backoff::kNone) return;
  if (attempt >= pol.max_attempts) {
    ++abandoned_attempts_;
    if (collector_) {
      collector_->log_retry(sim_.now(), -1, task_id,
                            EventCause::kMaxAttempts, attempt);
    }
    return;
  }
  schedule_retry(task_id, released, attempt);
}

common::Duration ResiliencePolicy::backoff_delay(const RetryPolicy& pol,
                                                 int attempt) {
  double us = pol.base_delay_us;
  if (pol.backoff == RetryPolicy::Backoff::kExponential) {
    for (int i = 1; i < attempt; ++i) {
      us = std::min(us * 2.0, pol.max_delay_us);
    }
  }
  us = std::min(us, pol.max_delay_us);
  if (pol.jitter > 0.0) {
    us *= rng_.uniform(1.0 - pol.jitter, 1.0 + pol.jitter);
  }
  return common::from_us(std::max(0.0, us));
}

void ResiliencePolicy::schedule_retry(int task_id, common::Time released,
                                      int attempt) {
  const common::Duration delay = backoff_delay(policy_for(task_id), attempt);
  sim_.schedule_after(delay, [this, task_id, released, attempt] {
    fire_retry(task_id, released, attempt + 1);
  });
}

void ResiliencePolicy::fire_retry(int task_id, common::Time released,
                                  int attempt) {
  const common::Time now = sim_.now();
  const auto& spec = fleet_.scheduler(0).task(task_id).spec();
  // Deadline re-derivation: the retry keeps the ORIGINAL release time, so
  // the remaining slack is real. A retry whose deadline already passed is
  // abandoned — releasing it would only burn GPU time on a guaranteed miss.
  if (now >= released + spec.relative_deadline) {
    ++abandoned_expired_;
    if (collector_) {
      collector_->log_retry(now, -1, task_id, EventCause::kExpired, attempt);
    }
    return;
  }
  if (!spend_token()) {
    ++abandoned_budget_;
    if (collector_) {
      collector_->log_retry(now, -1, task_id, EventCause::kBudgetExhausted,
                            attempt);
    }
    return;
  }
  ++retries_;
  if (collector_) {
    collector_->log_retry(now, -1, task_id, EventCause::kBackoff, attempt);
  }
  const RouteResult r = router_.route_job(task_id, released);
  after_attempt(task_id, released, attempt, r);
}

void ResiliencePolicy::arm_hedge(int task_id, common::Time released,
                                 const RouteResult& r) {
  if (!config_.hedge) return;
  const auto& spec = fleet_.scheduler(0).task(task_id).spec();
  if (spec.priority != common::Priority::kLow) return;
  // Trigger delay: the FLEET's best recent q-th percentile LP response — the
  // minimum over placeable devices with warm rings. Using the routed
  // device's own percentile would defeat the point: a straggler's self-view
  // is exactly as inflated as the tail we are trying to cut, so it would
  // keep postponing the hedge until the rescue can no longer win. The
  // fleet-wide floor means "hedge once the job has taken longer than a
  // healthy peer routinely needs"; on a uniform healthy fleet it matches
  // each device's own percentile. A deadline fraction covers cold rings, and
  // the timer re-checks liveness and budget when it fires.
  double delay_us = 0.0;
  for (int g = 0; g < fleet_.size(); ++g) {
    if (!fleet_.placeable(g)) continue;
    const rt::Scheduler& sch = fleet_.scheduler(g);
    if (sch.response_samples(common::Priority::kLow) <
        config_.hedge_min_samples) {
      continue;
    }
    const double p = sch.response_percentile_us(common::Priority::kLow,
                                                config_.hedge_percentile);
    if (delay_us == 0.0 || p < delay_us) delay_us = p;
  }
  if (delay_us == 0.0) {
    delay_us =
        common::to_us(spec.relative_deadline) * config_.hedge_fallback_frac;
  }
  const int gpu = r.gpu;
  const std::uint64_t job = r.job_id;
  sim_.schedule_after(common::from_us(std::max(0.0, delay_us)),
                      [this, task_id, released, gpu, job] {
                        fire_hedge(task_id, released, gpu, job);
                      });
}

void ResiliencePolicy::fire_hedge(int task_id, common::Time released,
                                  int primary_gpu,
                                  std::uint64_t primary_job) {
  const common::Time now = sim_.now();
  // Primary already settled (finished, or shed with its failed device):
  // nothing left to beat.
  if (!fleet_.scheduler(primary_gpu).job_in_flight(primary_job)) return;
  const auto& spec = fleet_.scheduler(0).task(task_id).spec();
  if (now >= released + spec.relative_deadline) return;  // no slack to rescue
  if (!spend_token()) {
    ++abandoned_budget_;
    if (collector_) {
      collector_->log_retry(now, primary_gpu, task_id,
                            EventCause::kBudgetExhausted, 1);
    }
    return;
  }
  const RouteResult h = router_.route_hedge(task_id, primary_gpu, released);
  if (h.status != RouteResult::Status::kAdmitted) return;
  ++hedges_;
  DARIS_LOG_INFO << "resilience: t=" << common::to_us(now) << "us hedge task "
                 << task_id << " gpu " << primary_gpu << " -> " << h.gpu;
  if (collector_) {
    collector_->log_hedge(now, primary_gpu, h.gpu, task_id,
                          EventCause::kHedgeLaunch);
  }
  const std::uint64_t id = next_pair_id_++;
  HedgePair p;
  p.task = task_id;
  p.primary_gpu = primary_gpu;
  p.hedge_gpu = h.gpu;
  p.primary_job = primary_job;
  p.hedge_job = h.job_id;
  p.released = released;
  pairs_.emplace(id, p);
  sim_.schedule_after(hedge_poll_, [this, id] { poll_pair(id); });
}

void ResiliencePolicy::poll_pair(std::uint64_t pair_id) {
  const auto it = pairs_.find(pair_id);
  if (it == pairs_.end()) return;
  const HedgePair p = it->second;
  const bool primary_live =
      fleet_.scheduler(p.primary_gpu).job_in_flight(p.primary_job);
  const bool hedge_live =
      fleet_.scheduler(p.hedge_gpu).job_in_flight(p.hedge_job);
  if (primary_live && hedge_live) {
    sim_.schedule_after(hedge_poll_, [this, pair_id] { poll_pair(pair_id); });
    return;
  }
  pairs_.erase(it);
  const common::Time now = sim_.now();
  // The first copy to finish defines what the CLIENT saw, whatever happens
  // to the loser; detection is at poll granularity.
  hedge_client_ms_.push_back(common::to_ms(now - p.released));
  if (!primary_live && !hedge_live) {
    // Both settled within one poll period: the copies raced to completion
    // and the duplicate work was spent either way.
    ++hedge_waste_;
    return;
  }
  // First-finish-wins: revoke the losing copy while it is still unstarted
  // (the scheduler refuses once GPU-side state exists — that loser runs to
  // completion and is counted as waste).
  const int loser_gpu = primary_live ? p.primary_gpu : p.hedge_gpu;
  const std::uint64_t loser_job = primary_live ? p.primary_job : p.hedge_job;
  if (primary_live) {
    ++hedge_wins_;
    if (collector_) {
      collector_->log_hedge(now, p.primary_gpu, p.hedge_gpu, p.task,
                            EventCause::kHedgeWin);
    }
  }
  if (fleet_.scheduler(loser_gpu).revoke_job(loser_job)) {
    ++hedge_cancels_;
    if (collector_) {
      collector_->log_hedge(now, p.primary_gpu, p.hedge_gpu, p.task,
                            EventCause::kHedgeCancel);
    }
  } else {
    ++hedge_waste_;
    if (primary_live) {
      // The hedge won inside the deadline but the started primary could not
      // be revoked: follow it to completion to learn whether the histogram
      // is about to record a miss the client never saw.
      const auto& spec = fleet_.scheduler(0).task(p.task).spec();
      const common::Time deadline = p.released + spec.relative_deadline;
      if (now <= deadline) watch_loser(loser_gpu, loser_job, deadline);
    }
  }
}

void ResiliencePolicy::watch_loser(int gpu, std::uint64_t job,
                                   common::Time deadline) {
  if (fleet_.scheduler(gpu).job_in_flight(job)) {
    sim_.schedule_after(hedge_poll_,
                        [this, gpu, job, deadline] {
                          watch_loser(gpu, job, deadline);
                        });
    return;
  }
  // Settlement is observed up to one poll period late, so only count the
  // miss once it clears a full period — a lower bound on rescued misses.
  if (sim_.now() > deadline + hedge_poll_) ++hedge_rescued_misses_;
}

void ResiliencePolicy::breaker_tick() {
  const common::Time now = sim_.now();
  if (breakers_.size() < static_cast<std::size_t>(fleet_.size())) {
    breakers_.resize(static_cast<std::size_t>(fleet_.size()));
  }
  for (int g = 0; g < fleet_.size(); ++g) evaluate_breaker(g, now);
  if (now < horizon_) {
    sim_.schedule_after(breaker_period_, [this] { breaker_tick(); });
  }
}

void ResiliencePolicy::evaluate_breaker(int g, common::Time now) {
  BreakerRec& b = breakers_[static_cast<std::size_t>(g)];
  const rt::Scheduler& sch = fleet_.scheduler(g);
  const std::uint64_t done = sch.jobs_completed();
  const std::uint64_t missed = sch.jobs_missed();
  const std::uint64_t shed = router_.shed_at(g);
  const std::uint64_t d_done = done - b.last_done;
  const std::uint64_t d_missed = missed - b.last_missed;
  const std::uint64_t d_shed = shed - b.last_shed;
  b.last_done = done;
  b.last_missed = missed;
  b.last_shed = shed;
  // Failed/draining devices are already unplaceable; the breaker stands
  // aside (and clears a stale mask) so recovery stays with the health state
  // machine.
  if (fleet_.health(g) != GpuHealth::kHealthy) {
    if (b.state != BreakerState::kClosed) {
      b.state = BreakerState::kClosed;
      fleet_.set_breaker_open(g, false);
    }
    return;
  }
  const std::uint64_t volume = d_done + d_shed;
  const double rate =
      volume == 0 ? 0.0
                  : static_cast<double>(d_missed + d_shed) /
                        static_cast<double>(volume);
  // Never mask the last exits: an open breaker only helps when traffic has
  // somewhere better to go. A global overload pushes EVERY device's window
  // rate past the threshold — masking devices then just amputates capacity
  // (the retry-storm scenario documents this failure mode) — so opening
  // requires at least two other placeable devices to absorb the traffic.
  const bool may_open =
      fleet_.placeable_count() - (fleet_.placeable(g) ? 1 : 0) >= 2;
  auto open = [&] {
    b.state = BreakerState::kOpen;
    b.opened_at = now;
    fleet_.set_breaker_open(g, true);
    ++breaker_opens_;
    DARIS_LOG_INFO << "resilience: t=" << common::to_us(now) << "us gpu " << g
                   << " breaker OPEN (rate " << rate << ")";
    if (collector_) {
      collector_->log_breaker(now, g, EventCause::kBreakerOpen, rate);
    }
  };
  switch (b.state) {
    case BreakerState::kClosed:
      if (volume >= static_cast<std::uint64_t>(
                        std::max(1, config_.breaker_min_volume)) &&
          rate >= config_.breaker_open_threshold && may_open) {
        open();
      }
      break;
    case BreakerState::kOpen:
      if (now - b.opened_at >= breaker_cooldown_) {
        b.state = BreakerState::kHalfOpen;
        fleet_.set_breaker_open(g, false);
        if (collector_) {
          collector_->log_breaker(now, g, EventCause::kBreakerHalfOpen, rate);
        }
      }
      break;
    case BreakerState::kHalfOpen:
      if (volume == 0) break;  // no probe traffic yet; keep waiting
      if (rate <= config_.breaker_close_threshold) {
        b.state = BreakerState::kClosed;
        ++breaker_closes_;
        DARIS_LOG_INFO << "resilience: t=" << common::to_us(now) << "us gpu "
                       << g << " breaker CLOSED (rate " << rate << ")";
        if (collector_) {
          collector_->log_breaker(now, g, EventCause::kBreakerClose, rate);
        }
      } else if (may_open) {
        open();
      }
      break;
  }
}

double ResiliencePolicy::hedge_client_percentile_ms(double q) const {
  if (hedge_client_ms_.empty()) return 0.0;
  std::vector<double> sorted = hedge_client_ms_;
  std::sort(sorted.begin(), sorted.end());
  const double frac = std::min(100.0, std::max(0.0, q)) / 100.0;
  const auto idx = static_cast<std::size_t>(
      frac * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[idx];
}

int ResiliencePolicy::breakers_open_now() const {
  int n = 0;
  for (const auto& b : breakers_) {
    n += b.state == BreakerState::kOpen ? 1 : 0;
  }
  return n;
}

}  // namespace daris::cluster
