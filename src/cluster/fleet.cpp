#include "cluster/fleet.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/log.h"
#include "common/rng.h"
#include "metrics/eventlog.h"
#include "sim/sharded.h"

namespace daris::cluster {

gpusim::GpuSpec GpuNodeSpec::resolved() const {
  gpusim::GpuSpec spec = base;
  spec.sm_count = std::max(
      1, static_cast<int>(std::lround(base.sm_count * compute_scale)));
  spec.mem_bandwidth = base.mem_bandwidth * compute_scale;
  return spec;
}

Fleet::Fleet(sim::Simulator& sim, const FleetConfig& config,
             metrics::Collector* collector)
    : sim_(sim),
      collector_(collector),
      seed_rng_(config.seed),
      transfer_us_per_mb_(std::max(0.0, config.transfer_us_per_mb)) {
  init(config);
}

Fleet::Fleet(sim::ShardedSimulator& sharded, const FleetConfig& config,
             metrics::Collector* collector)
    : sim_(sharded.control()),
      sharded_(&sharded),
      collector_(collector),
      seed_rng_(config.seed),
      transfer_us_per_mb_(std::max(0.0, config.transfer_us_per_mb)) {
  init(config);
  assert(sharded.device_shards() == 0 || sharded.device_shards() == size());
}

sim::Simulator& Fleet::device_sim(int g) {
  return sharded_ ? sharded_->device_sim(g) : sim_;
}

void Fleet::init(const FleetConfig& config) {
  if (config.nodes.empty()) {
    const int n = std::max(1, config.num_gpus);
    nodes_.reserve(static_cast<std::size_t>(n));
    for (int g = 0; g < n; ++g) {
      GpuNodeSpec node;
      node.base = config.gpu;
      nodes_.push_back(node);
    }
  } else {
    nodes_ = config.nodes;
  }
  sched_cfg_ = config.sched;
  sched_cfg_.canonicalize();
  // Per-GPU jitter seeds derive from the fleet seed through the same
  // generator (a member, so add_gpu_now continues the sequence), so a fleet
  // run is a pure function of (config, seed, fault schedule).
  const std::size_t n = nodes_.size();
  gpus_.reserve(n);
  schedulers_.reserve(n);
  health_.assign(n, GpuHealth::kHealthy);
  breaker_open_.assign(n, 0);
  hot_models_.assign(n, {});
  memory_used_mb_.assign(n, 0.0);
  for (std::size_t g = 0; g < n; ++g) {
    sim::Simulator& dev_sim = device_sim(static_cast<int>(g));
    gpus_.push_back(std::make_unique<gpusim::Gpu>(
        dev_sim, nodes_[g].resolved(), seed_rng_.next_u64()));
    schedulers_.push_back(std::make_unique<rt::Scheduler>(
        dev_sim, *gpus_.back(), sched_cfg_, collector_));
    schedulers_.back()->set_device_id(static_cast<int>(g));
  }
}

int Fleet::add_task(const rt::TaskSpec& spec, const dnn::CompiledModel* model,
                    int home_gpu) {
  assert(home_gpu >= 0 && home_gpu < size());
  int id = -1;
  for (int g = 0; g < size(); ++g) {
    id = scheduler(g).add_task(spec, model);
    scheduler(g).set_task_resident(id, g == home_gpu);
  }
  home_.push_back(home_gpu);
  model_of_task_.push_back(model);
  assert(id + 1 == task_count());
  // Pin the model hot on the home device while capacity allows; a model too
  // large (or arriving once the device is full) stays cold and its migrated
  // jobs pay the transfer.
  warm_model(home_gpu, id);
  return id;
}

void Fleet::set_afet(int task_id, const std::vector<double>& per_stage_us) {
  for (int g = 0; g < size(); ++g) {
    scheduler(g).set_afet(task_id, per_stage_us);
  }
}

void Fleet::set_afet(int task_id, int g,
                     const std::vector<double>& per_stage_us) {
  scheduler(g).set_afet(task_id, per_stage_us);
}

void Fleet::run_offline_phase() {
  for (int g = 0; g < size(); ++g) {
    scheduler(g).run_offline_phase();
  }
}

double Fleet::relative_load(int g) const {
  const int streams = scheduler(g).config().parallelism();
  return load(g) / static_cast<double>(std::max(1, streams));
}

double Fleet::transfer_mb(int task_id) const {
  return model_of_task_[static_cast<std::size_t>(task_id)]->weight_mb;
}

bool Fleet::model_hot(int g, int task_id) const {
  const dnn::CompiledModel* model =
      model_of_task_[static_cast<std::size_t>(task_id)];
  const auto& hot = hot_models_[static_cast<std::size_t>(g)];
  return std::find(hot.begin(), hot.end(), model) != hot.end();
}

bool Fleet::warm_model(int g, int task_id) {
  if (model_hot(g, task_id)) return true;
  const dnn::CompiledModel* model =
      model_of_task_[static_cast<std::size_t>(task_id)];
  auto& used = memory_used_mb_[static_cast<std::size_t>(g)];
  if (used + model->weight_mb > node(g).memory_mb) return false;
  hot_models_[static_cast<std::size_t>(g)].push_back(model);
  used += model->weight_mb;
  return true;
}

bool Fleet::feasible(int task_id) const {
  const rt::Scheduler& home_sched = scheduler(0);
  const rt::Task& t0 = home_sched.task(task_id);
  const bool tested = t0.spec().priority == common::Priority::kLow
                          ? home_sched.config().lp_admission
                          : home_sched.config().hp_admission;
  const dnn::CompiledModel* model =
      model_of_task_[static_cast<std::size_t>(task_id)];
  for (int g = 0; g < size(); ++g) {
    if (!placeable(g)) continue;  // failed/draining devices host nothing new
    // Memory: hot already, or the device could still pin it.
    const bool fits_memory =
        model_hot(g, task_id) ||
        memory_used_mb(g) + model->weight_mb <= node(g).memory_mb;
    if (!fits_memory) continue;
    if (!tested) return true;
    // Utilisation: one job must fit an idle context of this device (the
    // best case of Eq. 12, with no HP reservation and no active LP load).
    const double util = scheduler(g).task(task_id).utilization();
    const int streams = scheduler(g).config().streams_per_context;
    if (util < static_cast<double>(streams)) return true;
  }
  return false;
}

int Fleet::active_jobs(int task_id) const {
  int total = 0;
  for (int g = 0; g < size(); ++g) {
    total += scheduler(g).task(task_id).active_jobs;
  }
  return total;
}

std::uint64_t Fleet::intra_gpu_migrations() const {
  std::uint64_t total = 0;
  for (int g = 0; g < size(); ++g) total += scheduler(g).migrations();
  return total;
}

int Fleet::placeable_count() const {
  int n = 0;
  for (int g = 0; g < size(); ++g) n += placeable(g) ? 1 : 0;
  return n;
}

Fleet::ConservationReport Fleet::check_conservation(
    const ConservationInput& in) const {
  ConservationReport rep;
  auto fail = [&rep](std::string why) {
    if (rep.ok) {
      rep.ok = false;
      rep.detail = std::move(why);
    }
  };
  const common::Priority classes[2] = {common::Priority::kHigh,
                                       common::Priority::kLow};
  for (int c = 0; c < 2; ++c) {
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t revoked = 0;
    std::uint64_t in_flight = 0;
    for (int g = 0; g < size(); ++g) {
      const auto& sc = scheduler(g).class_counters(classes[c]);
      const std::uint64_t flight =
          scheduler(g).jobs_in_flight_of(classes[c]);
      // Per-device identity first: a violation here means a scheduler path
      // lost track of a job regardless of what the router did.
      if (sc.admitted != sc.completed + sc.failed + sc.revoked + flight) {
        fail("scheduler " + std::to_string(g) + " class " +
             std::to_string(c) + ": admitted " + std::to_string(sc.admitted) +
             " != completed " + std::to_string(sc.completed) + " + failed " +
             std::to_string(sc.failed) + " + revoked " +
             std::to_string(sc.revoked) + " + in-flight " +
             std::to_string(flight));
      }
      completed += sc.completed;
      failed += sc.failed;
      revoked += sc.revoked;
      in_flight += flight;
    }
    // Steals only move LP jobs; each one re-admits on the thief (one extra
    // admit, one extra revoke, no new route attempt), so they cancel out of
    // the class-wide identity. Every remaining revoke is a cancelled hedge
    // copy — its surviving twin already accounts for the route attempt.
    const std::uint64_t steals =
        classes[c] == common::Priority::kLow ? in.steals : 0;
    if (revoked < steals) {
      fail("class " + std::to_string(c) + ": steals " +
           std::to_string(steals) + " exceed revokes " +
           std::to_string(revoked));
      continue;
    }
    const std::uint64_t accounted = in.shed[c] + in.pending[c] + completed +
                                    failed + in_flight + (revoked - steals);
    rep.released[c] = in.released[c];
    rep.accounted[c] = accounted;
    if (in.released[c] != accounted) {
      fail("class " + std::to_string(c) + ": released " +
           std::to_string(in.released[c]) + " != shed " +
           std::to_string(in.shed[c]) + " + pending " +
           std::to_string(in.pending[c]) + " + completed " +
           std::to_string(completed) + " + failed " + std::to_string(failed) +
           " + in-flight " + std::to_string(in_flight) +
           " + cancelled-hedges " + std::to_string(revoked - steals));
    }
  }
  return rep;
}

void Fleet::rehome_tasks_from(int g) {
  // The new home is the placeable device with the lowest placement score
  // (ties to the lowest index) — the router's best_peer signal. The score
  // reads *active* utilisation, which rehoming does not change, so one
  // lookup serves every task and the result is order-independent.
  int best = -1;
  double best_score = std::numeric_limits<double>::infinity();
  for (int p = 0; p < size(); ++p) {
    if (!placeable(p)) continue;
    const double score = placement_score(p);
    if (score < best_score) {
      best_score = score;
      best = p;
    }
  }
  if (best < 0) return;  // nowhere to go: feasible() sheds the releases
  for (int t = 0; t < task_count(); ++t) {
    if (home_[static_cast<std::size_t>(t)] != g) continue;
    rehome_task(t, best);
  }
}

void Fleet::rehome_task(int task_id, int to, metrics::EventCause cause) {
  const int from = home_[static_cast<std::size_t>(task_id)];
  if (from == to) return;
  scheduler(from).set_task_resident(task_id, false);
  scheduler(to).set_task_resident(task_id, true);
  home_[static_cast<std::size_t>(task_id)] = to;
  warm_model(to, task_id);
  DARIS_LOG_INFO << "fleet: t=" << common::to_us(sim_.now())
                 << "us rehome task " << task_id << " gpu " << from << " -> "
                 << to;
  if (collector_) {
    collector_->log_rehome(sim_.now(), from, to, task_id, cause);
  }
}

std::size_t Fleet::fail_gpu_now(int g) {
  auto& h = health_[static_cast<std::size_t>(g)];
  if (h == GpuHealth::kFailed) return 0;
  h = GpuHealth::kFailed;
  // Shed the scheduler's bookkeeping first (each lost job becomes a missed
  // finish), then silence the device; the order is immaterial for
  // correctness — dropped stage callbacks no-op through the jobs_ guard —
  // but shedding first reports the losses before the device goes dark.
  const std::size_t lost = scheduler(g).fail_all_jobs();
  jobs_lost_ += lost;
  gpu(g).halt();
  DARIS_LOG_INFO << "fleet: t=" << common::to_us(sim_.now()) << "us gpu " << g
                 << " fail-stop, " << lost << " in-flight jobs lost";
  if (collector_) {
    collector_->log_fault(sim_.now(), g, metrics::EventCause::kFailStop,
                          static_cast<double>(lost));
  }
  // Let the router cancel/retarget transfers still headed here before the
  // homes move (the retarget re-migration reads placement scores, which
  // rehoming does not change, but the hook must see the device already
  // unplaceable — health flipped above).
  if (on_unplaceable_) on_unplaceable_(g);
  rehome_tasks_from(g);
  return lost;
}

void Fleet::fail_gpu(int g, common::Time when) {
  sim_.schedule_at(when, [this, g] { fail_gpu_now(g); });
}

void Fleet::slow_gpu_now(int g, double factor) {
  assert(factor > 0.0);
  nodes_[static_cast<std::size_t>(g)].compute_scale *= factor;
  gpu(g).set_spec(nodes_[static_cast<std::size_t>(g)].resolved());
  DARIS_LOG_INFO << "fleet: t=" << common::to_us(sim_.now()) << "us gpu " << g
                 << " compute scale x" << factor << " -> "
                 << nodes_[static_cast<std::size_t>(g)].compute_scale;
  if (collector_) {
    collector_->log_fault(sim_.now(), g, metrics::EventCause::kStraggler,
                          factor);
  }
}

void Fleet::slow_gpu(int g, double factor, common::Time when) {
  sim_.schedule_at(when, [this, g, factor] { slow_gpu_now(g, factor); });
}

void Fleet::drain_gpu_now(int g) {
  auto& h = health_[static_cast<std::size_t>(g)];
  if (h != GpuHealth::kHealthy) return;  // failed stays failed
  h = GpuHealth::kDraining;
  DARIS_LOG_INFO << "fleet: t=" << common::to_us(sim_.now()) << "us gpu " << g
                 << " draining (finishes in-flight work, no new placements)";
  if (collector_) collector_->log_drain(sim_.now(), g);
  if (on_unplaceable_) on_unplaceable_(g);
  rehome_tasks_from(g);
}

void Fleet::drain_gpu(int g, common::Time when) {
  sim_.schedule_at(when, [this, g] { drain_gpu_now(g); });
}

int Fleet::add_gpu_now(const GpuNodeSpec& node) {
  const int g = size();
  nodes_.push_back(node);
  health_.push_back(GpuHealth::kHealthy);
  breaker_open_.push_back(0);
  hot_models_.emplace_back();
  memory_used_mb_.push_back(0.0);
  // Sharded fleets grow a fresh device shard (clock pre-advanced to the
  // fleet's now) so the new device's local events parallelise like every
  // other; add_gpu_now runs from a control-shard event, which is exactly
  // the phase add_shard() requires.
  if (sharded_ && sharded_->device_shards() > 0) {
    const int s = sharded_->add_shard();
    (void)s;
    assert(s == g);
  }
  sim::Simulator& dev_sim = device_sim(g);
  gpus_.push_back(std::make_unique<gpusim::Gpu>(dev_sim, node.resolved(),
                                                seed_rng_.next_u64()));
  schedulers_.push_back(std::make_unique<rt::Scheduler>(
      dev_sim, *gpus_.back(), sched_cfg_, collector_));
  schedulers_.back()->set_device_id(g);
  if (collector_ && collector_->gpu_count() > 0) {
    collector_->grow_gpu_count(g + 1);
  }
  if (collector_) collector_->grow_lanes(g + 1);
  // Register every logical task on the new device, non-resident (homes do
  // not move on scale-up; load reaches the device through routing). Task
  // ids line up with every other scheduler by construction.
  for (int t = 0; t < task_count(); ++t) {
    const int id = schedulers_.back()->add_task(
        scheduler(0).task(t).spec(),
        model_of_task_[static_cast<std::size_t>(t)]);
    (void)id;
    assert(id == t);
  }
  DARIS_LOG_INFO << "fleet: t=" << common::to_us(sim_.now()) << "us gpu " << g
                 << " added (scale-up), compute scale "
                 << node.compute_scale;
  if (collector_) {
    collector_->log_fault(sim_.now(), g, metrics::EventCause::kScaleUp,
                          node.compute_scale);
  }
  return g;
}

}  // namespace daris::cluster
