#include "cluster/fleet.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace daris::cluster {

gpusim::GpuSpec GpuNodeSpec::resolved() const {
  gpusim::GpuSpec spec = base;
  spec.sm_count = std::max(
      1, static_cast<int>(std::lround(base.sm_count * compute_scale)));
  spec.mem_bandwidth = base.mem_bandwidth * compute_scale;
  return spec;
}

Fleet::Fleet(sim::Simulator& sim, const FleetConfig& config,
             metrics::Collector* collector)
    : sim_(sim), transfer_us_per_mb_(std::max(0.0, config.transfer_us_per_mb)) {
  if (config.nodes.empty()) {
    const int n = std::max(1, config.num_gpus);
    nodes_.reserve(static_cast<std::size_t>(n));
    for (int g = 0; g < n; ++g) {
      GpuNodeSpec node;
      node.base = config.gpu;
      nodes_.push_back(node);
    }
  } else {
    nodes_ = config.nodes;
  }
  rt::SchedulerConfig sched_cfg = config.sched;
  sched_cfg.canonicalize();
  // Per-GPU jitter seeds derive from the fleet seed through the same
  // generator, so a fleet run is a pure function of (config, seed).
  common::Rng root(config.seed);
  const std::size_t n = nodes_.size();
  gpus_.reserve(n);
  schedulers_.reserve(n);
  hot_models_.assign(n, {});
  memory_used_mb_.assign(n, 0.0);
  for (std::size_t g = 0; g < n; ++g) {
    gpus_.push_back(std::make_unique<gpusim::Gpu>(sim_, nodes_[g].resolved(),
                                                  root.next_u64()));
    schedulers_.push_back(std::make_unique<rt::Scheduler>(
        sim_, *gpus_.back(), sched_cfg, collector));
    schedulers_.back()->set_device_id(static_cast<int>(g));
  }
}

int Fleet::add_task(const rt::TaskSpec& spec, const dnn::CompiledModel* model,
                    int home_gpu) {
  assert(home_gpu >= 0 && home_gpu < size());
  int id = -1;
  for (int g = 0; g < size(); ++g) {
    id = scheduler(g).add_task(spec, model);
    scheduler(g).set_task_resident(id, g == home_gpu);
  }
  home_.push_back(home_gpu);
  model_of_task_.push_back(model);
  assert(id + 1 == task_count());
  // Pin the model hot on the home device while capacity allows; a model too
  // large (or arriving once the device is full) stays cold and its migrated
  // jobs pay the transfer.
  warm_model(home_gpu, id);
  return id;
}

void Fleet::set_afet(int task_id, const std::vector<double>& per_stage_us) {
  for (int g = 0; g < size(); ++g) {
    scheduler(g).set_afet(task_id, per_stage_us);
  }
}

void Fleet::set_afet(int task_id, int g,
                     const std::vector<double>& per_stage_us) {
  scheduler(g).set_afet(task_id, per_stage_us);
}

void Fleet::run_offline_phase() {
  for (int g = 0; g < size(); ++g) {
    scheduler(g).run_offline_phase();
  }
}

double Fleet::relative_load(int g) const {
  const int streams = scheduler(g).config().parallelism();
  return load(g) / static_cast<double>(std::max(1, streams));
}

double Fleet::transfer_mb(int task_id) const {
  return model_of_task_[static_cast<std::size_t>(task_id)]->weight_mb;
}

bool Fleet::model_hot(int g, int task_id) const {
  const dnn::CompiledModel* model =
      model_of_task_[static_cast<std::size_t>(task_id)];
  const auto& hot = hot_models_[static_cast<std::size_t>(g)];
  return std::find(hot.begin(), hot.end(), model) != hot.end();
}

bool Fleet::warm_model(int g, int task_id) {
  if (model_hot(g, task_id)) return true;
  const dnn::CompiledModel* model =
      model_of_task_[static_cast<std::size_t>(task_id)];
  auto& used = memory_used_mb_[static_cast<std::size_t>(g)];
  if (used + model->weight_mb > node(g).memory_mb) return false;
  hot_models_[static_cast<std::size_t>(g)].push_back(model);
  used += model->weight_mb;
  return true;
}

bool Fleet::feasible(int task_id) const {
  const rt::Scheduler& home_sched = scheduler(0);
  const rt::Task& t0 = home_sched.task(task_id);
  const bool tested = t0.spec().priority == common::Priority::kLow
                          ? home_sched.config().lp_admission
                          : home_sched.config().hp_admission;
  const dnn::CompiledModel* model =
      model_of_task_[static_cast<std::size_t>(task_id)];
  for (int g = 0; g < size(); ++g) {
    // Memory: hot already, or the device could still pin it.
    const bool fits_memory =
        model_hot(g, task_id) ||
        memory_used_mb(g) + model->weight_mb <= node(g).memory_mb;
    if (!fits_memory) continue;
    if (!tested) return true;
    // Utilisation: one job must fit an idle context of this device (the
    // best case of Eq. 12, with no HP reservation and no active LP load).
    const double util = scheduler(g).task(task_id).utilization();
    const int streams = scheduler(g).config().streams_per_context;
    if (util < static_cast<double>(streams)) return true;
  }
  return false;
}

int Fleet::active_jobs(int task_id) const {
  int total = 0;
  for (int g = 0; g < size(); ++g) {
    total += scheduler(g).task(task_id).active_jobs;
  }
  return total;
}

std::uint64_t Fleet::intra_gpu_migrations() const {
  std::uint64_t total = 0;
  for (int g = 0; g < size(); ++g) total += scheduler(g).migrations();
  return total;
}

}  // namespace daris::cluster
