#include "cluster/fleet.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace daris::cluster {

Fleet::Fleet(sim::Simulator& sim, const FleetConfig& config,
             metrics::Collector* collector)
    : sim_(sim) {
  const int n = std::max(1, config.num_gpus);
  rt::SchedulerConfig sched_cfg = config.sched;
  sched_cfg.canonicalize();
  // Per-GPU jitter seeds derive from the fleet seed through the same
  // generator, so a fleet run is a pure function of (config, seed).
  common::Rng root(config.seed);
  gpus_.reserve(static_cast<std::size_t>(n));
  schedulers_.reserve(static_cast<std::size_t>(n));
  for (int g = 0; g < n; ++g) {
    gpus_.push_back(
        std::make_unique<gpusim::Gpu>(sim_, config.gpu, root.next_u64()));
    schedulers_.push_back(std::make_unique<rt::Scheduler>(
        sim_, *gpus_.back(), sched_cfg, collector));
    schedulers_.back()->set_device_id(g);
  }
}

int Fleet::add_task(const rt::TaskSpec& spec, const dnn::CompiledModel* model,
                    int home_gpu) {
  assert(home_gpu >= 0 && home_gpu < size());
  int id = -1;
  for (int g = 0; g < size(); ++g) {
    id = scheduler(g).add_task(spec, model);
    scheduler(g).task(id).resident = (g == home_gpu);
  }
  home_.push_back(home_gpu);
  assert(id + 1 == task_count());
  return id;
}

void Fleet::set_afet(int task_id, const std::vector<double>& per_stage_us) {
  for (int g = 0; g < size(); ++g) {
    scheduler(g).set_afet(task_id, per_stage_us);
  }
}

void Fleet::run_offline_phase() {
  for (int g = 0; g < size(); ++g) {
    scheduler(g).run_offline_phase();
  }
}

int Fleet::active_jobs(int task_id) const {
  int total = 0;
  for (int g = 0; g < size(); ++g) {
    total += scheduler(g).task(task_id).active_jobs;
  }
  return total;
}

std::uint64_t Fleet::intra_gpu_migrations() const {
  std::uint64_t total = 0;
  for (int g = 0; g < size(); ++g) total += scheduler(g).migrations();
  return total;
}

}  // namespace daris::cluster
