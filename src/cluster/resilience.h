// Client-side resilience layer: retries, retry budgets, hedged requests,
// and per-GPU circuit breakers, wired between the workload drivers and the
// Router.
//
// Every real serving front-end re-releases work the fleet shed — and that
// retry traffic is the canonical *metastable failure* amplifier: the DARIS
// admission test (Eq. 11/12) is deadline-agnostic, so a retried job
// re-released with its ORIGINAL release time (the only honest accounting —
// the deadline clock never stopped) is happily admitted even when most of
// its slack is gone, burns GPU time, misses, and meanwhile occupies the LP
// backlog slot (cap 1) that would have admitted a *fresh* job. After an
// overload pulse the fleet can sustain itself in that mode indefinitely:
// goodput collapses while utilisation stays pinned. The layer therefore
// ships the two standard countermeasures next to the retry policy itself:
//
//  - Retry budget (token bucket). First attempts earn `retry_budget_ratio`
//    tokens each; a retry or hedge spends one. The fleet-wide retry rate is
//    thus capped at ~ratio x the first-attempt rate no matter how hard the
//    retry policy pushes — the knob that separates the meltdown run from
//    the recovering run in the retry-storm-meltdown scenario.
//
//  - Per-GPU circuit breaker. A periodic control-shard tick folds each
//    device's completed/missed deltas (scheduler counters) with the sheds
//    charged to it (Router::shed_at) into a rolling miss+shed rate;
//    crossing `breaker_open_threshold` with enough volume opens the
//    breaker, which masks the device from routing exactly like a draining
//    one (Fleet::set_breaker_open folds into placeable()) — without
//    rehoming anything, because the state is temporary: after
//    `breaker_cooldown_s` the breaker half-opens (probe traffic allowed)
//    and either closes or re-opens on the next window.
//
//  - Hedged requests (LP only). When a primary copy is still in flight
//    after the device's recent p-th percentile response time (per-class
//    ring in the scheduler; a fraction of the relative deadline until the
//    ring warms up), a second copy is launched on the best peer that holds
//    the model hot (Router::route_hedge), first-finish-wins: a per-pair
//    control-shard poll revokes the losing copy through the scheduler's
//    revoke path while it is still unstarted; a loser that already started
//    runs to completion and is counted as duplicate (wasted) work.
//
// Determinism: all timers (backoff, hedge triggers, pair polls, breaker
// ticks) are ordinary control-shard sim::Callback events; backoff jitter
// comes from a dedicated seeded Rng. Sharded runs stay bit-identical
// because control events run while the device shards are parked at the
// window barrier — the same contract the rebalancer relies on. A default
// ResilienceConfig{} (enabled=false) schedules nothing and leaves every
// run byte-identical to a build without this file; cluster_runner then
// wires the drivers straight to the router.
//
// docs/RESILIENCE.md is the operator guide (knobs, budget math, breaker
// state machine, scenario walkthrough).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cluster/fleet.h"
#include "cluster/router.h"
#include "common/rng.h"
#include "common/time.h"
#include "metrics/collector.h"
#include "sim/simulator.h"

namespace daris::cluster {

/// Per-class retry policy. kNone disables retries for the class; kFixed
/// waits base_delay_us (jittered) between attempts; kExponential doubles
/// the delay per attempt up to max_delay_us.
struct RetryPolicy {
  enum class Backoff { kNone, kFixed, kExponential };
  Backoff backoff = Backoff::kNone;
  /// Total attempts including the first release.
  int max_attempts = 3;
  double base_delay_us = 500.0;
  double max_delay_us = 20000.0;
  /// Uniform jitter factor: each delay is scaled by [1-jitter, 1+jitter]
  /// drawn from the layer's seeded Rng. 0 = deterministic spacing.
  double jitter = 0.2;
};

struct ResilienceConfig {
  /// Master switch. Off: the layer is inert — no events, no counters, and
  /// cluster_runner bypasses it entirely (drivers call the router).
  bool enabled = false;

  /// Retry policies per class. Defaults retry both classes with exponential
  /// backoff; set backoff = kNone to disable a class.
  RetryPolicy hp{RetryPolicy::Backoff::kExponential, 3, 500.0, 20000.0, 0.2};
  RetryPolicy lp{RetryPolicy::Backoff::kExponential, 3, 500.0, 20000.0, 0.2};

  /// Token-bucket retry budget. Each first attempt earns `ratio` tokens
  /// (capped at `burst`); each retry or hedge launch spends one. Disabled
  /// (naive mode): retries are never budget-limited.
  bool budget_enabled = true;
  double retry_budget_ratio = 0.1;
  double retry_budget_burst = 32.0;

  /// Hedged requests for LP classes.
  bool hedge = false;
  /// Launch the hedge when the primary is still in flight after the FLEET's
  /// best recent q-th percentile LP response (minimum over placeable
  /// devices with warm rings) — a straggler's own inflated percentile must
  /// not get to postpone its own rescue.
  double hedge_percentile = 95.0;
  /// Ring samples required before the percentile is trusted; below this the
  /// trigger falls back to hedge_fallback_frac x relative deadline.
  int hedge_min_samples = 16;
  double hedge_fallback_frac = 0.5;
  /// Pair-settlement poll period (first-finish-wins detection), seconds.
  double hedge_poll_s = 0.0005;

  /// Per-GPU circuit breaker.
  bool breaker = false;
  /// Rolling window / tick period, seconds.
  double breaker_window_s = 0.1;
  /// Open when (missed + shed) / (completed + shed) over the window reaches
  /// this, with at least breaker_min_volume outcomes observed.
  double breaker_open_threshold = 0.5;
  int breaker_min_volume = 16;
  /// Open -> half-open after this cooldown, seconds.
  double breaker_cooldown_s = 0.3;
  /// Half-open closes when the probe window's rate falls to this or below;
  /// otherwise it re-opens.
  double breaker_close_threshold = 0.2;

  std::uint64_t seed = 42;
};

class ResiliencePolicy {
 public:
  /// `sim` must be the fleet's control-shard simulator (fleet.simulator()).
  ResiliencePolicy(sim::Simulator& sim, Fleet& fleet, Router& router,
                   const ResilienceConfig& config,
                   metrics::Collector* collector);

  ResiliencePolicy(const ResiliencePolicy&) = delete;
  ResiliencePolicy& operator=(const ResiliencePolicy&) = delete;

  /// Arms the breaker tick (when configured) up to `horizon`. Retry and
  /// hedge timers are armed per attempt by release(). A disabled config
  /// makes this a no-op. Call after the fault schedule is posted, before
  /// the telemetry sampler starts (the sampler stays the last setup step).
  void start(common::Time horizon);

  /// The drivers' ReleaseFn target: routes a first attempt and arms the
  /// retry/hedge machinery on its outcome. With the layer disabled this
  /// forwards to Router::release untouched.
  void release(int task_id);

  // --- counters (ClusterResult / scenario metrics) ------------------------

  std::uint64_t first_attempts() const { return first_attempts_; }
  /// Retries actually re-released (budget already spent).
  std::uint64_t retries() const { return retries_; }
  /// Retries that ended in an admission.
  std::uint64_t retry_admits() const { return retry_admits_; }
  std::uint64_t abandoned_budget() const { return abandoned_budget_; }
  std::uint64_t abandoned_expired() const { return abandoned_expired_; }
  std::uint64_t abandoned_attempts() const { return abandoned_attempts_; }
  /// Hedges launched (second copy admitted on a peer).
  std::uint64_t hedges() const { return hedges_; }
  /// Pairs where the hedge copy finished first.
  std::uint64_t hedge_wins() const { return hedge_wins_; }
  /// Losing copies revoked before starting (the bounded-duplicate-work
  /// guarantee: waste = hedges - cancels).
  std::uint64_t hedge_cancels() const { return hedge_cancels_; }
  /// Pairs whose loser had already started — both copies ran to completion.
  std::uint64_t hedge_waste() const { return hedge_waste_; }
  /// Recorded deadline misses the client never saw: pairs where the hedge
  /// won within the deadline and the losing primary ran to completion past
  /// it (observed at poll granularity, counted only when the miss clears a
  /// full poll period — a deliberately conservative lower bound, since
  /// revoked-before-start primaries are not counted at all).
  std::uint64_t hedge_rescued_misses() const { return hedge_rescued_misses_; }
  std::uint64_t breaker_opens() const { return breaker_opens_; }
  std::uint64_t breaker_closes() const { return breaker_closes_; }
  /// Current budget balance (telemetry gauge).
  double budget_tokens() const { return tokens_; }
  /// Devices currently masked by an open breaker (telemetry gauge).
  int breakers_open_now() const;
  /// q-th percentile of the CLIENT-perceived response over hedged pairs —
  /// time from the original release to the FIRST copy finishing (detected
  /// at pair-poll granularity). This is the latency hedging actually
  /// improves: the collector's per-job histogram keeps recording the losing
  /// copy's slow finish, because a started loser cannot be revoked. 0 when
  /// no pair has settled.
  double hedge_client_percentile_ms(double q) const;

 private:
  enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };
  struct BreakerRec {
    BreakerState state = BreakerState::kClosed;
    common::Time opened_at = 0;
    std::uint64_t last_done = 0;
    std::uint64_t last_missed = 0;
    std::uint64_t last_shed = 0;
  };
  struct HedgePair {
    int task = -1;
    int primary_gpu = -1;
    int hedge_gpu = -1;
    std::uint64_t primary_job = 0;
    std::uint64_t hedge_job = 0;
    common::Time released = 0;
  };

  const RetryPolicy& policy_for(int task_id) const;
  bool spend_token();
  /// Reacts to a route attempt's synchronous outcome: arms a hedge trigger
  /// on an admitted LP primary, a backoff timer on a retriable shed.
  void after_attempt(int task_id, common::Time released, int attempt,
                     const RouteResult& r);
  void schedule_retry(int task_id, common::Time released, int attempt);
  void fire_retry(int task_id, common::Time released, int attempt);
  common::Duration backoff_delay(const RetryPolicy& pol, int attempt);
  void arm_hedge(int task_id, common::Time released, const RouteResult& r);
  void fire_hedge(int task_id, common::Time released, int primary_gpu,
                  std::uint64_t primary_job);
  void poll_pair(std::uint64_t pair_id);
  /// Follows a started losing primary to completion after a hedge win to
  /// classify its recorded outcome against the original deadline.
  void watch_loser(int gpu, std::uint64_t job, common::Time deadline);
  void breaker_tick();
  void evaluate_breaker(int g, common::Time now);

  sim::Simulator& sim_;
  Fleet& fleet_;
  Router& router_;
  ResilienceConfig config_;
  metrics::Collector* collector_;
  common::Rng rng_;
  common::Time horizon_ = 0;
  common::Duration hedge_poll_ = 0;
  common::Duration breaker_period_ = 0;
  common::Duration breaker_cooldown_ = 0;
  double tokens_ = 0.0;

  std::uint64_t first_attempts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t retry_admits_ = 0;
  std::uint64_t abandoned_budget_ = 0;
  std::uint64_t abandoned_expired_ = 0;
  std::uint64_t abandoned_attempts_ = 0;
  std::uint64_t hedges_ = 0;
  std::uint64_t hedge_wins_ = 0;
  std::uint64_t hedge_cancels_ = 0;
  std::uint64_t hedge_waste_ = 0;
  std::uint64_t hedge_rescued_misses_ = 0;
  std::uint64_t breaker_opens_ = 0;
  std::uint64_t breaker_closes_ = 0;

  /// Unsettled hedge pairs by ascending pair id (the poll events reference
  /// pairs by id, so settlement order is a pure function of event order).
  std::map<std::uint64_t, HedgePair> pairs_;
  std::uint64_t next_pair_id_ = 1;
  std::vector<BreakerRec> breakers_;
  /// Client-perceived response of every settled hedge pair, milliseconds.
  std::vector<double> hedge_client_ms_;
};

}  // namespace daris::cluster
