// Policy/configuration grids shared by the Fig. 4-7 bench binaries.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "experiments/runner.h"

namespace daris::exp {

/// The canonical policy-name table lives next to the enum (daris/config.h);
/// re-exported here so figure benches stop hardcoding parallel name arrays.
using rt::policy_name;

struct GridPoint {
  rt::SchedulerConfig sched;
  std::string label;  // "STR 1x4", "MPS 6x1 6", ...
};

/// The paper's configuration grid (Sec. V): STR with Ns in [2,10]; MPS with
/// Nc in {2,3,4,6,8,10} x OS in {1, 1.5, 2, Nc}; MPS+STR over Nc x Ns
/// combinations with Np <= 10 and OS in {1, 2, Nc}.
std::vector<GridPoint> paper_grid(int batch = 1);

/// Just the MPS OS sweep for one context count.
std::vector<GridPoint> os_sweep_grid(int num_contexts);

struct GridResult {
  GridPoint point;
  RunResult result;
};

/// Runs every grid point on the task set; calls `progress` per point if set.
std::vector<GridResult> run_grid(
    const workload::TaskSetSpec& taskset, const std::vector<GridPoint>& grid,
    double duration_s = 4.0, double warmup_s = 1.0,
    const std::function<void(const GridResult&)>& progress = {});

/// Renders the standard throughput + DMR table for a figure, annotated with
/// the batching lower/upper baselines.
std::string render_figure_table(const std::vector<GridResult>& results,
                                double lower_jps, double upper_jps);

/// Best-throughput grid point (for summary lines).
const GridResult* best_throughput(const std::vector<GridResult>& results);

}  // namespace daris::exp
