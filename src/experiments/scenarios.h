// Scenario matrix: named production-shaped runs (overload storm, fail-stop
// mid-burst, straggler, drain-under-load + autoscale, diurnal replay, flash
// crowd) with committed behaviour thresholds on the scheduling outcomes —
// HP deadline-miss rate, starvation, worst stall, lost jobs. The paper's
// figures check *speed and shape* under synthetic load; this matrix is the
// behaviour-regression gate under realistic and adversarial load
// (bench/fig_scenarios.cpp drives it, scripts/check_scenarios.py gates CI).
// docs/SCENARIOS.md is the catalogue and the how-to-add guide.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "experiments/cluster_runner.h"
#include "metrics/trace_report.h"

namespace daris::exp {

/// One committed threshold, evaluated against a named scenario metric.
struct ThresholdCheck {
  std::string metric;  // key into ScenarioResult::metrics
  char op = '<';       // '<': value <= limit, '>': value >= limit
  double limit = 0.0;
  double value = 0.0;
  bool pass = false;
};

struct ScenarioResult {
  std::string name;
  std::string description;
  ClusterResult cluster;  // stage_trace cleared (folded into `report`)
  metrics::TraceReport report;
  /// Named behaviour metrics the thresholds (and the CI gate) read:
  /// hp_dmr, lp_dmr, hp_completed, lp_completed, hp_missed, jobs_lost,
  /// drops, infeasible, worst_stall_us, starved_frac, unmatched_rows,
  /// arrivals, total_jps.
  std::map<std::string, double> metrics;
  std::vector<ThresholdCheck> checks;
  bool pass = false;  // every check passed

  /// Behaviour digest for bit-identity comparison across repeated runs:
  /// every counter above plus per-GPU completions, exactly formatted.
  std::string fingerprint;
};

/// Registered scenario names, in run order.
std::vector<std::string> scenario_names();

/// One-line description of a scenario (empty for unknown names).
std::string scenario_description(const std::string& name);

/// Runs one named scenario; `data_dir` locates bundled traces (the
/// repository's tests/data). Unknown names return a ScenarioResult with
/// pass = false and an "unknown scenario" description.
ScenarioResult run_scenario(const std::string& name,
                            const std::string& data_dir);

}  // namespace daris::exp
