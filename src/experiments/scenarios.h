// Scenario matrix: named production-shaped runs (overload storm, fail-stop
// mid-burst, straggler, drain-under-load + autoscale, diurnal replay, flash
// crowd) with committed behaviour thresholds on the scheduling outcomes —
// HP deadline-miss rate, starvation, worst stall, lost jobs. The paper's
// figures check *speed and shape* under synthetic load; this matrix is the
// behaviour-regression gate under realistic and adversarial load
// (bench/fig_scenarios.cpp drives it, scripts/check_scenarios.py gates CI).
// docs/SCENARIOS.md is the catalogue and the how-to-add guide.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "experiments/cluster_runner.h"
#include "metrics/trace_report.h"

namespace daris::exp {

/// One committed threshold, evaluated against a named scenario metric.
struct ThresholdCheck {
  std::string metric;  // key into ScenarioResult::metrics
  char op = '<';       // '<': value <= limit, '>': value >= limit
  double limit = 0.0;
  double value = 0.0;
  bool pass = false;
};

struct ScenarioResult {
  std::string name;
  std::string description;
  ClusterResult cluster;  // stage_trace cleared (folded into `report`)
  metrics::TraceReport report;
  /// Named behaviour metrics the thresholds (and the CI gate) read:
  /// hp_dmr, lp_dmr, hp_completed, lp_completed, hp_missed, jobs_lost,
  /// drops, infeasible, worst_stall_us, starved_frac, unmatched_rows,
  /// arrivals, total_jps.
  std::map<std::string, double> metrics;
  std::vector<ThresholdCheck> checks;
  bool pass = false;  // every check passed

  /// Behaviour digest for bit-identity comparison across repeated runs:
  /// every counter above plus per-GPU completions, exactly formatted.
  std::string fingerprint;

  /// Telemetry artifacts, filled only when run_scenario received a
  /// ScenarioTelemetry (docs/OBSERVABILITY.md documents both formats):
  /// - telemetry_json: {"scenario", "sample_period_us", "digest",
  ///   "fingerprint", "timeseries", "events", "profile"} — the profile's
  ///   wall-clock fields are host timing and are excluded from the digest.
  /// - perfetto_json: unified Chrome trace (stage spans + counter tracks +
  ///   instant events on shared per-GPU lanes).
  /// - telemetry_digest: FNV-1a over the deterministic telemetry sections;
  ///   equal digests across repeated runs certify deterministic telemetry.
  std::string telemetry_json;
  std::string perfetto_json;
  std::uint64_t telemetry_digest = 0;
};

/// Opt-in telemetry capture for run_scenario. Enabling it must not change
/// the scenario's behaviour fingerprint (bench_fig_scenarios verifies).
struct ScenarioTelemetry {
  /// Sampler cadence in simulated seconds (5 ms default: ~600 samples over
  /// the 3 s scenarios, ~6k over the 30 s diurnal replay).
  double sample_period_s = 0.005;
};

/// Opt-in sharded execution for run_scenario (sim/sharded.h): one event heap
/// per device on a worker pool. Enabling it must not change the scenario's
/// fingerprint at any thread count (bench_fig_scenarios --sharded verifies
/// against the single-simulator run; scripts/check_scenarios.py --sharded
/// gates it in CI).
struct ScenarioSharding {
  /// Worker lanes including the caller; <= 0 picks
  /// min(hardware_concurrency, device count).
  int threads = 0;
};

/// Registered scenario names, in run order.
std::vector<std::string> scenario_names();

/// One-line description of a scenario (empty for unknown names).
std::string scenario_description(const std::string& name);

/// Runs one named scenario; `data_dir` locates bundled traces (the
/// repository's tests/data). Unknown names return a ScenarioResult with
/// pass = false and an "unknown scenario" description. A non-null
/// `telemetry` enables the sampler + event log and fills the telemetry
/// artifacts in the result. A non-null `sharding` runs the scenario (and
/// its counterfactual, when it has one) on the sharded engine.
ScenarioResult run_scenario(const std::string& name,
                            const std::string& data_dir,
                            const ScenarioTelemetry* telemetry = nullptr,
                            const ScenarioSharding* sharding = nullptr);

}  // namespace daris::exp
