#include "experiments/runner.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>

#include "daris/offline.h"
#include "daris/scheduler.h"
#include "dnn/zoo.h"
#include "gpusim/gpu.h"
#include "sim/simulator.h"
#include "workload/driver.h"

namespace daris::exp {

RunResult run_daris(const RunConfig& config) {
  const auto wall_start = std::chrono::steady_clock::now();
  auto wall_ms_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  sim::Simulator sim;
  gpusim::Gpu gpu(sim, config.gpu, config.seed);

  // Pre-size the event pool from the task-set cardinality (one pending
  // release timer per task) plus per-stream launch/completion and per-job
  // sync events, so the first release burst does not grow the slab pool
  // mid-run. Sizing is a hint; the pool still grows if outrun.
  sim.reserve(config.taskset.tasks.size() * 3 +
              static_cast<std::size_t>(config.sched.parallelism()) * 2 + 64);

  metrics::Collector collector;
  collector.set_measure_start(common::from_sec(config.warmup_s));
  collector.enable_stage_trace(config.stage_trace);

  rt::SchedulerConfig sched_cfg = config.sched;
  sched_cfg.canonicalize();

  // One compiled model per distinct kind (weights shared across tasks, as
  // MPS shares them across contexts — the zero-delay migration premise).
  std::map<dnn::ModelKind, std::unique_ptr<dnn::CompiledModel>> models;
  for (const auto& t : config.taskset.tasks) {
    if (!models.count(t.model)) {
      models.emplace(t.model,
                     std::make_unique<dnn::CompiledModel>(dnn::compiled_model(
                         t.model, sched_cfg.batch, config.gpu)));
    }
  }

  // Offline phase 1: AFET profiling under the same partitioning.
  std::vector<const dnn::CompiledModel*> distinct;
  distinct.reserve(models.size());
  for (const auto& [kind, m] : models) distinct.push_back(m.get());
  const rt::AfetResult afet = rt::profile_afet(
      config.gpu, sched_cfg, distinct, /*jobs_per_stream=*/16, config.seed);

  rt::Scheduler scheduler(sim, gpu, sched_cfg, &collector);
  for (const auto& t : config.taskset.tasks) {
    const int id = scheduler.add_task(t, models.at(t.model).get());
    scheduler.set_afet(id, afet.for_model(models.at(t.model).get()));
  }

  // Offline phase 2: Algorithm 1 initial context assignment.
  scheduler.run_offline_phase();
  const double wall_ms_offline = wall_ms_since(wall_start);

  const common::Time horizon = common::from_sec(config.duration_s);
  workload::PeriodicDriver driver(sim, scheduler, horizon);
  driver.start();
  const auto wall_run_start = std::chrono::steady_clock::now();
  sim.run_until(horizon);
  const double wall_ms_run = wall_ms_since(wall_run_start);

  RunResult result;
  result.total_jps = collector.throughput_jps(horizon);
  result.hp = collector.summary(common::Priority::kHigh);
  result.lp = collector.summary(common::Priority::kLow);
  result.gpu_utilization = gpu.utilization(horizon);
  result.migrations = scheduler.migrations();
  result.stage_trace = collector.stage_trace();

  const sim::Simulator::Stats sstats = sim.stats();
  result.profile.events_executed = sstats.events_executed;
  result.profile.callbacks_inline = sstats.callbacks_inline;
  result.profile.callbacks_heap = sstats.callbacks_heap;
  result.profile.heap_high_water = sstats.heap_high_water;
  result.profile.pool_slots = sstats.pool_slots;
  const gpusim::Gpu::SolverStats& ss = gpu.solver_stats();
  result.profile.solver_flushes = ss.flushes;
  result.profile.solver_contexts_solved = ss.contexts_solved;
  result.profile.solver_contexts_reused = ss.contexts_reused;
  result.profile.wall_ms_offline = wall_ms_offline;
  result.profile.wall_ms_run = wall_ms_run;
  result.profile.wall_ms_total = wall_ms_since(wall_start);
  return result;
}

std::string relative_error(double measured, double expected) {
  if (expected == 0.0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%",
                100.0 * (measured - expected) / expected);
  return buf;
}

}  // namespace daris::exp
