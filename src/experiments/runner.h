// Shared experiment runner: wires GPU, compiled models, offline AFET
// profiling, the DARIS scheduler, the periodic driver, and metrics into one
// reproducible run. Every bench binary goes through this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "daris/config.h"
#include "gpusim/gpu_spec.h"
#include "metrics/collector.h"
#include "metrics/profile.h"
#include "workload/taskset.h"

namespace daris::exp {

struct RunConfig {
  workload::TaskSetSpec taskset;
  rt::SchedulerConfig sched;
  gpusim::GpuSpec gpu = gpusim::GpuSpec::rtx2080ti();
  double duration_s = 6.0;
  double warmup_s = 1.0;
  std::uint64_t seed = 42;
  bool stage_trace = false;
};

struct RunResult {
  double total_jps = 0.0;
  metrics::ClassSummary hp;
  metrics::ClassSummary lp;
  double gpu_utilization = 0.0;
  std::uint64_t migrations = 0;
  std::vector<metrics::StageEvent> stage_trace;
  /// Self-profiler counters (always filled; see metrics/profile.h).
  metrics::RunProfile profile;
};

/// Runs DARIS on the configured task set and returns the measured summary.
RunResult run_daris(const RunConfig& config);

/// Paper-vs-measured helper: relative error string like "+3.2%".
std::string relative_error(double measured, double expected);

}  // namespace daris::exp
