#include "experiments/scenarios.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "metrics/trace_export.h"
#include "workload/taskset.h"

namespace daris::exp {

namespace {

// ---------------------------------------------------------------------------
// Shared fleet shape: the Table II mixed set replicated per GPU (per-task
// rates stay at the paper's 150% operating point), MPS with 6 contexts,
// hybrid affinity+spillover routing — the configuration docs/CLUSTER.md
// recommends for production-shaped load.
// ---------------------------------------------------------------------------

ClusterConfig fleet_base(int num_gpus) {
  ClusterConfig cfg;
  cfg.taskset =
      workload::replicated_taskset(workload::mixed_taskset(), num_gpus);
  cfg.sched.policy = rt::Policy::kMps;
  cfg.sched.num_contexts = 6;
  cfg.sched.oversubscription = 6.0;
  cfg.num_gpus = num_gpus;
  cfg.routing = cluster::RoutingPolicy::kHybrid;
  cfg.duration_s = 3.0;
  cfg.warmup_s = 0.5;
  cfg.stage_trace = true;
  return cfg;
}

// Overload storm: bursty (MMPP-style) arrivals at 1.6x nominal demand on a
// healthy 4-GPU fleet. The fleet must shed load through admission control
// (LP rejections / drops), not through HP deadline misses or starvation.
ClusterConfig overload_storm(const std::string& /*data_dir*/) {
  ClusterConfig cfg = fleet_base(4);
  cfg.arrivals = ArrivalMode::kBursty;
  cfg.rate_scale = 1.6;
  return cfg;
}

// Fail-stop mid-burst: GPU 1 dies at t=1.5s while bursty arrivals run at
// 1.2x nominal. In-flight jobs on the dead device become misses (bounded),
// its tasks rehome, and the survivors absorb the demand.
ClusterConfig fail_stop_mid_burst(const std::string& /*data_dir*/) {
  ClusterConfig cfg = fleet_base(4);
  cfg.arrivals = ArrivalMode::kBursty;
  cfg.rate_scale = 1.2;
  FaultSpec f;
  f.kind = FaultSpec::Kind::kFail;
  f.gpu = 1;
  f.at_s = 1.5;
  cfg.faults.push_back(f);
  return cfg;
}

// Straggler: GPU 0 halves its throughput at t=1.0s (thermal throttling /
// noisy neighbour). AFET re-profiles against the degraded spec, so admission
// stays truthful and HP work keeps meeting deadlines fleet-wide.
ClusterConfig straggler(const std::string& /*data_dir*/) {
  ClusterConfig cfg = fleet_base(4);
  FaultSpec f;
  f.kind = FaultSpec::Kind::kSlow;
  f.gpu = 0;
  f.at_s = 1.0;
  f.factor = 0.5;
  cfg.faults.push_back(f);
  return cfg;
}

// Drain-under-load + autoscale: GPU 0 drains at t=1.0s (finishes in-flight
// work, takes nothing new) and a replacement device comes online at t=1.2s,
// is profiled live, and picks up the rehomed tasks. Graceful scale-down must
// lose zero jobs.
ClusterConfig drain_under_load(const std::string& /*data_dir*/) {
  ClusterConfig cfg = fleet_base(4);
  FaultSpec drain;
  drain.kind = FaultSpec::Kind::kDrain;
  drain.gpu = 0;
  drain.at_s = 1.0;
  cfg.faults.push_back(drain);
  FaultSpec add;
  add.kind = FaultSpec::Kind::kAdd;
  add.at_s = 1.2;
  cfg.faults.push_back(add);
  return cfg;
}

// Diurnal replay: the bundled ~50k-row production-shaped trace (diurnal
// rate swing plus a 2.5x flash crowd at t=22s) replayed through the same
// ReleaseFn sink the synthetic drivers use, on a 3-GPU fleet.
ClusterConfig diurnal_replay(const std::string& data_dir) {
  ClusterConfig cfg = fleet_base(3);
  cfg.arrivals = ArrivalMode::kTrace;
  cfg.duration_s = 30.0;
  cfg.warmup_s = 1.0;
  std::string error;
  if (!workload::load_trace_csv(data_dir + "/diurnal_50k.csv", &cfg.trace,
                                &error)) {
    // Leave the trace empty: the arrivals floor check reports the miss.
    std::fprintf(stderr, "diurnal-replay: %s\n", error.c_str());
  }
  return cfg;
}

// Flash crowd: an in-process generated trace — steady 2000 JPS with a 3x
// spike for 1.5s — on a 3-GPU fleet sized for the steady state. The spike
// must be absorbed by admission control without starving resident HP work.
ClusterConfig flash_crowd(const std::string& /*data_dir*/) {
  ClusterConfig cfg = fleet_base(3);
  cfg.arrivals = ArrivalMode::kTrace;
  cfg.duration_s = 6.0;
  workload::TraceGenConfig gen;
  gen.duration_s = 6.0;
  gen.mean_rate_jps = 2000.0;
  gen.diurnal_amplitude = 0.0;
  workload::FlashCrowd spike;
  spike.start_s = 2.0;
  spike.duration_s = 1.5;
  spike.factor = 3.0;
  gen.flashes.push_back(spike);
  gen.seed = 7;
  cfg.trace = workload::generate_trace(workload::trace_mix(cfg.taskset), gen);
  return cfg;
}

// Flash-crowd recovery by stealing: the flash-crowd scenario with work
// stealing armed (re-homing off, so recovery is attributable to stealing
// alone). During the spike the overloaded home GPUs trip the fleet backlog
// guard; steal scans move their queued, not-yet-started LP jobs to warm
// peers that can still make the deadlines. run_scenario also runs the
// rebalancing-off counterfactual and exposes the *_gain metrics the checks
// gate on: the off-run misses the committed LP deadline-miss rate, the
// on-run recovers it.
ClusterConfig flash_crowd_recovery(const std::string& /*data_dir*/) {
  ClusterConfig cfg = fleet_base(3);
  cfg.arrivals = ArrivalMode::kTrace;
  cfg.duration_s = 6.0;
  workload::TraceGenConfig gen;
  gen.duration_s = 6.0;
  gen.mean_rate_jps = 2000.0;
  gen.diurnal_amplitude = 0.0;
  workload::FlashCrowd spike;
  spike.start_s = 2.0;
  spike.duration_s = 2.0;
  spike.factor = 4.0;  // harsher than flash-crowd: the off-run must hurt
  gen.flashes.push_back(spike);
  gen.seed = 7;
  cfg.trace = workload::generate_trace(workload::trace_mix(cfg.taskset), gen);
  cfg.rebalance.enabled = true;
  cfg.rebalance.rehome = false;
  cfg.rebalance.max_steals_per_scan = 8;
  return cfg;
}

// Drain recovery by re-homing: GPU 0 of 3 drains with NO replacement. The
// fault-instant rehoming moves every task homed there onto the single
// least-loaded survivor — correct at that instant, but it leaves one GPU
// carrying two GPUs' worth of homes (HP jobs are pinned to their home, so
// spillover cannot help them). The periodic demand-aware rounds then
// redistribute homes across both survivors. Stealing is off so recovery is
// attributable to re-homing alone; the counterfactual run shows the
// off-run's pile-up.
// Retry-storm meltdown: the canonical metastable failure, and the reason
// the resilience layer ships a retry budget and circuit breakers next to
// the retry policy. A 4x flash crowd for 1.5s drives the 3-GPU fleet into
// admission-control shedding; every shed is retried with exponential
// backoff. The retried jobs keep their ORIGINAL release times, so the
// deadline-agnostic admission test (Eq. 11/12) happily admits near-doomed
// work that burns GPU time AND occupies the LP backlog slot fresh releases
// needed — the counterfactual (budget + breaker forced off) shows the
// resulting amplification and goodput loss persisting past the pulse; the
// primary run's token bucket caps retries at ~10% of the first-attempt
// rate, so goodput recovers. The breaker is deliberately NOT armed here: a
// global overload pushes every device past any rate threshold, and masking
// healthy devices under global overload only amputates capacity — the
// budget is the medicine for fleet-wide storms, the breaker for sick
// devices (its exit guard in cluster/resilience.cpp enforces exactly that).
ClusterConfig retry_storm(const std::string& /*data_dir*/) {
  ClusterConfig cfg = fleet_base(3);
  cfg.arrivals = ArrivalMode::kTrace;
  cfg.duration_s = 6.0;
  workload::TraceGenConfig gen;
  gen.duration_s = 6.0;
  gen.mean_rate_jps = 2000.0;
  gen.diurnal_amplitude = 0.0;
  workload::FlashCrowd spike;
  spike.start_s = 2.0;
  spike.duration_s = 1.5;
  spike.factor = 4.0;
  gen.flashes.push_back(spike);
  gen.seed = 7;
  cfg.trace = workload::generate_trace(workload::trace_mix(cfg.taskset), gen);
  cfg.resilience.enabled = true;
  // An aggressive client: 5 attempts with fast exponential backoff — the
  // policy a front-end team tunes for transient blips, and exactly what
  // melts the fleet down when the blip is a capacity shortfall.
  cfg.resilience.hp = {cluster::RetryPolicy::Backoff::kExponential, 5, 300.0,
                       5000.0, 0.2};
  cfg.resilience.lp = cfg.resilience.hp;
  cfg.resilience.budget_enabled = true;
  cfg.resilience.retry_budget_ratio = 0.1;
  return cfg;
}

// The meltdown counterfactual: identical storm, budget forced off. Naive
// unbudgeted retries — the run the *_gain gates measure against.
ClusterConfig retry_storm_naive(const std::string& data_dir) {
  ClusterConfig cfg = retry_storm(data_dir);
  cfg.resilience.budget_enabled = false;
  return cfg;
}

// Hedging tail rescue: bursty load plus a GPU 0 throttle to 0.4x at
// t=1.0s. The re-profiled admission keeps the straggler from accepting
// doomed work, so the rescuable tail is the one hedging actually targets
// in production: jobs that individually drew a long queueing delay (burst
// arrivals) or a 2.5x service time (straggler survivors). With hedging on,
// a second copy launches on a model-hot peer once the primary outlives a
// healthy peer's recent p95 LP response (the fleet-wide floor, not the
// straggler's own inflated view), and first-finish-wins settles the pair.
// Retries are off so every effect is attributable to hedging alone; the
// counterfactual (hedging off) pins the overhead gates. Duplicate work is
// bounded twice over: healthy-device jobs rarely outlive a healthy p95,
// and every hedge launch spends a retry-budget token.
ClusterConfig hedging_tail_rescue(const std::string& /*data_dir*/) {
  ClusterConfig cfg = fleet_base(4);
  cfg.arrivals = ArrivalMode::kBursty;
  cfg.rate_scale = 1.1;
  cfg.duration_s = 5.0;
  FaultSpec f;
  f.kind = FaultSpec::Kind::kSlow;
  f.gpu = 0;
  f.at_s = 1.0;
  f.factor = 0.4;
  cfg.faults.push_back(f);
  cfg.resilience.enabled = true;
  cfg.resilience.hp.backoff = cluster::RetryPolicy::Backoff::kNone;
  cfg.resilience.lp.backoff = cluster::RetryPolicy::Backoff::kNone;
  cfg.resilience.hedge = true;
  // The trigger percentile is read off the FLEET's fastest device (see
  // ResiliencePolicy::arm_hedge), so p95 here means "slower than a healthy
  // peer's p95" — which nearly every straggler-stuck job is, and almost no
  // healthy-device job is. That both fires the hedge while the primary is
  // still queued (revocable) and keeps the duplicate-work fraction small.
  cfg.resilience.hedge_percentile = 95.0;
  cfg.resilience.hedge_fallback_frac = 0.35;
  return cfg;
}

ClusterConfig hedging_tail_rescue_off(const std::string& data_dir) {
  ClusterConfig cfg = hedging_tail_rescue(data_dir);
  cfg.resilience.hedge = false;
  return cfg;
}

// Flash crowd at fleet scale: the flash-crowd shape scaled to 64 GPUs and
// ~43k JPS, with the full self-healing + resilience stack armed (stealing,
// re-homing, budgeted retries, breakers). The row exists to keep the
// engine, the rebalancer's O(fleet) scans, and the conservation invariant
// honest at an order of magnitude more devices than the rest of the matrix.
ClusterConfig flash_crowd_64(const std::string& /*data_dir*/) {
  ClusterConfig cfg = fleet_base(64);
  cfg.arrivals = ArrivalMode::kTrace;
  cfg.duration_s = 2.5;
  cfg.warmup_s = 0.5;
  workload::TraceGenConfig gen;
  gen.duration_s = 2.5;
  gen.mean_rate_jps = 2000.0 * 64.0 / 3.0;
  gen.diurnal_amplitude = 0.0;
  workload::FlashCrowd spike;
  spike.start_s = 1.0;
  spike.duration_s = 0.8;
  spike.factor = 2.5;
  gen.flashes.push_back(spike);
  gen.seed = 7;
  cfg.trace = workload::generate_trace(workload::trace_mix(cfg.taskset), gen);
  cfg.rebalance.enabled = true;
  cfg.rebalance.max_steals_per_scan = 8;
  cfg.resilience.enabled = true;
  return cfg;
}

ClusterConfig drain_recovery(const std::string& /*data_dir*/) {
  ClusterConfig cfg = fleet_base(3);
  // Poisson at 0.7x nominal: the two survivors can host the whole demand
  // once homes are balanced — so the pile-up, not raw capacity, is what the
  // off-run suffers from and re-homing can actually cure.
  cfg.arrivals = ArrivalMode::kPoisson;
  cfg.rate_scale = 0.7;
  cfg.duration_s = 5.0;
  FaultSpec drain;
  drain.kind = FaultSpec::Kind::kDrain;
  drain.gpu = 0;
  drain.at_s = 1.0;
  cfg.faults.push_back(drain);
  cfg.rebalance.enabled = true;
  cfg.rebalance.steal = false;
  cfg.rebalance.max_moves_per_round = 4;
  cfg.rebalance.hysteresis = 1.4;
  cfg.rebalance.min_dwell_rounds = 6;
  return cfg;
}

// Counterfactuals for the rebalancing recovery scenarios: the identical
// run with rebalancing forced off.
ClusterConfig flash_crowd_recovery_off(const std::string& data_dir) {
  ClusterConfig cfg = flash_crowd_recovery(data_dir);
  cfg.rebalance = cluster::RebalanceConfig{};
  return cfg;
}

ClusterConfig drain_recovery_off(const std::string& data_dir) {
  ClusterConfig cfg = drain_recovery(data_dir);
  cfg.rebalance = cluster::RebalanceConfig{};
  return cfg;
}

ThresholdCheck le(const char* metric, double limit) {
  ThresholdCheck c;
  c.metric = metric;
  c.op = '<';
  c.limit = limit;
  return c;
}

ThresholdCheck ge(const char* metric, double limit) {
  ThresholdCheck c;
  c.metric = metric;
  c.op = '>';
  c.limit = limit;
  return c;
}

struct ScenarioDef {
  const char* name;
  const char* description;
  ClusterConfig (*config)(const std::string& data_dir);
  std::vector<ThresholdCheck> checks;
  /// Non-null: also run this config — the scenario with its recovery
  /// mechanism forced off, everything else identical — and expose base_*
  /// and *_gain metrics (recovery scenarios gate on the gains).
  ClusterConfig (*counterfactual)(const std::string& data_dir) = nullptr;
};

// The committed behaviour envelope. Limits are calibrated from the seeded
// deterministic runs with headroom (docs/SCENARIOS.md tabulates them with
// the measured values); tightening one is a deliberate contract change.
const std::vector<ScenarioDef>& scenario_defs() {
  static const std::vector<ScenarioDef> defs = {
      {"overload-storm",
       "bursty arrivals at 1.6x nominal on 4 healthy GPUs",
       &overload_storm,
       {le("hp_dmr", 0.03), le("lp_dmr", 0.25), ge("total_jps", 2400.0),
        le("starved_frac", 0.02), le("worst_stall_us", 100e3),
        le("jobs_lost", 0.0)}},
      {"fail-stop-mid-burst",
       "GPU 1 fail-stops at t=1.5s under 1.2x bursty load",
       &fail_stop_mid_burst,
       {ge("jobs_lost", 1.0), le("jobs_lost", 64.0), le("hp_dmr", 0.08),
        ge("total_jps", 2000.0), le("starved_frac", 0.02),
        le("worst_stall_us", 100e3)}},
      {"straggler",
       "GPU 0 throttles to 0.5x at t=1.0s under periodic load",
       &straggler,
       {le("hp_dmr", 0.001), ge("total_jps", 2200.0),
        le("starved_frac", 0.02), le("worst_stall_us", 100e3),
        le("jobs_lost", 0.0)}},
      {"drain-under-load",
       "GPU 0 drains at t=1.0s; a replacement joins at t=1.2s",
       &drain_under_load,
       {le("jobs_lost", 0.0), le("hp_dmr", 0.10), ge("total_jps", 1800.0),
        le("starved_frac", 0.02), le("worst_stall_us", 100e3)}},
      {"diurnal-replay",
       "bundled 50k-row diurnal+flash trace on 3 GPUs",
       &diurnal_replay,
       {ge("arrivals", 45000.0), le("unmatched_rows", 0.0),
        le("hp_dmr", 0.05), le("starved_frac", 0.02),
        le("worst_stall_us", 100e3), le("jobs_lost", 0.0)}},
      {"flash-crowd",
       "3x arrival spike for 1.5s over steady 2000 JPS on 3 GPUs",
       &flash_crowd,
       {ge("arrivals", 10000.0), le("hp_dmr", 0.10),
        le("starved_frac", 0.02), le("worst_stall_us", 100e3),
        le("jobs_lost", 0.0)}},
      {"flash-crowd-recovery-by-stealing",
       "4x spike for 2s on 3 GPUs; stealing + coalescing vs rebalancing-off",
       &flash_crowd_recovery,
       {ge("steals", 1.0), ge("hp_dmr_gain", 0.001), ge("drops_cut", 25.0),
        ge("base_hp_dmr", 0.094), le("hp_dmr", 0.093), ge("coalesced", 1.0),
        ge("transferred_mb_cut", 1.0), le("lp_dmr", 0.25),
        le("starved_frac", 0.02), le("worst_stall_us", 100e3),
        le("jobs_lost", 0.0)},
       &flash_crowd_recovery_off},
      {"drain-recovery-by-rehoming",
       "GPU 0 of 3 drains, no replacement; demand-aware re-homing "
       "redistributes the pile-up",
       &drain_recovery,
       {ge("rehomes", 1.0), ge("hp_dmr_gain", 0.02),
        ge("base_hp_dmr", 0.05), le("hp_dmr", 0.03), le("lp_dmr", 0.08),
        le("starved_frac", 0.02), le("worst_stall_us", 100e3),
        le("jobs_lost", 0.0)},
       &drain_recovery_off},
      {"retry-storm-meltdown",
       "4x spike with aggressive client retries; retry budget vs naive",
       &retry_storm,
       {ge("retries", 500.0), ge("base_retry_amplification", 1.0),
        le("retry_amplification", 0.12), ge("hp_dmr_gain", 0.02),
        ge("drops_cut", 10000.0), ge("goodput_gain", 0.0),
        ge("base_hp_dmr", 0.10), le("hp_dmr", 0.10),
        le("starved_frac", 0.02), le("worst_stall_us", 100e3),
        le("jobs_lost", 0.0)},
       &retry_storm_naive},
      {"hedging-tail-rescue",
       "Bursty load + GPU 0 throttled to 0.4x; LP hedging on peers vs off",
       &hedging_tail_rescue,
       {ge("hedges", 50.0), ge("hedge_wins", 10.0), ge("hedge_rescued", 5.0),
        le("hedge_frac", 0.05), ge("lp_dmr_gain", -0.03), le("lp_dmr", 0.12),
        le("hp_dmr", 0.03), le("starved_frac", 0.02),
        le("worst_stall_us", 100e3), le("jobs_lost", 0.0)},
       &hedging_tail_rescue_off},
      {"flash-crowd-64",
       "2.5x spike over ~43k JPS on 64 GPUs with the full healing stack",
       &flash_crowd_64,
       {ge("arrivals", 80000.0), le("hp_dmr", 0.10),
        le("starved_frac", 0.02), le("worst_stall_us", 100e3),
        le("jobs_lost", 0.0)}},
  };
  return defs;
}

const ScenarioDef* find_scenario(const std::string& name) {
  for (const auto& def : scenario_defs()) {
    if (name == def.name) return &def;
  }
  return nullptr;
}

void append(std::string* out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%.17g;", key, v);
  *out += buf;
}

void append(std::string* out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%llu;", key,
                static_cast<unsigned long long>(v));
  *out += buf;
}

std::string fingerprint_of(const ClusterResult& r,
                           const metrics::TraceReport& rep) {
  std::string fp;
  append(&fp, "jps", r.total_jps);
  append(&fp, "hp_rel", r.hp.released);
  append(&fp, "hp_acc", r.hp.accepted);
  append(&fp, "hp_done", r.hp.completed);
  append(&fp, "hp_miss", r.hp.missed);
  append(&fp, "lp_rel", r.lp.released);
  append(&fp, "lp_acc", r.lp.accepted);
  append(&fp, "lp_done", r.lp.completed);
  append(&fp, "lp_miss", r.lp.missed);
  append(&fp, "xmigr", r.cross_gpu_migrations);
  append(&fp, "imigr", r.intra_gpu_migrations);
  append(&fp, "drops", r.drops);
  append(&fp, "infeas", r.infeasible_rejects);
  append(&fp, "xfers", r.transfers);
  append(&fp, "xfer_mb", r.transferred_mb);
  append(&fp, "arrivals", r.arrivals);
  append(&fp, "lost", r.jobs_lost);
  append(&fp, "unmatched", r.unmatched_rows);
  append(&fp, "stages", static_cast<std::uint64_t>(rep.stages));
  append(&fp, "cswitch", static_cast<std::uint64_t>(rep.context_switches));
  append(&fp, "gmigr", static_cast<std::uint64_t>(rep.gpu_migrations));
  append(&fp, "starved", static_cast<std::uint64_t>(rep.starved_stages));
  append(&fp, "stall_us", rep.worst_stall_us);
  // Appended only for rebalancing runs, so every pre-rebalancer fingerprint
  // stays byte-identical to its committed baseline.
  if (r.rebalancing) {
    append(&fp, "steals", r.steals);
    append(&fp, "rehomes", r.rehomes);
    append(&fp, "coal", r.coalesced_transfers);
    append(&fp, "coal_mb", r.coalesced_mb_saved);
    append(&fp, "cancels", r.transfer_cancels);
  }
  // Same contract for the resilience layer: counters appear only when it is
  // armed, keeping every resilience-off fingerprint byte-identical to its
  // pre-resilience form.
  if (r.resilience) {
    append(&fp, "att", r.first_attempts);
    append(&fp, "retries", r.retries);
    append(&fp, "radmit", r.retry_admits);
    append(&fp, "rbudget", r.retry_abandoned_budget);
    append(&fp, "rexpire", r.retry_abandoned_expired);
    append(&fp, "rmax", r.retry_abandoned_attempts);
    append(&fp, "hedges", r.hedges);
    append(&fp, "hwins", r.hedge_wins);
    append(&fp, "hcancel", r.hedge_cancels);
    append(&fp, "hwaste", r.hedge_waste);
    append(&fp, "hrescue", r.hedge_rescued_misses);
    append(&fp, "hclient", r.hedge_client_p99_ms);
    append(&fp, "bopen", r.breaker_opens);
    append(&fp, "bclose", r.breaker_closes);
    // Conservation joins the behaviour digest on resilience runs: a run
    // that leaks a job must not reproduce a clean run's fingerprint. On
    // resilience-off runs the invariant is still VERIFIED — the
    // unconditional ge("conservation") check below gates every scenario —
    // but it stays out of the fingerprint so legacy fingerprints remain
    // byte-identical to the committed .baseline_scenarios_pr7.json.
    append(&fp, "cons", static_cast<std::uint64_t>(r.conservation_ok ? 1 : 0));
  }
  for (const auto& g : r.per_gpu) append(&fp, "g", g.completed);
  return fp;
}

/// FNV-1a 64-bit over a string — the telemetry determinism digest.
std::uint64_t fnv1a(const std::string& s, std::uint64_t h = 0xcbf29ce484222325ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  names.reserve(scenario_defs().size());
  for (const auto& def : scenario_defs()) names.emplace_back(def.name);
  return names;
}

std::string scenario_description(const std::string& name) {
  const ScenarioDef* def = find_scenario(name);
  return def ? def->description : std::string();
}

ScenarioResult run_scenario(const std::string& name,
                            const std::string& data_dir,
                            const ScenarioTelemetry* telemetry,
                            const ScenarioSharding* sharding) {
  ScenarioResult out;
  out.name = name;
  const ScenarioDef* def = find_scenario(name);
  if (def == nullptr) {
    out.description = "unknown scenario";
    return out;
  }
  out.description = def->description;

  ClusterConfig cfg = def->config(data_dir);
  if (telemetry != nullptr) {
    cfg.telemetry.enabled = true;
    cfg.telemetry.sample_period_s = telemetry->sample_period_s;
  }
  if (sharding != nullptr) {
    cfg.sharded = true;
    cfg.sim_threads = sharding->threads;
  }
  out.cluster = run_cluster(cfg);
  out.report = metrics::trace_report(out.cluster.stage_trace);
  out.fingerprint = fingerprint_of(out.cluster, out.report);

  if (telemetry != nullptr) {
    // Unified Perfetto trace: stage spans on per-GPU lanes + counter tracks
    // + event-log instants, built before the stage trace is folded away.
    metrics::TraceRecorder rec;
    rec.add_stage_events_by_gpu(out.cluster.stage_trace);
    out.perfetto_json = metrics::to_chrome_trace_json(
        rec.spans(), &out.cluster.timeseries, &out.cluster.events);

    // Telemetry JSON. The digest covers the deterministic sections only
    // (series, events, fingerprint) — the profile carries host wall-clock.
    std::string series_json;
    out.cluster.timeseries.append_json(&series_json);
    std::string events_json;
    out.cluster.events.append_json_array(&events_json);
    out.telemetry_digest =
        fnv1a(out.fingerprint, fnv1a(events_json, fnv1a(series_json)));

    std::string& t = out.telemetry_json;
    char buf[96];
    t += "{\n  \"scenario\": \"";
    t += name;  // scenario names are code-chosen identifiers
    std::snprintf(buf, sizeof buf, "\",\n  \"sample_period_us\": %.17g,\n",
                  telemetry->sample_period_s * 1e6);
    t += buf;
    std::snprintf(buf, sizeof buf, "  \"digest\": \"%016llx\",\n",
                  static_cast<unsigned long long>(out.telemetry_digest));
    t += buf;
    t += "  \"fingerprint\": \"";
    t += out.fingerprint;
    t += "\",\n  \"timeseries\": ";
    t += series_json;
    t += ",\n  \"events\": ";
    t += events_json;
    t += ",\n  \"profile\": ";
    out.cluster.profile.append_json(&t);
    t += "\n}\n";
  }

  out.cluster.stage_trace.clear();
  out.cluster.stage_trace.shrink_to_fit();

  const ClusterResult& r = out.cluster;
  const metrics::TraceReport& rep = out.report;
  out.metrics = {
      {"hp_dmr", r.hp.dmr()},
      {"lp_dmr", r.lp.dmr()},
      {"hp_completed", static_cast<double>(r.hp.completed)},
      {"lp_completed", static_cast<double>(r.lp.completed)},
      {"hp_missed", static_cast<double>(r.hp.missed)},
      {"jobs_lost", static_cast<double>(r.jobs_lost)},
      {"drops", static_cast<double>(r.drops)},
      {"infeasible", static_cast<double>(r.infeasible_rejects)},
      {"worst_stall_us", rep.worst_stall_us},
      {"starved_frac",
       rep.stages == 0 ? 0.0
                       : static_cast<double>(rep.starved_stages) /
                             static_cast<double>(rep.stages)},
      {"unmatched_rows", static_cast<double>(r.unmatched_rows)},
      {"arrivals", static_cast<double>(r.arrivals)},
      {"total_jps", r.total_jps},
      {"steals", static_cast<double>(r.steals)},
      {"rehomes", static_cast<double>(r.rehomes)},
      {"coalesced", static_cast<double>(r.coalesced_transfers)},
      {"coalesced_mb_saved", r.coalesced_mb_saved},
      {"transfer_cancels", static_cast<double>(r.transfer_cancels)},
      {"conservation", r.conservation_ok ? 1.0 : 0.0},
      {"retries", static_cast<double>(r.retries)},
      {"retry_admits", static_cast<double>(r.retry_admits)},
      {"hedges", static_cast<double>(r.hedges)},
      {"hedge_wins", static_cast<double>(r.hedge_wins)},
      {"hedge_cancels", static_cast<double>(r.hedge_cancels)},
      {"hedge_waste", static_cast<double>(r.hedge_waste)},
      {"hedge_rescued", static_cast<double>(r.hedge_rescued_misses)},
      {"breaker_opens", static_cast<double>(r.breaker_opens)},
      {"breaker_closes", static_cast<double>(r.breaker_closes)},
  };
  // Derived resilience metrics. Goodput counts only on-time completions;
  // amplification is the retry traffic as a fraction of first attempts;
  // hedge_frac bounds the duplicate-work overhead.
  const double measure_s = cfg.duration_s - cfg.warmup_s;
  auto goodput_of = [measure_s](const ClusterResult& c) {
    const std::uint64_t done = c.hp.completed + c.lp.completed;
    const std::uint64_t missed = c.hp.missed + c.lp.missed;
    return measure_s <= 0.0
               ? 0.0
               : static_cast<double>(done - std::min(done, missed)) /
                     measure_s;
  };
  auto amplification_of = [](const ClusterResult& c) {
    return c.first_attempts == 0
               ? 0.0
               : static_cast<double>(c.retries) /
                     static_cast<double>(c.first_attempts);
  };
  out.metrics.emplace("goodput_jps", goodput_of(r));
  out.metrics.emplace("retry_amplification", amplification_of(r));
  out.metrics.emplace("hedge_frac",
                      r.first_attempts == 0
                          ? 0.0
                          : static_cast<double>(r.hedges) /
                                static_cast<double>(r.first_attempts));
  out.metrics.emplace("lp_p99_ms", r.lp.response_ms.percentile(99.0));
  out.metrics.emplace("hedge_client_p99_ms", r.hedge_client_p99_ms);

  if (def->counterfactual != nullptr) {
    // The same scenario with its recovery mechanism forced off — everything
    // else, including the seed and fault schedule, identical. Deterministic
    // like the primary run, so the gains are stable numbers, but kept out
    // of the fingerprint: the behaviour digest describes the primary run
    // alone.
    ClusterConfig base_cfg = def->counterfactual(data_dir);
    base_cfg.telemetry.enabled = false;
    if (sharding != nullptr) {
      base_cfg.sharded = true;
      base_cfg.sim_threads = sharding->threads;
    }
    const ClusterResult base = run_cluster(base_cfg);
    out.metrics.emplace("base_hp_dmr", base.hp.dmr());
    out.metrics.emplace("base_lp_dmr", base.lp.dmr());
    out.metrics.emplace("base_drops", static_cast<double>(base.drops));
    out.metrics.emplace("base_jobs_lost",
                        static_cast<double>(base.jobs_lost));
    out.metrics.emplace("base_total_jps", base.total_jps);
    out.metrics.emplace("base_transferred_mb", base.transferred_mb);
    out.metrics.emplace("base_goodput_jps", goodput_of(base));
    out.metrics.emplace("base_retry_amplification", amplification_of(base));
    out.metrics.emplace("base_retries", static_cast<double>(base.retries));
    out.metrics.emplace("base_lp_p99_ms",
                        base.lp.response_ms.percentile(99.0));
    out.metrics.emplace("base_conservation",
                        base.conservation_ok ? 1.0 : 0.0);
    out.metrics.emplace("hp_dmr_gain", base.hp.dmr() - r.hp.dmr());
    out.metrics.emplace("lp_dmr_gain", base.lp.dmr() - r.lp.dmr());
    out.metrics.emplace("drops_cut",
                        static_cast<double>(base.drops) -
                            static_cast<double>(r.drops));
    out.metrics.emplace("transferred_mb_cut",
                        base.transferred_mb - r.transferred_mb);
    out.metrics.emplace("goodput_gain", goodput_of(r) - goodput_of(base));
    out.metrics.emplace("lp_p99_cut_ms", base.lp.response_ms.percentile(99.0) -
                                             r.lp.response_ms.percentile(99.0));
    // NOTE: hedge_client_p99_ms is deliberately NOT differenced against the
    // base run's population p99 — hedged pairs are a biased-slow subset
    // (they are hedged precisely because they outlived the fleet's p-q), so
    // a subset-vs-population cut would be structurally negative even when
    // every rescue succeeds. The honest rescue count is hedge_rescued.
  }

  out.checks = def->checks;
  // Every scenario — old and new — gates on job conservation; a counter
  // that fails to balance is a fleet bug no matter the workload. The
  // counterfactual run must conserve too, when there is one.
  out.checks.push_back(ge("conservation", 1.0));
  if (def->counterfactual != nullptr) {
    out.checks.push_back(ge("base_conservation", 1.0));
  }
  out.pass = true;
  for (auto& check : out.checks) {
    const auto it = out.metrics.find(check.metric);
    check.value = it == out.metrics.end() ? 0.0 : it->second;
    check.pass = check.op == '<' ? check.value <= check.limit
                                 : check.value >= check.limit;
    out.pass = out.pass && check.pass;
  }
  return out;
}

}  // namespace daris::exp
