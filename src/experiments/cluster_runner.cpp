#include "experiments/cluster_runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>

#include "daris/offline.h"
#include "dnn/zoo.h"
#include "sim/sharded.h"
#include "sim/simulator.h"

namespace daris::exp {

const char* arrival_mode_name(ArrivalMode m) {
  switch (m) {
    case ArrivalMode::kPeriodic:
      return "periodic";
    case ArrivalMode::kPoisson:
      return "poisson";
    case ArrivalMode::kBursty:
      return "bursty";
    case ArrivalMode::kTrace:
      return "trace";
  }
  return "?";
}

namespace {

/// Home-GPU assignment. The home carries the task's static HP reservation
/// (Fleet::add_task), pins its model hot, and is the affinity target of the
/// model-affinity and hybrid policies. `work_per_job` (SM-us per release,
/// one entry per task) converts arrival rates into device load: a UNet job
/// costs several ResNet18 jobs, so balancing raw JPS would overload the
/// heavy-model hosts.
std::vector<int> assign_homes(const ClusterConfig& config,
                              const cluster::Fleet& fleet,
                              const std::vector<double>& work_per_job) {
  const auto& tasks = config.taskset.tasks;
  std::vector<int> homes(tasks.size(), 0);
  const int n = fleet.size();

  if (config.routing == cluster::RoutingPolicy::kModelAffinity) {
    // Pure affinity: one device per model kind. Minimal weight footprint,
    // but a kind's whole demand lands on one GPU — the skewed-demand
    // collapse documented in docs/CLUSTER.md.
    std::map<dnn::ModelKind, int> kind_home;
    int next_home = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      auto [it, fresh] = kind_home.try_emplace(tasks[i].model, next_home);
      if (fresh) next_home = (next_home + 1) % n;
      homes[i] = it->second;
    }
    return homes;
  }

  if (config.routing == cluster::RoutingPolicy::kHybrid) {
    // Affinity-aware load balancing. Each kind gets the fewest hosts its
    // load share needs (weights hot on few GPUs), sized in SM-us of work
    // per second rather than raw JPS — a UNet job costs ~4 ResNet18 jobs —
    // and its tasks are least-fill balanced across those hosts, so the HP
    // tasks (listed first per kind) spread instead of piling onto the first
    // host. Fair shares are proportional to compute scale, so a flagship
    // hosts more load than a half-size card. The algorithm itself lives in
    // cluster::pack_homes, which the rebalancer replays against *measured*
    // demand mid-run; here nominal rates (1/period) feed it.
    std::vector<double> task_load(tasks.size(), 0.0);
    std::vector<int> task_kind(tasks.size(), 0);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      task_load[i] = work_per_job[i] * 1.0e9 /
                     static_cast<double>(
                         std::max<common::Duration>(tasks[i].period, 1));
      task_kind[i] = static_cast<int>(tasks[i].model);
    }
    std::vector<double> device_scale(static_cast<std::size_t>(n), 0.0);
    for (int g = 0; g < n; ++g) {
      device_scale[static_cast<std::size_t>(g)] = fleet.compute_scale(g);
    }
    return cluster::pack_homes(task_load, task_kind, device_scale);
  }

  // Every other policy stripes tasks across the fleet.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    homes[i] = static_cast<int>(i) % n;
  }
  return homes;
}

/// Field-wise GpuSpec equality, for sharing AFET profiles only between
/// devices that are genuinely identical (same base spec *and* scale — two
/// same-scale nodes with different base specs must profile separately).
bool same_spec(const gpusim::GpuSpec& a, const gpusim::GpuSpec& b) {
  return a.sm_count == b.sm_count && a.mem_bandwidth == b.mem_bandwidth &&
         a.launch_overhead_us == b.launch_overhead_us &&
         a.sync_overhead_us == b.sync_overhead_us &&
         a.alpha_intra == b.alpha_intra &&
         a.intra_saturation == b.intra_saturation &&
         a.kappa_oversub == b.kappa_oversub &&
         a.quant_smoothing == b.quant_smoothing &&
         a.quota_penalty_a == b.quota_penalty_a &&
         a.quota_penalty_q0 == b.quota_penalty_q0 &&
         a.jitter_cv == b.jitter_cv &&
         a.jitter_load_slope == b.jitter_load_slope &&
         a.jitter_rho == b.jitter_rho;
}

}  // namespace

ClusterResult run_cluster(const ClusterConfig& config) {
  const auto wall_start = std::chrono::steady_clock::now();
  auto wall_ms_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  // The facade is constructed unconditionally: with zero device shards it
  // degenerates to the single-threaded engine bit-for-bit, so the unsharded
  // path stays byte-identical to runs predating sharding.
  const int devices = config.nodes.empty()
                          ? std::max(1, config.num_gpus)
                          : static_cast<int>(config.nodes.size());
  sim::ShardedSimulator sharded_sim(config.sharded ? devices : 0,
                                    config.sim_threads);
  sim::Simulator& sim = sharded_sim.control();

  metrics::Collector collector;
  collector.set_measure_start(common::from_sec(config.warmup_s));
  collector.enable_stage_trace(config.stage_trace);
  if (config.sharded) {
    // Device-shard events report finishes/stages from worker threads; lanes
    // give each device a private append target (merged after the run).
    collector.enable_lanes(devices);
  }
  if (config.telemetry.enabled) {
    collector.enable_event_log(config.telemetry.event_capacity);
  }

  rt::SchedulerConfig sched_cfg = config.sched;
  sched_cfg.canonicalize();

  cluster::FleetConfig fleet_cfg;
  fleet_cfg.num_gpus = config.num_gpus;
  fleet_cfg.gpu = config.gpu;
  fleet_cfg.nodes = config.nodes;
  fleet_cfg.sched = sched_cfg;
  fleet_cfg.transfer_us_per_mb = config.transfer_us_per_mb;
  fleet_cfg.seed = config.seed;
  cluster::Fleet fleet(sharded_sim, fleet_cfg, &collector);
  // Sized from the fleet, not the config: Fleet clamps num_gpus to >= 1 and
  // config.nodes overrides it entirely.
  collector.set_gpu_count(fleet.size());

  // Pre-size the event pool from the task-set cardinality (one pending
  // release timer per task) plus per-stream launch/completion and per-job
  // sync events; the slack absorbs open-loop bursts. Sizing is a hint — the
  // pool still grows when a burst outruns it.
  const std::size_t per_device_events =
      static_cast<std::size_t>(sched_cfg.parallelism()) * 2;
  if (config.sharded) {
    sharded_sim.reserve(config.taskset.tasks.size() * 3 + 64,
                        per_device_events + 64);
  } else {
    sim.reserve(config.taskset.tasks.size() * 3 +
                static_cast<std::size_t>(fleet.size()) * per_device_events +
                64);
  }

  // One compiled model per distinct kind, shared by every GPU and
  // calibrated against the fleet's base spec; heterogeneous devices run the
  // same kernels at their own scaled rate.
  std::map<dnn::ModelKind, std::unique_ptr<dnn::CompiledModel>> models;
  for (const auto& t : config.taskset.tasks) {
    if (!models.count(t.model)) {
      models.emplace(t.model,
                     std::make_unique<dnn::CompiledModel>(dnn::compiled_model(
                         t.model, sched_cfg.batch, config.gpu)));
    }
  }

  // Offline phase 1: AFET profiling, once per distinct resolved device
  // spec (a homogeneous fleet profiles once; heterogeneous nodes each
  // measure their own full-load execution times, seeding per-device MRET
  // honestly). The cache stays live for the whole run: kSlow/kAdd fault
  // callbacks re-seed a changed device through the same lookup, so a
  // straggler slowed to a scale some other node already runs at reuses that
  // node's profile verbatim.
  std::vector<const dnn::CompiledModel*> distinct;
  distinct.reserve(models.size());
  for (const auto& [kind, m] : models) distinct.push_back(m.get());
  std::vector<gpusim::GpuSpec> profiled_specs;
  std::vector<rt::AfetResult> afet_profiles;
  auto profile_slot = [&](const gpusim::GpuSpec& spec) {
    std::size_t slot = profiled_specs.size();
    for (std::size_t i = 0; i < profiled_specs.size(); ++i) {
      if (same_spec(profiled_specs[i], spec)) {
        slot = i;
        break;
      }
    }
    if (slot == profiled_specs.size()) {
      profiled_specs.push_back(spec);
      afet_profiles.push_back(rt::profile_afet(
          spec, sched_cfg, distinct, /*jobs_per_stream=*/16, config.seed));
    }
    return slot;
  };
  std::vector<std::size_t> afet_of_gpu(
      static_cast<std::size_t>(fleet.size()), 0);
  for (int g = 0; g < fleet.size(); ++g) {
    afet_of_gpu[static_cast<std::size_t>(g)] =
        profile_slot(fleet.node(g).resolved());
  }

  std::vector<double> work_per_job(config.taskset.tasks.size(), 0.0);
  for (std::size_t i = 0; i < config.taskset.tasks.size(); ++i) {
    work_per_job[i] =
        models.at(config.taskset.tasks[i].model)->total_work();
  }
  const std::vector<int> homes =
      assign_homes(config, fleet, work_per_job);
  for (std::size_t i = 0; i < config.taskset.tasks.size(); ++i) {
    const auto& t = config.taskset.tasks[i];
    const int id = fleet.add_task(t, models.at(t.model).get(), homes[i]);
    for (int g = 0; g < fleet.size(); ++g) {
      const auto& afet =
          afet_profiles[afet_of_gpu[static_cast<std::size_t>(g)]];
      fleet.set_afet(id, g, afet.for_model(models.at(t.model).get()));
    }
  }

  // Offline phase 2: Algorithm 1 initial context assignment, per GPU.
  fleet.run_offline_phase();
  const double wall_ms_offline = wall_ms_since(wall_start);

  cluster::RouterConfig router_cfg;
  router_cfg.policy = config.routing;
  router_cfg.spill_threshold = config.spill_threshold;
  router_cfg.coalesce =
      config.rebalance.enabled && config.rebalance.coalesce;
  router_cfg.seed = config.seed ^ 0x90C7E6ull;
  cluster::Router router(fleet, router_cfg, &collector);
  // The resilience layer sits between the drivers and the router. Disabled
  // (the default) it forwards every release untouched, so routing through it
  // unconditionally keeps one code path while preserving byte-identical runs.
  cluster::ResiliencePolicy resilience(sim, fleet, router, config.resilience,
                                       &collector);
  workload::ReleaseFn to_router = [&resilience](int id) {
    resilience.release(id);
  };

  const common::Time horizon = common::from_sec(config.duration_s);
  std::unique_ptr<workload::PeriodicDriver> periodic;
  std::unique_ptr<workload::OpenLoopDriver> open_loop;
  std::unique_ptr<workload::TraceDriver> trace_driver;
  if (config.arrivals == ArrivalMode::kPeriodic) {
    periodic = std::make_unique<workload::PeriodicDriver>(
        sim, config.taskset, to_router, horizon);
    periodic->start();
  } else if (config.arrivals == ArrivalMode::kTrace) {
    trace_driver = std::make_unique<workload::TraceDriver>(
        sim, config.taskset, config.trace, to_router, horizon);
    trace_driver->start();
  } else {
    workload::OpenLoopConfig ol;
    ol.process = config.arrivals == ArrivalMode::kPoisson
                     ? workload::ArrivalProcess::kPoisson
                     : workload::ArrivalProcess::kBursty;
    ol.rate_scale = config.rate_scale;
    ol.seed = config.seed ^ 0x09E61ull;
    open_loop = std::make_unique<workload::OpenLoopDriver>(
        sim, config.taskset, to_router, horizon, ol);
    open_loop->start();
  }

  // Fault schedule: each action is an ordinary simulator event. kFail and
  // kDrain are pure Fleet transitions; kSlow and kAdd additionally re-seed
  // the changed device's AFET from the profile cache above (MRET would
  // converge on its own, but only after mispredicted stages — the paper's
  // offline phase exists precisely to spare the admission test that blind
  // spot). The profiling caches and the model map are function-locals that
  // outlive sim.run_until, so capturing them by reference is sound.
  auto seed_afet = [&](int g) {
    const auto& afet = afet_profiles[profile_slot(fleet.node(g).resolved())];
    for (std::size_t i = 0; i < config.taskset.tasks.size(); ++i) {
      fleet.set_afet(static_cast<int>(i), g,
                     afet.for_model(models.at(config.taskset.tasks[i].model)
                                        .get()));
    }
  };
  for (const FaultSpec& f : config.faults) {
    const common::Time when = common::from_sec(f.at_s);
    switch (f.kind) {
      case FaultSpec::Kind::kFail:
        fleet.fail_gpu(f.gpu, when);
        break;
      case FaultSpec::Kind::kDrain:
        fleet.drain_gpu(f.gpu, when);
        break;
      case FaultSpec::Kind::kSlow:
        sim.schedule_at(when, [&fleet, &seed_afet, f] {
          fleet.slow_gpu_now(f.gpu, f.factor);
          seed_afet(f.gpu);
        });
        break;
      case FaultSpec::Kind::kAdd:
        sim.schedule_at(when, [&fleet, &seed_afet, f] {
          const int g = fleet.add_gpu_now(f.node);
          seed_afet(g);
          fleet.run_offline_phase(g);
        });
        break;
    }
  }

  // Self-healing rebalancer, armed only when configured: started after the
  // fault schedule (its periodic demand tick is then the last setup draw of
  // sequence numbers before telemetry) and before the telemetry sampler, so
  // the telemetry-inert contract is preserved — sampler registration stays
  // the final setup step whether or not rebalancing is on.
  cluster::Rebalancer rebalancer(sim, fleet, router, config.rebalance,
                                 &collector);
  rebalancer.start(horizon);
  // Resilience breaker tick armed after the rebalancer, before the sampler
  // (same telemetry-inert ordering contract); disabled configs schedule
  // nothing here.
  resilience.start(horizon);

  // Telemetry sampler: tracks registered up front for every device the run
  // can ever hold (initial fleet + scheduled kAdd scale-ups; probes for a
  // device not online yet read 0), so mid-run autoscaling needs no
  // allocation. Registered after the fault schedule so the sampler's single
  // t=0 event is the last sequence draw of setup; probes are const reads
  // and the tick touches only the sampler's rings, so the run's scheduling
  // decisions are identical with telemetry on or off.
  metrics::TimeSeries series;
  if (config.telemetry.enabled) {
    int max_gpus = fleet.size();
    for (const FaultSpec& f : config.faults) {
      if (f.kind == FaultSpec::Kind::kAdd) ++max_gpus;
    }
    auto online = [&fleet](int g) { return g < fleet.size(); };
    for (int g = 0; g < max_gpus; ++g) {
      series.add_track("gpu/util", g, [&fleet, online, g] {
        return online(g) ? fleet.scheduler(g).active_utilization() : 0.0;
      });
      series.add_track("gpu/queue_hp", g, [&fleet, online, g] {
        return online(g) ? static_cast<double>(fleet.scheduler(g).ready_stages(
                               common::Priority::kHigh))
                         : 0.0;
      });
      series.add_track("gpu/queue_lp", g, [&fleet, online, g] {
        return online(g) ? static_cast<double>(fleet.scheduler(g).ready_stages(
                               common::Priority::kLow))
                         : 0.0;
      });
      series.add_track("gpu/hot_models", g, [&fleet, online, g] {
        return online(g) ? static_cast<double>(fleet.hot_model_count(g)) : 0.0;
      });
      series.add_track("gpu/transfers_in", g, [&router, g] {
        return static_cast<double>(router.pending_transfers_to(g));
      });
      series.add_track("gpu/health", g, [&fleet, online, g] {
        return online(g) ? static_cast<double>(
                               static_cast<int>(fleet.health(g)))
                         : static_cast<double>(
                               static_cast<int>(cluster::GpuHealth::kFailed));
      });
    }
    series.add_track("fleet/backlog", -1, [&fleet] {
      double sum = 0.0;
      for (int g = 0; g < fleet.size(); ++g) {
        sum += static_cast<double>(fleet.scheduler(g).jobs_in_flight());
      }
      return sum;
    });
    // Windowed DMR: misses over completions since the previous tick. The
    // window state lives inside the probe closure — sampler-owned, not
    // simulation state. class_counts() folds un-finalized lanes, so sharded
    // runs sample the same values the single-simulator run would.
    auto windowed_dmr = [&collector](common::Priority p) {
      return [&collector, p, last_missed = std::uint64_t{0},
              last_completed = std::uint64_t{0}]() mutable {
        const metrics::Collector::ClassCounts s = collector.class_counts(p);
        const std::uint64_t dm = s.missed - last_missed;
        const std::uint64_t dc = s.completed - last_completed;
        last_missed = s.missed;
        last_completed = s.completed;
        return dc == 0 ? 0.0
                       : static_cast<double>(dm) / static_cast<double>(dc);
      };
    };
    series.add_track("fleet/hp_dmr_w", -1,
                     windowed_dmr(common::Priority::kHigh));
    series.add_track("fleet/lp_dmr_w", -1,
                     windowed_dmr(common::Priority::kLow));
    series.add_track("fleet/jobs_lost", -1, [&fleet] {
      return static_cast<double>(fleet.jobs_lost());
    });
    // Resilience gauges, registered only when the layer is live so a
    // resilience-off capture stays byte-identical to one predating it.
    if (config.resilience.enabled) {
      for (int g = 0; g < max_gpus; ++g) {
        series.add_track("gpu/breaker", g, [&fleet, online, g] {
          return online(g) && fleet.breaker_open(g) ? 1.0 : 0.0;
        });
      }
      series.add_track("fleet/retry_tokens", -1, [&resilience] {
        return resilience.budget_tokens();
      });
      series.add_track("fleet/retries", -1, [&resilience] {
        return static_cast<double>(resilience.retries());
      });
    }
    series.start(sim, common::from_sec(config.telemetry.sample_period_s),
                 horizon);
  }

  const auto wall_run_start = std::chrono::steady_clock::now();
  sharded_sim.run_until(horizon);
  const double wall_ms_run = wall_ms_since(wall_run_start);
  series.stop();
  // Fold per-device lanes into the flat summaries/traces (no-op unsharded).
  collector.finalize_lanes();

  ClusterResult result;
  result.total_jps = collector.throughput_jps(horizon);
  result.hp = collector.summary(common::Priority::kHigh);
  result.lp = collector.summary(common::Priority::kLow);
  result.cross_gpu_migrations = router.cross_gpu_migrations();
  result.drops = router.drops();
  result.infeasible_rejects = router.infeasible_rejects();
  result.transfers = router.transfers();
  result.transferred_mb = router.transferred_mb();
  result.rebalancing = config.rebalance.enabled;
  result.steals = rebalancer.steals();
  result.steal_scans = rebalancer.steal_scans();
  result.rehomes = rebalancer.rehomes();
  result.rehome_rounds = rebalancer.rehome_rounds();
  result.coalesced_transfers = router.coalesced_transfers();
  result.coalesced_mb_saved = router.coalesced_mb_saved();
  result.transfer_cancels = router.transfer_cancels();
  result.intra_gpu_migrations = fleet.intra_gpu_migrations();
  result.arrivals = open_loop      ? open_loop->arrivals()
                    : trace_driver ? trace_driver->arrivals()
                                   : 0;
  result.jobs_lost = fleet.jobs_lost();
  result.unmatched_rows = trace_driver ? trace_driver->unmatched() : 0;
  result.resilience = config.resilience.enabled;
  result.first_attempts = resilience.first_attempts();
  result.retries = resilience.retries();
  result.retry_admits = resilience.retry_admits();
  result.retry_abandoned_budget = resilience.abandoned_budget();
  result.retry_abandoned_expired = resilience.abandoned_expired();
  result.retry_abandoned_attempts = resilience.abandoned_attempts();
  result.hedges = resilience.hedges();
  result.hedge_wins = resilience.hedge_wins();
  result.hedge_cancels = resilience.hedge_cancels();
  result.hedge_waste = resilience.hedge_waste();
  result.hedge_rescued_misses = resilience.hedge_rescued_misses();
  result.hedge_client_p99_ms = resilience.hedge_client_percentile_ms(99.0);
  result.breaker_opens = resilience.breaker_opens();
  result.breaker_closes = resilience.breaker_closes();
  // Job conservation, checked after EVERY run — faults, rebalancing, and
  // resilience all conserve jobs, so a violation is a fleet bug regardless
  // of configuration.
  {
    cluster::Fleet::ConservationInput cons;
    for (std::size_t c = 0; c < 2; ++c) {
      const auto p = static_cast<common::Priority>(c);
      cons.released[c] = router.released_of(p);
      cons.shed[c] = router.shed_of(p);
      cons.pending[c] = router.pending_of(p);
    }
    cons.steals = rebalancer.steals();
    const cluster::Fleet::ConservationReport rep =
        fleet.check_conservation(cons);
    result.conservation_ok = rep.ok;
    result.conservation_detail = rep.detail;
  }
  result.per_gpu.resize(static_cast<std::size_t>(fleet.size()));
  for (int g = 0; g < fleet.size(); ++g) {
    auto& s = result.per_gpu[static_cast<std::size_t>(g)];
    s.utilization = fleet.gpu(g).utilization(horizon);
    s.completed = fleet.jobs_completed(g);
    s.intra_migrations = fleet.scheduler(g).migrations();
    s.routing = collector.routing(g);
  }
  result.stage_trace = collector.stage_trace();

  if (config.telemetry.enabled) {
    result.timeseries = std::move(series);
    if (collector.event_log() != nullptr) {
      result.events = std::move(*collector.event_log());
    }
  }

  const sim::Simulator::Stats sstats = sharded_sim.stats();
  result.profile.events_executed = sstats.events_executed;
  result.profile.callbacks_inline = sstats.callbacks_inline;
  result.profile.callbacks_heap = sstats.callbacks_heap;
  result.profile.heap_high_water = sstats.heap_high_water;
  result.profile.pool_slots = sstats.pool_slots;
  for (int g = 0; g < fleet.size(); ++g) {
    const gpusim::Gpu::SolverStats& ss = fleet.gpu(g).solver_stats();
    result.profile.solver_flushes += ss.flushes;
    result.profile.solver_contexts_solved += ss.contexts_solved;
    result.profile.solver_contexts_reused += ss.contexts_reused;
  }
  result.profile.wall_ms_offline = wall_ms_offline;
  result.profile.wall_ms_run = wall_ms_run;
  result.profile.wall_ms_total = wall_ms_since(wall_start);
  return result;
}

}  // namespace daris::exp
