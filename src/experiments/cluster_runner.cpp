#include "experiments/cluster_runner.h"

#include <map>
#include <memory>

#include "daris/offline.h"
#include "dnn/zoo.h"
#include "sim/simulator.h"

namespace daris::exp {

const char* arrival_mode_name(ArrivalMode m) {
  switch (m) {
    case ArrivalMode::kPeriodic:
      return "periodic";
    case ArrivalMode::kPoisson:
      return "poisson";
    case ArrivalMode::kBursty:
      return "bursty";
  }
  return "?";
}

ClusterResult run_cluster(const ClusterConfig& config) {
  sim::Simulator sim;

  metrics::Collector collector;
  collector.set_measure_start(common::from_sec(config.warmup_s));
  collector.enable_stage_trace(config.stage_trace);

  rt::SchedulerConfig sched_cfg = config.sched;
  sched_cfg.canonicalize();

  cluster::FleetConfig fleet_cfg;
  fleet_cfg.num_gpus = config.num_gpus;
  fleet_cfg.gpu = config.gpu;
  fleet_cfg.sched = sched_cfg;
  fleet_cfg.seed = config.seed;
  cluster::Fleet fleet(sim, fleet_cfg, &collector);
  // Sized from the fleet, not the config: Fleet clamps num_gpus to >= 1.
  collector.set_gpu_count(fleet.size());

  // One compiled model per distinct kind, shared by every GPU (the
  // zero-delay migration premise: weights are resident fleet-wide).
  std::map<dnn::ModelKind, std::unique_ptr<dnn::CompiledModel>> models;
  for (const auto& t : config.taskset.tasks) {
    if (!models.count(t.model)) {
      models.emplace(t.model,
                     std::make_unique<dnn::CompiledModel>(dnn::compiled_model(
                         t.model, sched_cfg.batch, config.gpu)));
    }
  }

  // Offline phase 1: AFET profiling. Every GPU runs the same partitioning
  // on the same spec, so one profile seeds all devices.
  std::vector<const dnn::CompiledModel*> distinct;
  distinct.reserve(models.size());
  for (const auto& [kind, m] : models) distinct.push_back(m.get());
  const rt::AfetResult afet = rt::profile_afet(
      config.gpu, sched_cfg, distinct, /*jobs_per_stream=*/16, config.seed);

  // Home-GPU assignment carries the static HP reservation (Fleet::add_task)
  // and is the model-affinity routing target: affinity keeps each model kind
  // on one device, every other policy stripes tasks across the fleet.
  std::map<dnn::ModelKind, int> kind_home;
  int next_home = 0;
  for (std::size_t i = 0; i < config.taskset.tasks.size(); ++i) {
    const auto& t = config.taskset.tasks[i];
    int home;
    if (config.routing == cluster::RoutingPolicy::kModelAffinity) {
      auto [it, fresh] = kind_home.try_emplace(t.model, next_home);
      if (fresh) next_home = (next_home + 1) % fleet.size();
      home = it->second;
    } else {
      home = static_cast<int>(i) % fleet.size();
    }
    const int id = fleet.add_task(t, models.at(t.model).get(), home);
    fleet.set_afet(id, afet.for_model(models.at(t.model).get()));
  }

  // Offline phase 2: Algorithm 1 initial context assignment, per GPU.
  fleet.run_offline_phase();

  cluster::Router router(fleet, config.routing, config.seed ^ 0x90C7E6ull,
                         &collector);
  workload::ReleaseFn to_router = [&router](int id) { router.release(id); };

  const common::Time horizon = common::from_sec(config.duration_s);
  std::unique_ptr<workload::PeriodicDriver> periodic;
  std::unique_ptr<workload::OpenLoopDriver> open_loop;
  if (config.arrivals == ArrivalMode::kPeriodic) {
    periodic = std::make_unique<workload::PeriodicDriver>(
        sim, config.taskset, to_router, horizon);
    periodic->start();
  } else {
    workload::OpenLoopConfig ol;
    ol.process = config.arrivals == ArrivalMode::kPoisson
                     ? workload::ArrivalProcess::kPoisson
                     : workload::ArrivalProcess::kBursty;
    ol.rate_scale = config.rate_scale;
    ol.seed = config.seed ^ 0x09E61ull;
    open_loop = std::make_unique<workload::OpenLoopDriver>(
        sim, config.taskset, to_router, horizon, ol);
    open_loop->start();
  }
  sim.run_until(horizon);

  ClusterResult result;
  result.total_jps = collector.throughput_jps(horizon);
  result.hp = collector.summary(common::Priority::kHigh);
  result.lp = collector.summary(common::Priority::kLow);
  result.cross_gpu_migrations = router.cross_gpu_migrations();
  result.drops = router.drops();
  result.intra_gpu_migrations = fleet.intra_gpu_migrations();
  result.arrivals = open_loop ? open_loop->arrivals() : 0;
  result.per_gpu.resize(static_cast<std::size_t>(fleet.size()));
  for (int g = 0; g < fleet.size(); ++g) {
    auto& s = result.per_gpu[static_cast<std::size_t>(g)];
    s.utilization = fleet.gpu(g).utilization(horizon);
    s.completed = fleet.jobs_completed(g);
    s.intra_migrations = fleet.scheduler(g).migrations();
    s.routing = collector.routing(g);
  }
  result.stage_trace = collector.stage_trace();
  return result;
}

}  // namespace daris::exp
