#include "experiments/grid.h"

#include <cstdio>

#include "common/table.h"

namespace daris::exp {

namespace {
GridPoint make_point(rt::Policy policy, int nc, int ns, double os,
                     int batch) {
  GridPoint p;
  p.sched.policy = policy;
  p.sched.num_contexts = nc;
  p.sched.streams_per_context = ns;
  p.sched.oversubscription = os;
  p.sched.batch = batch;
  p.sched.canonicalize();
  p.label = std::string(rt::policy_name(policy)) + " " + p.sched.label();
  return p;
}
}  // namespace

std::vector<GridPoint> paper_grid(int batch) {
  std::vector<GridPoint> grid;
  // STR: pure streams, Ns = 2..10.
  for (int ns : {2, 3, 4, 6, 8, 10}) {
    grid.push_back(make_point(rt::Policy::kStr, 1, ns, 1.0, batch));
  }
  // MPS: Nc x 1 with OS in {1, 1.5, 2, Nc}.
  for (int nc : {2, 3, 4, 6, 8, 10}) {
    for (double os : {1.0, 1.5, 2.0, static_cast<double>(nc)}) {
      if (os > nc) continue;
      grid.push_back(make_point(rt::Policy::kMps, nc, 1, os, batch));
    }
  }
  // MPS+STR: Np = Nc * Ns <= 10.
  const int combos[][2] = {{2, 2}, {2, 3}, {2, 4}, {2, 5},
                           {3, 2}, {3, 3}, {4, 2}, {5, 2}};
  for (const auto& c : combos) {
    for (double os : {1.0, 2.0, static_cast<double>(c[0])}) {
      if (os > c[0]) continue;
      grid.push_back(make_point(rt::Policy::kMpsStr, c[0], c[1], os, batch));
    }
  }
  return grid;
}

std::vector<GridPoint> os_sweep_grid(int num_contexts) {
  std::vector<GridPoint> grid;
  for (double os = 1.0; os <= num_contexts + 1e-9; os += 0.5) {
    grid.push_back(make_point(rt::Policy::kMps, num_contexts, 1, os, 1));
  }
  return grid;
}

std::vector<GridResult> run_grid(
    const workload::TaskSetSpec& taskset, const std::vector<GridPoint>& grid,
    double duration_s, double warmup_s,
    const std::function<void(const GridResult&)>& progress) {
  std::vector<GridResult> out;
  out.reserve(grid.size());
  for (const auto& point : grid) {
    RunConfig cfg;
    cfg.taskset = taskset;
    cfg.sched = point.sched;
    cfg.duration_s = duration_s;
    cfg.warmup_s = warmup_s;
    GridResult gr{point, run_daris(cfg)};
    if (progress) progress(gr);
    out.push_back(std::move(gr));
  }
  return out;
}

std::string render_figure_table(const std::vector<GridResult>& results,
                                double lower_jps, double upper_jps) {
  common::Table table({"config", "Np", "JPS", "vs upper", "HP DMR", "LP DMR",
                       "HP resp p50/max (ms)", "LP resp p50/max (ms)",
                       "LP rejected", "util"});
  for (const auto& r : results) {
    const auto& m = r.result;
    char hp_resp[48], lp_resp[48];
    std::snprintf(hp_resp, sizeof(hp_resp), "%.1f / %.1f",
                  m.hp.response_ms.percentile(50), m.hp.response_ms.max());
    std::snprintf(lp_resp, sizeof(lp_resp), "%.1f / %.1f",
                  m.lp.response_ms.percentile(50), m.lp.response_ms.max());
    table.add_row({r.point.label, common::fmt_int(r.point.sched.parallelism()),
                   common::fmt_double(m.total_jps, 0),
                   common::fmt_percent(m.total_jps / upper_jps - 1.0, 1),
                   common::fmt_percent(m.hp.dmr(), 2),
                   common::fmt_percent(m.lp.dmr(), 2), hp_resp, lp_resp,
                   common::fmt_percent(m.lp.rejection_rate(), 0),
                   common::fmt_double(m.gpu_utilization, 2)});
  }
  std::string out = table.to_string();
  char footer[160];
  std::snprintf(footer, sizeof(footer),
                "baselines: lower (single stream) = %.0f JPS, upper (pure "
                "batching) = %.0f JPS\n",
                lower_jps, upper_jps);
  out += footer;
  return out;
}

const GridResult* best_throughput(const std::vector<GridResult>& results) {
  const GridResult* best = nullptr;
  for (const auto& r : results) {
    if (!best || r.result.total_jps > best->result.total_jps) best = &r;
  }
  return best;
}

}  // namespace daris::exp
