// Cluster experiment runner: wires a GPU fleet, shared compiled models,
// offline AFET profiling, per-GPU DARIS schedulers, the routing front-end,
// and a release driver (periodic or open-loop) into one reproducible run.
// Mirrors RunConfig/run_daris one level up the stack.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/router.h"
#include "experiments/runner.h"
#include "workload/driver.h"

namespace daris::exp {

/// Release pattern driving the fleet.
enum class ArrivalMode {
  kPeriodic,  // strictly periodic (phase + k*T), the paper's workload
  kPoisson,   // open-loop Poisson arrivals at each task's nominal rate
  kBursty,    // open-loop two-state bursty (MMPP-style) arrivals
};

const char* arrival_mode_name(ArrivalMode m);

struct ClusterConfig {
  workload::TaskSetSpec taskset;
  rt::SchedulerConfig sched;
  gpusim::GpuSpec gpu = gpusim::GpuSpec::rtx2080ti();
  int num_gpus = 4;
  /// Heterogeneous fleet: one node spec per device (overrides num_gpus/gpu
  /// when non-empty). AFET is profiled per distinct compute scale, and the
  /// kernels stay calibrated against `gpu` — the scaled device simply runs
  /// them faster or slower.
  std::vector<cluster::GpuNodeSpec> nodes;
  cluster::RoutingPolicy routing = cluster::RoutingPolicy::kLeastUtilization;
  /// Hybrid policy: home-GPU relative load at which LP jobs spill.
  double spill_threshold = 0.75;
  /// Cross-GPU weight-transfer cost for cold-model migrations (us per MB of
  /// model footprint); 0 restores the zero-delay premise.
  double transfer_us_per_mb = 80.0;
  ArrivalMode arrivals = ArrivalMode::kPeriodic;
  /// Rate multiplier for the open-loop modes (>1 drives overload).
  double rate_scale = 1.0;
  double duration_s = 6.0;
  double warmup_s = 1.0;
  std::uint64_t seed = 42;
  bool stage_trace = false;
};

/// Per-device slice of a cluster run.
struct GpuSummary {
  double utilization = 0.0;  // average SM utilisation over the run
  std::uint64_t completed = 0;          // jobs finished on this GPU
  std::uint64_t intra_migrations = 0;   // context-level (Eq. 12) migrations
  metrics::RoutingCounters routing;     // router outcomes for this GPU
};

struct ClusterResult {
  double total_jps = 0.0;
  metrics::ClassSummary hp;
  metrics::ClassSummary lp;
  std::vector<GpuSummary> per_gpu;
  std::uint64_t cross_gpu_migrations = 0;
  std::uint64_t drops = 0;
  std::uint64_t infeasible_rejects = 0;  // fleet admission controller sheds
  std::uint64_t transfers = 0;           // cold-model weight transfers
  double transferred_mb = 0.0;           // total weight MB shipped
  std::uint64_t intra_gpu_migrations = 0;
  std::uint64_t arrivals = 0;  // open-loop modes; 0 for periodic
  std::vector<metrics::StageEvent> stage_trace;
};

/// Runs the fleet on the configured task set and returns the fleet summary.
ClusterResult run_cluster(const ClusterConfig& config);

}  // namespace daris::exp
