// Cluster experiment runner: wires a GPU fleet, shared compiled models,
// offline AFET profiling, per-GPU DARIS schedulers, the routing front-end,
// and a release driver (periodic or open-loop) into one reproducible run.
// Mirrors RunConfig/run_daris one level up the stack.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/rebalancer.h"
#include "cluster/resilience.h"
#include "cluster/router.h"
#include "experiments/runner.h"
#include "metrics/eventlog.h"
#include "metrics/profile.h"
#include "metrics/timeseries.h"
#include "workload/driver.h"
#include "workload/trace.h"

namespace daris::exp {

/// Release pattern driving the fleet.
enum class ArrivalMode {
  kPeriodic,  // strictly periodic (phase + k*T), the paper's workload
  kPoisson,   // open-loop Poisson arrivals at each task's nominal rate
  kBursty,    // open-loop two-state bursty (MMPP-style) arrivals
  kTrace,     // replay of ClusterConfig::trace through workload::TraceDriver
};

const char* arrival_mode_name(ArrivalMode m);

/// One scheduled fault / autoscaling action (docs/SCENARIOS.md). Actions
/// run as ordinary simulator events at `at_s`, so a faulted run stays a
/// pure function of (config, seed, fault list).
struct FaultSpec {
  enum class Kind {
    kFail,   // fail-stop: in-flight jobs become misses, device goes dark
    kSlow,   // straggler: multiply the device's compute scale by `factor`
    kDrain,  // graceful scale-down: finish in-flight, place nothing new
    kAdd,    // scale-up: bring `node` online, profiled and assigned live
  };
  Kind kind = Kind::kFail;
  int gpu = 0;         // target device index (ignored for kAdd)
  double at_s = 0.0;   // simulated seconds from run start
  double factor = 1.0; // kSlow only (0.5 halves the device's throughput)
  cluster::GpuNodeSpec node;  // kAdd only: the device brought online
};

struct ClusterConfig {
  workload::TaskSetSpec taskset;
  rt::SchedulerConfig sched;
  gpusim::GpuSpec gpu = gpusim::GpuSpec::rtx2080ti();
  int num_gpus = 4;
  /// Heterogeneous fleet: one node spec per device (overrides num_gpus/gpu
  /// when non-empty). AFET is profiled per distinct compute scale, and the
  /// kernels stay calibrated against `gpu` — the scaled device simply runs
  /// them faster or slower.
  std::vector<cluster::GpuNodeSpec> nodes;
  cluster::RoutingPolicy routing = cluster::RoutingPolicy::kLeastUtilization;
  /// Hybrid policy: home-GPU relative load at which LP jobs spill.
  double spill_threshold = 0.75;
  /// Cross-GPU weight-transfer cost for cold-model migrations (us per MB of
  /// model footprint); 0 restores the zero-delay premise.
  double transfer_us_per_mb = 80.0;
  ArrivalMode arrivals = ArrivalMode::kPeriodic;
  /// Rate multiplier for the open-loop modes (>1 drives overload).
  double rate_scale = 1.0;
  /// kTrace arrivals: the trace to replay (rows map to taskset tasks
  /// round-robin within their (model, SLO) class).
  workload::Trace trace;
  /// Fault / autoscaling schedule; empty (the default) leaves the run
  /// byte-identical to a fault-free one. kSlow and kAdd re-profile AFET for
  /// the changed device via the same cached-by-spec path as construction.
  std::vector<FaultSpec> faults;
  double duration_s = 6.0;
  double warmup_s = 1.0;
  std::uint64_t seed = 42;
  bool stage_trace = false;

  /// Sharded parallel simulation (sim/sharded.h): one slab-pooled event heap
  /// per device, run on a thread pool; cross-device events (routing,
  /// transfers, steals, faults, telemetry) keep a seeded total order on the
  /// control shard. Off by default. A sharded run reproduces the
  /// single-simulator run's fingerprint at any thread count
  /// (bench_fig_scenarios --sharded gates this across the scenario matrix).
  bool sharded = false;
  /// Worker lanes for sharded runs, including the calling thread; <= 0 picks
  /// min(hardware_concurrency, device count). Results are identical at any
  /// value — the knob only changes wall-clock.
  int sim_threads = 0;

  /// Self-healing rebalancing (cluster/rebalancer.h): work stealing,
  /// demand-aware re-homing, and — via RouterConfig::coalesce — transfer
  /// coalescing, all armed by rebalance.enabled. The default (disabled)
  /// config schedules no events and installs no observers, leaving the run
  /// byte-identical to one predating the rebalancer.
  cluster::RebalanceConfig rebalance;

  /// Client resilience layer (cluster/resilience.h): retries with backoff,
  /// token-bucket retry budget, hedged LP requests, per-GPU circuit
  /// breakers. The default (disabled) config makes the layer a pass-through
  /// to the router, leaving the run byte-identical to one predating it.
  cluster::ResilienceConfig resilience;

  /// Telemetry (docs/OBSERVABILITY.md). When enabled, run_cluster arms a
  /// metrics::TimeSeries sampler over per-GPU and fleet gauges and turns on
  /// the collector's structured event log; both land in ClusterResult.
  /// Probes are const reads and the sampler is one pooled re-armed event,
  /// so enabling telemetry leaves every scheduling decision — and with it
  /// every scenario fingerprint — byte-identical (bench_fig_scenarios
  /// verifies this per run).
  struct TelemetryConfig {
    bool enabled = false;
    /// Sampler cadence in simulated seconds.
    double sample_period_s = 0.01;
    /// Event-log reservation (records); appends within it are free.
    std::size_t event_capacity = std::size_t{1} << 16;
  };
  TelemetryConfig telemetry;
};

/// Per-device slice of a cluster run.
struct GpuSummary {
  double utilization = 0.0;  // average SM utilisation over the run
  std::uint64_t completed = 0;          // jobs finished on this GPU
  std::uint64_t intra_migrations = 0;   // context-level (Eq. 12) migrations
  metrics::RoutingCounters routing;     // router outcomes for this GPU
};

struct ClusterResult {
  double total_jps = 0.0;
  metrics::ClassSummary hp;
  metrics::ClassSummary lp;
  std::vector<GpuSummary> per_gpu;
  std::uint64_t cross_gpu_migrations = 0;
  std::uint64_t drops = 0;
  std::uint64_t infeasible_rejects = 0;  // fleet admission controller sheds
  std::uint64_t transfers = 0;           // cold-model weight transfers
  double transferred_mb = 0.0;           // total weight MB shipped
  std::uint64_t intra_gpu_migrations = 0;
  std::uint64_t arrivals = 0;  // open-loop + trace modes; 0 for periodic
  /// Rebalancing outcomes (all zero unless ClusterConfig::rebalance.enabled;
  /// `rebalancing` records the switch so reports can tell "off" from
  /// "on but idle").
  bool rebalancing = false;
  std::uint64_t steals = 0;         // queued LP jobs claimed by peers
  std::uint64_t steal_scans = 0;    // backlog-triggered scans executed
  std::uint64_t rehomes = 0;        // demand-driven home moves
  std::uint64_t rehome_rounds = 0;  // rounds that moved at least one home
  std::uint64_t coalesced_transfers = 0;  // migrations that attached to an
                                          // in-flight weight copy
  double coalesced_mb_saved = 0.0;        // MB those attachments did not ship
  /// In-flight transfers cancelled at a fault and retargeted or dropped
  /// (counted regardless of rebalance.enabled — cancellation is a
  /// correctness fix, not an opt-in policy).
  std::uint64_t transfer_cancels = 0;
  /// In-flight jobs shed by fail-stop faults (each also a missed finish).
  std::uint64_t jobs_lost = 0;
  /// Trace rows skipped because no task serves their (model, SLO) class.
  std::uint64_t unmatched_rows = 0;
  /// Resilience-layer outcomes (all zero unless
  /// ClusterConfig::resilience.enabled; `resilience` records the switch so
  /// reports can tell "off" from "on but idle").
  bool resilience = false;
  std::uint64_t first_attempts = 0; // releases entering the layer
  std::uint64_t retries = 0;        // re-releases actually attempted
  std::uint64_t retry_admits = 0;   // retries that ended in an admission
  std::uint64_t retry_abandoned_budget = 0;    // token bucket empty
  std::uint64_t retry_abandoned_expired = 0;   // original deadline passed
  std::uint64_t retry_abandoned_attempts = 0;  // max-attempts reached
  std::uint64_t hedges = 0;         // second copies admitted on a peer
  std::uint64_t hedge_wins = 0;     // pairs the hedge copy finished first
  std::uint64_t hedge_cancels = 0;  // losing copies revoked before starting
  std::uint64_t hedge_waste = 0;    // pairs where both copies ran
  /// Recorded misses the client never saw: the hedge made the deadline and
  /// the unrevocable primary completed past it (conservative lower bound —
  /// revoked-before-start primaries are not counted).
  std::uint64_t hedge_rescued_misses = 0;
  /// p99 of the client-perceived (first-finish) response over hedged pairs,
  /// ms; 0 when nothing was hedged. The per-job histograms keep recording
  /// losing copies, so this is the number hedging actually moves.
  double hedge_client_p99_ms = 0.0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_closes = 0;
  /// Job-conservation invariant (Fleet::check_conservation), verified at
  /// the end of EVERY run: released == shed + pending + completed + failed
  /// + in-flight + cancelled, per class. A false here means the fleet
  /// leaked or double-counted a job — always a bug, never workload-related.
  bool conservation_ok = false;
  std::string conservation_detail;
  std::vector<metrics::StageEvent> stage_trace;

  /// Telemetry capture (empty unless ClusterConfig::telemetry.enabled).
  /// TimeSeries is move-only, which makes ClusterResult move-only too.
  metrics::TimeSeries timeseries;
  metrics::EventLog events;

  /// Self-profiler counters; always filled (the counters are maintained
  /// unconditionally, so reading them costs nothing).
  metrics::RunProfile profile;
};

/// Runs the fleet on the configured task set and returns the fleet summary.
ClusterResult run_cluster(const ClusterConfig& config);

}  // namespace daris::exp
