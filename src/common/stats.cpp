#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace daris::common {

void OnlineStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::reset() { *this = OnlineStats(); }

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Percentiles::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Percentiles::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(index, samples_.size() - 1)];
}

double Percentiles::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Percentiles::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.front();
}

double Percentiles::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

SlidingWindowMax::SlidingWindowMax(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SlidingWindowMax::push(double value) {
  const std::uint64_t index = next_index_++;
  while (!maxima_.empty() && maxima_.back().value <= value) {
    maxima_.pop_back();
  }
  maxima_.push_back({index, value});
  if (size_ < capacity_) {
    ++size_;
  }
  // Drop maxima that fell out of the window.
  const std::uint64_t oldest = next_index_ - size_;
  while (!maxima_.empty() && maxima_.front().index < oldest) {
    maxima_.pop_front();
  }
}

double SlidingWindowMax::max_or(double fallback) const {
  if (maxima_.empty()) return fallback;
  return maxima_.front().value;
}

}  // namespace daris::common
