// Plain-text table formatting for bench/experiment output.
//
// Every bench binary prints paper-expected vs measured rows through this so
// the output is uniform and easy to diff into EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace daris::common {

/// Column-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; pads/truncates to the header width.
  void add_row(std::vector<std::string> row);

  /// Renders with column alignment and a separator under the header.
  std::string to_string() const;

  /// Renders as CSV (no alignment, comma-separated, quoted when needed).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helpers for numeric cells.
std::string fmt_double(double value, int precision = 2);
std::string fmt_percent(double fraction, int precision = 2);
std::string fmt_int(long long value);

}  // namespace daris::common
