// Minimal leveled logger. The simulator is single-threaded per run; logging
// goes to stderr and defaults to warnings only so bench output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace daris::common {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace daris::common

// Inverted condition + else so the macro is one statement: a user-side
// `else` after `if (c) DARIS_LOG_X << ...;` binds to the user's `if`, not
// to the filter branch.
#define DARIS_LOG(level)                                       \
  if (::daris::common::log_level() > (level))                  \
    ;                                                          \
  else                                                         \
    ::daris::common::detail::LogLine(level)

#define DARIS_LOG_TRACE DARIS_LOG(::daris::common::LogLevel::kTrace)
#define DARIS_LOG_DEBUG DARIS_LOG(::daris::common::LogLevel::kDebug)
#define DARIS_LOG_INFO DARIS_LOG(::daris::common::LogLevel::kInfo)
#define DARIS_LOG_WARN DARIS_LOG(::daris::common::LogLevel::kWarn)
#define DARIS_LOG_ERROR DARIS_LOG(::daris::common::LogLevel::kError)
