// Time representation shared by the whole library.
//
// The simulator uses integer nanosecond ticks so that event ordering is exact
// and runs are bit-reproducible across platforms. Helpers convert to/from the
// floating-point microsecond/millisecond values used by cost models and
// reports.
#pragma once

#include <cstdint>

namespace daris::common {

/// Simulated time in nanoseconds since simulation start.
using Time = std::int64_t;

/// Durations share the representation of absolute times.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

/// Largest representable time; used as "never".
inline constexpr Time kTimeInfinity = INT64_MAX;

constexpr Duration from_us(double us) {
  return static_cast<Duration>(us * static_cast<double>(kMicrosecond) + 0.5);
}

constexpr Duration from_ms(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond) + 0.5);
}

constexpr Duration from_sec(double sec) {
  return static_cast<Duration>(sec * static_cast<double>(kSecond) + 0.5);
}

constexpr double to_us(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

constexpr double to_ms(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

constexpr double to_sec(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Period (ns) for a job rate expressed in jobs per second.
constexpr Duration period_for_jps(double jobs_per_second) {
  return static_cast<Duration>(static_cast<double>(kSecond) / jobs_per_second +
                               0.5);
}

}  // namespace daris::common
