// Deterministic, seedable random number generation (xoshiro256**).
//
// Experiments must be bit-reproducible from a seed, so we avoid
// std::mt19937's platform-dependent distribution implementations and provide
// our own uniform / exponential / normal draws.
#pragma once

#include <cstdint>

namespace daris::common {

/// xoshiro256** 1.0 by Blackman & Vigna; seeded through SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Normally distributed value (Box-Muller).
  double normal(double mean, double stddev);

  /// Returns true with probability p.
  bool bernoulli(double p);

  /// Derives an independent child generator (for per-task streams).
  Rng fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace daris::common
