// Lightweight statistics helpers used by the metrics layer and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

namespace daris::common {

/// Streaming mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores samples and answers percentile queries (nearest-rank).
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }

  /// p in [0, 100]; returns 0 when empty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double mean() const;
  double min() const;
  double max() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Sliding window that tracks the maximum of the last `capacity` values.
///
/// This is the data structure behind MRET (Eq. 1): the maximum execution time
/// observed within the most recent `ws` jobs of a stage. Deque-of-maxima
/// gives O(1) amortised push and O(1) max query.
class SlidingWindowMax {
 public:
  explicit SlidingWindowMax(std::size_t capacity);

  void push(double value);
  /// Maximum over the stored window; `fallback` when no samples yet.
  double max_or(double fallback) const;
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::uint64_t index;
    double value;
  };
  std::size_t capacity_;
  std::size_t size_ = 0;
  std::uint64_t next_index_ = 0;
  std::deque<Entry> maxima_;  // decreasing values
};

}  // namespace daris::common
