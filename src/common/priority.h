// Two task priority levels (HP / LP) shared across scheduler and metrics.
#pragma once

namespace daris::common {

enum class Priority { kHigh = 0, kLow = 1 };

inline const char* priority_name(Priority p) {
  return p == Priority::kHigh ? "HP" : "LP";
}

}  // namespace daris::common
