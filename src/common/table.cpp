#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace daris::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c];
      out << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << quote(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_int(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

}  // namespace daris::common
