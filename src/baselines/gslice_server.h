// GSlice-like baseline (Dhakal et al., SoCC 2020) for the Sec. VI-B
// comparison: controlled spatial sharing of the GPU via fixed MPS
// percentages (no oversubscription), each slice serving batched inference.
// GSlice reported a 3.5% throughput gain over pure batching; DARIS reports
// 11.5% over GSlice.
#pragma once

#include <cstdint>

#include "dnn/zoo.h"
#include "gpusim/gpu_spec.h"

namespace daris::baselines {

struct GSliceResult {
  double jps = 0.0;
  int slices = 0;
  int batch = 0;
};

/// Saturated throughput of `slices` equal MPS partitions (summing to 100%,
/// no oversubscription), each running batches of `batch` samples.
GSliceResult measure_gslice_jps(dnn::ModelKind kind, int slices, int batch,
                                const gpusim::GpuSpec& spec,
                                double duration_s = 4.0,
                                std::uint64_t seed = 0x6511CE);

/// Sweeps slice count and batch size (GSlice's self-tuning knobs) and
/// returns the best configuration.
GSliceResult best_gslice_jps(dnn::ModelKind kind, const gpusim::GpuSpec& spec,
                             double duration_s = 4.0);

}  // namespace daris::baselines
