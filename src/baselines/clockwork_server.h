// Clockwork-like baseline (Gujarati et al., OSDI 2020): fully serialised
// execution — one DNN on the whole GPU at a time — which makes latency
// perfectly predictable at the cost of throughput. Jobs whose predicted
// completion would exceed their deadline are dropped up front.
#pragma once

#include <cstdint>

#include "dnn/zoo.h"
#include "gpusim/gpu_spec.h"
#include "workload/taskset.h"

namespace daris::baselines {

struct ClockworkResult {
  double jps = 0.0;
  double hp_dmr = 0.0;
  double lp_dmr = 0.0;
  double drop_rate = 0.0;  // jobs rejected by the predicted-lateness test
};

/// Runs the task set through a serialised EDF executor with admission by
/// predicted completion time.
ClockworkResult run_clockwork(const workload::TaskSetSpec& taskset,
                              const gpusim::GpuSpec& spec,
                              double duration_s = 4.0,
                              std::uint64_t seed = 0xC10C4);

}  // namespace daris::baselines
