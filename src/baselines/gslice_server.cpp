#include "baselines/gslice_server.h"

#include <functional>
#include <vector>

#include "gpusim/gpu.h"
#include "gpusim/partition.h"
#include "sim/simulator.h"

namespace daris::baselines {

GSliceResult measure_gslice_jps(dnn::ModelKind kind, int slices, int batch,
                                const gpusim::GpuSpec& spec,
                                double duration_s, std::uint64_t seed) {
  sim::Simulator sim;
  gpusim::Gpu gpu(sim, spec, seed);

  // Fixed percentages summing to 100%: quota = SMs / slices (no OS).
  const int quota = spec.sm_count / slices;
  std::vector<gpusim::StreamId> streams;
  for (int i = 0; i < slices; ++i) {
    const auto ctx = gpu.create_context(static_cast<double>(quota));
    streams.push_back(gpu.create_stream(ctx));
  }

  const dnn::CompiledModel model = dnn::compiled_model(kind, batch, spec);
  const common::Time horizon = common::from_sec(duration_s);
  std::uint64_t batches = 0;

  std::function<void(std::size_t)> launch = [&](std::size_t i) {
    if (sim.now() >= horizon) return;
    for (const auto& stage : model.stages) {
      for (const auto& k : stage.kernels) gpu.launch_kernel(streams[i], k);
    }
    gpu.enqueue_callback(streams[i], [&, i] {
      ++batches;
      launch(i);
    });
  };
  for (std::size_t i = 0; i < streams.size(); ++i) launch(i);
  sim.run_until(horizon);

  GSliceResult r;
  r.slices = slices;
  r.batch = batch;
  r.jps = static_cast<double>(batches) * batch / duration_s;
  return r;
}

GSliceResult best_gslice_jps(dnn::ModelKind kind, const gpusim::GpuSpec& spec,
                             double duration_s) {
  GSliceResult best;
  for (int slices : {2, 3, 4}) {
    for (int batch : {4, 8, 16, 32}) {
      const GSliceResult r =
          measure_gslice_jps(kind, slices, batch, spec, duration_s);
      if (r.jps > best.jps) best = r;
    }
  }
  return best;
}

}  // namespace daris::baselines
