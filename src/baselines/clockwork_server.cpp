#include "baselines/clockwork_server.h"

#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "dnn/calibration.h"
#include "gpusim/gpu.h"
#include "sim/simulator.h"
#include "workload/driver.h"

namespace daris::baselines {

namespace {
struct PendingJob {
  int task_index = 0;
  common::Time release = 0;
  common::Time deadline = 0;
  common::Priority priority = common::Priority::kHigh;
};
struct Earliest {
  bool operator()(const PendingJob& a, const PendingJob& b) const {
    if (a.deadline != b.deadline) return a.deadline > b.deadline;
    return a.release > b.release;
  }
};
}  // namespace

ClockworkResult run_clockwork(const workload::TaskSetSpec& taskset,
                              const gpusim::GpuSpec& spec, double duration_s,
                              std::uint64_t seed) {
  sim::Simulator sim;
  gpusim::Gpu gpu(sim, spec, seed);
  const auto ctx = gpu.create_context(static_cast<double>(spec.sm_count));
  const auto stream = gpu.create_stream(ctx);

  // One compiled model per distinct kind, plus its predictable latency.
  std::map<dnn::ModelKind, dnn::CompiledModel> models;
  std::map<dnn::ModelKind, double> latency_us;
  for (const auto& t : taskset.tasks) {
    if (models.count(t.model)) continue;
    models.emplace(t.model, dnn::compiled_model(t.model, 1, spec));
    latency_us[t.model] =
        dnn::analytic_sequential_latency_us(models.at(t.model), spec);
  }

  const common::Time horizon = common::from_sec(duration_s);
  std::priority_queue<PendingJob, std::vector<PendingJob>, Earliest> queue;
  bool busy = false;
  common::Time busy_until = 0;

  std::uint64_t completed = 0, missed_hp = 0, missed_lp = 0;
  std::uint64_t done_hp = 0, done_lp = 0, dropped = 0, released = 0;

  std::function<void()> pump = [&] {
    if (busy || queue.empty()) return;
    const PendingJob job = queue.top();
    queue.pop();
    const auto& t = taskset.tasks[static_cast<std::size_t>(job.task_index)];
    // Clockwork's admission: drop if the predicted completion is late. The
    // prediction carries a safety margin, as Clockwork schedules against
    // worst-case estimates to stay predictable.
    const double pred_us = 1.15 * latency_us[t.model];
    if (sim.now() + common::from_us(pred_us) > job.deadline) {
      ++dropped;
      pump();
      return;
    }
    busy = true;
    busy_until = sim.now() + common::from_us(pred_us);
    const auto& model = models.at(t.model);
    for (const auto& stage : model.stages) {
      for (const auto& k : stage.kernels) gpu.launch_kernel(stream, k);
    }
    gpu.enqueue_callback(stream, [&, job] {
      ++completed;
      const bool miss = sim.now() > job.deadline;
      if (job.priority == common::Priority::kHigh) {
        ++done_hp;
        if (miss) ++missed_hp;
      } else {
        ++done_lp;
        if (miss) ++missed_lp;
      }
      busy = false;
      pump();
    });
  };

  // Periodic releases, re-armed in place each period by the shared driver.
  workload::PeriodicDriver driver(
      sim, taskset,
      [&](int i) {
        ++released;
        const auto& t = taskset.tasks[static_cast<std::size_t>(i)];
        const common::Time when = sim.now();
        queue.push(
            PendingJob{i, when, when + t.relative_deadline, t.priority});
        pump();
      },
      horizon);
  driver.start();
  sim.run_until(horizon);

  ClockworkResult r;
  r.jps = static_cast<double>(completed) / duration_s;
  r.hp_dmr = done_hp ? static_cast<double>(missed_hp) / done_hp : 0.0;
  r.lp_dmr = done_lp ? static_cast<double>(missed_lp) / done_lp : 0.0;
  r.drop_rate = released ? static_cast<double>(dropped) / released : 0.0;
  return r;
}

}  // namespace daris::baselines
