#include "baselines/clockwork_server.h"

#include <map>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "dnn/calibration.h"
#include "gpusim/gpu.h"
#include "sim/simulator.h"
#include "workload/driver.h"

namespace daris::baselines {

namespace {
struct PendingJob {
  int task_index = 0;
  common::Time release = 0;
  common::Time deadline = 0;
  common::Priority priority = common::Priority::kHigh;
};
struct Earliest {
  bool operator()(const PendingJob& a, const PendingJob& b) const {
    if (a.deadline != b.deadline) return a.deadline > b.deadline;
    return a.release > b.release;
  }
};

/// All run state behind one pointer, so the per-job completion callback
/// captures {server, deadline, priority} — well inside sim::Callback's
/// inline buffer — instead of a reference per counter (which used to cost a
/// heap cell per completed job).
struct Server {
  sim::Simulator& sim;
  gpusim::Gpu& gpu;
  gpusim::StreamId stream;
  const workload::TaskSetSpec& taskset;
  const std::map<dnn::ModelKind, dnn::CompiledModel>& models;
  const std::map<dnn::ModelKind, double>& latency_us;

  std::priority_queue<PendingJob, std::vector<PendingJob>, Earliest> queue{};
  bool busy = false;

  std::uint64_t completed = 0, missed_hp = 0, missed_lp = 0;
  std::uint64_t done_hp = 0, done_lp = 0, dropped = 0, released = 0;

  void release(int task_index) {
    ++released;
    const auto& t = taskset.tasks[static_cast<std::size_t>(task_index)];
    const common::Time when = sim.now();
    queue.push(
        PendingJob{task_index, when, when + t.relative_deadline, t.priority});
    pump();
  }

  void pump() {
    if (busy || queue.empty()) return;
    const PendingJob job = queue.top();
    queue.pop();
    const auto& t = taskset.tasks[static_cast<std::size_t>(job.task_index)];
    // Clockwork's admission: drop if the predicted completion is late. The
    // prediction carries a safety margin, as Clockwork schedules against
    // worst-case estimates to stay predictable.
    const double pred_us = 1.15 * latency_us.at(t.model);
    if (sim.now() + common::from_us(pred_us) > job.deadline) {
      ++dropped;
      pump();
      return;
    }
    busy = true;
    const auto& model = models.at(t.model);
    for (const auto& stage : model.stages) {
      for (const auto& k : stage.kernels) gpu.launch_kernel(stream, k);
    }
    auto on_done = [srv = this, deadline = job.deadline,
                    priority = job.priority] {
      srv->complete(deadline, priority);
    };
    static_assert(sizeof(on_done) <= sim::Callback::kInlineCapacity,
                  "Clockwork completion callback must stay inline "
                  "(tests/test_sim_alloc.cpp pins the shape)");
    gpu.enqueue_callback(stream, std::move(on_done));
  }

  void complete(common::Time deadline, common::Priority priority) {
    ++completed;
    const bool miss = sim.now() > deadline;
    if (priority == common::Priority::kHigh) {
      ++done_hp;
      if (miss) ++missed_hp;
    } else {
      ++done_lp;
      if (miss) ++missed_lp;
    }
    busy = false;
    pump();
  }
};
}  // namespace

ClockworkResult run_clockwork(const workload::TaskSetSpec& taskset,
                              const gpusim::GpuSpec& spec, double duration_s,
                              std::uint64_t seed) {
  sim::Simulator sim;
  gpusim::Gpu gpu(sim, spec, seed);
  const auto ctx = gpu.create_context(static_cast<double>(spec.sm_count));
  const auto stream = gpu.create_stream(ctx);

  // One compiled model per distinct kind, plus its predictable latency.
  std::map<dnn::ModelKind, dnn::CompiledModel> models;
  std::map<dnn::ModelKind, double> latency_us;
  for (const auto& t : taskset.tasks) {
    if (models.count(t.model)) continue;
    models.emplace(t.model, dnn::compiled_model(t.model, 1, spec));
    latency_us[t.model] =
        dnn::analytic_sequential_latency_us(models.at(t.model), spec);
  }

  Server server{sim, gpu, stream, taskset, models, latency_us};

  // Periodic releases, re-armed in place each period by the shared driver;
  // the release sink captures one pointer, so the driver's std::function
  // stays in its small-buffer storage too.
  const common::Time horizon = common::from_sec(duration_s);
  workload::PeriodicDriver driver(
      sim, taskset, [srv = &server](int i) { srv->release(i); }, horizon);
  driver.start();
  sim.run_until(horizon);

  ClockworkResult r;
  r.jps = static_cast<double>(server.completed) / duration_s;
  r.hp_dmr = server.done_hp
                 ? static_cast<double>(server.missed_hp) / server.done_hp
                 : 0.0;
  r.lp_dmr = server.done_lp
                 ? static_cast<double>(server.missed_lp) / server.done_lp
                 : 0.0;
  r.drop_rate = server.released
                    ? static_cast<double>(server.dropped) / server.released
                    : 0.0;
  return r;
}

}  // namespace daris::baselines
