// Single-tenant batching baseline (the paper's upper baseline, Table I /
// Fig. 1): one context owning the whole GPU, one stream, back-to-back
// batches of a single model.
#pragma once

#include <cstdint>

#include "dnn/zoo.h"
#include "gpusim/gpu_spec.h"

namespace daris::baselines {

struct BatchingResult {
  double jps = 0.0;            // jobs (samples) per second
  double batch_latency_ms = 0.0;
  std::uint64_t batches = 0;
};

/// Saturated closed-loop throughput of `model` at the given batch size.
BatchingResult measure_batched_jps(dnn::ModelKind kind, int batch,
                                   const gpusim::GpuSpec& spec,
                                   double duration_s = 4.0,
                                   std::uint64_t seed = 0xBA7C4);

/// Sweeps batch sizes and returns the best throughput (Table I max JPS).
BatchingResult best_batched_jps(dnn::ModelKind kind,
                                const gpusim::GpuSpec& spec,
                                double duration_s = 4.0);

}  // namespace daris::baselines
