#include "baselines/batching_server.h"

#include <functional>

#include "gpusim/gpu.h"
#include "sim/simulator.h"

namespace daris::baselines {

BatchingResult measure_batched_jps(dnn::ModelKind kind, int batch,
                                   const gpusim::GpuSpec& spec,
                                   double duration_s, std::uint64_t seed) {
  sim::Simulator sim;
  gpusim::Gpu gpu(sim, spec, seed);
  const auto ctx = gpu.create_context(static_cast<double>(spec.sm_count));
  const auto stream = gpu.create_stream(ctx);
  const dnn::CompiledModel model = dnn::compiled_model(kind, batch, spec);

  const common::Time horizon = common::from_sec(duration_s);
  std::uint64_t batches = 0;

  std::function<void()> launch = [&] {
    if (sim.now() >= horizon) return;
    for (const auto& stage : model.stages) {
      for (const auto& k : stage.kernels) gpu.launch_kernel(stream, k);
    }
    gpu.enqueue_callback(stream, [&] {
      ++batches;
      launch();
    });
  };
  launch();
  sim.run_until(horizon);

  BatchingResult r;
  r.batches = batches;
  const double secs = common::to_sec(sim.now() < horizon ? horizon : sim.now());
  r.jps = static_cast<double>(batches) * batch / secs;
  r.batch_latency_ms =
      batches > 0 ? 1e3 * secs / static_cast<double>(batches) : 0.0;
  return r;
}

BatchingResult best_batched_jps(dnn::ModelKind kind,
                                const gpusim::GpuSpec& spec,
                                double duration_s) {
  BatchingResult best;
  for (int b : {2, 4, 8, 16, 32}) {
    const BatchingResult r = measure_batched_jps(kind, b, spec, duration_s);
    if (r.jps > best.jps) best = r;
  }
  return best;
}

}  // namespace daris::baselines
