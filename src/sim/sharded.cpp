#include "sim/sharded.h"

#include <algorithm>

namespace daris::sim {

namespace {

// One busy-wait step. Windows are typically a handful of microseconds of
// simulation work, so a short spin beats a futex round trip; the pause/yield
// keeps the spinning hardware thread polite.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

// Spin budget before falling back to the condition variable. Generous enough
// that back-to-back windows never sleep, small enough that an idle pool
// (e.g. during a long serial control cascade) parks within ~100us.
constexpr int kSpinIterations = 20000;

}  // namespace

ShardedSimulator::ShardedSimulator(int device_shards, int threads) {
  if (device_shards < 0) device_shards = 0;
  shards_.reserve(static_cast<std::size_t>(device_shards) + 4);
  for (int i = 0; i < device_shards; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const int hw = static_cast<int>(hw_raw == 0 ? 1 : hw_raw);
  if (threads <= 0) threads = hw;
  threads_ = std::max(1, std::min(threads, std::max(device_shards, 1)));
  // More lanes than cores (explicitly requested — the differential tests do
  // this to force real cross-thread execution on small CI boxes): spinning
  // would burn whole scheduler quanta per window, so the pool drops straight
  // to the futex path and never goes hot.
  oversubscribed_ = threads_ > hw;
  // Lanes 0..threads_-2 are pool workers; lane threads_-1 is the caller.
  for (int lane = 0; lane + 1 < threads_; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ShardedSimulator::~ShardedSimulator() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_.store(true, std::memory_order_seq_cst);
    cv_work_.notify_all();
  }
  for (auto& w : workers_) w.join();
}

int ShardedSimulator::add_shard() {
  shards_.push_back(std::make_unique<Simulator>());
  shards_.back()->advance_to(control_.now());
  return static_cast<int>(shards_.size()) - 1;
}

std::size_t ShardedSimulator::run_lane(int lane, common::Time bound,
                                       std::size_t num_shards) {
  std::size_t executed = 0;
  for (std::size_t s = static_cast<std::size_t>(lane); s < num_shards;
       s += static_cast<std::size_t>(threads_)) {
    executed += shards_[s]->run_until(bound);
  }
  return executed;
}

std::size_t ShardedSimulator::drain_shards(common::Time bound) {
  const std::size_t n = shards_.size();
  if (n == 0) return 0;
  // Window fast path: shard heaps are quiescent here (the previous parallel
  // phase completed through the pending_workers_ barrier), so their heads can
  // be read directly. Windows whose shards hold nothing at or before `bound`
  // — back-to-back control timers, mostly — skip the dispatch entirely.
  bool any_work = false;
  for (const auto& s : shards_) {
    if (s->next_event_time() <= bound) {
      any_work = true;
      break;
    }
  }
  if (!any_work) return 0;
  if (threads_ <= 1 || workers_.empty()) {
    std::size_t executed = 0;
    for (auto& s : shards_) executed += s->run_until(bound);
    return executed;
  }
  bound_ = bound;
  active_shards_ = n;
  drained_.store(0, std::memory_order_relaxed);
  pending_workers_.store(static_cast<int>(workers_.size()),
                         std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    // A worker past its sleepers_ increment is inside the mutex until it
    // enters cv_work_.wait(), so locking here cannot race ahead of it.
    std::lock_guard<std::mutex> lk(mu_);
    cv_work_.notify_all();
  }
  std::size_t executed = run_lane(threads_ - 1, bound, n);
  for (int spin = oversubscribed_ ? kSpinIterations : 0;
       pending_workers_.load(std::memory_order_acquire) > 0; ++spin) {
    if (spin < kSpinIterations) {
      cpu_relax();
      continue;
    }
    caller_waiting_.store(true, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_done_.wait(lk, [&] {
        return pending_workers_.load(std::memory_order_seq_cst) == 0;
      });
    }
    caller_waiting_.store(false, std::memory_order_relaxed);
  }
  return executed + drained_.load(std::memory_order_relaxed);
}

void ShardedSimulator::worker_loop(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    int spin = oversubscribed_ ? kSpinIterations : 0;
    std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    while (e == seen && !stop_.load(std::memory_order_acquire)) {
      if (!oversubscribed_ && hot_.load(std::memory_order_relaxed)) {
        // Mid-run: the next window is microseconds away. Spin flat out —
        // a futex round trip here would cost more than the window itself.
        cpu_relax();
        spin = 0;
      } else if (++spin > kSpinIterations) {
        std::unique_lock<std::mutex> lk(mu_);
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        cv_work_.wait(lk, [&] {
          return epoch_.load(std::memory_order_seq_cst) != seen ||
                 stop_.load(std::memory_order_acquire);
        });
        sleepers_.fetch_sub(1, std::memory_order_seq_cst);
        spin = 0;
      } else {
        cpu_relax();
      }
      e = epoch_.load(std::memory_order_seq_cst);
    }
    if (e == seen) return;  // stop_ with no new work
    seen = e;
    const std::size_t executed = run_lane(lane, bound_, active_shards_);
    if (executed != 0) {
      drained_.fetch_add(executed, std::memory_order_relaxed);
    }
    if (pending_workers_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
      // Last worker out: notify only if the caller gave up spinning —
      // caller_waiting_ vs pending_workers_ is the same Dekker pairing as
      // epoch_ vs sleepers_, so a caller about to wait cannot be missed.
      if (caller_waiting_.load(std::memory_order_seq_cst)) {
        std::lock_guard<std::mutex> lk(mu_);
        cv_done_.notify_one();
      }
    }
  }
}

std::size_t ShardedSimulator::run_until(common::Time deadline) {
  if (shards_.empty()) return control_.run_until(deadline);
  // Keep the pool hot for the whole run: between windows workers spin on
  // epoch_ instead of parking, so per-window dispatch is a fetch_add plus a
  // few cache-line transfers. They fall back to the futex path once the run
  // returns and hot_ drops.
  if (!workers_.empty() && !oversubscribed_) {
    hot_.store(true, std::memory_order_relaxed);
  }
  std::size_t executed = 0;
  for (;;) {
    const common::Time tc = control_.next_event_time();
    if (tc > deadline) {
      // No control work left in the window: drain every shard through the
      // deadline and advance all clocks to it.
      executed += drain_shards(deadline);
      executed += control_.run_until(deadline);
      for (auto& s : shards_) s->advance_to(deadline);
      hot_.store(false, std::memory_order_relaxed);
      return executed;
    }
    // Parallel phase: device-local events strictly before Tc.
    executed += drain_shards(tc - 1);
    // Control phase: clocks first (control callbacks read device now()),
    // then the serial (when, seq)-ordered batch at Tc, cascades included.
    for (auto& s : shards_) s->advance_to(tc);
    executed += control_.run_until(tc);
  }
}

std::size_t ShardedSimulator::pending() const {
  std::size_t n = control_.pending();
  for (const auto& s : shards_) n += s->pending();
  return n;
}

bool ShardedSimulator::empty() const {
  if (!control_.empty()) return false;
  for (const auto& s : shards_) {
    if (!s->empty()) return false;
  }
  return true;
}

void ShardedSimulator::reserve(std::size_t control_events,
                               std::size_t per_shard_events) {
  control_.reserve(control_events);
  for (auto& s : shards_) s->reserve(per_shard_events);
}

Simulator::Stats ShardedSimulator::stats() const {
  Simulator::Stats total = control_.stats();
  for (const auto& s : shards_) {
    const Simulator::Stats st = s->stats();
    total.events_executed += st.events_executed;
    total.callbacks_inline += st.callbacks_inline;
    total.callbacks_heap += st.callbacks_heap;
    total.heap_high_water += st.heap_high_water;
    total.pool_slots += st.pool_slots;
  }
  return total;
}

}  // namespace daris::sim
