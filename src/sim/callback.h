// Move-only type-erased `void()` functor with small-buffer storage.
//
// `std::function` heap-allocates once a lambda outgrows the implementation's
// tiny inline buffer (typically two pointers), and every simulator event used
// to pay that price. Event callbacks across the codebase capture a `this`
// pointer plus a handful of scalar ids, so a 48-byte inline buffer covers the
// hot paths (GPU completions, launch wake-ups, scheduler sync events, driver
// release timers) with zero per-event allocation. Larger or over-aligned
// captures transparently fall back to a single heap cell.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace daris::sim {

class Callback {
 public:
  /// Captures up to this many bytes are stored inline (no allocation).
  static constexpr std::size_t kInlineCapacity = 48;

  Callback() noexcept = default;

  template <typename F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback> &&
                                 std::is_invocable_r_v<void, std::decay_t<F>&>,
                             int> = 0>
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  Callback(F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the captures outgrew the inline buffer and live in a heap
  /// cell (the self-profiler's pooled-vs-spilled callback counter reads
  /// this; empty callbacks count as inline).
  bool on_heap() const noexcept { return ops_ != nullptr && ops_->heap; }

  void operator()() { ops_->invoke(storage_); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs into `dst` from `src` and destroys `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
    bool heap;  // storage holds a pointer to a heap cell, not the functor
  };

  template <typename Fn>
  static constexpr bool fits_inline =
      sizeof(Fn) <= kInlineCapacity &&
      alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static const Ops kInlineOps;
  template <typename Fn>
  static const Ops kHeapOps;

  void move_from(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

template <typename Fn>
const Callback::Ops Callback::kInlineOps = {
    [](void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); },
    [](void* dst, void* src) {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    },
    [](void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); },
    /*heap=*/false,
};

template <typename Fn>
const Callback::Ops Callback::kHeapOps = {
    [](void* storage) {
      (**std::launder(reinterpret_cast<Fn**>(storage)))();
    },
    [](void* dst, void* src) {
      ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
    },
    [](void* storage) { delete *std::launder(reinterpret_cast<Fn**>(storage)); },
    /*heap=*/true,
};

}  // namespace daris::sim
