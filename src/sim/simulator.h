// Discrete-event simulation engine.
//
// The GPU model reschedules kernel-completion events every time the fluid
// rate allocation changes, so events must be cancellable. We implement
// cancellation lazily: each scheduled event carries a sequence id, and a
// cancelled id is skipped when popped. Ties in time are broken by insertion
// order, which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time.h"

namespace daris::sim {

using common::Duration;
using common::Time;

/// Handle identifying a scheduled event; usable for cancellation.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `cb` to run at absolute time `when` (>= now).
  EventHandle schedule_at(Time when, Callback cb);

  /// Schedules `cb` to run `delay` after now.
  EventHandle schedule_after(Duration delay, Callback cb);

  /// Cancels a pending event; safe to call with stale or invalid handles.
  void cancel(EventHandle handle);

  /// Runs until the queue is empty or `deadline` is reached. Events exactly
  /// at `deadline` are executed. Returns the number of events executed.
  std::size_t run_until(Time deadline);

  /// Runs until the queue is empty.
  std::size_t run();

  /// Executes the single next event, if any. Returns false when idle.
  bool step();

  bool empty() const { return live_.empty(); }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_.size(); }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Ids scheduled but neither executed nor cancelled. Cancellation is lazy
  // (cancelled entries stay in queue_ until popped, and are recognised by
  // their absence here), so this set — not the queue size — is the source
  // of truth for pending()/empty(), and it makes cancel() of an
  // already-fired handle a natural no-op.
  std::unordered_set<std::uint64_t> live_;
};

}  // namespace daris::sim
