// Discrete-event simulation engine.
//
// The GPU model reschedules kernel-completion events every time the fluid
// rate allocation changes, and a multi-GPU fleet multiplies that churn by the
// number of devices, so the engine is built around three ideas:
//
//  - Event nodes live in a chunked slab pool with a free list. Slabs are
//    allocated once and never relocated (growing a flat vector would move
//    every node — and its callback — through a type-erased move on each
//    doubling), and a node is recycled as soon as its event fires or is
//    cancelled, so steady-state simulation does no per-event allocation
//    (callbacks with small captures are stored inline in the node, see
//    sim/callback.h).
//  - The priority queue is an indexed 4-ary heap whose entries carry the sort
//    key (when, seq) inline — comparisons never chase into the pool — plus
//    the pool slot; a dense side array maps each slot to its heap position,
//    so cancel() removes the entry eagerly (swap-with-last plus one sift)
//    instead of leaving tombstones behind. The heap therefore holds exactly
//    the live events: pending() is its size and the queue genuinely shrinks
//    under cancel-heavy load.
//  - reschedule() moves a pending event to a new time by sifting it in place,
//    replacing the cancel-then-schedule round trip on the hottest path.
//
// Handles encode (pool slot, generation): the slot makes lookup O(1) and the
// generation — bumped every time a node is recycled — makes handles of fired
// or cancelled events go stale, so cancel()/reschedule() of an old handle is
// a safe no-op. Ties in time are broken by a monotone sequence number
// assigned at schedule (and reassigned on reschedule, exactly as a
// cancel+schedule pair would), which keeps runs deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.h"
#include "sim/callback.h"

namespace daris::sim {

using common::Duration;
using common::Time;

/// Handle identifying a scheduled event; usable for cancellation and
/// in-place rescheduling. Stale handles (fired/cancelled events) are safe.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `cb` to run at absolute time `when`. Times in the past are
  /// clamped to now(): the event fires on the current tick, after events
  /// already queued for it (it draws a fresh sequence number).
  EventHandle schedule_at(Time when, Callback cb);

  /// Schedules `cb` to run `delay` after now (negative delays clamp to 0).
  EventHandle schedule_after(Duration delay, Callback cb);

  /// Cancels a pending event; safe to call with stale or invalid handles.
  void cancel(EventHandle handle);

  /// Moves a pending event to absolute time `when` in place: no allocation,
  /// the callback stays put, and the handle remains valid. The event draws a
  /// fresh sequence number, so ties at the new time order exactly as a
  /// cancel()+schedule_at() pair would. Calling it from inside the event's
  /// own callback re-arms the event (the periodic-timer pattern). Returns
  /// false — and does nothing — when the handle is stale or invalid.
  bool reschedule(EventHandle handle, Time when);

  /// reschedule() at `delay` after now (negative delays clamp to 0).
  bool reschedule_after(EventHandle handle, Duration delay);

  /// Draws the next tie-break sequence number without scheduling anything.
  /// Support for two-level queues: a client that keeps many logical timers
  /// in its own ordered index and mirrors only the earliest into the
  /// simulator draws one number per logical (re)arm — exactly what a direct
  /// schedule/reschedule would have drawn — and later schedules its head
  /// event with that number, so ties against unrelated events break as if
  /// every logical timer sat in this queue individually. Each drawn number
  /// must be used for at most one pending event at a time.
  std::uint64_t draw_sequence() { return next_seq_++; }

  /// schedule_at() with an explicit tie-break number previously obtained
  /// from draw_sequence() (see there for the two-level-queue contract).
  EventHandle schedule_at_with_sequence(Time when, std::uint64_t seq,
                                        Callback cb);

  /// reschedule() with an explicit tie-break number previously obtained
  /// from draw_sequence(). Returns false — and does nothing — when the
  /// handle is stale or invalid.
  bool reschedule_with_sequence(EventHandle handle, Time when,
                                std::uint64_t seq);

  /// Runs until the queue is empty or `deadline` is reached. Events exactly
  /// at `deadline` are executed. Returns the number of events executed.
  std::size_t run_until(Time deadline);

  /// Runs until the queue is empty.
  std::size_t run();

  /// Executes the single next event, if any. Returns false when idle.
  bool step();

  bool empty() const { return heap_.empty(); }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return heap_.size(); }

  /// Absolute time of the earliest pending event, or kTimeInfinity when the
  /// queue is empty. Drives the conservative window in sim/sharded.h: the
  /// barrier runs every other shard strictly past this instant before the
  /// owning shard executes it.
  Time next_event_time() const {
    return heap_.empty() ? common::kTimeInfinity : heap_[0].when;
  }

  /// Advances now() to `when` without executing anything; no-op when `when`
  /// is not ahead of now(). Used by the sharded barrier so that callbacks
  /// invoked on a quiet shard from the control phase (job releases, steals)
  /// observe the fleet-wide time rather than the shard's last local event.
  void advance_to(Time when) {
    if (now_ < when) now_ = when;
  }

  /// Pre-sizes the pool and heap for `events` concurrently-pending events.
  void reserve(std::size_t events);

  /// Self-profiler counters, accumulated since construction. Maintained
  /// unconditionally (one increment per event on paths that already touch
  /// the same cache lines) so profiling a run cannot change it.
  struct Stats {
    std::uint64_t events_executed = 0;   // fire_top() invocations
    std::uint64_t callbacks_inline = 0;  // scheduled with inline captures
    std::uint64_t callbacks_heap = 0;    // captures > kInlineCapacity
    std::uint64_t heap_high_water = 0;   // max concurrently-pending events
    std::uint64_t pool_slots = 0;        // event-node slots handed out
  };
  Stats stats() const {
    Stats s = stats_;
    s.pool_slots = pool_size_;
    return s;
  }

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;
  static constexpr std::uint32_t kSlabShift = 8;  // 256 nodes per slab
  static constexpr std::uint32_t kSlabSize = 1u << kSlabShift;

  struct Node {
    std::uint32_t gen = 0;  // bumped on recycle; stale-handle detection
    std::uint32_t next_free = kNpos;
    // Number of fire_top() frames currently executing this node's callback.
    // A callback may re-arm its event at the current tick and pump a nested
    // step() that fires it again reentrantly, so a single "firing slot"
    // cannot represent the chain; the node is recycled only when the
    // outermost frame unwinds (and the event was not left re-armed).
    std::uint32_t firing_depth = 0;
    Callback cb;
  };

  /// Heap entry: sort key inline (cache-friendly compares) + owning slot.
  struct HeapEntry {
    Time when = 0;
    std::uint64_t seq = 0;  // tie-break order among equal times
    std::uint32_t slot = kNpos;
  };

  Node& node(std::uint32_t slot) {
    return slabs_[slot >> kSlabShift][slot & (kSlabSize - 1)];
  }
  const Node& node(std::uint32_t slot) const {
    return slabs_[slot >> kSlabShift][slot & (kSlabSize - 1)];
  }

  /// Handle for the node currently in `slot`.
  EventHandle handle_for(std::uint32_t slot) const {
    return EventHandle{((static_cast<std::uint64_t>(slot) + 1) << 32) |
                       node(slot).gen};
  }
  /// Slot for a handle, or kNpos when the handle is stale/invalid.
  std::uint32_t decode(EventHandle handle) const;

  std::uint32_t acquire_node();
  void release_node(std::uint32_t slot);

  /// Shared tail of reschedule/reschedule_with_sequence once the handle is
  /// decoded and validated: clamp, re-key, sift (or re-arm a firing node).
  void reschedule_resolved(std::uint32_t slot, std::uint32_t pos, Time when,
                           std::uint64_t seq);

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  void heap_push(HeapEntry entry);
  void heap_remove(std::size_t pos);
  std::size_t sift_up(std::size_t pos);
  void sift_down(std::size_t pos);

  /// Pops and executes the heap root (the heap must be non-empty).
  void fire_top();

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::vector<std::unique_ptr<Node[]>> slabs_;
  std::uint32_t pool_size_ = 0;  // slots handed out across all slabs
  // Heap position per pool slot (kNpos when off the heap), kept outside Node:
  // sift loops write one back-pointer per level, and the dense 4-byte stride
  // keeps those writes cache-resident where the ~64-byte Node stride did not.
  std::vector<std::uint32_t> pos_;
  std::vector<HeapEntry> heap_;  // ordered by (when, seq)
  std::uint32_t free_head_ = kNpos;
  Stats stats_;
};

}  // namespace daris::sim
