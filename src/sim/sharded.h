// Sharded parallel discrete-event simulation.
//
// A multi-GPU fleet multiplies event churn by the number of devices, but most
// of those events never leave their device: kernel completions, stage
// advances, and fluid-executor retimes touch one Gpu + Scheduler pair only.
// ShardedSimulator exploits that by giving every device its own slab-pooled
// Simulator (the PR 3 engine, unchanged — each shard keeps the full
// (when, seq) tie-break contract) plus one *control* shard for everything
// that spans devices: arrival drivers, router placements and weight-transfer
// deliveries, rebalancer steals/re-homes, fleet fault injection, and the
// telemetry sampler.
//
// Execution alternates two phases under a conservative time-window barrier:
//
//  1. Parallel phase. Let Tc be the control shard's next event time. Every
//     device shard runs its local events strictly *before* Tc on a small
//     spin-then-sleep thread pool (the calling thread drains its own share).
//     Shards never touch each other's state, so any interleaving of this
//     phase produces the same result.
//  2. Control phase. All device clocks advance to Tc, then the control shard
//     drains serially through Tc — including events its callbacks schedule at
//     Tc — in (when, seq) order. Control callbacks may freely poke device
//     shards (release a job, steal a stage, cancel events): the workers are
//     parked at the barrier, and the phase transition establishes
//     happens-before in both directions.
//
// Ties at Tc therefore execute control-first, which is exactly the order the
// single-threaded engine produces for the fleet's timer-driven control events
// (a periodic timer re-armed at tick T for tick T+P draws a smaller sequence
// number than any device event scheduled later in real time), so sharded runs
// reproduce the committed single-thread scenario fingerprints byte-for-byte.
// Cross-shard delivery order is a pure function of (config, seed): the control
// shard's serial (when, seq) order *is* the seeded total order in which
// cross-device events land, independent of thread count and scheduling noise.
//
// With zero device shards every actor lands on the control shard and the
// facade degenerates to the single-threaded engine bit-for-bit, which lets
// call sites construct one ShardedSimulator unconditionally.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/time.h"
#include "sim/simulator.h"

namespace daris::sim {

class ShardedSimulator {
 public:
  /// `device_shards` device-local heaps plus one control heap. 0 device
  /// shards = single-threaded mode: device_sim() maps every device to the
  /// control shard and run_until() is a plain Simulator::run_until().
  ///
  /// `threads` is the total worker-lane count *including* the calling thread;
  /// <= 0 picks min(hardware_concurrency, device_shards). 1 drains shards
  /// inline with no pool. The pool is spawned once at construction and
  /// parked between windows, so steady-state windows allocate nothing.
  explicit ShardedSimulator(int device_shards, int threads = 0);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;
  ~ShardedSimulator();

  /// The control shard: drivers, router, rebalancer, faults, telemetry.
  Simulator& control() { return control_; }
  const Simulator& control() const { return control_; }

  int device_shards() const { return static_cast<int>(shards_.size()); }

  /// The i-th device shard (0 <= i < device_shards()).
  Simulator& shard(int i) { return *shards_[i]; }

  /// The simulator device `device` lives on: its shard when sharded, the
  /// control shard otherwise. This is the only mapping call sites need.
  Simulator& device_sim(int device) {
    return shards_.empty() ? control_ : *shards_[device];
  }

  /// Appends a fresh device shard whose clock starts at the control shard's
  /// now() (live GPU add). Must be called from the control phase — i.e. from
  /// a control-shard callback or outside run_until() — never from a device
  /// event. Returns the new shard index.
  int add_shard();

  /// Worker-lane count actually in use (>= 1; includes the calling thread).
  int threads() const { return threads_; }

  /// Fleet-wide clock == the control shard's clock. Device shards only ever
  /// trail it by the current window.
  common::Time now() const { return control_.now(); }

  /// Runs the two-phase window loop until every shard is drained up to (and
  /// including) `deadline`; all clocks end at `deadline`. Returns the number
  /// of events executed across all shards.
  std::size_t run_until(common::Time deadline);

  /// Pending events across the control shard and every device shard.
  std::size_t pending() const;
  bool empty() const;

  /// Pre-sizes the control heap and each device-shard heap.
  void reserve(std::size_t control_events, std::size_t per_shard_events);

  /// Self-profiler counters folded across all shards. Sums every field;
  /// heap_high_water becomes a fleet-wide upper bound (per-shard peaks need
  /// not coincide in time).
  Simulator::Stats stats() const;

 private:
  /// Drains shards [lane, lane + threads_, ...) through `bound`.
  std::size_t run_lane(int lane, common::Time bound, std::size_t num_shards);
  /// Parallel phase: every device shard runs run_until(bound).
  std::size_t drain_shards(common::Time bound);
  void worker_loop(int lane);

  Simulator control_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  int threads_ = 1;
  // True when worker lanes exceed hardware cores; disables every spin path
  // (hot mode included) so oversubscribed runs cost futex waits, not quanta.
  bool oversubscribed_ = false;

  // Pool coordination. A window dispatch publishes (bound_, active_shards_)
  // and bumps epoch_; workers spin briefly on epoch_ and fall back to
  // cv_work_. Completion is a pending_workers_ countdown the caller spins on
  // (cv_done_ fallback, entered only after flagging caller_waiting_ so the
  // last worker's notify is elided on the spin-success path). epoch_/
  // sleepers_/caller_waiting_/pending_workers_ use seq_cst where the "new
  // epoch missed by a worker about to sleep" and "finished worker missed by
  // a caller about to wait" races must resolve Dekker-style. While hot_ is
  // set (inside run_until) workers spin between windows without ever taking
  // the futex path: fleet windows are microseconds apart and a sleep/wake
  // cycle per window would dominate the run.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  alignas(64) std::atomic<std::uint64_t> epoch_{0};
  alignas(64) std::atomic<int> pending_workers_{0};
  alignas(64) std::atomic<std::size_t> drained_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> hot_{false};
  std::atomic<bool> caller_waiting_{false};
  common::Time bound_ = 0;          // published by the epoch_ bump
  std::size_t active_shards_ = 0;   // ditto
};

}  // namespace daris::sim
