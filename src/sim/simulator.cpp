#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace daris::sim {

EventHandle Simulator::schedule_at(Time when, Callback cb) {
  assert(when >= now_ && "cannot schedule into the past");
  if (when < now_) when = now_;
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{when, seq, std::move(cb)});
  live_.insert(seq);
  return EventHandle{seq};
}

EventHandle Simulator::schedule_after(Duration delay, Callback cb) {
  return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(cb));
}

void Simulator::cancel(EventHandle handle) {
  // Dropping the id from live_ is the whole cancellation: the queue entry
  // stays until popped and is skipped then. Handles of events that already
  // fired (or were already cancelled) are no longer live, so this is a
  // natural no-op for them and pending()/empty() stay exact.
  if (handle.valid()) live_.erase(handle.id);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (live_.erase(ev.seq) == 0) continue;  // cancelled
    now_ = ev.when;
    ev.cb();
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (live_.count(top.seq) == 0) {  // cancelled
      queue_.pop();
      continue;
    }
    if (top.when > deadline) break;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    live_.erase(ev.seq);
    ev.cb();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

}  // namespace daris::sim
