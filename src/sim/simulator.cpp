#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace daris::sim {

std::uint32_t Simulator::decode(EventHandle handle) const {
  if (!handle.valid()) return kNpos;
  const std::uint32_t slot = static_cast<std::uint32_t>(handle.id >> 32) - 1;
  if (slot >= pool_size_) return kNpos;
  if (node(slot).gen != static_cast<std::uint32_t>(handle.id)) return kNpos;
  return slot;
}

std::uint32_t Simulator::acquire_node() {
  if (free_head_ != kNpos) {
    const std::uint32_t slot = free_head_;
    Node& n = node(slot);
    free_head_ = n.next_free;
    n.next_free = kNpos;
    return slot;
  }
  if (pool_size_ == slabs_.size() * kSlabSize) {
    slabs_.push_back(std::make_unique<Node[]>(kSlabSize));
  }
  pos_.push_back(kNpos);
  return pool_size_++;
}

void Simulator::release_node(std::uint32_t slot) {
  Node& n = node(slot);
  ++n.gen;  // stale out every handle to this incarnation
  n.cb.reset();
  n.next_free = free_head_;
  free_head_ = slot;
}

std::size_t Simulator::sift_up(std::size_t pos) {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!earlier(entry, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos_[heap_[pos].slot] = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = entry;
  pos_[entry.slot] = static_cast<std::uint32_t>(pos);
  return pos;
}

void Simulator::sift_down(std::size_t pos) {
  const HeapEntry entry = heap_[pos];
  const std::size_t size = heap_.size();
  for (;;) {
    const std::size_t first_child = 4 * pos + 1;
    if (first_child >= size) break;
    const std::size_t last_child = std::min(first_child + 4, size);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], entry)) break;
    heap_[pos] = heap_[best];
    pos_[heap_[pos].slot] = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = entry;
  pos_[entry.slot] = static_cast<std::uint32_t>(pos);
}

void Simulator::heap_push(HeapEntry entry) {
  pos_[entry.slot] = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(entry);
  if (heap_.size() > stats_.heap_high_water) {
    stats_.heap_high_water = heap_.size();
  }
  sift_up(heap_.size() - 1);
}

void Simulator::heap_remove(std::size_t pos) {
  pos_[heap_[pos].slot] = kNpos;
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;
  heap_[pos] = last;
  pos_[last.slot] = static_cast<std::uint32_t>(pos);
  if (sift_up(pos) == pos) sift_down(pos);
}

EventHandle Simulator::schedule_at(Time when, Callback cb) {
  return schedule_at_with_sequence(when, next_seq_++, std::move(cb));
}

EventHandle Simulator::schedule_after(Duration delay, Callback cb) {
  return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(cb));
}

void Simulator::cancel(EventHandle handle) {
  const std::uint32_t slot = decode(handle);
  if (slot == kNpos) return;
  const std::uint32_t pos = pos_[slot];
  if (pos == kNpos) return;  // the currently-firing event: already off the heap
  heap_remove(pos);
  if (node(slot).firing_depth == 0) release_node(slot);
  // A firing node is recycled by fire_top() once its callback chain unwinds;
  // here the cancel only undoes a reschedule() made during that callback.
}

void Simulator::reschedule_resolved(std::uint32_t slot, std::uint32_t pos,
                                    Time when, std::uint64_t seq) {
  if (when < now_) when = now_;
  if (pos != kNpos) {
    heap_[pos].when = when;
    heap_[pos].seq = seq;
    if (sift_up(pos) == pos) sift_down(pos);
  } else {
    heap_push(HeapEntry{when, seq, slot});  // re-arm from the event's callback
  }
}

bool Simulator::reschedule(EventHandle handle, Time when) {
  const std::uint32_t slot = decode(handle);
  if (slot == kNpos) return false;
  const std::uint32_t pos = pos_[slot];
  if (pos == kNpos && node(slot).firing_depth == 0) return false;
  // Drawn only once validity is established, same slot a cancel+schedule gets.
  reschedule_resolved(slot, pos, when, next_seq_++);
  return true;
}

bool Simulator::reschedule_after(EventHandle handle, Duration delay) {
  return reschedule(handle, now_ + (delay < 0 ? 0 : delay));
}

EventHandle Simulator::schedule_at_with_sequence(Time when, std::uint64_t seq,
                                                 Callback cb) {
  if (when < now_) when = now_;  // clamp: past events fire on the current tick
  if (cb.on_heap()) {
    ++stats_.callbacks_heap;
  } else {
    ++stats_.callbacks_inline;
  }
  const std::uint32_t slot = acquire_node();
  node(slot).cb = std::move(cb);
  heap_push(HeapEntry{when, seq, slot});
  return handle_for(slot);
}

bool Simulator::reschedule_with_sequence(EventHandle handle, Time when,
                                         std::uint64_t seq) {
  const std::uint32_t slot = decode(handle);
  if (slot == kNpos) return false;
  const std::uint32_t pos = pos_[slot];
  if (pos == kNpos && node(slot).firing_depth == 0) return false;
  reschedule_resolved(slot, pos, when, seq);
  return true;
}

void Simulator::fire_top() {
  ++stats_.events_executed;
  const std::uint32_t slot = heap_[0].slot;
  now_ = heap_[0].when;
  heap_remove(0);
  // Slab addresses are stable, so the callback runs in place: the node is
  // neither on the heap nor on the free list while it fires, so nothing can
  // overwrite it. The firing depth (not a flag: callbacks may pump a nested
  // step() that reentrantly fires the same re-armed event) defers recycling
  // until the outermost frame unwinds with the event not re-armed.
  Node& n = node(slot);
  ++n.firing_depth;
  n.cb();
  --n.firing_depth;
  if (n.firing_depth == 0 && pos_[slot] == kNpos) release_node(slot);
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  fire_top();
  return true;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_[0].when <= deadline) {
    fire_top();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    fire_top();
    ++executed;
  }
  return executed;
}

void Simulator::reserve(std::size_t events) {
  while (slabs_.size() * kSlabSize < events) {
    slabs_.push_back(std::make_unique<Node[]>(kSlabSize));
  }
  pos_.reserve(events);
  heap_.reserve(events);
}

}  // namespace daris::sim
