#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace daris::sim {

EventHandle Simulator::schedule_at(Time when, Callback cb) {
  assert(when >= now_ && "cannot schedule into the past");
  if (when < now_) when = now_;
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{when, seq, std::move(cb)});
  return EventHandle{seq};
}

EventHandle Simulator::schedule_after(Duration delay, Callback cb) {
  return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(cb));
}

void Simulator::cancel(EventHandle handle) {
  if (handle.valid()) cancelled_.insert(handle.id);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ev.cb();
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.seq)) {
      cancelled_.erase(top.seq);
      queue_.pop();
      continue;
    }
    if (top.when > deadline) break;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ev.cb();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

}  // namespace daris::sim
