// Task-set construction (Table II) and the periodic release driver.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "daris/task.h"
#include "dnn/zoo.h"

namespace daris::workload {

struct TaskSetSpec {
  std::string name;
  std::vector<rt::TaskSpec> tasks;

  int count(common::Priority p) const;
  /// Aggregate demand in jobs per second.
  double demand_jps() const;
};

/// Table II task sets, released at the paper's per-task rates (30 JPS for
/// ResNet18, 24 JPS for UNet/InceptionV3), which put the system at 150% of
/// the batching upper baseline with a 2:1 LP-to-HP ratio.
TaskSetSpec table2_taskset(dnn::ModelKind kind, std::uint64_t seed = 7);

/// Same structure scaled: `load_factor` multiplies the aggregate demand
/// (1.0 = Table II's 150% overload point => use 2/3 for "full load") and
/// `hp_fraction` sets the HP share of tasks (paper default 1/3).
TaskSetSpec scaled_taskset(dnn::ModelKind kind, double load_factor,
                           double hp_fraction, std::uint64_t seed = 7);

/// Mixed task set (Fig. 7): one third of each Table II set.
TaskSetSpec mixed_taskset(std::uint64_t seed = 7);

/// `copies` back-to-back copies of `base` with freshly drawn phases —
/// cluster benches scale aggregate demand with fleet size this way, keeping
/// per-task rates (and so per-task utilisation) identical to the base set.
TaskSetSpec replicated_taskset(const TaskSetSpec& base, int copies,
                               std::uint64_t seed = 7);

/// Skewed per-model demand for cluster routing studies: `gpus` GPUs' worth
/// of aggregate demand (~876 JPS per GPU, the mixed set's operating point)
/// with ~75% of it on ResNet18 and the rest split UNet/InceptionV3. Routing
/// a model kind to one device (model-affinity) collapses under this shape;
/// see docs/CLUSTER.md.
TaskSetSpec skewed_taskset(int gpus, std::uint64_t seed = 7);

/// ResNet50 task set for the Sec. VI-B comparison (sized like Table II:
/// 150% of the 433-JPS upper baseline, 2:1 LP:HP).
TaskSetSpec resnet50_taskset(std::uint64_t seed = 7);

}  // namespace daris::workload
