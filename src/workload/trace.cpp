#include "workload/trace.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/rng.h"

namespace daris::workload {

namespace {

constexpr int kModelKinds = 4;  // dnn::ModelKind enumerators
constexpr int kSloClasses = 2;  // Priority::{kHigh, kLow}

std::string lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool parse_model(const std::string& name, dnn::ModelKind* out) {
  const std::string n = lower(name);
  if (n == "resnet18") {
    *out = dnn::ModelKind::kResNet18;
  } else if (n == "resnet50") {
    *out = dnn::ModelKind::kResNet50;
  } else if (n == "unet") {
    *out = dnn::ModelKind::kUNet;
  } else if (n == "inceptionv3") {
    *out = dnn::ModelKind::kInceptionV3;
  } else {
    return false;
  }
  return true;
}

bool parse_slo(const std::string& name, common::Priority* out) {
  const std::string n = lower(name);
  if (n == "hp") {
    *out = common::Priority::kHigh;
  } else if (n == "lp") {
    *out = common::Priority::kLow;
  } else {
    return false;
  }
  return true;
}

void fail(std::string* error, int line, const std::string& why) {
  if (error == nullptr) return;
  std::ostringstream os;
  os << "line " << line << ": " << why;
  *error = os.str();
}

}  // namespace

bool parse_trace_csv(std::istream& in, Trace* out, std::string* error) {
  Trace trace;
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const std::string s = strip(raw);
    if (s.empty() || s[0] == '#') continue;
    if (line == 1 && lower(s) == "arrival_us,model,slo") continue;

    const std::size_t c1 = s.find(',');
    const std::size_t c2 = c1 == std::string::npos ? c1 : s.find(',', c1 + 1);
    if (c2 == std::string::npos || s.find(',', c2 + 1) != std::string::npos) {
      fail(error, line, "expected 3 fields `arrival_us,model,slo`");
      return false;
    }
    const std::string f0 = strip(s.substr(0, c1));
    const std::string f1 = strip(s.substr(c1 + 1, c2 - c1 - 1));
    const std::string f2 = strip(s.substr(c2 + 1));

    TraceRow row;
    try {
      std::size_t used = 0;
      if (f0.empty() || f0[0] == '-') throw std::invalid_argument(f0);
      row.arrival_us = std::stoull(f0, &used);
      if (used != f0.size()) throw std::invalid_argument(f0);
    } catch (const std::exception&) {
      fail(error, line, "bad arrival_us `" + f0 + "` (unsigned microseconds)");
      return false;
    }
    if (!parse_model(f1, &row.model)) {
      fail(error, line,
           "unknown model `" + f1 +
               "` (resnet18|resnet50|unet|inceptionv3)");
      return false;
    }
    if (!parse_slo(f2, &row.slo)) {
      fail(error, line, "unknown slo `" + f2 + "` (hp|lp)");
      return false;
    }
    if (!trace.rows.empty() && row.arrival_us < trace.rows.back().arrival_us) {
      fail(error, line, "arrival_us goes backwards (trace must be sorted)");
      return false;
    }
    trace.rows.push_back(row);
  }
  *out = std::move(trace);
  return true;
}

bool load_trace_csv(const std::string& path, Trace* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return parse_trace_csv(in, out, error);
}

void write_trace_csv(std::ostream& out, const Trace& trace) {
  out << "arrival_us,model,slo\n";
  for (const auto& row : trace.rows) {
    out << row.arrival_us << ',' << lower(dnn::model_name(row.model)) << ','
        << (row.slo == common::Priority::kHigh ? "hp" : "lp") << '\n';
  }
}

bool save_trace_csv(const std::string& path, const Trace& trace,
                    std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  write_trace_csv(out, trace);
  return out.good();
}

TraceDriver::TraceDriver(sim::Simulator& sim, const TaskSetSpec& taskset,
                         Trace trace, ReleaseFn release, common::Time horizon)
    : sim_(sim),
      trace_(std::move(trace)),
      release_(std::move(release)),
      horizon_(horizon),
      class_tasks_(static_cast<std::size_t>(kModelKinds * kSloClasses)),
      class_cursor_(static_cast<std::size_t>(kModelKinds * kSloClasses), 0) {
  for (std::size_t i = 0; i < taskset.tasks.size(); ++i) {
    const auto& t = taskset.tasks[i];
    class_tasks_[static_cast<std::size_t>(class_of(t.model, t.priority))]
        .push_back(static_cast<int>(i));
  }
}

void TraceDriver::start() { arm(0); }

void TraceDriver::arm(std::size_t row) {
  // Skip rows nobody serves up front so the armed event always has a
  // release to deliver (keeps fire() allocation-free and unmatched()
  // accurate even for never-released tails).
  while (row < trace_.rows.size()) {
    const auto& r = trace_.rows[row];
    const common::Time when =
        common::from_us(static_cast<double>(r.arrival_us));
    if (when > horizon_) {
      next_row_ = trace_.rows.size();
      return;
    }
    if (!class_tasks_[static_cast<std::size_t>(class_of(r.model, r.slo))]
             .empty()) {
      break;
    }
    ++unmatched_;
    ++row;
  }
  if (row >= trace_.rows.size()) {
    next_row_ = trace_.rows.size();
    return;
  }
  next_row_ = row;
  const common::Time when = common::from_us(
      static_cast<double>(trace_.rows[row].arrival_us));
  if (!sim_.reschedule(release_event_, when)) {
    release_event_ = sim_.schedule_at(when, [this] { fire(); });
  }
}

void TraceDriver::fire() {
  const auto& row = trace_.rows[next_row_];
  auto& tasks =
      class_tasks_[static_cast<std::size_t>(class_of(row.model, row.slo))];
  auto& cursor =
      class_cursor_[static_cast<std::size_t>(class_of(row.model, row.slo))];
  const int task_id = tasks[cursor];
  cursor = (cursor + 1) % tasks.size();
  ++arrivals_;
  release_(task_id);
  arm(next_row_ + 1);
}

std::vector<TraceMixEntry> trace_mix(const TaskSetSpec& taskset) {
  std::vector<double> weight(
      static_cast<std::size_t>(kModelKinds * kSloClasses), 0.0);
  for (const auto& t : taskset.tasks) {
    const auto cls = static_cast<std::size_t>(
        static_cast<int>(t.model) * kSloClasses + static_cast<int>(t.priority));
    weight[cls] +=
        1.0e9 / static_cast<double>(std::max<common::Duration>(t.period, 1));
  }
  std::vector<TraceMixEntry> mix;
  for (int m = 0; m < kModelKinds; ++m) {
    for (int s = 0; s < kSloClasses; ++s) {
      const auto cls = static_cast<std::size_t>(m * kSloClasses + s);
      if (weight[cls] <= 0.0) continue;
      mix.push_back({static_cast<dnn::ModelKind>(m),
                     static_cast<common::Priority>(s), weight[cls]});
    }
  }
  return mix;
}

double trace_rate_at(const TraceGenConfig& config, double t_s) {
  constexpr double kTwoPi = 6.283185307179586;
  double rate = config.mean_rate_jps;
  if (config.diurnal_amplitude != 0.0 && config.diurnal_period_s > 0.0) {
    rate *= 1.0 + config.diurnal_amplitude *
                      std::sin(kTwoPi * t_s / config.diurnal_period_s +
                               config.diurnal_phase);
  }
  for (const auto& f : config.flashes) {
    if (t_s >= f.start_s && t_s < f.start_s + f.duration_s) rate *= f.factor;
  }
  return std::max(0.0, rate);
}

Trace generate_trace(const std::vector<TraceMixEntry>& mix,
                     const TraceGenConfig& config) {
  Trace trace;
  if (mix.empty() || config.duration_s <= 0.0 || config.mean_rate_jps <= 0.0) {
    return trace;
  }
  std::vector<double> cum;
  cum.reserve(mix.size());
  double total = 0.0;
  for (const auto& e : mix) {
    total += std::max(0.0, e.weight);
    cum.push_back(total);
  }
  if (total <= 0.0) return trace;

  // Thinning envelope: the diurnal peak times the largest product of
  // overlapping flash factors (flashes can nest).
  double flash_peak = 1.0;
  for (const auto& f : config.flashes) {
    double at_start = 1.0;
    for (const auto& g : config.flashes) {
      if (f.start_s >= g.start_s && f.start_s < g.start_s + g.duration_s) {
        at_start *= std::max(1.0, g.factor);
      }
    }
    flash_peak = std::max(flash_peak, at_start);
  }
  const double envelope = config.mean_rate_jps *
                          (1.0 + std::abs(config.diurnal_amplitude)) *
                          flash_peak;

  common::Rng rng(config.seed);
  double t_s = 0.0;
  while (true) {
    t_s += rng.exponential(1.0 / envelope);
    if (t_s >= config.duration_s) break;
    const double keep = trace_rate_at(config, t_s) / envelope;
    if (rng.uniform() >= keep) continue;
    const double u = rng.uniform() * total;
    const auto it = std::upper_bound(cum.begin(), cum.end(), u);
    const auto cls = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cum.begin(),
                                 static_cast<std::ptrdiff_t>(mix.size()) - 1));
    TraceRow row;
    row.arrival_us = static_cast<std::uint64_t>(t_s * 1.0e6);
    row.model = mix[cls].model;
    row.slo = mix[cls].slo;
    trace.rows.push_back(row);
  }
  return trace;
}

}  // namespace daris::workload
