#include "workload/driver.h"

namespace daris::workload {

void PeriodicDriver::start() {
  for (int i = 0; i < scheduler_.task_count(); ++i) {
    const auto& spec = scheduler_.task(i).spec();
    arm(i, spec.phase);
  }
}

void PeriodicDriver::arm(int task_id, common::Time when) {
  if (when > horizon_) return;
  sim_.schedule_at(when, [this, task_id, when] {
    scheduler_.release_job(task_id);
    arm(task_id, when + scheduler_.task(task_id).spec().period);
  });
}

}  // namespace daris::workload
