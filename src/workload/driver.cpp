#include "workload/driver.h"

#include <algorithm>

namespace daris::workload {

PeriodicDriver::PeriodicDriver(sim::Simulator& sim, rt::Scheduler& scheduler,
                               common::Time horizon)
    : sim_(sim),
      release_([&scheduler](int id) { scheduler.release_job(id); }),
      horizon_(horizon) {
  entries_.reserve(static_cast<std::size_t>(scheduler.task_count()));
  for (int i = 0; i < scheduler.task_count(); ++i) {
    const auto& spec = scheduler.task(i).spec();
    entries_.push_back({spec.period, spec.phase, {}});
  }
}

PeriodicDriver::PeriodicDriver(sim::Simulator& sim,
                               const TaskSetSpec& taskset, ReleaseFn release,
                               common::Time horizon)
    : sim_(sim), release_(std::move(release)), horizon_(horizon) {
  entries_.reserve(taskset.tasks.size());
  for (const auto& t : taskset.tasks) {
    entries_.push_back({t.period, t.phase, {}});
  }
}

void PeriodicDriver::start() {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    arm(static_cast<int>(i), entries_[i].phase);
  }
}

void PeriodicDriver::arm(int task_id, common::Time when) {
  if (when > horizon_) return;
  entries_[static_cast<std::size_t>(task_id)].release_event =
      sim_.schedule_at(when, [this, task_id] { fire(task_id); });
}

void PeriodicDriver::fire(int task_id) {
  release_(task_id);
  // Re-arm the release event in place (now() is the release instant, so the
  // next period lands at phase + (k+1)*T); past the horizon it simply lapses.
  Entry& entry = entries_[static_cast<std::size_t>(task_id)];
  const common::Time next = sim_.now() + entry.period;
  if (next > horizon_) return;
  sim_.reschedule(entry.release_event, next);
}

OpenLoopDriver::OpenLoopDriver(sim::Simulator& sim,
                               const TaskSetSpec& taskset, ReleaseFn release,
                               common::Time horizon, OpenLoopConfig config)
    : sim_(sim),
      release_(std::move(release)),
      horizon_(horizon),
      config_(config) {
  common::Rng root(config_.seed);
  streams_.reserve(taskset.tasks.size());
  // Long-run mean rate: r_calm*(1-f_b) + burst_factor*r_calm*f_b, where f_b
  // is the fraction of time spent bursting. Solving for r_calm keeps the
  // mean at the task's nominal rate regardless of burst shape.
  const double dwell_total =
      std::max(1e-9, config_.mean_calm_s + config_.mean_burst_s);
  const double f_burst = config_.mean_burst_s / dwell_total;
  const double calm_share =
      (1.0 - f_burst) + std::max(1.0, config_.burst_factor) * f_burst;
  for (const auto& t : taskset.tasks) {
    Stream s;
    const double nominal_jps =
        config_.rate_scale * 1.0e9 / static_cast<double>(std::max<common::Duration>(t.period, 1));
    if (config_.process == ArrivalProcess::kPoisson) {
      s.calm_rate_jps = nominal_jps;
      s.burst_rate_jps = nominal_jps;
    } else {
      s.calm_rate_jps = nominal_jps / calm_share;
      s.burst_rate_jps = s.calm_rate_jps * std::max(1.0, config_.burst_factor);
    }
    s.rng = root.fork();
    if (config_.process == ArrivalProcess::kBursty) {
      // Every task starts calm, with its first dwell drawn up front.
      s.state_until = common::from_sec(
          std::max(s.rng.exponential(config_.mean_calm_s), 1e-6));
    }
    streams_.push_back(s);
  }
}

void OpenLoopDriver::start() {
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    arm(static_cast<int>(i));
  }
}

double OpenLoopDriver::current_rate(Stream& s, common::Time now) {
  if (config_.process == ArrivalProcess::kPoisson) return s.calm_rate_jps;
  // Advance the two-state dwell chain past `now`. State changes are sampled
  // lazily at arming points, which keeps the chain deterministic and cheap;
  // dwell times are long relative to inter-arrival gaps, so the
  // approximation barely moves the realised burst fraction.
  while (now >= s.state_until) {
    s.burst = !s.burst;
    const double dwell_s = s.rng.exponential(
        s.burst ? config_.mean_burst_s : config_.mean_calm_s);
    s.state_until += common::from_sec(std::max(dwell_s, 1e-6));
  }
  return s.burst ? s.burst_rate_jps : s.calm_rate_jps;
}

common::Time OpenLoopDriver::next_arrival(Stream& s) {
  const double rate = current_rate(s, sim_.now());
  if (rate <= 0.0) return -1;
  const double gap_s = s.rng.exponential(1.0 / rate);
  const common::Time when = sim_.now() + common::from_sec(gap_s);
  return when > horizon_ ? -1 : when;
}

void OpenLoopDriver::arm(int task_id) {
  Stream& s = streams_[static_cast<std::size_t>(task_id)];
  const common::Time when = next_arrival(s);
  if (when < 0) return;
  s.arrival_event = sim_.schedule_at(when, [this, task_id] { fire(task_id); });
}

void OpenLoopDriver::fire(int task_id) {
  ++arrivals_;
  release_(task_id);
  Stream& s = streams_[static_cast<std::size_t>(task_id)];
  const common::Time when = next_arrival(s);
  if (when < 0) return;
  sim_.reschedule(s.arrival_event, when);  // re-arm the arrival in place
}

}  // namespace daris::workload
