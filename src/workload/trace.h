// Production-trace replay and generation.
//
// A Trace is a time-sorted list of inference requests — arrival time in
// microseconds since trace start, model kind, and SLO class (hp = strict
// deadline, lp = best-effort) — the shape production serving logs reduce to.
// TraceDriver replays one through the ReleaseFn sink, so the same trace
// drives a single rt::Scheduler or a cluster::Router unchanged; rows are
// matched to registered tasks round-robin within their (model, SLO) class.
// TraceGenerator emits synthetic traces with diurnal and flash-crowd
// modulation via Poisson thinning, bit-reproducible from a seed.
//
// CSV format (docs/SCENARIOS.md): `arrival_us,model,slo` per row, header
// optional, '#' comments and blank lines skipped, models by zoo name
// (case-insensitive), slo in {hp, lp}. Parse errors carry 1-based line
// numbers. tests/data/ bundles a downsampled ~50k-row diurnal trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/priority.h"
#include "common/time.h"
#include "dnn/zoo.h"
#include "sim/simulator.h"
#include "workload/driver.h"
#include "workload/taskset.h"

namespace daris::workload {

/// One inference request of a trace.
struct TraceRow {
  std::uint64_t arrival_us = 0;  // microseconds since trace start
  dnn::ModelKind model = dnn::ModelKind::kResNet18;
  common::Priority slo = common::Priority::kHigh;
};

struct Trace {
  std::vector<TraceRow> rows;  // ascending arrival_us (parser enforces)

  common::Time duration() const {
    return rows.empty()
               ? 0
               : common::from_us(static_cast<double>(rows.back().arrival_us));
  }
};

/// Parses `arrival_us,model,slo` CSV. Returns false on the first malformed
/// or time-regressing row with "line N: why" in *error (untouched on
/// success). The optional header row `arrival_us,model,slo` is skipped.
bool parse_trace_csv(std::istream& in, Trace* out, std::string* error);
bool load_trace_csv(const std::string& path, Trace* out, std::string* error);

/// Writes the CSV form (with header) that parse_trace_csv reads back.
void write_trace_csv(std::ostream& out, const Trace& trace);
bool save_trace_csv(const std::string& path, const Trace& trace,
                    std::string* error);

/// Replays a Trace through the ReleaseFn sink against a task set.
///
/// Rows map to task indices round-robin within their (model, SLO) class in
/// ascending task-id order, so a class served by several registered tasks
/// spreads its requests across them deterministically; rows of a class no
/// task serves are counted in unmatched() and skipped. A single release
/// event walks the row cursor and is re-armed in place per row (ties fire
/// in row order), so steady-state replay allocates nothing.
class TraceDriver {
 public:
  /// `trace` rows must be time-sorted (as the parser guarantees). Rows past
  /// `horizon` are not released.
  TraceDriver(sim::Simulator& sim, const TaskSetSpec& taskset, Trace trace,
              ReleaseFn release, common::Time horizon);

  /// Arms the first row's release.
  void start();

  /// Rows released so far.
  std::uint64_t arrivals() const { return arrivals_; }

  /// Rows skipped because no registered task serves their class.
  std::uint64_t unmatched() const { return unmatched_; }

 private:
  /// Dense class index; kPriorityCount (2) SLO classes per model kind.
  static int class_of(dnn::ModelKind model, common::Priority slo) {
    return static_cast<int>(model) * 2 + static_cast<int>(slo);
  }

  void arm(std::size_t row);
  void fire();

  sim::Simulator& sim_;
  Trace trace_;
  ReleaseFn release_;
  common::Time horizon_;
  std::vector<std::vector<int>> class_tasks_;  // task ids per class, asc
  std::vector<std::size_t> class_cursor_;      // round-robin position
  std::size_t next_row_ = 0;
  sim::EventHandle release_event_;  // re-armed in place per row
  std::uint64_t arrivals_ = 0;
  std::uint64_t unmatched_ = 0;
};

/// Share of one (model, SLO) class in a generated trace.
struct TraceMixEntry {
  dnn::ModelKind model = dnn::ModelKind::kResNet18;
  common::Priority slo = common::Priority::kHigh;
  double weight = 1.0;  // relative; normalised by the generator
};

/// The task set's demand mix: one entry per (model, SLO) class present,
/// weighted by the class's aggregate rate (sum of 1/T), in class order.
std::vector<TraceMixEntry> trace_mix(const TaskSetSpec& taskset);

/// A flash crowd: the arrival rate is multiplied by `factor` inside
/// [start_s, start_s + duration_s).
struct FlashCrowd {
  double start_s = 0.0;
  double duration_s = 0.0;
  double factor = 1.0;
};

struct TraceGenConfig {
  double duration_s = 30.0;
  /// Long-run base rate before modulation, requests per second.
  double mean_rate_jps = 1000.0;
  /// Diurnal sinusoid: rate(t) = mean * (1 + A * sin(2*pi*t/P + phase)).
  /// A in [0, 1); P defaults to a day but scenario traces compress it so a
  /// "day" fits a simulated half-minute.
  double diurnal_amplitude = 0.0;
  double diurnal_period_s = 86400.0;
  double diurnal_phase = 0.0;  // radians
  std::vector<FlashCrowd> flashes;
  std::uint64_t seed = 42;
};

/// Instantaneous rate of the configured process at `t_s` (exposed so tests
/// can integrate the intended rate against realised counts).
double trace_rate_at(const TraceGenConfig& config, double t_s);

/// Inhomogeneous-Poisson trace via thinning: candidate arrivals at the
/// envelope rate max_t rate(t), each kept with probability rate(t)/envelope.
/// Kept arrivals draw their class from `mix` (cumulative weights). Two
/// calls with equal (mix, config) produce identical traces.
Trace generate_trace(const std::vector<TraceMixEntry>& mix,
                     const TraceGenConfig& config);

}  // namespace daris::workload
