// Periodic job-release driver: turns a task set into release events.
#pragma once

#include "common/time.h"
#include "daris/scheduler.h"
#include "sim/simulator.h"

namespace daris::workload {

/// Schedules strictly periodic releases (phase + k*T) for every task in the
/// scheduler, up to `horizon`.
class PeriodicDriver {
 public:
  PeriodicDriver(sim::Simulator& sim, rt::Scheduler& scheduler,
                 common::Time horizon)
      : sim_(sim), scheduler_(scheduler), horizon_(horizon) {}

  /// Arms the first release of every registered task.
  void start();

 private:
  void arm(int task_id, common::Time when);

  sim::Simulator& sim_;
  rt::Scheduler& scheduler_;
  common::Time horizon_;
};

}  // namespace daris::workload
