// Job-release drivers: turn a task set into release events.
//
// Drivers deliver releases through a ReleaseFn sink so the same generator
// can drive a single rt::Scheduler or a cluster::Router front-end.
//
//  - PeriodicDriver: strictly periodic releases (phase + k*T), the paper's
//    closed-form workload (Table II).
//  - OpenLoopDriver: open-loop stochastic arrivals — Poisson, or a two-state
//    bursty process (MMPP-style: calm/burst states with exponential dwell
//    times, the burst state releasing at a multiple of the calm rate while
//    the long-run mean rate stays at the task's nominal 1/T). Seeded from
//    common::Rng so runs are bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "daris/scheduler.h"
#include "sim/simulator.h"
#include "workload/taskset.h"

namespace daris::workload {

/// Sink for job releases; called with the task index at each arrival.
///
/// Deliberately a std::function rather than a sim::Callback: the sink is
/// multi-shot (invoked on every arrival for the whole run) while
/// sim::Callback is one-shot move-only — converting would force a re-wrap
/// per fire, the opposite of the zero-allocation goal. The cost profile is
/// already right as-is: each driver constructs its ReleaseFn exactly once
/// (one possible allocation per run, outside any measured window), invoking
/// a std::function allocates nothing, and the *fire paths* — the per-event
/// hot loop — ride sim::Callback's inline buffer, since every driver
/// captures only {this, task_id} (<= 16 bytes, far under
/// sim::Callback::kInlineCapacity) and re-arms a pooled event in place.
/// test_sim_alloc.cpp pins exactly this: steady-state OpenLoopDriver and
/// TraceDriver replay perform zero heap allocations.
using ReleaseFn = std::function<void(int task_id)>;

/// Schedules strictly periodic releases (phase + k*T) for every task, up to
/// `horizon`.
class PeriodicDriver {
 public:
  /// Drives the scheduler's registered tasks directly (single-GPU runs).
  PeriodicDriver(sim::Simulator& sim, rt::Scheduler& scheduler,
                 common::Time horizon);

  /// Drives an arbitrary sink (e.g. a cluster router) from a task-set spec.
  PeriodicDriver(sim::Simulator& sim, const TaskSetSpec& taskset,
                 ReleaseFn release, common::Time horizon);

  /// Arms the first release of every task.
  void start();

 private:
  struct Entry {
    common::Duration period = 0;
    common::Duration phase = 0;
    sim::EventHandle release_event;  // re-armed in place each period
  };

  void arm(int task_id, common::Time when);
  void fire(int task_id);

  sim::Simulator& sim_;
  std::vector<Entry> entries_;
  ReleaseFn release_;
  common::Time horizon_;
};

/// Inter-arrival process for the open-loop driver.
enum class ArrivalProcess {
  kPoisson,  // exponential inter-arrivals at the task's nominal rate
  kBursty,   // two-state MMPP-style modulated Poisson
};

struct OpenLoopConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;

  /// Multiplies every task's nominal rate 1/T (1.0 = the task set's demand;
  /// >1 drives overload).
  double rate_scale = 1.0;

  // Bursty process parameters. Dwell times in each state are exponential;
  // the burst state releases at `burst_factor` x the calm rate, and the calm
  // rate is chosen so the long-run mean rate stays at rate_scale/T.
  double burst_factor = 4.0;
  double mean_calm_s = 0.4;
  double mean_burst_s = 0.1;

  std::uint64_t seed = 42;
};

/// Open-loop arrivals: each task releases jobs independently of completions
/// (no back-pressure), which is what exercises admission and overload
/// hardest (Fig. 11). Deterministic given the config seed.
class OpenLoopDriver {
 public:
  OpenLoopDriver(sim::Simulator& sim, const TaskSetSpec& taskset,
                 ReleaseFn release, common::Time horizon,
                 OpenLoopConfig config = {});

  /// Arms the first arrival of every task.
  void start();

  /// Arrivals delivered so far (all tasks).
  std::uint64_t arrivals() const { return arrivals_; }

 private:
  struct Stream {
    double calm_rate_jps = 0.0;   // per-state release rates
    double burst_rate_jps = 0.0;  // == calm rate for Poisson
    bool burst = false;
    common::Time state_until = 0;  // next dwell-state change
    common::Rng rng{0};
    sim::EventHandle arrival_event;  // re-armed in place per arrival
  };

  void arm(int task_id);
  void fire(int task_id);
  /// Draws the next arrival time for the task, or -1 when the process has
  /// stopped (zero rate) or the draw lands past the horizon.
  common::Time next_arrival(Stream& s);
  /// Advances the task's MMPP state to `now` and returns the current rate.
  double current_rate(Stream& s, common::Time now);

  sim::Simulator& sim_;
  ReleaseFn release_;
  common::Time horizon_;
  OpenLoopConfig config_;
  std::vector<Stream> streams_;
  std::uint64_t arrivals_ = 0;
};

}  // namespace daris::workload
