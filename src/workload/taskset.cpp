#include "workload/taskset.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace daris::workload {

namespace {

/// Builds `n_hp` + `n_lp` periodic tasks of one model at `task_jps` each,
/// with deterministic per-task phase offsets (D = T per the paper).
void append_tasks(TaskSetSpec& set, dnn::ModelKind kind, int n_hp, int n_lp,
                  double task_jps, common::Rng& rng) {
  const common::Duration period = common::period_for_jps(task_jps);
  auto make = [&](common::Priority p) {
    rt::TaskSpec t;
    t.model = kind;
    t.period = period;
    t.relative_deadline = period;
    t.priority = p;
    t.phase = static_cast<common::Duration>(
        rng.uniform(0.0, static_cast<double>(period)));
    return t;
  };
  for (int i = 0; i < n_hp; ++i) set.tasks.push_back(make(common::Priority::kHigh));
  for (int i = 0; i < n_lp; ++i) set.tasks.push_back(make(common::Priority::kLow));
}

struct Table2Row {
  int n_hp;
  int n_lp;
  double task_jps;
};

Table2Row table2_row(dnn::ModelKind kind) {
  switch (kind) {
    case dnn::ModelKind::kResNet18:
      return {17, 34, 30.0};
    case dnn::ModelKind::kUNet:
      return {5, 10, 24.0};
    case dnn::ModelKind::kInceptionV3:
      return {9, 18, 24.0};
    case dnn::ModelKind::kResNet50:
      // Not in Table II; sized to 150% of the 433-JPS upper baseline with
      // the same 2:1 LP:HP ratio (27 tasks x 24 JPS = 648 JPS demand).
      return {9, 18, 24.0};
  }
  return {0, 0, 0.0};
}

}  // namespace

int TaskSetSpec::count(common::Priority p) const {
  return static_cast<int>(
      std::count_if(tasks.begin(), tasks.end(),
                    [p](const rt::TaskSpec& t) { return t.priority == p; }));
}

double TaskSetSpec::demand_jps() const {
  double d = 0.0;
  for (const auto& t : tasks) {
    d += 1.0e9 / static_cast<double>(t.period);
  }
  return d;
}

TaskSetSpec table2_taskset(dnn::ModelKind kind, std::uint64_t seed) {
  common::Rng rng(seed);
  TaskSetSpec set;
  set.name = std::string("table2-") + dnn::model_name(kind);
  const Table2Row row = table2_row(kind);
  append_tasks(set, kind, row.n_hp, row.n_lp, row.task_jps, rng);
  return set;
}

TaskSetSpec scaled_taskset(dnn::ModelKind kind, double load_factor,
                           double hp_fraction, std::uint64_t seed) {
  common::Rng rng(seed);
  TaskSetSpec set;
  set.name = std::string("scaled-") + dnn::model_name(kind);
  const Table2Row row = table2_row(kind);
  const int total_base = row.n_hp + row.n_lp;
  const int total = std::max(
      1, static_cast<int>(std::lround(total_base * load_factor)));
  const int n_hp = std::clamp(
      static_cast<int>(std::lround(total * hp_fraction)), 0, total);
  append_tasks(set, kind, n_hp, total - n_hp, row.task_jps, rng);
  return set;
}

TaskSetSpec mixed_taskset(std::uint64_t seed) {
  common::Rng rng(seed);
  TaskSetSpec set;
  set.name = "mixed";
  // One third of each Table II set, preserving the 2:1 LP:HP ratio.
  append_tasks(set, dnn::ModelKind::kResNet18, 6, 12, 30.0, rng);
  append_tasks(set, dnn::ModelKind::kUNet, 2, 3, 24.0, rng);
  append_tasks(set, dnn::ModelKind::kInceptionV3, 3, 6, 24.0, rng);
  return set;
}

TaskSetSpec replicated_taskset(const TaskSetSpec& base, int copies,
                               std::uint64_t seed) {
  common::Rng rng(seed);
  TaskSetSpec set;
  set.name = base.name + "-x" + std::to_string(std::max(copies, 1));
  for (int c = 0; c < std::max(copies, 1); ++c) {
    for (rt::TaskSpec t : base.tasks) {
      t.phase = static_cast<common::Duration>(
          rng.uniform(0.0, static_cast<double>(t.period)));
      set.tasks.push_back(t);
    }
  }
  return set;
}

TaskSetSpec skewed_taskset(int gpus, std::uint64_t seed) {
  common::Rng rng(seed);
  TaskSetSpec set;
  const int n = std::max(1, gpus);
  set.name = "skewed-x" + std::to_string(n);
  // Per GPU's worth: ResNet18 660 JPS (75.3%), InceptionV3 144, UNet 72 —
  // ~876 JPS total, matching replicated_taskset(mixed_taskset(), n), with a
  // 2:1 LP:HP ratio throughout.
  append_tasks(set, dnn::ModelKind::kResNet18, 7 * n, 15 * n, 30.0, rng);
  append_tasks(set, dnn::ModelKind::kUNet, n, 2 * n, 24.0, rng);
  append_tasks(set, dnn::ModelKind::kInceptionV3, 2 * n, 4 * n, 24.0, rng);
  return set;
}

TaskSetSpec resnet50_taskset(std::uint64_t seed) {
  return table2_taskset(dnn::ModelKind::kResNet50, seed);
}

}  // namespace daris::workload
