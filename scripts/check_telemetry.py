#!/usr/bin/env python3
"""Telemetry gate over the scenario matrix (docs/OBSERVABILITY.md).

Usage:
    scripts/check_telemetry.py --json build/scenarios.json \
        --telemetry-dir build/telemetry

Validates, for every scenario in the bench_fig_scenarios JSON report:

  - telemetry_deterministic: the telemetry capture (sampler series + event
    log) repeated bit-identically across the driver's built-in re-run;
  - telemetry_inert: a telemetry-disabled run produced the same behaviour
    fingerprint — observation must not perturb the simulation;
  - the per-scenario telemetry artifact (<name>.telemetry.json) parses,
    matches the schema, carries the digest the report claims, has at least
    one track with monotonically increasing timestamps, and a profile with
    non-zero event counts;
  - the per-scenario Perfetto trace (<name>.trace.json) parses as a JSON
    array and contains all three phase types: "X" (spans), "C" (counters),
    and "i" (instants).

The gate is strict: the simulator is deterministic, so any mismatch is a
real regression, not machine noise.
"""

import argparse
import json
import os
import sys

TELEMETRY_KEYS = {"scenario", "sample_period_us", "digest", "fingerprint",
                  "timeseries", "events", "profile"}
PROFILE_KEYS = {"events_executed", "callbacks_inline", "callbacks_heap",
                "heap_high_water", "pool_slots", "solver_flushes",
                "solver_contexts_solved", "solver_contexts_reused",
                "dirty_hit_rate", "wall_ms_offline", "wall_ms_run",
                "wall_ms_total"}
EVENT_KEYS = {"ts_us", "kind", "cause", "gpu", "peer", "task", "value"}
# Event-kind vocabulary (metrics/eventlog.cpp event_kind_name). A record
# outside this set means the exporter and the gate disagree about the log's
# schema — fail loudly instead of silently passing unknown kinds through.
KNOWN_EVENT_KINDS = {"admit", "reject", "migrate", "transfer", "fault",
                     "rehome", "drain", "steal", "coalesce", "retry",
                     "hedge", "breaker"}


def check_telemetry_file(path, name, report_digest, failures):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        failures.append(f"{name}: telemetry artifact unreadable: {e}")
        return

    missing = TELEMETRY_KEYS - set(doc)
    if missing:
        failures.append(f"{name}: telemetry JSON missing keys {sorted(missing)}")
        return
    if doc["scenario"] != name:
        failures.append(f"{name}: artifact names scenario {doc['scenario']!r}")
    if report_digest and doc["digest"] != report_digest:
        failures.append(
            f"{name}: artifact digest {doc['digest']} != report digest "
            f"{report_digest} — artifact is from a different run")

    ts = doc["timeseries"]
    tracks = ts.get("tracks", [])
    if not tracks:
        failures.append(f"{name}: telemetry has no sampler tracks")
    if ts.get("period_us", 0) <= 0:
        failures.append(f"{name}: non-positive sample period")
    for track in tracks:
        stamps = [s[0] for s in track.get("samples", [])]
        if not stamps:
            failures.append(
                f"{name}: track {track.get('name')!r} (device "
                f"{track.get('device')}) has no samples")
            break
        if any(b < a for a, b in zip(stamps, stamps[1:])):
            failures.append(
                f"{name}: track {track.get('name')!r} timestamps not "
                "monotonically increasing")
            break

    for ev in doc["events"]:
        missing = EVENT_KEYS - set(ev)
        if missing:
            failures.append(f"{name}: event record missing keys "
                            f"{sorted(missing)}")
            break
        if ev["kind"] not in KNOWN_EVENT_KINDS:
            failures.append(f"{name}: unknown event kind {ev['kind']!r}")
            break

    profile = doc["profile"]
    missing = PROFILE_KEYS - set(profile)
    if missing:
        failures.append(f"{name}: profile missing keys {sorted(missing)}")
    elif profile["events_executed"] <= 0:
        failures.append(f"{name}: profile reports no events executed")


def check_trace_file(path, name, failures):
    try:
        with open(path) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        failures.append(f"{name}: Perfetto trace unreadable: {e}")
        return
    if not isinstance(trace, list):
        failures.append(f"{name}: Perfetto trace is not a JSON array")
        return
    phases = {ev.get("ph") for ev in trace}
    for ph, what in (("X", "spans"), ("C", "counter samples"),
                     ("i", "instant events")):
        if ph not in phases:
            failures.append(f"{name}: Perfetto trace has no \"{ph}\" {what}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", required=True,
                        help="bench_fig_scenarios JSON report")
    parser.add_argument("--telemetry-dir", required=True,
                        help="directory holding <name>.telemetry.json and "
                             "<name>.trace.json artifacts")
    args = parser.parse_args()

    with open(args.json) as f:
        doc = json.load(f)
    scenarios = doc.get("scenarios", [])

    failures = []
    if not scenarios:
        failures.append("report holds no scenarios")

    for s in scenarios:
        name = s.get("name", "?")
        if not s.get("telemetry_deterministic", False):
            failures.append(
                f"{name}: telemetry NOT bit-identical across repeat runs")
        if not s.get("telemetry_inert", False):
            failures.append(
                f"{name}: telemetry PERTURBED the run (behaviour fingerprint "
                "moved when telemetry was enabled)")
        check_telemetry_file(
            os.path.join(args.telemetry_dir, f"{name}.telemetry.json"),
            name, s.get("telemetry_digest"), failures)
        check_trace_file(
            os.path.join(args.telemetry_dir, f"{name}.trace.json"),
            name, failures)

    print(f"{len(scenarios)} scenarios, "
          f"{sum(1 for s in scenarios if s.get('telemetry_deterministic'))} "
          "telemetry-deterministic, "
          f"{sum(1 for s in scenarios if s.get('telemetry_inert'))} inert")

    if failures:
        print("\ntelemetry gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\ntelemetry gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
