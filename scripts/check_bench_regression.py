#!/usr/bin/env python3
"""Compare a freshly-run micro-benchmark JSON against the committed baseline.

Usage:
    scripts/check_bench_regression.py --baseline BENCH_micro_gpusim.json \
        --current build/bench_fresh.json [--threshold 0.25]

Gates on items_per_second (the throughput counter every gated benchmark
reports) with a deliberately generous default threshold: CI machines are
noisy and shared, so the gate is meant to catch step-function regressions
(an accidental O(n^2), a lost cache), not single-digit drift. Benchmarks
present only in the current run (newly added shapes) pass; benchmarks that
disappeared fail, so a silently dropped shape cannot fake a green gate.

Both files must come from release-built harnesses: the committed baseline
records `library_build_type` in its context, and this script refuses to
compare debug-harness numbers (see README "Benchmarking methodology").

The sharded fleet shapes (`BM_ClusterFleetOpenLoop/N/T`: N GPUs, T worker
threads on the sharded engine) additionally get a within-run speedup report
against their single-simulator sibling `BM_ClusterFleetOpenLoop/N` — the
one comparison that is machine-independent, since both shapes ran on the
same box seconds apart. Advisory, not gated: the expected ratio depends on
the runner's core count (a single-core runner can only show barrier
overhead; the >= 2x target applies when hardware cores >= T).
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def items_per_second(doc):
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") != "iteration":
            continue
        ips = bench.get("items_per_second")
        if ips is not None:
            out[bench["name"]] = float(ips)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum tolerated items/s slowdown (fraction)")
    args = parser.parse_args()

    baseline_doc = load(args.baseline)
    current_doc = load(args.current)

    for name, doc in (("baseline", baseline_doc), ("current", current_doc)):
        build = doc.get("context", {}).get("library_build_type", "unknown")
        if build != "release":
            print(f"FAIL: {name} harness library_build_type={build!r}; "
                  "regenerate against a release-built harness before gating")
            return 1

    baseline = items_per_second(baseline_doc)
    current = items_per_second(current_doc)

    failures = []
    width = max((len(n) for n in baseline), default=10) + 2
    print(f"{'benchmark':<{width}} {'baseline':>14} {'current':>14} {'ratio':>8}")
    for name in sorted(baseline):
        if name not in current:
            failures.append(f"{name}: present in baseline but not in current run")
            print(f"{name:<{width}} {baseline[name]:>14.4g} {'MISSING':>14}")
            continue
        ratio = current[name] / baseline[name]
        flag = ""
        if ratio < 1.0 - args.threshold:
            failures.append(
                f"{name}: {current[name]:.4g} items/s vs baseline "
                f"{baseline[name]:.4g} ({(1.0 - ratio) * 100.0:.1f}% slower, "
                f"threshold {args.threshold * 100.0:.0f}%)")
            flag = "  << REGRESSION"
        print(f"{name:<{width}} {baseline[name]:>14.4g} {current[name]:>14.4g}"
              f" {ratio:>7.2f}x{flag}")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}} {'(new)':>14} {current[name]:>14.4g}")

    # Within-run sharded-vs-single speedup (advisory; see module docstring).
    sharded = [n for n in sorted(current)
               if n.startswith("BM_ClusterFleetOpenLoop/")
               and n.count("/") == 2]
    for name in sharded:
        single = name.rsplit("/", 1)[0]
        if single in current and current[single] > 0:
            ratio = current[name] / current[single]
            threads = name.rsplit("/", 1)[1]
            print(f"sharded speedup {name} vs {single}: {ratio:.2f}x "
                  f"({threads} worker threads on this runner)")

    if failures:
        print("\nperf gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
