#!/usr/bin/env python3
"""Behaviour gate over the scenario matrix (docs/SCENARIOS.md).

Usage:
    scripts/check_scenarios.py --bench build/bench_fig_scenarios \
        [--data-dir tests/data] [--json OUT.json] [--telemetry DIR]
    scripts/check_scenarios.py --json build/scenarios.json

With --bench the scenario driver is executed (writing its JSON report to
--json, or a temporary file); with only --json an existing report is
validated. The gate fails when any scenario misses a committed threshold,
is non-deterministic across the driver's built-in re-run, or when fewer
scenarios ran than the matrix is expected to hold (a silently dropped
scenario cannot fake a green gate).

Unlike the perf gate, this one is strict: the simulator is deterministic,
so threshold misses are real behaviour changes, not machine noise.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Keep in sync with scenario_defs() in src/experiments/scenarios.cpp.
EXPECTED_MIN_SCENARIOS = 11


def load(path):
    with open(path) as f:
        return json.load(f)


def run_bench(bench, data_dir, json_path, telemetry_dir=None, sharded=False):
    cmd = [bench, "--json", json_path]
    if data_dir:
        cmd += ["--data-dir", data_dir]
    if telemetry_dir:
        cmd += ["--telemetry", telemetry_dir]
    if sharded:
        cmd += ["--sharded"]
    # The driver's own exit status is ignored here; the gate re-derives
    # pass/fail from the JSON so the two can never disagree silently.
    proc = subprocess.run(cmd, capture_output=True, text=True)
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if not os.path.exists(json_path):
        print(f"FAIL: {bench} produced no JSON report "
              f"(exit status {proc.returncode})")
        return False
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", help="path to bench_fig_scenarios")
    parser.add_argument("--data-dir", help="trace fixture directory")
    parser.add_argument("--json", help="JSON report path (read, or written "
                        "by --bench)")
    parser.add_argument("--telemetry", help="with --bench: directory for the "
                        "per-scenario telemetry + Perfetto artifacts "
                        "(validated separately by check_telemetry.py)")
    parser.add_argument("--sharded", action="store_true",
                        help="also replay every scenario on the sharded "
                        "engine and fail unless its fingerprint and "
                        "telemetry digest match the single-simulator run "
                        "bit-for-bit (with --bench passes --sharded to the "
                        "driver; with --json alone requires the report to "
                        "carry the sharded_matches fields)")
    args = parser.parse_args()

    if not args.bench and not args.json:
        parser.error("need --bench and/or --json")

    json_path = args.json
    tmp = None
    if args.bench:
        if not json_path:
            tmp = tempfile.NamedTemporaryFile(suffix=".json", delete=False)
            tmp.close()
            json_path = tmp.name
        if not run_bench(args.bench, args.data_dir, json_path,
                         args.telemetry, args.sharded):
            return 1

    doc = load(json_path)
    scenarios = doc.get("scenarios", [])

    failures = []
    if len(scenarios) < EXPECTED_MIN_SCENARIOS:
        failures.append(
            f"only {len(scenarios)} scenarios in report, expected at least "
            f"{EXPECTED_MIN_SCENARIOS} — was a scenario dropped?")

    for s in scenarios:
        name = s.get("name", "?")
        if not s.get("deterministic", False):
            failures.append(f"{name}: NOT bit-identical across repeat runs")
        if args.sharded:
            if "sharded_matches" not in s:
                failures.append(
                    f"{name}: report carries no sharded replay — driver "
                    f"run without --sharded?")
            elif not s["sharded_matches"]:
                failures.append(
                    f"{name}: sharded fingerprint/telemetry digest differs "
                    f"from the single-simulator baseline")
        for c in s.get("checks", []):
            if not c.get("pass", False):
                failures.append(
                    f"{name}: {c['metric']} = {c['value']:.4g} violates "
                    f"{c['op']} {c['limit']:.4g}")

    print(f"{len(scenarios)} scenarios, "
          f"{sum(1 for s in scenarios if s.get('pass'))} within thresholds, "
          f"{sum(1 for s in scenarios if s.get('deterministic'))} "
          "deterministic"
          + (f", {sum(1 for s in scenarios if s.get('sharded_matches'))} "
             "sharded-bit-identical" if args.sharded else ""))

    if tmp is not None:
        os.unlink(tmp.name)

    if failures:
        print("\nscenario gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nscenario gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
